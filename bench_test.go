package modcon

// One testing.B benchmark per experiment (E1–E15; see DESIGN.md §3 and
// EXPERIMENTS.md). Each benchmark iterates the experiment's core unit of
// work — typically one simulated execution of the relevant object or
// protocol — and reports the paper's cost measures as custom metrics
// (ops/exec = total work, ops/proc = individual work, agree = empirical
// agreement probability), so `go test -bench` regenerates the quantitative
// shape of every claim. The full sweeps with confidence intervals live in
// cmd/modcon-bench.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exp"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/quorum"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

// benchConciliator runs one fresh impatient conciliator execution per
// iteration on the parallel trial engine and reports work and agreement
// metrics.
func benchConciliator(b *testing.B, n int, growth conciliator.Growth, mkSched func() sched.Scheduler) {
	b.Helper()
	totalOps, maxOps, agree := 0, 0, 0
	err := harness.SweepObject(harness.Sweep{Trials: b.N, Seed: 1},
		harness.ObjectSweep{Build: func() (core.Object, harness.ObjectConfig) {
			file := register.NewFile()
			c := conciliator.NewImpatient(file, n, 1)
			c.Growth = growth
			inputs := make([]value.Value, n)
			for p := range inputs {
				inputs[p] = value.Value(p)
			}
			return c, harness.ObjectConfig{
				N: n, File: file, Inputs: inputs, Scheduler: mkSched(),
			}
		}},
		func(_ harness.Trial, run *harness.ObjectRun) {
			totalOps += run.Result.TotalWork
			maxOps += run.Result.MaxIndividualWork()
			allEq := true
			outs := run.Outputs()
			for _, v := range outs {
				if v != outs[0] {
					allEq = false
				}
			}
			if allEq {
				agree++
			}
		})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(totalOps)/float64(b.N), "ops/exec")
	b.ReportMetric(float64(maxOps)/float64(b.N), "ops/proc")
	b.ReportMetric(float64(agree)/float64(b.N), "agree")
}

// BenchmarkE1ConciliatorAgreement measures agreement probability under the
// Theorem 7 attack adversary (claim: ≥ 0.0553).
func BenchmarkE1ConciliatorAgreement(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d/first-mover-attack", n), func(b *testing.B) {
			benchConciliator(b, n, conciliator.GrowthDoubling,
				func() sched.Scheduler { return sched.NewFirstMoverAttack() })
		})
	}
}

// BenchmarkE2ConciliatorTotalWork measures expected total work (claim: ≤ 6n).
func BenchmarkE2ConciliatorTotalWork(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConciliator(b, n, conciliator.GrowthDoubling,
				func() sched.Scheduler { return sched.NewFirstMoverAttack() })
		})
	}
}

// BenchmarkE3ConciliatorIndividualWork measures individual work
// (claim: ≤ 2 lg n + O(1); watch ops/proc grow by +2 per doubling).
func BenchmarkE3ConciliatorIndividualWork(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConciliator(b, n, conciliator.GrowthDoubling,
				func() sched.Scheduler { return sched.NewLaggard() })
		})
	}
}

// BenchmarkE4Ratifier measures one m-valued ratifier execution per
// iteration (claim: ops/proc ≤ poolsize+2 = lg m + Θ(log log m)).
func BenchmarkE4Ratifier(b *testing.B) {
	for _, m := range []int{2, 64, 4096} {
		for _, schemeName := range []string{"pool", "bitvector"} {
			b.Run(fmt.Sprintf("m=%d/%s", m, schemeName), func(b *testing.B) {
				n := 8
				maxOps := 0
				for i := 0; i < b.N; i++ {
					file := register.NewFile()
					var r *ratifier.Quorum
					if schemeName == "pool" {
						r = ratifier.NewPool(file, m, 1)
					} else {
						r = ratifier.NewBitVector(file, m, 1)
					}
					inputs := make([]value.Value, n)
					for p := range inputs {
						inputs[p] = value.Value(p % m)
					}
					run, err := harness.RunObject(r, harness.ObjectConfig{
						N: n, File: file, Inputs: inputs,
						Scheduler: sched.NewUniformRandom(), Seed: uint64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					if w := run.Result.MaxIndividualWork(); w > maxOps {
						maxOps = w
					}
				}
				b.ReportMetric(float64(maxOps), "maxops/proc")
			})
		}
	}
}

// BenchmarkE5QuorumGeneration measures quorum unranking (the ratifier's only
// nontrivial local computation) and verifies optimality bookkeeping.
func BenchmarkE5QuorumGeneration(b *testing.B) {
	for _, m := range []int{64, 4096, 184756} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			s := quorum.NewPool(m)
			for i := 0; i < b.N; i++ {
				_ = s.WriteQuorum(value.Value(i % m))
			}
		})
	}
}

// benchConsensus runs one full consensus execution per iteration through
// the public Trials sweep API.
func benchConsensus(b *testing.B, cons *Consensus, n, m int, mkSched func() Scheduler) {
	b.Helper()
	totalOps, maxOps := 0, 0
	report, err := Trials(b.N,
		func(ctx context.Context, tr Trial) (*Outcome, error) {
			inputs := make([]Value, n)
			for p := range inputs {
				inputs[p] = Value((p + tr.Index) % m)
			}
			return cons.Solve(inputs, mkSched(), tr.Seed, RunConfig{Context: ctx})
		},
		func(_ Trial, out *Outcome, rep TrialReport) {
			if rep.Outcome != TrialOK {
				b.Fatalf("trial %d classified %s: %v", rep.Trial.Index, rep.Outcome, rep.Err)
			}
			totalOps += out.TotalWork
			maxOps += out.MaxWork()
		},
		WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	if got := report.Count(TrialOK); got != b.N {
		b.Fatalf("report counted %d ok trials, want %d", got, b.N)
	}
	b.ReportMetric(float64(totalOps)/float64(b.N), "ops/exec")
	b.ReportMetric(float64(maxOps)/float64(b.N), "ops/proc")
}

// BenchmarkE6BinaryConsensus measures the headline result (claims: ops/proc
// = O(log n), ops/exec = O(n)).
func BenchmarkE6BinaryConsensus(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		cons, err := NewBinary(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/attack", n), func(b *testing.B) {
			benchConsensus(b, cons, n, 2, func() Scheduler { return NewFirstMoverAttack() })
		})
	}
}

// BenchmarkE7MValuedConsensus measures m-valued consensus (claim: ops/exec
// = O(n log m)).
func BenchmarkE7MValuedConsensus(b *testing.B) {
	n := 32
	for _, m := range []int{2, 64, 1024} {
		cons, err := New(n, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/m=%d", n, m), func(b *testing.B) {
			benchConsensus(b, cons, n, m, func() Scheduler { return NewFirstMoverAttack() })
		})
	}
}

// BenchmarkE8BaselineComparison contrasts the paper's conciliator with the
// constant-rate CIL/Cheung baseline on solo runs (claims: O(log n) vs Θ(n)).
func BenchmarkE8BaselineComparison(b *testing.B) {
	n := 256
	for _, g := range []conciliator.Growth{conciliator.GrowthDoubling, conciliator.GrowthConstant} {
		b.Run(g.String(), func(b *testing.B) {
			totalOps := 0
			for i := 0; i < b.N; i++ {
				file := register.NewFile()
				c := conciliator.NewImpatient(file, n, 1)
				c.Growth = g
				run, err := harness.RunObject(c, harness.ObjectConfig{
					N: 1, File: file, Inputs: []value.Value{1},
					Scheduler: sched.NewRoundRobin(), Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				totalOps += run.Result.TotalWork
			}
			b.ReportMetric(float64(totalOps)/float64(b.N), "ops/exec")
		})
	}
}

// BenchmarkE9FastPath measures unanimous-input executions (claim: O(1)
// individual work independent of n).
func BenchmarkE9FastPath(b *testing.B) {
	for _, n := range []int{8, 128} {
		cons, err := NewBinary(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, cons, n, 1, func() Scheduler { return NewUniformRandom() })
		})
	}
}

// BenchmarkE10CoinConciliator measures the shared-coin-based conciliator
// (Theorem 6; the voting coin dominates the cost).
func BenchmarkE10CoinConciliator(b *testing.B) {
	n := 4
	cons, err := NewBinary(n, WithConciliator(ConciliatorSharedCoin))
	if err != nil {
		b.Fatal(err)
	}
	benchConsensus(b, cons, n, 2, func() Scheduler { return NewUniformRandom() })
}

// BenchmarkE11NoisyRatifierOnly measures the ratifier-only protocol under
// noisy scheduling (§4.2).
func BenchmarkE11NoisyRatifierOnly(b *testing.B) {
	for _, n := range []int{4, 16} {
		cons, err := NewBinary(n, WithConciliator(ConciliatorNone), WithStages(4096), WithFastPath(false))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, cons, n, 2, func() Scheduler { return NewNoisy(0.5) })
		})
	}
}

// BenchmarkE12PriorityRatifierOnly measures the ratifier-only protocol
// under priority scheduling (§4.2).
func BenchmarkE12PriorityRatifierOnly(b *testing.B) {
	for _, n := range []int{4, 16} {
		cons, err := NewBinary(n, WithConciliator(ConciliatorNone), WithStages(64), WithFastPath(false))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, cons, n, 2, func() Scheduler { return NewPriority(nil) })
		})
	}
}

// BenchmarkE13BoundedConstruction measures the truncated chain with the CIL
// fallback (§4.1.2), forcing the fallback with a ratifier-only prefix.
func BenchmarkE13BoundedConstruction(b *testing.B) {
	n := 8
	cons, err := NewBinary(n, WithConciliator(ConciliatorNone), WithStages(2),
		WithFastPath(false), WithFallback(true))
	if err != nil {
		b.Fatal(err)
	}
	benchConsensus(b, cons, n, 2, func() Scheduler { return NewLaggard() })
}

// BenchmarkE14TerminationTail measures the fraction of executions that
// exceed a fixed step budget (the Attiya–Censor tail; claim: exponential
// decay in the budget).
func BenchmarkE14TerminationTail(b *testing.B) {
	n := 16
	cons, err := NewBinary(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []int{4, 16} {
		b.Run(fmt.Sprintf("budget=%dn", mult), func(b *testing.B) {
			timedOut := 0
			for i := 0; i < b.N; i++ {
				inputs := make([]Value, n)
				for p := range inputs {
					inputs[p] = Value(p % 2)
				}
				_, err := cons.Solve(inputs, NewFirstMoverAttack(), uint64(i),
					RunConfig{MaxSteps: mult * n})
				switch {
				case err == nil:
				case errors.Is(err, sim.ErrStepLimit):
					timedOut++
				default:
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(timedOut)/float64(b.N), "timeout-rate")
		})
	}
}

// BenchmarkE15Ablations covers the growth-schedule ablation; the other
// ablations are variations of earlier benchmarks (see cmd/modcon-bench -run
// E15 for the full table).
func BenchmarkE15Ablations(b *testing.B) {
	n := 64
	for _, g := range []conciliator.Growth{conciliator.GrowthDoubling, conciliator.GrowthLinear, conciliator.GrowthConstant} {
		b.Run("growth="+g.String(), func(b *testing.B) {
			benchConciliator(b, n, g, func() sched.Scheduler { return sched.NewFirstMoverAttack() })
		})
	}
}

// BenchmarkLiveBinaryConsensus runs the full protocol on the live
// sync/atomic backend with real goroutines — wall-clock numbers rather than
// model costs.
func BenchmarkLiveBinaryConsensus(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		spec, err := NewBinary(n, WithFallback(true))
		if err != nil {
			b.Fatal(err)
		}
		inputs := make([]Value, n)
		for i := range inputs {
			inputs[i] = Value(i % 2)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := spec.Solve(inputs, nil, uint64(i), RunConfig{Backend: Live})
				if err != nil {
					b.Fatal(err)
				}
				if out.Value.IsNone() {
					b.Fatal("live run decided nothing")
				}
			}
		})
	}
}

// BenchmarkSimulatorOverhead isolates the cost of one scheduled operation in
// the simulation runtime (two channel handshakes).
func BenchmarkSimulatorOverhead(b *testing.B) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := sim.Run(sim.Config{
		N: 1, File: file, Scheduler: sched.NewRoundRobin(), Seed: 1,
		MaxSteps: b.N + 2,
	}, func(e *sim.Env) value.Value {
		for i := 0; i < b.N; i++ {
			e.Read(r)
		}
		return 0
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// BenchmarkExperimentHarness smoke-runs the cheapest full experiment to keep
// the harness itself under benchmark coverage.
func BenchmarkExperimentHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.E9FastPath(exp.Config{Trials: 1, Seed: uint64(i)})
	}
}
