package modcon

import (
	"math"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
)

func portfolio() []func() Scheduler {
	return []func() Scheduler{
		func() Scheduler { return NewRoundRobin() },
		func() Scheduler { return NewUniformRandom() },
		func() Scheduler { return NewLaggard() },
		func() Scheduler { return NewFrontrunner() },
		func() Scheduler { return NewFirstMoverAttack() },
		func() Scheduler { return NewEagerWriteAttack() },
		func() Scheduler { return NewSplitVote() },
	}
}

func mixedInputs(n, m int, shift int) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = Value((i + shift) % m)
	}
	return in
}

func TestBinaryConsensusAcrossAdversaries(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		cons, err := NewBinary(n)
		if err != nil {
			t.Fatal(err)
		}
		for ai, mk := range portfolio() {
			for seed := uint64(0); seed < 15; seed++ {
				inputs := mixedInputs(n, 2, int(seed))
				out, err := cons.Solve(inputs, mk(), seed)
				if err != nil {
					t.Fatalf("n=%d adv=%d seed=%d: %v", n, ai, seed, err)
				}
				for pid, d := range out.Decided {
					if !d {
						t.Fatalf("n=%d adv=%d seed=%d: pid %d undecided", n, ai, seed, pid)
					}
				}
			}
		}
	}
}

func TestMValuedConsensus(t *testing.T) {
	for _, m := range []int{3, 5, 16} {
		n := 6
		cons, err := New(n, m)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 20; seed++ {
			inputs := mixedInputs(n, m, int(seed))
			out, err := cons.Solve(inputs, NewUniformRandom(), seed)
			if err != nil {
				t.Fatalf("m=%d seed=%d: %v", m, seed, err)
			}
			if out.Value.IsNone() {
				t.Fatalf("m=%d seed=%d: no agreed value", m, seed)
			}
		}
	}
}

func TestSchemes(t *testing.T) {
	n, m := 5, 4
	for _, s := range []RatifierScheme{SchemePool, SchemeBitVector} {
		cons, err := New(n, m, WithScheme(s))
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 10; seed++ {
			if _, err := cons.Solve(mixedInputs(n, m, 1), NewUniformRandom(), seed); err != nil {
				t.Fatalf("scheme %d seed %d: %v", s, seed, err)
			}
		}
	}
	// Collect scheme with cheap collects.
	cons, err := New(n, m, WithScheme(SchemeCollect))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		if _, err := cons.Solve(mixedInputs(n, m, 1), NewUniformRandom(), seed,
			RunConfig{CheapCollect: true}); err != nil {
			t.Fatal(err)
		}
	}
	// Binary scheme rejects m > 2.
	if _, err := New(3, 3, WithScheme(SchemeBinary)); err == nil {
		t.Fatal("binary scheme accepted m=3")
	}
}

func TestFastPathSameInputs(t *testing.T) {
	// §4.1.1: when all inputs agree, the fast path decides in R₋₁ and R₀;
	// no conciliator ever runs, so per-process work is bounded by two
	// ratifier traversals (8 ops binary) regardless of n.
	for _, n := range []int{2, 8, 64} {
		cons, err := NewBinary(n)
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 10; seed++ {
			out, err := cons.Solve([]Value{1}, NewUniformRandom(), seed)
			if err != nil {
				t.Fatal(err)
			}
			if out.Value != 1 {
				t.Fatalf("agreed on %s", out.Value)
			}
			for pid, st := range out.Stage {
				if st != 0 {
					t.Fatalf("n=%d pid %d decided at stage %d, want fast path", n, pid, st)
				}
			}
			if out.MaxWork() > 8 {
				t.Fatalf("n=%d: fast-path individual work %d > 8", n, out.MaxWork())
			}
		}
	}
}

func TestSoloProcessFastPath(t *testing.T) {
	// A process running alone decides via the fast path with O(1) work.
	cons, err := NewBinary(8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cons.Solve(mixedInputs(8, 2, 0), NewFrontrunner(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stage[0] != 0 {
		t.Fatalf("frontrunner decided at stage %d, want 0", out.Stage[0])
	}
}

func TestIndividualWorkLogarithmic(t *testing.T) {
	// Headline: O(log n) expected individual work. Check that the mean
	// individual work grows like c·lg n, not linearly: compare against an
	// explicit c·lg n + c' envelope across a 16x range of n.
	const trials = 50
	for _, n := range []int{8, 32, 128} {
		cons, err := NewBinary(n)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for seed := uint64(0); seed < trials; seed++ {
			out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewFirstMoverAttack(), seed)
			if err != nil {
				t.Fatal(err)
			}
			sum += out.MaxWork()
		}
		mean := float64(sum) / trials
		envelope := 10*math.Log2(float64(n)) + 40
		if mean > envelope {
			t.Errorf("n=%d: mean individual work %.1f exceeds envelope %.1f", n, mean, envelope)
		}
	}
}

func TestTotalWorkLinearBinary(t *testing.T) {
	// Headline: O(n) expected total work for binary consensus.
	const trials = 40
	for _, n := range []int{8, 32, 128} {
		cons, err := NewBinary(n)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for seed := uint64(0); seed < trials; seed++ {
			out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewFirstMoverAttack(), seed)
			if err != nil {
				t.Fatal(err)
			}
			sum += out.TotalWork
		}
		mean := float64(sum) / trials
		if mean > 30*float64(n) {
			t.Errorf("n=%d: mean total work %.1f not linear (>30n)", n, mean)
		}
	}
}

func TestFallbackConstruction(t *testing.T) {
	// Stages=0 (no conciliator/ratifier stages beyond fast path is not
	// allowed without fallback... use explicit stage starvation): with 0
	// stages and a fallback, mixed inputs must be decided by K.
	cons, err := NewBinary(4, WithFastPath(false), WithStages(1), WithFallback(true),
		WithConciliator(ConciliatorNone))
	if err != nil {
		t.Fatal(err)
	}
	fellBack := 0
	for seed := uint64(0); seed < 20; seed++ {
		out, err := cons.Solve(mixedInputs(4, 2, int(seed)), NewLaggard(), seed)
		if err != nil {
			t.Fatal(err)
		}
		for pid := range out.FellBack {
			if out.FellBack[pid] {
				fellBack++
			}
		}
	}
	if fellBack == 0 {
		t.Error("ratifier-only + lockstep never reached the fallback")
	}
}

func TestRatifierOnlyNeedsSchedulingHelp(t *testing.T) {
	// §4.2: the ratifier-only protocol R terminates under a priority
	// scheduler and under a noisy scheduler; under lockstep it starves
	// (bounded by Stages, falls off the chain).
	n := 4
	cons, err := NewBinary(n, WithConciliator(ConciliatorNone), WithStages(64), WithFastPath(false))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewPriority(nil), seed)
		if err != nil {
			t.Fatalf("priority seed %d: %v", seed, err)
		}
		for pid, d := range out.Decided {
			if !d {
				t.Fatalf("priority seed %d: pid %d undecided", seed, pid)
			}
		}
		// The highest-priority process races through alone: stage ≤ 2.
		if out.Stage[0] > 2 {
			t.Errorf("priority: pid 0 decided at stage %d", out.Stage[0])
		}
	}
	for seed := uint64(0); seed < 10; seed++ {
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewNoisy(0.4), seed)
		if err != nil {
			t.Fatalf("noisy seed %d: %v", seed, err)
		}
		for pid, d := range out.Decided {
			if !d {
				t.Fatalf("noisy seed %d: pid %d undecided", seed, pid)
			}
		}
	}
}

func TestSharedCoinConciliatorConsensus(t *testing.T) {
	n := 4
	cons, err := NewBinary(n, WithConciliator(ConciliatorSharedCoin), WithCoinThreshold(16))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 15; seed++ {
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewUniformRandom(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.Value != 0 && out.Value != 1 {
			t.Fatalf("agreed on %s", out.Value)
		}
	}
}

func TestConstantRateBaselineConsensus(t *testing.T) {
	n := 8
	cons, err := NewBinary(n, WithConciliator(ConciliatorConstantRate))
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		if _, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewUniformRandom(), seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashTolerance(t *testing.T) {
	// Wait-freedom: up to n-1 crashes cannot block survivors.
	n := 5
	cons, err := NewBinary(n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 20; seed++ {
		crash := map[int]int{0: 2, 1: 5, 2: 9, 3: 13}
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewUniformRandom(), seed,
			RunConfig{CrashAfter: crash})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Decided[4] {
			t.Fatalf("seed %d: survivor undecided", seed)
		}
	}
}

func TestObjectLevelPropertiesOnTraces(t *testing.T) {
	// Every object in the chain must satisfy validity/coherence/acceptance
	// on real traces.
	n := 6
	cons, err := NewBinary(n)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 20; seed++ {
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewUniformRandom(), seed,
			RunConfig{Traced: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Objects(out.Trace, "R"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	cons, err := NewBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, inputs := range [][]Value{{0, 1}, {None, 0, 1}, {0, 1, 2}} {
		if _, err := cons.Solve(inputs, NewRoundRobin(), 1); err == nil {
			t.Errorf("inputs %v accepted", inputs)
		}
	}
	if _, err := cons.Solve([]Value{0, 1, 1}, NewRoundRobin(), 1, RunConfig{}, RunConfig{}); err == nil {
		t.Error("two RunConfigs accepted")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, m int
		opts []Option
	}{
		{0, 2, nil},
		{2, 1, nil},
		{2, 3, []Option{WithScheme(SchemeBinary)}},
		{2, 3, []Option{WithConciliator(ConciliatorSharedCoin)}},
		{2, 2, []Option{WithConciliator(ConciliatorNone), WithFastPath(true)}},
	}
	for i, tt := range cases {
		if _, err := New(tt.n, tt.m, tt.opts...); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestVerifyHelper(t *testing.T) {
	o := &Outcome{
		Outputs: []Value{1, 1},
		Decided: []bool{true, true},
	}
	if err := Verify([]Value{0, 1}, o); err != nil {
		t.Fatal(err)
	}
	o.Outputs[1] = 0
	err := Verify([]Value{0, 1}, o)
	if err == nil || !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("err = %v", err)
	}
}

func TestStageDistributionMostlyEarly(t *testing.T) {
	// The expected number of stages is ≤ 1/δ; under friendly schedules the
	// vast majority of decisions happen by stage 2.
	n := 8
	cons, err := NewBinary(n)
	if err != nil {
		t.Fatal(err)
	}
	late := 0
	const trials = 100
	for seed := uint64(0); seed < trials; seed++ {
		out, err := cons.Solve(mixedInputs(n, 2, int(seed)), NewUniformRandom(), seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range out.Stage {
			if st > 2 {
				late++
			}
		}
	}
	if late > trials*n/10 {
		t.Errorf("%d/%d decisions after stage 2", late, trials*n)
	}
}
