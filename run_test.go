package modcon

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRunObjectWithOptions(t *testing.T) {
	file := NewRegisters()
	r, err := NewRatifier(file, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(r,
		WithRegisters(file), WithN(3), WithInputs(1),
		WithScheduler(NewRoundRobin()), WithSeed(1), WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range run.Decisions {
		if !d.Decided || d.V != 1 {
			t.Fatalf("pid %d decision %s", pid, d)
		}
	}
	if run.Trace == nil || run.Trace.Len() == 0 {
		t.Fatal("WithTrace recorded nothing")
	}
}

func TestRunValidatesOptions(t *testing.T) {
	file := NewRegisters()
	r, err := NewRatifier(file, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []RunOption
		want string
	}{
		{"missing n", []RunOption{WithRegisters(file), WithInputs(1), WithScheduler(NewRoundRobin())}, "WithN"},
		{"missing registers", []RunOption{WithN(2), WithInputs(1), WithScheduler(NewRoundRobin())}, "WithRegisters"},
		{"missing scheduler", []RunOption{WithN(2), WithRegisters(file), WithInputs(1)}, "WithScheduler"},
		{"missing inputs", []RunOption{WithN(2), WithRegisters(file), WithScheduler(NewRoundRobin())}, "WithInputs"},
	}
	for _, tc := range cases {
		_, err := Run(r, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want errors.Is(err, ErrBadOption)", tc.name, err)
		}
	}
}

// TestOptionErrorSentinels pins the typed classification of configuration
// errors: missing requirements match ErrBadOption, capabilities a backend
// cannot honor match ErrOptionUnsupported, and the two never overlap.
func TestOptionErrorSentinels(t *testing.T) {
	file := NewRegisters()
	r, err := NewRatifier(file, 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Sim without a scheduler: a missing requirement.
	_, err = Run(r, WithRegisters(file), WithN(2), WithInputs(1))
	if !errors.Is(err, ErrBadOption) {
		t.Errorf("sim without scheduler: err = %v, want ErrBadOption", err)
	}
	if errors.Is(err, ErrOptionUnsupported) {
		t.Errorf("sim without scheduler: err = %v, must not match ErrOptionUnsupported", err)
	}

	// Live with a scheduler / with tracing: unsupported capabilities.
	for _, tc := range []struct {
		name string
		opts []RunOption
	}{
		{"live with scheduler", []RunOption{WithBackend(Live), WithRegisters(file), WithN(2), WithInputs(1), WithScheduler(NewRoundRobin())}},
		{"live with trace", []RunOption{WithBackend(Live), WithRegisters(file), WithN(2), WithInputs(1), WithTrace(true)}},
	} {
		_, err := Run(r, tc.opts...)
		if !errors.Is(err, ErrOptionUnsupported) {
			t.Errorf("%s: err = %v, want ErrOptionUnsupported", tc.name, err)
		}
		if errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, must not match ErrBadOption", tc.name, err)
		}
	}
}

func TestRunProtocolWithOptions(t *testing.T) {
	cons, err := NewBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	file, proto, err := cons.Build()
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunProtocol(proto,
		WithRegisters(file), WithN(4), WithInputs(0, 1, 0, 1),
		WithScheduler(NewUniformRandom()), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	outs := run.DecidedOutputs()
	if len(outs) != 4 {
		t.Fatalf("decided outputs %v", outs)
	}
	for _, v := range outs {
		if v != outs[0] {
			t.Fatalf("disagreement: %v", outs)
		}
	}
}

// TestTrialsDeterministicAcrossWorkers is the public-API face of the
// engine's determinism contract: same root seed, any worker count, same
// fold sequence.
func TestTrialsDeterministicAcrossWorkers(t *testing.T) {
	cons, err := NewBinary(6)
	if err != nil {
		t.Fatal(err)
	}
	sweep := func(workers int) ([]int, int64) {
		var works []int
		var sum int64
		report, err := Trials(24, func(ctx context.Context, tr Trial) (*Outcome, error) {
			inputs := make([]Value, 6)
			for p := range inputs {
				inputs[p] = Value((p + tr.Index) % 2)
			}
			return cons.Solve(inputs, NewUniformRandom(), tr.Seed, RunConfig{Context: ctx})
		}, func(tr Trial, out *Outcome, rep TrialReport) {
			if rep.Outcome != TrialOK {
				t.Fatalf("trial %d classified %s: %v", tr.Index, rep.Outcome, rep.Err)
			}
			works = append(works, out.TotalWork)
			sum += int64(out.TotalWork)
		}, WithSeed(7), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := report.Count(TrialOK); got != 24 {
			t.Fatalf("report counted %d ok trials, want 24", got)
		}
		return works, sum
	}
	refWorks, refSum := sweep(1)
	for _, w := range []int{4, 16} {
		works, sum := sweep(w)
		if sum != refSum {
			t.Fatalf("workers=%d aggregate %d != %d", w, sum, refSum)
		}
		for i := range works {
			if works[i] != refWorks[i] {
				t.Fatalf("workers=%d trial %d work %d != %d", w, i, works[i], refWorks[i])
			}
		}
	}
}

func TestTrialsClassifiesError(t *testing.T) {
	boom := errors.New("boom")
	report, err := Trials(10, func(ctx context.Context, tr Trial) (int, error) {
		if tr.Index == 4 {
			return 0, boom
		}
		return 1, nil
	}, nil, WithSeed(1))
	if err != nil {
		t.Fatalf("unified sweep aborted instead of classifying: %v", err)
	}
	if got := report.Count(TrialFailed); got != 1 {
		t.Fatalf("report counted %d failed trials, want 1: %s", got, report)
	}
	for _, rep := range report.Reports {
		if rep.Trial.Index == 4 && !errors.Is(rep.Err, boom) {
			t.Fatalf("trial 4 err = %v, want boom", rep.Err)
		}
	}
}

func TestTrialsStrictPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := TrialsStrict(10, func(ctx context.Context, tr Trial) (int, error) {
		if tr.Index == 4 {
			return 0, boom
		}
		return 1, nil
	}, nil, WithSeed(1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSolveWithContextCancellation(t *testing.T) {
	// A ratifier-only spec under lockstep never decides; without the huge
	// stage count it exhausts, so give it enough stages that only the
	// context stops it.
	cons, err := NewBinary(4, WithConciliator(ConciliatorNone), WithStages(1<<20), WithFastPath(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = cons.Solve([]Value{0, 1, 0, 1}, NewLaggard(), 3, RunConfig{Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
