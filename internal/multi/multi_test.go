package multi

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

func proposals(slots, n, m, shift int) [][]value.Value {
	out := make([][]value.Value, slots)
	for s := range out {
		out[s] = make([]value.Value, n)
		for pid := range out[s] {
			out[s][pid] = value.Value((pid*3 + s + shift) % m)
		}
	}
	return out
}

func TestSequenceAllSlotsDecide(t *testing.T) {
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewFirstMoverAttack() },
		func() sched.Scheduler { return sched.NewRoundRobin() },
	} {
		for seed := uint64(0); seed < 10; seed++ {
			res, err := Run(Config{
				N: 4, M: 5,
				Proposals: proposals(6, 4, 5, int(seed)),
				Scheduler: mk(), Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			for slot, v := range res.Agreed {
				if v.IsNone() {
					t.Fatalf("seed %d: slot %d undecided", seed, slot)
				}
			}
		}
	}
}

func TestSequencePerSlotAgreement(t *testing.T) {
	res, err := Run(Config{
		N: 5, M: 3,
		Proposals: proposals(8, 5, 3, 1),
		Scheduler: sched.NewUniformRandom(), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for slot := range res.Outputs {
		for pid, v := range res.Outputs[slot] {
			if v != res.Agreed[slot] {
				t.Fatalf("slot %d pid %d: %s != agreed %s", slot, pid, v, res.Agreed[slot])
			}
		}
	}
	if res.TotalWork <= 0 || len(res.Work) != 5 {
		t.Fatalf("work accounting: %d %v", res.TotalWork, res.Work)
	}
}

func TestSequenceWithCrashes(t *testing.T) {
	// Two of four processes crash mid-sequence; surviving processes must
	// still decide every slot, and decided prefixes of crashed processes
	// must agree.
	res, err := Run(Config{
		N: 4, M: 2,
		Proposals:  proposals(5, 4, 2, 0),
		Scheduler:  sched.NewUniformRandom(),
		Seed:       3,
		CrashAfter: map[int]int{0: 5, 1: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || !res.Crashed[1] {
		t.Fatalf("crashes not applied: %v", res.Crashed)
	}
	for slot := range res.Outputs {
		if res.Outputs[slot][2].IsNone() || res.Outputs[slot][3].IsNone() {
			t.Fatalf("survivor undecided in slot %d", slot)
		}
	}
}

func TestSequenceSkewBetweenSlots(t *testing.T) {
	// Under the frontrunner, one process completes the whole sequence solo
	// before anybody else moves; later processes must adopt its decisions
	// in every slot.
	res, err := Run(Config{
		N: 3, M: 4,
		Proposals: proposals(6, 3, 4, 2),
		Scheduler: sched.NewFrontrunner(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for slot := range res.Outputs {
		// The frontrunner is pid 0: its value wins every slot.
		if res.Agreed[slot] != res.Outputs[slot][0] {
			t.Fatalf("slot %d agreed %s but frontrunner got %s",
				slot, res.Agreed[slot], res.Outputs[slot][0])
		}
	}
}

func TestSequenceValidation(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{N: 0, M: 2, Proposals: proposals(1, 1, 2, 0), Scheduler: sched.NewRoundRobin()}, "N="},
		{Config{N: 2, M: 2, Proposals: nil, Scheduler: sched.NewRoundRobin()}, "no slots"},
		{Config{N: 2, M: 2, Proposals: proposals(1, 2, 2, 0), Scheduler: nil}, "nil scheduler"},
		{Config{N: 3, M: 2, Proposals: proposals(1, 2, 2, 0), Scheduler: sched.NewRoundRobin()}, "proposals"},
		{Config{N: 2, M: 2, Proposals: [][]value.Value{{0, 5}}, Scheduler: sched.NewRoundRobin()}, "outside"},
	}
	for i, tt := range cases {
		_, err := Run(tt.cfg)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("case %d: err = %v, want containing %q", i, err, tt.want)
		}
	}
}

func TestSequenceWorkScalesWithSlots(t *testing.T) {
	run := func(slots int) int {
		res, err := Run(Config{
			N: 4, M: 2,
			Proposals: proposals(slots, 4, 2, 0),
			Scheduler: sched.NewUniformRandom(), Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalWork
	}
	if w2, w8 := run(2), run(8); w8 <= 2*w2 {
		t.Fatalf("work did not scale with slots: %d vs %d", w2, w8)
	}
}
