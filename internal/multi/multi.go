// Package multi runs a *sequence* of consensus instances — the replicated
// state-machine workload — inside a single adversarial execution: n
// processes walk through k slots in order, solving one one-shot consensus
// per slot, all under one scheduler and one work budget. Unlike solving
// slots in separate executions, processes may be slots apart at any moment
// (a fast process can be deciding slot 7 while a slow one still announces
// in slot 2), which is exactly the interference pattern long-lived systems
// face.
package multi

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

// Config describes a multi-slot run.
type Config struct {
	// N is the process count, M the value-domain size per slot.
	N, M int
	// Proposals is indexed [slot][pid]; its length sets the slot count.
	Proposals [][]value.Value
	// NewProtocol builds the per-slot protocol; nil uses the paper default
	// (fast path + impatient conciliators + quorum ratifiers + CIL
	// fallback, so slots always decide).
	NewProtocol func(file *register.File, slot int) (*core.Protocol, error)
	// Scheduler is the adversary for the whole execution.
	Scheduler sched.Scheduler
	// Seed drives all randomness.
	Seed uint64
	// MaxSteps bounds the whole execution (0 = simulator default).
	MaxSteps int
	// CrashAfter is forwarded to the simulator.
	CrashAfter map[int]int
	// Faults is the typed fault plan, compiled for the whole multi-slot
	// execution (crash thresholds merge with CrashAfter in the simulator).
	Faults *fault.Plan
	// Context, if non-nil, cancels the execution between simulated steps.
	Context context.Context
}

// Result reports a multi-slot run.
type Result struct {
	// Agreed holds the decided value per slot (None if no surviving
	// process decided that slot).
	Agreed []value.Value
	// Outputs is indexed [slot][pid]; None where pid never decided.
	Outputs [][]value.Value
	// Work and TotalWork are the usual cost measures over the whole run.
	Work      []int
	TotalWork int
	// Crashed reports per-process crashes.
	Crashed []bool
}

// Run executes the sequence and verifies agreement and validity per slot
// before returning.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("multi: N=%d must be positive", cfg.N)
	}
	if len(cfg.Proposals) == 0 {
		return nil, errors.New("multi: no slots")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("multi: nil scheduler")
	}
	for slot, props := range cfg.Proposals {
		if len(props) != cfg.N {
			return nil, fmt.Errorf("multi: slot %d has %d proposals for %d processes", slot, len(props), cfg.N)
		}
		for pid, v := range props {
			if v.IsNone() || v < 0 || int64(v) >= int64(cfg.M) {
				return nil, fmt.Errorf("multi: slot %d pid %d proposal %s outside [0,%d)", slot, pid, v, cfg.M)
			}
		}
	}

	file := register.NewFile()
	slots := len(cfg.Proposals)
	protos := make([]*core.Protocol, slots)
	build := cfg.NewProtocol
	if build == nil {
		build = func(f *register.File, slot int) (*core.Protocol, error) {
			return defaultProtocol(f, cfg.N, cfg.M, slot)
		}
	}
	for slot := range protos {
		p, err := build(file, slot)
		if err != nil {
			return nil, fmt.Errorf("multi: slot %d: %w", slot, err)
		}
		protos[slot] = p
	}

	res := &Result{
		Agreed:  make([]value.Value, slots),
		Outputs: make([][]value.Value, slots),
	}
	for slot := range res.Outputs {
		res.Agreed[slot] = value.None
		res.Outputs[slot] = make([]value.Value, cfg.N)
		for pid := range res.Outputs[slot] {
			res.Outputs[slot][pid] = value.None
		}
	}

	inj, err := fault.Compile(cfg.Faults, cfg.N, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("multi: %w", err)
	}

	simRes, err := sim.Run(sim.Config{
		N: cfg.N, File: file, Scheduler: cfg.Scheduler, Seed: cfg.Seed,
		MaxSteps: cfg.MaxSteps, CrashAfter: cfg.CrashAfter, Faults: inj,
		Context: cfg.Context,
	}, func(e *sim.Env) value.Value {
		pid := e.PID()
		var last value.Value = value.None
		for slot := 0; slot < slots; slot++ {
			out, ok := protos[slot].Run(e, cfg.Proposals[slot][pid])
			if !ok {
				// Unreachable with the default fallback protocol; a custom
				// protocol that exhausts its chain stops participating.
				return last
			}
			res.Outputs[slot][pid] = out
			last = out
		}
		return last
	})
	if err != nil {
		return nil, err
	}
	res.Work = simRes.Work
	res.TotalWork = simRes.TotalWork
	res.Crashed = simRes.Crashed

	for slot := range res.Outputs {
		var decided []value.Value
		for pid := range res.Outputs[slot] {
			if !res.Outputs[slot][pid].IsNone() {
				decided = append(decided, res.Outputs[slot][pid])
			}
		}
		if len(decided) > 0 {
			res.Agreed[slot] = decided[0]
		}
		if err := check.Consensus(cfg.Proposals[slot], decided); err != nil {
			return res, fmt.Errorf("multi: SAFETY VIOLATION (bug) in slot %d: %w", slot, err)
		}
	}
	return res, nil
}

// defaultProtocol is the paper's recommended assembly plus the CIL
// fallback. Object indices carry the slot number (slot*1000 + stage) so
// labels stay unique across slots.
func defaultProtocol(file *register.File, n, m, slot int) (*core.Protocol, error) {
	base := slot * 1000
	return core.NewProtocol(core.Options{
		N:    n,
		File: file,
		NewRatifier: func(f *register.File, i int) core.Object {
			if m == 2 {
				return ratifier.NewBinary(f, base+i)
			}
			return ratifier.NewPool(f, m, base+i)
		},
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, n, base+i)
		},
		FastPath: true,
		Stages:   64,
		Fallback: fallback.New(file, n, base),
	})
}
