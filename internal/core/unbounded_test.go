package core_test

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

func newUnbounded(t *testing.T, n int) (*register.File, *core.Unbounded) {
	t.Helper()
	file := register.NewFile()
	u, err := core.NewUnbounded(n, file,
		func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
		func(f *register.File, i int) core.Object { return conciliator.NewImpatient(f, n, i) },
	)
	if err != nil {
		t.Fatal(err)
	}
	return file, u
}

func runUnbounded(t *testing.T, n int, s sched.Scheduler, seed uint64) (*sim.Result, *core.Unbounded) {
	t.Helper()
	file, u := newUnbounded(t, n)
	inputs := make([]value.Value, n)
	for i := range inputs {
		inputs[i] = value.Value(i % 2)
	}
	res, err := sim.Run(sim.Config{N: n, File: file, Scheduler: s, Seed: seed},
		func(e *sim.Env) value.Value { return u.Run(e, inputs[e.PID()]) })
	if err != nil {
		t.Fatal(err)
	}
	return res, u
}

func TestUnboundedIsConsensus(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for seed := uint64(0); seed < 20; seed++ {
			res, _ := runUnbounded(t, n, sched.NewUniformRandom(), seed)
			inputs := make([]value.Value, n)
			for i := range inputs {
				inputs[i] = value.Value(i % 2)
			}
			if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if len(res.HaltedOutputs()) != n {
				t.Fatalf("n=%d seed=%d: not all processes decided", n, seed)
			}
		}
	}
}

func TestUnboundedUnderAttack(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		res, u := runUnbounded(t, 8, sched.NewFirstMoverAttack(), seed)
		if len(res.HaltedOutputs()) != 8 {
			t.Fatalf("seed %d: undecided processes", seed)
		}
		for pid := 0; pid < 8; pid++ {
			if u.DecidedIndex(pid) < 0 {
				t.Fatalf("seed %d: pid %d has no decided index", seed, pid)
			}
		}
	}
}

func TestUnboundedLazyMaterialization(t *testing.T) {
	// Unanimous inputs decide on the fast path: only R₋₁ and R₀ exist.
	file, u := newUnbounded(t, 4)
	_, err := sim.Run(sim.Config{N: 4, File: file, Scheduler: sched.NewRoundRobin(), Seed: 1},
		func(e *sim.Env) value.Value { return u.Run(e, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Materialized(); got != 2 {
		t.Fatalf("unanimous run materialized %d objects, want 2", got)
	}
	// Registers allocated: two binary ratifiers = 2*3 = 6.
	if file.Len() != 6 {
		t.Fatalf("file holds %d registers, want 6", file.Len())
	}
}

func TestUnboundedGrowsOnDemand(t *testing.T) {
	// Mixed inputs under an attack adversary occasionally need stage ≥ 2;
	// across seeds the materialized count must exceed the fast path and
	// track the furthest decider.
	maxSeen := 0
	for seed := uint64(0); seed < 40; seed++ {
		res, u := runUnbounded(t, 4, sched.NewFirstMoverAttack(), seed)
		_ = res
		if got := u.Materialized(); got > maxSeen {
			maxSeen = got
		}
	}
	if maxSeen <= 2 {
		t.Fatal("no run ever left the fast path; attack adversary broken?")
	}
}

func TestUnboundedValidation(t *testing.T) {
	file := register.NewFile()
	rb := func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) }
	cb := func(f *register.File, i int) core.Object { return conciliator.NewImpatient(f, 2, i) }
	cases := []struct {
		n        int
		file     *register.File
		rat, con core.Builder
	}{
		{0, file, rb, cb},
		{2, nil, rb, cb},
		{2, file, nil, cb},
		{2, file, rb, nil},
	}
	for i, tt := range cases {
		if _, err := core.NewUnbounded(tt.n, tt.file, tt.rat, tt.con); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
