// Package core implements the paper's primary contribution (§3–§4): the
// decomposition of randomized consensus into *deciding objects* — one-shot
// shared-memory objects whose outputs carry a decision bit — and the two
// classes the paper introduces:
//
//   - conciliators, which produce agreement with some constant probability
//     δ > 0 but never claim it (they always return decision bit 0), and
//   - ratifiers, which never produce agreement but detect it: if all inputs
//     are equal they force everyone to decide (acceptance), and if anyone
//     decides, coherence pins every other output to the decided value.
//
// A weak consensus object satisfies validity, termination, and coherence.
// Composition (X; Y) preserves all three (Lemmas 1–3, Corollary 4), so an
// alternating chain of ratifiers and conciliators — with a ratifier-pair
// fast path in front — is a full randomized consensus protocol (§4.1).
//
// Concrete conciliators and ratifiers live in internal/conciliator and
// internal/ratifier; this package defines the object model and assembles
// chains into consensus protocols.
package core

import (
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Env is the process-side view of the shared-memory world, implemented by
// the simulated backend (internal/sim) and the live sync/atomic backend
// (internal/live). Objects perform all shared-memory access through it.
type Env interface {
	// PID returns the calling process's id in [0, N()).
	PID() int
	// N returns the number of processes.
	N() int
	// Read atomically reads a register (cost 1).
	Read(r register.Reg) value.Value
	// Write atomically writes a register (cost 1).
	Write(r register.Reg, v value.Value)
	// ProbWrite attempts a probabilistic write that takes effect with
	// probability min(1, num/den) (cost 1 either way). The returned success
	// bit exists for the detection ablation; the paper's protocols ignore
	// it (footnote 2).
	ProbWrite(r register.Reg, v value.Value, num, den uint64) bool
	// Collect reads a register array: one operation under the cheap-collect
	// model, arr.Len reads otherwise.
	Collect(arr register.Array) []value.Value
	// CheapCollect reports whether Collect costs a single operation.
	CheapCollect() bool
	// CoinUint64 flips 64 local coin bits (cost 0).
	CoinUint64() uint64
	// CoinBool flips one fair local coin (cost 0).
	CoinBool() bool
	// CoinIntn draws a uniform local integer in [0, n) (cost 0).
	CoinIntn(n int) int
	// MarkInvoke and MarkReturn annotate traces with object boundaries.
	MarkInvoke(label string, v value.Value)
	MarkReturn(label string, d value.Decision)
}

// Object is a one-shot deciding object (§3): each process executes Invoke at
// most once, with its input value, and receives an output annotated with a
// decision bit — value.Decide(v) to terminate immediately with v,
// value.Continue(v) to carry v into the next object of a composition.
//
// A correctly implemented Object is safe for concurrent Invoke by distinct
// processes (each with its own Env); all cross-process state lives in
// registers.
type Object interface {
	// Invoke executes the object's operation for the calling process.
	Invoke(e Env, v value.Value) value.Decision
	// Label names the object instance in traces and reports.
	Label() string
}

// Func adapts a function to the Object interface.
type Func struct {
	// Name is the trace label.
	Name string
	// F is the operation body.
	F func(e Env, v value.Value) value.Decision
}

// Invoke implements Object.
func (o Func) Invoke(e Env, v value.Value) value.Decision { return o.F(e, v) }

// Label implements Object.
func (o Func) Label() string { return o.Name }

// Identity is the weakest weak consensus object: it copies its input to its
// output with decision bit 0 (§3 notes it satisfies validity, termination
// and coherence vacuously). Useful as a composition unit and in tests.
type Identity struct{}

// Invoke implements Object.
func (Identity) Invoke(_ Env, v value.Value) value.Decision { return value.Continue(v) }

// Label implements Object.
func (Identity) Label() string { return "identity" }
