package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Builder constructs the index-th member of an object family (a fresh
// conciliator Cᵢ or ratifier Rᵢ), allocating its registers in file. Indices
// follow the paper's numbering: the fast-path ratifiers are R₋₁ and R₀,
// stage objects are C₁,R₁,C₂,R₂,…
type Builder func(file *register.File, index int) Object

// Options configures a consensus protocol assembled from conciliators and
// ratifiers (§4).
type Options struct {
	// N is the number of processes.
	N int
	// File receives all register allocations.
	File *register.File
	// NewRatifier builds Rᵢ. Required.
	NewRatifier Builder
	// NewConciliator builds Cᵢ. Nil yields the ratifier-only protocol R of
	// §4.2, which terminates only under scheduling restrictions (noisy or
	// priority schedulers).
	NewConciliator Builder
	// Stages is the number of (Cᵢ; Rᵢ) pairs — the truncation point k of
	// the bounded construction (§4.1.2). Each conciliator fails to produce
	// agreement with probability at most 1-δ, so Pr[running off the end]
	// ≤ (1-δ)^Stages; DefaultStages makes that negligible for the paper's
	// worst-case δ ≈ 0.055.
	Stages int
	// FastPath prepends the prefix R₋₁; R₀ so that executions whose fastest
	// processes agree decide without touching a conciliator (§4.1.1).
	FastPath bool
	// Fallback, if non-nil, is appended after the last stage: any
	// bounded-space consensus object K (§4.1.2). With a fallback the
	// protocol is a full consensus object regardless of Stages.
	Fallback Object
}

// DefaultStages is the truncation point used when Options.Stages is zero and
// a conciliator family is present: with the worst-case δ from Theorem 7,
// (1-δ)^512 < 10⁻¹², far below anything observable in experiments.
const DefaultStages = 512

// Protocol is an assembled consensus protocol: a Composition plus
// per-process instrumentation recording where each process decided.
type Protocol struct {
	chain         *Composition
	n             int
	fastPath      bool
	hasFallback   bool
	perStage      int // chain objects per stage (1 or 2)
	decidedAt     []int32
	exhaustedToll atomic.Int64
}

// NewProtocol validates opts and builds the protocol.
func NewProtocol(opts Options) (*Protocol, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("core: N=%d must be positive", opts.N)
	}
	if opts.File == nil {
		return nil, errors.New("core: nil register file")
	}
	if opts.NewRatifier == nil {
		return nil, errors.New("core: NewRatifier is required")
	}
	if opts.Stages < 0 {
		return nil, fmt.Errorf("core: Stages=%d must be non-negative", opts.Stages)
	}
	stages := opts.Stages
	if stages == 0 && opts.NewConciliator != nil {
		stages = DefaultStages
	}
	if !opts.FastPath && stages == 0 && opts.Fallback == nil {
		return nil, errors.New("core: protocol has no objects (enable FastPath, Stages, or Fallback)")
	}

	var objs []Object
	if opts.FastPath {
		objs = append(objs, opts.NewRatifier(opts.File, -1), opts.NewRatifier(opts.File, 0))
	}
	for i := 1; i <= stages; i++ {
		if opts.NewConciliator != nil {
			objs = append(objs, opts.NewConciliator(opts.File, i))
		}
		objs = append(objs, opts.NewRatifier(opts.File, i))
	}
	if opts.Fallback != nil {
		objs = append(objs, opts.Fallback)
	}

	perStage := 1
	if opts.NewConciliator != nil {
		perStage = 2
	}
	p := &Protocol{
		chain:       Compose(objs...),
		n:           opts.N,
		fastPath:    opts.FastPath,
		hasFallback: opts.Fallback != nil,
		perStage:    perStage,
		decidedAt:   make([]int32, opts.N),
	}
	for i := range p.decidedAt {
		p.decidedAt[i] = -1
	}
	return p, nil
}

// Run executes the protocol for the calling process with the given input
// and returns its decision. ok is false only if the chain was exhausted
// without deciding — impossible with a fallback, and an event of probability
// ≤ (1-δ)^Stages otherwise; callers must treat it as non-termination, never
// as a decision.
//
// Run records where the process decided in protocol-owned state readable
// through DecidedIndex/DecidedStage, which is convenient for one-shot runs
// but racy for pooled sweeps, where a merge goroutine may still be reading
// trial k's indices while a worker runs trial k+1. Such callers use
// RunIndexed and keep per-trial indices themselves.
func (p *Protocol) Run(e Env, input value.Value) (out value.Value, ok bool) {
	out, idx, ok := p.RunIndexed(e, input)
	if ok {
		p.decidedAt[e.PID()] = int32(idx)
	}
	return out, ok
}

// RunIndexed executes the protocol for the calling process and additionally
// returns the chain index at which it decided (-1 when ok is false). Unlike
// Run it leaves the protocol's own decided-at instrumentation untouched, so
// concurrent readers of a previous trial's indices are safe; translate idx
// with StageOfIndex.
func (p *Protocol) RunIndexed(e Env, input value.Value) (out value.Value, idx int, ok bool) {
	d, i := p.chain.InvokeIndexed(e, input)
	if !d.Decided {
		p.exhaustedToll.Add(1)
		return d.V, -1, false
	}
	return d.V, i, true
}

// Object exposes the underlying composition (itself a deciding object), so
// protocols can be nested inside larger compositions.
func (p *Protocol) Object() Object { return p.chain }

// Len returns the number of chained objects.
func (p *Protocol) Len() int { return p.chain.Len() }

// DecidedIndex returns the chain index at which pid decided, or -1.
func (p *Protocol) DecidedIndex(pid int) int { return int(p.decidedAt[pid]) }

// DecidedStage translates pid's deciding chain index into the paper's stage
// numbering: 0 for the fast path, i ≥ 1 for stage (Cᵢ; Rᵢ), -1 if pid has
// not decided. ok distinguishes the fallback object.
func (p *Protocol) DecidedStage(pid int) (stage int, fallback bool) {
	return p.StageOfIndex(p.DecidedIndex(pid))
}

// StageOfIndex translates a deciding chain index (as returned by
// RunIndexed) into the paper's stage numbering: 0 for the fast path, i ≥ 1
// for stage (Cᵢ; Rᵢ), -1 for an undecided index (< 0). fallback
// distinguishes a decision by the fallback object. The translation depends
// only on the protocol's shape, so it is safe to call concurrently with
// runs.
func (p *Protocol) StageOfIndex(idx int) (stage int, fallback bool) {
	if idx < 0 {
		return -1, false
	}
	if p.hasFallback && idx == p.chain.Len()-1 {
		return -1, true
	}
	if p.fastPath {
		if idx < 2 {
			return 0, false
		}
		idx -= 2
	}
	return idx/p.perStage + 1, false
}

// Exhausted reports how many Run calls ran off the end of the chain.
func (p *Protocol) Exhausted() int64 { return p.exhaustedToll.Load() }
