package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Unbounded is the literal unbounded construction of §4.1.1:
//
//	U = R₋₁; R₀; C₁; R₁; C₂; R₂; …
//
// with stages materialized lazily: stage i's conciliator and ratifier are
// constructed (and their registers allocated) the first time any process
// reaches them. Termination holds with probability 1 — every conciliator
// produces agreement with probability ≥ δ, and the following ratifier then
// forces a decision — so the expected number of materialized stages is at
// most 1/δ, but no a-priori bound is ever imposed (contrast with the
// truncated Options.Stages construction, which trades a (1-δ)^k failure
// probability for bounded space).
//
// Lazy materialization mutates the shared register file, so Unbounded is
// for the simulated backend, whose runtime serializes all process steps.
// The live backend snapshots the file into atomic memory up front and must
// use a pre-materialized Protocol instead.
type Unbounded struct {
	file           *register.File
	newRatifier    Builder
	newConciliator Builder

	mu        sync.Mutex
	stages    []Object // flattened: R₋₁, R₀, C₁, R₁, C₂, R₂, …
	decidedAt []int32  // per-pid chain index, -1 if undecided
	n         int
}

// NewUnbounded builds the unbounded construction.
func NewUnbounded(n int, file *register.File, newRatifier, newConciliator Builder) (*Unbounded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: N=%d must be positive", n)
	}
	if file == nil {
		return nil, errors.New("core: nil register file")
	}
	if newRatifier == nil || newConciliator == nil {
		return nil, errors.New("core: unbounded construction needs both builders")
	}
	u := &Unbounded{
		file:           file,
		newRatifier:    newRatifier,
		newConciliator: newConciliator,
		n:              n,
		decidedAt:      make([]int32, n),
	}
	for i := range u.decidedAt {
		u.decidedAt[i] = -1
	}
	// The fast path R₋₁; R₀ always exists.
	u.stages = append(u.stages, newRatifier(file, -1), newRatifier(file, 0))
	return u, nil
}

// object returns the idx-th chain object, materializing stages on demand.
func (u *Unbounded) object(idx int) Object {
	u.mu.Lock()
	defer u.mu.Unlock()
	for len(u.stages) <= idx {
		// Chain indices 2,3 are C₁,R₁; 4,5 are C₂,R₂; …
		stage := (len(u.stages)-2)/2 + 1
		if (len(u.stages)-2)%2 == 0 {
			u.stages = append(u.stages, u.newConciliator(u.file, stage))
		} else {
			u.stages = append(u.stages, u.newRatifier(u.file, stage))
		}
	}
	return u.stages[idx]
}

// Run executes the construction for the calling process. Unlike the
// truncated Protocol it cannot run off the end; it returns only on a
// decision.
func (u *Unbounded) Run(e Env, v value.Value) value.Value {
	for idx := 0; ; idx++ {
		obj := u.object(idx)
		e.MarkInvoke(obj.Label(), v)
		d := obj.Invoke(e, v)
		e.MarkReturn(obj.Label(), d)
		if d.Decided {
			u.decidedAt[e.PID()] = int32(idx)
			return d.V
		}
		v = d.V
	}
}

// Materialized returns how many chain objects exist so far (including the
// two fast-path ratifiers).
func (u *Unbounded) Materialized() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.stages)
}

// DecidedIndex returns the chain index where pid decided, or -1.
func (u *Unbounded) DecidedIndex(pid int) int { return int(u.decidedAt[pid]) }
