package core

import (
	"strings"

	"github.com/modular-consensus/modcon/internal/value"
)

// Composition is the sequential composition (X₁; X₂; …; Xₖ) of deciding
// objects (§3.2, Procedure Composition): each process feeds its value
// through the objects in order, and a decision by any object terminates the
// composite immediately with that output — the "exception mechanism" of the
// paper. Composition is associative, so the flat list is fully general.
//
// By Lemmas 1–3 and Corollary 4, if every component is a weak consensus
// object then so is the composition.
type Composition struct {
	objs []Object
	name string
}

// Compose builds the composition (objs[0]; objs[1]; …). Nested Compositions
// are flattened (associativity makes this behavior-preserving).
func Compose(objs ...Object) *Composition {
	var flat []Object
	for _, o := range objs {
		if c, ok := o.(*Composition); ok {
			flat = append(flat, c.objs...)
			continue
		}
		flat = append(flat, o)
	}
	labels := make([]string, len(flat))
	for i, o := range flat {
		labels[i] = o.Label()
	}
	return &Composition{objs: flat, name: "(" + strings.Join(labels, "; ") + ")"}
}

// Len returns the number of component objects.
func (c *Composition) Len() int { return len(c.objs) }

// At returns the i-th component.
func (c *Composition) At(i int) Object { return c.objs[i] }

// Invoke implements Object.
func (c *Composition) Invoke(e Env, v value.Value) value.Decision {
	d, _ := c.InvokeIndexed(e, v)
	return d
}

// InvokeIndexed runs the composition and additionally reports the index of
// the component that produced the decision, or -1 if the chain was exhausted
// without a decision (the result is then (0, v) for the final carried v).
func (c *Composition) InvokeIndexed(e Env, v value.Value) (value.Decision, int) {
	for i, o := range c.objs {
		e.MarkInvoke(o.Label(), v)
		d := o.Invoke(e, v)
		e.MarkReturn(o.Label(), d)
		if d.Decided {
			return d, i
		}
		v = d.V
	}
	return value.Continue(v), -1
}

// Label implements Object.
func (c *Composition) Label() string { return c.name }
