package core

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// fakeEnv is a minimal single-process Env for unit-testing compositions
// without the simulator.
type fakeEnv struct {
	file    *register.File
	pid, nn int
	invokes []string
	returns []string
}

func newFakeEnv() *fakeEnv { return &fakeEnv{file: register.NewFile(), nn: 1} }

func (f *fakeEnv) PID() int { return f.pid }
func (f *fakeEnv) N() int   { return f.nn }
func (f *fakeEnv) Read(r register.Reg) value.Value {
	return f.file.Load(r)
}
func (f *fakeEnv) Write(r register.Reg, v value.Value) { f.file.Store(r, v) }
func (f *fakeEnv) ProbWrite(r register.Reg, v value.Value, num, den uint64) bool {
	if num >= den {
		f.file.Store(r, v)
		return true
	}
	return false
}
func (f *fakeEnv) Collect(arr register.Array) []value.Value { return f.file.Snapshot(arr) }
func (f *fakeEnv) CheapCollect() bool                       { return true }
func (f *fakeEnv) CoinUint64() uint64                       { return 0 }
func (f *fakeEnv) CoinBool() bool                           { return false }
func (f *fakeEnv) CoinIntn(n int) int                       { return 0 }
func (f *fakeEnv) MarkInvoke(label string, v value.Value)   { f.invokes = append(f.invokes, label) }
func (f *fakeEnv) MarkReturn(label string, d value.Decision) {
	f.returns = append(f.returns, label)
}

var _ Env = (*fakeEnv)(nil)

// constObj returns a fixed decision regardless of input.
func constObj(name string, d value.Decision) Object {
	return Func{Name: name, F: func(Env, value.Value) value.Decision { return d }}
}

// addObj passes through, adding delta to the value, never deciding.
func addObj(name string, delta value.Value) Object {
	return Func{Name: name, F: func(_ Env, v value.Value) value.Decision {
		return value.Continue(v + delta)
	}}
}

func TestIdentity(t *testing.T) {
	e := newFakeEnv()
	d := (Identity{}).Invoke(e, 9)
	if d.Decided || d.V != 9 {
		t.Fatalf("Identity returned %s", d)
	}
	if (Identity{}).Label() != "identity" {
		t.Fatal("identity label")
	}
}

func TestComposeThreadsValues(t *testing.T) {
	e := newFakeEnv()
	c := Compose(addObj("a", 1), addObj("b", 10), addObj("c", 100))
	d := c.Invoke(e, 0)
	if d.Decided || d.V != 111 {
		t.Fatalf("composition returned %s, want (0, 111)", d)
	}
	if len(e.invokes) != 3 || len(e.returns) != 3 {
		t.Fatalf("marks: %v %v", e.invokes, e.returns)
	}
}

func TestComposeShortCircuitsOnDecision(t *testing.T) {
	// "A decision by X immediately terminates the composite object without
	// executing Y" (§3.2).
	e := newFakeEnv()
	executed := false
	tail := Func{Name: "tail", F: func(_ Env, v value.Value) value.Decision {
		executed = true
		return value.Continue(v)
	}}
	c := Compose(addObj("a", 1), constObj("d", value.Decide(42)), tail)
	d, idx := c.InvokeIndexed(e, 0)
	if !d.Decided || d.V != 42 {
		t.Fatalf("composition returned %s", d)
	}
	if idx != 1 {
		t.Fatalf("decided at index %d, want 1", idx)
	}
	if executed {
		t.Fatal("object after the decision was executed")
	}
}

func TestComposeAssociativity(t *testing.T) {
	// ((X; Y); Z) behaves exactly like (X; (Y; Z)) (§3.2).
	mk := func() (Object, Object, Object) {
		return addObj("x", 1), addObj("y", 2), addObj("z", 4)
	}
	x, y, z := mk()
	left := Compose(Compose(x, y), z)
	x2, y2, z2 := mk()
	right := Compose(x2, Compose(y2, z2))
	for _, input := range []value.Value{0, 5, 100} {
		dl := left.Invoke(newFakeEnv(), input)
		dr := right.Invoke(newFakeEnv(), input)
		if dl != dr {
			t.Fatalf("input %s: left %s != right %s", input, dl, dr)
		}
	}
	if left.Len() != 3 || right.Len() != 3 {
		t.Fatalf("flattening failed: %d, %d", left.Len(), right.Len())
	}
}

func TestComposeExhaustionReportsMinusOne(t *testing.T) {
	e := newFakeEnv()
	c := Compose(addObj("a", 1))
	d, idx := c.InvokeIndexed(e, 1)
	if d.Decided || d.V != 2 || idx != -1 {
		t.Fatalf("got %s at %d", d, idx)
	}
}

func TestComposeLabelAndAt(t *testing.T) {
	c := Compose(addObj("a", 0), addObj("b", 0))
	if c.Label() != "(a; b)" {
		t.Fatalf("label %q", c.Label())
	}
	if c.At(1).Label() != "b" {
		t.Fatalf("At(1) = %q", c.At(1).Label())
	}
}

// decideAt builds a Builder whose object decides iff index == target stage.
func decideAt(target int, calls *[]int) Builder {
	return func(_ *register.File, index int) Object {
		return Func{Name: labelFor("T", index), F: func(_ Env, v value.Value) value.Decision {
			*calls = append(*calls, index)
			if index == target {
				return value.Decide(v)
			}
			return value.Continue(v)
		}}
	}
}

func labelFor(prefix string, index int) string {
	if index < 0 {
		return prefix + "-1"
	}
	return prefix + string(rune('0'+index))
}

func TestProtocolValidation(t *testing.T) {
	file := register.NewFile()
	rb := func(f *register.File, i int) Object { return Identity{} }
	cases := []Options{
		{N: 0, File: file, NewRatifier: rb, Stages: 1},
		{N: 1, File: nil, NewRatifier: rb, Stages: 1},
		{N: 1, File: file, NewRatifier: nil, Stages: 1},
		{N: 1, File: file, NewRatifier: rb, Stages: -1},
		{N: 1, File: file, NewRatifier: rb}, // nothing to run
	}
	for i, opts := range cases {
		if _, err := NewProtocol(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestProtocolChainLayout(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier:    decideAt(999, &calls),
		NewConciliator: func(_ *register.File, i int) Object { return addObj(labelFor("C", i), 0) },
		Stages:         3,
		FastPath:       true,
		Fallback:       constObj("K", value.Decide(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// R-1, R0, C1, R1, C2, R2, C3, R3, K = 9 objects.
	if p.Len() != 9 {
		t.Fatalf("chain length %d, want 9", p.Len())
	}
}

func TestProtocolFastPathDecision(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier: decideAt(-1, &calls), // decide in R-1
		Stages:      2,
		NewConciliator: func(_ *register.File, i int) Object {
			return addObj(labelFor("C", i), 0)
		},
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := p.Run(newFakeEnv(), 7)
	if !ok || out != 7 {
		t.Fatalf("Run = %s, %v", out, ok)
	}
	stage, fb := p.DecidedStage(0)
	if stage != 0 || fb {
		t.Fatalf("DecidedStage = %d fallback=%v, want 0", stage, fb)
	}
	if p.DecidedIndex(0) != 0 {
		t.Fatalf("DecidedIndex = %d", p.DecidedIndex(0))
	}
}

func TestProtocolStageNumbers(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier: decideAt(2, &calls), // decide in R2
		NewConciliator: func(_ *register.File, i int) Object {
			return addObj(labelFor("C", i), 0)
		},
		Stages:   3,
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := p.Run(newFakeEnv(), 3)
	if !ok || out != 3 {
		t.Fatalf("Run = %s %v", out, ok)
	}
	if stage, fb := p.DecidedStage(0); stage != 2 || fb {
		t.Fatalf("DecidedStage = %d fb=%v, want 2", stage, fb)
	}
}

func TestProtocolFallback(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier: decideAt(999, &calls), // never decides
		Stages:      2,
		Fallback:    constObj("K", value.Decide(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := p.Run(newFakeEnv(), 11)
	if !ok || out != 11 {
		t.Fatalf("Run = %s %v", out, ok)
	}
	if stage, fb := p.DecidedStage(0); !fb || stage != -1 {
		t.Fatalf("DecidedStage = %d fb=%v, want fallback", stage, fb)
	}
}

func TestProtocolExhaustion(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier: decideAt(999, &calls),
		Stages:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := p.Run(newFakeEnv(), 4)
	if ok {
		t.Fatal("exhausted chain reported a decision")
	}
	if out != 4 {
		t.Fatalf("carried value %s", out)
	}
	if p.Exhausted() != 1 {
		t.Fatalf("Exhausted = %d", p.Exhausted())
	}
	if stage, _ := p.DecidedStage(0); stage != -1 {
		t.Fatalf("DecidedStage = %d for undecided", stage)
	}
}

func TestProtocolDefaultStages(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier:    decideAt(1, &calls),
		NewConciliator: func(_ *register.File, i int) Object { return Identity{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2*DefaultStages {
		t.Fatalf("chain length %d, want %d", p.Len(), 2*DefaultStages)
	}
}

func TestProtocolRatifierOnlyLayout(t *testing.T) {
	file := register.NewFile()
	var calls []int
	p, err := NewProtocol(Options{
		N: 1, File: file,
		NewRatifier: decideAt(3, &calls),
		Stages:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("chain length %d, want 5", p.Len())
	}
	out, ok := p.Run(newFakeEnv(), 2)
	if !ok || out != 2 {
		t.Fatalf("Run = %s %v", out, ok)
	}
	if stage, fb := p.DecidedStage(0); stage != 3 || fb {
		t.Fatalf("DecidedStage = %d, want 3", stage)
	}
}
