package core_test

// Property tests for the composition lemmas (§3.2): random chains of weak
// consensus objects — identities, ratifiers, conciliators — must themselves
// be weak consensus objects on every execution: outputs valid, coherence
// per object, termination. This exercises Lemmas 1–3 / Corollary 4 on real
// interleavings rather than on paper.

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// randomChain builds a random composition of weak consensus objects.
func randomChain(file *register.File, n, m int, src *xrand.Source) core.Object {
	length := 1 + src.Intn(5)
	objs := make([]core.Object, 0, length)
	for i := 0; i < length; i++ {
		switch src.Intn(4) {
		case 0:
			objs = append(objs, core.Identity{})
		case 1:
			objs = append(objs, ratifier.NewPool(file, m, i))
		case 2:
			objs = append(objs, conciliator.NewImpatient(file, n, i))
		default:
			objs = append(objs, conciliator.NewNaiveFirstMover(file, i))
		}
	}
	return core.Compose(objs...)
}

func randomScheduler(src *xrand.Source) sched.Scheduler {
	switch src.Intn(5) {
	case 0:
		return sched.NewRoundRobin()
	case 1:
		return sched.NewUniformRandom()
	case 2:
		return sched.NewLaggard()
	case 3:
		return sched.NewFirstMoverAttack()
	default:
		return sched.NewFixedOrder(src.Perm(4))
	}
}

func TestRandomChainsAreWeakConsensusObjects(t *testing.T) {
	const trials = 300
	src := xrand.New(2026)
	n, m := 4, 3
	for trial := 0; trial < trials; trial++ {
		file := register.NewFile()
		chain := randomChain(file, n, m, src)
		inputs := make([]value.Value, n)
		for i := range inputs {
			inputs[i] = value.Value(src.Intn(m))
		}
		run, err := harness.RunObject(chain, harness.ObjectConfig{
			N: n, File: file, Inputs: inputs,
			Scheduler: randomScheduler(src), Seed: src.Uint64(),
			Traced: true,
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, chain.Label(), err)
		}
		// Validity of the whole chain (Lemma 1 inductively).
		if err := check.Validity(inputs, run.Outputs()); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, chain.Label(), err)
		}
		// Coherence and per-object validity of every component, plus
		// acceptance for the ratifier components (Lemma 3).
		if err := check.Objects(run.Trace, "R"); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, chain.Label(), err)
		}
		// Chain-level coherence: if any process decided v, every output is v.
		var decided value.Value = value.None
		for _, d := range run.Decisions {
			if d.Decided {
				decided = d.V
			}
		}
		if !decided.IsNone() {
			for pid, d := range run.Decisions {
				if d.V != decided {
					t.Fatalf("trial %d (%s): pid %d output %s, decided %s",
						trial, chain.Label(), pid, d, decided)
				}
			}
		}
	}
}

func TestChainReplayDeterminism(t *testing.T) {
	// Rebuilding and re-running an identical chain with the same seed and
	// scheduler reproduces every process's decision exactly — the property
	// the experiment harness and the model checker both depend on.
	src := xrand.New(7)
	n, m := 3, 2
	for trial := 0; trial < 100; trial++ {
		seed := src.Uint64()
		build := func() []value.Decision {
			file := register.NewFile()
			objs := make([]core.Object, 4)
			for i := range objs {
				objs[i] = ratifier.NewPool(file, m, i)
			}
			chain := core.Compose(objs...)
			run, err := harness.RunObject(chain, harness.ObjectConfig{
				N: n, File: file, Inputs: []value.Value{0, 1, 0},
				Scheduler: sched.NewFixedOrder([]int{0, 1, 2}), Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			return run.Decisions
		}
		first, second := build(), build()
		for pid := range first {
			if first[pid] != second[pid] {
				t.Fatalf("trial %d: non-deterministic replay %v vs %v", trial, first, second)
			}
		}
	}
}
