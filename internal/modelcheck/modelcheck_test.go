package modelcheck

import (
	"errors"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

func binaryRatifier(file *register.File) core.Object { return ratifier.NewBinary(file, 1) }

func TestBinaryRatifierTwoProcessesExhaustive(t *testing.T) {
	// Every interleaving of two processes with conflicting inputs: the
	// strongest possible evidence for Theorem 8 at this size.
	stats, err := Exhaustive(binaryRatifier, []value.Value{0, 1}, Options{RatifierPrefix: "R"})
	if err != nil {
		t.Fatal(err)
	}
	// Each process does ≤4 ops: C(8,4)=70 schedules maximum; early exits
	// shrink some branches but the tree must still be substantial.
	if stats.Schedules < 20 {
		t.Fatalf("only %d schedules explored: %+v", stats.Schedules, stats)
	}
	if stats.MaxSteps > 8 {
		t.Fatalf("schedule of %d steps exceeds the 4-op bound: %+v", stats.MaxSteps, stats)
	}
	t.Logf("verified %d schedules (%d probes, max %d steps)", stats.Schedules, stats.Probes, stats.MaxSteps)
}

func TestBinaryRatifierUnanimousExhaustive(t *testing.T) {
	// Acceptance at every interleaving: all inputs 1 ⇒ all outputs (1,1).
	for _, v := range []value.Value{0, 1} {
		stats, err := Exhaustive(binaryRatifier, []value.Value{v, v}, Options{RatifierPrefix: "R"})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Schedules == 0 {
			t.Fatal("no schedules explored")
		}
	}
}

func TestBinaryRatifierThreeProcessesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=3 exploration")
	}
	for _, inputs := range [][]value.Value{
		{0, 1, 0}, {0, 1, 1}, {1, 0, 1}, {0, 0, 0},
	} {
		stats, err := Exhaustive(binaryRatifier, inputs, Options{RatifierPrefix: "R"})
		if err != nil {
			t.Fatalf("inputs %v: %v", inputs, err)
		}
		t.Logf("inputs %v: %d schedules, %d probes", inputs, stats.Schedules, stats.Probes)
	}
}

func TestPoolRatifierThreeValuesExhaustive(t *testing.T) {
	build := func(file *register.File) core.Object { return ratifier.NewPool(file, 3, 1) }
	stats, err := Exhaustive(build, []value.Value{0, 2}, Options{RatifierPrefix: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
}

func TestCollectRatifierExhaustive(t *testing.T) {
	build := func(file *register.File) core.Object { return ratifier.NewCollect(file, 2, 1) }
	stats, err := Exhaustive(build, []value.Value{0, 1}, Options{RatifierPrefix: "RC"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
}

func TestCompositionOfRatifiersExhaustive(t *testing.T) {
	// R1; R2 composed is still a weak consensus object (Corollary 4):
	// verify all interleavings of the two-object chain.
	build := func(file *register.File) core.Object {
		return core.Compose(ratifier.NewBinary(file, 1), ratifier.NewBinary(file, 2))
	}
	stats, err := Exhaustive(build, []value.Value{0, 1}, Options{RatifierPrefix: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxSteps > 16 {
		t.Fatalf("chain of two 4-op ratifiers took %d steps", stats.MaxSteps)
	}
}

// buggyRatifier decides its own input unconditionally — a coherence bomb
// the checker must find.
type buggyRatifier struct{ r register.Reg }

func (b buggyRatifier) Invoke(e core.Env, v value.Value) value.Decision {
	e.Write(b.r, v)
	return value.Decide(v)
}

func (b buggyRatifier) Label() string { return "R9" }

func TestDetectsCoherenceViolation(t *testing.T) {
	build := func(file *register.File) core.Object {
		return buggyRatifier{r: file.Alloc1("x")}
	}
	_, err := Exhaustive(build, []value.Value{0, 1}, Options{RatifierPrefix: "R"})
	if err == nil || !strings.Contains(err.Error(), "coherence") {
		t.Fatalf("err = %v, want coherence violation", err)
	}
}

// lyingRatifier returns a value nobody proposed.
type lyingRatifier struct{ r register.Reg }

func (b lyingRatifier) Invoke(e core.Env, v value.Value) value.Decision {
	e.Read(b.r)
	return value.Continue(42)
}

func (b lyingRatifier) Label() string { return "X" }

func TestDetectsValidityViolation(t *testing.T) {
	build := func(file *register.File) core.Object {
		return lyingRatifier{r: file.Alloc1("x")}
	}
	_, err := Exhaustive(build, []value.Value{0, 1}, Options{})
	if err == nil || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("err = %v, want validity violation", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	_, err := Exhaustive(binaryRatifier, []value.Value{0, 1}, Options{MaxSchedules: 3})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// spinner never halts; the depth cap must catch it.
type spinner struct{ r register.Reg }

func (s spinner) Invoke(e core.Env, v value.Value) value.Decision {
	for {
		e.Read(s.r)
	}
}

func (s spinner) Label() string { return "spin" }

func TestDepthCap(t *testing.T) {
	build := func(file *register.File) core.Object {
		return spinner{r: file.Alloc1("x")}
	}
	_, err := Exhaustive(build, []value.Value{0}, Options{MaxDepth: 16})
	if err == nil || !strings.Contains(err.Error(), "MaxDepth") {
		t.Fatalf("err = %v, want depth error", err)
	}
}

// prober uses a probabilistic write: the explorer must refuse it.
type prober struct{ r register.Reg }

func (p prober) Invoke(e core.Env, v value.Value) value.Decision {
	e.ProbWrite(p.r, v, 1, 2)
	return value.Decide(v)
}

func (p prober) Label() string { return "P" }

func TestRejectsRandomizedObjects(t *testing.T) {
	build := func(file *register.File) core.Object {
		return prober{r: file.Alloc1("x")}
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic on probabilistic write")
		}
	}()
	_, _ = Exhaustive(build, []value.Value{0}, Options{})
}
