// Package modelcheck exhaustively explores every schedule of a
// deterministic deciding object for small process counts, verifying the
// weak-consensus properties (validity, coherence, acceptance) on every
// reachable complete execution.
//
// Ratifiers are deterministic (§6), so the adversary's only power is the
// interleaving: for tiny n and m the full schedule tree is small enough to
// enumerate, which upgrades the randomized tests from "no violation found"
// to "no violation exists (at this size)". The explorer re-executes the
// object under the simulator for every schedule prefix (the simulator is
// deterministic given the schedule), so it needs no snapshot/restore
// machinery.
package modelcheck

import (
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// ErrBudget is returned when the schedule tree exceeds Options.MaxSchedules.
var ErrBudget = errors.New("modelcheck: schedule budget exhausted")

// Options bounds and configures an exploration.
type Options struct {
	// MaxSchedules caps the number of complete schedules explored
	// (default 1 << 20). Exceeding it returns ErrBudget.
	MaxSchedules int
	// MaxDepth caps schedule length as a safety net against objects that
	// fail to terminate (default 10 000 steps).
	MaxDepth int
	// RatifierPrefix enables acceptance checking for objects whose label
	// matches (see check.Objects); "R" for the quorum ratifiers.
	RatifierPrefix string
}

// Stats reports what an exploration covered.
type Stats struct {
	// Schedules is the number of complete executions verified.
	Schedules int
	// Probes is the number of simulator runs performed (one per explored
	// schedule prefix).
	Probes int
	// MaxSteps is the longest complete schedule seen.
	MaxSteps int
}

// Builder constructs a fresh instance of the object under test in the given
// file. It is called once per probe, so it must be deterministic.
type Builder func(file *register.File) core.Object

// Exhaustive explores every schedule of the object for the given inputs and
// verifies each complete execution. The object must be deterministic: any
// probabilistic write or local coin flip panics the exploration, because a
// schedule-only enumeration would silently miss coin branches.
func Exhaustive(build Builder, inputs []value.Value, opts Options) (Stats, error) {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 1 << 20
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 10_000
	}
	var stats Stats
	err := explore(build, inputs, nil, &opts, &stats)
	return stats, err
}

// explore probes the execution after the given schedule prefix and recurses
// on every runnable process.
func explore(build Builder, inputs []value.Value, prefix []int, opts *Options, stats *Stats) error {
	if len(prefix) > opts.MaxDepth {
		return fmt.Errorf("modelcheck: schedule longer than MaxDepth=%d (non-terminating object?)", opts.MaxDepth)
	}
	run, runnable, err := probe(build, inputs, prefix)
	if err != nil {
		return err
	}
	stats.Probes++
	if len(runnable) == 0 {
		// Complete execution: verify it.
		stats.Schedules++
		if len(prefix) > stats.MaxSteps {
			stats.MaxSteps = len(prefix)
		}
		if stats.Schedules > opts.MaxSchedules {
			return fmt.Errorf("%w (%d schedules)", ErrBudget, opts.MaxSchedules)
		}
		if err := check.Objects(run.Trace, opts.RatifierPrefix); err != nil {
			return fmt.Errorf("schedule %v: %w", prefix, err)
		}
		if err := check.Validity(inputs, run.Outputs()); err != nil {
			return fmt.Errorf("schedule %v: %w", prefix, err)
		}
		return nil
	}
	for _, pid := range runnable {
		next := make([]int, len(prefix)+1)
		copy(next, prefix)
		next[len(prefix)] = pid
		if err := explore(build, inputs, next, opts, stats); err != nil {
			return err
		}
	}
	return nil
}

// probe executes the object under the exact schedule prefix and reports the
// runnable set afterwards (empty when the execution completed within the
// prefix).
func probe(build Builder, inputs []value.Value, prefix []int) (*harness.ObjectRun, []int, error) {
	file := register.NewFile()
	obj := build(file)
	script := &scriptScheduler{script: prefix}
	run, err := harness.RunObject(obj, harness.ObjectConfig{
		N: len(inputs), File: file, Inputs: inputs, Scheduler: script,
		Traced: true, MaxSteps: len(prefix) + 1,
	})
	if err != nil && !script.captured {
		return nil, nil, fmt.Errorf("modelcheck: probe failed at prefix %v: %w", prefix, err)
	}
	return run, script.runnable, nil
}

// scriptScheduler replays a fixed schedule, then captures the runnable set
// at the first unscripted step (the run is cut off by MaxSteps immediately
// after).
type scriptScheduler struct {
	script   []int
	pos      int
	captured bool
	runnable []int
}

func (s *scriptScheduler) Next(v *sched.View) int {
	for _, pid := range v.Runnable {
		if v.Pending[pid].Kind == sched.OpProbWrite {
			panic("modelcheck: object used a probabilistic write; exhaustive exploration covers deterministic objects only")
		}
	}
	if s.pos < len(s.script) {
		pid := s.script[s.pos]
		s.pos++
		if !v.Pending[pid].Valid {
			panic(fmt.Sprintf("modelcheck: scripted pid %d not runnable (harness bug)", pid))
		}
		return pid
	}
	if !s.captured {
		s.captured = true
		s.runnable = append([]int(nil), v.Runnable...)
	}
	return v.Runnable[0]
}

func (s *scriptScheduler) Seed(*xrand.Source) {}

func (s *scriptScheduler) Name() string { return "script" }

// MinPower implements sched.Scheduler. Scripts replay adversary choices of
// any class; ValueOblivious gives the probe visibility of op kinds for the
// determinism guard without copying memory every step.
func (s *scriptScheduler) MinPower() sched.Power { return sched.ValueOblivious }
