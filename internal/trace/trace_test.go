package trace

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/value"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append(Event{Kind: Read})
	if l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log retained events")
	}
	if got := l.ByPID(0); got != nil {
		t.Fatalf("nil log ByPID = %v", got)
	}
}

func TestAppendAndFilter(t *testing.T) {
	l := New()
	l.Append(Event{Step: 0, PID: 0, Kind: Read, Reg: 1, Val: value.None})
	l.Append(Event{Step: 1, PID: 1, Kind: Write, Reg: 1, Val: 7})
	l.Append(Event{Step: 2, PID: 0, Kind: Read, Reg: 1, Val: 7})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	p0 := l.ByPID(0)
	if len(p0) != 2 || p0[0].Step != 0 || p0[1].Step != 2 {
		t.Fatalf("ByPID(0) = %v", p0)
	}
	writes := l.Filter(func(e Event) bool { return e.Kind == Write })
	if len(writes) != 1 || writes[0].Val != 7 {
		t.Fatalf("writes = %v", writes)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		Read: "read", Write: "write", ProbWrite: "probwrite",
		Collect: "collect", Coin: "coin", Invoke: "invoke",
		Return: "return", Halt: "halt", Crash: "crash",
		Kind(99): "kind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEventStringForms(t *testing.T) {
	tests := []struct {
		e    Event
		want []string // substrings that must appear
	}{
		{Event{Step: 3, PID: 1, Kind: Read, Reg: 2, Val: value.None}, []string{"p1", "read", "r2", "⊥"}},
		{Event{Step: 4, PID: 2, Kind: Write, Reg: 0, Val: 5}, []string{"write", "r0", "<- 5"}},
		{
			Event{Step: 5, PID: 0, Kind: ProbWrite, Reg: 1, Val: 9, ProbNum: 1, ProbDen: 8, Succeeded: true},
			[]string{"probwrite", "p=1/8", "hit"},
		},
		{
			Event{Step: 6, PID: 0, Kind: ProbWrite, Reg: 1, Val: 9, ProbNum: 1, ProbDen: 8},
			[]string{"miss"},
		},
		{Event{Step: -1, PID: 0, Kind: Coin, Val: 1}, []string{"coin", "-> 1", "     -"}},
		{Event{Step: -1, PID: 0, Kind: Invoke, Label: "C1", Val: 3}, []string{"invoke", "C1(3)"}},
		{Event{Step: -1, PID: 0, Kind: Return, Label: "R1", Val: 3, Decided: true}, []string{"(1, 3)"}},
		{Event{Step: -1, PID: 0, Kind: Halt, Val: 2}, []string{"decide 2"}},
		{Event{Step: 7, PID: 0, Kind: Collect, Reg: 4}, []string{"collect", "r4.."}},
	}
	for _, tt := range tests {
		s := tt.e.String()
		for _, sub := range tt.want {
			if !strings.Contains(s, sub) {
				t.Errorf("event %v rendered %q, missing %q", tt.e.Kind, s, sub)
			}
		}
	}
}

func TestLogString(t *testing.T) {
	l := New()
	l.Append(Event{Step: 0, PID: 0, Kind: Write, Reg: 0, Val: 1})
	l.Append(Event{Step: 1, PID: 1, Kind: Read, Reg: 0, Val: 1})
	s := l.String()
	if strings.Count(s, "\n") != 2 {
		t.Fatalf("expected 2 lines, got %q", s)
	}
}
