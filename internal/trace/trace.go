// Package trace records executions of the simulated shared-memory system.
//
// An execution in the paper's model (§2) is a sequence of operations and
// their return values. The simulator appends one Event per shared-memory
// operation it executes, plus bracketing events for object invocations and
// local coin flips, so that correctness checkers (internal/check) and humans
// (cmd/modcon-trace) can reconstruct exactly what happened.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"github.com/modular-consensus/modcon/internal/value"
)

// Kind enumerates event types.
type Kind int

const (
	// Read is an atomic register read.
	Read Kind = iota + 1
	// Write is an atomic register write.
	Write
	// ProbWrite is a probabilistic write attempt (the probabilistic-write
	// model of §2.1); Succeeded records the runtime's coin.
	ProbWrite
	// Collect is a cheap-collect of a register array (§6.2, choice 4).
	Collect
	// Coin is a local coin flip (free, invisible to weak adversaries).
	Coin
	// Invoke marks a process starting an operation on a deciding object.
	Invoke
	// Return marks a process finishing an operation on a deciding object.
	Return
	// Halt marks a process finishing its program with a final decision.
	Halt
	// Crash marks the adversary permanently de-scheduling a process.
	Crash
)

// String returns the event kind mnemonic.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case ProbWrite:
		return "probwrite"
	case Collect:
		return "collect"
	case Coin:
		return "coin"
	case Invoke:
		return "invoke"
	case Return:
		return "return"
	case Halt:
		return "halt"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one entry of an execution.
type Event struct {
	// Step is the index of this event among *work-counted* operations, or
	// -1 for free events (coins, invoke/return/halt markers).
	Step int
	// PID is the process that performed the event.
	PID int
	// Kind is the event type.
	Kind Kind
	// Reg is the register touched (first register for Collect), or -1.
	Reg int
	// Val is the value written, read, or (for Coin) the raw coin output;
	// for Invoke/Return/Halt it is the argument or result value.
	Val value.Value
	// Succeeded reports whether a ProbWrite took effect.
	Succeeded bool
	// ProbNum/ProbDen give the attempted write probability for ProbWrite.
	ProbNum, ProbDen uint64
	// Decided carries the decision bit for Return/Halt events.
	Decided bool
	// Label is the name of the object for Invoke/Return events.
	Label string
}

// String renders the event in a compact, human-readable form.
func (e Event) String() string {
	var b strings.Builder
	if e.Step >= 0 {
		fmt.Fprintf(&b, "%6d ", e.Step)
	} else {
		b.WriteString("     - ")
	}
	fmt.Fprintf(&b, "p%-3d %-9s", e.PID, e.Kind)
	switch e.Kind {
	case Read:
		fmt.Fprintf(&b, " r%-4d -> %s", e.Reg, e.Val)
	case Write:
		fmt.Fprintf(&b, " r%-4d <- %s", e.Reg, e.Val)
	case ProbWrite:
		status := "miss"
		if e.Succeeded {
			status = "hit"
		}
		fmt.Fprintf(&b, " r%-4d <- %s p=%d/%d %s", e.Reg, e.Val, e.ProbNum, e.ProbDen, status)
	case Collect:
		fmt.Fprintf(&b, " r%d..", e.Reg)
	case Coin:
		fmt.Fprintf(&b, " -> %d", int64(e.Val))
	case Invoke:
		fmt.Fprintf(&b, " %s(%s)", e.Label, e.Val)
	case Return:
		bit := 0
		if e.Decided {
			bit = 1
		}
		fmt.Fprintf(&b, " %s -> (%d, %s)", e.Label, bit, e.Val)
	case Halt:
		fmt.Fprintf(&b, " decide %s", e.Val)
	}
	return b.String()
}

// Log is an append-only execution record. A nil *Log is valid and discards
// everything, so the hot path of untraced runs stays allocation-free.
//
// Log is safe for concurrent appends: while the simulated runtime executes
// shared-memory operations one at a time, processes emit Invoke/Coin
// annotations from their own goroutines, and at the start of an execution
// (before any operation has been scheduled) those calls genuinely overlap.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Append adds an event. Append on a nil log is a no-op.
func (l *Log) Append(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Reset discards the recorded events, keeping the backing capacity, so one
// log can serve many executions of a pooled session without reallocating.
// Reset on a nil log is a no-op. Call it only between executions.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = l.events[:0]
	l.mu.Unlock()
}

// Clone returns an independent copy of the log. Pooled sweeps hand the copy
// to the merge step so the session can Reset its own log for the next trial.
// A nil log clones to nil.
func (l *Log) Clone() *Log {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := &Log{events: make([]Event, len(l.events))}
	copy(cp.events, l.events)
	return cp
}

// Events returns the recorded events. The slice is owned by the log and
// must not be mutated; read it only after the execution has completed.
// A nil log returns nil.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Filter returns the events satisfying keep, in order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByPID returns the events of a single process, in order.
func (l *Log) ByPID(pid int) []Event {
	return l.Filter(func(e Event) bool { return e.PID == pid })
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
