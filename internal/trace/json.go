package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/modular-consensus/modcon/internal/value"
)

// jsonEvent is the wire form of an Event. Values use pointers so ⊥ maps to
// JSON null rather than a magic number.
type jsonEvent struct {
	Step      int    `json:"step"`
	PID       int    `json:"pid"`
	Kind      string `json:"kind"`
	Reg       int    `json:"reg,omitempty"`
	Val       *int64 `json:"val,omitempty"`
	Succeeded bool   `json:"succeeded,omitempty"`
	ProbNum   uint64 `json:"probNum,omitempty"`
	ProbDen   uint64 `json:"probDen,omitempty"`
	Decided   bool   `json:"decided,omitempty"`
	Label     string `json:"label,omitempty"`
}

// kindNames maps Kind to its stable wire name; the inverse map is derived.
var kindNames = map[Kind]string{
	Read: "read", Write: "write", ProbWrite: "probwrite", Collect: "collect",
	Coin: "coin", Invoke: "invoke", Return: "return", Halt: "halt", Crash: "crash",
}

var kindValues = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func toJSON(e Event) jsonEvent {
	je := jsonEvent{
		Step: e.Step, PID: e.PID, Kind: kindNames[e.Kind], Reg: e.Reg,
		Succeeded: e.Succeeded, ProbNum: e.ProbNum, ProbDen: e.ProbDen,
		Decided: e.Decided, Label: e.Label,
	}
	if !e.Val.IsNone() {
		v := int64(e.Val)
		je.Val = &v
	}
	return je
}

func fromJSON(je jsonEvent) (Event, error) {
	kind, ok := kindValues[je.Kind]
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown event kind %q", je.Kind)
	}
	e := Event{
		Step: je.Step, PID: je.PID, Kind: kind, Reg: je.Reg,
		Succeeded: je.Succeeded, ProbNum: je.ProbNum, ProbDen: je.ProbDen,
		Decided: je.Decided, Label: je.Label, Val: value.None,
	}
	if je.Val != nil {
		e.Val = value.Value(*je.Val)
	}
	return e, nil
}

// WriteJSON serializes the log as a JSON array of events, one object per
// event, preserving execution order. Intended for archiving failing
// executions and for cross-language analysis of traces.
func (l *Log) WriteJSON(w io.Writer) error {
	events := l.Events()
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		out[i] = toJSON(e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a log previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var in []jsonEvent
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	l := New()
	for _, je := range in {
		e, err := fromJSON(je)
		if err != nil {
			return nil, err
		}
		l.Append(e)
	}
	return l, nil
}
