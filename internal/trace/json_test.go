package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/value"
)

func sampleLog() *Log {
	l := New()
	l.Append(Event{Step: 0, PID: 0, Kind: Write, Reg: 2, Val: 7})
	l.Append(Event{Step: 1, PID: 1, Kind: Read, Reg: 2, Val: 7})
	l.Append(Event{Step: 2, PID: 1, Kind: ProbWrite, Reg: 3, Val: 9, ProbNum: 1, ProbDen: 8, Succeeded: true})
	l.Append(Event{Step: -1, PID: 0, Kind: Coin, Val: 1})
	l.Append(Event{Step: -1, PID: 0, Kind: Invoke, Label: "C1", Val: 0})
	l.Append(Event{Step: -1, PID: 0, Kind: Return, Label: "C1", Val: 0, Decided: true})
	l.Append(Event{Step: 3, PID: 0, Kind: Read, Reg: 0, Val: value.None})
	l.Append(Event{Step: -1, PID: 0, Kind: Halt, Val: 0})
	l.Append(Event{Step: -1, PID: 1, Kind: Crash})
	return l
}

func TestJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round-trip length %d, want %d", back.Len(), l.Len())
	}
	for i, e := range l.Events() {
		if back.Events()[i] != e {
			t.Fatalf("event %d: %+v != %+v", i, back.Events()[i], e)
		}
	}
}

func TestJSONNoneIsNull(t *testing.T) {
	l := New()
	l.Append(Event{Step: 0, PID: 0, Kind: Read, Reg: 1, Val: value.None})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "-9223372036854775808") {
		t.Fatalf("⊥ leaked as a magic number: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Events()[0].Val.IsNone() {
		t.Fatal("⊥ did not survive the round trip")
	}
}

func TestJSONEmptyAndNilLog(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("len %d", back.Len())
	}
	buf.Reset()
	var nilLog *Log
	if err := nilLog.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"kind":"teleport"}]`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestJSONKindCoverage(t *testing.T) {
	// Every Kind must have a stable wire name.
	for k := Read; k <= Crash; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no wire name", int(k))
		}
	}
}
