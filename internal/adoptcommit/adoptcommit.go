// Package adoptcommit exposes the paper's ratifiers under the interface
// that later literature standardized as the *adopt-commit object* (Gafni's
// terminology; Aspnes's own subsequent papers identify ratifiers with
// adopt-commit objects). It is a thin, semantics-preserving facade over
// internal/ratifier for downstream users who think in adopt-commit terms:
//
//   - Propose(v) returns (Commit, v') or (Adopt, v').
//   - Agreement/coherence: if any process gets (Commit, v), every process
//     gets (·, v).
//   - Convergence/acceptance: if all processes propose the same v, every
//     process gets (Commit, v).
//   - Validity: v' is some process's proposal.
//
// The classic recipe "consensus = adopt-commit objects + coin-flip rounds"
// is exactly the paper's conciliator/ratifier chain with the roles renamed.
package adoptcommit

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Status is the adopt-commit outcome flag.
type Status int

const (
	// Adopt means: take this value forward, agreement not yet certain.
	Adopt Status = iota + 1
	// Commit means: decide this value, everyone else is coherent with it.
	Commit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Adopt:
		return "adopt"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Object is a one-shot m-valued adopt-commit object over atomic registers,
// using lg m + Θ(log log m) registers and operations (Theorem 10).
type Object struct {
	r *ratifier.Quorum
}

// New allocates an adopt-commit object for values 0..m-1. index labels the
// instance in traces.
func New(file *register.File, m, index int) *Object {
	if m == 2 {
		return &Object{r: ratifier.NewBinary(file, index)}
	}
	return &Object{r: ratifier.NewPool(file, m, index)}
}

// Propose runs the calling process's single operation.
func (o *Object) Propose(e core.Env, v value.Value) (Status, value.Value) {
	d := o.r.Invoke(e, v)
	if d.Decided {
		return Commit, d.V
	}
	return Adopt, d.V
}

// Registers returns the object's register count.
func (o *Object) Registers() int { return o.r.Registers() }

// AsDeciding adapts the object back to the deciding-object interface
// (Commit ↦ decision bit 1), so it can be composed with conciliators.
func (o *Object) AsDeciding() core.Object { return o.r }
