package adoptcommit

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/modelcheck"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

type outcome struct {
	status Status
	v      value.Value
}

func propose(t *testing.T, m, n int, inputs []value.Value, s sched.Scheduler, seed uint64) []outcome {
	t.Helper()
	file := register.NewFile()
	obj := New(file, m, 1)
	outs := make([]outcome, n)
	_, err := sim.Run(sim.Config{N: n, File: file, Scheduler: s, Seed: seed},
		func(e *sim.Env) value.Value {
			st, v := obj.Propose(e, inputs[e.PID()])
			outs[e.PID()] = outcome{st, v}
			return v
		})
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestConvergence(t *testing.T) {
	// All propose v ⇒ all (Commit, v), for both register layouts.
	for _, m := range []int{2, 5} {
		for v := 0; v < m; v++ {
			outs := propose(t, m, 3, []value.Value{value.Value(v), value.Value(v), value.Value(v)},
				sched.NewUniformRandom(), uint64(v))
			for pid, o := range outs {
				if o.status != Commit || o.v != value.Value(v) {
					t.Fatalf("m=%d pid=%d got (%s, %s)", m, pid, o.status, o.v)
				}
			}
		}
	}
}

func TestCommitAgreement(t *testing.T) {
	// If anyone commits v, everyone holds v.
	for seed := uint64(0); seed < 100; seed++ {
		inputs := []value.Value{0, 1, 0, 1}
		outs := propose(t, 2, 4, inputs, sched.NewUniformRandom(), seed)
		committed := value.None
		for _, o := range outs {
			if o.status == Commit {
				committed = o.v
			}
		}
		if committed.IsNone() {
			continue
		}
		for pid, o := range outs {
			if o.v != committed {
				t.Fatalf("seed %d: pid %d holds %s but %s was committed", seed, pid, o.v, committed)
			}
		}
	}
}

func TestValidity(t *testing.T) {
	inputs := []value.Value{3, 1, 4}
	for seed := uint64(0); seed < 30; seed++ {
		outs := propose(t, 5, 3, inputs, sched.NewUniformRandom(), seed)
		for pid, o := range outs {
			ok := false
			for _, in := range inputs {
				if o.v == in {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("seed %d: pid %d got non-proposed value %s", seed, pid, o.v)
			}
		}
	}
}

func TestExhaustiveSmall(t *testing.T) {
	// Every schedule of the adopt-commit object at n=2 via the model
	// checker (through the deciding-object adapter).
	build := func(file *register.File) core.Object {
		return New(file, 2, 1).AsDeciding()
	}
	stats, err := modelcheck.Exhaustive(build, []value.Value{0, 1},
		modelcheck.Options{RatifierPrefix: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
}

func TestRegisterFootprint(t *testing.T) {
	file := register.NewFile()
	if got := New(file, 2, 1).Registers(); got != 3 {
		t.Fatalf("binary adopt-commit uses %d registers, want 3", got)
	}
	file2 := register.NewFile()
	if got := New(file2, 1000, 1).Registers(); got != 14 { // MinPoolSize(1000)=13, +1 proposal
		t.Fatalf("m=1000 adopt-commit uses %d registers, want 14", got)
	}
}

func TestStatusStrings(t *testing.T) {
	if Adopt.String() != "adopt" || Commit.String() != "commit" {
		t.Fatal("status strings")
	}
	if Status(9).String() != "status(9)" {
		t.Fatal("unknown status string")
	}
}
