package exec

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/xrand"
)

func TestTrialSeedDeterministicAndDispersed(t *testing.T) {
	if TrialSeed(1, 0) != TrialSeed(1, 0) {
		t.Fatal("TrialSeed is not a pure function")
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		s := TrialSeed(42, i)
		if seen[s] {
			t.Fatalf("TrialSeed collision at index %d", i)
		}
		seen[s] = true
	}
	if TrialSeed(1, 7) == TrialSeed(2, 7) {
		t.Fatal("distinct roots give identical trial seeds")
	}
}

func TestProcStreamsIndependent(t *testing.T) {
	root := xrand.New(9)
	c0, c1 := ProcCoins(root, 0), ProcCoins(root, 1)
	p0 := ProcProb(root, 0)
	if c0.Uint64() == c1.Uint64() {
		t.Fatal("pid 0 and pid 1 coin streams coincide")
	}
	// Re-deriving from an un-advanced root must reproduce the stream.
	root2 := xrand.New(9)
	if ProcProb(root2, 0).Uint64() != p0.Uint64() {
		t.Fatal("ProcProb is not reproducible from the root seed")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{N: 0, File: register.NewFile()}).Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if err := (&Config{N: 1}).Validate(); err == nil {
		t.Fatal("nil file accepted")
	}
	if err := (&Config{N: 1, File: register.NewFile()}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramsBroadcastAndMismatch(t *testing.T) {
	var p Program = nil
	got, err := Programs(3, []Program{p})
	if err != nil || len(got) != 3 {
		t.Fatalf("broadcast: len=%d err=%v", len(got), err)
	}
	if _, err := Programs(3, []Program{p, p}); err == nil {
		t.Fatal("2 programs for 3 processes accepted")
	}
	if got, err := Programs(2, []Program{p, p}); err != nil || len(got) != 2 {
		t.Fatalf("exact: len=%d err=%v", len(got), err)
	}
}

func TestNewResultDefaults(t *testing.T) {
	r := NewResult(2)
	for _, v := range r.Outputs {
		if !v.IsNone() {
			t.Fatal("outputs not initialized to ⊥")
		}
	}
	r.Work = []int{3, 7}
	if r.MaxIndividualWork() != 7 {
		t.Fatal("MaxIndividualWork wrong")
	}
	r.Halted[1] = true
	r.Outputs[1] = 5
	out := r.HaltedOutputs()
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("HaltedOutputs = %v", out)
	}
}
