// Package exec defines the backend-neutral execution contract: what it
// means to run n process programs against a shared register file, and what
// an execution reports back.
//
// The paper's whole point is modularity — deciding objects are written once
// against the abstract shared-memory Env (internal/core) and make sense in
// any execution model that honors it. This package is the runtime-side
// mirror of that contract: a Backend configures an execution (process
// count, register file, seed, crash plan, cost model, cancellation,
// optional adversary and tracing) and returns a shared Result (per-process
// outputs and fates, the paper's total/individual work measures, step
// count, optional trace).
//
// Two backends implement the contract today:
//
//   - internal/sim — the deterministic discrete-event simulator. The
//     adversary is an explicit sched.Scheduler, executions are pure
//     functions of (programs, scheduler, seed), and full traces can be
//     recorded. It is the ground truth for the paper's cost measures.
//   - internal/live — sync/atomic registers and free-running goroutines.
//     The "adversary" is the hardware scheduler, so runs measure wall-clock
//     behavior; operation counts are still exact, only the interleaving is
//     uncontrolled.
//
// Capabilities make the differences explicit instead of implicit: a caller
// that asks a backend for a feature it lacks (an adversary schedule on
// live, a trace on live) gets a clean error, not silent misbehavior.
// Future models — weaker registers, message-passing shims, remote
// execution — slot in as new Backend implementations rather than forks of
// the harness.
package exec

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// ErrStepLimit is returned by Backend.Run when the execution exceeds
// Config.MaxSteps before every live process halts. Randomized wait-free
// protocols terminate with probability 1 but not surely, so a limit keeps
// adversarial experiments finite; hitting it is reported, never hidden.
var ErrStepLimit = errors.New("exec: step limit exceeded")

// ErrCancelled is returned (wrapped, together with the context's cause) by
// Backend.Run when Config.Context is cancelled before every process halts.
var ErrCancelled = errors.New("exec: execution cancelled")

// ErrSessionPoisoned is returned by Session.Run when a previous trial on the
// same session panicked or aborted in a way that may have left the engine's
// reusable state (register image, coroutines, buffers) inconsistent. A
// poisoned session must be Closed and replaced; pools discard it rather than
// reuse it.
var ErrSessionPoisoned = errors.New("exec: session poisoned by a previous trial")

// Program is the code of one process, written against the backend-neutral
// Env. It receives its environment and returns the process's final value.
// Programs must perform all shared-memory access through the Env.
type Program func(e core.Env) value.Value

// Config describes one execution, independent of the backend running it.
type Config struct {
	// N is the number of processes.
	N int
	// File is the shared register file the programs were built against.
	// Backends mirror its layout and initial contents into their own
	// memory; the file itself is not mutated by non-sim backends.
	File *register.File
	// Scheduler is the explicit adversary. It is honored only by backends
	// whose Capabilities report Adversary (and required by them); backends
	// without adversary control reject a non-nil Scheduler.
	Scheduler sched.Scheduler
	// Seed determines every random choice the backend controls. On a
	// deterministic backend that is the whole execution; on live it covers
	// the per-process coin streams but not the interleaving.
	Seed uint64
	// Trace, if non-nil, records the execution. Only backends whose
	// Capabilities report Tracing accept it.
	Trace *trace.Log
	// CheapCollect enables the cheap-collect cost model (§6.2, choice 4):
	// Env.Collect costs one operation instead of one per register.
	CheapCollect bool
	// Registers selects the register consistency model (the zero value is
	// register.Atomic, the paper's base model). Backends honor only the
	// models their Capabilities.Semantics set contains and reject the rest
	// up front. Under register.Regular a read that overlaps a write may
	// return the old value, resolved deterministically from the schedule
	// plus a dedicated RNG stream; under register.Interposed reads stay
	// atomic but the adversary's view of in-flight operations is blunted
	// (Attiya–Enea–Welch).
	Registers register.Semantics
	// Faults is the typed fault plan for this execution: crashes (after k
	// own operations or on a global round), stalls, per-operation delay
	// jitter, and lost probabilistic-write coins. Backends compile it with
	// fault.Compile and honor the injector at their operation boundaries;
	// crash semantics match the paper's model (the last operation takes
	// effect, the process never observes the result). A nil or empty plan
	// is bit-identical to a fault-free execution. Plans containing stall
	// faults require a non-nil Context, since a stalled process never halts
	// and only cancellation can end the execution.
	Faults *fault.Plan
	// MaxSteps bounds total work. On sim, 0 means the simulator's default
	// bound; on live, 0 means unbounded (the hardware scheduler is fair in
	// practice, and Context is the idiomatic way to bound wall-clock runs).
	MaxSteps int
	// Context, if non-nil, cancels the execution at the next operation
	// boundary. Cancellation is reported as an error wrapping both
	// ErrCancelled and the context's cause.
	Context context.Context
	// Meter, if non-nil, receives a live count of executed operations while
	// the run is in flight, for progress reporting. Backends must honor the
	// zero-overhead-when-off contract: a nil Meter costs one predictable
	// branch per step and zero allocations (pinned by the sim allocation
	// tests). Metering never affects results.
	Meter *obs.Meter
}

// Validate checks the backend-independent requirements of a Config.
func (cfg *Config) Validate() error {
	if cfg.N <= 0 {
		return fmt.Errorf("exec: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return errors.New("exec: nil register file")
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.N); err != nil {
			return fmt.Errorf("exec: %w", err)
		}
		if cfg.Faults.HasStall() && cfg.Context == nil {
			return errors.New("exec: stall faults require a Context (a stalled process never halts; only cancellation ends the execution)")
		}
	}
	return nil
}

// Capabilities declares what a backend can do, so callers can reject
// unsupported options up front with a precise error.
type Capabilities struct {
	// Adversary reports whether the backend honors Config.Scheduler. When
	// false the interleaving is outside the caller's control and a non-nil
	// Scheduler is a configuration error.
	Adversary bool
	// Tracing reports whether the backend can record Config.Trace.
	Tracing bool
	// Deterministic reports whether an execution is a pure function of
	// (programs, scheduler, seed) — replayable bit for bit.
	Deterministic bool
	// WallClock reports whether elapsed time on this backend is a
	// meaningful performance measurement (real hardware concurrency) as
	// opposed to simulated model cost.
	WallClock bool
	// Reusable reports whether NewSession returns a genuinely resettable
	// engine that amortizes construction across trials (0 allocs/trial on
	// sim after warmup). Backends without one still implement NewSession —
	// via the NewOneShotSession fallback, which rebuilds per Run — so
	// callers can always program against the Session seam; Reusable only
	// tells them whether pooling actually buys throughput.
	Reusable bool
	// Semantics is the set of register consistency models the backend can
	// execute (always at least register.Atomic). A Config.Registers outside
	// the set is a configuration error the caller reports before running.
	Semantics register.SemanticsSet
	// Batched reports whether NewSession's sessions also implement
	// BatchSession natively, i.e. running a lane of K trials through
	// RunBatch amortizes real work (dispatch, staging, per-trial setup)
	// instead of just looping Run. The harness routes eligible sweep cells
	// through lanes only on backends that report it; everyone else falls
	// back to per-trial Run (or the RunSeeds loop, which is semantically a
	// batch but buys nothing).
	Batched bool
}

// Session is one reusable execution context: the per-trial analogue of the
// per-step zero-allocation contract. A session is created once per (config,
// programs) cell and then Run once per trial with that trial's seed.
//
// Contract:
//
//   - Run replays the execution Backend.Run(cfg with Seed: seed, Context:
//     ctx) would produce, bit for bit on deterministic backends.
//   - The returned Result and everything it references (slices, trace) are
//     owned by the session and are invalidated by the next Run; callers
//     that retain anything across trials must deep-copy first.
//   - ctx is per-Run (the robust trial engine arms a fresh watchdog context
//     per attempt); configs whose fault plans contain stalls must pass a
//     non-nil ctx to every Run.
//   - A session is not safe for concurrent use; pools hand each worker its
//     own.
//   - After a Run panics, the session is poisoned: subsequent Runs return
//     ErrSessionPoisoned and the only valid call is Close.
type Session interface {
	// Run executes one trial with the given seed.
	Run(ctx context.Context, seed uint64) (*Result, error)
	// Close releases the session's resources (coroutines, buffers). A
	// session must be closed exactly once; Run after Close is invalid.
	Close() error
}

// BatchSession is a Session that can run a whole lane of trials in one
// call, amortizing per-trial dispatch across the batch. Sessions of backends
// whose Capabilities report Batched implement it natively (sim); any Session
// can be driven batch-wise through RunSeeds, which loops Run with the same
// begin/emit protocol.
//
// Contract, on top of Session's:
//
//   - RunBatch runs one trial per seed, in order, exactly as consecutive
//     Run(ctx, seeds[k]) calls would — bit-identical results on
//     deterministic backends, which is what lets the harness route a sweep
//     through lanes without changing its aggregates.
//   - begin, if non-nil, is invoked before trial k starts; it is the
//     caller's hook for staging per-trial state (the harness sets trial
//     inputs there). A begin error is trial k's error: it arrives through
//     emit and the batch moves on.
//   - emit receives each trial's session-owned result, invalidated when the
//     next trial starts (deep-copy to retain); returning false stops the
//     batch early with no error.
//   - RunBatch returns an error only when the session itself can no longer
//     run trials (closed, poisoned); per-trial errors arrive through emit.
type BatchSession interface {
	Session
	RunBatch(ctx context.Context, seeds []uint64, begin func(k int) error, emit func(k int, res *Result, err error) bool) error
}

// RunSeeds drives any Session through the BatchSession begin/emit protocol
// by looping Run — the uniform fallback for sessions without a native
// RunBatch, and the reference semantics native implementations must match.
func RunSeeds(s Session, ctx context.Context, seeds []uint64, begin func(k int) error, emit func(k int, res *Result, err error) bool) error {
	for k, seed := range seeds {
		if begin != nil {
			if err := begin(k); err != nil {
				if !emit(k, nil, err) {
					return nil
				}
				continue
			}
		}
		res, err := s.Run(ctx, seed)
		if !emit(k, res, err) {
			return nil
		}
	}
	return nil
}

// Backend runs process programs against shared registers under one
// execution model. Implementations: internal/sim (Backend()) and
// internal/live (Backend()).
type Backend interface {
	// Name identifies the backend in errors and reports ("sim", "live").
	Name() string
	// Capabilities declares the backend's feature set.
	Capabilities() Capabilities
	// Run executes programs[pid] for each pid under cfg. If len(programs)
	// is 1 the single program is used for every process. Run returns the
	// (possibly partial) result together with any execution error, and
	// panics if a process program panics (with the original panic value).
	Run(cfg Config, programs ...Program) (*Result, error)
	// NewSession prepares a reusable execution context for many trials of
	// the same (cfg, programs) cell; cfg.Seed and cfg.Context are ignored
	// in favor of the per-Run arguments. Backends whose Capabilities lack
	// Reusable return a one-shot session that rebuilds per Run (see
	// NewOneShotSession), so the seam is uniform.
	NewSession(cfg Config, programs ...Program) (Session, error)
}

// oneShotSession adapts Backend.Run to the Session interface for backends
// without a resettable engine: every Run pays full construction, exactly as
// a direct Backend.Run call would.
type oneShotSession struct {
	backend  Backend
	cfg      Config
	programs []Program
	closed   bool
}

// NewOneShotSession returns a Session that delegates each Run to
// b.Run(cfg with that run's seed and context). It is the fallback
// implementation of Backend.NewSession for backends that rebuild per trial
// (live); it is correct there because such backends mirror cfg.File into
// their own memory per Run and never mutate shared state across runs.
func NewOneShotSession(b Backend, cfg Config, programs ...Program) (Session, error) {
	if len(programs) == 0 {
		return nil, errors.New("exec: NewOneShotSession with no programs")
	}
	ps := make([]Program, len(programs))
	copy(ps, programs)
	return &oneShotSession{backend: b, cfg: cfg, programs: ps}, nil
}

// Run implements Session.
func (s *oneShotSession) Run(ctx context.Context, seed uint64) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("exec: Run on closed session (backend %s)", s.backend.Name())
	}
	cfg := s.cfg
	cfg.Seed = seed
	cfg.Context = ctx
	return s.backend.Run(cfg, s.programs...)
}

// RunBatch implements BatchSession by looping Run: no amortization, just
// the uniform seam (see RunSeeds). Backends served by one-shot sessions
// report Batched: false, so the harness never routes lanes here.
func (s *oneShotSession) RunBatch(ctx context.Context, seeds []uint64, begin func(k int) error, emit func(k int, res *Result, err error) bool) error {
	return RunSeeds(s, ctx, seeds, begin, emit)
}

// Close implements Session.
func (s *oneShotSession) Close() error {
	s.closed = true
	return nil
}

// Result summarizes an execution in backend-neutral terms.
type Result struct {
	// Outputs holds each process's final value; value.None if it never
	// halted (crashed, cancelled, or the step limit cut the run short).
	Outputs []value.Value
	// Halted reports which processes returned from their Program.
	Halted []bool
	// Crashed reports which processes the runtime crashed (crash faults).
	Crashed []bool
	// Stalled reports which processes a stall fault froze: the process is
	// neither halted nor crashed — it holds its state forever and performs
	// no further operations until cancellation tears the execution down.
	// Allocated only when the plan contains stall faults, and omitted from
	// JSON when nil so fault-free results marshal identically to the golden
	// fixtures in internal/sim/testdata.
	Stalled []bool `json:"Stalled,omitempty"`
	// Work is the per-process operation count (the paper's individual
	// work). The Env contract prices operations identically on every
	// backend, so Work is backend-independent for the same interleaving.
	Work []int
	// TotalWork is the total operation count (the paper's total work).
	TotalWork int
	// Steps counts scheduled operations. On sim it equals TotalWork (one
	// operation per scheduled step); backends without a global step
	// sequence report TotalWork here too. Excluded from JSON so results
	// marshal identically to the pre-seam golden fixtures that pin engine
	// equivalence (internal/sim/testdata).
	Steps int `json:"-"`
	// Trace is the recorded execution when tracing was requested and the
	// backend supports it; nil otherwise. Excluded from JSON for the same
	// reason as Steps (traces have their own JSON encoding in
	// internal/trace).
	Trace *trace.Log `json:"-"`
}

// NewResult allocates a Result for n processes with all outputs ⊥.
func NewResult(n int) *Result {
	r := &Result{
		Outputs: make([]value.Value, n),
		Halted:  make([]bool, n),
		Crashed: make([]bool, n),
		Work:    make([]int, n),
	}
	for i := range r.Outputs {
		r.Outputs[i] = value.None
	}
	return r
}

// MaxIndividualWork returns max over processes of Work.
func (r *Result) MaxIndividualWork() int {
	m := 0
	for _, w := range r.Work {
		if w > m {
			m = w
		}
	}
	return m
}

// HaltedOutputs returns the outputs of processes that halted.
func (r *Result) HaltedOutputs() []value.Value {
	var out []value.Value
	for pid, h := range r.Halted {
		if h {
			out = append(out, r.Outputs[pid])
		}
	}
	return out
}

// Programs resolves a 1-or-N program slice to exactly one program per
// process, broadcasting a single program to all n. Backends share this so
// the overload rule cannot drift between them.
func Programs(n int, programs []Program) ([]Program, error) {
	switch len(programs) {
	case n:
		return programs, nil
	case 1:
		one := programs[0]
		out := make([]Program, n)
		for i := range out {
			out[i] = one
		}
		return out, nil
	default:
		return nil, fmt.Errorf("exec: got %d programs for %d processes", len(programs), n)
	}
}

// TrialSeed derives the seed of trial i from a sweep's root seed. It is a
// pure function (splitmix64-style finalizers over root and index), so a
// sweep's per-trial seeds are reproducible across machines, worker counts,
// and backends; distinct (root, index) pairs give statistically independent
// streams. The scheme is documented in README.md ("Reproducibility").
// internal/harness re-exports it; it lives here so every backend and
// driver derives seeds the same way.
func TrialSeed(root uint64, i int) uint64 {
	x := root ^ 0x9e3779b97f4a7c15
	x = mix64(x)
	x ^= uint64(i)*0xd1b54a32d192ed03 + 0x8cb92ba72f3d8dd7
	return mix64(x)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Per-process random streams are derived from the execution's root source
// with fixed split indices. Both backends MUST use these helpers: the
// derivation being shared is what makes adversary-free (single-process)
// executions bit-equivalent across backends — same coins, same
// probabilistic-write outcomes, same decisions, same op counts — which the
// cross-backend equivalence tests pin.
const (
	procCoinStream = 1         // + pid: local coin flips (cost 0)
	procProbStream = 1_000_000 // + pid: probabilistic-write coins
	semStream      = 3_000_000 // shared schedule-ordered register-semantics coins (sim)
	procSemStream  = 3_000_001 // + pid: per-process register-semantics coins (live)
)

// ProcCoins derives process pid's local-coin stream from the root source.
func ProcCoins(root *xrand.Source, pid int) *xrand.Source {
	return root.Split(uint64(procCoinStream + pid))
}

// ProcProb derives process pid's probabilistic-write coin stream from the
// root source.
func ProcProb(root *xrand.Source, pid int) *xrand.Source {
	return root.Split(uint64(procProbStream + pid))
}

// ProcCoinsInto reseeds dst in place with process pid's local-coin stream —
// the allocation-free form of ProcCoins used by reusable engines on every
// Reset. The two must agree bit for bit (both go through Source.SplitInto).
func ProcCoinsInto(dst *xrand.Source, root *xrand.Source, pid int) {
	root.SplitInto(dst, uint64(procCoinStream+pid))
}

// ProcProbInto reseeds dst in place with process pid's probabilistic-write
// coin stream, the allocation-free form of ProcProb.
func ProcProbInto(dst *xrand.Source, root *xrand.Source, pid int) {
	root.SplitInto(dst, uint64(procProbStream+pid))
}

// SemCoinsInto reseeds dst in place with the execution's shared
// register-semantics stream: the coins that resolve overlapping reads under
// register.Regular on the simulator. One shared stream, consumed in
// schedule order, keeps resolution a pure function of (schedule, seed).
// Derived only when the configured model needs it, so atomic executions
// draw exactly the streams they always did.
func SemCoinsInto(dst *xrand.Source, root *xrand.Source) {
	root.SplitInto(dst, semStream)
}

// ProcSemCoins derives process pid's register-semantics stream, used by the
// live backend where there is no global schedule order to consume a shared
// stream in. Disjoint from the sim stream index by construction.
func ProcSemCoins(root *xrand.Source, pid int) *xrand.Source {
	return root.Split(uint64(procSemStream + pid))
}
