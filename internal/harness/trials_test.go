package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestTrialSeedDeterministicAndDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		s := TrialSeed(42, i)
		if s2 := TrialSeed(42, i); s2 != s {
			t.Fatalf("TrialSeed(42, %d) unstable: %d != %d", i, s, s2)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("TrialSeed collision: trials %d and %d both got %d", j, i, s)
		}
		seen[s] = i
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Fatal("distinct roots gave identical trial-0 seeds")
	}
}

// consensusAggregate folds one sweep of full consensus executions and
// returns the aggregate statistics, exactly as the experiment drivers do.
func consensusAggregate(t *testing.T, workers int) (stats.Summary, stats.Summary, stats.Tally) {
	t.Helper()
	const n, trials = 8, 48
	var total, individual stats.Acc
	var decided stats.Tally
	err := SweepProtocol(
		Sweep{Trials: trials, Workers: workers, Seed: 99},
		ProtocolSweep{
			Build: func() (*core.Protocol, ObjectConfig) {
				file := register.NewFile()
				proto, err := core.NewProtocol(core.Options{
					N: n, File: file,
					NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
					NewConciliator: func(f *register.File, i int) core.Object {
						return conciliator.NewImpatient(f, n, i)
					},
					FastPath: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return proto, ObjectConfig{N: n, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewUniformRandom()}
			},
			Inputs: func(tr Trial) []value.Value {
				inputs := make([]value.Value, n)
				for p := range inputs {
					inputs[p] = value.Value((p + tr.Index) % 2)
				}
				return inputs
			},
		},
		func(tr Trial, run *ProtocolRun) {
			total.AddInt(run.Result.TotalWork)
			individual.AddInt(run.Result.MaxIndividualWork())
			decided.Add(len(run.DecidedOutputs()) == n)
		})
	if err != nil {
		t.Fatal(err)
	}
	return total.Summary(), individual.Summary(), decided
}

// TestSweepDeterministicAcrossWorkerCounts is the contract the experiments
// rely on: the same root seed produces bit-identical aggregates whether the
// sweep runs on 1, 4, or 16 workers.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	refTotal, refInd, refDec := consensusAggregate(t, 1)
	for _, workers := range []int{4, 16} {
		total, ind, dec := consensusAggregate(t, workers)
		if total != refTotal {
			t.Errorf("workers=%d total-work summary diverged: %+v != %+v", workers, total, refTotal)
		}
		if ind != refInd {
			t.Errorf("workers=%d individual-work summary diverged: %+v != %+v", workers, ind, refInd)
		}
		if dec != refDec {
			t.Errorf("workers=%d decision tally diverged: %+v != %+v", workers, dec, refDec)
		}
	}
}

func TestSweepMergesInTrialOrder(t *testing.T) {
	var order []int
	err := RunTrials(Sweep{Trials: 50, Workers: 8, Seed: 5},
		func(ctx context.Context, tr Trial) (int, error) {
			// Stagger completion so later trials often finish first.
			if tr.Index%7 == 0 {
				time.Sleep(time.Millisecond)
			}
			return tr.Index, nil
		},
		func(tr Trial, r int) { order = append(order, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 {
		t.Fatalf("merged %d trials, want 50", len(order))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("merge out of order at %d: %v", i, order)
		}
	}
}

func TestSweepProgressHook(t *testing.T) {
	var last Progress
	calls := 0
	err := SweepObject(
		Sweep{Trials: 10, Workers: 4, Seed: 3, Progress: func(p Progress) { last = p; calls++ }},
		ObjectSweep{Build: func() (core.Object, ObjectConfig) {
			file := register.NewFile()
			r := ratifier.NewBinary(file, 1)
			return r, ObjectConfig{N: 2, File: file, Inputs: []value.Value{1}, Scheduler: sched.NewRoundRobin()}
		}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Fatalf("progress called %d times, want 10", calls)
	}
	if last.Done != 10 || last.Total != 10 {
		t.Fatalf("final progress %+v", last)
	}
	if last.Steps == 0 || last.Work == 0 {
		t.Fatalf("progress did not account work: %+v", last)
	}
}

// spinObject returns an object that reads a register forever — a stand-in
// for a hung adversary schedule that only cancellation can stop.
func spinObject(file *register.File) core.Object {
	r := file.Alloc1("spin")
	return core.Func{Name: "spin", F: func(e core.Env, _ value.Value) value.Decision {
		for {
			e.Read(r)
		}
	}}
}

func TestSweepStopsOnContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	// Each trial spins forever: without cancellation a single trial would
	// grind through the simulator's 10M-step default limit.
	err := SweepObject(
		Sweep{Trials: 1 << 20, Workers: 2, Seed: 1, Context: ctx},
		ObjectSweep{Build: func() (core.Object, ObjectConfig) {
			file := register.NewFile()
			return spinObject(file),
				ObjectConfig{N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewRoundRobin()}
		}},
		nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sweep finished despite timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("sweep took %v to notice cancellation", elapsed)
	}
}

func TestSweepReportsFirstErrorByTrialIndex(t *testing.T) {
	boom := errors.New("boom")
	err := RunTrials(Sweep{Trials: 100, Workers: 8, Seed: 1},
		func(ctx context.Context, tr Trial) (int, error) {
			if tr.Index == 3 {
				return 0, boom
			}
			return tr.Index, nil
		}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "trial 3") {
		t.Fatalf("error does not name the failing trial: %v", err)
	}
}

func TestSweepZeroTrials(t *testing.T) {
	called := false
	err := RunTrials(Sweep{Trials: 0, Seed: 1},
		func(ctx context.Context, tr Trial) (int, error) { called = true; return 0, nil },
		func(tr Trial, r int) { called = true })
	if err != nil || called {
		t.Fatalf("zero-trial sweep: err=%v called=%v", err, called)
	}
}

// TestRunObjectCancelled pins the context plumbing end to end: a single
// hung execution stops promptly when its context expires.
func TestRunObjectCancelled(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	file := register.NewFile()
	_, err := RunObject(spinObject(file), ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1},
		Scheduler: sched.NewLaggard(), Seed: 1, Context: ctx,
	})
	if !errors.Is(err, sim.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
}

// TestInputsSingleProcessSingleInput pins the N == 1 semantics of
// ObjectConfig.inputs(): one input for one process is that process's input —
// the "length N" rule and the "broadcast one value" rule coincide, and
// neither errors nor duplicates the slice.
func TestInputsSingleProcessSingleInput(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	run, err := RunObject(r, ObjectConfig{
		N: 1, File: file, Inputs: []value.Value{1}, Scheduler: sched.NewRoundRobin(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Decisions[0].Decided || run.Decisions[0].V != 1 {
		t.Fatalf("solo decision %s, want decided 1", run.Decisions[0])
	}
	// Zero inputs is an error even when N == 1.
	file2 := register.NewFile()
	r2 := ratifier.NewBinary(file2, 1)
	if _, err := RunObject(r2, ObjectConfig{N: 1, File: file2, Scheduler: sched.NewRoundRobin()}); err == nil {
		t.Fatal("expected error for 0 inputs with N=1")
	}
	// Non-positive N is rejected before the simulator.
	if _, err := RunObject(r2, ObjectConfig{N: 0, File: file2, Scheduler: sched.NewRoundRobin()}); err == nil {
		t.Fatal("expected error for N=0")
	}
}
