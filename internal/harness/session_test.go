package harness

// Tests for the pooled-session layer: a panicked trial must abandon its
// checked-out session (never return it to the pool), the sweep must finish
// on fresh sessions, and — with a retry budget — the final aggregates must
// be bit-identical to a panic-free run, because trial outcomes are pure
// functions of (spec, seed) no matter which session executes them.

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// poolConsensusSpec is the consensusAggregate workload with an optional
// per-trial hook spliced into the Inputs callback — the injection point for
// panics that a pooled session is mid-trial for.
func poolConsensusSpec(t *testing.T, n int, hook func(tr Trial)) ProtocolSweep {
	t.Helper()
	return ProtocolSweep{
		Build: func() (*core.Protocol, ObjectConfig) {
			file := register.NewFile()
			proto, err := core.NewProtocol(core.Options{
				N: n, File: file,
				NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
				NewConciliator: func(f *register.File, i int) core.Object {
					return conciliator.NewImpatient(f, n, i)
				},
				FastPath: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return proto, ObjectConfig{N: n, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewUniformRandom()}
		},
		Inputs: func(tr Trial) []value.Value {
			if hook != nil {
				hook(tr)
			}
			inputs := make([]value.Value, n)
			for p := range inputs {
				inputs[p] = value.Value((p + tr.Index) % 2)
			}
			return inputs
		},
	}
}

// TestPoolDiscardsSessionAfterPanic is the poisoning contract end to end:
// a panic during a pooled trial abandons that session (it is never returned
// to the pool), the panicked trial is classified — panics are deterministic
// bugs and deliberately not retried — and every other trial of the sweep
// runs on clean sessions with results bit-identical to a panic-free run.
func TestPoolDiscardsSessionAfterPanic(t *testing.T) {
	const n, trials, victim = 8, 32, 7
	type agg struct {
		decided int
		works   [trials]int
	}
	sweep := func(hook func(tr Trial)) (agg, *SweepReport) {
		var a agg
		report, err := SweepProtocolRobust(
			Sweep{Trials: trials, Workers: 4, Seed: 99},
			Resilience{},
			poolConsensusSpec(t, n, hook),
			func(tr Trial, run *ProtocolRun, rep TrialReport) {
				if rep.Outcome != OutcomeOK {
					return
				}
				a.works[tr.Index] = run.Result.TotalWork
				if len(run.DecidedOutputs()) == n {
					a.decided++
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return a, report
	}

	baseline, ref := sweep(nil)
	if got := ref.Count(OutcomeOK); got != trials {
		t.Fatalf("baseline counted %d ok trials, want %d: %s", got, trials, ref)
	}

	// Panic mid-sweep, on one trial. The trial has already checked a session
	// out of the pool when the hook runs, so the panic leaves that session
	// checked out forever; every subsequent trial must get another (or a
	// fresh) session and be unaffected.
	poisoned, report := sweep(func(tr Trial) {
		if tr.Index == victim {
			panic("session_test: injected trial panic")
		}
	})
	if got := report.Count(OutcomePanicked); got != 1 {
		t.Fatalf("report counted %d panicked trials, want 1: %s", got, report)
	}
	if got := report.Count(OutcomeOK); got != trials-1 {
		t.Fatalf("report counted %d ok trials, want %d: %s", got, trials-1, report)
	}
	for i := 0; i < trials; i++ {
		if i == victim {
			continue
		}
		if poisoned.works[i] != baseline.works[i] {
			t.Errorf("trial %d work diverged after an unrelated panic: %d != %d",
				i, poisoned.works[i], baseline.works[i])
		}
	}
	if poisoned.decided != baseline.decided-1 && poisoned.decided != baseline.decided {
		t.Errorf("decision tally %d inconsistent with baseline %d minus the panicked trial",
			poisoned.decided, baseline.decided)
	}
}
