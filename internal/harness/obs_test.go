package harness

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// histProtocolRun is the shared trial body for the histogram determinism
// tests: a full consensus execution, as the experiment drivers run it.
func histProtocolRun(t *testing.T, ctx context.Context, tr Trial, meter *obs.Meter) (*ProtocolRun, error) {
	t.Helper()
	const n = 8
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N: n, File: file,
		NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, n, i)
		},
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]value.Value, n)
	for p := range inputs {
		inputs[p] = value.Value((p + tr.Index) % 2)
	}
	cfg := ObjectConfig{
		N: n, File: file, Inputs: inputs,
		Scheduler: sched.NewUniformRandom(),
		Seed:      tr.Seed, Context: ctx, Meter: meter,
	}
	return RunProtocol(proto, cfg)
}

// histAggregate runs the consensus sweep with attached histograms on either
// engine and returns both histograms' full JSON encodings (which include
// every bucket, so comparison is bit-level, not summary-level).
func histAggregate(t *testing.T, workers int, robust bool) (stepsJSON, workJSON string) {
	t.Helper()
	var stepsH, workH obs.Hist
	s := Sweep{
		Trials: 32, Workers: workers, Seed: 99,
		StepsHist: &stepsH, WorkHist: &workH,
	}
	run := func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
		return histProtocolRun(t, ctx, tr, nil)
	}
	if robust {
		report, err := RunTrialsRobust(s, Resilience{Deadline: 30 * time.Second}, run, nil)
		if err != nil {
			t.Fatal(err)
		}
		if report.Count(OutcomeOK) != s.Trials {
			t.Fatalf("robust sweep outcomes %s, want all ok", report)
		}
	} else {
		if err := RunTrials(s, run, nil); err != nil {
			t.Fatal(err)
		}
	}
	sj, err := json.Marshal(&stepsH)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := json.Marshal(&workH)
	if err != nil {
		t.Fatal(err)
	}
	return string(sj), string(wj)
}

// TestHistDeterministicAcrossWorkersAndEngines pins the observability
// determinism property: histogram and percentile aggregates are bit-identical
// across 1/4/16 workers AND across RunTrials vs RunTrialsRobust on the same
// seed (when every trial classifies ok, the resilient engine must fold the
// exact same observations).
func TestHistDeterministicAcrossWorkersAndEngines(t *testing.T) {
	refSteps, refWork := histAggregate(t, 1, false)
	if refSteps == "" || refWork == "" {
		t.Fatal("empty reference histograms")
	}
	for _, workers := range []int{4, 16} {
		sj, wj := histAggregate(t, workers, false)
		if sj != refSteps {
			t.Errorf("workers=%d steps histogram diverged:\n%s\n%s", workers, sj, refSteps)
		}
		if wj != refWork {
			t.Errorf("workers=%d work histogram diverged:\n%s\n%s", workers, wj, refWork)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		sj, wj := histAggregate(t, workers, true)
		if sj != refSteps {
			t.Errorf("robust workers=%d steps histogram diverged:\n%s\n%s", workers, sj, refSteps)
		}
		if wj != refWork {
			t.Errorf("robust workers=%d work histogram diverged:\n%s\n%s", workers, wj, refWork)
		}
	}
}

// sweepSink records every snapshot a sweep reporter emits.
type sweepSink struct{ snaps []obs.Snapshot }

func (s *sweepSink) Emit(p obs.Snapshot) { s.snaps = append(s.snaps, p) }

// TestSweepReporterAndMeter pins the progress plumbing end to end: the
// reporter receives per-merge snapshots plus a final one, and an attached
// meter counts every executed operation live (its total must equal the steps
// histogram's exact sum, since on sim steps == total work).
func TestSweepReporterAndMeter(t *testing.T) {
	sink := &sweepSink{}
	var stepsH obs.Hist
	meter := &obs.Meter{}
	s := Sweep{
		Trials: 8, Workers: 4, Seed: 7,
		Reporter:  obs.NewReporter(sink, 0),
		StepsHist: &stepsH,
		Meter:     meter,
	}
	err := RunTrials(s, func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
		return histProtocolRun(t, ctx, tr, s.Meter)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.snaps) != 9 { // 8 merges + 1 final
		t.Fatalf("got %d snapshots, want 9", len(sink.snaps))
	}
	last := sink.snaps[len(sink.snaps)-1]
	if !last.Final || last.Done != 8 || last.Total != 8 {
		t.Fatalf("final snapshot = %+v", last)
	}
	if got, want := meter.Steps(), stepsH.Sum(); got != want {
		t.Fatalf("meter counted %d steps, histogram sum %d", got, want)
	}
	if last.Steps != meter.Steps() {
		t.Fatalf("final snapshot steps %d, meter %d", last.Steps, meter.Steps())
	}
}

// TestRobustProgressViolations pins that the resilient engine surfaces its
// running violation count through Progress and the reporter.
func TestRobustProgressViolations(t *testing.T) {
	violation := errors.New("agreement violated")
	sink := &sweepSink{}
	var lastProg Progress
	s := Sweep{
		Trials: 6, Seed: 5,
		Progress: func(p Progress) { lastProg = p },
		Reporter: obs.NewReporter(sink, 0),
	}
	report, err := RunTrialsRobust(s, Resilience{},
		func(ctx context.Context, tr Trial) (fakeViolator, error) {
			if tr.Index == 2 || tr.Index == 4 {
				return fakeViolator{v: violation}, nil
			}
			return fakeViolator{}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Violations() != 2 {
		t.Fatalf("report violations = %d, want 2", report.Violations())
	}
	if lastProg.Violations != 2 {
		t.Fatalf("final Progress.Violations = %d, want 2", lastProg.Violations)
	}
	last := sink.snaps[len(sink.snaps)-1]
	if !last.Final || last.Violations != 2 {
		t.Fatalf("final snapshot = %+v", last)
	}
}
