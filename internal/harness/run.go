// Package harness runs protocols and objects under the simulator, many
// trials at a time, and aggregates the statistics the experiments report.
package harness

import (
	"context"
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// The simulated environment must satisfy the object model's Env contract.
var _ core.Env = (*sim.Env)(nil)

// ObjectRun is the outcome of one execution of a single deciding object.
type ObjectRun struct {
	// Result carries work accounting and halting information.
	Result *sim.Result
	// Decisions holds each process's (d, v) output; the zero Decision (with
	// V = 0) never occurs for legal objects, and crashed processes keep
	// Decided=false, V=None.
	Decisions []value.Decision
	// Trace is non-nil if tracing was requested.
	Trace *trace.Log
}

// Outputs returns the output values of processes that completed the object.
func (r *ObjectRun) Outputs() []value.Value {
	var out []value.Value
	for pid, h := range r.Result.Halted {
		if h {
			out = append(out, r.Decisions[pid].V)
		}
	}
	return out
}

// ObjectConfig describes one object execution.
type ObjectConfig struct {
	// N is the process count.
	N int
	// File is the register file the object was built against.
	File *register.File
	// Inputs are per-process input values (len N), or a single value used
	// by all processes.
	Inputs []value.Value
	// Scheduler is the adversary (required).
	Scheduler sched.Scheduler
	// Seed drives all randomness.
	Seed uint64
	// Traced requests a full execution trace.
	Traced bool
	// CheapCollect enables the cheap-collect cost model.
	CheapCollect bool
	// CrashAfter is forwarded to the simulator.
	CrashAfter map[int]int
	// MaxSteps is forwarded to the simulator (0 = default).
	MaxSteps int
	// Context, if non-nil, cancels the execution between scheduled steps
	// (forwarded to the simulator).
	Context context.Context
}

// inputs resolves cfg.Inputs to exactly one value per process. A slice of
// length N is used verbatim; a single value is broadcast to every process.
// For N == 1 the two rules coincide — a one-element slice is that process's
// input, used as given (pinned by TestInputsSingleProcessSingleInput) — so
// the resolution is written as explicit guards rather than a switch whose
// `case cfg.N` and `case 1` arms would silently collide.
func (cfg *ObjectConfig) inputs() ([]value.Value, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("harness: N=%d must be positive", cfg.N)
	}
	if len(cfg.Inputs) == cfg.N {
		return cfg.Inputs, nil
	}
	if len(cfg.Inputs) == 1 {
		in := make([]value.Value, cfg.N)
		for i := range in {
			in[i] = cfg.Inputs[0]
		}
		return in, nil
	}
	return nil, fmt.Errorf("harness: %d inputs for %d processes", len(cfg.Inputs), cfg.N)
}

// RunObject executes obj once: every process invokes it with its input.
func RunObject(obj core.Object, cfg ObjectConfig) (*ObjectRun, error) {
	inputs, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	run := &ObjectRun{Decisions: make([]value.Decision, cfg.N)}
	for i := range run.Decisions {
		run.Decisions[i] = value.Decision{V: value.None}
	}
	if cfg.Traced {
		run.Trace = trace.New()
	}
	prog := func(e *sim.Env) value.Value {
		v := inputs[e.PID()]
		e.MarkInvoke(obj.Label(), v)
		d := obj.Invoke(e, v)
		e.MarkReturn(obj.Label(), d)
		run.Decisions[e.PID()] = d
		return d.V
	}
	res, err := sim.Run(sim.Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Trace:        run.Trace,
		CheapCollect: cfg.CheapCollect,
		CrashAfter:   cfg.CrashAfter,
		MaxSteps:     cfg.MaxSteps,
		Context:      cfg.Context,
	}, prog)
	run.Result = res
	return run, err
}

// SweepCost implements Metered: total work and max individual work.
func (r *ObjectRun) SweepCost() (steps, work int) {
	return r.Result.TotalWork, r.Result.MaxIndividualWork()
}

// ProtocolRun is the outcome of one execution of a consensus protocol.
type ProtocolRun struct {
	// Result carries work accounting and halting information.
	Result *sim.Result
	// Decided reports, per process, whether the protocol chain produced a
	// decision (false for crashed processes and chain exhaustion).
	Decided []bool
	// Trace is non-nil if tracing was requested.
	Trace *trace.Log
}

// DecidedOutputs returns the outputs of processes that genuinely decided.
func (r *ProtocolRun) DecidedOutputs() []value.Value {
	var out []value.Value
	for pid, d := range r.Decided {
		if d && r.Result.Halted[pid] {
			out = append(out, r.Result.Outputs[pid])
		}
	}
	return out
}

// RunProtocol executes a consensus protocol built by core.NewProtocol.
func RunProtocol(p *core.Protocol, cfg ObjectConfig) (*ProtocolRun, error) {
	inputs, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	run := &ProtocolRun{Decided: make([]bool, cfg.N)}
	if cfg.Traced {
		run.Trace = trace.New()
	}
	prog := func(e *sim.Env) value.Value {
		out, ok := p.Run(e, inputs[e.PID()])
		run.Decided[e.PID()] = ok
		return out
	}
	res, err := sim.Run(sim.Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Trace:        run.Trace,
		CheapCollect: cfg.CheapCollect,
		CrashAfter:   cfg.CrashAfter,
		MaxSteps:     cfg.MaxSteps,
		Context:      cfg.Context,
	}, prog)
	run.Result = res
	return run, err
}

// SweepCost implements Metered: total work and max individual work.
func (r *ProtocolRun) SweepCost() (steps, work int) {
	return r.Result.TotalWork, r.Result.MaxIndividualWork()
}
