// Package harness runs protocols and objects — on any exec.Backend, the
// deterministic simulator by default — many trials at a time, and aggregates
// the statistics the experiments report.
package harness

import (
	"context"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// ObjectRun is the outcome of one execution of a single deciding object.
type ObjectRun struct {
	// Result carries work accounting and halting information; its shape is
	// backend-neutral (exec.Result), so the same run type serves every
	// backend.
	Result *exec.Result
	// Decisions holds each process's (d, v) output; the zero Decision (with
	// V = 0) never occurs for legal objects, and crashed processes keep
	// Decided=false, V=None.
	Decisions []value.Decision
	// Trace is non-nil if tracing was requested.
	Trace *trace.Log
}

// Outputs returns the output values of processes that completed the object.
func (r *ObjectRun) Outputs() []value.Value {
	var out []value.Value
	for pid, h := range r.Result.Halted {
		if h {
			out = append(out, r.Decisions[pid].V)
		}
	}
	return out
}

// ObjectConfig describes one object or protocol execution.
type ObjectConfig struct {
	// N is the process count.
	N int
	// File is the register file the object was built against.
	File *register.File
	// Inputs are per-process input values (len N), or a single value used
	// by all processes.
	Inputs []value.Value
	// Backend selects the execution model; nil means the simulator.
	Backend exec.Backend
	// Scheduler is the adversary. Required by backends with adversary
	// control (sim); rejected by backends without it (live).
	Scheduler sched.Scheduler
	// Seed drives all backend-controlled randomness.
	Seed uint64
	// Traced requests a full execution trace (tracing backends only).
	Traced bool
	// CheapCollect enables the cheap-collect cost model.
	CheapCollect bool
	// Registers selects the register consistency model (zero value
	// register.Atomic). Models outside the backend's Capabilities.Semantics
	// set are rejected up front with a precise error.
	Registers register.Semantics
	// CrashAfter is legacy sugar for a plan of plain crash faults; it is
	// merged (min-threshold wins) with Faults before reaching the backend.
	CrashAfter map[int]int
	// Faults is the typed fault plan forwarded to the backend (crashes,
	// stalls, delay jitter, lost coins — see internal/fault).
	Faults *fault.Plan
	// MaxSteps is forwarded to the backend (0 = backend default).
	MaxSteps int
	// Context, if non-nil, cancels the execution at the next operation
	// boundary (forwarded to the backend).
	Context context.Context
	// Meter, if non-nil, receives a live count of executed operations
	// (forwarded to the backend; nil is free — see obs.Meter).
	Meter *obs.Meter
}

// backend resolves cfg.Backend (nil = sim) and checks the requested options
// against its capabilities, so unsupported combinations fail with a precise
// error here rather than deep inside a backend.
func (cfg *ObjectConfig) backend() (exec.Backend, error) {
	be := cfg.Backend
	if be == nil {
		be = sim.Backend()
	}
	caps := be.Capabilities()
	if !caps.Adversary && cfg.Scheduler != nil {
		return nil, fmt.Errorf("harness: backend %q rejects scheduler %q: it has no adversary control (the interleaving is not the caller's to choose)", be.Name(), cfg.Scheduler.Name())
	}
	if caps.Adversary && cfg.Scheduler == nil {
		return nil, fmt.Errorf("harness: backend %q requires a scheduler (an explicit adversary)", be.Name())
	}
	if !caps.Tracing && cfg.Traced {
		return nil, fmt.Errorf("harness: backend %q cannot record traces (no global step sequence)", be.Name())
	}
	// Atomic is universal (every backend implements the paper's base model);
	// anything else must appear in the backend's declared semantics set.
	if cfg.Registers != register.Atomic && !caps.Semantics.Has(cfg.Registers) {
		return nil, fmt.Errorf("harness: backend %q does not implement %v register semantics", be.Name(), cfg.Registers)
	}
	return be, nil
}

// execConfig lowers an ObjectConfig to the backend-neutral exec.Config.
func (cfg *ObjectConfig) execConfig(log *trace.Log) exec.Config {
	return exec.Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Trace:        log,
		CheapCollect: cfg.CheapCollect,
		Registers:    cfg.Registers,
		Faults:       fault.Merge(cfg.Faults, fault.FromCrashMap(cfg.CrashAfter)),
		MaxSteps:     cfg.MaxSteps,
		Context:      cfg.Context,
		Meter:        cfg.Meter,
	}
}

// inputs resolves cfg.Inputs to exactly one value per process. A slice of
// length N is used verbatim; a single value is broadcast to every process.
// For N == 1 the two rules coincide — a one-element slice is that process's
// input, used as given (pinned by TestInputsSingleProcessSingleInput) — so
// the resolution is written as explicit guards rather than a switch whose
// `case cfg.N` and `case 1` arms would silently collide.
func (cfg *ObjectConfig) inputs() ([]value.Value, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("harness: N=%d must be positive", cfg.N)
	}
	if len(cfg.Inputs) == cfg.N {
		return cfg.Inputs, nil
	}
	if len(cfg.Inputs) == 1 {
		in := make([]value.Value, cfg.N)
		for i := range in {
			in[i] = cfg.Inputs[0]
		}
		return in, nil
	}
	return nil, fmt.Errorf("harness: %d inputs for %d processes", len(cfg.Inputs), cfg.N)
}

// RunObject executes obj once: every process invokes it with its input.
// Per-process slots of run.Decisions are written only by their own process,
// so the recording is race-free even on concurrent backends.
func RunObject(obj core.Object, cfg ObjectConfig) (*ObjectRun, error) {
	be, err := cfg.backend()
	if err != nil {
		return nil, err
	}
	inputs, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	run := &ObjectRun{Decisions: make([]value.Decision, cfg.N)}
	for i := range run.Decisions {
		run.Decisions[i] = value.Decision{V: value.None}
	}
	if cfg.Traced {
		run.Trace = trace.New()
	}
	prog := func(e core.Env) value.Value {
		v := inputs[e.PID()]
		e.MarkInvoke(obj.Label(), v)
		d := obj.Invoke(e, v)
		e.MarkReturn(obj.Label(), d)
		run.Decisions[e.PID()] = d
		return d.V
	}
	res, err := be.Run(cfg.execConfig(run.Trace), prog)
	run.Result = res
	return run, err
}

// SweepCost implements Metered: total work and max individual work.
func (r *ObjectRun) SweepCost() (steps, work int) {
	return r.Result.TotalWork, r.Result.MaxIndividualWork()
}

// ProtocolRun is the outcome of one execution of a consensus protocol.
type ProtocolRun struct {
	// Result carries work accounting and halting information
	// (backend-neutral, like ObjectRun.Result).
	Result *exec.Result
	// Decided reports, per process, whether the protocol chain produced a
	// decision (false for crashed processes and chain exhaustion).
	Decided []bool
	// DecidedIdx holds, per process, the chain index at which it decided
	// (-1 if it did not). Unlike the protocol's own DecidedIndex
	// instrumentation this is a per-run snapshot, safe to read while the
	// protocol instance is already executing a later pooled trial;
	// DecidedStage translates it to the paper's stage numbering.
	DecidedIdx []int32
	// Violation is the first safety violation (agreement or validity) the
	// run's online monitor observed as decisions landed; nil if the run was
	// safe. Unlike a post-hoc check, it is meaningful even when the
	// execution was cut short by a crash, stall, or cancellation.
	Violation error
	// Trace is non-nil if tracing was requested.
	Trace *trace.Log
	// stageOf translates a deciding chain index into the paper's stage
	// numbering (core.Protocol.StageOfIndex, captured from the protocol that
	// produced this run — the translation depends only on the protocol's
	// shape, so sharing it across pooled trials is safe).
	stageOf func(idx int) (stage int, fallback bool)
}

// DecidedStage translates pid's deciding chain index into the paper's stage
// numbering: 0 for the fast path, i ≥ 1 for stage (Cᵢ; Rᵢ), -1 if pid did
// not decide; fallback distinguishes a decision by the fallback object. It
// is nil-receiver-safe (returning -1, false) so robust sweeps can call it on
// failed trials.
func (r *ProtocolRun) DecidedStage(pid int) (stage int, fallback bool) {
	if r == nil || r.stageOf == nil || pid < 0 || pid >= len(r.DecidedIdx) {
		return -1, false
	}
	return r.stageOf(int(r.DecidedIdx[pid]))
}

// SafetyViolation returns the first online agreement/validity violation, or
// nil. The resilient trial engine uses it to classify trials as violated;
// it is nil-receiver-safe because failed trials hand the classifier a
// typed-nil run.
func (r *ProtocolRun) SafetyViolation() error {
	if r == nil {
		return nil
	}
	return r.Violation
}

// CutShort reports whether the execution ended with no process deciding —
// the signature of a run cut down by crashes or the step limit before the
// protocol could finish.
func (r *ProtocolRun) CutShort() bool {
	if r == nil {
		return true
	}
	for _, d := range r.Decided {
		if d {
			return false
		}
	}
	return true
}

// DecidedOutputs returns the outputs of processes that genuinely decided.
func (r *ProtocolRun) DecidedOutputs() []value.Value {
	var out []value.Value
	for pid, d := range r.Decided {
		if d && r.Result.Halted[pid] {
			out = append(out, r.Result.Outputs[pid])
		}
	}
	return out
}

// RunProtocol executes a consensus protocol built by core.NewProtocol.
func RunProtocol(p *core.Protocol, cfg ObjectConfig) (*ProtocolRun, error) {
	be, err := cfg.backend()
	if err != nil {
		return nil, err
	}
	inputs, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	run := &ProtocolRun{
		Decided:    make([]bool, cfg.N),
		DecidedIdx: make([]int32, cfg.N),
		stageOf:    p.StageOfIndex,
	}
	for i := range run.DecidedIdx {
		run.DecidedIdx[i] = -1
	}
	if cfg.Traced {
		run.Trace = trace.New()
	}
	// The online monitor checks each decision the moment it lands (from
	// concurrently running goroutines on the live backend), so a violation
	// is caught even if the execution never finishes cleanly.
	mon := check.NewMonitor(inputs)
	prog := func(e core.Env) value.Value {
		out, ok := p.Run(e, inputs[e.PID()])
		run.Decided[e.PID()] = ok
		if ok {
			run.DecidedIdx[e.PID()] = int32(p.DecidedIndex(e.PID()))
			mon.Observe(e.PID(), out)
		}
		return out
	}
	res, err := be.Run(cfg.execConfig(run.Trace), prog)
	run.Result = res
	run.Violation = mon.Err()
	return run, err
}

// SweepCost implements Metered: total work and max individual work.
func (r *ProtocolRun) SweepCost() (steps, work int) {
	return r.Result.TotalWork, r.Result.MaxIndividualWork()
}
