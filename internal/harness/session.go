// Pooled execution sessions.
//
// A sweep runs many trials of one cell — one (object, n, adversary, fault
// plan) configuration — varying only the seed and possibly the inputs. Before
// the exec.Session seam, every trial paid the full construction cost again:
// a fresh object, register file, scheduler, compiled fault injector, and (on
// sim) n coroutines with all their buffers. The session types here construct
// that cell once per pooled session and replay it per trial through
// exec.Session.Run(ctx, seed), which on reusable backends (sim) rewinds the
// engine in place — zero allocations per trial below the harness.
//
// The pool hands each worker a session for the duration of one trial.
// Sessions return to the pool only on normal return: a trial that panics
// never executes the put, so a session whose engine may be mid-unwind
// (poisoned) is abandoned rather than recycled, and a session that reports
// exec.ErrSessionPoisoned is closed on the spot. The robust trial engine's
// abandoned attempts (deadline overruns that never came back) keep their
// session checked out forever — leaking one session is the price of never
// reusing state a runaway goroutine might still be touching.
//
// Determinism: a trial's outcome is a pure function of (cell, seed, inputs).
// Engine.Reset restores registers, scheduler state, and RNG streams from the
// seed alone, so which pooled session runs a trial — and how many trials it
// ran before — cannot affect the result. Sweep aggregates therefore stay
// bit-identical at any worker count, pooled or not.
package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// ObjectSweep describes one object cell of a sweep.
type ObjectSweep struct {
	// Build constructs the cell: a fresh object and its configuration
	// (register file, scheduler, faults, …). It is called once per pooled
	// session — at most once per worker, not once per trial — so everything
	// it builds is reused across that session's trials. Config.Seed and
	// Config.Context are ignored (each trial's seed and context are supplied
	// by the engine); Config.Inputs is the default input assignment.
	Build func() (core.Object, ObjectConfig)
	// Inputs, if non-nil, overrides the configuration's inputs per trial
	// (same resolution rule: one value per process, or a single value
	// broadcast to all). Returning nil keeps the config's inputs for that
	// trial.
	Inputs func(t Trial) []value.Value
}

// ProtocolSweep describes one protocol cell of a sweep, mirroring
// ObjectSweep.
type ProtocolSweep struct {
	// Build constructs the cell's protocol and configuration; see
	// ObjectSweep.Build for the once-per-session contract.
	Build func() (*core.Protocol, ObjectConfig)
	// Inputs optionally overrides the configuration's inputs per trial; see
	// ObjectSweep.Inputs.
	Inputs func(t Trial) []value.Value
}

// errPoolClosed is returned by sessionPool.get after closeAll; it can only
// surface when a worker races the sweep's teardown, by which point the sweep
// is already ending.
var errPoolClosed = errors.New("harness: session pool closed")

// sessionPool hands out sessions to workers, one per in-flight trial. make
// is called when the free list is empty, so a sweep creates at most
// workers-many sessions (plus replacements for discarded ones).
type sessionPool[S any] struct {
	make  func() (S, error)
	close func(S)

	mu     sync.Mutex
	free   []S
	closed bool
}

func newSessionPool[S any](mk func() (S, error), cl func(S)) *sessionPool[S] {
	return &sessionPool[S]{make: mk, close: cl}
}

func (p *sessionPool[S]) get() (S, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s, nil
	}
	closed := p.closed
	p.mu.Unlock()
	if closed {
		var zero S
		return zero, errPoolClosed
	}
	return p.make()
}

// put returns a session to the free list. After closeAll (a late put from an
// attempt that outlived the sweep) the session is closed instead — the pool
// never resurrects.
func (p *sessionPool[S]) put(s S) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.close(s)
		return
	}
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// closeAll closes every free session and marks the pool closed. Sessions
// still checked out by abandoned attempts are not touched — their goroutines
// may be live inside Run — and are closed (or leaked, if the attempt never
// returns) via the late-put path.
func (p *sessionPool[S]) closeAll() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, s := range free {
		p.close(s)
	}
}

// cloneResult deep-copies a session-owned Result so the merge goroutine (and
// anything the caller's merge retains) stays valid while the session's
// buffers are overwritten by its next trial.
func cloneResult(r *exec.Result) *exec.Result {
	if r == nil {
		return nil
	}
	cp := *r
	cp.Outputs = append([]value.Value(nil), r.Outputs...)
	cp.Halted = append([]bool(nil), r.Halted...)
	cp.Crashed = append([]bool(nil), r.Crashed...)
	if r.Stalled != nil {
		cp.Stalled = append([]bool(nil), r.Stalled...)
	}
	cp.Work = append([]int(nil), r.Work...)
	cp.Trace = nil // the caller attaches its own trace snapshot
	return &cp
}

// sessionInputs owns the per-trial input resolution shared by both session
// kinds: a base assignment resolved once at build, a per-trial override hook,
// and the live buffer the program closures read.
type sessionInputs struct {
	n    int
	base []value.Value // resolved cfg.Inputs (len n)
	hook func(t Trial) []value.Value
	live []value.Value // what programs read; rewritten per trial
}

func (si *sessionInputs) set(t Trial) error {
	src := si.base
	if si.hook != nil {
		if vals := si.hook(t); vals != nil {
			src = vals
		}
	}
	switch len(src) {
	case si.n:
		copy(si.live, src)
	case 1:
		for i := range si.live {
			si.live[i] = src[0]
		}
	default:
		return fmt.Errorf("harness: %d inputs for %d processes", len(src), si.n)
	}
	return nil
}

// laneEligible reports whether a cell can route trials through batch (lane)
// execution: the sweep asked for lanes, the backend runs batches natively,
// and nothing per-trial-stateful is in play. Traced cells need a per-trial
// trace snapshot, metered cells feed a live observer, fault plans arm
// per-trial injector state, and non-atomic register semantics are not yet
// proven bit-stable on the op-coded lane engine — all of which the
// per-trial pooled path handles; lanes keep the unencumbered fast path. cfg
// must already carry the sweep's meter (the constructors assign
// cfg.Meter = s.Meter before calling this).
func laneEligible(s Sweep, cfg ObjectConfig, caps exec.Capabilities) bool {
	return s.laneWidth() > 1 && caps.Batched && !cfg.Traced && cfg.Meter == nil &&
		cfg.Registers == register.Atomic &&
		fault.Merge(cfg.Faults, fault.FromCrashMap(cfg.CrashAfter)).Empty()
}

// objectSession is one pooled cell of an object sweep: a built object, its
// backend session, and the buffers its program closures write into.
type objectSession struct {
	sess      exec.Session
	batch     exec.BatchSession // non-nil iff the cell is lane-eligible
	seeds     []uint64          // reused seed buffer for batch runs
	in        sessionInputs
	decisions []value.Decision
	log       *trace.Log // session-owned; reset by the engine each trial
}

func newObjectSession(s Sweep, spec ObjectSweep) (*objectSession, error) {
	obj, cfg := spec.Build()
	cfg.Meter = s.Meter
	be, err := cfg.backend()
	if err != nil {
		return nil, err
	}
	base, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	os := &objectSession{
		in:        sessionInputs{n: cfg.N, base: base, hook: spec.Inputs, live: make([]value.Value, cfg.N)},
		decisions: make([]value.Decision, cfg.N),
	}
	if cfg.Traced {
		os.log = trace.New()
	}
	prog := func(e core.Env) value.Value {
		v := os.in.live[e.PID()]
		e.MarkInvoke(obj.Label(), v)
		d := obj.Invoke(e, v)
		e.MarkReturn(obj.Label(), d)
		os.decisions[e.PID()] = d
		return d.V
	}
	os.sess, err = be.NewSession(cfg.execConfig(os.log), prog)
	if err != nil {
		return nil, err
	}
	if laneEligible(s, cfg, be.Capabilities()) {
		os.batch, _ = os.sess.(exec.BatchSession)
	}
	return os, nil
}

// runTrial executes one trial and returns a fully detached ObjectRun: the
// Result, Decisions, and Trace are deep snapshots, safe to retain while the
// session moves on to its next trial.
func (os *objectSession) runTrial(ctx context.Context, t Trial) (*ObjectRun, error) {
	if err := os.in.set(t); err != nil {
		return nil, err
	}
	for i := range os.decisions {
		os.decisions[i] = value.Decision{V: value.None}
	}
	res, err := os.sess.Run(ctx, t.Seed)
	run := &ObjectRun{
		Result:    cloneResult(res),
		Decisions: append([]value.Decision(nil), os.decisions...),
		Trace:     os.log.Clone(),
	}
	if run.Result != nil {
		run.Result.Trace = run.Trace
	}
	return run, err
}

// runBatch executes one lane of trials through the cell's batch session. The
// begin hook stages trial k's inputs and clears the decision buffer — the
// exact per-trial preamble of runTrial — and the emit hook detaches each
// result before handing it on, so the batch path produces the same deep
// per-trial snapshots as the pooled path, in the same order.
func (os *objectSession) runBatch(ctx context.Context, trials []Trial, emit func(k int, run *ObjectRun, err error) bool) error {
	os.seeds = os.seeds[:0]
	for _, t := range trials {
		os.seeds = append(os.seeds, t.Seed)
	}
	return os.batch.RunBatch(ctx, os.seeds, func(k int) error {
		if err := os.in.set(trials[k]); err != nil {
			return err
		}
		for i := range os.decisions {
			os.decisions[i] = value.Decision{V: value.None}
		}
		return nil
	}, func(k int, res *exec.Result, err error) bool {
		if res == nil && err != nil {
			return emit(k, nil, err) // begin failed; no execution to snapshot
		}
		run := &ObjectRun{
			Result:    cloneResult(res),
			Decisions: append([]value.Decision(nil), os.decisions...),
			Trace:     os.log.Clone(),
		}
		if run.Result != nil {
			run.Result.Trace = run.Trace
		}
		return emit(k, run, err)
	})
}

func (os *objectSession) close() { _ = os.sess.Close() }

// protocolSession is one pooled cell of a protocol sweep. Decisions are
// recorded through core.Protocol.RunIndexed, which leaves the protocol's own
// decided-at instrumentation untouched — the session keeps per-trial indices
// in its own buffers, so the merge goroutine can read trial k's snapshot
// while this session already runs trial k+1.
type protocolSession struct {
	sess       exec.Session
	batch      exec.BatchSession // non-nil iff the cell is lane-eligible
	seeds      []uint64          // reused seed buffer for batch runs
	in         sessionInputs
	decided    []bool
	decidedIdx []int32
	mon        *check.Monitor // fresh per trial
	stageOf    func(idx int) (stage int, fallback bool)
	log        *trace.Log
}

func newProtocolSession(s Sweep, spec ProtocolSweep) (*protocolSession, error) {
	proto, cfg := spec.Build()
	cfg.Meter = s.Meter
	be, err := cfg.backend()
	if err != nil {
		return nil, err
	}
	base, err := cfg.inputs()
	if err != nil {
		return nil, err
	}
	ps := &protocolSession{
		in:         sessionInputs{n: cfg.N, base: base, hook: spec.Inputs, live: make([]value.Value, cfg.N)},
		decided:    make([]bool, cfg.N),
		decidedIdx: make([]int32, cfg.N),
		stageOf:    proto.StageOfIndex,
	}
	if cfg.Traced {
		ps.log = trace.New()
	}
	prog := func(e core.Env) value.Value {
		out, idx, ok := proto.RunIndexed(e, ps.in.live[e.PID()])
		ps.decided[e.PID()] = ok
		ps.decidedIdx[e.PID()] = int32(idx)
		if ok {
			ps.mon.Observe(e.PID(), out)
		}
		return out
	}
	ps.sess, err = be.NewSession(cfg.execConfig(ps.log), prog)
	if err != nil {
		return nil, err
	}
	if laneEligible(s, cfg, be.Capabilities()) {
		ps.batch, _ = ps.sess.(exec.BatchSession)
	}
	return ps, nil
}

func (ps *protocolSession) runTrial(ctx context.Context, t Trial) (*ProtocolRun, error) {
	if err := ps.in.set(t); err != nil {
		return nil, err
	}
	for i := range ps.decided {
		ps.decided[i] = false
		ps.decidedIdx[i] = -1
	}
	// The monitor checks each decision online as it lands; it must be fresh
	// per trial (it accumulates the first observed decision) and built after
	// the trial's inputs are in place (it checks validity against them).
	ps.mon = check.NewMonitor(ps.in.live)
	res, err := ps.sess.Run(ctx, t.Seed)
	run := &ProtocolRun{
		Result:     cloneResult(res),
		Decided:    append([]bool(nil), ps.decided...),
		DecidedIdx: append([]int32(nil), ps.decidedIdx...),
		Violation:  ps.mon.Err(),
		Trace:      ps.log.Clone(),
		stageOf:    ps.stageOf,
	}
	if run.Result != nil {
		run.Result.Trace = run.Trace
	}
	return run, err
}

// runBatch is the protocol counterpart of objectSession.runBatch: the begin
// hook replays runTrial's per-trial preamble (inputs, decision clears, and a
// fresh monitor built after the inputs land, since it validates against
// them), and emit detaches each run before the session moves on.
func (ps *protocolSession) runBatch(ctx context.Context, trials []Trial, emit func(k int, run *ProtocolRun, err error) bool) error {
	ps.seeds = ps.seeds[:0]
	for _, t := range trials {
		ps.seeds = append(ps.seeds, t.Seed)
	}
	return ps.batch.RunBatch(ctx, ps.seeds, func(k int) error {
		if err := ps.in.set(trials[k]); err != nil {
			return err
		}
		for i := range ps.decided {
			ps.decided[i] = false
			ps.decidedIdx[i] = -1
		}
		ps.mon = check.NewMonitor(ps.in.live)
		return nil
	}, func(k int, res *exec.Result, err error) bool {
		if res == nil && err != nil {
			return emit(k, nil, err) // begin failed; no execution to snapshot
		}
		run := &ProtocolRun{
			Result:     cloneResult(res),
			Decided:    append([]bool(nil), ps.decided...),
			DecidedIdx: append([]int32(nil), ps.decidedIdx...),
			Violation:  ps.mon.Err(),
			Trace:      ps.log.Clone(),
			stageOf:    ps.stageOf,
		}
		if run.Result != nil {
			run.Result.Trace = run.Trace
		}
		return emit(k, run, err)
	})
}

func (ps *protocolSession) close() { _ = ps.sess.Close() }

// pooledTrial wraps a session pool around one trial: check a session out,
// run, and return it only on a clean, unpoisoned return. A panic inside
// runTrial skips the put — the session is never reused — and a session that
// reports itself poisoned is closed immediately.
func pooledTrial[S any, R any](pool *sessionPool[S], ctx context.Context, t Trial,
	runTrial func(S, context.Context, Trial) (R, error), closeSess func(S)) (R, error) {
	sess, err := pool.get()
	if err != nil {
		var zero R
		return zero, err
	}
	run, err := runTrial(sess, ctx, t)
	if errors.Is(err, exec.ErrSessionPoisoned) {
		closeSess(sess)
	} else {
		pool.put(sess)
	}
	return run, err
}

// pooledBatch is pooledTrial's lane counterpart: check a session out, run one
// batch of trials through it, and return it on a clean unpoisoned return. A
// poison report — whether surfaced per-trial through emit or as the batch's
// own error — closes the session instead; a panic inside runBatch skips the
// put, abandoning the session exactly as pooledTrial would.
func pooledBatch[S any, R any](pool *sessionPool[S], ctx context.Context, trials []Trial,
	runBatch func(S, context.Context, []Trial, func(int, R, error) bool) error,
	closeSess func(S), emit func(k int, r R, err error) bool) error {
	sess, err := pool.get()
	if err != nil {
		return err
	}
	poisoned := false
	err = runBatch(sess, ctx, trials, func(k int, r R, err error) bool {
		if errors.Is(err, exec.ErrSessionPoisoned) {
			poisoned = true
		}
		return emit(k, r, err)
	})
	if poisoned || err != nil {
		// A batch-level error means the session itself can no longer run
		// trials (closed or poisoned engine): discard it.
		closeSess(sess)
	} else {
		pool.put(sess)
	}
	return err
}
