package harness

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestRunObjectRecordsDecisions(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	run, err := RunObject(r, ObjectConfig{
		N: 3, File: file, Inputs: []value.Value{1}, Scheduler: sched.NewRoundRobin(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range run.Decisions {
		if !d.Decided || d.V != 1 {
			t.Fatalf("pid %d decision %s", pid, d)
		}
	}
	if got := run.Outputs(); len(got) != 3 {
		t.Fatalf("outputs %v", got)
	}
}

func TestRunObjectSingleInputReplication(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	if _, err := RunObject(r, ObjectConfig{
		N: 4, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewRoundRobin(),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunObjectInputCountValidation(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	_, err := RunObject(r, ObjectConfig{
		N: 3, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewRoundRobin(),
	})
	if err == nil || !strings.Contains(err.Error(), "inputs") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunObjectTrace(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	run, err := RunObject(r, ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewRoundRobin(), Traced: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace == nil || run.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	invokes := run.Trace.Filter(func(e trace.Event) bool { return e.Kind == trace.Invoke })
	if len(invokes) != 2 {
		t.Fatalf("invoke events: %d", len(invokes))
	}
}

func TestRunObjectCrashedProcessHasNoDecision(t *testing.T) {
	file := register.NewFile()
	r := ratifier.NewBinary(file, 1)
	run, err := RunObject(r, ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewRoundRobin(),
		CrashAfter: map[int]int{1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Decisions[1].Decided || !run.Decisions[1].V.IsNone() {
		t.Fatalf("crashed process decision %s", run.Decisions[1])
	}
	if len(run.Outputs()) != 1 {
		t.Fatalf("outputs %v", run.Outputs())
	}
}

func TestRunProtocol(t *testing.T) {
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N: 3, File: file,
		NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
		FastPath:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunProtocol(proto, ObjectConfig{
		N: 3, File: file, Inputs: []value.Value{1}, Scheduler: sched.NewRoundRobin(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, d := range run.Decided {
		if !d {
			t.Fatalf("pid %d undecided", pid)
		}
	}
	outs := run.DecidedOutputs()
	if len(outs) != 3 || outs[0] != 1 {
		t.Fatalf("outputs %v", outs)
	}
}

func TestRunProtocolUndecidedExcluded(t *testing.T) {
	// A ratifier-only chain with conflicting inputs under lockstep cannot
	// decide; DecidedOutputs must be empty rather than lying.
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N: 2, File: file,
		NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
		Stages:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunProtocol(proto, ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewLaggard(), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.DecidedOutputs()) != 0 {
		t.Fatalf("lockstep ratifier-only run decided: %v", run.DecidedOutputs())
	}
}
