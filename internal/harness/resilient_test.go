package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// robustProto builds the full binary protocol (with the CIL fallback, so
// fault-free executions always decide) for the robust-engine tests.
func robustProto(t *testing.T, n int) (*register.File, *core.Protocol) {
	t.Helper()
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N: n, File: file,
		NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, n, i)
		},
		FastPath: true,
		Fallback: fallback.New(file, n, 0),
		Stages:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return file, proto
}

// robustConfig is the per-backend ObjectConfig seasoning: sim needs an
// adversary, live rejects one.
func robustBackends() []struct {
	name string
	cfg  func(oc ObjectConfig) ObjectConfig
} {
	return []struct {
		name string
		cfg  func(oc ObjectConfig) ObjectConfig
	}{
		{"sim", func(oc ObjectConfig) ObjectConfig {
			oc.Scheduler = sched.NewUniformRandom()
			return oc
		}},
		{"live", func(oc ObjectConfig) ObjectConfig {
			oc.Backend = live.Backend()
			return oc
		}},
	}
}

// TestRobustWatchdogKillsStalledTrials is the PR's acceptance scenario: a
// fault plan stalling every process livelocks each trial; the deadline
// watchdog must kill the trial, classify it timeout, and the sweep must
// still complete with correct partial aggregates — on both backends. Runs
// under -race in CI.
func TestRobustWatchdogKillsStalledTrials(t *testing.T) {
	for _, be := range robustBackends() {
		t.Run(be.name, func(t *testing.T) {
			const trials = 3
			stallAll := fault.New(fault.Stall(fault.AllProcs, 2))
			report, err := RunTrialsRobust(
				Sweep{Trials: trials, Seed: 7},
				Resilience{Deadline: 100 * time.Millisecond},
				func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
					file, proto := robustProto(t, 4)
					return RunProtocol(proto, be.cfg(ObjectConfig{
						N: 4, File: file, Inputs: []value.Value{0, 1, 0, 1},
						Seed: tr.Seed, Faults: stallAll, Context: ctx,
					}))
				}, nil)
			if err != nil {
				t.Fatalf("sweep returned error: %v", err)
			}
			if report.Trials != trials {
				t.Fatalf("classified %d trials, want %d", report.Trials, trials)
			}
			if got := report.Count(OutcomeTimeout); got != trials {
				t.Fatalf("timeouts = %d, want %d (report: %s)", got, trials, report)
			}
			if report.StoppedEarly {
				t.Fatal("sweep reported StoppedEarly despite classifying every trial")
			}
			for _, rep := range report.Reports {
				if !errors.Is(rep.Err, ErrTrialDeadline) {
					t.Fatalf("trial %d error %v does not wrap ErrTrialDeadline", rep.Trial.Index, rep.Err)
				}
			}
		})
	}
}

// TestRobustMixedOutcomesPartialAggregates stalls a strict subset of trials
// (by index) and checks the aggregates separate ok from timeout correctly.
func TestRobustMixedOutcomesPartialAggregates(t *testing.T) {
	const trials = 6
	stallAll := fault.New(fault.Stall(fault.AllProcs, 2))
	report, err := RunTrialsRobust(
		Sweep{Trials: trials, Seed: 11},
		Resilience{Deadline: 150 * time.Millisecond},
		func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
			file, proto := robustProto(t, 4)
			oc := ObjectConfig{
				N: 4, File: file, Inputs: []value.Value{0, 1, 0, 1},
				Seed: tr.Seed, Scheduler: sched.NewUniformRandom(), Context: ctx,
			}
			if tr.Index%2 == 1 {
				oc.Faults = stallAll
			}
			return RunProtocol(proto, oc)
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Count(OutcomeOK) != 3 || report.Count(OutcomeTimeout) != 3 {
		t.Fatalf("outcomes %s, want ok=3 timeout=3", report)
	}
	for _, rep := range report.Reports {
		want := OutcomeOK
		if rep.Trial.Index%2 == 1 {
			want = OutcomeTimeout
		}
		if rep.Outcome != want {
			t.Fatalf("trial %d classified %s, want %s", rep.Trial.Index, rep.Outcome, want)
		}
	}
}

// TestRobustPanicContainment: a panicking trial is contained and classified;
// the rest of the sweep completes.
func TestRobustPanicContainment(t *testing.T) {
	report, err := RunTrialsRobust(
		Sweep{Trials: 5, Seed: 3},
		Resilience{},
		func(ctx context.Context, tr Trial) (int, error) {
			if tr.Index == 2 {
				panic("boom in trial 2")
			}
			return tr.Index, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Count(OutcomeOK) != 4 || report.Count(OutcomePanicked) != 1 {
		t.Fatalf("outcomes %s, want ok=4 panicked=1", report)
	}
	rep := report.Reports[2]
	if rep.Outcome != OutcomePanicked || !strings.Contains(rep.Err.Error(), "boom in trial 2") {
		t.Fatalf("trial 2 report: outcome=%s err=%v", rep.Outcome, rep.Err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("panicked trial retried: %d attempts", rep.Attempts)
	}
}

// fakeViolator drives the safetyReporter classification path without
// needing a genuinely unsafe protocol.
type fakeViolator struct{ v error }

func (f fakeViolator) SafetyViolation() error { return f.v }

func TestRobustViolationClassification(t *testing.T) {
	violation := errors.New("agreement violated: 0 vs 1")
	report, err := RunTrialsRobust(
		Sweep{Trials: 4, Seed: 5},
		Resilience{},
		func(ctx context.Context, tr Trial) (fakeViolator, error) {
			if tr.Index == 1 {
				return fakeViolator{v: violation}, nil
			}
			return fakeViolator{}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Violations() != 1 || report.Count(OutcomeOK) != 3 {
		t.Fatalf("outcomes %s, want ok=3 violated=1", report)
	}
	if !errors.Is(report.Reports[1].Err, violation) {
		t.Fatalf("violated trial err = %v", report.Reports[1].Err)
	}
}

func TestRobustFailFastStopsSweep(t *testing.T) {
	violation := errors.New("validity violated")
	report, err := RunTrialsRobust(
		Sweep{Trials: 64, Seed: 5, Workers: 2},
		Resilience{FailFast: true},
		func(ctx context.Context, tr Trial) (fakeViolator, error) {
			if tr.Index == 3 {
				return fakeViolator{v: violation}, nil
			}
			// Slow the tail so the cancellation demonstrably cuts it off.
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Millisecond):
			}
			return fakeViolator{}, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", report.Violations())
	}
	if !report.StoppedEarly {
		t.Fatal("FailFast sweep did not report StoppedEarly")
	}
	if report.Trials >= 64 {
		t.Fatalf("FailFast classified all %d trials", report.Trials)
	}
}

// TestRobustRetryThenSuccess: unknown (infrastructure) errors are retried
// with backoff; a later clean attempt yields OutcomeOK.
func TestRobustRetryThenSuccess(t *testing.T) {
	report, err := RunTrialsRobust(
		Sweep{Trials: 1, Seed: 9, Workers: 1},
		Resilience{Retries: 2, Backoff: time.Millisecond},
		func() func(ctx context.Context, tr Trial) (int, error) {
			calls := 0
			return func(ctx context.Context, tr Trial) (int, error) {
				calls++
				if calls < 3 {
					return 0, fmt.Errorf("flaky infrastructure (call %d)", calls)
				}
				return 42, nil
			}
		}(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := report.Reports[0]
	if rep.Outcome != OutcomeOK || rep.Attempts != 3 {
		t.Fatalf("outcome=%s attempts=%d, want ok after 3 attempts", rep.Outcome, rep.Attempts)
	}
}

func TestRobustRetriesExhaustedFails(t *testing.T) {
	infra := errors.New("register file on fire")
	report, err := RunTrialsRobust(
		Sweep{Trials: 1, Seed: 9},
		Resilience{Retries: 1, Backoff: time.Millisecond},
		func(ctx context.Context, tr Trial) (int, error) { return 0, infra }, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := report.Reports[0]
	if rep.Outcome != OutcomeFailed || rep.Attempts != 2 || !errors.Is(rep.Err, infra) {
		t.Fatalf("outcome=%s attempts=%d err=%v, want failed after 2 attempts", rep.Outcome, rep.Attempts, rep.Err)
	}
}

// TestRobustBackoffCancellation: cancelling the sweep while a trial sits in
// its retry backoff must return immediately with the cancellation error, not
// after the full (here deliberately enormous) backoff.
func TestRobustBackoffCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	infra := errors.New("transient infrastructure error")
	attempted := make(chan struct{})
	var once sync.Once
	go func() {
		// Cancel once the first attempt has failed and the trial is (about
		// to be) parked in its hour-long backoff.
		<-attempted
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunTrialsRobust(
		Sweep{Trials: 1, Seed: 5, Workers: 1, Context: ctx},
		Resilience{Retries: 3, Backoff: time.Hour},
		func(tctx context.Context, tr Trial) (int, error) {
			once.Do(func() { close(attempted) })
			return 0, infra // unknown error: triggers the retry backoff
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v: backoff is not context-aware", elapsed)
	}
}

// TestRobustCrashedShortClassification: crashing every process yields a
// completed execution with no deciders — crashed-short, not an error.
func TestRobustCrashedShortClassification(t *testing.T) {
	crashAll := fault.New(fault.Crash(fault.AllProcs, 2))
	report, err := RunTrialsRobust(
		Sweep{Trials: 3, Seed: 13},
		Resilience{Deadline: 5 * time.Second},
		func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
			file, proto := robustProto(t, 4)
			return RunProtocol(proto, ObjectConfig{
				N: 4, File: file, Inputs: []value.Value{0, 1, 0, 1},
				Seed: tr.Seed, Scheduler: sched.NewUniformRandom(),
				Faults: crashAll, Context: ctx,
			})
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Count(OutcomeCrashedShort); got != 3 {
		t.Fatalf("crashed-short = %d, want 3 (report: %s)", got, report)
	}
}

// TestRobustStepLimitClassifiedCrashedShort: exhausting MaxSteps is a
// model-level verdict (crashed-short), never a retried infrastructure error.
func TestRobustStepLimitClassifiedCrashedShort(t *testing.T) {
	report, err := RunTrialsRobust(
		Sweep{Trials: 1, Seed: 17},
		Resilience{Retries: 3},
		func(ctx context.Context, tr Trial) (*ProtocolRun, error) {
			file, proto := robustProto(t, 4)
			return RunProtocol(proto, ObjectConfig{
				N: 4, File: file, Inputs: []value.Value{0, 1, 0, 1},
				Seed: tr.Seed, Scheduler: sched.NewUniformRandom(), MaxSteps: 5,
			})
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := report.Reports[0]
	if rep.Outcome != OutcomeCrashedShort || !errors.Is(rep.Err, exec.ErrStepLimit) {
		t.Fatalf("outcome=%s err=%v, want crashed-short wrapping ErrStepLimit", rep.Outcome, rep.Err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("step-limited trial retried: %d attempts", rep.Attempts)
	}
}

// TestRobustExternalCancellation: cancelling the sweep's own context drops
// in-flight trials (no outcome pollution) and surfaces the cancellation.
func TestRobustExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	report, err := RunTrialsRobust(
		Sweep{Trials: 100, Seed: 21, Workers: 2, Context: ctx},
		Resilience{Deadline: time.Minute},
		func(tctx context.Context, tr Trial) (int, error) {
			if tr.Index == 4 {
				cancel()
			}
			select {
			case <-tctx.Done():
				return 0, tctx.Err()
			case <-time.After(2 * time.Millisecond):
				return tr.Index, nil
			}
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !report.StoppedEarly {
		t.Fatal("cancelled sweep did not report StoppedEarly")
	}
	if report.Count(OutcomeTimeout) != 0 {
		t.Fatalf("sweep cancellation polluted aggregates with timeouts: %s", report)
	}
	if report.Trials >= 100 {
		t.Fatal("cancelled sweep classified every trial")
	}
}

// TestRobustMergeOrderDeterministic: merge sees trials in index order at any
// worker count, exactly like RunTrials.
func TestRobustMergeOrderDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var order []int
		_, err := RunTrialsRobust(
			Sweep{Trials: 16, Seed: 23, Workers: workers},
			Resilience{},
			func(ctx context.Context, tr Trial) (int, error) { return tr.Index, nil },
			func(tr Trial, r int, rep TrialReport) { order = append(order, r) })
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: merge order %v", workers, order)
			}
		}
	}
}

func TestSweepReportString(t *testing.T) {
	r := &SweepReport{Counts: map[TrialOutcome]int{
		OutcomeTimeout: 2, OutcomeOK: 98,
	}}
	if got := r.String(); got != "ok=98 timeout=2" {
		t.Fatalf("String() = %q", got)
	}
	empty := &SweepReport{Counts: map[TrialOutcome]int{}}
	if got := empty.String(); got != "empty" {
		t.Fatalf("empty String() = %q", got)
	}
}
