package harness

// Tests for lane (batched) sweep routing: a lane-eligible cell routed
// through batch sessions must produce aggregates bit-identical to the
// per-trial pooled path at every lane width and worker count; ineligible
// cells (traced, metered, faulted) must fall back to pooled sessions and
// keep their semantics; and Sweep.Offset must partition a seed space so
// shard aggregates reassemble the unsharded sweep's exactly.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// laneProtocolSpec is a consensus cell with coin flips on both stages
// (impatient conciliator + binary ratifier), mixed per-trial inputs.
func laneProtocolSpec(t *testing.T, n int, mut func(cfg *ObjectConfig)) ProtocolSweep {
	t.Helper()
	return ProtocolSweep{
		Build: func() (*core.Protocol, ObjectConfig) {
			file := register.NewFile()
			proto, err := core.NewProtocol(core.Options{
				N: n, File: file,
				NewRatifier: func(f *register.File, i int) core.Object { return ratifier.NewBinary(f, i) },
				NewConciliator: func(f *register.File, i int) core.Object {
					return conciliator.NewImpatient(f, n, i)
				},
				FastPath: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := ObjectConfig{N: n, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewUniformRandom()}
			if mut != nil {
				mut(&cfg)
			}
			return proto, cfg
		},
		Inputs: func(tr Trial) []value.Value {
			inputs := make([]value.Value, n)
			for p := range inputs {
				inputs[p] = value.Value((p + tr.Index) % 2)
			}
			return inputs
		},
	}
}

// laneObjectSpec is a single impatient-conciliator cell, mirroring the E1
// sweep's shape.
func laneObjectSpec(n int, mut func(cfg *ObjectConfig)) ObjectSweep {
	return ObjectSweep{
		Build: func() (core.Object, ObjectConfig) {
			file := register.NewFile()
			c := conciliator.NewImpatient(file, n, 1)
			cfg := ObjectConfig{N: n, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewUniformRandom()}
			if mut != nil {
				mut(&cfg)
			}
			return c, cfg
		},
		Inputs: func(tr Trial) []value.Value {
			inputs := make([]value.Value, n)
			for p := range inputs {
				inputs[p] = value.Value((p + tr.Index) % 2)
			}
			return inputs
		},
	}
}

// protocolDigest is everything a protocol sweep folds, keyed by trial index.
type protocolDigest struct {
	Work    []int
	Steps   []int
	Decided []int
	Outputs [][]value.Value
}

func runProtocolDigest(t *testing.T, s Sweep, spec ProtocolSweep) protocolDigest {
	t.Helper()
	d := protocolDigest{
		Work:    make([]int, s.Trials),
		Steps:   make([]int, s.Trials),
		Decided: make([]int, s.Trials),
		Outputs: make([][]value.Value, s.Trials),
	}
	err := SweepProtocol(s, spec, func(tr Trial, run *ProtocolRun) {
		i := tr.Index - s.Offset
		d.Work[i] = run.Result.MaxIndividualWork()
		d.Steps[i] = run.Result.TotalWork
		d.Decided[i] = len(run.DecidedOutputs())
		d.Outputs[i] = run.DecidedOutputs()
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSweepProtocolLaneMatchesUnbatched pins the tentpole determinism claim
// at the harness layer: routing a lane-eligible protocol sweep through batch
// sessions — at any lane width and worker count — produces per-trial results
// bit-identical to the per-trial pooled path.
func TestSweepProtocolLaneMatchesUnbatched(t *testing.T) {
	const n, trials = 8, 33
	spec := laneProtocolSpec(t, n, nil)
	base := runProtocolDigest(t, Sweep{Trials: trials, Workers: 1, Seed: 42, LaneWidth: -1}, spec)
	for _, tc := range []struct{ width, workers int }{
		{0, 1}, {4, 3}, {7, 2}, {64, 4}, {1, 2},
	} {
		got := runProtocolDigest(t, Sweep{Trials: trials, Workers: tc.workers, Seed: 42, LaneWidth: tc.width}, spec)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("width=%d workers=%d: lane sweep diverged from unbatched baseline", tc.width, tc.workers)
		}
	}
}

// TestSweepObjectLaneMatchesUnbatched is the object-sweep counterpart.
func TestSweepObjectLaneMatchesUnbatched(t *testing.T) {
	const n, trials = 4, 25
	spec := laneObjectSpec(n, nil)
	digest := func(s Sweep) ([]int, [][]value.Value) {
		works := make([]int, s.Trials)
		outs := make([][]value.Value, s.Trials)
		err := SweepObject(s, spec, func(tr Trial, run *ObjectRun) {
			works[tr.Index] = run.Result.TotalWork
			outs[tr.Index] = run.Outputs()
		})
		if err != nil {
			t.Fatal(err)
		}
		return works, outs
	}
	baseWorks, baseOuts := digest(Sweep{Trials: trials, Workers: 1, Seed: 7, LaneWidth: -1})
	for _, tc := range []struct{ width, workers int }{{0, 1}, {6, 2}, {32, 3}} {
		works, outs := digest(Sweep{Trials: trials, Workers: tc.workers, Seed: 7, LaneWidth: tc.width})
		if !reflect.DeepEqual(works, baseWorks) || !reflect.DeepEqual(outs, baseOuts) {
			t.Errorf("width=%d workers=%d: lane object sweep diverged from unbatched baseline", tc.width, tc.workers)
		}
	}
}

// TestLaneEligibility pins which cells may batch: an unencumbered sim cell
// is eligible; trace, meter, or a fault plan (crash map or typed) each
// disqualify it, as does disabling lanes on the sweep.
func TestLaneEligibility(t *testing.T) {
	const n = 4
	cases := []struct {
		name string
		s    Sweep
		mut  func(cfg *ObjectConfig)
		want bool
	}{
		{"eligible", Sweep{LaneWidth: 0}, nil, true},
		{"lanes-disabled", Sweep{LaneWidth: -1}, nil, false},
		{"traced", Sweep{}, func(cfg *ObjectConfig) { cfg.Traced = true }, false},
		{"metered", Sweep{Meter: new(obs.Meter)}, nil, false},
		{"crash-map", Sweep{}, func(cfg *ObjectConfig) { cfg.CrashAfter = map[int]int{0: 5} }, false},
		{"fault-plan", Sweep{}, func(cfg *ObjectConfig) { cfg.Faults = fault.New(fault.LoseCoin(1, 1, 3)) }, false},
		{"regular-registers", Sweep{}, func(cfg *ObjectConfig) { cfg.Registers = register.Regular }, false},
		{"interposed-registers", Sweep{}, func(cfg *ObjectConfig) { cfg.Registers = register.Interposed }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			os, err := newObjectSession(tc.s, laneObjectSpec(n, tc.mut))
			if err != nil {
				t.Fatal(err)
			}
			defer os.close()
			if got := os.batch != nil; got != tc.want {
				t.Errorf("object cell batch-eligible = %v, want %v", got, tc.want)
			}
			ps, err := newProtocolSession(tc.s, laneProtocolSpec(t, n, tc.mut))
			if err != nil {
				t.Fatal(err)
			}
			defer ps.close()
			if got := ps.batch != nil; got != tc.want {
				t.Errorf("protocol cell batch-eligible = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSweepLaneFallback runs ineligible cells through a sweep that asks for
// lanes: a faulted cell must match its unbatched baseline (same fold, pooled
// path), and a traced cell must still deliver per-trial traces — proof it
// fell back, since lane engines are traceless.
func TestSweepLaneFallback(t *testing.T) {
	const n, trials = 4, 10
	faulted := func(cfg *ObjectConfig) { cfg.Faults = fault.New(fault.Crash(0, 30), fault.LoseCoin(1, 1, 2)) }
	spec := laneProtocolSpec(t, n, faulted)
	base := runProtocolDigest(t, Sweep{Trials: trials, Workers: 1, Seed: 5, LaneWidth: -1}, spec)
	got := runProtocolDigest(t, Sweep{Trials: trials, Workers: 2, Seed: 5, LaneWidth: 8}, spec)
	if !reflect.DeepEqual(got, base) {
		t.Errorf("faulted cell with LaneWidth=8 diverged from unbatched baseline")
	}

	traces := 0
	err := SweepProtocol(Sweep{Trials: trials, Workers: 1, Seed: 5, LaneWidth: 8},
		laneProtocolSpec(t, n, func(cfg *ObjectConfig) { cfg.Traced = true }),
		func(tr Trial, run *ProtocolRun) {
			if run.Trace != nil && run.Trace.Len() > 0 {
				traces++
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if traces != trials {
		t.Errorf("traced cell under LaneWidth=8 yielded %d non-empty traces, want %d", traces, trials)
	}

	// A regular-register cell is lane-ineligible (lane engines are
	// atomic-only); asking for lanes anyway must transparently run it on
	// pooled sessions with bit-identical per-trial results.
	regular := func(cfg *ObjectConfig) { cfg.Registers = register.Regular }
	regSpec := laneProtocolSpec(t, n, regular)
	regBase := runProtocolDigest(t, Sweep{Trials: trials, Workers: 1, Seed: 5, LaneWidth: -1}, regSpec)
	regGot := runProtocolDigest(t, Sweep{Trials: trials, Workers: 2, Seed: 5, LaneWidth: 8}, regSpec)
	if !reflect.DeepEqual(regGot, regBase) {
		t.Errorf("regular-register cell with LaneWidth=8 diverged from unbatched baseline")
	}
}

// TestSweepOffsetPartitions pins the shard contract: contiguous Offset
// slices of a seed space compute exactly the trials the unsharded sweep
// would, so reassembling shard results by global index reproduces the
// unsharded sweep bit for bit — on both the lane and the pooled path.
func TestSweepOffsetPartitions(t *testing.T) {
	const n, trials = 8, 21
	spec := laneProtocolSpec(t, n, nil)
	for _, width := range []int{-1, 8} {
		base := runProtocolDigest(t, Sweep{Trials: trials, Workers: 1, Seed: 11, LaneWidth: width}, spec)
		merged := protocolDigest{
			Work:    make([]int, trials),
			Steps:   make([]int, trials),
			Decided: make([]int, trials),
			Outputs: make([][]value.Value, trials),
		}
		for _, shard := range []struct{ lo, hi int }{{0, 8}, {8, 16}, {16, trials}} {
			d := runProtocolDigest(t, Sweep{
				Trials: shard.hi - shard.lo, Offset: shard.lo,
				Workers: 2, Seed: 11, LaneWidth: width,
			}, spec)
			copy(merged.Work[shard.lo:shard.hi], d.Work)
			copy(merged.Steps[shard.lo:shard.hi], d.Steps)
			copy(merged.Decided[shard.lo:shard.hi], d.Decided)
			copy(merged.Outputs[shard.lo:shard.hi], d.Outputs)
		}
		if !reflect.DeepEqual(merged, base) {
			t.Errorf("width=%d: merged shard digests diverged from the unsharded sweep", width)
		}
	}
}

// TestSweepLaneErrorIndexMatchesPooled pins deterministic failure
// attribution across routing: a per-trial error (bad input arity) surfaces
// as the same "harness: trial N" error whether the trial ran in a lane or a
// pooled session.
func TestSweepLaneErrorIndexMatchesPooled(t *testing.T) {
	const n, trials, victim = 4, 12, 9
	spec := laneObjectSpec(n, nil)
	spec.Inputs = func(tr Trial) []value.Value {
		if tr.Index == victim {
			return make([]value.Value, n+1) // wrong arity: in.set must reject
		}
		return []value.Value{value.Value(tr.Index % 2)}
	}
	want := fmt.Sprintf("harness: trial %d:", victim)
	for _, width := range []int{-1, 5} {
		err := SweepObject(Sweep{Trials: trials, Workers: 2, Seed: 3, LaneWidth: width}, spec, nil)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("width=%d: error %v, want one containing %q", width, err, want)
		}
	}
}
