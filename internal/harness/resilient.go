// Resilient trial engine.
//
// RunTrials (trials.go) treats any trial error as fatal to the sweep —
// the right contract for equivalence tests, where an error means the
// experiment itself is broken. Fault-injection sweeps invert that premise:
// trials are *expected* to crash short, livelock, or (if a bug slips in)
// violate safety, and the sweep's job is to keep going and report how many
// did what. RunTrialsRobust is the graceful-degradation engine for those
// sweeps: per-trial panic containment, a deadline watchdog that detects
// livelocked or stuck trials on either backend, bounded retry with
// exponential backoff for infrastructure failures, and per-trial outcome
// classification (ok | violated | timeout | panicked | crashed-short |
// failed) folded into partial aggregates instead of aborting the sweep.
//
// The determinism story of RunTrials carries over: trial seeds come from
// the same TrialSeed derivation, and reports are folded in trial-index
// order through the same reorder-buffer pattern, so per-outcome counts are
// reproducible at any worker count (wall-clock-dependent classifications —
// timeouts on a loaded machine — are the one unavoidable exception, and
// exactly what the deadline exists to bound).
package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/modular-consensus/modcon/internal/exec"
)

// ErrTrialDeadline is the cancellation cause the watchdog attaches when a
// trial outlives Resilience.Deadline; backends wrap it into their
// cancellation error, so errors.Is identifies watchdog kills wherever they
// surface.
var ErrTrialDeadline = errors.New("harness: trial deadline exceeded")

// TrialOutcome classifies one trial of a robust sweep.
type TrialOutcome string

const (
	// OutcomeOK: the trial completed and its online safety monitor (if
	// any) observed no violation.
	OutcomeOK TrialOutcome = "ok"
	// OutcomeViolated: the trial's safety monitor observed an agreement or
	// validity violation — a bug, never bad luck.
	OutcomeViolated TrialOutcome = "violated"
	// OutcomeTimeout: the deadline watchdog killed a livelocked or stuck
	// trial (or the trial was unresponsive even to cancellation).
	OutcomeTimeout TrialOutcome = "timeout"
	// OutcomePanicked: the trial's execution panicked; the panic was
	// contained to the trial and the sweep continued.
	OutcomePanicked TrialOutcome = "panicked"
	// OutcomeCrashedShort: the execution ended without any process
	// deciding (every process crashed, or the step limit cut it down).
	OutcomeCrashedShort TrialOutcome = "crashed-short"
	// OutcomeFailed: an infrastructure error persisted through every
	// retry.
	OutcomeFailed TrialOutcome = "failed"
)

// Resilience tunes the robust trial engine.
type Resilience struct {
	// Deadline is the per-trial watchdog: a trial still running after this
	// long is cancelled (cause ErrTrialDeadline) and classified
	// OutcomeTimeout. 0 disables the watchdog.
	Deadline time.Duration
	// Grace bounds how long the watchdog waits, after cancelling, for the
	// trial to acknowledge before abandoning its goroutine (a backend
	// honoring the Context contract acknowledges at its next operation
	// boundary). 0 means 1s.
	Grace time.Duration
	// Retries bounds re-attempts of a trial that failed with an unknown
	// (infrastructure) error. Model-level outcomes — violations, timeouts,
	// panics, step-limit exhaustion — are deterministic verdicts and are
	// never retried.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt. 0 means
	// 10ms.
	Backoff time.Duration
	// FailFast stops the sweep at the first safety violation (remaining
	// in-flight trials are cancelled; the report keeps what finished).
	FailFast bool
}

func (r Resilience) grace() time.Duration {
	if r.Grace <= 0 {
		return time.Second
	}
	return r.Grace
}

func (r Resilience) backoff() time.Duration {
	if r.Backoff <= 0 {
		return 10 * time.Millisecond
	}
	return r.Backoff
}

// TrialReport is the per-trial record of a robust sweep.
type TrialReport struct {
	// Trial is the trial's index and derived seed.
	Trial Trial
	// Outcome is the classification.
	Outcome TrialOutcome
	// Err explains any non-ok outcome (the violation, the watchdog kill,
	// the contained panic, ...); nil for OutcomeOK.
	Err error
	// Attempts counts executions of the trial (1 + retries used).
	Attempts int
	// Elapsed is the trial's total wall time across attempts.
	Elapsed time.Duration
}

// SweepReport aggregates a robust sweep: per-outcome counts plus the
// per-trial reports, in trial order. When the sweep is cut short (FailFast
// or external cancellation) the aggregates cover exactly the classified
// trials — partial but correct.
type SweepReport struct {
	// Trials counts classified trials (== len(Reports)).
	Trials int
	// Counts maps each observed outcome to its frequency.
	Counts map[TrialOutcome]int
	// Reports holds the per-trial records in trial-index order.
	Reports []TrialReport
	// StoppedEarly reports that the sweep ended before classifying every
	// trial (FailFast tripped, or the sweep context was cancelled).
	StoppedEarly bool
}

// Count returns the number of trials with the given outcome.
func (r *SweepReport) Count(o TrialOutcome) int { return r.Counts[o] }

// Violations returns the number of trials that violated safety.
func (r *SweepReport) Violations() int { return r.Counts[OutcomeViolated] }

// String renders the counts compactly ("ok=98 timeout=2"), in a fixed
// outcome order so reports are comparable.
func (r *SweepReport) String() string {
	s := ""
	for _, o := range []TrialOutcome{OutcomeOK, OutcomeViolated, OutcomeTimeout, OutcomePanicked, OutcomeCrashedShort, OutcomeFailed} {
		if n := r.Counts[o]; n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", o, n)
		}
	}
	if s == "" {
		s = "empty"
	}
	return s
}

// safetyReporter lets trial results surface an online safety violation to
// the classifier; *ProtocolRun implements it.
type safetyReporter interface{ SafetyViolation() error }

// shortReporter lets trial results report that the execution ended with no
// decision; *ProtocolRun implements it.
type shortReporter interface{ CutShort() bool }

// classify turns one attempt's (result, error) into a TrialOutcome, or ""
// for an unknown error that retry should handle. A safety violation
// dominates every other signal: a run that both violated and then timed
// out is a violated run.
func classify[T any](r T, err error) (TrialOutcome, error) {
	if sr, ok := any(r).(safetyReporter); ok {
		if v := sr.SafetyViolation(); v != nil {
			return OutcomeViolated, v
		}
	}
	if err == nil {
		if cs, ok := any(r).(shortReporter); ok && cs.CutShort() {
			return OutcomeCrashedShort, errors.New("harness: no process decided (execution cut short)")
		}
		return OutcomeOK, nil
	}
	if errors.Is(err, ErrTrialDeadline) || errors.Is(err, context.DeadlineExceeded) {
		return OutcomeTimeout, err
	}
	if errors.Is(err, exec.ErrStepLimit) {
		return OutcomeCrashedShort, err
	}
	return "", err
}

// runAttempt executes one attempt of a trial under the watchdog, containing
// panics to the attempt's goroutine. abandoned reports the pathological
// case of a trial that ignored cancellation past the grace period — its
// goroutine is leaked by design (there is no way to kill it), counted as a
// timeout, and the leak is bounded by one goroutine per abandoned trial.
func runAttempt[T any](ctx context.Context, rz Resilience, t Trial, run func(context.Context, Trial) (T, error)) (result T, err error, pan any, abandoned bool) {
	attemptCtx := ctx
	cancel := context.CancelFunc(func() {})
	if rz.Deadline > 0 {
		attemptCtx, cancel = context.WithTimeoutCause(ctx, rz.Deadline, ErrTrialDeadline)
	}
	defer cancel()

	type attemptDone struct {
		result T
		err    error
		pan    any
	}
	ch := make(chan attemptDone, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- attemptDone{pan: p}
			}
		}()
		r, err := run(attemptCtx, t)
		ch <- attemptDone{result: r, err: err}
	}()

	var d attemptDone
	select {
	case d = <-ch:
	case <-attemptCtx.Done():
		// Watchdog or sweep cancellation fired. A backend honoring the
		// Context contract acknowledges at its next operation boundary —
		// and a stalled process unwinds the moment the context does — so
		// wait a grace period for the attempt to come home.
		timer := time.NewTimer(rz.grace())
		defer timer.Stop()
		select {
		case d = <-ch:
		case <-timer.C:
			return result, fmt.Errorf("%w (unresponsive to cancellation for %v; goroutine abandoned)", context.Cause(attemptCtx), rz.grace()), nil, true
		}
	}
	return d.result, d.err, d.pan, false
}

// runRobustTrial drives one trial to a classification: attempts, watchdog,
// panic containment, bounded retry. dropped means the sweep was cancelled
// mid-trial and the trial should not be counted at all.
func runRobustTrial[T any](ctx context.Context, rz Resilience, t Trial, run func(context.Context, Trial) (T, error)) (result T, rep TrialReport, dropped bool) {
	rep = TrialReport{Trial: t}
	start := time.Now()
	defer func() { rep.Elapsed = time.Since(start) }()
	backoff := rz.backoff()
	for attempt := 0; ; attempt++ {
		rep.Attempts = attempt + 1
		r, err, pan, abandoned := runAttempt(ctx, rz, t, run)
		if pan != nil {
			// A panic is a bug, hence deterministic: contain it, report
			// it, never retry it.
			rep.Outcome = OutcomePanicked
			rep.Err = fmt.Errorf("harness: trial panicked: %v", pan)
			return r, rep, false
		}
		if abandoned {
			rep.Outcome = OutcomeTimeout
			rep.Err = err
			return r, rep, false
		}
		outcome, cerr := classify(r, err)
		if outcome == OutcomeTimeout && ctx.Err() != nil && !errors.Is(err, ErrTrialDeadline) {
			// The sweep's own context (not the per-trial watchdog) killed
			// this attempt: the trial was never given its full deadline,
			// so counting it as a timeout would poison the aggregates.
			return r, rep, true
		}
		if outcome != "" {
			rep.Outcome = outcome
			rep.Err = cerr
			return r, rep, false
		}
		// Unknown error: infrastructure trouble, worth retrying — unless
		// the sweep is shutting down, which is indistinguishable from (and
		// usually the cause of) the failure.
		if ctx.Err() != nil {
			return r, rep, true
		}
		if attempt >= rz.Retries {
			rep.Outcome = OutcomeFailed
			rep.Err = fmt.Errorf("harness: trial failed after %d attempt(s): %w", attempt+1, err)
			return r, rep, false
		}
		// Context-aware backoff: a stoppable timer rather than time.After,
		// so cancellation mid-backoff returns immediately and releases the
		// timer instead of leaving it live for the full (doubling, possibly
		// long) backoff.
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return r, rep, true
		}
		backoff *= 2
	}
}

// RunTrialsRobust executes run for every trial of s like RunTrials, but
// degrades gracefully instead of aborting: each trial is classified
// (contained panics, watchdog timeouts, safety violations, short runs,
// retried-then-failed infrastructure errors) and the sweep always returns
// its partial aggregates. merge, which may be nil, receives every
// classified trial in trial-index order together with its report; for
// non-ok outcomes the result may be partial or the zero value — consult
// rep.Outcome before trusting it.
//
// The returned error is nil unless the sweep's own context was cancelled
// externally; violations and timeouts are reported, not returned.
func RunTrialsRobust[T any](s Sweep, rz Resilience, run func(ctx context.Context, t Trial) (T, error), merge func(t Trial, r T, rep TrialReport)) (*SweepReport, error) {
	report := &SweepReport{Counts: make(map[TrialOutcome]int)}
	if s.Trials <= 0 {
		return report, nil
	}
	if err := s.admissionErr(); err != nil {
		return report, err
	}
	parent := s.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	sweepStart := time.Now()
	workers := s.workers()
	type robustOutcome struct {
		trial   Trial
		result  T
		report  TrialReport
		dropped bool
	}
	results := make(chan robustOutcome, workers)
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() (Trial, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= s.Trials {
			return Trial{}, false
		}
		t := s.trial(next)
		next++
		return t, true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				t, ok := claim()
				if !ok {
					return
				}
				if !s.admit(ctx, t, sweepStart) {
					// Cancelled while waiting for admission: report the trial
					// as dropped so the fold's index sequence stays gap-free.
					var zero T
					results <- robustOutcome{trial: t, result: zero, dropped: true}
					continue
				}
				r, rep, dropped := runRobustTrial(ctx, rz, t, run)
				// Every claimed trial reports in — even dropped ones — so
				// the fold below sees a gap-free index sequence. The
				// collector drains until the channel closes, so this send
				// cannot deadlock.
				results <- robustOutcome{trial: t, result: r, report: rep, dropped: dropped}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Fold classified trials in trial-index order (reorder buffer, as in
	// RunTrials) so counts, reports, and merge calls are deterministic at
	// any worker count.
	var (
		start    = time.Now()
		pending  = make(map[int]robustOutcome, workers)
		nextFold = s.Offset // trial indices are global (shard offset applied)
		prog     = Progress{Total: s.Trials}
	)
	for oc := range results {
		pending[oc.trial.Index] = oc
		for {
			oc, ok := pending[nextFold]
			if !ok {
				break
			}
			delete(pending, nextFold)
			nextFold++
			if oc.dropped {
				report.StoppedEarly = true
				continue
			}
			report.Trials++
			report.Counts[oc.report.Outcome]++
			report.Reports = append(report.Reports, oc.report)
			if merge != nil {
				merge(oc.trial, oc.result, oc.report)
			}
			prog.Done++
			if oc.report.Outcome == OutcomeOK {
				s.meterCost(&prog, any(oc.result))
			}
			prog.Violations = report.Counts[OutcomeViolated]
			s.observe(&prog, start, false)
			if rz.FailFast && oc.report.Outcome == OutcomeViolated {
				report.StoppedEarly = true
				cancel()
			}
		}
	}
	s.observe(&prog, start, true)
	if nextFold < s.Offset+s.Trials {
		report.StoppedEarly = true
	}
	if err := parent.Err(); err != nil {
		return report, err
	}
	return report, nil
}
