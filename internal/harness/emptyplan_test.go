package harness

import (
	"encoding/json"
	"testing"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// TestEmptyFaultPlanBitIdentical is the property that keeps the sim golden
// fixtures honest: threading an empty fault plan through the whole stack —
// config validation, injector compilation, backend hot path — must leave an
// execution bit-identical to a run with no plan at all. Compared on the
// JSON encoding of exec.Result, the same shape the goldens pin, so a new
// field leaking into fault-free results (e.g. a non-nil Stalled) shows up
// here before it moves a fixture.
func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	marshal := func(t *testing.T, r *exec.Result) string {
		t.Helper()
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	plans := map[string]*fault.Plan{
		"nil-plan":    nil,
		"zero-plan":   {},
		"empty-New":   fault.New(),
		"empty-merge": fault.Merge(nil, fault.FromCrashMap(nil)),
	}

	t.Run("sim", func(t *testing.T) {
		run := func(p *fault.Plan) string {
			file, proto := robustProto(t, 4)
			r, err := RunProtocol(proto, ObjectConfig{
				N: 4, File: file, Inputs: []value.Value{0, 1, 0, 1},
				Seed: 42, Scheduler: sched.NewUniformRandom(), Faults: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			return marshal(t, r.Result)
		}
		want := run(nil)
		for name, p := range plans {
			if got := run(p); got != want {
				t.Errorf("%s diverged from fault-free run:\n got %s\nwant %s", name, got, want)
			}
		}
	})

	// The live backend is deterministic only for n=1, where bit-equivalence
	// is a meaningful cross-run property.
	t.Run("live-n1", func(t *testing.T) {
		run := func(p *fault.Plan) string {
			file, proto := robustProto(t, 1)
			r, err := RunProtocol(proto, ObjectConfig{
				N: 1, File: file, Inputs: []value.Value{1},
				Seed: 42, Backend: live.Backend(), Faults: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			return marshal(t, r.Result)
		}
		want := run(nil)
		for name, p := range plans {
			if got := run(p); got != want {
				t.Errorf("%s diverged from fault-free run:\n got %s\nwant %s", name, got, want)
			}
		}
	})
}
