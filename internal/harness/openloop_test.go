package harness

// Tests for open-loop admission: an arrival schedule must change only when
// trials start, never what they compute or how results fold, so every
// aggregate is bit-identical with or without a schedule — and a recorded
// trace of an open-loop sweep must replay to the same demands exactly.

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/workload"
)

// openSchedule builds a Poisson arrival schedule long enough for n trials.
func openSchedule(t *testing.T, n int) (*workload.Spec, []int64) {
	t.Helper()
	spec, err := workload.Parse("poisson:rate=200000")
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := spec.Schedule(77, n)
	if err != nil {
		t.Fatal(err)
	}
	return spec, arrivals
}

// TestOpenLoopAggregatesUnchanged: the same protocol sweep, closed-loop and
// open-loop, folds identical per-trial work — admission affects dispatch
// timing only.
func TestOpenLoopAggregatesUnchanged(t *testing.T) {
	const n, trials = 6, 48
	_, arrivals := openSchedule(t, trials)
	run := func(arr []int64, workers, offset, count int) []int {
		works := make([]int, trials)
		err := SweepProtocol(
			Sweep{Trials: count, Workers: workers, Seed: 31, Offset: offset, Arrivals: arr},
			poolConsensusSpec(t, n, nil),
			func(tr Trial, run *ProtocolRun) { works[tr.Index] = run.Result.TotalWork })
		if err != nil {
			t.Fatal(err)
		}
		return works
	}
	closed := run(nil, 4, 0, trials)
	open := run(arrivals, 4, 0, trials)
	if !reflect.DeepEqual(closed, open) {
		t.Fatal("open-loop admission changed per-trial results")
	}
	serial := run(arrivals, 1, 0, trials)
	if !reflect.DeepEqual(open, serial) {
		t.Fatal("open-loop results depend on worker count")
	}
	// Sharded slices against the full (unsliced) schedule tile the same
	// per-trial results.
	sharded := make([]int, trials)
	for lo := 0; lo < trials; lo += 16 {
		part := run(arrivals, 3, lo, 16)
		copy(sharded[lo:lo+16], part[lo:lo+16])
	}
	if !reflect.DeepEqual(open, sharded) {
		t.Fatal("sharded open-loop sweep diverged from the unsharded run")
	}
}

// TestOpenLoopRecordReplay: record a trace from an open-loop sweep, re-run
// the sweep, and the replayed demands must verify against the recording —
// and the re-recorded trace must encode to identical bytes.
func TestOpenLoopRecordReplay(t *testing.T) {
	const n, trials = 5, 40
	spec, arrivals := openSchedule(t, trials)
	sweep := func(workers int) []int64 {
		demands := make([]int64, trials)
		err := SweepProtocol(
			Sweep{Trials: trials, Workers: workers, Seed: 13, Arrivals: arrivals},
			poolConsensusSpec(t, n, nil),
			func(tr Trial, run *ProtocolRun) {
				steps, _ := run.SweepCost()
				demands[tr.Index] = int64(steps)
			})
		if err != nil {
			t.Fatal(err)
		}
		return demands
	}
	recorded, err := workload.Record(spec, 13, trials, 0, trials, arrivals[:trials], sweep(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := recorded.Verify(sweep(2)); err != nil {
		t.Fatalf("replay diverged from the recording: %v", err)
	}
	replayed, err := workload.Record(spec, 13, trials, 0, trials, arrivals[:trials], sweep(1))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := recorded.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := replayed.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-recorded trace is not byte-identical")
	}
}

// TestAdmissionValidation: malformed schedules fail the sweep up front.
func TestAdmissionValidation(t *testing.T) {
	noop := func(ctx context.Context, tr Trial) (int, error) { return 0, nil }
	cases := []Sweep{
		{Trials: 4, Arrivals: []int64{0, 1, 2}},               // too short
		{Trials: 2, Offset: 3, Arrivals: []int64{0, 1, 2, 3}}, // short for offset
		{Trials: 3, Arrivals: []int64{0, 5, 2}},               // decreasing
		{Trials: 2, Arrivals: []int64{0, 1}, Pace: -1},        // negative pace
	}
	for i, s := range cases {
		if err := RunTrials(s, noop, nil); err == nil {
			t.Errorf("case %d: malformed schedule accepted by RunTrials", i)
		}
		if _, err := RunTrialsRobust(s, Resilience{}, noop, nil); err == nil {
			t.Errorf("case %d: malformed schedule accepted by RunTrialsRobust", i)
		}
	}
}

// TestAdmissionPacing: with Pace > 0 the sweep waits out the scaled
// schedule; cancellation mid-wait returns promptly with the context error.
func TestAdmissionPacing(t *testing.T) {
	arrivals := []int64{0, 10_000_000, 20_000_000, 30_000_000} // 10ms spacing
	var ran int
	start := time.Now()
	err := RunTrials(
		Sweep{Trials: 4, Workers: 2, Arrivals: arrivals, Pace: 10}, // → 1ms wall spacing
		func(ctx context.Context, tr Trial) (int, error) { return 0, nil },
		func(tr Trial, r int) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 4 {
		t.Fatalf("paced sweep merged %d trials, want 4", ran)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("paced sweep finished in %v, faster than the scaled schedule allows", elapsed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = RunTrials(
		Sweep{Trials: 2, Workers: 1, Context: ctx, Arrivals: []int64{int64(time.Hour), int64(time.Hour)}, Pace: 1},
		func(ctx context.Context, tr Trial) (int, error) { return 0, nil }, nil)
	if err == nil {
		t.Fatal("cancelled paced sweep returned nil")
	}
}

// TestRobustSweepOffset: the resilient engine folds a shard slice whose
// trial indices start at Offset (a regression test — the fold previously
// assumed indices start at 0 and stalled on any offset slice).
func TestRobustSweepOffset(t *testing.T) {
	const offset, trials = 5, 10
	var merged []int
	report, err := RunTrialsRobust(
		Sweep{Trials: trials, Offset: offset, Workers: 3, Seed: 9},
		Resilience{},
		func(ctx context.Context, tr Trial) (int, error) { return tr.Index, nil },
		func(tr Trial, r int, rep TrialReport) { merged = append(merged, r) })
	if err != nil {
		t.Fatal(err)
	}
	if report.Trials != trials || report.StoppedEarly {
		t.Fatalf("offset robust sweep classified %d trials (stoppedEarly=%v), want %d", report.Trials, report.StoppedEarly, trials)
	}
	want := make([]int, 0, trials)
	for i := offset; i < offset+trials; i++ {
		want = append(want, i)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("offset robust fold order %v, want %v", merged, want)
	}
}
