// Package ratifier implements the paper's deterministic ratifiers (§6):
// weak consensus objects that detect agreement. A ratifier satisfies
// validity, termination, coherence, and acceptance (all-equal inputs force
// everyone to decide), and by Theorem 8 the follow-the-leader construction
// below has all four whenever its quorum system satisfies
// W_v ∩ R_u = ∅ ⇔ v = u.
package ratifier

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/quorum"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Quorum is Procedure Ratifier instantiated with a quorum scheme:
//
//	foreach r_i ∈ W_v do r_i ← 1            // announce v
//	u ← proposal
//	if u ≠ ⊥ then preference ← u            // adopt earlier proposal
//	else preference ← v; proposal ← v       // or propose own value
//	if r_i ≠ 0 for some r_i ∈ R_preference  // conflicting announcement?
//	then return (0, preference)
//	else return (1, preference)
//
// Individual work is |W_v| + |R_pref| + 2 ≤ poolsize + 2 operations; space
// is poolsize + 1 registers. With the binary scheme that is 4 operations and
// 3 registers; with the bit-vector scheme 2⌈lg m⌉+2 and 2⌈lg m⌉+1; with the
// optimal pool scheme lg m + Θ(log log m) of each (Theorem 10).
type Quorum struct {
	scheme   quorum.Scheme
	pool     register.Array
	proposal register.Reg
	label    string
}

var _ core.Object = (*Quorum)(nil)

// New allocates a ratifier over the given quorum scheme. index names the
// instance (Rᵢ; the fast-path instances are R₋₁ and R₀).
func New(file *register.File, scheme quorum.Scheme, index int) *Quorum {
	label := fmt.Sprintf("R%d", index)
	r := &Quorum{
		scheme:   scheme,
		pool:     file.Alloc(scheme.PoolSize(), label+".pool"),
		proposal: file.Alloc1(label + ".proposal"),
		label:    label,
	}
	// Announcement registers start at 0 ("binary registers r_i, initially 0").
	for i := 0; i < r.pool.Len; i++ {
		file.Init(r.pool.At(i), 0)
	}
	return r
}

// NewBinary allocates the 3-register binary ratifier (§6.2 choice 1).
func NewBinary(file *register.File, index int) *Quorum {
	return New(file, quorum.Binary{}, index)
}

// NewPool allocates the Bollobás-optimal m-valued ratifier (§6.2 choice 2).
func NewPool(file *register.File, m, index int) *Quorum {
	return New(file, quorum.NewPool(m), index)
}

// NewBitVector allocates the bit-vector m-valued ratifier (§6.2 choice 3).
func NewBitVector(file *register.File, m, index int) *Quorum {
	return New(file, quorum.NewBitVector(m), index)
}

// Invoke implements core.Object.
func (r *Quorum) Invoke(e core.Env, v value.Value) value.Decision {
	// Announce v.
	for _, i := range r.scheme.WriteQuorum(v) {
		e.Write(r.pool.At(i), 1)
	}
	// Adopt or propose.
	pref := v
	if u := e.Read(r.proposal); !u.IsNone() {
		pref = u
	} else {
		e.Write(r.proposal, v)
	}
	// Look for conflicting announcements.
	for _, i := range r.scheme.ReadQuorum(pref) {
		if e.Read(r.pool.At(i)) != 0 {
			return value.Continue(pref)
		}
	}
	return value.Decide(pref)
}

// MaxIndividualWork bounds per-process operations: |W| writes, 1 read and
// up to 1 write of the proposal, |R| reads.
func (r *Quorum) MaxIndividualWork() int {
	// All schemes here have |W_v| and |R_v| independent of v; measure at 0.
	return len(r.scheme.WriteQuorum(0)) + len(r.scheme.ReadQuorum(0)) + 2
}

// Registers returns the total register count (pool + proposal).
func (r *Quorum) Registers() int { return r.pool.Len + 1 }

// Scheme exposes the quorum scheme.
func (r *Quorum) Scheme() quorum.Scheme { return r.scheme }

// Label implements core.Object.
func (r *Quorum) Label() string { return r.label }

// Collect is the cheap-collect ratifier (§6.2 choice 4): each process
// announces its value in its own register and detects conflicts with a
// single collect, for 4 operations of individual work regardless of m —
// provided the model charges O(1) for reading the n-register announcement
// array.
type Collect struct {
	announce register.Array // announce.At(pid) holds pid's announced value
	proposal register.Reg
	label    string
}

var _ core.Object = (*Collect)(nil)

// NewCollect allocates the cheap-collect ratifier for n processes.
func NewCollect(file *register.File, n, index int) *Collect {
	if n <= 0 {
		panic(fmt.Sprintf("ratifier: n=%d must be positive", n))
	}
	label := fmt.Sprintf("RC%d", index)
	return &Collect{
		announce: file.Alloc(n, label+".announce"),
		proposal: file.Alloc1(label + ".proposal"),
		label:    label,
	}
}

// Invoke implements core.Object.
func (r *Collect) Invoke(e core.Env, v value.Value) value.Decision {
	e.Write(r.announce.At(e.PID()), v)
	pref := v
	if u := e.Read(r.proposal); !u.IsNone() {
		pref = u
	} else {
		e.Write(r.proposal, v)
	}
	for _, a := range e.Collect(r.announce) {
		if !a.IsNone() && a != pref {
			return value.Continue(pref)
		}
	}
	return value.Decide(pref)
}

// Label implements core.Object.
func (r *Collect) Label() string { return r.label }
