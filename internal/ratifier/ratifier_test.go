package ratifier

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/quorum"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

type schemeCase struct {
	name  string
	m     int
	build func(file *register.File) core.Object
}

func schemeCases(m int) []schemeCase {
	cases := []schemeCase{
		{"pool", m, func(f *register.File) core.Object { return NewPool(f, m, 1) }},
		{"bitvector", m, func(f *register.File) core.Object { return NewBitVector(f, m, 1) }},
	}
	if m == 2 {
		cases = append(cases, schemeCase{"binary", 2, func(f *register.File) core.Object { return NewBinary(f, 1) }})
	}
	return cases
}

func adversaries() []func() sched.Scheduler {
	return []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRoundRobin() },
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewSplitVote() },
		func() sched.Scheduler { return sched.NewAdaptiveSpoiler() },
		func() sched.Scheduler { return sched.NewLaggard() },
		func() sched.Scheduler { return sched.NewFrontrunner() },
	}
}

func TestAcceptance(t *testing.T) {
	// If all inputs are equal, all outputs are (1, v) — under any adversary
	// (ratifiers are deterministic, so only the schedule varies).
	for _, m := range []int{2, 3, 7} {
		for _, sc := range schemeCases(m) {
			for _, mk := range adversaries() {
				for v := 0; v < m; v++ {
					file := register.NewFile()
					obj := sc.build(file)
					run, err := harness.RunObject(obj, harness.ObjectConfig{
						N: 4, File: file, Inputs: []value.Value{value.Value(v)},
						Scheduler: mk(), Seed: uint64(v),
					})
					if err != nil {
						t.Fatal(err)
					}
					for pid, d := range run.Decisions {
						if !d.Decided || d.V != value.Value(v) {
							t.Fatalf("%s m=%d v=%d: pid %d returned %s, want (1, %d)",
								sc.name, m, v, pid, d, v)
						}
					}
				}
			}
		}
	}
}

func TestCoherenceAndValidityUnderMixedInputs(t *testing.T) {
	// Across adversaries, seeds, and input patterns: if anyone decides v,
	// everyone outputs v; all outputs are inputs; never two distinct
	// decisions.
	for _, m := range []int{2, 3, 5} {
		for _, sc := range schemeCases(m) {
			for _, mk := range adversaries() {
				for seed := uint64(0); seed < 10; seed++ {
					n := 5
					inputs := make([]value.Value, n)
					for i := range inputs {
						inputs[i] = value.Value((i + int(seed)) % m)
					}
					file := register.NewFile()
					obj := sc.build(file)
					run, err := harness.RunObject(obj, harness.ObjectConfig{
						N: n, File: file, Inputs: inputs, Scheduler: mk(), Seed: seed, Traced: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := check.Objects(run.Trace, "R"); err != nil {
						t.Fatalf("%s m=%d seed=%d: %v\n%s", sc.name, m, seed, err, run.Trace)
					}
					if err := check.Validity(inputs, run.Outputs()); err != nil {
						t.Fatalf("%s m=%d seed=%d: %v", sc.name, m, seed, err)
					}
				}
			}
		}
	}
}

func TestSoloProcessDecides(t *testing.T) {
	// A process running alone cannot distinguish its execution from a
	// unanimous one, so acceptance forces it to decide its own input.
	for _, sc := range schemeCases(4) {
		file := register.NewFile()
		obj := sc.build(file)
		run, err := harness.RunObject(obj, harness.ObjectConfig{
			N: 1, File: file, Inputs: []value.Value{2}, Scheduler: sched.NewRoundRobin(), Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d := run.Decisions[0]; !d.Decided || d.V != 2 {
			t.Fatalf("%s: solo returned %s, want (1, 2)", sc.name, d)
		}
	}
}

func TestAdoptionMakesConflictVisible(t *testing.T) {
	// A process that adopts the proposed value after announcing a different
	// one must NOT decide: its own announcement conflicts with its adopted
	// preference (this is the heart of the coherence proof).
	file := register.NewFile()
	r := NewBinary(file, 1)
	// p0 (input 0) runs completely first and decides 0; then p1 (input 1)
	// announces 1, adopts 0, and must see its own announcement in R_0.
	run, err := harness.RunObject(r, harness.ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1},
		Scheduler: sched.NewFrontrunner(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := run.Decisions[0]; !d.Decided || d.V != 0 {
		t.Fatalf("first mover returned %s, want (1, 0)", d)
	}
	if d := run.Decisions[1]; d.Decided || d.V != 0 {
		t.Fatalf("latecomer returned %s, want (0, 0)", d)
	}
}

func TestWorkBounds(t *testing.T) {
	// Individual work is exactly bounded by |W|+|R|+2: 4 ops binary,
	// 2⌈lg m⌉+2 bit-vector, poolsize+2 pool — on every execution.
	cases := []struct {
		name  string
		m     int
		build func(f *register.File) *Quorum
		want  int
	}{
		{"binary", 2, func(f *register.File) *Quorum { return NewBinary(f, 1) }, 4},
		{"bitvector m=16", 16, func(f *register.File) *Quorum { return NewBitVector(f, 16, 1) }, 2*4 + 2},
		{"bitvector m=1000", 1000, func(f *register.File) *Quorum { return NewBitVector(f, 1000, 1) }, 2*10 + 2},
		{"pool m=1000", 1000, func(f *register.File) *Quorum { return NewPool(f, 1000, 1) }, 13 + 2},
	}
	for _, tt := range cases {
		file := register.NewFile()
		r := tt.build(file)
		if got := r.MaxIndividualWork(); got != tt.want {
			t.Errorf("%s: MaxIndividualWork = %d, want %d", tt.name, got, tt.want)
		}
		for seed := uint64(0); seed < 10; seed++ {
			n := 6
			inputs := make([]value.Value, n)
			for i := range inputs {
				inputs[i] = value.Value(i % tt.m)
			}
			f2 := register.NewFile()
			r2 := tt.build(f2)
			run, err := harness.RunObject(r2, harness.ObjectConfig{
				N: n, File: f2, Inputs: inputs, Scheduler: sched.NewUniformRandom(), Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.IndividualWorkBound(run.Result.Work, tt.want); err != nil {
				t.Errorf("%s seed=%d: %v", tt.name, seed, err)
			}
		}
	}
}

func TestSpaceMatchesPaper(t *testing.T) {
	file := register.NewFile()
	if got := NewBinary(file, 1).Registers(); got != 3 {
		t.Errorf("binary ratifier uses %d registers, want 3", got)
	}
	for _, m := range []int{4, 100, 4096} {
		f := register.NewFile()
		bv := NewBitVector(f, m, 1)
		want := 2*bitsFor(m) + 1
		if got := bv.Registers(); got != want {
			t.Errorf("bitvector m=%d: %d registers, want %d", m, got, want)
		}
		f2 := register.NewFile()
		p := NewPool(f2, m, 1)
		if got := p.Registers(); got != quorum.MinPoolSize(m)+1 {
			t.Errorf("pool m=%d: %d registers, want %d", m, got, quorum.MinPoolSize(m)+1)
		}
	}
}

func bitsFor(m int) int {
	b := 0
	for 1<<b < m {
		b++
	}
	return b
}

func TestCollectRatifierCheapModel(t *testing.T) {
	// §6.2 choice 4: with cheap collects the individual work is 4 ops.
	for seed := uint64(0); seed < 20; seed++ {
		n := 5
		inputs := make([]value.Value, n)
		for i := range inputs {
			inputs[i] = value.Value(i % 3)
		}
		file := register.NewFile()
		r := NewCollect(file, n, 0)
		run, err := harness.RunObject(r, harness.ObjectConfig{
			N: n, File: file, Inputs: inputs, Scheduler: sched.NewUniformRandom(),
			Seed: seed, CheapCollect: true, Traced: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.IndividualWorkBound(run.Result.Work, 4); err != nil {
			t.Fatal(err)
		}
		if err := check.Objects(run.Trace, "RC"); err != nil {
			t.Fatal(err)
		}
		if err := check.Validity(inputs, run.Outputs()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCollectRatifierAcceptance(t *testing.T) {
	for _, cheap := range []bool{true, false} {
		file := register.NewFile()
		r := NewCollect(file, 4, 0)
		run, err := harness.RunObject(r, harness.ObjectConfig{
			N: 4, File: file, Inputs: []value.Value{9}, Scheduler: sched.NewRoundRobin(),
			Seed: 2, CheapCollect: cheap,
		})
		if err != nil {
			t.Fatal(err)
		}
		for pid, d := range run.Decisions {
			if !d.Decided || d.V != 9 {
				t.Fatalf("cheap=%v pid %d returned %s, want (1, 9)", cheap, pid, d)
			}
		}
	}
}

func TestCollectRatifierCoherence(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		n := 6
		inputs := make([]value.Value, n)
		for i := range inputs {
			inputs[i] = value.Value(i % 2)
		}
		file := register.NewFile()
		r := NewCollect(file, n, 0)
		run, err := harness.RunObject(r, harness.ObjectConfig{
			N: n, File: file, Inputs: inputs, Scheduler: sched.NewUniformRandom(),
			Seed: seed, CheapCollect: true, Traced: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Objects(run.Trace, "RC"); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, run.Trace)
		}
	}
}

func TestLabels(t *testing.T) {
	file := register.NewFile()
	if got := NewBinary(file, -1).Label(); got != "R-1" {
		t.Errorf("label %q", got)
	}
	if got := NewPool(file, 4, 3).Label(); got != "R3" {
		t.Errorf("label %q", got)
	}
	if got := NewCollect(file, 2, 0).Label(); got != "RC0" {
		t.Errorf("label %q", got)
	}
}

func TestSchemeAccessor(t *testing.T) {
	file := register.NewFile()
	r := NewPool(file, 10, 1)
	if r.Scheme().M() != 10 {
		t.Errorf("Scheme().M() = %d", r.Scheme().M())
	}
}
