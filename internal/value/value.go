// Package value defines the value domain of the shared-memory model.
//
// The consensus objects in this module operate over an input alphabet
// Σ = {0, 1, ..., m-1} plus a distinguished null value ⊥ (None) used as the
// initial content of registers. Registers hold a single Value; protocols
// that need to store (round, preference) pairs in one register — the
// Chor–Israeli–Li-style fallback — pack the pair into a Value with
// PackPair/UnpackPair.
package value

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Value is the content of a register or the input/output of a consensus
// object.
type Value int64

// None is the null value ⊥: the initial content of every register. It is
// never a legal consensus input.
const None Value = math.MinInt64

// IsNone reports whether v is ⊥.
func (v Value) IsNone() bool { return v == None }

// String renders ⊥ distinctly for traces and test failures.
func (v Value) String() string {
	if v.IsNone() {
		return "⊥"
	}
	return fmt.Sprintf("%d", int64(v))
}

// Decision is the annotated output of a deciding object: a decision bit plus
// a value (§3 of the paper). Decided means "terminate immediately with V";
// otherwise V is carried as the input to the next object in a composition.
type Decision struct {
	Decided bool
	V       Value
}

// Decide constructs a (1, v) output.
func Decide(v Value) Decision { return Decision{Decided: true, V: v} }

// Continue constructs a (0, v) output.
func Continue(v Value) Decision { return Decision{V: v} }

// String renders the decision in the paper's (d, v) notation.
func (d Decision) String() string {
	bit := 0
	if d.Decided {
		bit = 1
	}
	return fmt.Sprintf("(%d, %s)", bit, d.V)
}

const (
	pairValueBits = 31
	pairValueMask = (1 << pairValueBits) - 1
	// MaxPairRound is the largest round storable by PackPair.
	MaxPairRound = (1 << 31) - 1
	// MaxPairValue is the largest preference storable by PackPair.
	MaxPairValue = Value(pairValueMask - 1)
)

// PackPair encodes a (round, preference) pair into a single Value so that
// round-stamped protocols can use one physical register per logical cell.
// round must be in [0, MaxPairRound]; v must be None or in [0, MaxPairValue].
func PackPair(round int, v Value) Value {
	if round < 0 || round > MaxPairRound {
		panic(fmt.Sprintf("value: round %d out of range", round))
	}
	var enc int64
	if v.IsNone() {
		enc = pairValueMask
	} else {
		if v < 0 || v > MaxPairValue {
			panic(fmt.Sprintf("value: preference %d out of range", int64(v)))
		}
		enc = int64(v)
	}
	return Value(int64(round)<<pairValueBits | enc)
}

// UnpackPair decodes a Value produced by PackPair.
func UnpackPair(p Value) (round int, v Value) {
	if p.IsNone() {
		panic("value: UnpackPair of ⊥")
	}
	round = int(int64(p) >> pairValueBits)
	enc := int64(p) & pairValueMask
	if enc == pairValueMask {
		return round, None
	}
	return round, Value(enc)
}

// AtomicValue is an atomic register cell holding a Value, used by the live
// (hardware-concurrency) backend. Note that the zero AtomicValue holds
// Value(0), not ⊥ — initialize explicitly.
type AtomicValue struct {
	v atomic.Int64
}

// Load atomically reads the cell.
func (a *AtomicValue) Load() Value { return Value(a.v.Load()) }

// Store atomically writes the cell.
func (a *AtomicValue) Store(x Value) { a.v.Store(int64(x)) }
