package value

import (
	"testing"
	"testing/quick"
)

func TestNone(t *testing.T) {
	if !None.IsNone() {
		t.Fatal("None.IsNone() = false")
	}
	if Value(0).IsNone() || Value(-1).IsNone() {
		t.Fatal("ordinary values report IsNone")
	}
	if None.String() != "⊥" {
		t.Fatalf("None.String() = %q", None.String())
	}
	if Value(7).String() != "7" {
		t.Fatalf("Value(7).String() = %q", Value(7).String())
	}
}

func TestDecisionConstructors(t *testing.T) {
	d := Decide(3)
	if !d.Decided || d.V != 3 {
		t.Fatalf("Decide(3) = %+v", d)
	}
	c := Continue(5)
	if c.Decided || c.V != 5 {
		t.Fatalf("Continue(5) = %+v", c)
	}
	if got := d.String(); got != "(1, 3)" {
		t.Fatalf("Decide(3).String() = %q", got)
	}
	if got := c.String(); got != "(0, 5)" {
		t.Fatalf("Continue(5).String() = %q", got)
	}
}

func TestPackPairRoundTrip(t *testing.T) {
	cases := []struct {
		round int
		v     Value
	}{
		{0, 0}, {0, None}, {1, 5}, {1000, MaxPairValue},
		{MaxPairRound, 0}, {MaxPairRound, None},
	}
	for _, tt := range cases {
		p := PackPair(tt.round, tt.v)
		if p.IsNone() {
			t.Fatalf("PackPair(%d,%s) collided with ⊥", tt.round, tt.v)
		}
		r, v := UnpackPair(p)
		if r != tt.round || v != tt.v {
			t.Fatalf("round-trip (%d,%s) -> (%d,%s)", tt.round, tt.v, r, v)
		}
	}
}

func TestPackPairProperty(t *testing.T) {
	f := func(roundRaw uint32, vRaw uint32, none bool) bool {
		round := int(roundRaw % (MaxPairRound + 1))
		v := Value(vRaw) % (MaxPairValue + 1)
		if none {
			v = None
		}
		r2, v2 := UnpackPair(PackPair(round, v))
		return r2 == round && v2 == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackPairOrderedByRound(t *testing.T) {
	// Round-race protocols rely on higher rounds packing to larger Values
	// for any preferences, so a max over packed values finds the leader.
	f := func(r1Raw, r2Raw uint16, v1Raw, v2Raw uint32) bool {
		r1, r2 := int(r1Raw), int(r2Raw)
		v1 := Value(v1Raw) % (MaxPairValue + 1)
		v2 := Value(v2Raw) % (MaxPairValue + 1)
		if r1 == r2 {
			return true
		}
		p1, p2 := PackPair(r1, v1), PackPair(r2, v2)
		return (r1 < r2) == (p1 < p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackPairPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative round": func() { PackPair(-1, 0) },
		"huge round":     func() { PackPair(MaxPairRound+1, 0) },
		"negative value": func() { PackPair(0, -5) },
		"huge value":     func() { PackPair(0, MaxPairValue+1) },
		"unpack none":    func() { UnpackPair(None) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAtomicValue(t *testing.T) {
	var a AtomicValue
	if got := a.Load(); got != 0 {
		t.Fatalf("zero AtomicValue holds %s, want 0 (documented)", got)
	}
	a.Store(None)
	if !a.Load().IsNone() {
		t.Fatal("⊥ did not round-trip")
	}
	a.Store(42)
	if got := a.Load(); got != 42 {
		t.Fatalf("Load = %s", got)
	}
}
