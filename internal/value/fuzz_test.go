package value

import "testing"

// FuzzPackPair checks the pair encoding against arbitrary inputs: every
// in-range (round, value) round-trips, never collides with ⊥, and preserves
// round ordering.
func FuzzPackPair(f *testing.F) {
	f.Add(0, int64(0))
	f.Add(5, int64(-1))
	f.Add(1<<20, int64(12345))
	f.Fuzz(func(t *testing.T, roundRaw int, vRaw int64) {
		round := roundRaw
		if round < 0 {
			round = -round
		}
		round %= MaxPairRound + 1
		v := Value(vRaw)
		if v < 0 || v > MaxPairValue {
			v = None
		}
		p := PackPair(round, v)
		if p.IsNone() {
			t.Fatal("packed pair equals ⊥")
		}
		r2, v2 := UnpackPair(p)
		if r2 != round || v2 != v {
			t.Fatalf("(%d,%s) -> (%d,%s)", round, v, r2, v2)
		}
	})
}
