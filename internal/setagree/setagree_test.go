package setagree

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

func runSetAgree(t *testing.T, n, m, k int, inputs []value.Value, s sched.Scheduler, seed uint64, crash map[int]int) *sim.Result {
	t.Helper()
	file := register.NewFile()
	p, err := New(file, n, m, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		N: n, File: file, Scheduler: s, Seed: seed, CrashAfter: crash,
	}, func(e *sim.Env) value.Value { return p.Run(e, inputs[e.PID()]) })
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func distinct(outs []value.Value) int {
	seen := make(map[value.Value]bool)
	for _, v := range outs {
		seen[v] = true
	}
	return len(seen)
}

func TestAtMostKValues(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewUniformRandom() },
			func() sched.Scheduler { return sched.NewFirstMoverAttack() },
			func() sched.Scheduler { return sched.NewRoundRobin() },
		} {
			for seed := uint64(0); seed < 10; seed++ {
				n, m := 6, 6
				inputs := make([]value.Value, n)
				for i := range inputs {
					inputs[i] = value.Value(i) // all distinct
				}
				res := runSetAgree(t, n, m, k, inputs, mk(), seed, nil)
				outs := res.HaltedOutputs()
				if len(outs) != n {
					t.Fatalf("k=%d seed=%d: %d/%d processes decided", k, seed, len(outs), n)
				}
				if got := distinct(outs); got > k {
					t.Fatalf("k=%d seed=%d: %d distinct outputs %v", k, seed, got, outs)
				}
				if err := check.Validity(inputs, outs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestKEqualsOneIsConsensus(t *testing.T) {
	n, m := 5, 3
	inputs := []value.Value{0, 1, 2, 1, 0}
	for seed := uint64(0); seed < 15; seed++ {
		res := runSetAgree(t, n, m, 1, inputs, sched.NewUniformRandom(), seed, nil)
		if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGroupIsolationUnderCrashes(t *testing.T) {
	// Crash every member of group 0 (pids ≡ 0 mod 2): group 1 must be
	// completely unaffected.
	n, m, k := 6, 4, 2
	inputs := []value.Value{0, 1, 2, 3, 0, 1}
	crash := map[int]int{0: 2, 2: 3, 4: 4}
	res := runSetAgree(t, n, m, k, inputs, sched.NewUniformRandom(), 7, crash)
	var group1 []value.Value
	for pid := 1; pid < n; pid += 2 {
		if !res.Halted[pid] {
			t.Fatalf("pid %d (group 1) did not decide", pid)
		}
		group1 = append(group1, res.Outputs[pid])
	}
	if err := check.Agreement(group1); err != nil {
		t.Fatal(err)
	}
	// Group 1's decision must come from group 1's inputs only.
	if err := check.Validity([]value.Value{1, 3, 1}, group1); err != nil {
		t.Fatal(err)
	}
}

func TestWithinGroupAgreement(t *testing.T) {
	n, m, k := 7, 5, 3
	inputs := make([]value.Value, n)
	for i := range inputs {
		inputs[i] = value.Value(i % m)
	}
	res := runSetAgree(t, n, m, k, inputs, sched.NewFirstMoverAttack(), 3, nil)
	for g := 0; g < k; g++ {
		var outs []value.Value
		for pid := g; pid < n; pid += k {
			outs = append(outs, res.Outputs[pid])
		}
		if err := check.Agreement(outs); err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
}

func TestValidation(t *testing.T) {
	file := register.NewFile()
	cases := []struct{ n, m, k int }{
		{0, 2, 1}, {2, 1, 1}, {2, 2, 0}, {2, 2, 3},
	}
	for i, tt := range cases {
		if _, err := New(file, tt.n, tt.m, tt.k); err == nil {
			t.Errorf("case %d (%+v): expected error", i, tt)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	// 7 processes in 3 groups: sizes 3, 2, 2.
	want := []int{3, 2, 2}
	for g, w := range want {
		if got := groupSize(7, 3, g); got != w {
			t.Errorf("groupSize(7,3,%d) = %d, want %d", g, got, w)
		}
	}
}

func TestAtMostKValuesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n, m, k := 9, 9, 3
	for seed := uint64(0); seed < 400; seed++ {
		inputs := make([]value.Value, n)
		for i := range inputs {
			inputs[i] = value.Value(i)
		}
		res := runSetAgree(t, n, m, k, inputs, sched.NewUniformRandom(), seed, nil)
		if got := distinct(res.HaltedOutputs()); got > k {
			t.Fatalf("seed %d: %d distinct outputs", seed, got)
		}
	}
}
