// Package setagree provides k-set agreement on top of the consensus stack:
// every process outputs some process's input and at most k distinct values
// are output in any execution.
//
// The paper's discussion points at randomized set agreement via multi-sided
// shared coins (its reference [23]) as the sophisticated route; this package
// implements the classic *partition* construction instead: split the n
// processes into k static groups and run one full consensus instance per
// group. Each group's instance is the paper's own conciliator/ratifier
// chain, so the cost per process is the paper's consensus cost at group
// size, and at most one value survives per group — hence at most k overall.
// The groups never communicate, which also gives a clean fault-isolation
// property: crashes in one group cannot affect another.
package setagree

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Protocol is a one-shot k-set agreement object for n processes over values
// 0..m-1.
type Protocol struct {
	n, m, k int
	groups  []*core.Protocol // one consensus instance per group
}

// New allocates the protocol's registers in file. k must be in [1, n];
// k = 1 is consensus, k = n is trivial (everyone keeps its input — but the
// construction still funnels through single-process groups).
func New(file *register.File, n, m, k int) (*Protocol, error) {
	if n <= 0 {
		return nil, fmt.Errorf("setagree: n=%d must be positive", n)
	}
	if m < 2 {
		return nil, fmt.Errorf("setagree: m=%d must be at least 2", m)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("setagree: k=%d must be in [1, %d]", k, n)
	}
	p := &Protocol{n: n, m: m, k: k}
	for g := 0; g < k; g++ {
		size := groupSize(n, k, g)
		base := (g + 1) * 1000
		proto, err := core.NewProtocol(core.Options{
			N:    size,
			File: file,
			NewRatifier: func(f *register.File, i int) core.Object {
				if m == 2 {
					return ratifier.NewBinary(f, base+i)
				}
				return ratifier.NewPool(f, m, base+i)
			},
			NewConciliator: func(f *register.File, i int) core.Object {
				// The conciliator's write probabilities are tuned to the
				// number of *participants*, which is the group size.
				return conciliator.NewImpatient(f, size, base+i)
			},
			FastPath: true,
			Stages:   64,
			Fallback: fallback.New(file, size, base),
		})
		if err != nil {
			return nil, fmt.Errorf("setagree: group %d: %w", g, err)
		}
		p.groups = append(p.groups, proto)
	}
	return p, nil
}

// groupSize returns the size of group g under the pid-mod-k partition.
func groupSize(n, k, g int) int {
	size := n / k
	if g < n%k {
		size++
	}
	return size
}

// Group returns the group index of pid.
func (p *Protocol) Group(pid int) int { return pid % p.k }

// Run executes the calling process's side: it joins its group's consensus
// with its own input. The inner protocols always decide (they end in a CIL
// fallback).
//
// The group-local process id is pid/k: the CIL fallback and the collect
// ratifier index registers by process id, so ids must be dense in
// [0, groupSize).
func (p *Protocol) Run(e core.Env, v value.Value) value.Value {
	g := p.Group(e.PID())
	out, ok := p.groups[g].Run(groupEnv{
		Env: e,
		pid: e.PID() / p.k,
		n:   groupSize(p.n, p.k, g),
	}, v)
	if !ok {
		panic("setagree: group consensus exhausted its chain despite fallback")
	}
	return out
}

// K returns the agreement bound.
func (p *Protocol) K() int { return p.k }

// groupEnv renumbers the process id into the group-local dense range and
// reports the group size as the process count. All other operations pass
// through.
type groupEnv struct {
	core.Env

	pid, n int
}

// PID returns the group-local process id.
func (g groupEnv) PID() int { return g.pid }

// N returns the group size.
func (g groupEnv) N() int { return g.n }
