package quorum

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/modular-consensus/modcon/internal/value"
)

func TestBinomialSmallValues(t *testing.T) {
	tests := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 2, 10},
		{10, 5, 252}, {20, 10, 184756}, {3, 5, 0}, {5, -1, 0},
		{60, 30, 118264581564861424},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at (%d,%d)", n, k)
			}
		}
	}
}

func TestMinPoolSize(t *testing.T) {
	tests := []struct {
		m, want int
	}{
		{1, 0},     // C(0,0)=1
		{2, 2},     // C(2,1)=2
		{3, 3},     // C(3,1)=3
		{4, 4},     // C(4,2)=6 ≥ 4
		{6, 4},     // exactly 6
		{7, 5},     // C(5,2)=10
		{100, 9},   // C(9,4)=126
		{1000, 13}, // C(13,6)=1716 ≥ 1000; C(12,6)=924 < 1000
	}
	for _, tt := range tests {
		if got := MinPoolSize(tt.m); got != tt.want {
			t.Errorf("MinPoolSize(%d) = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestMinPoolSizeIsLgMPlusLogLog(t *testing.T) {
	// Theorem 10: pool size is lg m + Θ(log log m). Verify k - lg m grows
	// slower than, say, 2 log₂ log₂ m + 4 across a wide range.
	for _, m := range []int{2, 8, 64, 1024, 1 << 16, 1 << 24} {
		k := MinPoolSize(m)
		lg := math.Log2(float64(m))
		slack := float64(k) - lg
		bound := 2*math.Log2(math.Log2(float64(m))+1) + 4
		if slack < 0 || slack > bound {
			t.Errorf("m=%d: k=%d, lg m=%.1f, slack %.1f outside [0, %.1f]", m, k, lg, slack, bound)
		}
	}
}

func TestVerifyAllSchemes(t *testing.T) {
	for _, m := range []int{2, 3, 4, 5, 6, 7, 8, 16, 33, 100} {
		schemes := []Scheme{NewPool(m), NewBitVector(m)}
		if m == 2 {
			schemes = append(schemes, Binary{})
		}
		for _, s := range schemes {
			if err := Verify(s); err != nil {
				t.Errorf("m=%d: %v", m, err)
			}
		}
	}
}

func TestPoolQuorumsAreDistinctSubsets(t *testing.T) {
	p := NewPool(20) // k=6, C(6,3)=20
	seen := make(map[string]bool)
	for v := 0; v < p.M(); v++ {
		w := p.WriteQuorum(value.Value(v))
		if len(w) != p.PoolSize()/2 {
			t.Fatalf("value %d: |W| = %d, want %d", v, len(w), p.PoolSize()/2)
		}
		key := ""
		for _, i := range w {
			key += string(rune('a' + i))
		}
		if seen[key] {
			t.Fatalf("duplicate write quorum for value %d: %v", v, w)
		}
		seen[key] = true
	}
}

func TestPoolReadIsComplement(t *testing.T) {
	p := NewPool(35) // k=7, t=3, C(7,3)=35
	for v := 0; v < p.M(); v++ {
		w := p.WriteQuorum(value.Value(v))
		r := p.ReadQuorum(value.Value(v))
		if len(w)+len(r) != p.PoolSize() {
			t.Fatalf("value %d: |W|+|R| = %d+%d != k=%d", v, len(w), len(r), p.PoolSize())
		}
		all := make(map[int]bool)
		for _, i := range append(append([]int{}, w...), r...) {
			if all[i] {
				t.Fatalf("value %d: W and R overlap at %d", v, i)
			}
			all[i] = true
		}
	}
}

func TestPoolColexOrderProperty(t *testing.T) {
	// Unranking must be injective and rank-monotone in colex order: the
	// reversed quorum (largest element first) must increase lexicographically
	// with v.
	p := NewPool(70) // k=8, t=4, C(8,4)=70
	prev := []int(nil)
	for v := 0; v < p.M(); v++ {
		w := p.WriteQuorum(value.Value(v))
		if prev != nil && !colexLess(prev, w) {
			t.Fatalf("colex order violated between %v and %v", prev, w)
		}
		prev = w
	}
}

func colexLess(a, b []int) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestBitVectorShape(t *testing.T) {
	s := NewBitVector(5) // 3 bits
	if s.PoolSize() != 6 {
		t.Fatalf("PoolSize = %d, want 6", s.PoolSize())
	}
	// Value 5 = 101b: bits (1,0,1) -> registers {2*0+1, 2*1+0, 2*2+1}.
	w := s.WriteQuorum(4) // 100b -> {0, 2, 5}
	want := []int{0, 2, 5}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("WriteQuorum(4) = %v, want %v", w, want)
		}
	}
	r := s.ReadQuorum(4) // complement positions {1, 3, 4}
	wantR := []int{1, 3, 4}
	for i := range wantR {
		if r[i] != wantR[i] {
			t.Fatalf("ReadQuorum(4) = %v, want %v", r, wantR)
		}
	}
}

func TestBitVectorSpaceMatchesPaper(t *testing.T) {
	// Exactly 2⌈lg m⌉ + 1 registers including the proposal.
	for _, m := range []int{2, 3, 4, 5, 8, 9, 1024, 1025} {
		s := NewBitVector(m)
		lg := int(math.Ceil(math.Log2(float64(m))))
		if s.PoolSize() != 2*lg {
			t.Errorf("m=%d: pool %d, want 2⌈lg m⌉ = %d", m, s.PoolSize(), 2*lg)
		}
	}
}

func TestBollobasTightness(t *testing.T) {
	// Theorem 9: Σ 1/C(a+b, a) ≤ 1 for any valid scheme; the full pool
	// scheme meets it with equality.
	for _, m := range []int{2, 6, 20, 70} {
		for _, s := range []Scheme{NewPool(m), NewBitVector(m)} {
			if sum := BollobasSum(s); sum > 1+1e-9 {
				t.Errorf("%s m=%d: Bollobás sum %v > 1", s.Name(), m, sum)
			}
		}
	}
	// Full pool: m = C(k, k/2) exactly.
	for _, k := range []int{2, 4, 6, 8} {
		m := int(Binomial(k, k/2))
		if sum := BollobasSum(NewPool(m)); math.Abs(sum-1) > 1e-9 {
			t.Errorf("full pool k=%d: Bollobás sum %v, want 1 (optimal)", k, sum)
		}
	}
}

func TestBinaryScheme(t *testing.T) {
	b := Binary{}
	if b.M() != 2 || b.PoolSize() != 2 {
		t.Fatal("binary scheme shape wrong")
	}
	if w := b.WriteQuorum(0); len(w) != 1 || w[0] != 0 {
		t.Fatalf("W_0 = %v", w)
	}
	if r := b.ReadQuorum(0); len(r) != 1 || r[0] != 1 {
		t.Fatalf("R_0 = %v", r)
	}
	if err := Verify(b); err != nil {
		t.Fatal(err)
	}
}

func TestSchemePanicsOnBadValues(t *testing.T) {
	schemes := []Scheme{Binary{}, NewPool(4), NewBitVector(4)}
	bad := []value.Value{-1, 4, value.None}
	for _, s := range schemes {
		for _, v := range bad {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s.WriteQuorum(%s) did not panic", s.Name(), v)
					}
				}()
				s.WriteQuorum(v)
			}()
		}
	}
}

func TestVerifyPropertyRandomM(t *testing.T) {
	f := func(mRaw uint16) bool {
		m := int(mRaw%500) + 2
		return Verify(NewPool(m)) == nil && Verify(NewBitVector(m)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceRow(t *testing.T) {
	row := Space(16)
	if row.BitVecRegisters != row.PaperBitVecExact {
		t.Errorf("bitvec registers %d != paper formula %d", row.BitVecRegisters, row.PaperBitVecExact)
	}
	if row.PoolRegisters != row.PaperPoolBound {
		t.Errorf("pool registers %d != MinPoolSize+1 = %d", row.PoolRegisters, row.PaperPoolBound)
	}
	if row.PoolRegisters > row.BitVecRegisters {
		t.Errorf("optimal pool (%d regs) larger than bit-vector (%d regs)", row.PoolRegisters, row.BitVecRegisters)
	}
}

func TestBitVectorRejectsM1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=1")
		}
	}()
	NewBitVector(1)
}

func TestVerifySample(t *testing.T) {
	// Sampled verification agrees with full verification on valid schemes
	// and still catches the diagonal of a broken one.
	for _, m := range []int{2, 50, 5000} {
		if err := VerifySample(NewPool(m), 500, 1); err != nil {
			t.Errorf("pool m=%d: %v", m, err)
		}
		if err := VerifySample(NewBitVector(m), 500, 1); err != nil {
			t.Errorf("bitvector m=%d: %v", m, err)
		}
	}
	if err := VerifySample(brokenScheme{}, 100, 1); err == nil {
		t.Error("sampled verification missed a broken scheme")
	}
	if err := Verify(brokenScheme{}); err == nil {
		t.Error("full verification missed a broken scheme")
	}
}

// brokenScheme violates the diagonal condition: W_v ∩ R_v ≠ ∅.
type brokenScheme struct{}

func (brokenScheme) M() int                          { return 2 }
func (brokenScheme) PoolSize() int                   { return 2 }
func (brokenScheme) WriteQuorum(v value.Value) []int { return []int{0} }
func (brokenScheme) ReadQuorum(v value.Value) []int  { return []int{0} }
func (brokenScheme) Name() string                    { return "broken" }
