package quorum

import "testing"

// FuzzSchemes verifies the Theorem 8 condition for arbitrary m on both
// m-valued schemes (full verification for small m, sampled beyond).
func FuzzSchemes(f *testing.F) {
	f.Add(uint16(2))
	f.Add(uint16(7))
	f.Add(uint16(1024))
	f.Fuzz(func(t *testing.T, mRaw uint16) {
		m := int(mRaw)%5000 + 2
		for _, s := range []Scheme{NewPool(m), NewBitVector(m)} {
			var err error
			if m <= 256 {
				err = Verify(s)
			} else {
				err = VerifySample(s, 2000, uint64(m))
			}
			if err != nil {
				t.Fatal(err)
			}
			if sum := BollobasSum(s); sum > 1+1e-9 {
				t.Fatalf("%s: Bollobás sum %v > 1", s.Name(), sum)
			}
		}
	})
}
