// Package quorum implements the write/read quorum systems that drive the
// paper's deterministic ratifier (§6).
//
// A scheme assigns every value v a write quorum W_v and read quorum R_v over
// a pool of binary registers such that
//
//	W_v ∩ R_u = ∅  if and only if  v = u     (condition of Theorem 8)
//
// so a process that has announced v (written W_v) is detected by any process
// reading R_u for u ≠ v, while a solo-value execution sees a clean read
// quorum and may decide.
//
// Three schemes from the paper are provided:
//
//   - Binary: 2 registers, W_v = {r_v}, R_v = {r_{¬v}} (§6.2 choice 1).
//   - Pool: the Bollobás-optimal scheme (§6.2 choice 2): a pool of k
//     registers with W_v a distinct ⌊k/2⌋-subset and R_v its complement.
//     Theorem 9 (Bollobás) shows m = C(k, ⌊k/2⌋) is the maximum number of
//     values any scheme with |W_v| + |R_v| = k can support, so the pool
//     size is lg m + Θ(log log m).
//   - BitVector: the simpler encoding (§6.2 choice 3): registers r[i][j]
//     for i < ⌈lg m⌉, j ∈ {0,1}; W_v = {r[i][v_i]}, R_v its complement.
//     2⌈lg m⌉ registers, within a constant of optimal.
package quorum

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// Scheme maps values to write and read quorums over a register pool.
type Scheme interface {
	// M returns the number of supported values (inputs are 0..M-1).
	M() int
	// PoolSize returns the number of binary registers the scheme needs.
	PoolSize() int
	// WriteQuorum returns the pool indices of W_v, ascending.
	WriteQuorum(v value.Value) []int
	// ReadQuorum returns the pool indices of R_v, ascending.
	ReadQuorum(v value.Value) []int
	// Name identifies the scheme in reports.
	Name() string
}

// Binomial returns C(n, k). It panics if the result would overflow uint64,
// which cannot happen for the pool sizes this module uses (n ≤ 64 with
// k ≤ n/2 stays within range for n ≤ 61; pools that large would support
// ~10¹⁷ values).
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		hi, lo := bits.Mul64(c, uint64(n-i))
		if hi != 0 {
			panic(fmt.Sprintf("quorum: Binomial(%d,%d) overflows uint64", n, k))
		}
		c = lo / uint64(i+1)
	}
	return c
}

// MinPoolSize returns the smallest k with C(k, ⌊k/2⌋) ≥ m: the pool size of
// the optimal scheme for m values. It is lg m + Θ(log log m).
func MinPoolSize(m int) int {
	if m < 1 {
		panic(fmt.Sprintf("quorum: m=%d must be positive", m))
	}
	for k := 0; ; k++ {
		if Binomial(k, k/2) >= uint64(m) {
			return k
		}
	}
}

// checkValue validates a scheme input.
func checkValue(v value.Value, m int, name string) int {
	if v.IsNone() || v < 0 || int64(v) >= int64(m) {
		panic(fmt.Sprintf("quorum: value %s out of range [0,%d) for scheme %s", v, m, name))
	}
	return int(v)
}

// Binary is the 2-value scheme: W_0={0}, R_0={1}, W_1={1}, R_1={0}.
type Binary struct{}

// M implements Scheme.
func (Binary) M() int { return 2 }

// PoolSize implements Scheme.
func (Binary) PoolSize() int { return 2 }

// WriteQuorum implements Scheme.
func (b Binary) WriteQuorum(v value.Value) []int { return []int{checkValue(v, 2, b.Name())} }

// ReadQuorum implements Scheme.
func (b Binary) ReadQuorum(v value.Value) []int { return []int{1 - checkValue(v, 2, b.Name())} }

// Name implements Scheme.
func (Binary) Name() string { return "binary" }

// Pool is the Bollobás-optimal scheme: value v's write quorum is the v-th
// t-subset (t = ⌊k/2⌋) of the k-register pool in colexicographic order, and
// its read quorum is the complement.
type Pool struct {
	k, t, m int
}

// NewPool returns the optimal scheme for m ≥ 1 values, using the smallest
// pool k with C(k, ⌊k/2⌋) ≥ m.
func NewPool(m int) *Pool {
	k := MinPoolSize(m)
	return &Pool{k: k, t: k / 2, m: m}
}

// M implements Scheme.
func (p *Pool) M() int { return p.m }

// PoolSize implements Scheme.
func (p *Pool) PoolSize() int { return p.k }

// WriteQuorum implements Scheme. It unranks v in the combinatorial number
// system: the colex rank of {c_1 < c_2 < … < c_t} is Σ C(c_i, i).
func (p *Pool) WriteQuorum(v value.Value) []int {
	rank := uint64(checkValue(v, p.m, p.Name()))
	out := make([]int, p.t)
	for i := p.t; i >= 1; i-- {
		// Largest c with C(c, i) ≤ rank.
		c := i - 1 // C(i-1, i) = 0 ≤ rank always
		for Binomial(c+1, i) <= rank {
			c++
		}
		out[i-1] = c
		rank -= Binomial(c, i)
	}
	return out
}

// ReadQuorum implements Scheme: the complement of the write quorum.
func (p *Pool) ReadQuorum(v value.Value) []int {
	w := p.WriteQuorum(v)
	out := make([]int, 0, p.k-p.t)
	wi := 0
	for r := 0; r < p.k; r++ {
		if wi < len(w) && w[wi] == r {
			wi++
			continue
		}
		out = append(out, r)
	}
	return out
}

// Name implements Scheme.
func (p *Pool) Name() string { return fmt.Sprintf("pool(k=%d)", p.k) }

// BitVector is the bit-encoding scheme: register index 2i+j stands for
// "bit i of the announced value is j".
type BitVector struct {
	bitsN, m int
}

// NewBitVector returns the bit-vector scheme for m ≥ 2 values.
func NewBitVector(m int) *BitVector {
	if m < 2 {
		panic(fmt.Sprintf("quorum: BitVector needs m ≥ 2, got %d", m))
	}
	b := bits.Len(uint(m - 1)) // ⌈lg m⌉
	return &BitVector{bitsN: b, m: m}
}

// M implements Scheme.
func (s *BitVector) M() int { return s.m }

// PoolSize implements Scheme.
func (s *BitVector) PoolSize() int { return 2 * s.bitsN }

// WriteQuorum implements Scheme.
func (s *BitVector) WriteQuorum(v value.Value) []int {
	x := checkValue(v, s.m, s.Name())
	out := make([]int, s.bitsN)
	for i := 0; i < s.bitsN; i++ {
		out[i] = 2*i + (x>>i)&1
	}
	return out
}

// ReadQuorum implements Scheme.
func (s *BitVector) ReadQuorum(v value.Value) []int {
	x := checkValue(v, s.m, s.Name())
	out := make([]int, s.bitsN)
	for i := 0; i < s.bitsN; i++ {
		out[i] = 2*i + 1 - (x>>i)&1
	}
	return out
}

// Name implements Scheme.
func (s *BitVector) Name() string { return fmt.Sprintf("bitvector(b=%d)", s.bitsN) }

// Verify checks the Theorem 8 condition W_v ∩ R_u = ∅ ⇔ v = u for every
// pair of values, plus basic sanity (indices in range, ascending, no
// duplicates). Cost O(m²·q); call it in tests and at tool startup, not in
// protocols. For very large m use VerifySample.
func Verify(s Scheme) error {
	m := s.M()
	writeBits, err := checkAndIndex(s)
	if err != nil {
		return err
	}
	for v := 0; v < m; v++ {
		for u := 0; u < m; u++ {
			if err := checkPair(s, writeBits[v], v, u); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifySample checks every diagonal pair (v, v) plus `pairs` random
// off-diagonal pairs — the only tractable verification for schemes with
// hundreds of thousands of values. A deterministic seed makes reported
// results reproducible.
func VerifySample(s Scheme, pairs int, seed uint64) error {
	m := s.M()
	writeBits, err := checkAndIndex(s)
	if err != nil {
		return err
	}
	for v := 0; v < m; v++ {
		if err := checkPair(s, writeBits[v], v, v); err != nil {
			return err
		}
	}
	src := xrand.New(seed)
	for i := 0; i < pairs; i++ {
		v, u := src.Intn(m), src.Intn(m)
		if err := checkPair(s, writeBits[v], v, u); err != nil {
			return err
		}
	}
	return nil
}

// checkAndIndex validates quorum shapes and returns per-value write-quorum
// membership bitmaps.
func checkAndIndex(s Scheme) ([][]bool, error) {
	m := s.M()
	writeBits := make([][]bool, m)
	for v := 0; v < m; v++ {
		w := s.WriteQuorum(value.Value(v))
		r := s.ReadQuorum(value.Value(v))
		for _, q := range [][]int{w, r} {
			prev := -1
			for _, i := range q {
				if i <= prev {
					return nil, fmt.Errorf("quorum %s: value %d has non-ascending quorum %v", s.Name(), v, q)
				}
				if i < 0 || i >= s.PoolSize() {
					return nil, fmt.Errorf("quorum %s: value %d index %d out of pool [0,%d)", s.Name(), v, i, s.PoolSize())
				}
				prev = i
			}
		}
		bits := make([]bool, s.PoolSize())
		for _, i := range w {
			bits[i] = true
		}
		writeBits[v] = bits
	}
	return writeBits, nil
}

// checkPair verifies W_v ∩ R_u = ∅ ⇔ v = u for one pair.
func checkPair(s Scheme, wv []bool, v, u int) error {
	meet := false
	for _, i := range s.ReadQuorum(value.Value(u)) {
		if wv[i] {
			meet = true
			break
		}
	}
	if (v == u) == meet {
		rel := "misses"
		if meet {
			rel = "intersects"
		}
		return fmt.Errorf("quorum %s: W_%d %s R_%d", s.Name(), v, rel, u)
	}
	return nil
}

// BollobasSum evaluates the left-hand side of Theorem 9 (Bollobás's
// inequality) for a scheme: Σ_v 1/C(|W_v|+|R_v|, |W_v|) ≤ 1 must hold for
// any valid cross-intersecting family, with equality exactly for the
// optimal pool scheme.
func BollobasSum(s Scheme) float64 {
	sum := 0.0
	for v := 0; v < s.M(); v++ {
		a := len(s.WriteQuorum(value.Value(v)))
		b := len(s.ReadQuorum(value.Value(v)))
		sum += 1 / float64(Binomial(a+b, a))
	}
	return sum
}

// SpaceTable reports, for a given m, the register counts of each scheme
// including the proposal register, alongside the paper's formulas. Used by
// cmd/quorumgen and experiment E4.
type SpaceRow struct {
	M                int
	PoolRegisters    int // optimal scheme, incl. proposal
	BitVecRegisters  int // bit-vector scheme, incl. proposal
	PaperPoolBound   int // lg m + O(log log m) realized: MinPoolSize(m)+1
	PaperBitVecExact int // 2⌈lg m⌉ + 1
}

// Space computes the SpaceRow for m values.
func Space(m int) SpaceRow {
	bitsN := int(math.Ceil(math.Log2(float64(m))))
	if m == 1 {
		bitsN = 0
	}
	return SpaceRow{
		M:                m,
		PoolRegisters:    NewPool(m).PoolSize() + 1,
		BitVecRegisters:  NewBitVector(max2(m, 2)).PoolSize() + 1,
		PaperPoolBound:   MinPoolSize(m) + 1,
		PaperBitVecExact: 2*bitsN + 1,
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
