package sim

// This file preserves the pre-coroutine step engine — one goroutine per
// process, four channels per process state, a scheduler round-trip per step —
// exactly as it shipped, as a test-only reference implementation. It exists
// for two reasons:
//
//  1. Equivalence: TestEngineMatchesChanEngine runs the same (programs,
//     scheduler, seed) on both engines and diffs the traces event-by-event,
//     proving the coroutine rewrite is observationally indistinguishable.
//  2. Benchmarking: BenchmarkStepLoopChanEngine measures the old per-step
//     cost so the speedup claim in DESIGN.md is regenerated, not asserted.
//
// The code is a verbatim copy of the old sim.go/env.go with types renamed
// chan*; request/response/Config/Result and the trace semantics are shared
// with the production engine.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

type chanProcFailure struct {
	pid   int
	cause any
}

type chanProcState struct {
	reqCh   chan request
	respCh  chan response
	doneCh  chan value.Value
	failCh  chan chanProcFailure
	pending request
	hasOp   bool
	halted  bool
	crashed bool
	output  value.Value
}

// chanProgram is the old engine's program type; test bodies are written
// generically (see envLike in equiv_test.go) and instantiated for both.
type chanProgram func(e *chanEnv) value.Value

// chanRun is the old Run: one goroutine per process, channel handoff.
func chanRun(cfg Config, programs ...chanProgram) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return nil, errors.New("sim: nil register file")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	switch len(programs) {
	case cfg.N:
	case 1:
		one := programs[0]
		programs = make([]chanProgram, cfg.N)
		for i := range programs {
			programs[i] = one
		}
	default:
		return nil, fmt.Errorf("sim: got %d programs for %d processes", len(programs), cfg.N)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}

	rt := &chanEngine{
		cfg:      cfg,
		power:    cfg.Scheduler.MinPower(),
		maxSteps: maxSteps,
		ctxDone:  ctxDone,
		states:   make([]*chanProcState, cfg.N),
		probSrc:  make([]*xrand.Source, cfg.N),
		killCh:   make(chan struct{}),
		result: &Result{
			Outputs: make([]value.Value, cfg.N),
			Halted:  make([]bool, cfg.N),
			Crashed: make([]bool, cfg.N),
			Work:    make([]int, cfg.N),
		},
	}
	for pid := range rt.result.Outputs {
		rt.result.Outputs[pid] = value.None
	}

	root := xrand.New(cfg.Seed)
	cfg.Scheduler.Seed(root.Split(0))
	for pid := 0; pid < cfg.N; pid++ {
		rt.probSrc[pid] = root.Split(uint64(1_000_000 + pid))
		rt.states[pid] = &chanProcState{
			reqCh:  make(chan request, 1),
			respCh: make(chan response, 1),
			doneCh: make(chan value.Value, 1),
			failCh: make(chan chanProcFailure, 1),
		}
	}

	for pid := 0; pid < cfg.N; pid++ {
		env := &chanEnv{
			pid:    pid,
			n:      cfg.N,
			cheap:  cfg.CheapCollect,
			coins:  root.Split(uint64(1 + pid)),
			log:    cfg.Trace,
			st:     rt.states[pid],
			killCh: rt.killCh,
		}
		rt.wg.Add(1)
		go chanRunProcess(rt, pid, programs[pid], env)
	}

	err := rt.loop()
	rt.teardown()
	if rt.failure != nil {
		panic(rt.failure.cause)
	}
	return rt.result, err
}

func chanRunProcess(rt *chanEngine, pid int, prog chanProgram, env *chanEnv) {
	defer rt.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errKilled) {
				return
			}
			select {
			case rt.states[pid].failCh <- chanProcFailure{pid: pid, cause: r}:
			case <-rt.killCh:
			}
		}
	}()
	out := prog(env)
	select {
	case rt.states[pid].doneCh <- out:
	case <-rt.killCh:
	}
}

type chanEngine struct {
	cfg      Config
	power    sched.Power
	maxSteps int
	ctxDone  <-chan struct{}
	states   []*chanProcState
	probSrc  []*xrand.Source
	killCh   chan struct{}
	wg       sync.WaitGroup
	result   *Result
	steps    int
	failure  *chanProcFailure

	runnableBuf []int
}

func (rt *chanEngine) loop() error {
	for pid := range rt.states {
		if !rt.waitNext(pid) {
			return nil
		}
	}
	view := &sched.View{Power: rt.power, N: rt.cfg.N}
	for {
		runnable := rt.collectRunnable()
		if len(runnable) == 0 {
			return nil
		}
		if rt.steps >= rt.maxSteps {
			return fmt.Errorf("%w (limit %d, scheduler %q)", ErrStepLimit, rt.maxSteps, rt.cfg.Scheduler.Name())
		}
		if rt.ctxDone != nil {
			select {
			case <-rt.ctxDone:
				return fmt.Errorf("%w after %d steps: %w", ErrCancelled, rt.steps, context.Cause(rt.cfg.Context))
			default:
			}
		}
		rt.buildView(view, runnable)
		pid := rt.cfg.Scheduler.Next(view)
		if pid < 0 || pid >= rt.cfg.N || !rt.states[pid].hasOp || rt.states[pid].crashed {
			panic(fmt.Sprintf("sim: scheduler %q chose non-runnable pid %d", rt.cfg.Scheduler.Name(), pid))
		}
		rt.execute(pid)
		if rt.failure != nil {
			return nil
		}
	}
}

func (rt *chanEngine) collectRunnable() []int {
	rt.runnableBuf = rt.runnableBuf[:0]
	for pid, st := range rt.states {
		if st.hasOp && !st.crashed && !st.halted {
			rt.runnableBuf = append(rt.runnableBuf, pid)
		}
	}
	return rt.runnableBuf
}

func (rt *chanEngine) execute(pid int) {
	st := rt.states[pid]
	req := st.pending
	st.hasOp = false
	file := rt.cfg.File

	var resp response
	ev := trace.Event{Step: rt.steps, PID: pid, Reg: int(req.reg), Val: req.val}
	switch req.kind {
	case sched.OpRead:
		resp.val = file.Load(req.reg)
		ev.Kind = trace.Read
		ev.Val = resp.val
	case sched.OpWrite:
		file.Store(req.reg, req.val)
		ev.Kind = trace.Write
	case sched.OpProbWrite:
		resp.ok = rt.probSrc[pid].Bernoulli(req.num, req.den)
		if resp.ok {
			file.Store(req.reg, req.val)
		}
		ev.Kind = trace.ProbWrite
		ev.Succeeded = resp.ok
		ev.ProbNum, ev.ProbDen = req.num, req.den
	case sched.OpCollect:
		resp.vals = file.Snapshot(req.arr)
		ev.Kind = trace.Collect
		ev.Reg = int(req.arr.Base)
	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", req.kind))
	}
	rt.cfg.Trace.Append(ev)
	rt.result.Work[pid]++
	rt.result.TotalWork++
	rt.steps++

	if limit, ok := rt.cfg.CrashAfter[pid]; ok && rt.result.Work[pid] >= limit {
		st.crashed = true
		rt.result.Crashed[pid] = true
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Crash})
		return
	}

	st.respCh <- resp
	rt.waitNext(pid)
}

func (rt *chanEngine) waitNext(pid int) bool {
	st := rt.states[pid]
	select {
	case req := <-st.reqCh:
		st.pending = req
		st.hasOp = true
		return true
	case out := <-st.doneCh:
		st.halted = true
		st.output = out
		rt.result.Halted[pid] = true
		rt.result.Outputs[pid] = out
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Halt, Val: out})
		return true
	case f := <-st.failCh:
		rt.failure = &f
		return false
	}
}

func (rt *chanEngine) buildView(view *sched.View, run []int) {
	view.Step = rt.steps
	view.Runnable = run
	if view.Pending == nil {
		view.Pending = make([]sched.Op, rt.cfg.N)
	}
	for pid := range view.Pending {
		view.Pending[pid] = sched.Op{}
	}
	for _, pid := range run {
		req := rt.states[pid].pending
		op := sched.Op{Valid: true, Reg: -1, Val: value.None}
		switch rt.power {
		case sched.Oblivious:
		case sched.ValueOblivious:
			op.Kind = req.kind
			op.Reg = req.reg
			if req.kind == sched.OpCollect {
				op.Reg = req.arr.Base
			}
		case sched.LocationOblivious:
			op.Kind = req.kind
			if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
				op.Val = req.val
			}
			op.ProbNum, op.ProbDen = req.num, req.den
		case sched.Adaptive:
			op.Kind = req.kind
			op.Reg = req.reg
			if req.kind == sched.OpCollect {
				op.Reg = req.arr.Base
			}
			if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
				op.Val = req.val
			}
			op.ProbNum, op.ProbDen = req.num, req.den
		default:
			panic(fmt.Sprintf("sim: unknown power %v", rt.power))
		}
		view.Pending[pid] = op
	}
	switch rt.power {
	case sched.LocationOblivious, sched.Adaptive:
		view.Memory = rt.cfg.File.Contents()
	default:
		view.Memory = nil
	}
}

func (rt *chanEngine) teardown() {
	close(rt.killCh)
	rt.wg.Wait()
}

// chanEnv is the old process-side Env: publish on a channel, block on the
// response channel.
type chanEnv struct {
	pid    int
	n      int
	cheap  bool
	coins  *xrand.Source
	log    *trace.Log
	st     *chanProcState
	killCh chan struct{}
}

func (e *chanEnv) PID() int           { return e.pid }
func (e *chanEnv) N() int             { return e.n }
func (e *chanEnv) CheapCollect() bool { return e.cheap }

func (e *chanEnv) Read(r register.Reg) value.Value {
	resp := e.do(request{kind: sched.OpRead, reg: r})
	return resp.val
}

func (e *chanEnv) Write(r register.Reg, v value.Value) {
	e.do(request{kind: sched.OpWrite, reg: r, val: v})
}

func (e *chanEnv) ProbWrite(r register.Reg, v value.Value, num, den uint64) bool {
	resp := e.do(request{kind: sched.OpProbWrite, reg: r, val: v, num: num, den: den})
	return resp.ok
}

func (e *chanEnv) Collect(arr register.Array) []value.Value {
	if e.cheap {
		resp := e.do(request{kind: sched.OpCollect, arr: arr})
		return resp.vals
	}
	out := make([]value.Value, arr.Len)
	for i := 0; i < arr.Len; i++ {
		out[i] = e.Read(arr.At(i))
	}
	return out
}

func (e *chanEnv) CoinUint64() uint64 {
	v := e.coins.Uint64()
	e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: value.Value(int64(v >> 1))})
	return v
}

func (e *chanEnv) CoinBool() bool {
	v := e.coins.Bool()
	bit := value.Value(0)
	if v {
		bit = 1
	}
	e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: bit})
	return v
}

func (e *chanEnv) CoinIntn(n int) int {
	v := e.coins.Intn(n)
	e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: value.Value(v)})
	return v
}

func (e *chanEnv) MarkInvoke(label string, v value.Value) {
	e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Invoke, Label: label, Val: v})
}

func (e *chanEnv) MarkReturn(label string, d value.Decision) {
	e.log.Append(trace.Event{
		Step: -1, PID: e.pid, Kind: trace.Return,
		Label: label, Val: d.V, Decided: d.Decided,
	})
}

func (e *chanEnv) do(req request) response {
	select {
	case e.st.reqCh <- req:
	case <-e.killCh:
		panic(errKilled)
	}
	select {
	case resp := <-e.st.respCh:
		return resp
	case <-e.killCh:
		panic(errKilled)
	}
}
