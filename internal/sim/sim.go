// Package sim is the discrete-event runtime for the paper's asynchronous
// shared-memory model (§2).
//
// Each of the n processes runs its Program in a goroutine. A process's call
// into the Env (Read, Write, ProbWrite, Collect) publishes exactly one
// pending operation and blocks; the runtime asks the adversary Scheduler
// which pending operation executes next, applies it atomically to the
// register file, and resumes that process. Asynchrony is therefore modeled
// by interleaving, exactly as in the paper, and the runtime counts total and
// per-process (individual) work as defined there: every shared-memory
// operation costs 1 (probabilistic writes cost 1 whether or not they take
// effect), local coin flips cost 0.
//
// Executions are deterministic functions of (programs, scheduler, seed):
// each process's local coins and probabilistic-write coins come from private
// split streams, and the scheduler gets its own stream.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// ErrStepLimit is returned by Run when the execution exceeds Config.MaxSteps
// before every live process halts. Randomized wait-free protocols terminate
// with probability 1 but not surely, so a limit is required to keep
// adversarial experiments finite; hitting it is reported, never hidden.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// ErrCancelled is returned (wrapped, together with the context's cause) by
// Run when Config.Context is cancelled before every live process halts.
var ErrCancelled = errors.New("sim: execution cancelled")

// DefaultMaxSteps bounds executions when Config.MaxSteps is zero.
const DefaultMaxSteps = 10_000_000

// Program is the code of one process. It receives its environment and
// returns the process's decision value. Programs must perform all shared
// memory access through the Env.
type Program func(e *Env) value.Value

// Config describes one execution.
type Config struct {
	// N is the number of processes.
	N int
	// File is the shared register file (pre-allocated by the protocol).
	File *register.File
	// Scheduler is the adversary. Views are built at exactly
	// Scheduler.MinPower().
	Scheduler sched.Scheduler
	// Seed determines every random choice in the execution.
	Seed uint64
	// Trace, if non-nil, records the execution.
	Trace *trace.Log
	// CheapCollect enables the cheap-collect cost model (§6.2, choice 4):
	// Env.Collect costs one operation. Otherwise Collect performs one read
	// per register.
	CheapCollect bool
	// CrashAfter maps pid -> number of operations after which the process
	// crashes (its last operation takes effect, but the process never
	// observes the result and is never scheduled again).
	CrashAfter map[int]int
	// MaxSteps bounds total work; 0 means DefaultMaxSteps.
	MaxSteps int
	// Context, if non-nil, cancels the execution between scheduled
	// operations: a hung adversary schedule stops at the next step instead
	// of running to MaxSteps. Cancellation is reported as an error wrapping
	// both ErrCancelled and the context's cause, so callers can test either.
	Context context.Context
}

// Result summarizes an execution.
type Result struct {
	// Outputs holds each process's decision; value.None if it never halted
	// (crashed, or execution hit the step limit).
	Outputs []value.Value
	// Halted reports which processes returned from their Program.
	Halted []bool
	// Crashed reports which processes the runtime crashed.
	Crashed []bool
	// Work is the per-process operation count (individual work).
	Work []int
	// TotalWork is the total operation count.
	TotalWork int
}

// MaxIndividualWork returns max over processes of Work.
func (r *Result) MaxIndividualWork() int {
	m := 0
	for _, w := range r.Work {
		if w > m {
			m = w
		}
	}
	return m
}

// HaltedOutputs returns the outputs of processes that halted.
func (r *Result) HaltedOutputs() []value.Value {
	var out []value.Value
	for pid, h := range r.Halted {
		if h {
			out = append(out, r.Outputs[pid])
		}
	}
	return out
}

type request struct {
	kind sched.OpKind
	reg  register.Reg
	arr  register.Array
	val  value.Value
	num  uint64
	den  uint64
}

type response struct {
	val  value.Value
	vals []value.Value
	ok   bool
}

type procFailure struct {
	pid   int
	cause any
}

type procState struct {
	reqCh   chan request
	respCh  chan response
	doneCh  chan value.Value
	failCh  chan procFailure
	pending request
	hasOp   bool
	halted  bool
	crashed bool
	output  value.Value
}

// errKilled is the sentinel panic used to unwind process goroutines at
// teardown.
var errKilled = errors.New("sim: process killed")

// Run executes programs[pid] for each pid under cfg and returns the result.
// If len(programs) == 1 the single program is used for every process.
// Run panics if a process program panics (with the original panic value).
func Run(cfg Config, programs ...Program) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return nil, errors.New("sim: nil register file")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	switch len(programs) {
	case cfg.N:
	case 1:
		one := programs[0]
		programs = make([]Program, cfg.N)
		for i := range programs {
			programs[i] = one
		}
	default:
		return nil, fmt.Errorf("sim: got %d programs for %d processes", len(programs), cfg.N)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}

	rt := &engine{
		cfg:      cfg,
		power:    cfg.Scheduler.MinPower(),
		maxSteps: maxSteps,
		ctxDone:  ctxDone,
		states:   make([]*procState, cfg.N),
		probSrc:  make([]*xrand.Source, cfg.N),
		killCh:   make(chan struct{}),
		result: &Result{
			Outputs: make([]value.Value, cfg.N),
			Halted:  make([]bool, cfg.N),
			Crashed: make([]bool, cfg.N),
			Work:    make([]int, cfg.N),
		},
	}
	for pid := range rt.result.Outputs {
		rt.result.Outputs[pid] = value.None
	}

	root := xrand.New(cfg.Seed)
	cfg.Scheduler.Seed(root.Split(0))
	for pid := 0; pid < cfg.N; pid++ {
		rt.probSrc[pid] = root.Split(uint64(1_000_000 + pid))
		rt.states[pid] = &procState{
			reqCh:  make(chan request, 1),
			respCh: make(chan response, 1),
			doneCh: make(chan value.Value, 1),
			failCh: make(chan procFailure, 1),
		}
	}

	for pid := 0; pid < cfg.N; pid++ {
		env := &Env{
			pid:    pid,
			n:      cfg.N,
			cheap:  cfg.CheapCollect,
			coins:  root.Split(uint64(1 + pid)),
			log:    cfg.Trace,
			st:     rt.states[pid],
			killCh: rt.killCh,
		}
		rt.wg.Add(1)
		go runProcess(rt, pid, programs[pid], env)
	}

	err := rt.loop()
	rt.teardown()
	if rt.failure != nil {
		panic(rt.failure.cause)
	}
	return rt.result, err
}

func runProcess(rt *engine, pid int, prog Program, env *Env) {
	defer rt.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errKilled) {
				return
			}
			select {
			case rt.states[pid].failCh <- procFailure{pid: pid, cause: r}:
			case <-rt.killCh:
			}
		}
	}()
	out := prog(env)
	select {
	case rt.states[pid].doneCh <- out:
	case <-rt.killCh:
	}
}

type engine struct {
	cfg      Config
	power    sched.Power
	maxSteps int
	ctxDone  <-chan struct{}
	states   []*procState
	probSrc  []*xrand.Source
	killCh   chan struct{}
	wg       sync.WaitGroup
	result   *Result
	steps    int
	failure  *procFailure

	runnableBuf []int
}

// loop drives the execution to completion or to the step limit.
func (rt *engine) loop() error {
	// Gather the initial pending operation (or immediate halt) of each
	// process.
	for pid := range rt.states {
		if !rt.waitNext(pid) {
			return nil // a process failed; failure recorded
		}
	}
	view := &sched.View{Power: rt.power, N: rt.cfg.N}
	for {
		runnable := rt.collectRunnable()
		if len(runnable) == 0 {
			return nil // every process halted or crashed
		}
		if rt.steps >= rt.maxSteps {
			return fmt.Errorf("%w (limit %d, scheduler %q)", ErrStepLimit, rt.maxSteps, rt.cfg.Scheduler.Name())
		}
		if rt.ctxDone != nil {
			select {
			case <-rt.ctxDone:
				return fmt.Errorf("%w after %d steps: %w", ErrCancelled, rt.steps, context.Cause(rt.cfg.Context))
			default:
			}
		}
		rt.buildView(view, runnable)
		pid := rt.cfg.Scheduler.Next(view)
		if pid < 0 || pid >= rt.cfg.N || !rt.states[pid].hasOp || rt.states[pid].crashed {
			panic(fmt.Sprintf("sim: scheduler %q chose non-runnable pid %d", rt.cfg.Scheduler.Name(), pid))
		}
		rt.execute(pid)
		if rt.failure != nil {
			return nil
		}
	}
}

// collectRunnable reuses a per-engine buffer: with thousands of processes
// the per-step allocation dominates the scheduling loop otherwise. The
// slice is only valid until the next call; schedulers see it through the
// View for the duration of one Next call.
func (rt *engine) collectRunnable() []int {
	rt.runnableBuf = rt.runnableBuf[:0]
	for pid, st := range rt.states {
		if st.hasOp && !st.crashed && !st.halted {
			rt.runnableBuf = append(rt.runnableBuf, pid)
		}
	}
	return rt.runnableBuf
}

// execute applies pid's pending operation, delivers the response, and waits
// for pid's next request (unless pid crashes at this step).
func (rt *engine) execute(pid int) {
	st := rt.states[pid]
	req := st.pending
	st.hasOp = false
	file := rt.cfg.File

	var resp response
	ev := trace.Event{Step: rt.steps, PID: pid, Reg: int(req.reg), Val: req.val}
	switch req.kind {
	case sched.OpRead:
		resp.val = file.Load(req.reg)
		ev.Kind = trace.Read
		ev.Val = resp.val
	case sched.OpWrite:
		file.Store(req.reg, req.val)
		ev.Kind = trace.Write
	case sched.OpProbWrite:
		resp.ok = rt.probSrc[pid].Bernoulli(req.num, req.den)
		if resp.ok {
			file.Store(req.reg, req.val)
		}
		ev.Kind = trace.ProbWrite
		ev.Succeeded = resp.ok
		ev.ProbNum, ev.ProbDen = req.num, req.den
	case sched.OpCollect:
		resp.vals = file.Snapshot(req.arr)
		ev.Kind = trace.Collect
		ev.Reg = int(req.arr.Base)
	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", req.kind))
	}
	rt.cfg.Trace.Append(ev)
	rt.result.Work[pid]++
	rt.result.TotalWork++
	rt.steps++

	if limit, ok := rt.cfg.CrashAfter[pid]; ok && rt.result.Work[pid] >= limit {
		// The operation took effect, but the process never observes the
		// result and is never scheduled again.
		st.crashed = true
		rt.result.Crashed[pid] = true
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Crash})
		return
	}

	st.respCh <- resp
	rt.waitNext(pid)
}

// waitNext blocks until pid publishes its next operation, halts, or fails.
// It returns false when a process failure aborts the run.
func (rt *engine) waitNext(pid int) bool {
	st := rt.states[pid]
	select {
	case req := <-st.reqCh:
		st.pending = req
		st.hasOp = true
		return true
	case out := <-st.doneCh:
		st.halted = true
		st.output = out
		rt.result.Halted[pid] = true
		rt.result.Outputs[pid] = out
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Halt, Val: out})
		return true
	case f := <-st.failCh:
		rt.failure = &f
		return false
	}
}

// buildView fills view with the information rt.power permits.
func (rt *engine) buildView(view *sched.View, run []int) {
	view.Step = rt.steps
	view.Runnable = run
	if view.Pending == nil {
		view.Pending = make([]sched.Op, rt.cfg.N)
	}
	for pid := range view.Pending {
		view.Pending[pid] = sched.Op{}
	}
	for _, pid := range run {
		req := rt.states[pid].pending
		op := sched.Op{Valid: true, Reg: -1, Val: value.None}
		switch rt.power {
		case sched.Oblivious:
			// Liveness only.
		case sched.ValueOblivious:
			op.Kind = req.kind
			op.Reg = req.reg
			if req.kind == sched.OpCollect {
				op.Reg = req.arr.Base
			}
		case sched.LocationOblivious:
			op.Kind = req.kind
			if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
				op.Val = req.val
			}
			op.ProbNum, op.ProbDen = req.num, req.den
		case sched.Adaptive:
			op.Kind = req.kind
			op.Reg = req.reg
			if req.kind == sched.OpCollect {
				op.Reg = req.arr.Base
			}
			if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
				op.Val = req.val
			}
			op.ProbNum, op.ProbDen = req.num, req.den
		default:
			panic(fmt.Sprintf("sim: unknown power %v", rt.power))
		}
		view.Pending[pid] = op
	}
	switch rt.power {
	case sched.LocationOblivious, sched.Adaptive:
		view.Memory = rt.cfg.File.Contents()
	default:
		view.Memory = nil
	}
}

// teardown unblocks and reaps every process goroutine.
func (rt *engine) teardown() {
	close(rt.killCh)
	rt.wg.Wait()
}
