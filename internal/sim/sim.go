// Package sim is the discrete-event runtime for the paper's asynchronous
// shared-memory model (§2).
//
// Each of the n processes runs its Program as a same-thread resumable
// coroutine (an iter.Pull iterator over its pending operations). A process's
// call into the Env (Read, Write, ProbWrite, Collect) publishes exactly one
// pending operation and suspends; the runtime asks the adversary Scheduler
// which pending operation executes next, applies it atomically to the
// register file, and resumes that coroutine in place — a direct context
// switch with no goroutine scheduler round-trip and no channel traffic.
// Asynchrony is therefore modeled by interleaving, exactly as in the paper,
// and the runtime counts total and per-process (individual) work as defined
// there: every shared-memory operation costs 1 (probabilistic writes cost 1
// whether or not they take effect), local coin flips cost 0.
//
// The step path is allocation-free in the steady state: scheduler views,
// memory images, and collect snapshots are served from buffers owned by the
// engine and reused every step (see the copy-on-escape contracts on
// sched.View and Env.Collect), and trace events are not even constructed
// when tracing is off.
//
// Executions are deterministic functions of (programs, scheduler, seed):
// each process's local coins and probabilistic-write coins come from private
// split streams, and the scheduler gets its own stream. Because processes
// run as cooperatively scheduled coroutines, determinism extends to the
// trace: free events (coins, markers) interleave identically on every run.
package sim

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"time"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// ErrStepLimit is returned by Run when the execution exceeds Config.MaxSteps
// before every live process halts. Randomized wait-free protocols terminate
// with probability 1 but not surely, so a limit is required to keep
// adversarial experiments finite; hitting it is reported, never hidden.
// It is the backend-neutral exec.ErrStepLimit, so errors.Is works whichever
// package the caller matched against.
var ErrStepLimit = exec.ErrStepLimit

// ErrCancelled is returned (wrapped, together with the context's cause) by
// Run when Config.Context is cancelled before every live process halts.
// It is the backend-neutral exec.ErrCancelled.
var ErrCancelled = exec.ErrCancelled

// DefaultMaxSteps bounds executions when Config.MaxSteps is zero.
const DefaultMaxSteps = 10_000_000

// Program is the code of one process. It receives its environment and
// returns the process's decision value. Programs must perform all shared
// memory access through the Env.
type Program func(e *Env) value.Value

// Config describes one execution.
type Config struct {
	// N is the number of processes.
	N int
	// File is the shared register file (pre-allocated by the protocol).
	File *register.File
	// Scheduler is the adversary. Views are built at exactly
	// Scheduler.MinPower().
	Scheduler sched.Scheduler
	// Seed determines every random choice in the execution.
	Seed uint64
	// Trace, if non-nil, records the execution.
	Trace *trace.Log
	// CheapCollect enables the cheap-collect cost model (§6.2, choice 4):
	// Env.Collect costs one operation. Otherwise Collect performs one read
	// per register.
	CheapCollect bool
	// CrashAfter maps pid -> number of operations after which the process
	// crashes (its last operation takes effect, but the process never
	// observes the result and is never scheduled again).
	CrashAfter map[int]int
	// Faults is the compiled fault injector (fault.Compile), consulted at
	// operation boundaries: crash thresholds merge with CrashAfter (the
	// smaller wins), global-step crashes fire at the first own operation at
	// or past the threshold, stalls freeze a process without halting or
	// crashing it, per-op delays sleep the engine thread, and lost coins
	// suppress probabilistic writes after the process's own coin stream is
	// consumed as usual. Stall faults require a non-nil Context: a stalled
	// process never halts, so only cancellation can end the execution. nil
	// means no faults and costs nothing on the step path.
	Faults *fault.Injector
	// MaxSteps bounds total work; 0 means DefaultMaxSteps.
	MaxSteps int
	// Context, if non-nil, cancels the execution between scheduled
	// operations: a hung adversary schedule stops at the next step instead
	// of running to MaxSteps. Cancellation is reported as an error wrapping
	// both ErrCancelled and the context's cause, so callers can test either.
	Context context.Context
	// Meter, if non-nil, receives a live count of executed operations for
	// progress reporting. nil costs one predictable branch per step and zero
	// allocations (pinned by TestStepLoopZeroAllocsMeterOff); metering never
	// affects results.
	Meter *obs.Meter
}

// Result summarizes an execution. It is the backend-neutral exec.Result:
// the simulator fills every field, including Steps (== TotalWork here, one
// operation per scheduled step) and Trace when tracing was requested.
type Result = exec.Result

type request struct {
	kind sched.OpKind
	reg  register.Reg
	arr  register.Array
	val  value.Value
	num  uint64
	den  uint64
}

type response struct {
	val  value.Value
	vals []value.Value
	ok   bool
}

// proc is the engine-side state of one process coroutine. The resume
// protocol replaces the old four-channel handoff: the engine writes resp,
// calls next() to transfer control into the coroutine, and the coroutine
// either yields its next request (suspending itself) or returns (halting).
// Control transfer is a same-thread coroutine switch (runtime coro under
// iter.Pull), so resp/pending need no synchronization.
type proc struct {
	// next resumes the coroutine; it returns the process's next pending
	// operation, or ok=false once the program has returned.
	next func() (request, bool)
	// stop unwinds a suspended coroutine (its pending Env call panics with
	// errKilled, which the coroutine wrapper swallows).
	stop func()
	// resp is the engine's answer to the coroutine's previous request; the
	// coroutine reads it immediately after its yield returns.
	resp    response
	pending request
	hasOp   bool
	halted  bool
	crashed bool
	stalled bool
	output  value.Value
}

// errKilled is the sentinel panic used to unwind process coroutines at
// teardown.
var errKilled = errors.New("sim: process killed")

// Run executes programs[pid] for each pid under cfg and returns the result.
// If len(programs) == 1 the single program is used for every process.
// Run panics if a process program panics (with the original panic value).
func Run(cfg Config, programs ...Program) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return nil, errors.New("sim: nil register file")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	switch len(programs) {
	case cfg.N:
	case 1:
		one := programs[0]
		programs = make([]Program, cfg.N)
		for i := range programs {
			programs[i] = one
		}
	default:
		return nil, fmt.Errorf("sim: got %d programs for %d processes", len(programs), cfg.N)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}

	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}

	rt := &engine{
		cfg:      cfg,
		power:    cfg.Scheduler.MinPower(),
		maxSteps: maxSteps,
		ctxDone:  ctxDone,
		procs:    make([]proc, cfg.N),
		probSrc:  make([]*xrand.Source, cfg.N),
		result:   exec.NewResult(cfg.N),
		meter:    cfg.Meter,
	}
	rt.result.Trace = cfg.Trace

	// CrashAfter is consulted on every step; flatten the map into a dense
	// per-pid limit (MaxInt = never) so the hot path does one compare
	// instead of a map lookup.
	rt.crashAt = make([]int, cfg.N)
	for pid := range rt.crashAt {
		rt.crashAt[pid] = int(^uint(0) >> 1)
	}
	for pid, limit := range cfg.CrashAfter {
		if pid >= 0 && pid < cfg.N {
			rt.crashAt[pid] = limit
		}
	}

	// Fault thresholds are dense per-pid slices too; a nil injector leaves
	// rt.faulty false and the step path untouched.
	if in := cfg.Faults; in != nil {
		rt.inj = in
		rt.faulty = true
		rt.stallAt = make([]int, cfg.N)
		rt.stepCrashAt = make([]int, cfg.N)
		for pid := 0; pid < cfg.N; pid++ {
			rt.crashAt[pid] = min(rt.crashAt[pid], in.CrashAt(pid))
			rt.stallAt[pid] = in.StallAt(pid)
			rt.stepCrashAt[pid] = in.CrashStep(pid)
		}
		if in.HasStall() {
			if cfg.Context == nil {
				return nil, errors.New("sim: stall faults require a Context (a stalled process never halts; only cancellation ends the execution)")
			}
			rt.result.Stalled = make([]bool, cfg.N)
		}
	}

	// Per-process streams come from the shared exec derivation so that
	// adversary-free executions are bit-equivalent on every backend (the
	// scheduler's stream is sim-only and never consumed by processes).
	root := xrand.New(cfg.Seed)
	cfg.Scheduler.Seed(root.Split(0))
	for pid := 0; pid < cfg.N; pid++ {
		rt.probSrc[pid] = exec.ProcProb(root, pid)
	}
	for pid := 0; pid < cfg.N; pid++ {
		rt.spawn(pid, programs[pid], exec.ProcCoins(root, pid))
	}

	// teardown runs even when a program panic propagates out of a resume,
	// so every suspended coroutine is unwound before Run re-panics.
	defer rt.teardown()
	err := rt.loop()
	rt.result.Steps = rt.steps
	return rt.result, err
}

// spawn creates pid's coroutine. The coroutine body runs the program and
// records its decision; a panic other than the errKilled teardown sentinel
// propagates to whichever engine call resumed the coroutine — and from
// there out of Run, preserving the original panic value.
func (rt *engine) spawn(pid int, prog Program, coins *xrand.Source) {
	p := &rt.procs[pid]
	env := &Env{
		pid:   pid,
		n:     rt.cfg.N,
		cheap: rt.cfg.CheapCollect,
		coins: coins,
		log:   rt.cfg.Trace,
		resp:  &p.resp,
	}
	p.next, p.stop = iter.Pull(func(yield func(request) bool) {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, errKilled) {
					return
				}
				panic(r)
			}
		}()
		env.yield = yield
		out := prog(env)
		p.halted = true
		p.output = out
	})
}

type engine struct {
	cfg      Config
	power    sched.Power
	maxSteps int
	ctxDone  <-chan struct{}
	procs    []proc
	probSrc  []*xrand.Source
	crashAt  []int
	result   *Result
	steps    int

	// Fault plane (nil/false when Config.Faults is nil): dense thresholds
	// mirroring crashAt, plus the injector for delay and lost-coin draws.
	// stalledN counts processes frozen by a stall fault — they are neither
	// halted nor crashed, so the loop must not report completion while any
	// remain.
	inj         *fault.Injector
	stallAt     []int
	stepCrashAt []int
	faulty      bool
	stalledN    int

	// meter, when non-nil, is ticked once per executed operation. The nil
	// check is the whole disabled cost — same pattern as rt.faulty.
	meter *obs.Meter

	// The scheduler view is maintained incrementally: exactly one process
	// changes state per step, so runnable (ascending pids) and view.Pending
	// are patched in O(1) amortized instead of rebuilt in O(n). The slices
	// are engine-owned and reused every step; schedulers may read them only
	// for the duration of one Next call (see the contract on sched.View).
	view     sched.View
	runnable []int
	// memBuf backs View.Memory (location-oblivious/adaptive powers),
	// collectBuf backs cheap-collect responses; both reused every step.
	memBuf     []value.Value
	collectBuf []value.Value
}

// loop drives the execution to completion or to the step limit.
func (rt *engine) loop() error {
	// Gather the initial pending operation (or immediate halt) of each
	// process, in pid order, then build the initial view state.
	rt.view = sched.View{Power: rt.power, N: rt.cfg.N, Pending: make([]sched.Op, rt.cfg.N)}
	rt.runnable = make([]int, 0, rt.cfg.N)
	for pid := range rt.procs {
		// Threshold 0 fires before the first operation: the process crashes
		// or stalls having done nothing at all, and its coroutine is never
		// started (teardown unwinds it).
		if rt.crashAt[pid] <= 0 {
			rt.crash(pid)
			continue
		}
		if rt.faulty && rt.stallAt[pid] <= 0 {
			rt.stall(pid)
			continue
		}
		rt.resume(pid)
	}
	for pid := range rt.procs {
		p := &rt.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			rt.runnable = append(rt.runnable, pid)
			rt.view.Pending[pid] = rt.restrictOp(p.pending)
		}
	}
	for {
		if len(rt.runnable) == 0 {
			if rt.stalledN == 0 {
				return nil // every process halted or crashed
			}
			// Only stalled processes remain: the execution can never finish
			// on its own (the livelock a deadline watchdog exists to catch).
			// Block until cancellation; Run validated that a Context exists
			// whenever stall faults do.
			if rt.ctxDone == nil {
				return fmt.Errorf("sim: %d process(es) stalled with no context to interrupt the execution", rt.stalledN)
			}
			<-rt.ctxDone
			return fmt.Errorf("%w after %d steps (%d process(es) stalled): %w", ErrCancelled, rt.steps, rt.stalledN, context.Cause(rt.cfg.Context))
		}
		if rt.steps >= rt.maxSteps {
			return fmt.Errorf("%w (limit %d, scheduler %q)", ErrStepLimit, rt.maxSteps, rt.cfg.Scheduler.Name())
		}
		if rt.ctxDone != nil {
			select {
			case <-rt.ctxDone:
				return fmt.Errorf("%w after %d steps: %w", ErrCancelled, rt.steps, context.Cause(rt.cfg.Context))
			default:
			}
		}
		rt.view.Step = rt.steps
		rt.view.Runnable = rt.runnable
		switch rt.power {
		case sched.LocationOblivious, sched.Adaptive:
			rt.memBuf = rt.cfg.File.AppendContents(rt.memBuf[:0])
			rt.view.Memory = rt.memBuf
		}
		pid := rt.cfg.Scheduler.Next(&rt.view)
		if pid < 0 || pid >= rt.cfg.N || !rt.procs[pid].hasOp || rt.procs[pid].crashed {
			panic(fmt.Sprintf("sim: scheduler %q chose non-runnable pid %d", rt.cfg.Scheduler.Name(), pid))
		}
		rt.execute(pid)
		// Patch the view entry of the one process that moved.
		p := &rt.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			rt.view.Pending[pid] = rt.restrictOp(p.pending)
		} else {
			rt.view.Pending[pid] = sched.Op{}
			rt.dropRunnable(pid)
		}
	}
}

// dropRunnable removes pid from the ascending runnable list (called only
// when a process halts or crashes, so the O(n) shift is off the per-step
// path).
func (rt *engine) dropRunnable(pid int) {
	for i, p := range rt.runnable {
		if p == pid {
			rt.runnable = append(rt.runnable[:i], rt.runnable[i+1:]...)
			return
		}
	}
}

// execute applies pid's pending operation, then resumes pid's coroutine to
// obtain its next request (unless pid crashes at this step).
func (rt *engine) execute(pid int) {
	p := &rt.procs[pid]
	req := p.pending
	p.hasOp = false
	file := rt.cfg.File
	traced := rt.cfg.Trace != nil

	var resp response
	switch req.kind {
	case sched.OpRead:
		resp.val = file.Load(req.reg)
	case sched.OpWrite:
		file.Store(req.reg, req.val)
	case sched.OpProbWrite:
		resp.ok = rt.probSrc[pid].Bernoulli(req.num, req.den)
		if rt.faulty && rt.inj.LoseCoin(pid) {
			// The coin is lost in flight: the process's own coin stream was
			// consumed exactly as in a fault-free run (so no-loss draws stay
			// bit-identical), but the write is suppressed and reported
			// failed. Safe degradation — it can only slow termination.
			resp.ok = false
		}
		if resp.ok {
			file.Store(req.reg, req.val)
		}
	case sched.OpCollect:
		rt.collectBuf = file.SnapshotAppend(rt.collectBuf[:0], req.arr)
		resp.vals = rt.collectBuf
	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", req.kind))
	}
	if traced {
		ev := trace.Event{Step: rt.steps, PID: pid, Reg: int(req.reg), Val: req.val}
		switch req.kind {
		case sched.OpRead:
			ev.Kind = trace.Read
			ev.Val = resp.val
		case sched.OpWrite:
			ev.Kind = trace.Write
		case sched.OpProbWrite:
			ev.Kind = trace.ProbWrite
			ev.Succeeded = resp.ok
			ev.ProbNum, ev.ProbDen = req.num, req.den
		case sched.OpCollect:
			ev.Kind = trace.Collect
			ev.Reg = int(req.arr.Base)
		}
		rt.cfg.Trace.Append(ev)
	}
	rt.result.Work[pid]++
	rt.result.TotalWork++
	rt.steps++
	if rt.meter != nil {
		rt.meter.AddSteps(1)
	}

	if rt.faulty {
		if d := rt.inj.OpDelay(pid); d > 0 {
			// Per-op jitter: the engine is single-threaded, so sleeping here
			// slows the whole (simulated) execution — meaningful for wall
			// clock stress, invisible to the step-count cost model.
			time.Sleep(d)
		}
	}

	// Crash checks run after the operation lands: the last operation takes
	// effect, but the process never observes the result and is never
	// scheduled again; its coroutine stays suspended until teardown unwinds
	// it. rt.steps is now the 1-based global index of this operation, which
	// is what the crash-on-round thresholds are compiled against.
	if rt.result.Work[pid] >= rt.crashAt[pid] || (rt.faulty && rt.steps >= rt.stepCrashAt[pid]) {
		rt.crash(pid)
		return
	}
	if rt.faulty && rt.result.Work[pid] >= rt.stallAt[pid] {
		rt.stall(pid)
		return
	}

	p.resp = resp
	rt.resume(pid)
}

// crash marks pid crashed. Called either after its last operation landed or
// before its first (threshold 0).
func (rt *engine) crash(pid int) {
	rt.procs[pid].crashed = true
	rt.result.Crashed[pid] = true
	if rt.cfg.Trace != nil {
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Crash})
	}
}

// stall freezes pid: unlike a crash it is not reported as failed — the
// process holds its state forever and simply never takes another step, the
// classic livelock a deadline watchdog has to catch. Its coroutine stays
// suspended until teardown.
func (rt *engine) stall(pid int) {
	rt.procs[pid].stalled = true
	rt.result.Stalled[pid] = true
	rt.stalledN++
}

// resume transfers control into pid's coroutine and records what comes
// back: either the next pending operation or the program's return. A
// program panic propagates out of p.next (and out of Run) with its original
// value; the deferred teardown in Run unwinds the other coroutines first.
func (rt *engine) resume(pid int) {
	p := &rt.procs[pid]
	req, ok := p.next()
	if ok {
		p.pending = req
		p.hasOp = true
		return
	}
	// The program returned: p.halted and p.output were set by the coroutine
	// wrapper before it finished.
	rt.result.Halted[pid] = true
	rt.result.Outputs[pid] = p.output
	if rt.cfg.Trace != nil {
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Halt, Val: p.output})
	}
}

// restrictOp projects a pending request down to what rt.power permits the
// adversary to observe (§2.1).
func (rt *engine) restrictOp(req request) sched.Op {
	op := sched.Op{Valid: true, Reg: -1, Val: value.None}
	switch rt.power {
	case sched.Oblivious:
		// Liveness only.
	case sched.ValueOblivious:
		op.Kind = req.kind
		op.Reg = req.reg
		if req.kind == sched.OpCollect {
			op.Reg = req.arr.Base
		}
	case sched.LocationOblivious:
		op.Kind = req.kind
		if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
			op.Val = req.val
		}
		op.ProbNum, op.ProbDen = req.num, req.den
	case sched.Adaptive:
		op.Kind = req.kind
		op.Reg = req.reg
		if req.kind == sched.OpCollect {
			op.Reg = req.arr.Base
		}
		if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
			op.Val = req.val
		}
		op.ProbNum, op.ProbDen = req.num, req.den
	default:
		panic(fmt.Sprintf("sim: unknown power %v", rt.power))
	}
	return op
}

// teardown unwinds every coroutine that has not already returned: suspended
// processes (crashed, step-limited, cancelled, or stranded by another
// process's panic) see their pending Env call fail and exit through the
// errKilled sentinel.
func (rt *engine) teardown() {
	for pid := range rt.procs {
		p := &rt.procs[pid]
		if p.stop != nil {
			p.stop()
		}
	}
}
