// Package sim is the discrete-event runtime for the paper's asynchronous
// shared-memory model (§2).
//
// Each of the n processes runs its Program as a same-thread resumable
// coroutine (an iter.Pull iterator over its pending operations). A process's
// call into the Env (Read, Write, ProbWrite, Collect) publishes exactly one
// pending operation and suspends; the runtime asks the adversary Scheduler
// which pending operation executes next, applies it atomically to the
// register file, and resumes that coroutine in place — a direct context
// switch with no goroutine scheduler round-trip and no channel traffic.
// Asynchrony is therefore modeled by interleaving, exactly as in the paper,
// and the runtime counts total and per-process (individual) work as defined
// there: every shared-memory operation costs 1 (probabilistic writes cost 1
// whether or not they take effect), local coin flips cost 0.
//
// The step path is allocation-free in the steady state: scheduler views,
// memory images, and collect snapshots are served from buffers owned by the
// engine and reused every step (see the copy-on-escape contracts on
// sched.View and Env.Collect), and trace events are not even constructed
// when tracing is off.
//
// The same contract extends from steps to whole trials: Engine is a
// reusable runtime for one (programs, scheduler, config) cell whose
// Reset(seed, faults) rewinds registers, coroutines, views, and RNG streams
// in place, so a warmed-up engine runs entire executions without
// allocating. Run is the one-shot convenience built on it.
//
// Executions are deterministic functions of (programs, scheduler, seed):
// each process's local coins and probabilistic-write coins come from private
// split streams, and the scheduler gets its own stream. Because processes
// run as cooperatively scheduled coroutines, determinism extends to the
// trace: free events (coins, markers) interleave identically on every run.
package sim

import (
	"context"
	"errors"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// ErrStepLimit is returned by Run when the execution exceeds Config.MaxSteps
// before every live process halts. Randomized wait-free protocols terminate
// with probability 1 but not surely, so a limit is required to keep
// adversarial experiments finite; hitting it is reported, never hidden.
// It is the backend-neutral exec.ErrStepLimit, so errors.Is works whichever
// package the caller matched against.
var ErrStepLimit = exec.ErrStepLimit

// ErrCancelled is returned (wrapped, together with the context's cause) by
// Run when Config.Context is cancelled before every live process halts.
// It is the backend-neutral exec.ErrCancelled.
var ErrCancelled = exec.ErrCancelled

// DefaultMaxSteps bounds executions when Config.MaxSteps is zero.
const DefaultMaxSteps = 10_000_000

// Program is the code of one process. It receives its environment and
// returns the process's decision value. Programs must perform all shared
// memory access through the Env.
type Program func(e *Env) value.Value

// Config describes one execution.
type Config struct {
	// N is the number of processes.
	N int
	// File is the shared register file (pre-allocated by the protocol).
	File *register.File
	// Scheduler is the adversary. Views are built at exactly
	// Scheduler.MinPower().
	Scheduler sched.Scheduler
	// Seed determines every random choice in the execution. (NewEngine
	// ignores it: a reusable engine takes each trial's seed through Reset.)
	Seed uint64
	// Trace, if non-nil, records the execution.
	Trace *trace.Log
	// CheapCollect enables the cheap-collect cost model (§6.2, choice 4):
	// Env.Collect costs one operation. Otherwise Collect performs one read
	// per register.
	CheapCollect bool
	// Registers selects the register consistency model (zero value
	// register.Atomic — the paper's base model, bit-identical to the
	// pre-semantics engine). Under register.Regular a read whose target was
	// overwritten between the read's invocation (publication as a pending
	// op) and its execution may return the pre-write value, chosen by a
	// dedicated schedule-ordered coin stream; cheap collects remain atomic
	// snapshots (the cheap-collect primitive is an atomic snapshot by
	// definition, §6.2), while non-cheap collects inherit regularity from
	// their individual reads. Under register.Interposed reads stay atomic
	// but adversary views are blunted: pending operation values and
	// probabilities are hidden from strong adversaries (Attiya–Enea–Welch).
	Registers register.Semantics
	// CrashAfter maps pid -> number of operations after which the process
	// crashes (its last operation takes effect, but the process never
	// observes the result and is never scheduled again).
	CrashAfter map[int]int
	// Faults is the compiled fault injector (fault.Compile), consulted at
	// operation boundaries: crash thresholds merge with CrashAfter (the
	// smaller wins), global-step crashes fire at the first own operation at
	// or past the threshold, stalls freeze a process without halting or
	// crashing it, per-op delays sleep the engine thread, and lost coins
	// suppress probabilistic writes after the process's own coin stream is
	// consumed as usual. Stall faults require a non-nil Context: a stalled
	// process never halts, so only cancellation can end the execution. nil
	// means no faults and costs nothing on the step path. (NewEngine
	// ignores it: a reusable engine takes each trial's injector through
	// Reset.)
	Faults *fault.Injector
	// MaxSteps bounds total work; 0 means DefaultMaxSteps.
	MaxSteps int
	// Context, if non-nil, cancels the execution between scheduled
	// operations: a hung adversary schedule stops at the next step instead
	// of running to MaxSteps. Cancellation is reported as an error wrapping
	// both ErrCancelled and the context's cause, so callers can test either.
	// (NewEngine ignores it: a reusable engine takes each trial's context
	// through Engine.Run.)
	Context context.Context
	// Meter, if non-nil, receives a live count of executed operations for
	// progress reporting. nil costs one predictable branch per step and zero
	// allocations (pinned by TestStepLoopZeroAllocsMeterOff); metering never
	// affects results.
	Meter *obs.Meter
}

// Result summarizes an execution. It is the backend-neutral exec.Result:
// the simulator fills every field, including Steps (== TotalWork here, one
// operation per scheduled step) and Trace when tracing was requested.
type Result = exec.Result

type request struct {
	kind sched.OpKind
	reg  register.Reg
	arr  register.Array
	val  value.Value
	num  uint64
	den  uint64
	// park marks the between-trials parking yield of a persistent process
	// coroutine; it is never a schedulable operation.
	park bool
}

type response struct {
	val  value.Value
	vals []value.Value
	ok   bool
	// abort tells the resumed process to unwind its current trial: its
	// pending Env call panics with errTrialAbort, recovered at the trial
	// boundary (Engine.Reset aborting a mid-trial coroutine).
	abort bool
}

// proc is the engine-side state of one process coroutine. The resume
// protocol replaces the old four-channel handoff: the engine writes resp,
// calls next() to transfer control into the coroutine, and the coroutine
// either yields its next request (suspending itself) or parks between
// trials. Control transfer is a same-thread coroutine switch (runtime coro
// under iter.Pull), so resp/pending need no synchronization.
type proc struct {
	// next resumes the coroutine; it returns the process's next pending
	// operation (or the parking sentinel), or ok=false once the coroutine
	// body has returned at teardown.
	next func() (request, bool)
	// stop unwinds a suspended coroutine (its pending Env call panics with
	// errKilled, which the coroutine wrapper swallows).
	stop func()
	// resp is the engine's answer to the coroutine's previous request; the
	// coroutine reads it immediately after its yield returns.
	resp    response
	pending request
	hasOp   bool
	// parked reports that the coroutine is idling at a trial boundary: a
	// fresh coroutine whose body has not started, or one waiting on its
	// parking yield after finishing (or aborting) a trial.
	parked  bool
	halted  bool
	crashed bool
	stalled bool
	output  value.Value
}

// errKilled is the sentinel panic used to unwind process coroutines at
// teardown (Engine.Close).
var errKilled = errors.New("sim: process killed")

// errTrialAbort is the sentinel panic used by Engine.Reset to unwind a
// coroutine out of an unfinished trial without killing it: the coroutine
// recovers it at the trial boundary and parks for the next trial.
var errTrialAbort = errors.New("sim: trial aborted by engine reset")

// Run executes programs[pid] for each pid under cfg and returns the result.
// If len(programs) == 1 the single program is used for every process.
// Run panics if a process program panics (with the original panic value).
//
// Run is the one-shot form of the reusable Engine — construct, run one
// trial with cfg.Seed/cfg.Faults/cfg.Context, tear down — and is
// bit-identical to it by construction. Sweeps that run many trials of one
// cell should hold an Engine (or an exec.Session) instead and amortize the
// construction.
func Run(cfg Config, programs ...Program) (*Result, error) {
	eng, err := NewEngine(cfg, programs...)
	if err != nil {
		return nil, err
	}
	// Close unwinds every coroutine even when a program panic propagates
	// out of eng.Run, preserving the original panic value.
	defer eng.Close()
	if err := eng.Reset(cfg.Seed, cfg.Faults); err != nil {
		return nil, err
	}
	return eng.Run(cfg.Context)
}
