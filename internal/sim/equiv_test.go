package sim

// Trace-equivalence harness for the step-engine rewrite.
//
// The coroutine engine must be observationally indistinguishable from the
// channel engine it replaced: same (programs, scheduler, seed) ⇒ the same
// trace, event by event, and the same Result. Two tests enforce this:
//
//   - TestTraceGolden diffs the production engine against golden trace files
//     in testdata/, captured from the pre-rewrite channel engine. Regenerate
//     with `go test -run TestTraceGolden -update-golden` (only do this
//     deliberately: the goldens *are* the old engine's semantics).
//   - TestEngineMatchesChanEngine runs the preserved channel engine (see
//     chanengine_test.go) and the production engine side by side over a wider
//     seed sweep and diffs live.
//
// The test programs perform a shared-memory operation before any coin flip
// or trace annotation. This matters: the channel engine started all process
// goroutines concurrently, so free events emitted before a process's first
// shared-memory operation could land in the log in nondeterministic order.
// After the first operation both engines serialize everything, so programs
// of this shape have fully deterministic traces under either engine.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden trace files from the current engine")

// envLike is the program-facing surface shared by the production *Env and the
// preserved *chanEnv, so test bodies are written once and run on both.
type envLike interface {
	PID() int
	N() int
	CheapCollect() bool
	Read(register.Reg) value.Value
	Write(register.Reg, value.Value)
	ProbWrite(register.Reg, value.Value, uint64, uint64) bool
	Collect(register.Array) []value.Value
	CoinUint64() uint64
	CoinBool() bool
	CoinIntn(int) int
	MarkInvoke(string, value.Value)
	MarkReturn(string, value.Decision)
}

var (
	_ envLike = (*Env)(nil)
	_ envLike = (*chanEnv)(nil)
)

// equivBody exercises every operation kind: write, probwrite, read, collect,
// local coins, and invoke/return markers. The first action is a shared write
// (see the package comment above on why that must come first).
func equivBody(e envLike, a register.Array) value.Value {
	r := a.At(e.PID() % a.Len)
	e.Write(r, value.Value(e.PID()+1))
	e.MarkInvoke("equiv", value.Value(e.PID()))
	x := value.Value(0)
	for i := 0; i < 3; i++ {
		c := e.CoinIntn(8)
		e.ProbWrite(a.At((e.PID()+i)%a.Len), value.Value(c+1), 1, 2)
		x += e.Read(a.At(i % a.Len))
		vals := e.Collect(a)
		for _, v := range vals {
			if !v.IsNone() {
				x += v
			}
		}
		if e.CoinBool() {
			x++
		}
	}
	e.MarkReturn("equiv", value.Decide(x))
	return x
}

type equivCase struct {
	name  string
	n     int
	regs  int
	cheap bool
	crash map[int]int
	mk    func() sched.Scheduler
}

// equivCases covers every adversary power class (the runtime builds views at
// the scheduler's MinPower, so each case exercises a distinct view-building
// path) plus crash injection.
func equivCases() []equivCase {
	return []equivCase{
		{name: "oblivious-uniform", n: 4, regs: 4, cheap: true,
			mk: func() sched.Scheduler { return sched.NewUniformRandom() }},
		{name: "oblivious-roundrobin-crash", n: 4, regs: 4, crash: map[int]int{1: 4, 3: 9},
			mk: func() sched.Scheduler { return sched.NewRoundRobin() }},
		{name: "value-oblivious-splitvote", n: 4, regs: 4,
			mk: func() sched.Scheduler { return sched.NewSplitVote() }},
		{name: "location-oblivious-firstmover", n: 4, regs: 4, cheap: true,
			mk: func() sched.Scheduler { return sched.NewFirstMoverAttack() }},
		{name: "location-oblivious-eager", n: 3, regs: 3,
			mk: func() sched.Scheduler { return sched.NewEagerWriteAttack() }},
		{name: "adaptive-spoiler", n: 4, regs: 4, cheap: true,
			mk: func() sched.Scheduler { return sched.NewAdaptiveSpoiler() }},
	}
}

func (c equivCase) config(f *register.File, log *trace.Log, seed uint64) Config {
	return Config{
		N: c.n, File: f, Scheduler: c.mk(), Seed: seed,
		Trace: log, CheapCollect: c.cheap, CrashAfter: c.crash,
	}
}

// runEquivNew runs the production engine on equivBody.
func runEquivNew(t *testing.T, c equivCase, seed uint64) (*Result, *trace.Log) {
	t.Helper()
	f := register.NewFile()
	a := f.Alloc(c.regs, "arr")
	log := trace.New()
	res, err := Run(c.config(f, log, seed), func(e *Env) value.Value { return equivBody(e, a) })
	if err != nil {
		t.Fatalf("%s: new engine: %v", c.name, err)
	}
	return res, log
}

// runEquivChan runs the preserved channel engine on equivBody.
func runEquivChan(t *testing.T, c equivCase, seed uint64) (*Result, *trace.Log) {
	t.Helper()
	f := register.NewFile()
	a := f.Alloc(c.regs, "arr")
	log := trace.New()
	res, err := chanRun(c.config(f, log, seed), func(e *chanEnv) value.Value { return equivBody(e, a) })
	if err != nil {
		t.Fatalf("%s: chan engine: %v", c.name, err)
	}
	return res, log
}

// diffTraces fails the test at the first event mismatch.
func diffTraces(t *testing.T, name string, want, got []trace.Event) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: trace diverges at event %d:\n  want: %s\n  got:  %s", name, i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: trace length %d, want %d (first %d events agree)", name, len(got), len(want), n)
	}
}

func diffResults(t *testing.T, name string, want, got *Result) {
	t.Helper()
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("%s: results differ:\n  want: %s\n  got:  %s", name, wj, gj)
	}
}

func goldenPaths(name string) (tracePath, resultPath string) {
	return filepath.Join("testdata", "equiv_"+name+".trace.json"),
		filepath.Join("testdata", "equiv_"+name+".result.json")
}

// TestTraceGolden locks the engine to the recorded semantics of the channel
// engine: same seed ⇒ bit-identical trace and Result.
func TestTraceGolden(t *testing.T) {
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			res, log := runEquivNew(t, c, 0xC0FFEE)
			tracePath, resultPath := goldenPaths(c.name)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				tf, err := os.Create(tracePath)
				if err != nil {
					t.Fatal(err)
				}
				if err := log.WriteJSON(tf); err != nil {
					t.Fatal(err)
				}
				if err := tf.Close(); err != nil {
					t.Fatal(err)
				}
				rj, err := json.MarshalIndent(res, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(resultPath, append(rj, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			tf, err := os.Open(tracePath)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden to create): %v", err)
			}
			defer tf.Close()
			want, err := trace.ReadJSON(tf)
			if err != nil {
				t.Fatal(err)
			}
			diffTraces(t, c.name, want.Events(), log.Events())
			rj, err := os.ReadFile(resultPath)
			if err != nil {
				t.Fatal(err)
			}
			var wantRes Result
			if err := json.Unmarshal(rj, &wantRes); err != nil {
				t.Fatal(err)
			}
			diffResults(t, c.name, &wantRes, res)
		})
	}
}

// TestEngineMatchesChanEngine diffs the production engine against the live
// channel engine over a seed sweep — broader coverage than the fixed-seed
// goldens, including schedulers' random streams.
func TestEngineMatchesChanEngine(t *testing.T) {
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 25; seed++ {
				wantRes, wantLog := runEquivChan(t, c, seed)
				gotRes, gotLog := runEquivNew(t, c, seed)
				name := fmt.Sprintf("%s/seed=%d", c.name, seed)
				diffTraces(t, name, wantLog.Events(), gotLog.Events())
				diffResults(t, name, wantRes, gotRes)
			}
		})
	}
}
