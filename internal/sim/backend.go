package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// The simulated environment must satisfy the object model's Env contract.
var _ core.Env = (*Env)(nil)

// backend adapts the simulator to the backend-neutral exec contract. The
// adapter's only per-run cost is one closure per program; the step loop is
// untouched, so the seam adds no per-step allocations or indirection (the
// zero-alloc and speedup pins in engine_bench_test.go hold on this path).
type backend struct{}

// Backend returns the simulator as an exec.Backend.
func Backend() exec.Backend { return backend{} }

// Name implements exec.Backend.
func (backend) Name() string { return "sim" }

// Capabilities implements exec.Backend: the simulator has full adversary
// control, deterministic replay, trace recording, a genuinely resettable
// engine behind NewSession (0 allocs/trial after warmup), and native batch
// execution (session.RunBatch drives the reused engine across a lane of
// seeds); its clock is simulated steps, not wall time.
func (backend) Capabilities() exec.Capabilities {
	return exec.Capabilities{
		Adversary: true, Tracing: true, Deterministic: true, Reusable: true, Batched: true,
		Semantics: register.SetOf(register.Atomic, register.Regular, register.Interposed),
	}
}

// session adapts one Engine plus a once-compiled fault injector to the
// exec.Session seam.
type session struct {
	eng *Engine
	inj *fault.Injector
}

// NewSession implements exec.Backend with the native reusable Engine: one
// construction (registers snapshot, coroutines, buffers, program closures,
// fault compilation) serves every subsequent Run. The simulator mutates
// cfg.File during execution, so the session restores the file's initial
// image on every Run — a one-shot fallback would corrupt trial k+1 with
// trial k's leftover registers, which is why sim uses the Engine here
// rather than exec.NewOneShotSession.
func (backend) NewSession(cfg exec.Config, programs ...exec.Program) (exec.Session, error) {
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler (the sim backend requires an explicit adversary)")
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.N); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	// Thresholds and probabilities are seed-independent; Engine.Reset
	// rewinds the fault streams to each trial's seed, so one compile serves
	// the whole session. (Stall plans are legal here even without a config
	// context — Engine.Run demands a per-trial context for them instead.)
	inj, err := fault.Compile(cfg.Faults, cfg.N, 0)
	if err != nil {
		return nil, err
	}
	progs := make([]Program, len(programs))
	for i, p := range programs {
		p := p
		progs[i] = func(e *Env) value.Value { return p(e) }
	}
	eng, err := NewEngine(Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Trace:        cfg.Trace,
		CheapCollect: cfg.CheapCollect,
		Registers:    cfg.Registers,
		MaxSteps:     cfg.MaxSteps,
		Meter:        cfg.Meter,
	}, progs...)
	if err != nil {
		return nil, err
	}
	return &session{eng: eng, inj: inj}, nil
}

// Run implements exec.Session: Reset rewinds the engine (and the injector's
// fault streams) to seed, then one trial runs under ctx. The result is
// engine-owned and invalidated by the next Run.
func (s *session) Run(ctx context.Context, seed uint64) (*exec.Result, error) {
	if err := s.eng.Reset(seed, s.inj); err != nil {
		return nil, err
	}
	return s.eng.Run(ctx)
}

// RunBatch implements exec.BatchSession on the reused engine: one
// Reset+Run pair per seed, in order, so a lane of K trials is bit-identical
// to K consecutive Run calls by construction. Per-trial errors (step limit,
// cancellation) arrive through emit; a Reset failure (closed or poisoned
// engine) ends the batch, since no later trial could run either.
func (s *session) RunBatch(ctx context.Context, seeds []uint64, begin func(k int) error, emit func(k int, res *exec.Result, err error) bool) error {
	for k, seed := range seeds {
		if begin != nil {
			if err := begin(k); err != nil {
				if !emit(k, nil, err) {
					return nil
				}
				continue
			}
		}
		if err := s.eng.Reset(seed, s.inj); err != nil {
			return err
		}
		res, err := s.eng.Run(ctx)
		if !emit(k, res, err) {
			return nil
		}
	}
	return nil
}

// Close implements exec.Session.
func (s *session) Close() error { return s.eng.Close() }

// laneSession adapts a LaneEngine plus a once-compiled fault injector to the
// exec.Session/exec.BatchSession seams — the op-coded counterpart of
// session, for callers that hand-write LanePrograms (the trial benchmarks,
// the lane cells in modcon-bench).
type laneSession struct {
	eng *LaneEngine
	inj *fault.Injector
}

// NewLaneSession builds a batch-capable session on the op-coded LaneEngine:
// the same validation and one-time fault compilation as NewSession, with
// LaneProc state machines in place of program coroutines. cfg.Trace must be
// nil (lanes are traceless; traced cells use NewSession).
func NewLaneSession(cfg exec.Config, programs ...LaneProgram) (exec.BatchSession, error) {
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler (the sim backend requires an explicit adversary)")
	}
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(cfg.N); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	inj, err := fault.Compile(cfg.Faults, cfg.N, 0)
	if err != nil {
		return nil, err
	}
	eng, err := NewLaneEngine(Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Trace:        cfg.Trace,
		CheapCollect: cfg.CheapCollect,
		Registers:    cfg.Registers,
		MaxSteps:     cfg.MaxSteps,
		Meter:        cfg.Meter,
	}, programs...)
	if err != nil {
		return nil, err
	}
	return &laneSession{eng: eng, inj: inj}, nil
}

// Run implements exec.Session on the lane engine.
func (s *laneSession) Run(ctx context.Context, seed uint64) (*exec.Result, error) {
	if err := s.eng.Reset(seed, s.inj); err != nil {
		return nil, err
	}
	return s.eng.Run(ctx)
}

// RunBatch implements exec.BatchSession on the lane engine.
func (s *laneSession) RunBatch(ctx context.Context, seeds []uint64, begin func(k int) error, emit func(k int, res *exec.Result, err error) bool) error {
	for k, seed := range seeds {
		if begin != nil {
			if err := begin(k); err != nil {
				if !emit(k, nil, err) {
					return nil
				}
				continue
			}
		}
		if err := s.eng.Reset(seed, s.inj); err != nil {
			return err
		}
		res, err := s.eng.Run(ctx)
		if !emit(k, res, err) {
			return nil
		}
	}
	return nil
}

// Close implements exec.Session.
func (s *laneSession) Close() error { return s.eng.Close() }

// Run implements exec.Backend by bridging exec.Program (written against
// core.Env) onto the simulator's concrete *Env programs.
func (backend) Run(cfg exec.Config, programs ...exec.Program) (*exec.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler (the sim backend requires an explicit adversary)")
	}
	inj, err := fault.Compile(cfg.Faults, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	progs := make([]Program, len(programs))
	for i, p := range programs {
		p := p
		progs[i] = func(e *Env) value.Value { return p(e) }
	}
	return Run(Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Trace:        cfg.Trace,
		CheapCollect: cfg.CheapCollect,
		Registers:    cfg.Registers,
		Faults:       inj,
		MaxSteps:     cfg.MaxSteps,
		Context:      cfg.Context,
		Meter:        cfg.Meter,
	}, progs...)
}
