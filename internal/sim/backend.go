package sim

import (
	"errors"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/value"
)

// The simulated environment must satisfy the object model's Env contract.
var _ core.Env = (*Env)(nil)

// backend adapts the simulator to the backend-neutral exec contract. The
// adapter's only per-run cost is one closure per program; the step loop is
// untouched, so the seam adds no per-step allocations or indirection (the
// zero-alloc and speedup pins in engine_bench_test.go hold on this path).
type backend struct{}

// Backend returns the simulator as an exec.Backend.
func Backend() exec.Backend { return backend{} }

// Name implements exec.Backend.
func (backend) Name() string { return "sim" }

// Capabilities implements exec.Backend: the simulator has full adversary
// control, deterministic replay, and trace recording; its clock is
// simulated steps, not wall time.
func (backend) Capabilities() exec.Capabilities {
	return exec.Capabilities{Adversary: true, Tracing: true, Deterministic: true}
}

// Run implements exec.Backend by bridging exec.Program (written against
// core.Env) onto the simulator's concrete *Env programs.
func (backend) Run(cfg exec.Config, programs ...exec.Program) (*exec.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler (the sim backend requires an explicit adversary)")
	}
	inj, err := fault.Compile(cfg.Faults, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	progs := make([]Program, len(programs))
	for i, p := range programs {
		p := p
		progs[i] = func(e *Env) value.Value { return p(e) }
	}
	return Run(Config{
		N:            cfg.N,
		File:         cfg.File,
		Scheduler:    cfg.Scheduler,
		Seed:         cfg.Seed,
		Trace:        cfg.Trace,
		CheapCollect: cfg.CheapCollect,
		Faults:       inj,
		MaxSteps:     cfg.MaxSteps,
		Context:      cfg.Context,
		Meter:        cfg.Meter,
	}, progs...)
}
