package sim

// Crash-injection semantics under the coroutine engine. The model (§2): a
// crashed process's final operation takes effect, the process never observes
// the result, and the adversary never schedules it again. These tests pin
// all three properties on the trace itself, and diff the whole crash
// behavior (events and Result) against the preserved channel engine.

import (
	"fmt"
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// TestCrashNeverRescheduled asserts, from the trace, that a crashed process
// emits no event of any kind after its Crash marker, performed exactly its
// crash-limit of operations, and produced no decision.
func TestCrashNeverRescheduled(t *testing.T) {
	crash := map[int]int{0: 3, 2: 7}
	f := register.NewFile()
	a := f.Alloc(4, "arr")
	log := trace.New()
	res, err := Run(Config{
		N: 4, File: f, Scheduler: sched.NewUniformRandom(), Seed: 77,
		Trace: log, CrashAfter: crash, CheapCollect: true,
	}, func(e *Env) value.Value { return equivBody(e, a) })
	if err != nil {
		t.Fatal(err)
	}
	crashedAt := map[int]int{}
	for i, ev := range log.Events() {
		if ev.Kind == trace.Crash {
			if _, ok := crash[ev.PID]; !ok {
				t.Fatalf("unexpected crash of pid %d", ev.PID)
			}
			crashedAt[ev.PID] = i
		}
	}
	if len(crashedAt) != len(crash) {
		t.Fatalf("crash events for %v, want %v", crashedAt, crash)
	}
	for i, ev := range log.Events() {
		if at, ok := crashedAt[ev.PID]; ok && i > at {
			t.Fatalf("crashed pid %d active after its crash: event %d %s", ev.PID, i, ev)
		}
	}
	for pid, limit := range crash {
		if !res.Crashed[pid] || res.Halted[pid] {
			t.Fatalf("pid %d: crashed=%v halted=%v", pid, res.Crashed[pid], res.Halted[pid])
		}
		if res.Work[pid] != limit {
			t.Fatalf("pid %d work = %d, want crash limit %d", pid, res.Work[pid], limit)
		}
		if !res.Outputs[pid].IsNone() {
			t.Fatalf("pid %d has output %s after crash", pid, res.Outputs[pid])
		}
	}
}

// TestCrashLastOpTakesEffect crashes a writer on its very first operation
// and has a reader spin until the value lands: the crashed op must be
// visible in shared memory even though the writer never resumed.
func TestCrashLastOpTakesEffect(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	writer := func(e *Env) value.Value {
		e.Write(r, 123)
		t.Error("crashed writer resumed past its final op")
		return 0
	}
	reader := func(e *Env) value.Value {
		for {
			if v := e.Read(r); !v.IsNone() {
				return v
			}
		}
	}
	res, err := Run(Config{
		N: 2, File: f, Scheduler: sched.NewFixedOrder([]int{0, 1}), Seed: 1,
		CrashAfter: map[int]int{0: 1},
	}, writer, reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != 123 {
		t.Fatalf("survivor read %s, want the crashed process's final write 123", res.Outputs[1])
	}
}

// TestAllProcessesCrash drives every process to its crash limit: the run
// must terminate cleanly (no step limit, no hang) with nobody halted.
func TestAllProcessesCrash(t *testing.T) {
	f := register.NewFile()
	a := f.Alloc(3, "arr")
	res, err := Run(Config{
		N: 3, File: f, Scheduler: sched.NewRoundRobin(), Seed: 9,
		CrashAfter: map[int]int{0: 2, 1: 1, 2: 4},
	}, func(e *Env) value.Value { return equivBody(e, a) })
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != 2+1+4 {
		t.Fatalf("TotalWork = %d, want 7", res.TotalWork)
	}
	for pid := 0; pid < 3; pid++ {
		if !res.Crashed[pid] || res.Halted[pid] {
			t.Fatalf("pid %d: crashed=%v halted=%v", pid, res.Crashed[pid], res.Halted[pid])
		}
	}
}

// TestCrashMatchesChanEngine sweeps crash patterns and seeds and requires
// the coroutine engine's crash behavior — trace events and Result — to be
// bit-identical to the channel engine's.
func TestCrashMatchesChanEngine(t *testing.T) {
	patterns := []map[int]int{
		{0: 1},
		{1: 5},
		{0: 3, 2: 7},
		{0: 2, 1: 2, 2: 2, 3: 2},
	}
	for pi, crash := range patterns {
		for seed := uint64(1); seed <= 10; seed++ {
			c := equivCase{
				name: fmt.Sprintf("crash-pattern-%d", pi), n: 4, regs: 4,
				cheap: pi%2 == 0, crash: crash,
				mk: func() sched.Scheduler { return sched.NewUniformRandom() },
			}
			wantRes, wantLog := runEquivChan(t, c, seed)
			gotRes, gotLog := runEquivNew(t, c, seed)
			name := fmt.Sprintf("%s/seed=%d", c.name, seed)
			diffTraces(t, name, wantLog.Events(), gotLog.Events())
			diffResults(t, name, wantRes, gotRes)
		}
	}
}
