package sim

import (
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// Env is a process's handle on the shared-memory world. Every method that
// touches shared memory suspends the process's coroutine until the adversary
// schedules the operation; coin methods are local, free, and invisible to
// weak adversaries.
//
// An Env belongs to exactly one process coroutine and must not be shared.
type Env struct {
	pid   int
	n     int
	cheap bool
	coins *xrand.Source
	log   *trace.Log
	// yield publishes a pending operation and suspends the coroutine; it
	// returns false when the engine is tearing the process down.
	yield func(request) bool
	// resp points at the engine-side response slot for this process; it is
	// valid exactly when yield has just returned true.
	resp *response
	// collectBuf backs non-cheap Collect results; see Collect's contract.
	collectBuf []value.Value
}

// PID returns this process's id in [0, N).
func (e *Env) PID() int { return e.pid }

// N returns the number of processes.
func (e *Env) N() int { return e.n }

// CheapCollect reports whether the cheap-collect cost model is active.
func (e *Env) CheapCollect() bool { return e.cheap }

// Read performs an atomic read of r. Cost: 1 operation.
func (e *Env) Read(r register.Reg) value.Value {
	resp := e.do(request{kind: sched.OpRead, reg: r})
	return resp.val
}

// Write performs an atomic write of v to r. Cost: 1 operation.
func (e *Env) Write(r register.Reg, v value.Value) {
	e.do(request{kind: sched.OpWrite, reg: r, val: v})
}

// ProbWrite attempts to write v to r; the write takes effect with
// probability min(1, num/den), decided by a coin the adversary can neither
// observe in advance nor veto (§2.1, the probabilistic-write model of
// Abrahamson as used by Chor–Israeli–Li and Cheung). Cost: 1 operation
// whether or not the write takes effect.
//
// The return value reports success. Whether a protocol is allowed to *use*
// it is a modeling choice (footnote 2 of the paper); the paper's default
// protocols ignore it, and the detection ablation measures the difference.
func (e *Env) ProbWrite(r register.Reg, v value.Value, num, den uint64) bool {
	resp := e.do(request{kind: sched.OpProbWrite, reg: r, val: v, num: num, den: den})
	return resp.ok
}

// Collect atomically reads a register array. Under the cheap-collect model
// it costs 1 operation; otherwise it is performed as arr.Len individual
// reads (cost arr.Len, with scheduling points between reads, i.e. *not*
// atomic — exactly the distinction §6.2 draws).
//
// Copy-on-escape: the returned slice is backed by a buffer the runtime
// reuses, and is valid only until this process's next Env operation.
// Protocols that consume the collect immediately (the normal shape — every
// construction in this repo iterates over it right away) need no copy;
// anything that retains the slice across a subsequent Read/Write/ProbWrite/
// Collect must copy it first.
func (e *Env) Collect(arr register.Array) []value.Value {
	if e.cheap {
		resp := e.do(request{kind: sched.OpCollect, arr: arr})
		return resp.vals
	}
	e.collectBuf = e.collectBuf[:0]
	for i := 0; i < arr.Len; i++ {
		e.collectBuf = append(e.collectBuf, e.Read(arr.At(i)))
	}
	return e.collectBuf
}

// CoinUint64 flips 64 local coin bits. Cost: 0.
func (e *Env) CoinUint64() uint64 {
	v := e.coins.Uint64()
	if e.log != nil {
		e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: value.Value(int64(v >> 1))})
	}
	return v
}

// CoinBool flips one fair local coin. Cost: 0.
func (e *Env) CoinBool() bool {
	v := e.coins.Bool()
	if e.log != nil {
		bit := value.Value(0)
		if v {
			bit = 1
		}
		e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: bit})
	}
	return v
}

// CoinIntn returns a uniform local random integer in [0, n). Cost: 0.
func (e *Env) CoinIntn(n int) int {
	v := e.coins.Intn(n)
	if e.log != nil {
		e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Coin, Val: value.Value(v)})
	}
	return v
}

// MarkInvoke annotates the trace with the start of an operation on a
// deciding object. Cost: 0.
func (e *Env) MarkInvoke(label string, v value.Value) {
	if e.log != nil {
		e.log.Append(trace.Event{Step: -1, PID: e.pid, Kind: trace.Invoke, Label: label, Val: v})
	}
}

// MarkReturn annotates the trace with the result of an operation on a
// deciding object. Cost: 0.
func (e *Env) MarkReturn(label string, d value.Decision) {
	if e.log != nil {
		e.log.Append(trace.Event{
			Step: -1, PID: e.pid, Kind: trace.Return,
			Label: label, Val: d.V, Decided: d.Decided,
		})
	}
}

// do publishes a pending operation, suspends the coroutine until the
// runtime executes the operation, and returns the runtime's response. A
// false yield means the runtime is unwinding this process for good
// (Engine.Close); an abort response means Engine.Reset is unwinding just
// the current trial, recovered at the trial boundary so the coroutine can
// park and serve the next one.
func (e *Env) do(req request) response {
	if !e.yield(req) {
		panic(errKilled)
	}
	if e.resp.abort {
		panic(errTrialAbort)
	}
	return *e.resp
}
