package sim

// Step-loop microbenchmarks for the coroutine engine, across every adversary
// power class and a range of process counts, plus the preserved channel
// engine as the comparison baseline (see chanengine_test.go). These are the
// numbers behind DESIGN.md §"Step engine" and BENCH_sim.json; regenerate
// with:
//
//	go test ./internal/sim -bench StepLoop -benchmem
//
// The workload is a tight write/read/probwrite loop — one scheduled
// operation per step, no protocol logic — so the measurement isolates the
// runtime's per-step cost: view building, scheduler call, op execution, and
// process switch.

import (
	"errors"
	"fmt"
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// powerRR is a round-robin scheduler that declares an arbitrary MinPower, so
// benchmarks exercise each power's view-building path (op restriction,
// memory image) without attack-strategy logic muddying the step cost.
type powerRR struct {
	power sched.Power
	inner *sched.RoundRobin
}

func (s *powerRR) Next(v *sched.View) int { return s.inner.Next(v) }
func (s *powerRR) Seed(src *xrand.Source) { s.inner.Seed(src) }
func (s *powerRR) Name() string           { return "bench-" + s.power.String() }
func (s *powerRR) MinPower() sched.Power  { return s.power }

// benchPowers lists every adversary power class.
var benchPowers = []sched.Power{
	sched.Oblivious, sched.ValueOblivious, sched.LocationOblivious, sched.Adaptive,
}

// benchNs is the process-count sweep.
var benchNs = []int{2, 16, 256}

// benchBody is the per-process workload, written generically so the same
// loop drives both engines.
func benchBody[E interface {
	PID() int
	Read(register.Reg) value.Value
	Write(register.Reg, value.Value)
	ProbWrite(register.Reg, value.Value, uint64, uint64) bool
}](e E, a register.Array) value.Value {
	r := a.At(e.PID() % a.Len)
	for i := 0; ; i++ {
		e.Write(r, value.Value(i))
		e.Read(r)
		e.ProbWrite(r, value.Value(i), 1, 2)
	}
}

func benchConfig(power sched.Power, n, steps int, f *register.File) Config {
	return Config{
		N: n, File: f, Scheduler: &powerRR{power: power, inner: sched.NewRoundRobin()},
		Seed: 1, MaxSteps: steps,
	}
}

// runStepLoop runs the coroutine engine for exactly `steps` scheduled
// operations and reports the observed step count.
func runStepLoop(power sched.Power, n, steps int) (int, error) {
	f := register.NewFile()
	a := f.Alloc(n, "bench")
	res, err := Run(benchConfig(power, n, steps, f),
		func(e *Env) value.Value { return benchBody(e, a) })
	if err != nil && !errors.Is(err, ErrStepLimit) {
		return 0, err
	}
	return res.TotalWork, nil
}

// runStepLoopChan is runStepLoop on the preserved channel engine.
func runStepLoopChan(power sched.Power, n, steps int) (int, error) {
	f := register.NewFile()
	a := f.Alloc(n, "bench")
	res, err := chanRun(benchConfig(power, n, steps, f),
		func(e *chanEnv) value.Value { return benchBody(e, a) })
	if err != nil && !errors.Is(err, ErrStepLimit) {
		return 0, err
	}
	return res.TotalWork, nil
}

// BenchmarkStepLoop measures ns/step and allocs/step of the coroutine
// engine; b.N counts scheduled operations.
func BenchmarkStepLoop(b *testing.B) {
	for _, power := range benchPowers {
		for _, n := range benchNs {
			b.Run(fmt.Sprintf("%s/n=%d", power, n), func(b *testing.B) {
				b.ReportAllocs()
				work, err := runStepLoop(power, n, b.N)
				if err != nil {
					b.Fatal(err)
				}
				if work != b.N {
					b.Fatalf("executed %d steps, want %d", work, b.N)
				}
			})
		}
	}
}

// BenchmarkStepLoopChanEngine is the channel-engine baseline the rewrite is
// measured against.
func BenchmarkStepLoopChanEngine(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("oblivious/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			work, err := runStepLoopChan(sched.Oblivious, n, b.N)
			if err != nil {
				b.Fatal(err)
			}
			if work != b.N {
				b.Fatalf("executed %d steps, want %d", work, b.N)
			}
		})
	}
}

// TestStepLoopZeroAllocs pins the headline property of the rewrite: with
// tracing off, the steady-state step path performs zero allocations per
// step for the powers that don't serve a memory image (oblivious,
// value-oblivious). Per-run setup (coroutines, buffers, rand streams) is
// amortized by the step count and must round to zero.
func TestStepLoopZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs a long run")
	}
	for _, power := range []sched.Power{sched.Oblivious, sched.ValueOblivious} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if _, err := runStepLoop(power, 16, b.N); err != nil {
				b.Fatal(err)
			}
		})
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s/n=16: %d allocs/step, want 0 (%s)", power, a, r.MemString())
		}
	}
}

// TestStepEngineSpeedup is a regression tripwire for the rewrite's point:
// the coroutine switch must stay well ahead of the goroutine+channel
// handoff it replaced. The recorded speedup (see DESIGN.md; ≥3x required,
// >5x typical) is measured by the benchmarks above; this guard asserts a
// deliberately loose 2x so machine noise can't flake the suite.
func TestStepEngineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison needs a long run")
	}
	const steps = 300_000
	coro := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runStepLoop(sched.Oblivious, 16, steps); err != nil {
				b.Fatal(err)
			}
		}
	})
	chan_ := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := runStepLoopChan(sched.Oblivious, 16, steps); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(chan_.NsPerOp()) / float64(coro.NsPerOp())
	t.Logf("oblivious n=16: coroutine %.1f ns/step, channel %.1f ns/step, speedup %.2fx",
		float64(coro.NsPerOp())/steps, float64(chan_.NsPerOp())/steps, ratio)
	if ratio < 2 {
		t.Errorf("coroutine engine only %.2fx faster than channel engine, want ≥2x (≥3x expected)", ratio)
	}
}
