package sim

// The lane engine: batched trial execution without coroutines.
//
// Engine already amortizes per-trial *construction* (registers, RNG state,
// buffers) across trials, but every scheduled operation still pays one
// iter.Pull coroutine round trip — measured at ~131ns on its own, roughly
// half the cost of a step. A lane replaces the coroutine with an op-coded
// state machine: the process publishes its next operation by *returning*
// from LaneProc.Step instead of suspending inside an Env call, so the
// dispatch loop is a plain function call with no stack switch. Everything
// else — scheduler views, fault thresholds, RNG stream derivation, crash
// and stall semantics, work accounting — is mirrored from Engine statement
// for statement, which is what makes lane execution bit-identical to
// coroutine execution for equivalent programs (pinned by the differential
// tests in lane_test.go).
//
// A LaneEngine runs the trials of a lane strictly sequentially, exactly as
// a pooled Engine does; "lane" refers to the batch seam (exec.BatchSession)
// through which K trials arrive as one call and share all per-trial
// machinery, not to any interleaving of trials.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// LaneOp is one pending shared-memory operation published by an op-coded
// process: the state-machine analogue of the coroutine request an Env call
// would publish. Kind selects the operation; Reg/Val/Num/Den/Arr carry its
// operands exactly as the corresponding Env method would (Arr only for
// OpCollect, Num/Den only for OpProbWrite).
type LaneOp struct {
	Kind sched.OpKind
	Reg  register.Reg
	Arr  register.Array
	Val  value.Value
	Num  uint64
	Den  uint64
}

// LaneEnv is an op-coded process's view of the world. The engine writes the
// response slots (RVal, ROK, RVals) before resuming the process; the process
// writes the publication slots (Op on a true return from Step, Out on a
// false one). Coin methods are local, free, and draw from the same
// seed-derived stream as Env's, in the same order — an op-coded program that
// flips coins at the same points as its closure twin sees identical coins.
//
// RVals, like Env.Collect's result, is backed by an engine-owned buffer that
// is reused on the next collect; copy on escape.
//
// A LaneEnv belongs to exactly one process and must not be shared.
type LaneEnv struct {
	pid   int
	n     int
	cheap bool
	coins *xrand.Source

	// Response slots, engine-written before each Step: the result of the
	// operation the process published on its previous Step.
	RVal  value.Value   // OpRead: the value read
	ROK   bool          // OpProbWrite: whether the write took effect
	RVals []value.Value // OpCollect: the snapshot (engine-owned, reused)

	// Publication slots, process-written before Step returns.
	Op  LaneOp      // the next operation, when Step returns true
	Out value.Value // the decision value, when Step returns false
}

// PID returns this process's id in [0, N).
func (e *LaneEnv) PID() int { return e.pid }

// N returns the number of processes.
func (e *LaneEnv) N() int { return e.n }

// CheapCollect reports whether the cheap-collect cost model is active.
// Op-coded programs must honor it exactly as Env.Collect does: publish
// OpCollect only under the cheap model, and issue arr.Len individual OpReads
// otherwise.
func (e *LaneEnv) CheapCollect() bool { return e.cheap }

// CoinUint64 flips 64 local coin bits. Cost: 0.
func (e *LaneEnv) CoinUint64() uint64 { return e.coins.Uint64() }

// CoinBool flips one fair local coin. Cost: 0.
func (e *LaneEnv) CoinBool() bool { return e.coins.Bool() }

// CoinIntn returns a uniform local random integer in [0, n). Cost: 0.
func (e *LaneEnv) CoinIntn(n int) int { return e.coins.Intn(n) }

// LaneProc is one op-coded process: an explicit state machine over the
// program's scheduling points. Reset rewinds it to the top of its program;
// Step either publishes the next pending operation in e.Op and returns true,
// or halts with the decision value in e.Out and returns false. Between the
// two calls the engine executes the published operation and fills e's
// response slots, so Step's first action is typically to consume the
// response of the operation it published last time.
//
// The contract is exactly the coroutine contract with the suspension turned
// inside out; a LaneProc whose operation/coin sequence matches a closure
// Program produces bit-identical executions (the differential tests pin
// this for the workload twins in lane_test.go).
type LaneProc interface {
	Reset()
	Step(e *LaneEnv) bool
}

// LaneProgram constructs the LaneProc for one process, the op-coded
// analogue of a Program closure. It is called once per process at engine
// construction; Reset, not reconstruction, begins each trial.
type LaneProgram func(pid, n int) LaneProc

// laneProc is the engine-side state of one op-coded process.
type laneProc struct {
	lp      LaneProc
	env     LaneEnv
	pending LaneOp
	hasOp   bool
	halted  bool
	crashed bool
	stalled bool
}

// LaneEngine is the op-coded mirror of Engine: a reusable simulator for one
// (lane programs, scheduler, config) cell whose processes are LaneProc state
// machines instead of coroutines, removing the coroutine round trip from
// every scheduled operation. Usage, ownership, and poisoning semantics are
// identical to Engine's: Reset-then-Run once per trial, results are
// engine-owned, a panicking trial poisons the engine.
//
// Lanes are traceless: NewLaneEngine rejects configs with a trace log (the
// coroutine engine's free-event interleaving has no counterpart here, and
// traced cells fall back to pooled sessions in the harness).
//
// A LaneEngine is not safe for concurrent use.
type LaneEngine struct {
	cfg      Config
	power    sched.Power
	maxSteps int
	procs    []laneProc

	// image is the register file's post-construction contents; Reset
	// restores it so trial k+1 sees exactly the memory trial k started from.
	image []value.Value

	// Per-trial RNG streams, reseeded in place by Reset with the shared
	// exec derivation (same streams a fresh run would build).
	root     xrand.Source
	schedSrc xrand.Source
	coinSrc  []xrand.Source
	probSrc  []xrand.Source

	// baseCrashAt is the dense flattening of cfg.CrashAfter (maxInt =
	// never); crashAt is the per-trial merge with the injector's
	// thresholds. stallAt/stepCrashAt are valid only while faulty.
	baseCrashAt []int
	crashAt     []int
	stallAt     []int
	stepCrashAt []int

	inj      *fault.Injector
	faulty   bool
	needCtx  bool
	stalledN int

	result     *Result
	stalledBuf []bool
	steps      int

	meter *obs.Meter

	ctx     context.Context
	ctxDone <-chan struct{}

	// Scheduler view state, maintained incrementally exactly as in Engine.
	view       sched.View
	runnable   []int
	memBuf     []value.Value
	collectBuf []value.Value

	armed    bool
	poisoned bool
	closed   bool
}

// NewLaneEngine validates cfg, broadcasts lane programs (1 or N), snapshots
// the register file's initial image, and constructs the per-process state
// machines. cfg.Seed, cfg.Faults, and cfg.Context are ignored (per-trial;
// see Reset and Run). cfg.Trace must be nil.
func NewLaneEngine(cfg Config, programs ...LaneProgram) (*LaneEngine, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return nil, errors.New("sim: nil register file")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	if cfg.Trace != nil {
		return nil, errors.New("sim: lane engines are traceless (use Engine for traced cells)")
	}
	if cfg.Registers != register.Atomic {
		// Lanes are pinned bit-identical to the coroutine engine by the
		// differential suite, which covers only the atomic model so far; the
		// harness routes non-atomic cells to pooled Engine sessions instead.
		return nil, fmt.Errorf("sim: lane engines support only atomic registers (got %v; use Engine for %v cells)", cfg.Registers, cfg.Registers)
	}
	switch len(programs) {
	case cfg.N:
		ps := make([]LaneProgram, cfg.N)
		copy(ps, programs)
		programs = ps
	case 1:
		one := programs[0]
		programs = make([]LaneProgram, cfg.N)
		for i := range programs {
			programs[i] = one
		}
	default:
		return nil, fmt.Errorf("sim: got %d lane programs for %d processes", len(programs), cfg.N)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	eng := &LaneEngine{
		cfg:         cfg,
		power:       cfg.Scheduler.MinPower(),
		maxSteps:    maxSteps,
		procs:       make([]laneProc, cfg.N),
		image:       cfg.File.Contents(),
		coinSrc:     make([]xrand.Source, cfg.N),
		probSrc:     make([]xrand.Source, cfg.N),
		baseCrashAt: make([]int, cfg.N),
		crashAt:     make([]int, cfg.N),
		stallAt:     make([]int, cfg.N),
		stepCrashAt: make([]int, cfg.N),
		result:      exec.NewResult(cfg.N),
		stalledBuf:  make([]bool, cfg.N),
		meter:       cfg.Meter,
		runnable:    make([]int, 0, cfg.N),
	}
	eng.view = sched.View{Power: eng.power, N: cfg.N, Pending: make([]sched.Op, cfg.N)}
	for pid := range eng.baseCrashAt {
		eng.baseCrashAt[pid] = maxInt
	}
	for pid, limit := range cfg.CrashAfter {
		if pid >= 0 && pid < cfg.N {
			eng.baseCrashAt[pid] = limit
		}
	}
	for pid := 0; pid < cfg.N; pid++ {
		p := &eng.procs[pid]
		p.lp = programs[pid](pid, cfg.N)
		p.env = LaneEnv{
			pid:   pid,
			n:     cfg.N,
			cheap: cfg.CheapCollect,
			coins: &eng.coinSrc[pid],
		}
	}
	return eng, nil
}

// Reset rewinds the engine to run one trial with the given seed and compiled
// fault injector (nil for a fault-free trial): it restores the register
// image, rewinds the injector's and the engine's RNG streams, re-seeds the
// scheduler, resets every state machine, and zeroes the result — the same
// sequence Engine.Reset performs, minus the coroutine unwinding a state
// machine does not need.
func (eng *LaneEngine) Reset(seed uint64, faults *fault.Injector) error {
	if eng.closed {
		return errors.New("sim: Reset on closed lane engine")
	}
	if eng.poisoned {
		return exec.ErrSessionPoisoned
	}
	// Restore the shared registers to their post-construction image.
	if err := eng.cfg.File.Restore(eng.image); err != nil {
		eng.poisoned = true
		return fmt.Errorf("sim: %v: %w", err, exec.ErrSessionPoisoned)
	}
	// Install and rewind the fault plane. Thresholds are seed-independent;
	// only the delay/lost-coin streams depend on the seed.
	eng.inj = faults
	eng.faulty = faults != nil
	eng.needCtx = faults.HasStall()
	faults.Reseed(seed)
	copy(eng.crashAt, eng.baseCrashAt)
	if eng.faulty {
		for pid := 0; pid < eng.cfg.N; pid++ {
			eng.crashAt[pid] = min(eng.crashAt[pid], faults.CrashAt(pid))
			eng.stallAt[pid] = faults.StallAt(pid)
			eng.stepCrashAt[pid] = faults.CrashStep(pid)
		}
	}
	// Rewind every RNG stream in place — bit-identical to the streams a
	// fresh run (or Engine.Reset) derives for the same seed.
	eng.root.Reseed(seed)
	eng.root.SplitInto(&eng.schedSrc, 0)
	eng.cfg.Scheduler.Seed(&eng.schedSrc)
	for pid := 0; pid < eng.cfg.N; pid++ {
		exec.ProcCoinsInto(&eng.coinSrc[pid], &eng.root, pid)
		exec.ProcProbInto(&eng.probSrc[pid], &eng.root, pid)
	}
	// Clear per-trial process, result, and view state.
	for pid := range eng.procs {
		p := &eng.procs[pid]
		p.pending = LaneOp{}
		p.hasOp = false
		p.halted = false
		p.crashed = false
		p.stalled = false
		p.env.RVal = value.None
		p.env.ROK = false
		p.env.RVals = nil
		p.env.Op = LaneOp{}
		p.env.Out = value.None
		p.lp.Reset()
	}
	res := eng.result
	for pid := range res.Outputs {
		res.Outputs[pid] = value.None
		res.Halted[pid] = false
		res.Crashed[pid] = false
		res.Work[pid] = 0
	}
	res.TotalWork = 0
	res.Steps = 0
	// Stalled stays nil for stall-free trials so results marshal identically
	// to Engine results (the slice is engine-owned and merely re-zeroed when
	// stall faults are in play).
	res.Stalled = nil
	if eng.needCtx {
		for i := range eng.stalledBuf {
			eng.stalledBuf[i] = false
		}
		res.Stalled = eng.stalledBuf
	}
	eng.steps = 0
	eng.stalledN = 0
	for i := range eng.view.Pending {
		eng.view.Pending[i] = sched.Op{}
	}
	eng.view.Step = 0
	eng.view.Memory = nil
	eng.runnable = eng.runnable[:0]
	eng.armed = true
	return nil
}

// Run executes the trial armed by the last Reset and returns the
// engine-owned result: its slices are invalidated by the next Reset, so
// callers that retain anything across trials must deep-copy first. ctx, if
// non-nil, cancels the execution between scheduled operations; trials whose
// injector contains stall faults require one. Each Reset arms exactly one
// Run.
func (eng *LaneEngine) Run(ctx context.Context) (*Result, error) {
	if eng.closed {
		return nil, errors.New("sim: Run on closed lane engine")
	}
	if eng.poisoned {
		return nil, exec.ErrSessionPoisoned
	}
	if !eng.armed {
		return nil, errors.New("sim: Run before Reset (arm each trial with Reset(seed, faults))")
	}
	eng.armed = false
	if eng.needCtx && ctx == nil {
		return nil, errors.New("sim: stall faults require a Context (a stalled process never halts; only cancellation ends the execution)")
	}
	eng.ctx = ctx
	eng.ctxDone = nil
	if ctx != nil {
		eng.ctxDone = ctx.Done()
	}
	// A panic anywhere below — a program panic, a scheduler contract
	// violation — escapes with engine state unknown; flag pessimistically
	// and clear on the normal return path.
	eng.poisoned = true
	// Gather the initial pending operation (or immediate halt) of each
	// process, in pid order. Threshold 0 fires before the first operation:
	// the process crashes or stalls having done nothing at all, and its
	// state machine is not stepped this trial.
	for pid := range eng.procs {
		if eng.crashAt[pid] <= 0 {
			eng.crash(pid)
			continue
		}
		if eng.faulty && eng.stallAt[pid] <= 0 {
			eng.stall(pid)
			continue
		}
		eng.resume(pid)
	}
	for pid := range eng.procs {
		p := &eng.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			eng.runnable = append(eng.runnable, pid)
			eng.view.Pending[pid] = eng.restrictOp(p.pending)
		}
	}
	err := eng.loop()
	eng.result.Steps = eng.steps
	eng.poisoned = false
	return eng.result, err
}

// RunLane runs one trial per seed, in order, on the reused engine: the
// lane-native bulk form of the Reset/Run pair, and what the sim backend's
// batch sessions are built on. emit receives each trial's engine-owned
// result (invalidated by the next trial) and returns false to stop the lane
// early. RunLane returns an error only when the engine itself can no longer
// run trials (closed or poisoned); per-trial errors arrive through emit.
func (eng *LaneEngine) RunLane(ctx context.Context, seeds []uint64, faults *fault.Injector, emit func(k int, res *Result, err error) bool) error {
	for k, seed := range seeds {
		if err := eng.Reset(seed, faults); err != nil {
			return err
		}
		res, err := eng.Run(ctx)
		if !emit(k, res, err) {
			return nil
		}
	}
	return nil
}

// Close retires the engine. With no coroutines to unwind this only marks
// the engine closed; it exists for symmetry with Engine.Close and must be
// called exactly once per engine (later calls are no-ops).
func (eng *LaneEngine) Close() error {
	eng.closed = true
	return nil
}

// loop drives the armed trial to completion or to the step limit. It is
// Engine.loop verbatim over op-coded processes.
func (rt *LaneEngine) loop() error {
	for {
		if len(rt.runnable) == 0 {
			if rt.stalledN == 0 {
				return nil // every process halted or crashed
			}
			// Only stalled processes remain: block until cancellation, as in
			// Engine.loop. Run validated that a context exists whenever stall
			// faults do.
			if rt.ctxDone == nil {
				return fmt.Errorf("sim: %d process(es) stalled with no context to interrupt the execution", rt.stalledN)
			}
			<-rt.ctxDone
			return fmt.Errorf("%w after %d steps (%d process(es) stalled): %w", ErrCancelled, rt.steps, rt.stalledN, context.Cause(rt.ctx))
		}
		if rt.steps >= rt.maxSteps {
			return fmt.Errorf("%w (limit %d, scheduler %q)", ErrStepLimit, rt.maxSteps, rt.cfg.Scheduler.Name())
		}
		if rt.ctxDone != nil {
			select {
			case <-rt.ctxDone:
				return fmt.Errorf("%w after %d steps: %w", ErrCancelled, rt.steps, context.Cause(rt.ctx))
			default:
			}
		}
		rt.view.Step = rt.steps
		rt.view.Runnable = rt.runnable
		switch rt.power {
		case sched.LocationOblivious, sched.Adaptive:
			rt.memBuf = rt.cfg.File.AppendContents(rt.memBuf[:0])
			rt.view.Memory = rt.memBuf
		}
		pid := rt.cfg.Scheduler.Next(&rt.view)
		if pid < 0 || pid >= rt.cfg.N || !rt.procs[pid].hasOp || rt.procs[pid].crashed {
			panic(fmt.Sprintf("sim: scheduler %q chose non-runnable pid %d", rt.cfg.Scheduler.Name(), pid))
		}
		rt.execute(pid)
		// Patch the view entry of the one process that moved.
		p := &rt.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			rt.view.Pending[pid] = rt.restrictOp(p.pending)
		} else {
			rt.view.Pending[pid] = sched.Op{}
			rt.dropRunnable(pid)
		}
	}
}

// dropRunnable removes pid from the ascending runnable list (called only
// when a process halts or crashes, so the O(n) shift is off the per-step
// path).
func (rt *LaneEngine) dropRunnable(pid int) {
	for i, p := range rt.runnable {
		if p == pid {
			rt.runnable = append(rt.runnable[:i], rt.runnable[i+1:]...)
			return
		}
	}
}

// execute applies pid's pending operation, then steps pid's state machine to
// obtain its next operation (unless pid crashes at this step). It mirrors
// Engine.execute exactly — same op semantics, same RNG draws, same fault
// checks in the same order — minus the trace branch lanes never take.
func (rt *LaneEngine) execute(pid int) {
	p := &rt.procs[pid]
	req := p.pending
	p.hasOp = false
	file := rt.cfg.File

	switch req.Kind {
	case sched.OpRead:
		p.env.RVal = file.Load(req.Reg)
	case sched.OpWrite:
		file.Store(req.Reg, req.Val)
	case sched.OpProbWrite:
		ok := rt.probSrc[pid].Bernoulli(req.Num, req.Den)
		if rt.faulty && rt.inj.LoseCoin(pid) {
			// The coin is lost in flight: the process's own coin stream was
			// consumed exactly as in a fault-free run, but the write is
			// suppressed and reported failed (see Engine.execute).
			ok = false
		}
		if ok {
			file.Store(req.Reg, req.Val)
		}
		p.env.ROK = ok
	case sched.OpCollect:
		rt.collectBuf = file.SnapshotAppend(rt.collectBuf[:0], req.Arr)
		p.env.RVals = rt.collectBuf
	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", req.Kind))
	}
	rt.result.Work[pid]++
	rt.result.TotalWork++
	rt.steps++
	if rt.meter != nil {
		rt.meter.AddSteps(1)
	}

	if rt.faulty {
		if d := rt.inj.OpDelay(pid); d > 0 {
			time.Sleep(d)
		}
	}

	// Crash checks run after the operation lands, exactly as in
	// Engine.execute: the last operation takes effect, but the process never
	// observes the result and is never stepped again this trial.
	if rt.result.Work[pid] >= rt.crashAt[pid] || (rt.faulty && rt.steps >= rt.stepCrashAt[pid]) {
		rt.crash(pid)
		return
	}
	if rt.faulty && rt.result.Work[pid] >= rt.stallAt[pid] {
		rt.stall(pid)
		return
	}

	rt.resume(pid)
}

// crash marks pid crashed, either after its last operation landed or before
// its first (threshold 0).
func (rt *LaneEngine) crash(pid int) {
	rt.procs[pid].crashed = true
	rt.result.Crashed[pid] = true
}

// stall freezes pid: not halted, not crashed — it holds its state forever
// and never takes another step (see Engine.stall).
func (rt *LaneEngine) stall(pid int) {
	rt.procs[pid].stalled = true
	rt.result.Stalled[pid] = true
	rt.stalledN++
}

// resume steps pid's state machine and records what comes back: the next
// pending operation (a true return, published in the env's Op slot) or the
// process's halt with its decision value (a false return). This is the whole
// replacement for the coroutine switch — one interface call, no stack
// transfer.
func (rt *LaneEngine) resume(pid int) {
	p := &rt.procs[pid]
	if p.lp.Step(&p.env) {
		p.pending = p.env.Op
		p.hasOp = true
		return
	}
	p.halted = true
	rt.result.Halted[pid] = true
	rt.result.Outputs[pid] = p.env.Out
}

// restrictOp projects a pending operation down to what rt.power permits the
// adversary to observe — Engine.restrictOp over LaneOp. The two must stay in
// lockstep; the differential tests cover every power to pin that.
func (rt *LaneEngine) restrictOp(req LaneOp) sched.Op {
	op := sched.Op{Valid: true, Reg: -1, Val: value.None}
	switch rt.power {
	case sched.Oblivious:
		// Liveness only.
	case sched.ValueOblivious:
		op.Kind = req.Kind
		op.Reg = req.Reg
		if req.Kind == sched.OpCollect {
			op.Reg = req.Arr.Base
		}
	case sched.LocationOblivious:
		op.Kind = req.Kind
		if req.Kind == sched.OpWrite || req.Kind == sched.OpProbWrite {
			op.Val = req.Val
		}
		op.ProbNum, op.ProbDen = req.Num, req.Den
	case sched.Adaptive:
		op.Kind = req.Kind
		op.Reg = req.Reg
		if req.Kind == sched.OpCollect {
			op.Reg = req.Arr.Base
		}
		if req.Kind == sched.OpWrite || req.Kind == sched.OpProbWrite {
			op.Val = req.Val
		}
		op.ProbNum, op.ProbDen = req.Num, req.Den
	default:
		panic(fmt.Sprintf("sim: unknown power %v", rt.power))
	}
	return op
}
