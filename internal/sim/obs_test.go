package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// runStepLoopMeter is runStepLoop with an explicit meter setting, driving the
// same benchBody workload.
func runStepLoopMeter(power sched.Power, n, steps int, m *obs.Meter) (*Result, error) {
	f := register.NewFile()
	a := f.Alloc(n, "bench")
	cfg := benchConfig(power, n, steps, f)
	cfg.Meter = m
	res, err := Run(cfg, func(e *Env) value.Value { return benchBody(e, a) })
	if err != nil && !errors.Is(err, ErrStepLimit) {
		return nil, err
	}
	return res, nil
}

// TestStepLoopZeroAllocsMeterOff pins the obs plane's zero-overhead-when-off
// contract on the sim hot path: with Config.Meter explicitly nil the step
// loop performs zero allocations per step, exactly as before the plane
// existed. (The ns/step side of the contract is covered by
// TestStepEngineSpeedup, which fails if the step path slows past its guard.)
func TestStepLoopZeroAllocsMeterOff(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs a long run")
	}
	for _, power := range []sched.Power{sched.Oblivious, sched.ValueOblivious} {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if _, err := runStepLoopMeter(power, 16, b.N, nil); err != nil {
				b.Fatal(err)
			}
		})
		if a := r.AllocsPerOp(); a != 0 {
			t.Errorf("%s/n=16 meter off: %d allocs/step, want 0 (%s)", power, a, r.MemString())
		}
	}
}

// TestStepLoopMeterCounts pins the enabled side: the meter sees exactly one
// tick per executed operation, metering performs no per-step allocations
// (one atomic add), and results are bit-identical with and without a meter.
func TestStepLoopMeterCounts(t *testing.T) {
	const steps = 10_000
	m := &obs.Meter{}
	metered, err := runStepLoopMeter(sched.Oblivious, 16, steps, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Steps(); got != steps {
		t.Fatalf("meter counted %d steps, want %d", got, steps)
	}
	plain, err := runStepLoopMeter(sched.Oblivious, 16, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(metered, plain) {
		t.Fatalf("metering changed the result:\nmetered: %+v\nplain:   %+v", metered, plain)
	}

	if testing.Short() {
		return
	}
	m.Reset()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if _, err := runStepLoopMeter(sched.Oblivious, 16, b.N, m); err != nil {
			b.Fatal(err)
		}
	})
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("meter on: %d allocs/step, want 0 (%s)", a, r.MemString())
	}
}
