package sim

// Tests of the adversary-model contract: the runtime must reveal to each
// scheduler exactly what its power class permits (§2.1) — no more. A spy
// scheduler asserts on every view it receives.

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// spyScheduler checks every view against its declared power class.
type spyScheduler struct {
	power  sched.Power
	t      *testing.T
	inner  *sched.RoundRobin
	checks int
}

func (s *spyScheduler) Next(v *sched.View) int {
	s.checks++
	if v.Power != s.power {
		s.t.Errorf("view power %v, want %v", v.Power, s.power)
	}
	for pid, op := range v.Pending {
		if !op.Valid {
			continue
		}
		switch s.power {
		case sched.Oblivious:
			if op.Kind != 0 || op.Reg != -1 || !op.Val.IsNone() {
				s.t.Errorf("oblivious view leaked op info: pid %d %+v", pid, op)
			}
		case sched.ValueOblivious:
			if op.Kind == 0 {
				s.t.Errorf("value-oblivious view missing op kind: pid %d", pid)
			}
			if !op.Val.IsNone() {
				s.t.Errorf("value-oblivious view leaked write value: pid %d %+v", pid, op)
			}
		case sched.LocationOblivious:
			if op.Reg != -1 {
				s.t.Errorf("location-oblivious view leaked location: pid %d %+v", pid, op)
			}
			if op.Kind == sched.OpWrite && op.Val.IsNone() {
				s.t.Errorf("location-oblivious view hid write value: pid %d %+v", pid, op)
			}
		case sched.Adaptive:
			if op.Kind == 0 {
				s.t.Errorf("adaptive view missing op kind: pid %d", pid)
			}
		}
	}
	switch s.power {
	case sched.Oblivious, sched.ValueOblivious:
		if v.Memory != nil {
			s.t.Errorf("%v view leaked memory contents", s.power)
		}
	case sched.LocationOblivious, sched.Adaptive:
		if v.Memory == nil {
			s.t.Errorf("%v view missing memory contents", s.power)
		}
	}
	return s.inner.Next(v)
}

func (s *spyScheduler) Seed(*xrand.Source) {}
func (s *spyScheduler) Name() string       { return "spy" }
func (s *spyScheduler) MinPower() sched.Power {
	return s.power
}

func TestViewsRespectPowerClasses(t *testing.T) {
	for _, power := range []sched.Power{
		sched.Oblivious, sched.ValueOblivious, sched.LocationOblivious, sched.Adaptive,
	} {
		spy := &spyScheduler{power: power, t: t, inner: sched.NewRoundRobin()}
		file := register.NewFile()
		r := file.Alloc1("x")
		_, err := Run(Config{N: 3, File: file, Scheduler: spy, Seed: 1},
			func(e *Env) value.Value {
				e.Read(r)
				e.Write(r, value.Value(e.PID()))
				e.ProbWrite(r, 9, 1, 2)
				return e.Read(r)
			})
		if err != nil {
			t.Fatal(err)
		}
		if spy.checks == 0 {
			t.Fatalf("%v: scheduler never consulted", power)
		}
	}
}

func TestViewRunnableMatchesPending(t *testing.T) {
	spyRan := 0
	spy := &spyScheduler{power: sched.Oblivious, t: t, inner: sched.NewRoundRobin()}
	file := register.NewFile()
	r := file.Alloc1("x")
	_, err := Run(Config{N: 2, File: file, Scheduler: checkRunnable{spy, t, &spyRan}, Seed: 1},
		func(e *Env) value.Value { e.Read(r); return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if spyRan == 0 {
		t.Fatal("wrapper never ran")
	}
}

// checkRunnable asserts Runnable lists exactly the valid pending ops.
type checkRunnable struct {
	inner sched.Scheduler
	t     *testing.T
	ran   *int
}

func (c checkRunnable) Next(v *sched.View) int {
	*c.ran++
	seen := make(map[int]bool, len(v.Runnable))
	for _, pid := range v.Runnable {
		seen[pid] = true
		if !v.Pending[pid].Valid {
			c.t.Errorf("runnable pid %d has no valid pending op", pid)
		}
	}
	for pid, op := range v.Pending {
		if op.Valid && !seen[pid] {
			c.t.Errorf("pending pid %d missing from runnable", pid)
		}
	}
	return c.inner.Next(v)
}

func (c checkRunnable) Seed(s *xrand.Source)  { c.inner.Seed(s) }
func (c checkRunnable) Name() string          { return "check-runnable" }
func (c checkRunnable) MinPower() sched.Power { return c.inner.MinPower() }
