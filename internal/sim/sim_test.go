package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestSingleProcessReadWrite(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1},
		func(e *Env) value.Value {
			if got := e.Read(r); !got.IsNone() {
				t.Errorf("initial read = %s, want ⊥", got)
			}
			e.Write(r, 7)
			return e.Read(r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 7 {
		t.Fatalf("output = %s", res.Outputs[0])
	}
	if res.TotalWork != 3 || res.Work[0] != 3 {
		t.Fatalf("work = %d / %v, want 3 ops", res.TotalWork, res.Work)
	}
	if !res.Halted[0] || res.Crashed[0] {
		t.Fatalf("halted=%v crashed=%v", res.Halted, res.Crashed)
	}
}

func TestRegisterSemanticsAcrossProcesses(t *testing.T) {
	// Under round-robin, p0 writes then p1 reads the written value: reads
	// return the last value written.
	f := register.NewFile()
	r := f.Alloc1("x")
	writer := func(e *Env) value.Value { e.Write(r, 42); return 0 }
	reader := func(e *Env) value.Value { return e.Read(r) }
	res, err := Run(Config{N: 2, File: f, Scheduler: sched.NewFixedOrder([]int{0, 1}), Seed: 1},
		writer, reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != 42 {
		t.Fatalf("reader saw %s, want 42", res.Outputs[1])
	}
}

func TestSchedulerControlsInterleaving(t *testing.T) {
	// With order (1, 0) the reader runs first and sees ⊥.
	f := register.NewFile()
	r := f.Alloc1("x")
	writer := func(e *Env) value.Value { e.Write(r, 42); return 0 }
	reader := func(e *Env) value.Value { return e.Read(r) }
	res, err := Run(Config{N: 2, File: f, Scheduler: sched.NewFixedOrder([]int{1, 0}), Seed: 1},
		writer, reader)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outputs[1].IsNone() {
		t.Fatalf("reader saw %s, want ⊥", res.Outputs[1])
	}
}

func TestDeterminism(t *testing.T) {
	prog := func(e *Env) value.Value {
		f := value.Value(0)
		for i := 0; i < 10; i++ {
			f += value.Value(e.CoinIntn(100))
		}
		return f
	}
	run := func() []value.Value {
		f := register.NewFile()
		f.Alloc1("pad")
		res, err := Run(Config{N: 4, File: f, Scheduler: sched.NewUniformRandom(), Seed: 99}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	prog := func(e *Env) value.Value { return value.Value(e.CoinIntn(1 << 30)) }
	out := func(seed uint64) value.Value {
		f := register.NewFile()
		res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: seed}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs[0]
	}
	if out(1) == out(2) {
		t.Fatal("different seeds produced identical coin streams")
	}
}

func TestProbWriteZeroAndOne(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 5},
		func(e *Env) value.Value {
			if e.ProbWrite(r, 1, 0, 10) {
				t.Error("ProbWrite with p=0 succeeded")
			}
			if !e.Read(r).IsNone() {
				t.Error("register written by p=0 write")
			}
			if !e.ProbWrite(r, 2, 10, 10) {
				t.Error("ProbWrite with p=1 failed")
			}
			return e.Read(r)
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 2 {
		t.Fatalf("output = %s, want 2", res.Outputs[0])
	}
	if res.TotalWork != 4 {
		t.Fatalf("TotalWork = %d; probabilistic writes must cost 1 regardless of outcome", res.TotalWork)
	}
}

func TestProbWriteRate(t *testing.T) {
	// Empirical success rate of p=1/4 writes across seeds.
	hits, trials := 0, 2000
	for seed := 0; seed < trials; seed++ {
		f := register.NewFile()
		r := f.Alloc1("x")
		res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: uint64(seed)},
			func(e *Env) value.Value {
				if e.ProbWrite(r, 1, 1, 4) {
					return 1
				}
				return 0
			})
		if err != nil {
			t.Fatal(err)
		}
		hits += int(res.Outputs[0])
	}
	rate := float64(hits) / float64(trials)
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("ProbWrite(1/4) empirical rate %v", rate)
	}
}

func TestCollectCostModels(t *testing.T) {
	build := func() (*register.File, register.Array) {
		f := register.NewFile()
		a := f.Alloc(5, "arr")
		return f, a
	}
	prog := func(a register.Array) Program {
		return func(e *Env) value.Value {
			e.Write(a.At(3), 9)
			vals := e.Collect(a)
			return vals[3]
		}
	}

	f, a := build()
	res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1, CheapCollect: true}, prog(a))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 9 {
		t.Fatalf("cheap collect read %s", res.Outputs[0])
	}
	if res.TotalWork != 2 { // write + collect
		t.Fatalf("cheap collect TotalWork = %d, want 2", res.TotalWork)
	}

	f, a = build()
	res, err = Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1}, prog(a))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 9 {
		t.Fatalf("linear collect read %s", res.Outputs[0])
	}
	if res.TotalWork != 6 { // write + 5 reads
		t.Fatalf("linear collect TotalWork = %d, want 6", res.TotalWork)
	}
}

func TestCrash(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	spin := func(e *Env) value.Value {
		for i := 0; ; i++ {
			e.Write(r, value.Value(i))
			if e.Read(r) == -1 { // never true; crashed before deciding
				return 0
			}
			if i > 100 {
				return 1
			}
		}
	}
	res, err := Run(Config{
		N: 2, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1,
		CrashAfter: map[int]int{0: 5, 1: 3},
	}, spin, spin)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || !res.Crashed[1] {
		t.Fatalf("crashed = %v", res.Crashed)
	}
	if res.Work[0] != 5 || res.Work[1] != 3 {
		t.Fatalf("work = %v, want [5 3]", res.Work)
	}
	if res.Halted[0] || res.Halted[1] {
		t.Fatal("crashed process halted")
	}
	if !res.Outputs[0].IsNone() {
		t.Fatal("crashed process has an output")
	}
	if len(res.HaltedOutputs()) != 0 {
		t.Fatal("HaltedOutputs nonempty")
	}
}

func TestCrashedProcessOperationTakesEffect(t *testing.T) {
	// The crashing process's final write must land (crash happens after the
	// op applies), and a surviving process must be able to finish.
	f := register.NewFile()
	r := f.Alloc1("x")
	writer := func(e *Env) value.Value {
		e.Write(r, 77)
		e.Write(r, 88) // never executed: crash after 1 op
		return 0
	}
	reader := func(e *Env) value.Value {
		for {
			if v := e.Read(r); !v.IsNone() {
				return v
			}
		}
	}
	res, err := Run(Config{
		N: 2, File: f, Scheduler: sched.NewFixedOrder([]int{0, 1}), Seed: 1,
		CrashAfter: map[int]int{0: 1},
	}, writer, reader)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != 77 {
		t.Fatalf("survivor read %s, want 77", res.Outputs[1])
	}
}

func TestStepLimit(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	res, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1, MaxSteps: 10},
		func(e *Env) value.Value {
			for {
				e.Read(r)
			}
		})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if res.TotalWork != 10 {
		t.Fatalf("TotalWork = %d, want 10", res.TotalWork)
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	f := register.NewFile()
	r := f.Alloc1("x")
	for i := 0; i < 20; i++ {
		_, err := Run(Config{N: 8, File: f, Scheduler: sched.NewRoundRobin(), Seed: uint64(i), MaxSteps: 50},
			func(e *Env) value.Value {
				for {
					e.Read(r) // runs forever; must be reaped at step limit
				}
			})
		if !errors.Is(err, ErrStepLimit) {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}

func TestProgramPanicPropagates(t *testing.T) {
	f := register.NewFile()
	f.Alloc1("x")
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	_, _ = Run(Config{N: 2, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1},
		func(e *Env) value.Value { panic("boom") })
	t.Fatal("Run returned instead of panicking")
}

func TestConfigValidation(t *testing.T) {
	f := register.NewFile()
	prog := func(e *Env) value.Value { return 0 }
	cases := []Config{
		{N: 0, File: f, Scheduler: sched.NewRoundRobin()},
		{N: 1, File: nil, Scheduler: sched.NewRoundRobin()},
		{N: 1, File: f, Scheduler: nil},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, prog); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Wrong program count.
	if _, err := Run(Config{N: 3, File: f, Scheduler: sched.NewRoundRobin()}, prog, prog); err == nil {
		t.Error("expected error for 2 programs / 3 processes")
	}
}

func TestTraceRecordsExecution(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	log := trace.New()
	_, err := Run(Config{N: 1, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1, Trace: log},
		func(e *Env) value.Value {
			e.MarkInvoke("obj", 3)
			e.Write(r, 3)
			v := e.Read(r)
			e.CoinBool()
			e.MarkReturn("obj", value.Decide(v))
			return v
		})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[trace.Kind]int)
	for _, ev := range log.Events() {
		kinds[ev.Kind]++
	}
	want := map[trace.Kind]int{
		trace.Invoke: 1, trace.Write: 1, trace.Read: 1,
		trace.Coin: 1, trace.Return: 1, trace.Halt: 1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("trace has %d %s events, want %d\n%s", kinds[k], k, n, log)
		}
	}
	// Work-charged steps must be consecutively numbered.
	step := 0
	for _, ev := range log.Events() {
		if ev.Step >= 0 {
			if ev.Step != step {
				t.Errorf("step %d out of order (want %d)", ev.Step, step)
			}
			step++
		}
	}
}

func TestWorkAccounting(t *testing.T) {
	f := register.NewFile()
	r := f.Alloc1("x")
	prog := func(ops int) Program {
		return func(e *Env) value.Value {
			for i := 0; i < ops; i++ {
				e.Read(r)
			}
			e.CoinBool() // free
			return 0
		}
	}
	res, err := Run(Config{N: 3, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1},
		prog(2), prog(5), prog(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Work[0] != 2 || res.Work[1] != 5 || res.Work[2] != 3 {
		t.Fatalf("Work = %v", res.Work)
	}
	if res.TotalWork != 10 {
		t.Fatalf("TotalWork = %d", res.TotalWork)
	}
	if res.MaxIndividualWork() != 5 {
		t.Fatalf("MaxIndividualWork = %d", res.MaxIndividualWork())
	}
}

func TestSharedProgramReplication(t *testing.T) {
	f := register.NewFile()
	res, err := Run(Config{N: 5, File: f, Scheduler: sched.NewRoundRobin(), Seed: 1},
		func(e *Env) value.Value { return value.Value(e.PID()) })
	if err != nil {
		t.Fatal(err)
	}
	for pid, out := range res.Outputs {
		if out != value.Value(pid) {
			t.Fatalf("pid %d output %s", pid, out)
		}
	}
}
