package sim

// Tests and benchmarks for the resettable Engine behind the sim backend's
// sessions: trial reuse must be invisible (bit-identical to fresh engines),
// free (0 allocs/trial after warmup), and measurably cheaper than
// constructing an engine per trial (BenchmarkTrialReuse is the number the
// pooled harness amortizes away).

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// sessionWorkload is a terminating per-process program plus its config: a
// short write/read/probwrite loop whose outputs and work depend on the
// seed-derived coin streams, so any state leaking between trials shows up
// in the comparison.
func sessionWorkload(n int) (exec.Config, exec.Program) {
	f := register.NewFile()
	a := f.Alloc(n, "session-test")
	prog := func(e core.Env) value.Value {
		r := a.At(e.PID() % a.Len)
		acc := value.Value(0)
		for i := 0; i < 64; i++ {
			e.Write(r, value.Value(i))
			if e.ProbWrite(r, value.Value(i)+100, 1, 2) {
				acc++
			}
			acc += e.Read(r) % 3
		}
		return acc
	}
	cfg := exec.Config{
		N: n, File: f,
		Scheduler: sched.NewUniformRandom(),
		MaxSteps:  1 << 20,
	}
	return cfg, prog
}

// TestSessionReuseMatchesFreshRuns pins the reuse contract: one session run
// across many seeds produces exactly the results of a fresh one-shot run
// per seed, in any seed order.
func TestSessionReuseMatchesFreshRuns(t *testing.T) {
	const n = 5
	cfg, prog := sessionWorkload(n)
	sess, err := Backend().NewSession(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Interleave repeats so a trial also re-runs a seed the session saw
	// earlier — reuse must not remember it.
	seeds := []uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	for _, seed := range seeds {
		got, err := sess.Run(nil, seed)
		if err != nil {
			t.Fatalf("seed %d: session run: %v", seed, err)
		}
		freshCfg, freshProg := sessionWorkload(n)
		freshCfg.Seed = seed
		want, err := Backend().Run(freshCfg, freshProg)
		if err != nil {
			t.Fatalf("seed %d: fresh run: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) ||
			!reflect.DeepEqual(got.Work, want.Work) ||
			got.TotalWork != want.TotalWork || got.Steps != want.Steps {
			t.Errorf("seed %d: reused session diverged from fresh run:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestTrialZeroAllocsAfterWarmup is the tentpole's per-trial half of the
// zero-allocation contract: after the first trial warms the session, a
// whole trial — Reset plus Run — allocates nothing.
func TestTrialZeroAllocsAfterWarmup(t *testing.T) {
	cfg, prog := sessionWorkload(4)
	sess, err := Backend().NewSession(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	seed := uint64(0)
	trial := func() {
		seed++
		if _, err := sess.Run(nil, seed); err != nil {
			t.Fatal(err)
		}
	}
	trial() // warm up: coroutine stacks grow, lazy buffers settle
	if allocs := testing.AllocsPerRun(50, trial); allocs != 0 {
		t.Errorf("got %v allocs/trial after warmup, want 0", allocs)
	}
}

// TestSessionPoisonedAfterProgramPanic pins the pessimistic-poisoning
// contract: a program panic escapes Run, and every later Reset/Run on that
// engine reports exec.ErrSessionPoisoned instead of running on wreckage.
func TestSessionPoisonedAfterProgramPanic(t *testing.T) {
	cfg, _ := sessionWorkload(3)
	armed := false
	prog := func(e core.Env) value.Value {
		if armed && e.PID() == 1 {
			panic("session_test: injected program panic")
		}
		return value.Value(e.PID())
	}
	sess, err := Backend().NewSession(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(nil, 1); err != nil {
		t.Fatalf("clean trial: %v", err)
	}
	armed = true
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("program panic did not escape Run")
			}
		}()
		sess.Run(nil, 2)
	}()
	if _, err := sess.Run(nil, 3); !errors.Is(err, exec.ErrSessionPoisoned) {
		t.Fatalf("run after panic: err = %v, want ErrSessionPoisoned", err)
	}
}

// BenchmarkTrialReuse quantifies what session pooling buys: "fresh" pays
// engine construction (registers snapshot, coroutine spawns, buffers, RNG
// state) on every trial, "pooled" pays it once and runs Reset+Run per
// trial. The delta is the per-trial overhead the pooled harness amortizes.
func BenchmarkTrialReuse(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("fresh/n=%d", n), func(b *testing.B) {
			cfg, prog := sessionWorkload(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess, err := Backend().NewSession(cfg, prog)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Run(nil, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
				sess.Close()
			}
		})
		b.Run(fmt.Sprintf("pooled/n=%d", n), func(b *testing.B) {
			cfg, prog := sessionWorkload(n)
			sess, err := Backend().NewSession(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(nil, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
