package sim

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// impatientProg is the ImpatientFirstMoverConciliator loop written directly
// against the engine: the standard workload for differential runs because it
// exercises reads and probabilistic writes under every adversary class.
func impatientProg(r register.Reg, n int) Program {
	return func(e *Env) value.Value {
		v := value.Value(e.PID()%2 + 1)
		for k := 0; ; k++ {
			if u := e.Read(r); !u.IsNone() {
				return u
			}
			num := uint64(n)
			if k < 16 {
				if p := uint64(1) << uint(k); p < num {
					num = p
				}
			}
			e.ProbWrite(r, v, num, uint64(n))
		}
	}
}

// TestAtomicSemanticsDifferential pins that the semantics refactor did not
// fork the atomic path: at n ∈ {2, 16, 256} under one scheduler per
// adversary power class, an explicit Registers: Atomic one-shot run is
// bit-identical (outputs, per-process work, total work) to a pooled-engine
// run whose config leaves Registers at its zero value.
func TestAtomicSemanticsDifferential(t *testing.T) {
	mkScheds := map[string]func() sched.Scheduler{
		"round-robin":       func() sched.Scheduler { return sched.NewRoundRobin() },
		"stale-read-attack": func() sched.Scheduler { return sched.NewStaleReadAttack() },
		"first-mover":       func() sched.Scheduler { return sched.NewFirstMoverAttack() },
		"adaptive-spoiler":  func() sched.Scheduler { return sched.NewAdaptiveSpoiler() },
	}
	for _, n := range []int{2, 16, 256} {
		for name, mk := range mkScheds {
			file := register.NewFile()
			r := file.Alloc1("C0.r")
			oneShot, err := Run(Config{
				N: n, File: file, Scheduler: mk(), Seed: 42,
				Registers: register.Atomic,
			}, impatientProg(r, n))
			if err != nil {
				t.Fatalf("n=%d %s one-shot: %v", n, name, err)
			}

			file2 := register.NewFile()
			r2 := file2.Alloc1("C0.r")
			eng, err := NewEngine(Config{
				N: n, File: file2, Scheduler: mk(),
			}, impatientProg(r2, n))
			if err != nil {
				t.Fatalf("n=%d %s engine: %v", n, name, err)
			}
			if err := eng.Reset(42, nil); err != nil {
				t.Fatal(err)
			}
			pooled, err := eng.Run(nil)
			if err != nil {
				t.Fatalf("n=%d %s pooled: %v", n, name, err)
			}
			if oneShot.TotalWork != pooled.TotalWork {
				t.Errorf("n=%d %s: total work %d (one-shot) vs %d (pooled)", n, name, oneShot.TotalWork, pooled.TotalWork)
			}
			for pid := range oneShot.Outputs {
				if oneShot.Outputs[pid] != pooled.Outputs[pid] || oneShot.Work[pid] != pooled.Work[pid] {
					t.Errorf("n=%d %s pid %d: (%s, %d ops) vs (%s, %d ops)",
						n, name, pid, oneShot.Outputs[pid], oneShot.Work[pid], pooled.Outputs[pid], pooled.Work[pid])
				}
			}
			eng.Close()
		}
	}
}

// TestRegularStaleRead is the separation witness for regular registers: the
// stale-read attack fires a pending write over a register another process
// is mid-read on, then releases the read. Under Regular the overlapping
// read may resolve to the stale pre-write value (for some seed); under
// Atomic the identical schedule always returns the new value.
func TestRegularStaleRead(t *testing.T) {
	run := func(model register.Semantics, seed uint64) value.Value {
		file := register.NewFile()
		r := file.Alloc1("x")
		file.Init(r, 5)
		reader := func(e *Env) value.Value { return e.Read(r) }
		writer := func(e *Env) value.Value { e.Write(r, 9); return 0 }
		res, err := Run(Config{
			N: 2, File: file, Scheduler: sched.NewStaleReadAttack(), Seed: seed,
			Registers: model,
		}, reader, writer)
		if err != nil {
			t.Fatalf("%v seed %d: %v", model, seed, err)
		}
		return res.Outputs[0]
	}

	sawStale := false
	for seed := uint64(0); seed < 64; seed++ {
		if got := run(register.Atomic, seed); got != 9 {
			t.Fatalf("atomic read under overlap = %s, want 9 (seed %d)", got, seed)
		}
		switch got := run(register.Regular, seed); got {
		case 5:
			sawStale = true
		case 9:
		default:
			t.Fatalf("regular read = %s, want the old value 5 or the new value 9 (seed %d)", got, seed)
		}
	}
	if !sawStale {
		t.Error("no seed in [0,64) made the regular register return the stale value — the overlap resolution never fired")
	}
}

// TestRegularIsDeterministic: the old/new resolution is a pure function of
// (schedule, seed) — two runs of the same regular-register configuration
// are bit-identical.
func TestRegularIsDeterministic(t *testing.T) {
	run := func() *Result {
		file := register.NewFile()
		r := file.Alloc1("C0.r")
		res, err := Run(Config{
			N: 8, File: file, Scheduler: sched.NewStaleReadAttack(), Seed: 17,
			Registers: register.Regular,
		}, impatientProg(r, 8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalWork != b.TotalWork {
		t.Fatalf("total work %d vs %d across identical regular runs", a.TotalWork, b.TotalWork)
	}
	for pid := range a.Outputs {
		if a.Outputs[pid] != b.Outputs[pid] {
			t.Fatalf("pid %d output %s vs %s across identical regular runs", pid, a.Outputs[pid], b.Outputs[pid])
		}
	}
}

// spySched is an adaptive-power round-robin that records what the view let
// it see about pending writes: it never *acts* on the information, so the
// schedule (and therefore the execution) is identical under every register
// model, isolating the view-masking contract.
type spySched struct {
	next        int
	sawVal      bool // a pending write's value was visible
	sawProb     bool // a pending probabilistic write's bias was visible
	sawInFlight bool // a pending write was marked in-flight
}

func (s *spySched) Next(v *sched.View) int {
	for _, pid := range v.Runnable {
		op := v.Pending[pid]
		if op.Kind == sched.OpWrite || op.Kind == sched.OpProbWrite {
			if !op.Val.IsNone() {
				s.sawVal = true
			}
			if op.ProbDen != 0 {
				s.sawProb = true
			}
			if op.InFlight {
				s.sawInFlight = true
			}
		}
	}
	for i := 0; i < v.N; i++ {
		pid := (s.next + i) % v.N
		if v.Pending[pid].Valid {
			s.next = (pid + 1) % v.N
			return pid
		}
	}
	return v.Runnable[0]
}

func (s *spySched) Seed(*xrand.Source) { s.next = 0 }
func (s *spySched) Name() string       { return "spy" }
func (s *spySched) MinPower() sched.Power {
	return sched.Adaptive
}

// TestInterposedBluntsAdversaryView pins the Attiya–Enea–Welch blunting:
// under Interposed an adaptive adversary no longer sees pending write values
// or probabilistic-write biases (only the in-flight marker), while the reads
// themselves stay atomic — the spy's passive schedule produces identical
// outputs under both models.
func TestInterposedBluntsAdversaryView(t *testing.T) {
	run := func(model register.Semantics) (*Result, *spySched) {
		file := register.NewFile()
		r := file.Alloc1("C0.r")
		spy := &spySched{}
		res, err := Run(Config{
			N: 4, File: file, Scheduler: spy, Seed: 3,
			Registers: model,
		}, impatientProg(r, 4))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		return res, spy
	}

	atomicRes, atomicSpy := run(register.Atomic)
	interRes, interSpy := run(register.Interposed)

	if !atomicSpy.sawVal || !atomicSpy.sawProb {
		t.Error("adaptive spy saw no pending write values/biases under Atomic — the workload never armed the attack surface")
	}
	if atomicSpy.sawInFlight {
		t.Error("InFlight marked under Atomic, where the invocation window is unobservable by definition")
	}
	if interSpy.sawVal {
		t.Error("interposed view leaked a pending write value to the adversary")
	}
	if interSpy.sawProb {
		t.Error("interposed view leaked a probabilistic-write bias to the adversary")
	}
	if !interSpy.sawInFlight {
		t.Error("interposed view never marked a pending write in-flight")
	}

	// Same passive schedule, atomic reads either way: identical executions.
	if atomicRes.TotalWork != interRes.TotalWork {
		t.Errorf("total work %d (atomic) vs %d (interposed) under an identical schedule", atomicRes.TotalWork, interRes.TotalWork)
	}
	for pid := range atomicRes.Outputs {
		if atomicRes.Outputs[pid] != interRes.Outputs[pid] {
			t.Errorf("pid %d output %s (atomic) vs %s (interposed) under an identical schedule", pid, atomicRes.Outputs[pid], interRes.Outputs[pid])
		}
	}
}

// haltedProc is the do-nothing LaneProc (construction-error tests never
// step it).
type haltedProc struct{}

func (haltedProc) Reset()             {}
func (haltedProc) Step(*LaneEnv) bool { return false }

// TestLaneEngineRejectsNonAtomic: the op-coded lane engine only implements
// the atomic model; weaker/stronger cells must fall back to Engine.
func TestLaneEngineRejectsNonAtomic(t *testing.T) {
	for _, model := range []register.Semantics{register.Regular, register.Interposed} {
		file := register.NewFile()
		file.Alloc1("x")
		_, err := NewLaneEngine(Config{
			N: 2, File: file, Scheduler: sched.NewRoundRobin(), Registers: model,
		}, func(pid, n int) LaneProc { return haltedProc{} })
		if err == nil {
			t.Fatalf("NewLaneEngine accepted %v registers", model)
		}
		if !strings.Contains(err.Error(), "atomic") {
			t.Errorf("lane rejection %q does not name the atomic-only constraint", err)
		}
	}
}

// TestEngineRejectsUnknownSemantics: a garbage model is a config error, not
// silent atomic behavior.
func TestEngineRejectsUnknownSemantics(t *testing.T) {
	file := register.NewFile()
	file.Alloc1("x")
	_, err := NewEngine(Config{
		N: 1, File: file, Scheduler: sched.NewRoundRobin(), Registers: register.Semantics(9),
	}, func(e *Env) value.Value { return 0 })
	if err == nil {
		t.Fatal("NewEngine accepted an unknown register model")
	}
}
