package sim

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"time"

	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// maxInt is the "never" crash threshold on the dense per-pid slices.
const maxInt = int(^uint(0) >> 1)

// Engine is a reusable simulator for one (programs, scheduler, config)
// cell: the per-trial extension of the step loop's zero-allocation
// contract. NewEngine pays construction once — register image, scheduler
// views, per-process RNG streams, and the process coroutines themselves —
// and Reset rewinds all of it in place, so a warmed-up engine runs whole
// trials without allocating.
//
// Usage is strictly Reset-then-Run, once per trial:
//
//	eng, err := NewEngine(cfg, programs...)
//	defer eng.Close()
//	for _, seed := range seeds {
//		eng.Reset(seed, injector) // injector may be nil
//		res, err := eng.Run(ctx)  // res is engine-owned: copy what escapes
//	}
//
// Engine.Run(ctx) with seed s is bit-identical to Run(cfg with Seed: s,
// Context: ctx) — same results, same traces — which the reuse-equivalence
// tests pin against the golden fixtures. cfg.Seed, cfg.Faults, and
// cfg.Context are ignored by NewEngine; they are per-trial inputs and
// arrive through Reset and Run instead.
//
// Process coroutines persist across trials: after its program returns, a
// coroutine parks on a sentinel yield instead of exiting, and the next
// trial resumes it around the loop. Coroutines left suspended mid-trial
// (step limit, cancellation, crash, stall) are unwound by the next Reset
// through an abort response that panics out of the pending Env call and is
// recovered at the trial boundary.
//
// If a trial panics (a program bug, a scheduler contract violation), the
// engine is poisoned: the panic propagates to the caller, and every later
// Reset or Run reports exec.ErrSessionPoisoned. A poisoned engine must be
// Closed and replaced — pools discard it rather than reuse it.
//
// An Engine is not safe for concurrent use.
type Engine struct {
	cfg      Config
	power    sched.Power
	maxSteps int
	procs    []proc
	programs []Program

	// image is the register file's post-construction contents; Reset
	// restores it so trial k+1 sees exactly the memory trial k started
	// from, Inits included.
	image []value.Value

	// Per-trial RNG streams, reseeded in place by Reset with the shared
	// exec derivation (same streams a fresh run would build).
	root     xrand.Source
	schedSrc xrand.Source
	coinSrc  []xrand.Source
	probSrc  []xrand.Source

	// Register-semantics state, allocated only under register.Regular: semSrc
	// is the shared schedule-ordered stream that resolves overlapping reads
	// (derived by Reset only when needed, so atomic trials draw exactly the
	// streams they always did), and invVal[pid] snapshots the target's value
	// at the moment pid *invokes* a read. If the register changed by the time
	// the read executes, the read overlapped a write and semSrc decides
	// old-or-new. A write that restores the invocation value (ABA) counts as
	// no overlap — the model tracks values, not write events, a deliberate
	// modeling choice documented in ARCHITECTURE.md.
	sem    register.Semantics
	semSrc xrand.Source
	invVal []value.Value

	// baseCrashAt is the dense flattening of cfg.CrashAfter (maxInt =
	// never); crashAt is the per-trial merge with the injector's
	// thresholds. stallAt/stepCrashAt are valid only while faulty.
	baseCrashAt []int
	crashAt     []int
	stallAt     []int
	stepCrashAt []int

	inj      *fault.Injector
	faulty   bool
	needCtx  bool
	stalledN int

	result     *Result
	stalledBuf []bool
	steps      int

	// meter, when non-nil, is ticked once per executed operation. The nil
	// check is the whole disabled cost — same pattern as rt.faulty.
	meter *obs.Meter

	ctx     context.Context
	ctxDone <-chan struct{}

	// The scheduler view is maintained incrementally: exactly one process
	// changes state per step, so runnable (ascending pids) and view.Pending
	// are patched in O(1) amortized instead of rebuilt in O(n). The slices
	// are engine-owned and reused every step; schedulers may read them only
	// for the duration of one Next call (see the contract on sched.View).
	view     sched.View
	runnable []int
	// memBuf backs View.Memory (location-oblivious/adaptive powers),
	// collectBuf backs cheap-collect responses; both reused every step.
	memBuf     []value.Value
	collectBuf []value.Value

	armed    bool
	poisoned bool
	closed   bool
}

// NewEngine validates cfg, broadcasts programs (1 or N), snapshots the
// register file's initial image, and spawns the persistent process
// coroutines. cfg.Seed, cfg.Faults, and cfg.Context are ignored (per-trial;
// see Reset and Run).
func NewEngine(cfg Config, programs ...Program) (*Engine, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N=%d must be positive", cfg.N)
	}
	if cfg.File == nil {
		return nil, errors.New("sim: nil register file")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}
	switch len(programs) {
	case cfg.N:
		ps := make([]Program, cfg.N)
		copy(ps, programs)
		programs = ps
	case 1:
		one := programs[0]
		programs = make([]Program, cfg.N)
		for i := range programs {
			programs[i] = one
		}
	default:
		return nil, fmt.Errorf("sim: got %d programs for %d processes", len(programs), cfg.N)
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	switch cfg.Registers {
	case register.Atomic, register.Regular, register.Interposed:
	default:
		return nil, fmt.Errorf("sim: unknown register semantics %v", cfg.Registers)
	}
	// Stamp the model on the file so trace/error strings self-describe which
	// semantics produced them (a no-op for atomic: names stay byte-identical).
	cfg.File.SetSemantics(cfg.Registers)
	eng := &Engine{
		cfg:         cfg,
		power:       cfg.Scheduler.MinPower(),
		maxSteps:    maxSteps,
		procs:       make([]proc, cfg.N),
		programs:    programs,
		image:       cfg.File.Contents(),
		coinSrc:     make([]xrand.Source, cfg.N),
		probSrc:     make([]xrand.Source, cfg.N),
		baseCrashAt: make([]int, cfg.N),
		crashAt:     make([]int, cfg.N),
		stallAt:     make([]int, cfg.N),
		stepCrashAt: make([]int, cfg.N),
		result:      exec.NewResult(cfg.N),
		stalledBuf:  make([]bool, cfg.N),
		meter:       cfg.Meter,
		runnable:    make([]int, 0, cfg.N),
		sem:         cfg.Registers,
	}
	if cfg.Registers == register.Regular {
		eng.invVal = make([]value.Value, cfg.N)
	}
	eng.view = sched.View{Power: eng.power, Semantics: cfg.Registers, N: cfg.N, Pending: make([]sched.Op, cfg.N)}
	eng.result.Trace = cfg.Trace
	// CrashAfter is consulted on every step; flatten the map into a dense
	// per-pid limit (maxInt = never) so the hot path does one compare
	// instead of a map lookup.
	for pid := range eng.baseCrashAt {
		eng.baseCrashAt[pid] = maxInt
	}
	for pid, limit := range cfg.CrashAfter {
		if pid >= 0 && pid < cfg.N {
			eng.baseCrashAt[pid] = limit
		}
	}
	for pid := 0; pid < cfg.N; pid++ {
		eng.spawn(pid)
	}
	return eng, nil
}

// spawn creates pid's persistent coroutine. The body loops one program run
// per trial, parking on a sentinel yield between trials; a fresh coroutine
// counts as parked (its body has not started). A panic other than the
// engine's own sentinels propagates to whichever engine call resumed the
// coroutine — and from there out of Run with its original value.
func (eng *Engine) spawn(pid int) {
	p := &eng.procs[pid]
	env := &Env{
		pid:   pid,
		n:     eng.cfg.N,
		cheap: eng.cfg.CheapCollect,
		coins: &eng.coinSrc[pid],
		log:   eng.cfg.Trace,
		resp:  &p.resp,
	}
	prog := eng.programs[pid]
	p.parked = true
	p.next, p.stop = iter.Pull(func(yield func(request) bool) {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok && errors.Is(err, errKilled) {
					return
				}
				panic(r)
			}
		}()
		env.yield = yield
		for {
			if out, completed := runProgram(env, prog); completed {
				p.halted = true
				p.output = out
			}
			// Park until the engine starts the next trial; a false yield
			// means Close is tearing the coroutine down while parked.
			if !yield(request{park: true}) {
				return
			}
		}
	})
}

// runProgram runs one trial of prog, converting the engine's reset-abort
// into a clean (uncompleted) return. Teardown (errKilled) and genuine
// program panics keep unwinding as panics.
func runProgram(env *Env, prog Program) (out value.Value, completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errTrialAbort) {
				completed = false
				return
			}
			panic(r)
		}
	}()
	return prog(env), true
}

// Reset rewinds the engine to run one trial with the given seed and
// compiled fault injector (nil for a fault-free trial), reusing every
// buffer in place: it aborts coroutines left mid-trial, restores the
// register image, rewinds the injector's and the engine's RNG streams,
// re-seeds the scheduler (which clears the scheduler's own state — see the
// sched.Scheduler contract), and zeroes the result. The injector is
// reseeded to seed, so its fault streams match fault.Compile(plan, n, seed)
// whatever seed it was originally compiled with.
func (eng *Engine) Reset(seed uint64, faults *fault.Injector) error {
	if eng.closed {
		return errors.New("sim: Reset on closed engine")
	}
	if eng.poisoned {
		return exec.ErrSessionPoisoned
	}
	// Unwind coroutines the previous trial left suspended mid-program
	// (step limit, cancellation, crash, stall): the abort response panics
	// out of their pending Env call and is recovered at the trial
	// boundary, after which the coroutine parks. A coroutine that does
	// anything else on abort (a program defer issuing operations while
	// unwinding) poisons the engine.
	for pid := range eng.procs {
		p := &eng.procs[pid]
		if p.parked {
			continue
		}
		p.resp = response{abort: true}
		req, ok := p.next()
		if !ok || !req.park {
			eng.poisoned = true
			return fmt.Errorf("sim: process %d did not unwind cleanly on reset: %w", pid, exec.ErrSessionPoisoned)
		}
		p.parked = true
	}
	// Restore the shared registers to their post-construction image.
	if err := eng.cfg.File.Restore(eng.image); err != nil {
		eng.poisoned = true
		return fmt.Errorf("sim: %v: %w", err, exec.ErrSessionPoisoned)
	}
	// Install and rewind the fault plane. Thresholds are seed-independent;
	// only the delay/lost-coin streams depend on the seed.
	eng.inj = faults
	eng.faulty = faults != nil
	eng.needCtx = faults.HasStall()
	faults.Reseed(seed)
	copy(eng.crashAt, eng.baseCrashAt)
	if eng.faulty {
		for pid := 0; pid < eng.cfg.N; pid++ {
			eng.crashAt[pid] = min(eng.crashAt[pid], faults.CrashAt(pid))
			eng.stallAt[pid] = faults.StallAt(pid)
			eng.stepCrashAt[pid] = faults.CrashStep(pid)
		}
	}
	// Rewind every RNG stream in place. Split never advances its parent,
	// so derivation order is immaterial and these states are bit-identical
	// to the ones a fresh run builds with Split.
	eng.root.Reseed(seed)
	eng.root.SplitInto(&eng.schedSrc, 0)
	eng.cfg.Scheduler.Seed(&eng.schedSrc)
	for pid := 0; pid < eng.cfg.N; pid++ {
		exec.ProcCoinsInto(&eng.coinSrc[pid], &eng.root, pid)
		exec.ProcProbInto(&eng.probSrc[pid], &eng.root, pid)
	}
	// The semantics stream exists only under Regular; atomic trials derive
	// exactly the streams they always did (Split never advances the parent,
	// so skipping the derivation keeps them bit-identical).
	if eng.sem == register.Regular {
		exec.SemCoinsInto(&eng.semSrc, &eng.root)
	}
	// Clear per-trial process, result, trace, and view state.
	for pid := range eng.procs {
		p := &eng.procs[pid]
		p.resp = response{}
		p.pending = request{}
		p.hasOp = false
		p.halted = false
		p.crashed = false
		p.stalled = false
		p.output = value.None
	}
	res := eng.result
	for pid := range res.Outputs {
		res.Outputs[pid] = value.None
		res.Halted[pid] = false
		res.Crashed[pid] = false
		res.Work[pid] = 0
	}
	res.TotalWork = 0
	res.Steps = 0
	// Stalled stays nil for stall-free trials so results marshal
	// identically to the golden fixtures (the slice is engine-owned and
	// merely re-zeroed when stall faults are in play).
	res.Stalled = nil
	if eng.needCtx {
		for i := range eng.stalledBuf {
			eng.stalledBuf[i] = false
		}
		res.Stalled = eng.stalledBuf
	}
	eng.cfg.Trace.Reset()
	eng.steps = 0
	eng.stalledN = 0
	for i := range eng.view.Pending {
		eng.view.Pending[i] = sched.Op{}
	}
	eng.view.Step = 0
	eng.view.Memory = nil
	eng.runnable = eng.runnable[:0]
	eng.armed = true
	return nil
}

// Run executes the trial armed by the last Reset and returns the
// engine-owned result: its slices and trace are invalidated by the next
// Reset, so callers that retain anything across trials must deep-copy
// first. ctx, if non-nil, cancels the execution between scheduled
// operations; trials whose injector contains stall faults require one.
// Each Reset arms exactly one Run.
func (eng *Engine) Run(ctx context.Context) (*Result, error) {
	if eng.closed {
		return nil, errors.New("sim: Run on closed engine")
	}
	if eng.poisoned {
		return nil, exec.ErrSessionPoisoned
	}
	if !eng.armed {
		return nil, errors.New("sim: Run before Reset (arm each trial with Reset(seed, faults))")
	}
	eng.armed = false
	if eng.needCtx && ctx == nil {
		return nil, errors.New("sim: stall faults require a Context (a stalled process never halts; only cancellation ends the execution)")
	}
	eng.ctx = ctx
	eng.ctxDone = nil
	if ctx != nil {
		eng.ctxDone = ctx.Done()
	}
	// A panic anywhere below — a program panic, a scheduler contract
	// violation — escapes with coroutines and buffers in an unknown state;
	// flag the engine pessimistically and clear on the normal return path.
	eng.poisoned = true
	// Gather the initial pending operation (or immediate halt) of each
	// process, in pid order. Threshold 0 fires before the first operation:
	// the process crashes or stalls having done nothing at all, and its
	// coroutine is not resumed this trial.
	for pid := range eng.procs {
		if eng.crashAt[pid] <= 0 {
			eng.crash(pid)
			continue
		}
		if eng.faulty && eng.stallAt[pid] <= 0 {
			eng.stall(pid)
			continue
		}
		eng.resume(pid)
	}
	for pid := range eng.procs {
		p := &eng.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			eng.runnable = append(eng.runnable, pid)
			eng.view.Pending[pid] = eng.restrictOp(p.pending)
		}
	}
	err := eng.loop()
	eng.result.Steps = eng.steps
	eng.poisoned = false
	return eng.result, err
}

// Close unwinds every coroutine and retires the engine. Suspended or parked
// processes see their pending Env call or parking yield fail and exit
// through the errKilled sentinel; Close is the pooled analogue of the
// one-shot Run's deferred teardown and must be called exactly once per
// engine (later calls are no-ops).
func (eng *Engine) Close() error {
	if eng.closed {
		return nil
	}
	eng.closed = true
	for pid := range eng.procs {
		p := &eng.procs[pid]
		if p.stop != nil {
			p.stop()
		}
	}
	return nil
}

// loop drives the armed trial to completion or to the step limit.
func (rt *Engine) loop() error {
	for {
		if len(rt.runnable) == 0 {
			if rt.stalledN == 0 {
				return nil // every process halted or crashed
			}
			// Only stalled processes remain: the execution can never finish
			// on its own (the livelock a deadline watchdog exists to catch).
			// Block until cancellation; Run validated that a context exists
			// whenever stall faults do.
			if rt.ctxDone == nil {
				return fmt.Errorf("sim: %d process(es) stalled with no context to interrupt the execution", rt.stalledN)
			}
			<-rt.ctxDone
			return fmt.Errorf("%w after %d steps (%d process(es) stalled): %w", ErrCancelled, rt.steps, rt.stalledN, context.Cause(rt.ctx))
		}
		if rt.steps >= rt.maxSteps {
			return fmt.Errorf("%w (limit %d, scheduler %q)", ErrStepLimit, rt.maxSteps, rt.cfg.Scheduler.Name())
		}
		if rt.ctxDone != nil {
			select {
			case <-rt.ctxDone:
				return fmt.Errorf("%w after %d steps: %w", ErrCancelled, rt.steps, context.Cause(rt.ctx))
			default:
			}
		}
		rt.view.Step = rt.steps
		rt.view.Runnable = rt.runnable
		switch rt.power {
		case sched.LocationOblivious, sched.Adaptive:
			rt.memBuf = rt.cfg.File.AppendContents(rt.memBuf[:0])
			rt.view.Memory = rt.memBuf
		}
		pid := rt.cfg.Scheduler.Next(&rt.view)
		if pid < 0 || pid >= rt.cfg.N || !rt.procs[pid].hasOp || rt.procs[pid].crashed {
			panic(fmt.Sprintf("sim: scheduler %q chose non-runnable pid %d", rt.cfg.Scheduler.Name(), pid))
		}
		rt.execute(pid)
		// Patch the view entry of the one process that moved.
		p := &rt.procs[pid]
		if p.hasOp && !p.crashed && !p.halted {
			rt.view.Pending[pid] = rt.restrictOp(p.pending)
		} else {
			rt.view.Pending[pid] = sched.Op{}
			rt.dropRunnable(pid)
		}
	}
}

// dropRunnable removes pid from the ascending runnable list (called only
// when a process halts or crashes, so the O(n) shift is off the per-step
// path).
func (rt *Engine) dropRunnable(pid int) {
	for i, p := range rt.runnable {
		if p == pid {
			rt.runnable = append(rt.runnable[:i], rt.runnable[i+1:]...)
			return
		}
	}
}

// execute applies pid's pending operation, then resumes pid's coroutine to
// obtain its next request (unless pid crashes at this step).
func (rt *Engine) execute(pid int) {
	p := &rt.procs[pid]
	req := p.pending
	p.hasOp = false
	file := rt.cfg.File
	traced := rt.cfg.Trace != nil

	var resp response
	switch req.kind {
	case sched.OpRead:
		resp.val = file.Load(req.reg)
		if rt.sem == register.Regular && resp.val != rt.invVal[pid] {
			// The register changed between this read's invocation and its
			// execution: under regular semantics the read overlapped the
			// write(s) and may legally return the old value. One coin from
			// the shared schedule-ordered stream decides, so the outcome is
			// a pure function of (schedule, seed).
			if rt.semSrc.Bool() {
				resp.val = rt.invVal[pid]
			}
		}
	case sched.OpWrite:
		file.Store(req.reg, req.val)
	case sched.OpProbWrite:
		resp.ok = rt.probSrc[pid].Bernoulli(req.num, req.den)
		if rt.faulty && rt.inj.LoseCoin(pid) {
			// The coin is lost in flight: the process's own coin stream was
			// consumed exactly as in a fault-free run (so no-loss draws stay
			// bit-identical), but the write is suppressed and reported
			// failed. Safe degradation — it can only slow termination.
			resp.ok = false
		}
		if resp.ok {
			file.Store(req.reg, req.val)
		}
	case sched.OpCollect:
		rt.collectBuf = file.SnapshotAppend(rt.collectBuf[:0], req.arr)
		resp.vals = rt.collectBuf
	default:
		panic(fmt.Sprintf("sim: unknown op kind %v", req.kind))
	}
	if traced {
		ev := trace.Event{Step: rt.steps, PID: pid, Reg: int(req.reg), Val: req.val}
		switch req.kind {
		case sched.OpRead:
			ev.Kind = trace.Read
			ev.Val = resp.val
		case sched.OpWrite:
			ev.Kind = trace.Write
		case sched.OpProbWrite:
			ev.Kind = trace.ProbWrite
			ev.Succeeded = resp.ok
			ev.ProbNum, ev.ProbDen = req.num, req.den
		case sched.OpCollect:
			ev.Kind = trace.Collect
			ev.Reg = int(req.arr.Base)
		}
		rt.cfg.Trace.Append(ev)
	}
	rt.result.Work[pid]++
	rt.result.TotalWork++
	rt.steps++
	if rt.meter != nil {
		rt.meter.AddSteps(1)
	}

	if rt.faulty {
		if d := rt.inj.OpDelay(pid); d > 0 {
			// Per-op jitter: the engine is single-threaded, so sleeping here
			// slows the whole (simulated) execution — meaningful for wall
			// clock stress, invisible to the step-count cost model.
			time.Sleep(d)
		}
	}

	// Crash checks run after the operation lands: the last operation takes
	// effect, but the process never observes the result and is never
	// scheduled again; its coroutine stays suspended until the next Reset
	// (or Close) unwinds it. rt.steps is now the 1-based global index of
	// this operation, which is what the crash-on-round thresholds are
	// compiled against.
	if rt.result.Work[pid] >= rt.crashAt[pid] || (rt.faulty && rt.steps >= rt.stepCrashAt[pid]) {
		rt.crash(pid)
		return
	}
	if rt.faulty && rt.result.Work[pid] >= rt.stallAt[pid] {
		rt.stall(pid)
		return
	}

	p.resp = resp
	rt.resume(pid)
}

// crash marks pid crashed. Called either after its last operation landed or
// before its first (threshold 0).
func (rt *Engine) crash(pid int) {
	rt.procs[pid].crashed = true
	rt.result.Crashed[pid] = true
	if rt.cfg.Trace != nil {
		rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Crash})
	}
}

// stall freezes pid: unlike a crash it is not reported as failed — the
// process holds its state forever and simply never takes another step, the
// classic livelock a deadline watchdog has to catch. Its coroutine stays
// suspended until the next Reset aborts it.
func (rt *Engine) stall(pid int) {
	rt.procs[pid].stalled = true
	rt.result.Stalled[pid] = true
	rt.stalledN++
}

// resume transfers control into pid's coroutine and records what comes
// back: the next pending operation, or the parking yield a program that
// just returned leaves its coroutine on (recorded as the process's halt). A
// program panic propagates out of p.next (and out of Run) with its original
// value.
func (rt *Engine) resume(pid int) {
	p := &rt.procs[pid]
	req, ok := p.next()
	if !ok {
		// The body can only return through Close's teardown, never while a
		// trial is driving it.
		panic(fmt.Sprintf("sim: process %d coroutine exited mid-trial", pid))
	}
	if req.park {
		// The program returned and parked its coroutine for the next trial;
		// p.halted and p.output were set by the coroutine before parking.
		p.parked = true
		if p.halted {
			rt.result.Halted[pid] = true
			rt.result.Outputs[pid] = p.output
			if rt.cfg.Trace != nil {
				rt.cfg.Trace.Append(trace.Event{Step: -1, PID: pid, Kind: trace.Halt, Val: p.output})
			}
		}
		return
	}
	p.pending = req
	p.hasOp = true
	p.parked = false
	if rt.sem == register.Regular && req.kind == sched.OpRead {
		// Snapshot the target at invocation time: the read's execution
		// compares against this to detect an overlapping write.
		rt.invVal[pid] = rt.cfg.File.Load(req.reg)
	}
}

// restrictOp projects a pending request down to what rt.power permits the
// adversary to observe (§2.1).
func (rt *Engine) restrictOp(req request) sched.Op {
	op := sched.Op{Valid: true, Reg: -1, Val: value.None}
	switch rt.power {
	case sched.Oblivious:
		// Liveness only.
	case sched.ValueOblivious:
		op.Kind = req.kind
		op.Reg = req.reg
		if req.kind == sched.OpCollect {
			op.Reg = req.arr.Base
		}
	case sched.LocationOblivious:
		op.Kind = req.kind
		if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
			op.Val = req.val
		}
		op.ProbNum, op.ProbDen = req.num, req.den
	case sched.Adaptive:
		op.Kind = req.kind
		op.Reg = req.reg
		if req.kind == sched.OpCollect {
			op.Reg = req.arr.Base
		}
		if req.kind == sched.OpWrite || req.kind == sched.OpProbWrite {
			op.Val = req.val
		}
		op.ProbNum, op.ProbDen = req.num, req.den
	default:
		panic(fmt.Sprintf("sim: unknown power %v", rt.power))
	}
	if rt.sem != register.Atomic {
		// Non-atomic models surface the invocation/execution window to any
		// adversary that may see operation kinds: a pending write is exactly
		// the overlap a regular register lets a read exploit.
		if rt.power != sched.Oblivious && (req.kind == sched.OpWrite || req.kind == sched.OpProbWrite) {
			op.InFlight = true
		}
		if rt.sem == register.Interposed {
			// The linearizable interposition blunts the adversary
			// (Attiya–Enea–Welch): the contents of in-flight operations —
			// pending write values and attempt probabilities — are hidden
			// inside the implementation; only completed state (View.Memory)
			// remains visible.
			op.Val = value.None
			op.ProbNum, op.ProbDen = 0, 0
		}
	}
	return op
}
