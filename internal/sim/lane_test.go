package sim

// Differential tests for the op-coded lane engine: a LaneProc twin of a
// closure workload must produce bit-identical results to the coroutine
// engine across seeds × adversary powers × process counts × fault plans,
// batched lanes must stay allocation-free after warmup, and
// BenchmarkTrialLane quantifies what removing the coroutine switch buys
// over BenchmarkTrialReuse's pooled sessions.

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// powerUR is a uniform-random scheduler that declares an arbitrary MinPower,
// so the differential matrix exercises every view-restriction path (and the
// memory-image path for location-oblivious/adaptive) with a seed-dependent
// schedule.
type powerUR struct {
	power sched.Power
	inner *sched.UniformRandom
}

func (s *powerUR) Next(v *sched.View) int { return s.inner.Next(v) }
func (s *powerUR) Seed(src *xrand.Source) { s.inner.Seed(src) }
func (s *powerUR) Name() string           { return "lane-diff-" + s.power.String() }
func (s *powerUR) MinPower() sched.Power  { return s.power }

// seqProc is the op-coded twin of sessionWorkload's closure: the same
// 64-iteration write/probwrite/read loop with the suspension points turned
// into explicit states.
type seqProc struct {
	r   register.Reg
	i   int
	pc  int
	acc value.Value
}

func (p *seqProc) Reset() { p.i, p.pc, p.acc = 0, 0, 0 }

func (p *seqProc) Step(e *LaneEnv) bool {
	// Consume the response of the operation published last time.
	switch p.pc {
	case 2:
		if e.ROK {
			p.acc++
		}
	case 3:
		p.acc += e.RVal % 3
		p.i++
		if p.i >= 64 {
			e.Out = p.acc
			return false
		}
	}
	// Publish the next operation.
	switch p.pc {
	case 0, 3:
		e.Op = LaneOp{Kind: sched.OpWrite, Reg: p.r, Val: value.Value(p.i)}
		p.pc = 1
	case 1:
		e.Op = LaneOp{Kind: sched.OpProbWrite, Reg: p.r, Val: value.Value(p.i) + 100, Num: 1, Den: 2}
		p.pc = 2
	case 2:
		e.Op = LaneOp{Kind: sched.OpRead, Reg: p.r}
		p.pc = 3
	}
	return true
}

// laneSeqWorkload builds the lane form of sessionWorkload over its own
// register file (the engine mutates the file, so twins never share one).
func laneSeqWorkload(n int, s sched.Scheduler) (exec.Config, LaneProgram) {
	f := register.NewFile()
	a := f.Alloc(n, "session-test")
	prog := func(pid, n int) LaneProc {
		return &seqProc{r: a.At(pid % a.Len)}
	}
	return exec.Config{N: n, File: f, Scheduler: s, MaxSteps: 1 << 20}, prog
}

// closureSeqWorkload is sessionWorkload with an injectable scheduler, so the
// differential matrix can pin every power.
func closureSeqWorkload(n int, s sched.Scheduler) (exec.Config, exec.Program) {
	cfg, prog := sessionWorkload(n)
	cfg.Scheduler = s
	return cfg, func(e core.Env) value.Value { return prog(e) }
}

// The coin/collect workload pair: local coins decide values and whether to
// probwrite, then the process collects the whole array — cheap (one
// OpCollect) or per-call (arr.Len individual reads), matching Env.Collect's
// two cost models.

func closureCoinWorkload(n int, cheap bool, s sched.Scheduler) (exec.Config, exec.Program) {
	f := register.NewFile()
	a := f.Alloc(n, "lane-coin")
	prog := func(e core.Env) value.Value {
		mine := a.At(e.PID())
		acc := value.Value(0)
		for i := 0; i < 8; i++ {
			v := value.Value(e.CoinIntn(10))
			e.Write(mine, v)
			if e.CoinBool() {
				if e.ProbWrite(mine, v+1, 2, 3) {
					acc += 2
				}
			}
			for _, x := range e.Collect(a) {
				acc += x % 5
			}
		}
		return acc
	}
	return exec.Config{N: n, File: f, Scheduler: s, CheapCollect: cheap, MaxSteps: 1 << 20}, prog
}

type coinProc struct {
	mine register.Reg
	arr  register.Array
	i    int
	j    int
	pc   int
	acc  value.Value
	v    value.Value
}

func (p *coinProc) Reset() { p.i, p.j, p.pc, p.acc, p.v = 0, 0, 0, 0, 0 }

func (p *coinProc) Step(e *LaneEnv) bool {
	switch p.pc {
	case 0: // top of an iteration, nothing pending
		return p.startIter(e)
	case 1: // write landed
		if e.CoinBool() {
			e.Op = LaneOp{Kind: sched.OpProbWrite, Reg: p.mine, Val: p.v + 1, Num: 2, Den: 3}
			p.pc = 2
			return true
		}
		return p.startCollect(e)
	case 2: // probwrite landed
		if e.ROK {
			p.acc += 2
		}
		return p.startCollect(e)
	case 4: // cheap collect landed
		for _, x := range e.RVals {
			p.acc += x % 5
		}
		return p.endIter(e)
	case 5: // one per-call collect read landed
		p.acc += e.RVal % 5
		p.j++
		if p.j < p.arr.Len {
			e.Op = LaneOp{Kind: sched.OpRead, Reg: p.arr.At(p.j)}
			return true
		}
		return p.endIter(e)
	}
	panic("coinProc: invalid state")
}

func (p *coinProc) startIter(e *LaneEnv) bool {
	p.v = value.Value(e.CoinIntn(10))
	e.Op = LaneOp{Kind: sched.OpWrite, Reg: p.mine, Val: p.v}
	p.pc = 1
	return true
}

func (p *coinProc) startCollect(e *LaneEnv) bool {
	if e.CheapCollect() {
		e.Op = LaneOp{Kind: sched.OpCollect, Arr: p.arr}
		p.pc = 4
		return true
	}
	p.j = 0
	e.Op = LaneOp{Kind: sched.OpRead, Reg: p.arr.At(0)}
	p.pc = 5
	return true
}

func (p *coinProc) endIter(e *LaneEnv) bool {
	p.i++
	if p.i >= 8 {
		e.Out = p.acc
		return false
	}
	return p.startIter(e)
}

func laneCoinWorkload(n int, cheap bool, s sched.Scheduler) (exec.Config, LaneProgram) {
	f := register.NewFile()
	a := f.Alloc(n, "lane-coin")
	prog := func(pid, n int) LaneProc {
		return &coinProc{mine: a.At(pid), arr: a}
	}
	return exec.Config{N: n, File: f, Scheduler: s, CheapCollect: cheap, MaxSteps: 1 << 20}, prog
}

// TestLaneMatchesSessionDifferential is the bit-identity pin: for every
// workload pair, adversary power, process count, and fault plan, the
// op-coded lane session and the coroutine session produce exactly the same
// results for the same seeds. Stall plans are excluded — a stalled
// execution only ends by cancellation, so its step count is wall-clock
// dependent by design — but the remaining kinds cover every injector
// stream the engines consult (crash thresholds, lost-coin draws).
func TestLaneMatchesSessionDifferential(t *testing.T) {
	powers := []sched.Power{sched.Oblivious, sched.ValueOblivious, sched.LocationOblivious, sched.Adaptive}
	plans := map[string]*fault.Plan{
		"nofault":        nil,
		"crash+losecoin": fault.New(fault.Crash(0, 40), fault.LoseCoin(1, 1, 3)),
		"crash-at-birth": fault.New(fault.Crash(0, 0), fault.LoseCoin(1, 1, 2)),
	}
	seeds := []uint64{1, 7, 42}

	type pair struct {
		name    string
		ns      []int
		closure func(n int, s sched.Scheduler) (exec.Config, exec.Program)
		lane    func(n int, s sched.Scheduler) (exec.Config, LaneProgram)
	}
	pairs := []pair{
		{
			name: "seq", ns: []int{2, 16, 256},
			closure: closureSeqWorkload,
			lane:    laneSeqWorkload,
		},
		{
			name: "coins-cheap", ns: []int{2, 16, 256},
			closure: func(n int, s sched.Scheduler) (exec.Config, exec.Program) { return closureCoinWorkload(n, true, s) },
			lane:    func(n int, s sched.Scheduler) (exec.Config, LaneProgram) { return laneCoinWorkload(n, true, s) },
		},
		{
			// Per-call collects cost arr.Len reads each; keep n small so the
			// quadratic step count stays test-sized.
			name: "coins-percall", ns: []int{2, 16},
			closure: func(n int, s sched.Scheduler) (exec.Config, exec.Program) { return closureCoinWorkload(n, false, s) },
			lane:    func(n int, s sched.Scheduler) (exec.Config, LaneProgram) { return laneCoinWorkload(n, false, s) },
		},
	}

	for _, pr := range pairs {
		for _, n := range pr.ns {
			for _, power := range powers {
				t.Run(fmt.Sprintf("%s/n=%d/%s", pr.name, n, power), func(t *testing.T) {
					for planName, plan := range plans {
						cfgC, progC := pr.closure(n, &powerUR{power: power, inner: sched.NewUniformRandom()})
						cfgC.Faults = plan
						sess, err := Backend().NewSession(cfgC, progC)
						if err != nil {
							t.Fatal(err)
						}
						cfgL, progL := pr.lane(n, &powerUR{power: power, inner: sched.NewUniformRandom()})
						cfgL.Faults = plan
						lsess, err := NewLaneSession(cfgL, progL)
						if err != nil {
							t.Fatal(err)
						}
						for _, seed := range seeds {
							want, errC := sess.Run(nil, seed)
							got, errL := lsess.Run(nil, seed)
							if (errC == nil) != (errL == nil) {
								t.Fatalf("%s seed %d: closure err %v, lane err %v", planName, seed, errC, errL)
							}
							if !reflect.DeepEqual(got, want) {
								t.Errorf("%s seed %d: lane diverged from session:\n got %+v\nwant %+v", planName, seed, got, want)
							}
						}
						sess.Close()
						lsess.Close()
					}
				})
			}
		}
	}
}

// TestLaneBatchMatchesLoopedRuns pins the batch seam itself: RunBatch over a
// lane of seeds reports exactly what per-seed Run calls report, including
// repeated seeds.
func TestLaneBatchMatchesLoopedRuns(t *testing.T) {
	const n = 4
	cfgA, progA := laneSeqWorkload(n, sched.NewUniformRandom())
	batch, err := NewLaneSession(cfgA, progA)
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	cfgB, progB := laneSeqWorkload(n, sched.NewUniformRandom())
	loop, err := NewLaneSession(cfgB, progB)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()

	seeds := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	begun := 0
	err = batch.RunBatch(nil, seeds, func(k int) error {
		begun++
		if k != begun-1 {
			t.Fatalf("begin(%d) out of order (call %d)", k, begun)
		}
		return nil
	}, func(k int, res *exec.Result, err error) bool {
		if err != nil {
			t.Fatalf("seed %d: batch trial: %v", seeds[k], err)
		}
		want, err := loop.Run(nil, seeds[k])
		if err != nil {
			t.Fatalf("seed %d: looped trial: %v", seeds[k], err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("seed %d: batch trial diverged from looped Run:\n got %+v\nwant %+v", seeds[k], res, want)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if begun != len(seeds) {
		t.Fatalf("begin called %d times for %d seeds", begun, len(seeds))
	}
}

// TestSessionRunBatchMatchesRuns extends the pin to the coroutine-backed
// session: the closure fallback's RunBatch is the same Reset+Run loop the
// per-trial path takes, so any closure spec can route through the batch
// seam without changing results.
func TestSessionRunBatchMatchesRuns(t *testing.T) {
	const n = 4
	cfg, prog := sessionWorkload(n)
	sess, err := Backend().NewSession(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bs, ok := sess.(exec.BatchSession)
	if !ok {
		t.Fatal("sim session does not implement exec.BatchSession")
	}

	seeds := []uint64{11, 5, 11, 2}
	want := make([]*exec.Result, len(seeds))
	for k, seed := range seeds {
		res, err := sess.Run(nil, seed)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = cloneForCompare(res)
	}
	err = bs.RunBatch(nil, seeds, nil, func(k int, res *exec.Result, err error) bool {
		if err != nil {
			t.Fatalf("seed %d: %v", seeds[k], err)
		}
		if !reflect.DeepEqual(cloneForCompare(res), want[k]) {
			t.Errorf("seed %d: batched trial diverged:\n got %+v\nwant %+v", seeds[k], res, want[k])
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// cloneForCompare deep-copies the session-owned parts of a result so trials
// can be compared across engine reuse.
func cloneForCompare(r *exec.Result) *exec.Result {
	c := *r
	c.Outputs = append([]value.Value(nil), r.Outputs...)
	c.Halted = append([]bool(nil), r.Halted...)
	c.Crashed = append([]bool(nil), r.Crashed...)
	c.Work = append([]int(nil), r.Work...)
	if r.Stalled != nil {
		c.Stalled = append([]bool(nil), r.Stalled...)
	}
	return &c
}

// TestLaneEngineRejectsTrace pins the traceless contract: lane executions
// have no coroutine free-event interleaving to record, so traced cells must
// fall back to the coroutine engine.
func TestLaneEngineRejectsTrace(t *testing.T) {
	cfg, prog := laneSeqWorkload(2, sched.NewUniformRandom())
	cfg.Trace = trace.New()
	if _, err := NewLaneSession(cfg, prog); err == nil {
		t.Fatal("NewLaneSession accepted a traced config")
	}
}

// TestLaneZeroAllocsAfterWarmup extends the PR 6 zero-allocation contract to
// lanes: after the first batch warms the session, a whole lane of trials —
// Reset plus Run per seed, batch dispatch included — allocates nothing.
func TestLaneZeroAllocsAfterWarmup(t *testing.T) {
	cfg, prog := laneSeqWorkload(4, sched.NewUniformRandom())
	sess, err := NewLaneSession(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var trialErr error
	emit := func(k int, res *exec.Result, err error) bool {
		if err != nil {
			trialErr = err
			return false
		}
		return true
	}
	seeds := make([]uint64, 8)
	seed := uint64(0)
	lane := func() {
		for i := range seeds {
			seed++
			seeds[i] = seed
		}
		if err := sess.RunBatch(nil, seeds, nil, emit); err != nil {
			trialErr = err
		}
	}
	lane() // warm up: lazy buffers settle
	if trialErr != nil {
		t.Fatal(trialErr)
	}
	if allocs := testing.AllocsPerRun(20, lane); allocs != 0 {
		t.Errorf("got %v allocs/lane after warmup, want 0", allocs)
	}
	if trialErr != nil {
		t.Fatal(trialErr)
	}
}

// TestLaneSpeedup is the regression tripwire for the lane engine's point:
// removing the coroutine round trip from every scheduled operation must keep
// lanes well ahead of pooled coroutine sessions. The recorded speedup
// (≈4.7×, see BENCH_sim.json's trial section) is measured by the benchmarks;
// this guard asserts a deliberately loose 2× so machine noise can't flake
// the suite.
func TestLaneSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison needs a long run")
	}
	const n = 8
	pooled := testing.Benchmark(func(b *testing.B) {
		cfg, prog := sessionWorkload(n)
		sess, err := Backend().NewSession(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Run(nil, uint64(i)+1); err != nil {
				b.Fatal(err)
			}
		}
	})
	lane := testing.Benchmark(func(b *testing.B) {
		cfg, prog := laneSeqWorkload(n, sched.NewUniformRandom())
		sess, err := NewLaneSession(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		seeds := make([]uint64, 64)
		var trialErr error
		emit := func(k int, res *exec.Result, err error) bool {
			trialErr = err
			return err == nil
		}
		b.ResetTimer()
		done := 0
		for done < b.N {
			k := len(seeds)
			if b.N-done < k {
				k = b.N - done
			}
			for j := 0; j < k; j++ {
				seeds[j] = uint64(done+j) + 1
			}
			if err := sess.RunBatch(nil, seeds[:k], nil, emit); err != nil {
				b.Fatal(err)
			}
			if trialErr != nil {
				b.Fatal(trialErr)
			}
			done += k
		}
	})
	ratio := float64(pooled.NsPerOp()) / float64(lane.NsPerOp())
	t.Logf("n=%d: pooled %d ns/trial, lane %d ns/trial, speedup %.2fx",
		n, pooled.NsPerOp(), lane.NsPerOp(), ratio)
	if ratio < 2 {
		t.Errorf("lane only %.2fx faster than pooled sessions, want ≥2x (≈4.7x expected)", ratio)
	}
}

// BenchmarkTrialLane is the lane half of the throughput claim: the same
// workload BenchmarkTrialReuse runs on pooled coroutine sessions, executed
// as op-coded lanes of 64 trials. Compare lane/n=K here against pooled/n=K
// there; the lane path must be ≥ 2× trials/sec (the coroutine round trip it
// removes is about half the cost of a step).
func BenchmarkTrialLane(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("lane/n=%d", n), func(b *testing.B) {
			cfg, prog := laneSeqWorkload(n, sched.NewUniformRandom())
			sess, err := NewLaneSession(cfg, prog)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			seeds := make([]uint64, 64)
			var trialErr error
			emit := func(k int, res *exec.Result, err error) bool {
				trialErr = err
				return err == nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				k := len(seeds)
				if b.N-done < k {
					k = b.N - done
				}
				for j := 0; j < k; j++ {
					seeds[j] = uint64(done+j) + 1
				}
				if err := sess.RunBatch(nil, seeds[:k], nil, emit); err != nil {
					b.Fatal(err)
				}
				if trialErr != nil {
					b.Fatal(trialErr)
				}
				done += k
			}
		})
	}
}
