// Package tas implements an n-process test-and-set (leader election) object
// as a binary tournament of two-process consensus instances — the classic
// reduction showing what consensus objects buy you downstream, instantiated
// here with the paper's own conciliator/ratifier protocol at n = 2 per
// tournament node.
//
// Each process enters at its leaf and climbs: at every internal node the
// winners of the two subtrees run a 2-process binary consensus on which
// side wins (side 0 proposes 0, side 1 proposes 1). A process that loses a
// node returns Lose immediately; the process that wins the root returns
// Win. Agreement per node makes the winner unique, and validity makes a
// walkover (empty opposing subtree — the opponent never showed up or
// crashed) decide for the present side, so exactly one completing process
// wins.
package tas

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Outcome is a test-and-set result.
type Outcome int

const (
	// Lose means some other process won.
	Lose Outcome = iota + 1
	// Win means this process is the unique winner.
	Win
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Lose:
		return "lose"
	case Win:
		return "win"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TAS is a one-shot n-process test-and-set object.
type TAS struct {
	n      int
	levels int
	// nodes[l][i] decides between the two children of node i at level l;
	// each is a 2-process binary consensus.
	nodes [][]*core.Protocol
}

// New allocates the tournament in file for n processes.
func New(file *register.File, n int) (*TAS, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tas: n=%d must be positive", n)
	}
	t := &TAS{n: n}
	for width := n; width > 1; width = (width + 1) / 2 {
		level := make([]*core.Protocol, width/2)
		l := len(t.nodes)
		for i := range level {
			p, err := newPairConsensus(file, l, i)
			if err != nil {
				return nil, err
			}
			level[i] = p
		}
		t.nodes = append(t.nodes, level)
		t.levels++
	}
	return t, nil
}

// newPairConsensus builds a 2-process binary consensus for one tournament
// node, with labels carrying the node coordinates.
func newPairConsensus(file *register.File, level, index int) (*core.Protocol, error) {
	base := (level*4096 + index) * 16
	return core.NewProtocol(core.Options{
		N:    2,
		File: file,
		NewRatifier: func(f *register.File, i int) core.Object {
			return ratifier.NewBinary(f, base+i)
		},
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, 2, base+i)
		},
		FastPath: true,
		Stages:   32,
		Fallback: fallback.New(file, 2, base),
	})
}

// Invoke runs the calling process's test-and-set. Exactly one completing
// process receives Win.
func (t *TAS) Invoke(e core.Env) Outcome {
	pos := e.PID()
	for l, level := range t.nodes {
		width := t.widthAt(l)
		if pos == width-1 && pos%2 == 0 {
			// Odd bracket: no opponent subtree at all; advance by bye.
			pos /= 2
			continue
		}
		node := level[pos/2]
		side := value.Value(pos % 2)
		out, ok := node.Run(pairEnv{Env: e, pid: int(side)}, side)
		if !ok {
			panic("tas: node consensus exhausted its chain despite fallback")
		}
		if out != side {
			return Lose
		}
		pos /= 2
	}
	return Win
}

// widthAt returns the number of tournament slots entering level l.
func (t *TAS) widthAt(level int) int {
	width := t.n
	for i := 0; i < level; i++ {
		width = (width + 1) / 2
	}
	return width
}

// Levels returns the tournament depth (⌈lg n⌉).
func (t *TAS) Levels() int { return t.levels }

// pairEnv renumbers the calling process to its side (0 or 1) within a
// tournament node's 2-process consensus.
type pairEnv struct {
	core.Env

	pid int
}

// PID returns the node-local process id.
func (p pairEnv) PID() int { return p.pid }

// N returns the node-local process count.
func (p pairEnv) N() int { return 2 }
