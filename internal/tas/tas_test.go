package tas

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

// runTAS executes one test-and-set among n processes and returns the
// per-process outcomes (0 for crashed/unfinished processes).
func runTAS(t *testing.T, n int, s sched.Scheduler, seed uint64, crash map[int]int) []Outcome {
	t.Helper()
	file := register.NewFile()
	obj, err := New(file, n)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]Outcome, n)
	_, err = sim.Run(sim.Config{N: n, File: file, Scheduler: s, Seed: seed, CrashAfter: crash},
		func(e *sim.Env) value.Value {
			o := obj.Invoke(e)
			outcomes[e.PID()] = o
			return value.Value(o)
		})
	if err != nil {
		t.Fatal(err)
	}
	return outcomes
}

func countWinners(outcomes []Outcome) int {
	wins := 0
	for _, o := range outcomes {
		if o == Win {
			wins++
		}
	}
	return wins
}

func TestExactlyOneWinner(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewUniformRandom() },
			func() sched.Scheduler { return sched.NewRoundRobin() },
			func() sched.Scheduler { return sched.NewFirstMoverAttack() },
			func() sched.Scheduler { return sched.NewFrontrunner() },
		} {
			for seed := uint64(0); seed < 8; seed++ {
				outcomes := runTAS(t, n, mk(), seed, nil)
				if got := countWinners(outcomes); got != 1 {
					t.Fatalf("n=%d seed=%d: %d winners (%v)", n, seed, got, outcomes)
				}
				for pid, o := range outcomes {
					if o != Win && o != Lose {
						t.Fatalf("n=%d pid=%d outcome %v", n, pid, o)
					}
				}
			}
		}
	}
}

func TestSoloAlwaysWins(t *testing.T) {
	outcomes := runTAS(t, 1, sched.NewRoundRobin(), 1, nil)
	if outcomes[0] != Win {
		t.Fatalf("solo outcome %v", outcomes[0])
	}
}

func TestWinnerDistributionNotDegenerate(t *testing.T) {
	// Under fair random scheduling every process should win sometimes.
	n := 4
	wins := make([]int, n)
	const trials = 120
	for seed := uint64(0); seed < trials; seed++ {
		outcomes := runTAS(t, n, sched.NewUniformRandom(), seed, nil)
		for pid, o := range outcomes {
			if o == Win {
				wins[pid]++
			}
		}
	}
	for pid, w := range wins {
		if w == 0 {
			t.Errorf("pid %d never won in %d trials: %v", pid, trials, wins)
		}
	}
}

func TestCrashTolerance(t *testing.T) {
	// At most one completer wins, and if a full side crashes the other
	// side's survivor still wins by walkover.
	n := 4
	for seed := uint64(0); seed < 20; seed++ {
		crash := map[int]int{0: 3, 1: 5}
		file := register.NewFile()
		obj, err := New(file, n)
		if err != nil {
			t.Fatal(err)
		}
		outcomes := make([]Outcome, n)
		res, err := sim.Run(sim.Config{
			N: n, File: file, Scheduler: sched.NewUniformRandom(), Seed: seed, CrashAfter: crash,
		}, func(e *sim.Env) value.Value {
			o := obj.Invoke(e)
			outcomes[e.PID()] = o
			return value.Value(o)
		})
		if err != nil {
			t.Fatal(err)
		}
		wins := 0
		for pid, o := range outcomes {
			if o == Win {
				if res.Crashed[pid] {
					t.Fatalf("seed %d: crashed pid %d reported Win", seed, pid)
				}
				wins++
			}
		}
		if wins != 1 {
			t.Fatalf("seed %d: %d winners among survivors (%v, crashed %v)", seed, wins, outcomes, res.Crashed)
		}
	}
}

func TestTournamentShape(t *testing.T) {
	file := register.NewFile()
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		obj, err := New(file, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := obj.Levels(); got != want {
			t.Errorf("n=%d: %d levels, want %d", n, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(register.NewFile(), 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Win.String() != "win" || Lose.String() != "lose" || Outcome(9).String() != "outcome(9)" {
		t.Fatal("outcome strings")
	}
}

func TestExactlyOneWinnerStress(t *testing.T) {
	// The tournament inherits the CIL fallback's subtle safety argument;
	// hammer it across many seeds and adversaries.
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, mk := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewLaggard() },
		func() sched.Scheduler { return sched.NewFirstMoverAttack() },
	} {
		for seed := uint64(0); seed < 300; seed++ {
			outcomes := runTAS(t, 5, mk(), seed, nil)
			if got := countWinners(outcomes); got != 1 {
				t.Fatalf("seed %d: %d winners (%v)", seed, got, outcomes)
			}
		}
	}
}
