// Package fault is the backend-neutral fault-injection plane.
//
// The paper's guarantees are adversarial: consensus objects must stay safe
// under crashes and hostile schedules (§2.1), and the related work shows how
// correctness erodes silently when the primitives underneath weaken
// (Hadzilacos–Hu–Toueg's regular-register consensus, Attiya–Enea–Welch's
// adversary blunting). This package turns those stress scenarios into data:
// a Plan is a typed, parseable list of faults that compiles into scheduler
// hooks for the deterministic simulator and into runtime injection points
// for the live (goroutine) backend, so both backends are stressed the same
// way by the same specification.
//
// Fault kinds:
//
//   - KindCrash — the process halts permanently after performing After
//     operations. After = 0 means the process performs no operations at
//     all. The After-th operation takes effect in shared memory, but the
//     process never observes its result (the model's crash semantics).
//   - KindCrashOnRound — the process crashes at its first operation once
//     the execution's global operation count enters round Round, where a
//     round is n consecutive global operations (round 1 = the first n).
//     This expresses round-based crash schedules from the literature
//     independent of how fast each process is scheduled.
//   - KindStall — after After operations the process stops taking steps
//     but does NOT crash: it stays in the execution, never halts, and the
//     run cannot complete. A stalled execution terminates only through
//     context cancellation, which is what the harness watchdog is for.
//   - KindDelay — every operation of the process is followed by a random
//     wall-clock delay, uniform in [0, Jitter]. On the simulator this
//     models a slow process without changing the schedule; on live it
//     perturbs the real interleaving.
//   - KindLoseCoin — each probabilistic write's coin is "lost" with
//     probability Num/Den: the process's coin stream is consumed as usual,
//     but a lost flip forces the write to fail. This degrades the
//     probabilistic-write primitive the way a weaker register would,
//     slowing termination without (if the protocol is correct) breaking
//     safety.
//
// Delay and lost-coin randomness comes from per-process fault streams
// derived from the execution seed with split indices private to this
// package — never from the process's own coin streams — so an empty or nil
// Plan leaves every execution bit-identical to a run without the fault
// plane (pinned by TestEmptyPlanBitIdentical and the sim golden fixtures).
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// AllProcs is the PID wildcard: the fault applies to every process.
const AllProcs = -1

// Never is the operation threshold meaning "not planned" (MaxInt).
const Never = math.MaxInt

// Kind enumerates the fault types.
type Kind int

const (
	// KindCrash crashes a process after a fixed number of its own
	// operations.
	KindCrash Kind = iota + 1
	// KindCrashOnRound crashes a process when the global execution enters
	// a given round (n operations per round).
	KindCrashOnRound
	// KindStall makes a process stop taking steps without crashing.
	KindStall
	// KindDelay adds random wall-clock delay after each operation.
	KindDelay
	// KindLoseCoin makes probabilistic-write coins fail with a given
	// probability.
	KindLoseCoin
)

// String returns the kind's canonical spec name.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindCrashOnRound:
		return "crashround"
	case KindStall:
		return "stall"
	case KindDelay:
		return "delay"
	case KindLoseCoin:
		return "losecoin"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one injection directive. Construct faults with the typed
// constructors (Crash, CrashOnRound, Stall, Delay, LoseCoin) or Parse.
type Fault struct {
	// Kind selects the fault type.
	Kind Kind
	// PID is the target process, or AllProcs for every process.
	PID int
	// After is the operation threshold for KindCrash and KindStall.
	After int
	// Round is the 1-based round for KindCrashOnRound.
	Round int
	// Jitter is the maximum per-operation delay for KindDelay.
	Jitter time.Duration
	// Num/Den is the loss probability for KindLoseCoin, kept as an exact
	// rational for the same reason xrand.Bernoulli takes one: rounding
	// through float64 would bias the very distribution being degraded.
	Num, Den uint64
}

// Crash returns a crash-after-k-operations fault. after = 0 crashes the
// process before it performs any operation.
func Crash(pid, after int) Fault { return Fault{Kind: KindCrash, PID: pid, After: after} }

// CrashOnRound returns a crash-on-round fault; rounds are 1-based blocks of
// n global operations. round <= 1 crashes the process at its first
// operation.
func CrashOnRound(pid, round int) Fault { return Fault{Kind: KindCrashOnRound, PID: pid, Round: round} }

// Stall returns a stall fault: after `after` operations the process stops
// taking steps without crashing. Executions containing stalled processes
// never complete on their own; they require a context (see the harness
// watchdog) to terminate.
func Stall(pid, after int) Fault { return Fault{Kind: KindStall, PID: pid, After: after} }

// Delay returns a per-operation delay-jitter fault: each of the process's
// operations is followed by a uniform random sleep in [0, max].
func Delay(pid int, max time.Duration) Fault { return Fault{Kind: KindDelay, PID: pid, Jitter: max} }

// LoseCoin returns a lost-coin-flip fault: each probabilistic write of the
// process fails outright with probability num/den.
func LoseCoin(pid int, num, den uint64) Fault {
	return Fault{Kind: KindLoseCoin, PID: pid, Num: num, Den: den}
}

// String renders the fault in the Parse grammar.
func (f Fault) String() string {
	pid := "*"
	if f.PID != AllProcs {
		pid = strconv.Itoa(f.PID)
	}
	switch f.Kind {
	case KindCrash, KindStall:
		return fmt.Sprintf("%s:pid=%s,after=%d", f.Kind, pid, f.After)
	case KindCrashOnRound:
		return fmt.Sprintf("%s:pid=%s,round=%d", f.Kind, pid, f.Round)
	case KindDelay:
		return fmt.Sprintf("%s:pid=%s,max=%s", f.Kind, pid, f.Jitter)
	case KindLoseCoin:
		return fmt.Sprintf("%s:pid=%s,p=%d/%d", f.Kind, pid, f.Num, f.Den)
	default:
		return fmt.Sprintf("%s:pid=%s", f.Kind, pid)
	}
}

// validate checks one fault independent of the process count.
func (f Fault) validate() error {
	if f.PID < AllProcs {
		return fmt.Errorf("fault: %s: pid %d (want >= 0, or * for all)", f.Kind, f.PID)
	}
	switch f.Kind {
	case KindCrash, KindStall:
		if f.After < 0 {
			return fmt.Errorf("fault: %s: after=%d must be >= 0", f.Kind, f.After)
		}
	case KindCrashOnRound:
		if f.Round < 0 {
			return fmt.Errorf("fault: crashround: round=%d must be >= 0", f.Round)
		}
	case KindDelay:
		if f.Jitter <= 0 {
			return fmt.Errorf("fault: delay: max=%s must be positive", f.Jitter)
		}
		if f.Jitter > time.Second {
			return fmt.Errorf("fault: delay: max=%s exceeds the 1s sanity cap", f.Jitter)
		}
	case KindLoseCoin:
		if f.Den == 0 {
			return errors.New("fault: losecoin: zero denominator")
		}
		if f.Num > f.Den {
			return fmt.Errorf("fault: losecoin: p=%d/%d exceeds 1", f.Num, f.Den)
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Plan is an ordered list of faults describing one execution's failure
// scenario. The zero value and nil are both the empty plan: no faults, and
// executions bit-identical to runs without the fault plane.
type Plan struct {
	// Faults holds the injection directives in specification order.
	Faults []Fault
}

// New returns a plan over the given faults.
func New(faults ...Fault) *Plan { return &Plan{Faults: faults} }

// FromCrashMap converts the legacy pid -> crash-after-k map into a plan
// (the map order is normalized so derived plans are deterministic).
func FromCrashMap(m map[int]int) *Plan {
	if len(m) == 0 {
		return nil
	}
	pids := make([]int, 0, len(m))
	for pid := range m {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	p := &Plan{Faults: make([]Fault, 0, len(pids))}
	for _, pid := range pids {
		p.Faults = append(p.Faults, Crash(pid, m[pid]))
	}
	return p
}

// Merge returns a plan containing the faults of both arguments (either or
// both may be nil; nil is returned when both are empty). The arguments are
// not mutated.
func Merge(a, b *Plan) *Plan {
	if a.Empty() && b.Empty() {
		return nil
	}
	out := &Plan{}
	if a != nil {
		out.Faults = append(out.Faults, a.Faults...)
	}
	if b != nil {
		out.Faults = append(out.Faults, b.Faults...)
	}
	return out
}

// Empty reports whether the plan (possibly nil) contains no faults.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// HasStall reports whether the plan contains any stall fault. Stalled
// executions never complete on their own, so backends require a context
// when this is true.
func (p *Plan) HasStall() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == KindStall {
			return true
		}
	}
	return false
}

// Validate checks every fault, and, when n > 0, that concrete pids are in
// range. n <= 0 skips the range check (for parse-time validation before
// the process count is known).
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault: plan entry %d: %w", i, err)
		}
		if n > 0 && f.PID != AllProcs && f.PID >= n {
			return fmt.Errorf("fault: plan entry %d: pid %d out of range [0, %d)", i, f.PID, n)
		}
	}
	return nil
}

// String renders the plan in the Parse grammar: specs joined by ';'.
// Parse(p.String()) reproduces the plan exactly (the fuzz target pins
// this round trip).
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	specs := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		specs[i] = f.String()
	}
	return strings.Join(specs, ";")
}

// Parse reads a plan from its textual form:
//
//	spec[;spec...]
//	spec     = kind ":" key=value[,key=value...]
//	kind     = crash | crashround | stall | delay | losecoin
//	pid      = integer process id, or "*" for all processes
//
//	crash:pid=2,after=5        crash pid 2 after 5 operations
//	crashround:pid=*,round=3   crash every process in global round 3
//	stall:pid=1,after=0        pid 1 never takes a step (but never halts)
//	delay:pid=*,max=200us      every op followed by a sleep in [0, 200µs]
//	losecoin:pid=*,p=1/8       probabilistic writes lose their coin w.p. 1/8
//
// losecoin probabilities accept an exact rational "num/den" or a decimal
// in [0, 1] (converted to a rational with a 2^32 denominator). The empty
// string parses to a nil plan.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var p Plan
	for _, spec := range strings.Split(s, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		f, err := parseSpec(spec)
		if err != nil {
			return nil, err
		}
		p.Faults = append(p.Faults, f)
	}
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return &p, nil
}

// parseSpec reads one kind:k=v,... directive.
func parseSpec(spec string) (Fault, error) {
	kindStr, params, ok := strings.Cut(spec, ":")
	if !ok {
		return Fault{}, fmt.Errorf("fault: spec %q: missing ':' (want kind:key=value,...)", spec)
	}
	var f Fault
	switch strings.TrimSpace(kindStr) {
	case "crash":
		f.Kind = KindCrash
	case "crashround":
		f.Kind = KindCrashOnRound
	case "stall":
		f.Kind = KindStall
	case "delay":
		f.Kind = KindDelay
	case "losecoin":
		f.Kind = KindLoseCoin
	default:
		return Fault{}, fmt.Errorf("fault: spec %q: unknown kind %q", spec, strings.TrimSpace(kindStr))
	}
	f.PID = AllProcs // pid defaults to every process
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Fault{}, fmt.Errorf("fault: spec %q: parameter %q is not key=value", spec, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return Fault{}, fmt.Errorf("fault: spec %q: duplicate key %q", spec, key)
		}
		seen[key] = true
		if err := f.setParam(key, val); err != nil {
			return Fault{}, fmt.Errorf("fault: spec %q: %w", spec, err)
		}
	}
	if err := f.requireParams(seen); err != nil {
		return Fault{}, fmt.Errorf("fault: spec %q: %w", spec, err)
	}
	return f, nil
}

// setParam applies one key=value pair to the fault under construction.
func (f *Fault) setParam(key, val string) error {
	switch key {
	case "pid":
		if val == "*" {
			f.PID = AllProcs
			return nil
		}
		pid, err := strconv.Atoi(val)
		if err != nil || pid < 0 {
			return fmt.Errorf("pid=%q (want a non-negative integer or *)", val)
		}
		f.PID = pid
	case "after":
		if f.Kind != KindCrash && f.Kind != KindStall {
			return fmt.Errorf("key %q not valid for %s", key, f.Kind)
		}
		k, err := strconv.Atoi(val)
		if err != nil || k < 0 {
			return fmt.Errorf("after=%q (want a non-negative integer)", val)
		}
		f.After = k
	case "round":
		if f.Kind != KindCrashOnRound {
			return fmt.Errorf("key %q not valid for %s", key, f.Kind)
		}
		r, err := strconv.Atoi(val)
		if err != nil || r < 0 {
			return fmt.Errorf("round=%q (want a non-negative integer)", val)
		}
		f.Round = r
	case "max":
		if f.Kind != KindDelay {
			return fmt.Errorf("key %q not valid for %s", key, f.Kind)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("max=%q: %v", val, err)
		}
		f.Jitter = d
	case "p":
		if f.Kind != KindLoseCoin {
			return fmt.Errorf("key %q not valid for %s", key, f.Kind)
		}
		num, den, err := parseProb(val)
		if err != nil {
			return err
		}
		f.Num, f.Den = num, den
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	return nil
}

// requireParams checks that the kind's mandatory parameter was supplied.
func (f *Fault) requireParams(seen map[string]bool) error {
	switch f.Kind {
	case KindCrash, KindStall:
		if !seen["after"] {
			return errors.New("missing after=")
		}
	case KindCrashOnRound:
		if !seen["round"] {
			return errors.New("missing round=")
		}
	case KindDelay:
		if !seen["max"] {
			return errors.New("missing max=")
		}
	case KindLoseCoin:
		if !seen["p"] {
			return errors.New("missing p=")
		}
	}
	return nil
}

// parseProb reads "num/den" exactly or a decimal in [0, 1] (converted to a
// 2^32-denominator rational).
func parseProb(val string) (num, den uint64, err error) {
	if numStr, denStr, ok := strings.Cut(val, "/"); ok {
		num, err1 := strconv.ParseUint(strings.TrimSpace(numStr), 10, 64)
		den, err2 := strconv.ParseUint(strings.TrimSpace(denStr), 10, 64)
		if err1 != nil || err2 != nil || den == 0 || num > den {
			return 0, 0, fmt.Errorf("p=%q (want num/den with 0 <= num <= den, den > 0)", val)
		}
		return num, den, nil
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || p < 0 || p > 1 || math.IsNaN(p) {
		return 0, 0, fmt.Errorf("p=%q (want a probability in [0, 1] or num/den)", val)
	}
	const scale = 1 << 32
	return uint64(math.Round(p * scale)), scale, nil
}
