package fault

import (
	"testing"
)

// FuzzParse pins three properties of the plan grammar:
//
//  1. Parse never panics, whatever the input.
//  2. Anything Parse accepts passes n-independent validation and survives
//     compilation for a small process count (after dropping out-of-range
//     pids, which Compile legitimately rejects).
//  3. String/Parse is a canonical round trip: re-parsing a plan's string
//     form reproduces the same string.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash:pid=2,after=5",
		"crashround:pid=*,round=3",
		"stall:pid=1,after=0",
		"delay:pid=*,max=200us",
		"losecoin:pid=*,p=1/8",
		"losecoin:pid=0,p=0.125",
		"crash:pid=0,after=0;stall:pid=*,after=7;losecoin:pid=3,p=3/4",
		"crash:after=1;;delay:max=1ms",
		"crash:pid=999999,after=1",
		"delay:pid=1,max=1h",
		"losecoin:p=1/0",
		"kind:pid=*",
		"crash:pid=1,after=1,after=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a plan and an error", s)
			}
			return
		}
		if p == nil {
			return // empty input
		}
		if err := p.Validate(0); err != nil {
			t.Fatalf("accepted plan %q fails validation: %v", p, err)
		}
		out := p.String()
		q, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", out, s, err)
		}
		if q.String() != out {
			t.Fatalf("round trip not canonical: %q -> %q", out, q.String())
		}
		// Compilation must never panic; errors are allowed only for pids
		// out of the compile-time range.
		if _, err := Compile(p, 4, 1); err != nil {
			if verr := p.Validate(4); verr == nil {
				t.Fatalf("Compile rejected in-range plan %q: %v", p, err)
			}
		}
	})
}
