package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"crash:pid=2,after=5",
		"crashround:pid=*,round=3",
		"stall:pid=1,after=0",
		"delay:pid=*,max=200µs",
		"losecoin:pid=*,p=1/8",
		"crash:pid=0,after=0;stall:pid=*,after=7;losecoin:pid=3,p=3/4",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q (-> %q): %v", s, p.String(), err)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip of %q: %q != %q", s, p.String(), q.String())
		}
	}
}

func TestParseDefaultsAndForms(t *testing.T) {
	// pid defaults to the * wildcard when omitted.
	p, err := Parse("crash:after=4")
	if err != nil {
		t.Fatal(err)
	}
	if p.Faults[0].PID != AllProcs {
		t.Fatalf("pid = %d, want AllProcs", p.Faults[0].PID)
	}
	// Decimal probabilities become exact 2^32-denominator rationals.
	p, err = Parse("losecoin:p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Faults[0]; f.Num != 1<<30 || f.Den != 1<<32 {
		t.Fatalf("p=0.25 parsed to %d/%d", f.Num, f.Den)
	}
	// Empty input and bare separators are the nil plan.
	for _, s := range []string{"", "  ", ";", "; ;"} {
		p, err := Parse(s)
		if err != nil || p != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", s, p, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"explode:pid=1",               // unknown kind
		"crash",                       // missing ':'
		"crash:pid=1",                 // missing after=
		"crash:pid=1,after=-1",        // negative threshold
		"crash:pid=-2,after=1",        // bad pid
		"crash:pid=1,after=1,after=2", // duplicate key
		"crash:pid=1,round=3",         // key from wrong kind
		"delay:pid=1,max=0s",          // non-positive jitter
		"delay:pid=1,max=2s",          // beyond sanity cap
		"losecoin:pid=1,p=5/4",        // p > 1
		"losecoin:pid=1,p=1/0",        // zero denominator
		"losecoin:pid=1,p=nope",       // unparseable
		"stall:pid=x,after=1",         // bad pid literal
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestValidateRange(t *testing.T) {
	p := New(Crash(5, 1))
	if err := p.Validate(0); err != nil {
		t.Fatalf("n-independent validation failed: %v", err)
	}
	if err := p.Validate(4); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("pid 5 accepted for n=4: %v", err)
	}
	if err := p.Validate(6); err != nil {
		t.Fatalf("pid 5 rejected for n=6: %v", err)
	}
}

func TestCompileThresholds(t *testing.T) {
	p := New(
		Crash(0, 5), Crash(0, 3), // min wins
		Stall(2, 7),
		CrashOnRound(1, 3),
		Delay(AllProcs, 100*time.Microsecond),
		LoseCoin(1, 1, 4), LoseCoin(1, 1, 2), // larger probability wins
	)
	in, err := Compile(p, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CrashAt(0); got != 3 {
		t.Fatalf("CrashAt(0) = %d", got)
	}
	if got := in.CrashAt(1); got != Never {
		t.Fatalf("CrashAt(1) = %d", got)
	}
	if got := in.StallAt(2); got != 7 {
		t.Fatalf("StallAt(2) = %d", got)
	}
	// Round 3 of n=4 starts at global operation 2*4+1 = 9.
	if got := in.CrashStep(1); got != 9 {
		t.Fatalf("CrashStep(1) = %d", got)
	}
	if !in.HasCrashStep() || !in.HasStall() {
		t.Fatal("compiled flags lost")
	}
	if in.lose[1] != [2]uint64{1, 2} {
		t.Fatalf("lose[1] = %v", in.lose[1])
	}
	// Delay draws are bounded and deterministic per seed.
	a, _ := Compile(p, 4, 9)
	b, _ := Compile(p, 4, 9)
	for i := 0; i < 100; i++ {
		da, db := a.OpDelay(3), b.OpDelay(3)
		if da != db {
			t.Fatal("OpDelay not deterministic per seed")
		}
		if da < 0 || da > 100*time.Microsecond {
			t.Fatalf("OpDelay out of range: %v", da)
		}
	}
}

func TestCompileEmptyPlanIsNil(t *testing.T) {
	for _, p := range []*Plan{nil, {}, New()} {
		in, err := Compile(p, 4, 1)
		if err != nil || in != nil {
			t.Fatalf("Compile(empty) = %v, %v; want nil, nil", in, err)
		}
	}
	// The nil injector answers every query as "no fault".
	var in *Injector
	if in.CrashAt(0) != Never || in.StallAt(0) != Never || in.CrashStep(0) != Never {
		t.Fatal("nil injector plans a fault")
	}
	if in.OpDelay(0) != 0 || in.LoseCoin(0) || in.HasStall() || in.HasCrashStep() {
		t.Fatal("nil injector draws or flags")
	}
}

func TestFromCrashMapAndMerge(t *testing.T) {
	if FromCrashMap(nil) != nil {
		t.Fatal("nil map should give nil plan")
	}
	p := FromCrashMap(map[int]int{3: 9, 0: 2})
	// Deterministic order: sorted by pid.
	if p.String() != "crash:pid=0,after=2;crash:pid=3,after=9" {
		t.Fatalf("FromCrashMap = %q", p)
	}
	m := Merge(p, New(Stall(1, 4)))
	if len(m.Faults) != 3 || !m.HasStall() {
		t.Fatalf("Merge = %q", m)
	}
	if Merge(nil, nil) != nil {
		t.Fatal("Merge(nil, nil) should be nil")
	}
	if got := Merge(nil, p); got.String() != p.String() {
		t.Fatalf("Merge(nil, p) = %q", got)
	}
}

func TestLoseCoinDrawFrequency(t *testing.T) {
	in, err := Compile(New(LoseCoin(0, 1, 2)), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const draws = 10_000
	for i := 0; i < draws; i++ {
		if in.LoseCoin(0) {
			lost++
		}
	}
	if lost < draws*4/10 || lost > draws*6/10 {
		t.Fatalf("p=1/2 lost %d/%d draws", lost, draws)
	}
}
