package fault

import (
	"fmt"
	"time"

	"github.com/modular-consensus/modcon/internal/xrand"
)

// faultStream is the split index base of the per-process fault RNG
// streams. It is disjoint from the process coin (1 + pid) and
// probabilistic-write (1_000_000 + pid) streams in internal/exec, so fault
// randomness never perturbs a process's own coins: an execution with a
// delay or lost-coin fault draws from streams a fault-free execution never
// touches, and an execution with an empty plan draws nothing at all.
const faultStream = 2_000_000

// Injector is a Plan compiled for one execution: per-process thresholds in
// dense arrays (one compare on the hot path, like the engines' crash
// slices) and per-process fault RNG streams. Backends consult it at their
// operation boundaries; a nil *Injector means "no faults" and must cost
// nothing.
//
// Injector methods are safe for concurrent use by distinct pids (each pid
// only touches its own entries and its own RNG stream), which is exactly
// how the live backend's free-running goroutines call them. No single pid's
// methods may be called concurrently with themselves — true on both
// backends, where a process is one coroutine or one goroutine.
type Injector struct {
	n int
	// crashAt / stallAt are per-pid own-operation thresholds (Never when
	// unplanned): the process crashes/stalls once its operation count
	// reaches the threshold. 0 fires before the first operation.
	crashAt []int
	stallAt []int
	// crashStep is the per-pid global-operation threshold compiled from
	// crash-on-round faults (Never when unplanned): the process crashes at
	// its first own operation whose 1-based global index is >= crashStep.
	crashStep []int
	// jitter is the per-pid max per-op delay (0 = none); loseNum/loseDen
	// the per-pid coin-loss probability (den 0 = none).
	jitter   []time.Duration
	lose     [][2]uint64
	src      []*xrand.Source
	anyStep  bool
	anyStall bool
}

// Compile lowers the plan for an n-process execution seeded with seed.
// The per-process fault streams are derived from the seed the same way on
// every backend, so a fault scenario is reproducible per (plan, seed) on
// the simulator and per (plan, seed, interleaving) on live. An empty plan
// compiles to a nil Injector.
func Compile(p *Plan, n int, seed uint64) (*Injector, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{
		n:         n,
		crashAt:   make([]int, n),
		stallAt:   make([]int, n),
		crashStep: make([]int, n),
		jitter:    make([]time.Duration, n),
		lose:      make([][2]uint64, n),
	}
	for pid := 0; pid < n; pid++ {
		in.crashAt[pid], in.stallAt[pid], in.crashStep[pid] = Never, Never, Never
	}
	each := func(f Fault, apply func(pid int)) {
		if f.PID == AllProcs {
			for pid := 0; pid < n; pid++ {
				apply(pid)
			}
			return
		}
		apply(f.PID)
	}
	for _, f := range p.Faults {
		switch f.Kind {
		case KindCrash:
			each(f, func(pid int) { in.crashAt[pid] = min(in.crashAt[pid], f.After) })
		case KindStall:
			each(f, func(pid int) { in.stallAt[pid] = min(in.stallAt[pid], f.After) })
			in.anyStall = true
		case KindCrashOnRound:
			// Round r (1-based) spans global operations (r-1)*n+1 .. r*n;
			// the process crashes at its first own operation inside or
			// after the round. Round <= 1 folds into crash-before-op-0
			// territory only at r=0, which validates but means "round 1".
			step := 1
			if f.Round > 1 {
				step = (f.Round-1)*n + 1
			}
			each(f, func(pid int) { in.crashStep[pid] = min(in.crashStep[pid], step) })
			in.anyStep = true
		case KindDelay:
			each(f, func(pid int) { in.jitter[pid] = max(in.jitter[pid], f.Jitter) })
		case KindLoseCoin:
			// Two lost-coin faults on one pid keep the larger probability
			// (compare num/den as cross products to stay exact).
			each(f, func(pid int) {
				cur := in.lose[pid]
				if cur[1] == 0 || f.Num*cur[1] > cur[0]*f.Den {
					in.lose[pid] = [2]uint64{f.Num, f.Den}
				}
			})
		default:
			return nil, fmt.Errorf("fault: compile: unknown kind %d", int(f.Kind))
		}
	}
	// Fault streams exist only for pids that draw (delay or lost-coin), so
	// plans made of crashes and stalls stay allocation-light.
	root := xrand.New(seed)
	for pid := 0; pid < n; pid++ {
		if in.jitter[pid] > 0 || in.lose[pid][1] != 0 {
			if in.src == nil {
				in.src = make([]*xrand.Source, n)
			}
			in.src[pid] = root.Split(uint64(faultStream + pid))
		}
	}
	return in, nil
}

// N returns the process count the injector was compiled for.
func (in *Injector) N() int { return in.n }

// Reseed rewinds the injector's per-process fault streams to the state
// Compile(plan, n, seed) would have produced, in place and without
// allocating. Thresholds and probabilities are seed-independent, so after a
// Reseed the injector behaves bit-identically to one freshly compiled with
// the same plan and the new seed — which is what lets a pooled session
// compile its plan once and replay a different trial seed every run. Safe on
// a nil injector.
func (in *Injector) Reseed(seed uint64) {
	if in == nil || in.src == nil {
		return
	}
	var root xrand.Source
	root.Reseed(seed)
	for pid, src := range in.src {
		if src != nil {
			root.SplitInto(src, uint64(faultStream+pid))
		}
	}
}

// CrashAt returns pid's own-operation crash threshold (Never if none). A
// nil injector reports Never.
func (in *Injector) CrashAt(pid int) int {
	if in == nil {
		return Never
	}
	return in.crashAt[pid]
}

// StallAt returns pid's own-operation stall threshold (Never if none).
func (in *Injector) StallAt(pid int) int {
	if in == nil {
		return Never
	}
	return in.stallAt[pid]
}

// CrashStep returns pid's global-operation crash threshold (Never if
// none); thresholds are 1-based global operation indices.
func (in *Injector) CrashStep(pid int) int {
	if in == nil {
		return Never
	}
	return in.crashStep[pid]
}

// HasCrashStep reports whether any crash-on-round fault was compiled, so
// backends only maintain a global operation counter when one is needed.
func (in *Injector) HasCrashStep() bool { return in != nil && in.anyStep }

// HasStall reports whether any stall fault was compiled.
func (in *Injector) HasStall() bool { return in != nil && in.anyStall }

// OpDelay draws pid's next per-operation delay: uniform in [0, max], 0
// when pid has no delay fault. Deterministic per (plan, seed, pid, call
// index).
func (in *Injector) OpDelay(pid int) time.Duration {
	if in == nil || in.jitter[pid] <= 0 {
		return 0
	}
	return time.Duration(in.src[pid].Intn(int(in.jitter[pid]) + 1))
}

// LoseCoin draws whether pid's current probabilistic write loses its coin.
func (in *Injector) LoseCoin(pid int) bool {
	if in == nil || in.lose[pid][1] == 0 {
		return false
	}
	return in.src[pid].Bernoulli(in.lose[pid][0], in.lose[pid][1])
}
