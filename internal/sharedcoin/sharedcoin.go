// Package sharedcoin implements weak shared coins (§5.1).
//
// A weak shared coin with agreement probability δ is a protocol in which
// each process outputs a bit such that, for each b ∈ {0,1}, the probability
// that *all* processes output b is at least δ, regardless of the adversary.
// The paper shows (Theorem 6) that any weak shared coin yields a 2-valued
// conciliator at the cost of two extra registers and two operations.
package sharedcoin

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Coin is a one-shot weak shared coin: each process calls Flip at most once
// and receives a bit (as value.Value 0 or 1).
type Coin interface {
	// Flip executes the calling process's side of the coin protocol.
	Flip(e core.Env) value.Value
	// Label names the coin in traces and reports.
	Label() string
}

// Voting is the classic Aspnes–Herlihy-style voting coin: processes
// repeatedly flip local coins and publish a running (votes-cast, net-sum)
// tally in single-writer registers; once the collected total number of votes
// reaches the threshold n², every process outputs the sign of the collected
// net sum. The ±1 votes perform a random walk whose drift the adversary can
// bias by at most n hidden votes, which is o(√(n²)) of the walk's standard
// deviation — hence constant agreement probability even against the strong
// adversary, at Θ(n) votes and Θ(n²·n) total work.
type Voting struct {
	tally register.Array // tally.At(p) holds PackPair(votesCast, net+votesCast)
	n     int
	label string

	// Threshold overrides the total-vote threshold (default n²). Lowering
	// it trades agreement probability for work; tests use it to keep small
	// experiments fast.
	Threshold int
	// Batch is the number of local votes cast between collects (default 1).
	// Batching reduces total work by a factor of ~Batch while inflating the
	// threshold overshoot by at most n·Batch votes.
	Batch int
}

var _ Coin = (*Voting)(nil)

// NewVoting allocates the voting coin's n single-writer registers. mem is
// any register allocator — a *register.File under any consistency model.
func NewVoting(mem register.Allocator, n, index int) *Voting {
	if n <= 0 {
		panic(fmt.Sprintf("sharedcoin: n=%d must be positive", n))
	}
	label := fmt.Sprintf("coin%d", index)
	return &Voting{
		tally:     mem.Alloc(n, label+".tally"),
		n:         n,
		label:     label,
		Threshold: n * n,
		Batch:     1,
	}
}

// Flip implements Coin.
func (c *Voting) Flip(e core.Env) value.Value {
	pid := e.PID()
	votes, net := 0, 0
	for {
		total, sum := collectTally(e, c.tally)
		if total >= c.Threshold {
			if sum >= 0 {
				return 1
			}
			return 0
		}
		for i := 0; i < c.Batch; i++ {
			if e.CoinBool() {
				net++
			} else {
				net--
			}
			votes++
		}
		e.Write(c.tally.At(pid), packTally(votes, net))
	}
}

// Label implements Coin.
func (c *Voting) Label() string { return c.label }

// collectTally collects a (count, net) tally array and returns the summed
// totals — the shared read side of both voting coins. The count slot is
// votes for Voting and variance units for Weighted; the arithmetic is
// identical either way.
func collectTally(e core.Env, tally register.Array) (total, sum int) {
	for _, raw := range e.Collect(tally) {
		if raw.IsNone() {
			continue
		}
		count, net := unpackTally(raw)
		total += count
		sum += net
	}
	return total, sum
}

// packTally encodes (votes, net) with net ∈ [-votes, votes] shifted to be
// non-negative.
func packTally(votes, net int) value.Value {
	return value.PackPair(votes, value.Value(net+votes))
}

func unpackTally(raw value.Value) (votes, net int) {
	votes, shifted := value.UnpackPair(raw)
	return votes, int(shifted) - votes
}

// Local is a degenerate shared coin in which each process simply flips its
// own local coin. Its agreement probability is only 2^{-(n-1)} per side —
// *not* constant — so it is NOT a weak shared coin for large n; it exists as
// a negative control and for exercising coin-based conciliators cheaply in
// tests (at n ≤ 3 its δ = 1/4 is respectable).
type Local struct {
	label string
}

var _ Coin = (*Local)(nil)

// NewLocal returns a local-coin "shared" coin.
func NewLocal(index int) *Local {
	return &Local{label: fmt.Sprintf("localcoin%d", index)}
}

// Flip implements Coin.
func (c *Local) Flip(e core.Env) value.Value {
	if e.CoinBool() {
		return 1
	}
	return 0
}

// Label implements Coin.
func (c *Local) Label() string { return c.label }
