package sharedcoin

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/value"
)

// flipAll executes coin for n processes and returns outputs plus the result.
func flipAll(t *testing.T, file *register.File, coin Coin, n int, s sched.Scheduler, seed uint64) (*sim.Result, []value.Value) {
	t.Helper()
	outs := make([]value.Value, n)
	res, err := sim.Run(sim.Config{N: n, File: file, Scheduler: s, Seed: seed},
		func(e *sim.Env) value.Value {
			v := coin.Flip(e)
			outs[e.PID()] = v
			return v
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, outs
}

func TestVotingOutputsAreBits(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		file := register.NewFile()
		coin := NewVoting(file, 4, 1)
		_, outs := flipAll(t, file, coin, 4, sched.NewUniformRandom(), seed)
		for pid, v := range outs {
			if v != 0 && v != 1 {
				t.Fatalf("pid %d output %s", pid, v)
			}
		}
	}
}

func TestVotingAgreementProbability(t *testing.T) {
	// Both all-0 and all-1 must each occur with constant probability; with
	// an oblivious scheduler agreement should in fact dominate.
	const trials = 300
	n := 4
	all0, all1, agree := 0, 0, 0
	for seed := uint64(0); seed < trials; seed++ {
		file := register.NewFile()
		coin := NewVoting(file, n, 1)
		_, outs := flipAll(t, file, coin, n, sched.NewUniformRandom(), seed)
		if check.Unanimous(outs) {
			agree++
			if outs[0] == 0 {
				all0++
			} else {
				all1++
			}
		}
	}
	if all0 < trials/20 || all1 < trials/20 {
		t.Errorf("sides not both constant-probability: all0=%d all1=%d / %d", all0, all1, trials)
	}
	if agree < trials/2 {
		t.Errorf("agreement only %d/%d under oblivious scheduling", agree, trials)
	}
}

func TestVotingNearFairness(t *testing.T) {
	// Over many seeds, side 1 should win roughly half the time. Ties in
	// the net sum resolve to 1, so use a threshold large enough (≈100
	// votes) that ties are rare; the default n² threshold at n=2 would
	// leave a visible tie bias.
	const trials = 400
	ones := 0
	for seed := uint64(0); seed < trials; seed++ {
		file := register.NewFile()
		coin := NewVoting(file, 2, 1)
		coin.Threshold = 101
		_, outs := flipAll(t, file, coin, 2, sched.NewRoundRobin(), seed)
		if outs[0] == 1 {
			ones++
		}
	}
	if ones < trials/3 || ones > 2*trials/3 {
		t.Errorf("side-1 rate %d/%d far from fair", ones, trials)
	}
}

func TestVotingThresholdControlsWork(t *testing.T) {
	n := 4
	work := func(threshold int) int {
		file := register.NewFile()
		coin := NewVoting(file, n, 1)
		coin.Threshold = threshold
		res, _ := flipAll(t, file, coin, n, sched.NewRoundRobin(), 7)
		return res.TotalWork
	}
	small, large := work(n), work(4*n*n)
	if small >= large {
		t.Errorf("threshold did not scale work: %d vs %d", small, large)
	}
}

func TestVotingBatchReducesWork(t *testing.T) {
	n := 6
	run := func(batch int) int {
		file := register.NewFile()
		coin := NewVoting(file, n, 1)
		coin.Batch = batch
		res, _ := flipAll(t, file, coin, n, sched.NewRoundRobin(), 11)
		return res.TotalWork
	}
	if b1, b8 := run(1), run(8); b8 >= b1 {
		t.Errorf("batching did not reduce work: batch1=%d batch8=%d", b1, b8)
	}
}

func TestVotingSolo(t *testing.T) {
	// One participant: votes alone to the threshold and returns a bit.
	file := register.NewFile()
	coin := NewVoting(file, 3, 1)
	outs := make([]value.Value, 1)
	res, err := sim.Run(sim.Config{N: 1, File: file, Scheduler: sched.NewRoundRobin(), Seed: 3},
		func(e *sim.Env) value.Value {
			outs[0] = coin.Flip(e)
			return outs[0]
		})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != 0 && outs[0] != 1 {
		t.Fatalf("solo output %s", outs[0])
	}
	// Solo must cast ≥ Threshold votes, each with a write and collect.
	if res.TotalWork < coin.Threshold {
		t.Fatalf("solo work %d below threshold %d", res.TotalWork, coin.Threshold)
	}
}

func TestLocalCoinSmallN(t *testing.T) {
	// n=2 local coins agree with probability 1/2; each side ≥ 1/8 of runs.
	const trials = 400
	all0, all1 := 0, 0
	for seed := uint64(0); seed < trials; seed++ {
		file := register.NewFile()
		file.Alloc1("pad")
		coin := NewLocal(1)
		_, outs := flipAll(t, file, coin, 2, sched.NewRoundRobin(), seed)
		if check.Unanimous(outs) {
			if outs[0] == 0 {
				all0++
			} else {
				all1++
			}
		}
	}
	if all0 < trials/8 || all1 < trials/8 {
		t.Errorf("local coin sides: all0=%d all1=%d / %d", all0, all1, trials)
	}
}

func TestTallyPacking(t *testing.T) {
	cases := []struct{ votes, net int }{
		{0, 0}, {1, 1}, {1, -1}, {10, -10}, {10, 10}, {100, 0}, {57, -3},
	}
	for _, tt := range cases {
		v, n := unpackTally(packTally(tt.votes, tt.net))
		if v != tt.votes || n != tt.net {
			t.Errorf("tally (%d,%d) round-tripped to (%d,%d)", tt.votes, tt.net, v, n)
		}
	}
}

func TestLabels(t *testing.T) {
	file := register.NewFile()
	if got := NewVoting(file, 2, 3).Label(); got != "coin3" {
		t.Errorf("voting label %q", got)
	}
	if got := NewLocal(2).Label(); got != "localcoin2" {
		t.Errorf("local label %q", got)
	}
}

func TestVotingRejectsBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVoting(register.NewFile(), 0, 1)
}

// Interface assertions against core.Env usage.
var _ core.Env = (*sim.Env)(nil)

func TestWeightedOutputsAreBits(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		file := register.NewFile()
		coin := NewWeighted(file, 4, 1)
		_, outs := flipAll(t, file, coin, 4, sched.NewUniformRandom(), seed)
		for pid, v := range outs {
			if v != 0 && v != 1 {
				t.Fatalf("pid %d output %s", pid, v)
			}
		}
	}
}

func TestWeightedBothSidesOccur(t *testing.T) {
	const trials = 300
	n := 4
	all0, all1 := 0, 0
	for seed := uint64(0); seed < trials; seed++ {
		file := register.NewFile()
		coin := NewWeighted(file, n, 1)
		_, outs := flipAll(t, file, coin, n, sched.NewUniformRandom(), seed)
		if check.Unanimous(outs) {
			if outs[0] == 0 {
				all0++
			} else {
				all1++
			}
		}
	}
	if all0 < trials/20 || all1 < trials/20 {
		t.Errorf("weighted coin sides: all0=%d all1=%d / %d", all0, all1, trials)
	}
}

func TestWeightedSoloIsLogarithmic(t *testing.T) {
	// The whole point of growing weights: a solo run reaches the variance
	// threshold in O(log threshold) votes, vs Θ(threshold) unweighted.
	n := 32
	soloWork := func(coin Coin, file *register.File) int {
		res, err := sim.Run(sim.Config{N: 1, File: file, Scheduler: sched.NewRoundRobin(), Seed: 3},
			func(e *sim.Env) value.Value { return coin.Flip(e) })
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalWork
	}
	fileW := register.NewFile()
	weighted := soloWork(NewWeighted(fileW, n, 1), fileW)
	fileV := register.NewFile()
	unweighted := soloWork(NewVoting(fileV, n, 1), fileV)
	if weighted*10 > unweighted {
		t.Errorf("weighted solo %d ops vs unweighted %d ops: expected ≥10x separation", weighted, unweighted)
	}
}

func TestWeightedPeriodSlowsGrowth(t *testing.T) {
	file := register.NewFile()
	c := NewWeighted(file, 4, 1)
	c.Threshold = 1 << 20 // keep the cap out of the way for the growth check
	if c.weight(0) != 1 || c.weight(1) != 2 || c.weight(3) != 8 {
		t.Fatalf("period-1 weights: %d %d %d", c.weight(0), c.weight(1), c.weight(3))
	}
	c.Period = 3
	if c.weight(2) != 1 || c.weight(3) != 2 || c.weight(6) != 4 {
		t.Fatalf("period-3 weights: %d %d %d", c.weight(2), c.weight(3), c.weight(6))
	}
	// Cap: weight² never exceeds threshold by more than one doubling.
	c.Period = 1
	c.Threshold = 100
	for k := 0; k < 40; k++ {
		if w := c.weight(k); w*w >= 4*c.Threshold {
			t.Fatalf("weight(%d) = %d runs far past the cap", k, w)
		}
	}
}
