package sharedcoin

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Weighted is a voting shared coin with geometrically increasing vote
// weights — the mechanism of Aspnes–Attiya–Censor and Aspnes–Waarts that
// the paper explicitly credits as the inspiration for its impatient
// conciliator ("analogously to the increasing weighted votes of
// [7, 8, 10]"). A process's k-th vote carries weight 2^⌊k/Period⌋; voting
// stops once the collected total *variance* (Σ weight²) reaches the
// threshold. Growing weights let a process running alone reach the
// variance threshold in O(Period · log threshold) votes instead of
// Θ(threshold), the same individual-work saving impatience buys the
// conciliator — in exchange, late heavy votes concentrate influence, so
// the agreement guarantee degrades against stronger adversaries (measured
// empirically in the experiments; the unweighted Voting coin keeps the
// classic guarantee).
type Weighted struct {
	tally register.Array // tally.At(p) holds packTally(varianceUnits, net)
	n     int
	label string

	// Threshold is the total-variance target (default n²).
	Threshold int
	// Period is the number of votes between weight doublings (default 1:
	// every vote doubles, the most impatient schedule).
	Period int
}

var _ Coin = (*Weighted)(nil)

// NewWeighted allocates the coin's n single-writer registers. mem is any
// register allocator — a *register.File under any consistency model.
func NewWeighted(mem register.Allocator, n, index int) *Weighted {
	if n <= 0 {
		panic(fmt.Sprintf("sharedcoin: n=%d must be positive", n))
	}
	label := fmt.Sprintf("wcoin%d", index)
	return &Weighted{
		tally:     mem.Alloc(n, label+".tally"),
		n:         n,
		label:     label,
		Threshold: n * n,
		Period:    1,
	}
}

// Flip implements Coin.
func (c *Weighted) Flip(e core.Env) value.Value {
	pid := e.PID()
	votes, variance, net := 0, 0, 0
	for {
		total, sum := collectTally(e, c.tally)
		if total >= c.Threshold {
			if sum >= 0 {
				return 1
			}
			return 0
		}
		w := c.weight(votes)
		if e.CoinBool() {
			net += w
		} else {
			net -= w
		}
		variance += w * w
		votes++
		e.Write(c.tally.At(pid), packTally(variance, net))
	}
}

// weight returns the k-th vote's weight, capped so a single vote's variance
// cannot exceed the threshold (heavier votes add nothing: the flip after
// one maximal vote already crosses the threshold).
func (c *Weighted) weight(k int) int {
	w := 1
	for i := 0; i < k/c.Period; i++ {
		w *= 2
		if w*w >= c.Threshold {
			return w
		}
	}
	return w
}

// Label implements Coin.
func (c *Weighted) Label() string { return c.label }
