package exp

import (
	"fmt"
	"math"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
)

// thm7Delta is the paper's lower bound on the impatient conciliator's
// agreement probability: (1 - e^{-1/4})/4.
var thm7Delta = (1 - math.Exp(-0.25)) / 4

// conciliatorTrial runs one fresh impatient conciliator with distinct
// inputs and reports whether all outputs agreed, plus work measures.
func conciliatorTrial(n int, growth conciliator.Growth, detect bool, s sched.Scheduler, seed uint64) (agreed bool, total, individual int) {
	file := register.NewFile()
	c := conciliator.NewImpatient(file, n, 1)
	c.Growth = growth
	c.DetectSuccess = detect
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: n, File: file, Inputs: mixedInputs(n, n, int(seed)), Scheduler: s, Seed: seed,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: conciliator trial failed: %v", err))
	}
	return check.Unanimous(run.Outputs()), run.Result.TotalWork, run.Result.MaxIndividualWork()
}

// E1ConciliatorAgreement estimates the impatient conciliator's agreement
// probability per adversary and n, against Theorem 7's δ ≈ 0.0553.
func E1ConciliatorAgreement(cfg Config) *Table {
	t := &Table{
		ID:         "E1",
		Title:      "Impatient conciliator agreement probability",
		PaperClaim: fmt.Sprintf("Theorem 7: agreement probability ≥ (1-e^{-1/4})/4 ≈ %.4f for any location-oblivious adversary", thm7Delta),
		Columns:    []string{"n", "adversary", "δ̂ (95% CI)", "≥ paper bound?"},
	}
	trials := cfg.trials(400)
	minDelta := 1.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		for _, adv := range adversaryPortfolio() {
			agree := 0
			for i := 0; i < trials; i++ {
				ok, _, _ := conciliatorTrial(n, conciliator.GrowthDoubling, false, adv.New(), cfg.Seed+uint64(i))
				if ok {
					agree++
				}
			}
			p := stats.NewProportion(agree, trials)
			verdict := "yes"
			if p.P < thm7Delta {
				verdict = "NO"
			}
			if p.P < minDelta {
				minDelta = p.P
			}
			t.AddRow(fmt.Sprintf("%d", n), adv.Name, p.String(), verdict)
		}
	}
	t.AddNote("minimum empirical δ over the portfolio: %.4f (paper lower bound %.4f)", minDelta, thm7Delta)
	return t
}

// E2ConciliatorTotalWork measures expected total work against the 6n bound.
func E2ConciliatorTotalWork(cfg Config) *Table {
	t := &Table{
		ID:         "E2",
		Title:      "Impatient conciliator expected total work",
		PaperClaim: "Theorem 7: termination in expected 6n total work",
		Columns:    []string{"n", "adversary", "mean total work", "6n", "ratio"},
	}
	trials := cfg.trials(300)
	var ns, ys []float64
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, adv := range adversaryPortfolio() {
			var works []float64
			for i := 0; i < trials; i++ {
				_, total, _ := conciliatorTrial(n, conciliator.GrowthDoubling, false, adv.New(), cfg.Seed+uint64(i))
				works = append(works, float64(total))
			}
			s := stats.Summarize(works)
			t.AddRow(fmt.Sprintf("%d", n), adv.Name,
				fmt.Sprintf("%.1f ± %.1f", s.Mean, s.StandardErrorOfM),
				fmt.Sprintf("%d", 6*n),
				fmt.Sprintf("%.2f", s.Mean/float64(6*n)))
			if adv.Name == "first-mover-attack" {
				ns = append(ns, float64(n))
				ys = append(ys, s.Mean)
			}
		}
	}
	fit := stats.BestShape(ns, ys, stats.ShapeLog, stats.ShapeLinear, stats.ShapeNLogN)
	t.AddNote("total work growth under attack: best fit %s", fit)
	return t
}

// E3ConciliatorIndividualWork measures the worst-case individual work
// against the 2 lg n + O(1) bound.
func E3ConciliatorIndividualWork(cfg Config) *Table {
	t := &Table{
		ID:         "E3",
		Title:      "Impatient conciliator individual work",
		PaperClaim: "Theorem 7: at most 2 lg n + O(1) individual work (deterministic bound)",
		Columns:    []string{"n", "max observed (all adversaries)", "mean observed", "2⌈lg n⌉+5", "within bound?"},
	}
	trials := cfg.trials(150)
	var ns, ys []float64
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		maxObs, sum, count := 0, 0.0, 0
		for _, adv := range adversaryPortfolio() {
			for i := 0; i < trials; i++ {
				_, _, ind := conciliatorTrial(n, conciliator.GrowthDoubling, false, adv.New(), cfg.Seed+uint64(i))
				if ind > maxObs {
					maxObs = ind
				}
				sum += float64(ind)
				count++
			}
		}
		bound := 2*int(math.Ceil(math.Log2(float64(n)))) + 5
		verdict := "yes"
		if maxObs > bound {
			verdict = "NO"
		}
		mean := sum / float64(count)
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", maxObs),
			fmt.Sprintf("%.1f", mean), fmt.Sprintf("%d", bound), verdict)
		ns = append(ns, float64(n))
		ys = append(ys, float64(maxObs))
	}
	fit := stats.BestShape(ns, ys, stats.ShapeConst, stats.ShapeLog, stats.ShapeLinear)
	t.AddNote("worst-case individual work growth: best fit %s", fit)
	return t
}

// E8BaselineComparison pits the impatient conciliator against the
// constant-rate Chor–Israeli–Li/Cheung baseline on solo executions, the
// regime that exposes the individual-work separation.
func E8BaselineComparison(cfg Config) *Table {
	t := &Table{
		ID:         "E8",
		Title:      "Individual work: impatient (2^k/n) vs constant-rate (1/n) first-mover conciliators",
		PaperClaim: "\"No previous protocol in this model uses sublinear individual work\": impatient is O(log n), constant-rate is Θ(n)",
		Columns:    []string{"n", "impatient mean ops", "constant-rate mean ops", "speedup"},
	}
	trials := cfg.trials(200)
	var ns, impY, constY []float64
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		var imp, con []float64
		for i := 0; i < trials; i++ {
			// Solo execution: the conciliator is built for n processes but
			// only one participates — the schedule an oblivious adversary
			// produces by running one process to completion first.
			file := register.NewFile()
			c := conciliator.NewImpatient(file, n, 1)
			run, err := harness.RunObject(c, harness.ObjectConfig{
				N: 1, File: file, Inputs: mixedInputs(1, 2, 0),
				Scheduler: sched.NewRoundRobin(), Seed: cfg.Seed + uint64(i),
			})
			if err != nil {
				panic(err)
			}
			imp = append(imp, float64(run.Result.TotalWork))

			file2 := register.NewFile()
			c2 := conciliator.NewConstantRate(file2, n, 1)
			run2, err := harness.RunObject(c2, harness.ObjectConfig{
				N: 1, File: file2, Inputs: mixedInputs(1, 2, 0),
				Scheduler: sched.NewRoundRobin(), Seed: cfg.Seed + uint64(i),
			})
			if err != nil {
				panic(err)
			}
			con = append(con, float64(run2.Result.TotalWork))
		}
		mi, mc := stats.Summarize(imp).Mean, stats.Summarize(con).Mean
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", mi), fmt.Sprintf("%.1f", mc),
			fmt.Sprintf("%.1fx", mc/mi))
		ns = append(ns, float64(n))
		impY = append(impY, mi)
		constY = append(constY, mc)
	}
	t.AddNote("impatient growth: %s", stats.BestShape(ns, impY, stats.ShapeLog, stats.ShapeLinear))
	t.AddNote("constant-rate growth: %s", stats.BestShape(ns, constY, stats.ShapeLog, stats.ShapeLinear))
	return t
}
