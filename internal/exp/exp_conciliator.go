package exp

import (
	"context"
	"fmt"
	"math"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// thm7Delta is the paper's lower bound on the impatient conciliator's
// agreement probability: (1 - e^{-1/4})/4.
var thm7Delta = (1 - math.Exp(-0.25)) / 4

// conciliatorSweep runs fresh impatient-conciliator executions with mixed
// inputs on the parallel trial engine, folding each trial's agreement flag
// and work measures in trial order.
func conciliatorSweep(s harness.Sweep, n int, growth conciliator.Growth, detect bool,
	mk func() sched.Scheduler, fold func(agreed bool, total, individual int)) {
	mustSweep(harness.SweepObject(s,
		harness.ObjectSweep{
			Build: func() (core.Object, harness.ObjectConfig) {
				file := register.NewFile()
				c := conciliator.NewImpatient(file, n, 1)
				c.Growth = growth
				c.DetectSuccess = detect
				return c, harness.ObjectConfig{
					N: n, File: file, Inputs: mixedInputs(n, n, 0), Scheduler: mk(),
				}
			},
			Inputs: func(t harness.Trial) []value.Value { return mixedInputs(n, n, t.Index) },
		},
		func(_ harness.Trial, run *harness.ObjectRun) {
			fold(check.Unanimous(run.Outputs()), run.Result.TotalWork, run.Result.MaxIndividualWork())
		}))
}

// E1ConciliatorAgreement estimates the impatient conciliator's agreement
// probability per adversary and n, against Theorem 7's δ ≈ 0.0553.
func E1ConciliatorAgreement(cfg Config) *Table {
	t := &Table{
		ID:         "E1",
		Title:      "Impatient conciliator agreement probability",
		PaperClaim: fmt.Sprintf("Theorem 7: agreement probability ≥ (1-e^{-1/4})/4 ≈ %.4f for any location-oblivious adversary", thm7Delta),
		Columns:    []string{"n", "adversary", "δ̂ (95% CI)", "≥ paper bound?"},
	}
	trials := cfg.trials(400)
	minDelta := 1.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		for _, adv := range adversaryPortfolio() {
			var agree stats.Tally
			conciliatorSweep(cfg.sweep(trials), n, conciliator.GrowthDoubling, false, adv.New,
				func(ok bool, _, _ int) { agree.Add(ok) })
			p := agree.Proportion()
			verdict := "yes"
			if p.P < thm7Delta {
				verdict = "NO"
			}
			if p.P < minDelta {
				minDelta = p.P
			}
			t.AddRow(fmt.Sprintf("%d", n), adv.Name, p.String(), verdict)
		}
	}
	t.AddNote("minimum empirical δ over the portfolio: %.4f (paper lower bound %.4f)", minDelta, thm7Delta)
	return t
}

// E2ConciliatorTotalWork measures expected total work against the 6n bound,
// with per-cell work distributions (the tail, not just the mean).
func E2ConciliatorTotalWork(cfg Config) *Table {
	t := &Table{
		ID:         "E2",
		Title:      "Impatient conciliator expected total work",
		PaperClaim: "Theorem 7: termination in expected 6n total work",
		Columns:    []string{"n", "adversary", "mean total work", "p50/p90/p99", "6n", "ratio"},
	}
	trials := cfg.trials(300)
	var ns, ys []float64
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, adv := range adversaryPortfolio() {
			works := &obs.Hist{}
			conciliatorSweep(cfg.sweep(trials), n, conciliator.GrowthDoubling, false, adv.New,
				func(_ bool, total, _ int) { works.AddInt(total) })
			t.AddRow(fmt.Sprintf("%d", n), adv.Name,
				fmt.Sprintf("%.1f ± %.1f", works.Mean(), works.SE()),
				fmt.Sprintf("%d/%d/%d", works.P50(), works.P90(), works.P99()),
				fmt.Sprintf("%d", 6*n),
				fmt.Sprintf("%.2f", works.Mean()/float64(6*n)))
			if adv.Name == "first-mover-attack" {
				ns = append(ns, float64(n))
				ys = append(ys, works.Mean())
				t.AddDist(fmt.Sprintf("total work n=%d first-mover-attack", n), works)
			}
		}
	}
	fit := stats.BestShape(ns, ys, stats.ShapeLog, stats.ShapeLinear, stats.ShapeNLogN)
	t.AddNote("total work growth under attack: best fit %s", fit)
	return t
}

// E3ConciliatorIndividualWork measures the worst-case individual work
// against the 2 lg n + O(1) bound.
func E3ConciliatorIndividualWork(cfg Config) *Table {
	t := &Table{
		ID:         "E3",
		Title:      "Impatient conciliator individual work",
		PaperClaim: "Theorem 7: at most 2 lg n + O(1) individual work (deterministic bound)",
		Columns:    []string{"n", "max observed (all adversaries)", "mean observed", "p50/p90/p99", "2⌈lg n⌉+5", "within bound?"},
	}
	trials := cfg.trials(150)
	var ns, ys []float64
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256} {
		ind := &obs.Hist{}
		for _, adv := range adversaryPortfolio() {
			conciliatorSweep(cfg.sweep(trials), n, conciliator.GrowthDoubling, false, adv.New,
				func(_ bool, _, iw int) { ind.AddInt(iw) })
		}
		maxObs := int(ind.Max())
		bound := 2*int(math.Ceil(math.Log2(float64(n)))) + 5
		verdict := "yes"
		if maxObs > bound {
			verdict = "NO"
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", maxObs),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%d/%d/%d", ind.P50(), ind.P90(), ind.P99()),
			fmt.Sprintf("%d", bound), verdict)
		t.AddDist(fmt.Sprintf("individual work n=%d (all adversaries)", n), ind)
		ns = append(ns, float64(n))
		ys = append(ys, float64(maxObs))
	}
	fit := stats.BestShape(ns, ys, stats.ShapeConst, stats.ShapeLog, stats.ShapeLinear)
	t.AddNote("worst-case individual work growth: best fit %s", fit)
	return t
}

// E8BaselineComparison pits the impatient conciliator against the
// constant-rate Chor–Israeli–Li/Cheung baseline on solo executions, the
// regime that exposes the individual-work separation.
func E8BaselineComparison(cfg Config) *Table {
	t := &Table{
		ID:         "E8",
		Title:      "Individual work: impatient (2^k/n) vs constant-rate (1/n) first-mover conciliators",
		PaperClaim: "\"No previous protocol in this model uses sublinear individual work\": impatient is O(log n), constant-rate is Θ(n)",
		Columns:    []string{"n", "impatient mean ops", "constant-rate mean ops", "speedup"},
	}
	trials := cfg.trials(200)
	var ns, impY, constY []float64
	// Solo execution: the conciliator is built for n processes but only one
	// participates — the schedule an oblivious adversary produces by running
	// one process to completion first. Both variants share the trial's seed
	// so they face identical random streams.
	solo := func(ctx context.Context, obj core.Object, file *register.File, seed uint64) (int, error) {
		run, err := harness.RunObject(obj, harness.ObjectConfig{
			N: 1, File: file, Inputs: mixedInputs(1, 2, 0),
			Scheduler: sched.NewRoundRobin(), Seed: seed, Context: ctx,
		})
		if err != nil {
			return 0, err
		}
		return run.Result.TotalWork, nil
	}
	for _, n := range []int{8, 16, 32, 64, 128, 256, 512} {
		var imp, con stats.Acc
		type pair struct{ imp, con int }
		mustSweep(harness.RunTrials(cfg.sweep(trials),
			func(ctx context.Context, tr harness.Trial) (pair, error) {
				file := register.NewFile()
				iw, err := solo(ctx, conciliator.NewImpatient(file, n, 1), file, tr.Seed)
				if err != nil {
					return pair{}, err
				}
				file2 := register.NewFile()
				cw, err := solo(ctx, conciliator.NewConstantRate(file2, n, 1), file2, tr.Seed)
				if err != nil {
					return pair{}, err
				}
				return pair{imp: iw, con: cw}, nil
			},
			func(_ harness.Trial, p pair) {
				imp.AddInt(p.imp)
				con.AddInt(p.con)
			}))
		mi, mc := imp.Mean(), con.Mean()
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", mi), fmt.Sprintf("%.1f", mc),
			fmt.Sprintf("%.1fx", mc/mi))
		ns = append(ns, float64(n))
		impY = append(impY, mi)
		constY = append(constY, mc)
	}
	t.AddNote("impatient growth: %s", stats.BestShape(ns, impY, stats.ShapeLog, stats.ShapeLinear))
	t.AddNote("constant-rate growth: %s", stats.BestShape(ns, constY, stats.ShapeLog, stats.ShapeLinear))
	return t
}
