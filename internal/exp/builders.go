package exp

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// protoSpec describes a consensus protocol assembly for the experiments.
type protoSpec struct {
	n, m         int
	growth       conciliator.Growth
	noConc       bool // ratifier-only protocol R
	bitVector    bool // bit-vector ratifiers instead of pool/binary
	fastPath     bool
	stages       int
	fallbackK    bool
	detectWrites bool
	registers    register.Semantics
}

// defaultSpec is the paper's recommended assembly.
func defaultSpec(n, m int) protoSpec {
	return protoSpec{n: n, m: m, growth: conciliator.GrowthDoubling, fastPath: true}
}

// spec is defaultSpec carrying the config's register model, so every
// consensus sweep in the suite honors -registers.
func (c Config) spec(n, m int) protoSpec {
	s := defaultSpec(n, m)
	s.registers = c.Registers
	return s
}

// build constructs a fresh one-shot protocol instance.
func (s protoSpec) build() (*register.File, *core.Protocol) {
	file := register.NewFile()
	newRatifier := func(f *register.File, i int) core.Object {
		switch {
		case s.bitVector:
			return ratifier.NewBitVector(f, s.m, i)
		case s.m == 2:
			return ratifier.NewBinary(f, i)
		default:
			return ratifier.NewPool(f, s.m, i)
		}
	}
	var newConc core.Builder
	if !s.noConc {
		newConc = func(f *register.File, i int) core.Object {
			c := conciliator.NewImpatient(f, s.n, i)
			c.Growth = s.growth
			c.DetectSuccess = s.detectWrites
			return c
		}
	}
	opts := core.Options{
		N:              s.n,
		File:           file,
		NewRatifier:    newRatifier,
		NewConciliator: newConc,
		Stages:         s.stages,
		FastPath:       s.fastPath,
	}
	if s.fallbackK {
		opts.Fallback = fallback.New(file, s.n, 0)
	}
	proto, err := core.NewProtocol(opts)
	if err != nil {
		panic(fmt.Sprintf("harness: bad protocol spec: %v", err))
	}
	return file, proto
}

// mixedInputs gives process i input (i+shift) mod m.
func mixedInputs(n, m, shift int) []value.Value {
	in := make([]value.Value, n)
	for i := range in {
		in[i] = value.Value((i + shift) % m)
	}
	return in
}

// adversaryPortfolio returns the named adversary constructors used across
// experiments. Conciliator experiments report the minimum δ over these.
func adversaryPortfolio() []struct {
	Name string
	New  func() sched.Scheduler
} {
	return []struct {
		Name string
		New  func() sched.Scheduler
	}{
		{"round-robin", func() sched.Scheduler { return sched.NewRoundRobin() }},
		{"uniform-random", func() sched.Scheduler { return sched.NewUniformRandom() }},
		{"lockstep", func() sched.Scheduler { return sched.NewLaggard() }},
		{"first-mover-attack", func() sched.Scheduler { return sched.NewFirstMoverAttack() }},
		{"eager-write-attack", func() sched.Scheduler { return sched.NewEagerWriteAttack() }},
	}
}

// mustSweep panics on trial-engine errors: a failed or cancelled trial is
// fatal to an experiment, and the drivers (cmd/modcon-bench) recover the
// panic to report cancellation cleanly.
func mustSweep(err error) {
	if err != nil {
		panic(fmt.Sprintf("exp: sweep failed: %v", err))
	}
}

// consensusSweep runs protocol executions of spec on the parallel trial
// engine, one per trial of s, under schedulers built by mk. Sessions are
// pooled: the protocol, file, and scheduler are built once per worker and
// replayed per trial; only the inputs vary with the trial index. fold runs
// in trial order on a single goroutine; per-process deciding stages come
// from run.DecidedStage. Any trial error (including step-limit exhaustion)
// aborts the experiment; sweeps that must tolerate sim.ErrStepLimit call
// harness.RunTrials directly.
func consensusSweep(s harness.Sweep, spec protoSpec, mk func() sched.Scheduler, maxSteps int,
	fold func(t harness.Trial, run *harness.ProtocolRun)) {
	mustSweep(harness.SweepProtocol(s,
		harness.ProtocolSweep{
			Build: func() (*core.Protocol, harness.ObjectConfig) {
				file, proto := spec.build()
				return proto, harness.ObjectConfig{
					N: spec.n, File: file, Inputs: mixedInputs(spec.n, spec.m, 0),
					Scheduler: mk(), MaxSteps: maxSteps,
					Registers: spec.registers,
				}
			},
			Inputs: func(t harness.Trial) []value.Value {
				return mixedInputs(spec.n, spec.m, t.Index)
			},
		}, fold))
}
