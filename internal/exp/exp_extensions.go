package exp

import (
	"context"
	"fmt"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/multi"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/setagree"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// E16SetAgreement exercises the k-set agreement extension built on the
// consensus stack (the paper's discussion points at randomized set
// agreement as the adjacent problem): at most k distinct outputs under
// every adversary, with per-process work tracking consensus at group size
// n/k.
func E16SetAgreement(cfg Config) *Table {
	t := &Table{
		ID:         "E16",
		Title:      "k-set agreement via per-group consensus (extension)",
		PaperClaim: "extension (paper §7 cites randomized set agreement): ≤ k distinct outputs; per-process cost = consensus cost at group size ⌈n/k⌉",
		Columns:    []string{"n", "k", "adversary", "max distinct outputs", "mean distinct", "mean individual work"},
	}
	trials := cfg.trials(150)
	n, m := 12, 12
	type setResult struct{ distinct, ind int }
	for _, k := range []int{1, 2, 3, 4, 6} {
		for _, adv := range adversaryPortfolio() {
			if adv.Name == "lockstep" || adv.Name == "eager-write-attack" {
				continue
			}
			maxDistinct := 0
			var distinct, indWork stats.Acc
			mustSweep(harness.RunTrials(cfg.sweep(trials),
				func(ctx context.Context, tr harness.Trial) (setResult, error) {
					file := register.NewFile()
					p, err := setagree.New(file, n, m, k)
					if err != nil {
						return setResult{}, err
					}
					inputs := mixedInputs(n, m, tr.Index)
					res, err := sim.Run(sim.Config{
						N: n, File: file, Scheduler: adv.New(), Seed: tr.Seed,
						Context: ctx,
					}, func(e *sim.Env) value.Value { return p.Run(e, inputs[e.PID()]) })
					if err != nil {
						return setResult{}, err
					}
					seen := make(map[value.Value]bool)
					for _, v := range res.HaltedOutputs() {
						seen[v] = true
					}
					return setResult{distinct: len(seen), ind: res.MaxIndividualWork()}, nil
				},
				func(_ harness.Trial, r setResult) {
					if r.distinct > maxDistinct {
						maxDistinct = r.distinct
					}
					distinct.AddInt(r.distinct)
					indWork.AddInt(r.ind)
				}))
			verdict := fmt.Sprintf("%d", maxDistinct)
			if maxDistinct > k {
				verdict += " VIOLATION"
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), adv.Name,
				verdict,
				fmt.Sprintf("%.2f", distinct.Mean()),
				fmt.Sprintf("%.1f", indWork.Mean()))
		}
	}
	t.AddNote("with all-distinct inputs each group keeps one value, so mean distinct = k exactly; the safety property is the max column never exceeding k")
	return t
}

// E17Sequences measures multi-slot consensus sequences (the replicated-log
// workload): amortized per-slot cost inside one adversarial execution.
func E17Sequences(cfg Config) *Table {
	t := &Table{
		ID:         "E17",
		Title:      "Multi-slot consensus sequences (replicated log, extension)",
		PaperClaim: "extension (workload from the paper's motivation): per-slot cost stays at single-shot consensus cost when slots run back to back under one adversary",
		Columns:    []string{"slots", "n", "adversary", "mean total work", "work per slot", "slots decided"},
	}
	trials := cfg.trials(60)
	n, m := 8, 4
	type seqResult struct{ work, decided int }
	for _, slots := range []int{1, 4, 16} {
		for _, adv := range adversaryPortfolio() {
			if adv.Name != "uniform-random" && adv.Name != "first-mover-attack" {
				continue
			}
			var works stats.Acc
			decided := 0
			mustSweep(harness.RunTrials(cfg.sweep(trials),
				func(ctx context.Context, tr harness.Trial) (seqResult, error) {
					proposals := make([][]value.Value, slots)
					for s := range proposals {
						proposals[s] = mixedInputs(n, m, s+tr.Index)
					}
					res, err := multi.Run(multi.Config{
						N: n, M: m, Proposals: proposals,
						Scheduler: adv.New(), Seed: tr.Seed, Context: ctx,
					})
					if err != nil {
						return seqResult{}, err
					}
					r := seqResult{work: res.TotalWork}
					for _, v := range res.Agreed {
						if !v.IsNone() {
							r.decided++
						}
					}
					return r, nil
				},
				func(_ harness.Trial, r seqResult) {
					works.AddInt(r.work)
					decided += r.decided
				}))
			s := works.Summary()
			t.AddRow(fmt.Sprintf("%d", slots), fmt.Sprintf("%d", n), adv.Name,
				fmt.Sprintf("%.0f ± %.0f", s.Mean, s.StandardErrorOfM),
				fmt.Sprintf("%.1f", s.Mean/float64(slots)),
				fmt.Sprintf("%d/%d", decided, trials*slots))
		}
	}
	t.AddNote("per-slot work stays at or below the single-shot cost: accumulated skew spreads processes across slots, so later slots hit the fast path more often")
	return t
}
