package exp

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sharedcoin"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// coinObject adapts a bare shared coin to the deciding-object interface so
// the harness can execute it (inputs are ignored; the output is the flip).
type coinObject struct{ coin sharedcoin.Coin }

func (c coinObject) Invoke(e core.Env, _ value.Value) value.Decision {
	return value.Continue(c.coin.Flip(e))
}

func (c coinObject) Label() string { return c.coin.Label() }

// E10CoinConciliator validates Theorem 6: wrapping a weak shared coin gives
// a conciliator whose agreement probability tracks the coin's, at +2
// registers and +2 operations.
func E10CoinConciliator(cfg Config) *Table {
	t := &Table{
		ID:         "E10",
		Title:      "CoinConciliator over the voting shared coin",
		PaperClaim: "Theorem 6: a shared coin with agreement probability δ yields a conciliator with agreement ≥ δ; the wrapper adds 2 registers and 2 operations",
		Columns:    []string{"n", "coin δ̂ (each side ≥)", "conciliator δ̂ (mixed inputs)", "wrapper ops/process"},
	}
	trials := cfg.trials(250)
	for _, n := range []int{2, 4, 8} {
		all0, all1 := 0, 0
		mustSweep(harness.SweepObject(cfg.sweep(trials),
			harness.ObjectSweep{
				Build: func() (core.Object, harness.ObjectConfig) {
					file := register.NewFile()
					return coinObject{sharedcoin.NewVoting(file, n, 1)}, harness.ObjectConfig{
						N: n, File: file, Inputs: mixedInputs(n, 1, 0),
						Scheduler: sched.NewUniformRandom(),
					}
				},
			},
			func(_ harness.Trial, run *harness.ObjectRun) {
				outs := run.Outputs()
				if check.Unanimous(outs) {
					if outs[0] == 0 {
						all0++
					} else {
						all1++
					}
				}
			}))
		minSide := all0
		if all1 < minSide {
			minSide = all1
		}

		var wrapped stats.Tally
		mustSweep(harness.SweepObject(cfg.sweep(trials),
			harness.ObjectSweep{
				Build: func() (core.Object, harness.ObjectConfig) {
					file := register.NewFile()
					coin := sharedcoin.NewVoting(file, n, 1)
					return conciliator.NewFromCoin(file, coin, 1), harness.ObjectConfig{
						N: n, File: file, Inputs: mixedInputs(n, 2, 0),
						Scheduler: sched.NewUniformRandom(),
					}
				},
				Inputs: func(tr harness.Trial) []value.Value { return mixedInputs(n, 2, tr.Index) },
			},
			func(_ harness.Trial, run *harness.ObjectRun) {
				wrapped.Add(check.Unanimous(run.Outputs()))
			}))
		t.AddRow(fmt.Sprintf("%d", n),
			stats.NewProportion(minSide, trials).String(),
			wrapped.Proportion().String(),
			"2")
	}
	t.AddNote("coin δ̂ reports the rarer side (the weak-shared-coin definition bounds both sides)")
	t.AddNote("mixed-input conciliator agreement can exceed the bare coin's: first movers bypass the coin entirely")
	return t
}

// E11NoisyRatifierOnly runs the ratifier-only protocol R under noisy
// scheduling (§4.2): cumulative timing jitter eventually pushes one process
// far enough ahead to clear a ratifier alone.
func E11NoisyRatifierOnly(cfg Config) *Table {
	t := &Table{
		ID:         "E11",
		Title:      "Ratifier-only protocol R under the noisy scheduler",
		PaperClaim: "§4.2: with a noisy scheduler, R terminates in O(log n) individual work (binary case, per the lean-consensus analysis)",
		Columns:    []string{"n", "m", "σ", "terminated", "mean individual work", "mean deciding stage"},
	}
	trials := cfg.trials(120)
	var ns, ys []float64
	type cell struct {
		n, m  int
		sigma float64
	}
	var cells []cell
	for _, n := range []int{2, 4, 8, 16, 32} {
		for _, sigma := range []float64{0.2, 0.5} {
			cells = append(cells, cell{n, 2, sigma})
		}
	}
	// §4.2 conjectures "comparable results ... for m-valued consensus";
	// confirm it with the Θ(log m)-work pool ratifier at m=4.
	for _, n := range []int{4, 16} {
		cells = append(cells, cell{n, 4, 0.5})
	}
	// A trial either hits the step limit (not an error: R has no termination
	// guarantee without enough noise) or reports per-process stages.
	type noisyResult struct {
		limited  bool
		allDone  bool
		ind      int
		stageSum float64
		stages   int
	}
	for _, c := range cells {
		n, m, sigma := c.n, c.m, c.sigma
		done, stages := 0, 0
		var indSum, stageSum float64
		mustSweep(harness.RunTrials(cfg.sweep(trials),
			func(ctx context.Context, tr harness.Trial) (noisyResult, error) {
				spec := cfg.spec(n, m)
				spec.noConc = true
				spec.fastPath = false
				spec.stages = 4096
				file, proto := spec.build()
				run, err := harness.RunProtocol(proto, harness.ObjectConfig{
					N: n, File: file, Inputs: mixedInputs(n, m, tr.Index),
					Scheduler: sched.NewNoisy(sigma), Seed: tr.Seed,
					MaxSteps: 4_000_000, Context: ctx,
					Registers: spec.registers,
				})
				if err != nil {
					if errors.Is(err, sim.ErrStepLimit) {
						return noisyResult{limited: true}, nil
					}
					return noisyResult{}, err
				}
				r := noisyResult{allDone: true, ind: run.Result.MaxIndividualWork()}
				for pid := 0; pid < n; pid++ {
					st, _ := proto.DecidedStage(pid)
					if st < 0 {
						r.allDone = false
						continue
					}
					r.stageSum += float64(st)
					r.stages++
				}
				return r, nil
			},
			func(_ harness.Trial, r noisyResult) {
				if r.limited {
					return
				}
				stageSum += r.stageSum
				stages += r.stages
				if r.allDone {
					done++
					indSum += float64(r.ind)
				}
			}))
		meanInd, meanStage := 0.0, 0.0
		if done > 0 {
			meanInd = indSum / float64(done)
		}
		if stages > 0 {
			meanStage = stageSum / float64(stages)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", m), fmt.Sprintf("%.1f", sigma),
			fmt.Sprintf("%d/%d", done, trials),
			fmt.Sprintf("%.1f", meanInd), fmt.Sprintf("%.1f", meanStage))
		if sigma == 0.5 && m == 2 {
			ns = append(ns, float64(n))
			ys = append(ys, meanInd)
		}
	}
	t.AddNote("individual work at σ=0.5: %s", stats.BestShape(ns, ys, stats.ShapeConst, stats.ShapeLog, stats.ShapeLinear))
	return t
}

// E12PriorityRatifierOnly runs R under strict priority scheduling (§4.2):
// the top-priority process races through a ratifier alone and decides.
func E12PriorityRatifierOnly(cfg Config) *Table {
	t := &Table{
		ID:         "E12",
		Title:      "Ratifier-only protocol R under priority scheduling",
		PaperClaim: "§4.2: under priority-based scheduling the highest-priority process overtakes all others and R solves consensus ([27] achieves 6 ops with 2 registers; R pays a constant factor for generality)",
		Columns:    []string{"n", "terminated", "max individual work", "top-priority work", "[27] bound"},
	}
	trials := cfg.trials(60)
	for _, n := range []int{2, 4, 8, 16, 32} {
		done, maxInd, topWork := 0, 0, 0
		spec := cfg.spec(n, 2)
		spec.noConc = true
		spec.fastPath = false
		spec.stages = 64
		consensusSweep(cfg.sweep(trials), spec,
			func() sched.Scheduler { return sched.NewPriority(nil) }, 0,
			func(_ harness.Trial, run *harness.ProtocolRun) {
				all := true
				for pid := 0; pid < n; pid++ {
					if !run.Decided[pid] {
						all = false
					}
				}
				if all {
					done++
				}
				if w := run.Result.MaxIndividualWork(); w > maxInd {
					maxInd = w
				}
				if run.Result.Work[0] > topWork {
					topWork = run.Result.Work[0]
				}
			})
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d/%d", done, trials),
			fmt.Sprintf("%d", maxInd), fmt.Sprintf("%d", topWork), "6")
	}
	t.AddNote("the top-priority process completes R1 solo: 4 ops (binary ratifier), then decides")
	return t
}
