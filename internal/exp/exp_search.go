package exp

// E22: adversary synthesis. Search the parametric scheduler family
// (internal/advsearch) for worst-case adversaries of each power class, then
// re-run the best-found configs against the fixed attack catalog as
// baselines — same target, same seeds, same trial count — so the comparison
// is apples to apples. The experiment carries the repo's pre-registered
// hypotheses (hypotheses/H1-*.md, H2-*.md): each note below states the
// measured verdict the files record.

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/advsearch"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

const (
	e22N        = 8
	e22M        = 2
	e22MaxSteps = 1 << 20
	// e22BudgetEvals sizes the search budget in evaluations (× trials per
	// evaluation), so -trials scales search depth and measurement precision
	// together. 96 evaluations gives the evolve loop room for several
	// lineage restarts, which is what it takes to escape a weak initial
	// basin and reach the hold-probe region reliably.
	e22BudgetEvals = 96
)

// e22Target adapts the suite's standard binary-consensus cell to the
// search engine's target shape, honoring cfg's register model.
func e22Target(cfg Config) advsearch.Target {
	spec := cfg.spec(e22N, e22M)
	return advsearch.Target{
		Name:      fmt.Sprintf("binary-consensus/n=%d", e22N),
		N:         e22N,
		Registers: spec.registers,
		MaxSteps:  e22MaxSteps,
		Build: func() (*core.Protocol, *register.File) {
			file, proto := spec.build()
			return proto, file
		},
		Inputs: func(tr harness.Trial) []value.Value {
			return mixedInputs(e22N, e22M, tr.Index)
		},
	}
}

// e22Baselines is the attack-catalog slice admissible at power p (every
// fixed adversary whose declared MinPower fits the class under test).
func e22Baselines(p sched.Power) []struct {
	Name string
	New  func() sched.Scheduler
} {
	out := []struct {
		Name string
		New  func() sched.Scheduler
	}{
		{"round-robin", func() sched.Scheduler { return sched.NewRoundRobin() }},
		{"uniform-random", func() sched.Scheduler { return sched.NewUniformRandom() }},
		{"lockstep", func() sched.Scheduler { return sched.NewLaggard() }},
		{"frontrunner", func() sched.Scheduler { return sched.NewFrontrunner() }},
		{"split-vote", func() sched.Scheduler { return sched.NewSplitVote() }},
		{"stale-read-attack", func() sched.Scheduler { return sched.NewStaleReadAttack() }},
	}
	if p >= sched.LocationOblivious {
		out = append(out,
			struct {
				Name string
				New  func() sched.Scheduler
			}{"first-mover-attack", func() sched.Scheduler { return sched.NewFirstMoverAttack() }},
			struct {
				Name string
				New  func() sched.Scheduler
			}{"eager-write-attack", func() sched.Scheduler { return sched.NewEagerWriteAttack() }},
		)
	}
	return out
}

// E22AdversarySearch searches each power class for a worst-case scheduler
// and pits the winner against the admissible attack catalog at an equal
// trial budget. Safety must hold under every candidate the search tries —
// a violated trial anywhere is a bug, counted like any other experiment's.
func E22AdversarySearch(cfg Config) *Table {
	t := &Table{
		ID:    "E22",
		Title: "Adversary synthesis: searched schedulers vs the attack catalog",
		PaperClaim: "§2.1/§5: the expected-work bounds hold against entire adversary classes, " +
			"so a black-box search over a class should find members at least as strong as " +
			"any hand-written attack in it — without ever breaking agreement or validity",
		Columns: []string{"power", "adversary", "trials", "outcomes", "work mean", "work p99"},
	}
	trialsPerEval := cfg.trials(48)
	budget := e22BudgetEvals * trialsPerEval
	target := e22Target(cfg)

	type cell struct {
		power   sched.Power
		winner  *advsearch.Eval
		best    advsearch.Eval // strongest catalog baseline
		bestSet bool
	}
	var cells []cell

	outcomesCell := func(ev advsearch.Eval) string {
		if ev.Quarantined {
			return "quarantined"
		}
		rep := harness.SweepReport{Trials: ev.Trials, Counts: map[harness.TrialOutcome]int{}}
		for o, n := range ev.Outcomes {
			rep.Counts[harness.TrialOutcome(o)] = n
		}
		return rep.String()
	}
	workCells := func(ev advsearch.Eval) (mean, p99 string) {
		if ev.Work == nil || ev.Work.N() == 0 {
			return "-", "-"
		}
		return fmt.Sprintf("%.0f", ev.Work.Mean()), fmt.Sprint(ev.Work.P99())
	}

	for _, p := range []sched.Power{sched.ValueOblivious, sched.LocationOblivious} {
		opts := advsearch.Options{
			Algo: advsearch.AlgoEvolve, Objective: advsearch.MaximizeWork,
			Power: p, Budget: budget, TrialsPerEval: trialsPerEval,
			Seed: cfg.Seed, Workers: cfg.Workers,
		}
		report, err := advsearch.Search(target, opts)
		mustSweep(err)
		for _, ev := range report.Evals {
			t.Violations += ev.Outcomes[string(harness.OutcomeViolated)]
		}
		c := cell{power: p, winner: report.Winner}
		if report.Winner != nil {
			mean, p99 := workCells(*report.Winner)
			t.AddRow(p.String(), "searched (see note)", fmt.Sprint(report.Winner.Trials),
				outcomesCell(*report.Winner), mean, p99)
			t.AddNote("searched %s winner (%d evals, %d trials spent): %s",
				p, report.Evaluations, report.TrialsSpent, report.Winner.Config)
			if back, perr := sched.ParseParametric(report.Winner.Config); perr != nil || back.String() != report.Winner.Config {
				t.AddNote("E22 FAILED: %s winner config does not round-trip through the codec", p)
			}
		} else {
			t.AddRow(p.String(), "searched", "-", "no healthy winner", "-", "-")
			t.AddNote("E22 FAILED: %s search produced no healthy winner (%d quarantined)", p, len(report.Quarantined))
		}
		if q := len(report.Quarantined); q > 0 {
			t.AddNote("%s search quarantined %d/%d candidates instead of aborting", p, q, report.Evaluations)
		}

		for _, b := range e22Baselines(p) {
			mk := b.New
			ev := advsearch.EvaluateScheduler(target, opts, b.Name,
				func() (sched.Scheduler, error) { return mk(), nil })
			t.Violations += ev.Outcomes[string(harness.OutcomeViolated)]
			mean, p99 := workCells(ev)
			t.AddRow(p.String(), b.Name, fmt.Sprint(ev.Trials), outcomesCell(ev), mean, p99)
			if !ev.Quarantined && (!c.bestSet || ev.Score > c.best.Score) {
				c.best, c.bestSet = ev, true
			}
		}
		cells = append(cells, c)
	}

	// H1 (hypotheses/H1-searched-beats-catalog.md): on at least one power
	// class the searched adversary extracts strictly more mean work than
	// every admissible catalog attack at the same trial budget.
	h1 := false
	for _, c := range cells {
		if c.winner != nil && c.bestSet && c.winner.Score > c.best.Score {
			h1 = true
			t.AddNote("H1 CONFIRMED on %s: searched %.0f > best catalog (%s) %.0f mean work",
				c.power, c.winner.Score, c.best.Config, c.best.Score)
		}
	}
	if !h1 {
		t.AddNote("H1 NOT CONFIRMED at this budget: no searched winner strictly beat its catalog baselines (grow -trials to deepen the search)")
	}
	// H2 (hypotheses/H2-power-monotonicity.md): a stronger class's searched
	// worst case is at least as costly as a weaker class's.
	if len(cells) == 2 && cells[0].winner != nil && cells[1].winner != nil {
		vo, lo := cells[0].winner.Score, cells[1].winner.Score
		if lo >= vo {
			t.AddNote("H2 CONFIRMED: location-oblivious winner %.0f ≥ value-oblivious winner %.0f mean work", lo, vo)
		} else {
			t.AddNote("H2 NOT CONFIRMED at this budget: location-oblivious winner %.0f < value-oblivious winner %.0f", lo, vo)
		}
	}
	if t.Violations > 0 {
		t.AddNote("E22 FAILED: %d SAFETY VIOLATIONS under searched/catalog adversaries", t.Violations)
	} else {
		t.AddNote("safety held in every classified trial under every candidate and baseline")
	}
	t.AddNote("reproduce a winner: modcon-bench -search -search-power <class> -seed %d -search-trials %d -search-budget %d; replay its config with -search-replay '<config>' (bit-identical at any -workers)",
		cfg.Seed, trialsPerEval, budget)
	return t
}
