package exp

import (
	"fmt"
	"time"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// E20 fault-intensity sweep parameters. The stall row livelocks every
// process by construction, so it runs few trials under a short watchdog —
// the point is that the watchdog fires and the sweep completes, not the
// (empty) statistics.
const (
	e20N             = 8
	e20M             = 2
	e20MaxSteps      = 2_000_000
	e20Deadline      = 10 * time.Second
	e20StallDeadline = 250 * time.Millisecond
	e20StallTrials   = 4
)

// e20Scenario is one fault-intensity level of the sweep.
type e20Scenario struct {
	name  string
	plan  *fault.Plan
	stall bool // every process livelocks; only the watchdog ends a trial
}

// e20Scenarios orders the sweep from no faults to total livelock.
func e20Scenarios() []e20Scenario {
	crashK := func(k, after int) *fault.Plan {
		fs := make([]fault.Fault, 0, k)
		for pid := 0; pid < k; pid++ {
			fs = append(fs, fault.Crash(pid, after))
		}
		return fault.New(fs...)
	}
	return []e20Scenario{
		{name: "none", plan: nil},
		{name: "crash 2/8 after 5 ops", plan: crashK(2, 5)},
		{name: "crash 4/8 after 5 ops", plan: crashK(4, 5)},
		{name: "crash 7/8 after 3 ops", plan: crashK(7, 3)},
		{name: "losecoin p=1/4 all", plan: fault.New(fault.LoseCoin(fault.AllProcs, 1, 4))},
		{name: "losecoin p=3/4 all", plan: fault.New(fault.LoseCoin(fault.AllProcs, 3, 4))},
		{name: "stall all after 2 ops", plan: fault.New(fault.Stall(fault.AllProcs, 2)), stall: true},
	}
}

// E20FaultIntensity sweeps fault intensity — crash fractions, lost-coin
// probabilities, total stall — over the full binary protocol (with the CIL
// fallback) on both backends, running every cell on the resilient trial
// engine. Safety must hold in every classified trial at every intensity;
// termination and work are allowed to degrade, and the stall row must be
// killed by the per-trial deadline watchdog (classified timeout) while the
// sweep still completes with correct partial aggregates.
func E20FaultIntensity(cfg Config) *Table {
	t := &Table{
		ID:    "E20",
		Title: "Fault intensity vs termination and work (robust sweeps, both backends)",
		PaperClaim: "§2: consensus safety is schedule- and crash-independent — failures may " +
			"only slow termination or suppress decisions, never produce disagreement",
		Columns: []string{"backend", "faults", "trials", "outcomes", "decided/trial", "ok work mean/p99"},
	}
	trials := cfg.trials(20)

	backends := []struct {
		name string
		cfg  func(base harness.ObjectConfig) harness.ObjectConfig
	}{
		{"sim", func(base harness.ObjectConfig) harness.ObjectConfig {
			base.Scheduler = sched.NewUniformRandom()
			return base
		}},
		{"live", func(base harness.ObjectConfig) harness.ObjectConfig {
			base.Backend = live.Backend()
			return base
		}},
	}

	for _, be := range backends {
		for _, sc := range e20Scenarios() {
			ct, deadline := trials, e20Deadline
			if sc.stall {
				ct, deadline = min(trials, e20StallTrials), e20StallDeadline
			}
			rz := harness.Resilience{Deadline: deadline, Retries: 1, FailFast: cfg.FailFast}
			var (
				okWork  obs.Hist
				decided stats.Acc
			)
			report, err := harness.SweepProtocolRobust(cfg.sweep(ct), rz,
				harness.ProtocolSweep{
					Build: func() (*core.Protocol, harness.ObjectConfig) {
						spec := cfg.spec(e20N, e20M)
						spec.fallbackK = true
						file, proto := spec.build()
						return proto, be.cfg(harness.ObjectConfig{
							N: e20N, File: file, Inputs: mixedInputs(e20N, e20M, 0),
							MaxSteps: e20MaxSteps, Faults: sc.plan, Meter: cfg.Meter,
							Registers: spec.registers,
						})
					},
					Inputs: func(tr harness.Trial) []value.Value {
						return mixedInputs(e20N, e20M, tr.Index)
					},
				},
				func(tr harness.Trial, run *harness.ProtocolRun, rep harness.TrialReport) {
					if run == nil || rep.Outcome != harness.OutcomeOK {
						return
					}
					okWork.AddInt(run.Result.TotalWork)
					n := 0
					for _, d := range run.Decided {
						if d {
							n++
						}
					}
					decided.AddInt(n)
				})
			mustSweep(err)
			t.Violations += report.Violations()

			workCell, decidedCell := "-", "-"
			if okWork.N() > 0 {
				workCell = fmt.Sprintf("%.0f/%d", okWork.Mean(), okWork.P99())
				decidedCell = fmt.Sprintf("%.1f", decided.Mean())
			}
			t.AddRow(be.name, sc.name, fmt.Sprintf("%d", report.Trials), report.String(), decidedCell, workCell)

			if v := report.Violations(); v > 0 {
				t.AddNote("E20 FAILED: %d SAFETY VIOLATIONS on %s under %q", v, be.name, sc.name)
				if cfg.FailFast {
					t.AddNote("fail-fast: sweep stopped at the first violation; later cells skipped")
					return t
				}
			}
		}
	}
	if t.Violations == 0 {
		t.AddNote("safety held in every classified trial at every fault intensity on both backends")
	}
	t.AddNote("stall rows livelock every process by construction: the %v watchdog kills each trial (outcome timeout) and the sweep completes with partial aggregates", e20StallDeadline)
	t.AddNote("crash rows suppress decisions (fewer deciders, less total work); losecoin rows slow the probabilistic-write race, raising work before the fallback decides")
	return t
}
