// Package exp implements the repo's experiment suite: E1–E23, each a
// reproducible measurement of one quantitative claim from the paper (see
// EXPERIMENTS.md for the theorem↔experiment cross-reference).
//
// An Experiment takes a Config — trial scale, root seed, worker count,
// optional progress reporter and step meter — runs its parameter sweep on
// the parallel trial engine, and returns a Table: formatted rows, notes
// with curve fits and verdicts, attached work distributions, and a safety
// violation count. Tables render as aligned text, markdown, or JSON;
// cmd/modcon-bench is the CLI driver.
//
// Sim-backed experiments are deterministic in (seed, trials) and
// independent of the worker count; live-backed experiments (E18–E21) are
// reproducible in their safety verdicts but not their interleavings.
package exp
