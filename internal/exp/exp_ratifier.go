package exp

import (
	"fmt"
	"math"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/quorum"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// E4RatifierSpaceWork tabulates ratifier space/work per scheme against the
// paper's formulas and re-verifies the weak-consensus properties on real
// executions for every scheme and m.
func E4RatifierSpaceWork(cfg Config) *Table {
	t := &Table{
		ID:         "E4",
		Title:      "Deterministic m-valued ratifier: registers and individual work",
		PaperClaim: "Thm 10: lg m + Θ(log log m) registers and work (pool); §6.2(3): 2⌈lg m⌉+1 registers, 2⌈lg m⌉+2 ops (bit-vector); §6.2(1): 3 registers, 4 ops (binary)",
		Columns:    []string{"m", "scheme", "registers", "paper registers", "max ops", "paper ops", "properties"},
	}
	trials := cfg.trials(30)
	type entry struct {
		name       string
		build      func(f *register.File) *ratifier.Quorum
		paperRegs  int
		paperOps   int
		applicable bool
	}
	for _, m := range []int{2, 4, 16, 64, 256, 1024, 4096} {
		lg := int(math.Ceil(math.Log2(float64(m))))
		entries := []entry{
			{
				name:      "pool",
				build:     func(f *register.File) *ratifier.Quorum { return ratifier.NewPool(f, m, 1) },
				paperRegs: quorum.MinPoolSize(m) + 1, paperOps: quorum.MinPoolSize(m) + 2, applicable: true,
			},
			{
				name:      "bitvector",
				build:     func(f *register.File) *ratifier.Quorum { return ratifier.NewBitVector(f, m, 1) },
				paperRegs: 2*lg + 1, paperOps: 2*lg + 2, applicable: true,
			},
			{
				name:      "binary",
				build:     func(f *register.File) *ratifier.Quorum { return ratifier.NewBinary(f, 1) },
				paperRegs: 3, paperOps: 4, applicable: m == 2,
			},
		}
		for _, e := range entries {
			if !e.applicable {
				continue
			}
			file := register.NewFile()
			r := e.build(file)
			props := "ok"
			verify := quorum.Verify
			if m > 1024 {
				verify = func(sc quorum.Scheme) error { return quorum.VerifySample(sc, 20_000, cfg.Seed) }
			}
			if err := verify(r.Scheme()); err != nil {
				props = err.Error()
			}
			maxOps := 0
			n := 5
			if props == "ok" {
				mustSweep(harness.SweepObject(cfg.sweep(trials),
					harness.ObjectSweep{
						Build: func() (core.Object, harness.ObjectConfig) {
							f2 := register.NewFile()
							return e.build(f2), harness.ObjectConfig{
								N: n, File: f2, Inputs: mixedInputs(n, m, 0),
								Scheduler: sched.NewUniformRandom(), Traced: true,
							}
						},
						Inputs: func(tr harness.Trial) []value.Value { return mixedInputs(n, m, tr.Index) },
					},
					func(_ harness.Trial, run *harness.ObjectRun) {
						if w := run.Result.MaxIndividualWork(); w > maxOps {
							maxOps = w
						}
						if err := check.Objects(run.Trace, "R"); err != nil {
							props = err.Error()
						}
					}))
			}
			t.AddRow(fmt.Sprintf("%d", m), e.name,
				fmt.Sprintf("%d", r.Registers()), fmt.Sprintf("%d", e.paperRegs),
				fmt.Sprintf("%d", maxOps), fmt.Sprintf("≤%d", e.paperOps), props)
		}
	}
	t.AddNote("properties = validity + coherence + acceptance checked on traced executions")
	return t
}

// E5QuorumOptimality verifies Theorem 9: the pool scheme realizes
// m = C(k, ⌊k/2⌋), the Bollobás maximum, and every scheme's Bollobás sum is
// ≤ 1 with equality exactly at the optimum.
func E5QuorumOptimality(cfg Config) *Table {
	t := &Table{
		ID:         "E5",
		Title:      "Quorum system optimality (Bollobás's theorem)",
		PaperClaim: "Theorem 9: Σ 1/C(|W|+|R|,|W|) ≤ 1; the k-register pool supports at most C(k,⌊k/2⌋) values, achieved by the pool scheme",
		Columns:    []string{"k", "C(k,⌊k/2⌋)", "pool supports", "Bollobás sum (full pool)", "bitvector sum (same m)"},
	}
	for _, k := range []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20} {
		m := int(quorum.Binomial(k, k/2))
		pool := quorum.NewPool(m)
		if pool.PoolSize() != k {
			t.AddNote("pool for m=%d used %d registers, expected %d", m, pool.PoolSize(), k)
		}
		// Full pairwise verification is O(m²); beyond k=12 (m=924) sample.
		var err error
		if k <= 12 {
			err = quorum.Verify(pool)
		} else {
			err = quorum.VerifySample(pool, 20_000, cfg.Seed)
		}
		if err != nil {
			t.AddNote("VERIFY FAILED k=%d: %v", k, err)
		}
		sumPool := quorum.BollobasSum(pool)
		sumBV := quorum.BollobasSum(quorum.NewBitVector(m))
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", m), fmt.Sprintf("%d", pool.M()),
			fmt.Sprintf("%.6f", sumPool), fmt.Sprintf("%.6f", sumBV))
	}
	t.AddNote("full-pool sum = 1.000000 certifies optimality; bit-vector sums < 1 show its slack")
	return t
}
