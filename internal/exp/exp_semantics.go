package exp

import (
	"context"
	"errors"
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// E21 cell size and step budget. The adaptive spoiler can livelock the full
// protocol under atomic registers (it sees pending write values and splits
// every conciliator stage), so consensus trials carry a step budget and the
// table reports the termination fraction instead of treating exhaustion as
// an error.
const (
	e21N        = 16
	e21MaxSteps = 200_000
)

// e21Agreement estimates the impatient conciliator's agreement probability
// and mean minority share under one register model, on the given backend
// (nil = sim with mk's scheduler; live cells pass mk == nil). Inputs are
// binary like the consensus cells. The minority share — the fraction of
// processes returning the less-common value — is the blunting-sensitive
// measure: a content-aware adversary fires precisely the conflicting pending
// writes and splits the outputs near-evenly, while the interposed mask
// reduces it to guessing and the split collapses toward unanimity even when
// strict agreement still fails.
func e21Agreement(s harness.Sweep, model register.Semantics, be exec.Backend, mk func() sched.Scheduler) (stats.Tally, *stats.Acc) {
	var agree stats.Tally
	minority := &stats.Acc{}
	mustSweep(harness.SweepObject(s,
		harness.ObjectSweep{
			Build: func() (core.Object, harness.ObjectConfig) {
				file := register.NewFile()
				c := conciliator.NewImpatient(file, e21N, 1)
				oc := harness.ObjectConfig{
					N: e21N, File: file, Inputs: mixedInputs(e21N, 2, 0),
					Registers: model, Backend: be,
				}
				if mk != nil {
					oc.Scheduler = mk()
				}
				return c, oc
			},
			Inputs: func(t harness.Trial) []value.Value { return mixedInputs(e21N, 2, t.Index) },
		},
		func(_ harness.Trial, run *harness.ObjectRun) {
			outs := run.Outputs()
			agree.Add(check.Unanimous(outs))
			ones := 0
			for _, v := range outs {
				if v == 1 {
					ones++
				}
			}
			minority.Add(float64(min(ones, len(outs)-ones)) / float64(len(outs)))
		}))
	return agree, minority
}

// e21Out classifies one consensus trial.
type e21Out struct {
	limited bool // step budget exhausted (livelock under this adversary)
	viol    bool // decided outputs disagreed or decided a non-input
	work    int
}

// e21Consensus runs full binary-consensus trials under one register model,
// absorbing step-limit exhaustion as a measured outcome.
func e21Consensus(cfg Config, s harness.Sweep, model register.Semantics, be exec.Backend, mk func() sched.Scheduler) (term stats.Tally, work *obs.Hist, violations int) {
	work = &obs.Hist{}
	maxSteps := e21MaxSteps
	if be != nil {
		maxSteps = 0 // no adversary on live: termination needs no watchdog here
	}
	mustSweep(harness.RunTrials(s,
		func(ctx context.Context, tr harness.Trial) (e21Out, error) {
			spec := defaultSpec(e21N, 2)
			spec.registers = model
			file, proto := spec.build()
			inputs := mixedInputs(e21N, 2, tr.Index)
			oc := harness.ObjectConfig{
				N: e21N, File: file, Inputs: inputs,
				Backend: be, Seed: tr.Seed, MaxSteps: maxSteps, Context: ctx,
				Registers: spec.registers, Meter: cfg.Meter,
			}
			if mk != nil {
				oc.Scheduler = mk()
			}
			run, err := harness.RunProtocol(proto, oc)
			if err != nil {
				if errors.Is(err, sim.ErrStepLimit) {
					return e21Out{limited: true}, nil
				}
				return e21Out{}, err
			}
			out := e21Out{work: run.Result.TotalWork}
			if err := check.Consensus(inputs, run.DecidedOutputs()); err != nil {
				out.viol = true
			}
			return out, nil
		},
		func(_ harness.Trial, o e21Out) {
			term.Add(!o.limited)
			if o.limited {
				return
			}
			work.AddInt(o.work)
			if o.viol {
				violations++
			}
		}))
	return term, work, violations
}

// E21RegisterSemantics sweeps the register consistency models — atomic,
// regular, and interposed-linearizable — against an adversary ladder on the
// simulator and against real goroutine concurrency on the live backend,
// measuring conciliator agreement probability, consensus termination under a
// step budget, and total work. Safety (agreement + validity of decided
// outputs) must hold in every cell: weaker registers and stronger
// adversaries may slow consensus, never break it. The headline contrast is
// the adaptive spoiler row: under atomic registers it sees pending write
// values and livelocks the protocol, while the interposed layer
// (Attiya–Enea–Welch-style linearizable interposition) hides them and
// restores the oblivious-adversary bound. cfg.Registers is ignored here —
// the models are this experiment's sweep axis.
func E21RegisterSemantics(cfg Config) *Table {
	t := &Table{
		ID:    "E21",
		Title: "Register semantics: agreement, termination, and work per consistency model (both backends)",
		PaperClaim: "§2 assumes atomic registers; regular registers (Hadzilacos–Hu–Toueg) may hand " +
			"overlapping reads stale values and an interposed linearizable layer (Attiya–Enea–Welch) " +
			"blunts adaptive adversaries — safety is invariant, only δ, termination, and work move",
		Columns: []string{"backend", "registers", "adversary", "conciliator δ̂ (95% CI)", "minority share", "terminated", "total work mean/p99"},
	}
	trials := cfg.trials(120)

	advs := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"round-robin", func() sched.Scheduler { return sched.NewRoundRobin() }},
		{"uniform-random", func() sched.Scheduler { return sched.NewUniformRandom() }},
		{"first-mover-attack", func() sched.Scheduler { return sched.NewFirstMoverAttack() }},
		{"stale-read-attack", func() sched.Scheduler { return sched.NewStaleReadAttack() }},
		{"adaptive-spoiler", func() sched.Scheduler { return sched.NewAdaptiveSpoiler() }},
	}
	spoilerSplit := map[register.Semantics]float64{}
	workCell := func(h *obs.Hist) string {
		if h.N() == 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f / %d", h.Mean(), h.P99())
	}

	for _, model := range []register.Semantics{register.Atomic, register.Regular, register.Interposed} {
		for _, adv := range advs {
			agree, minority := e21Agreement(cfg.sweep(trials), model, nil, adv.mk)
			term, work, viol := e21Consensus(cfg, cfg.sweep(trials), model, nil, adv.mk)
			t.Violations += viol
			p := stats.NewProportion(agree.Successes, agree.Trials)
			if adv.name == "adaptive-spoiler" {
				spoilerSplit[model] = minority.Mean()
			}
			if adv.name == "adaptive-spoiler" || adv.name == "stale-read-attack" {
				t.AddDist(fmt.Sprintf("consensus total work sim/%s/%s", model, adv.name), work)
			}
			t.AddRow("sim", model.String(), adv.name, p.String(),
				fmt.Sprintf("%.3f", minority.Mean()),
				fmt.Sprintf("%d/%d", term.Successes, term.Trials), workCell(work))
		}
	}

	// Live cells: genuine goroutine interleavings, no scripted adversary.
	// Interposed is sim-only (there is no adversary view to blunt), so the
	// live ladder covers atomic and regular.
	lt := min(trials, 24)
	for _, model := range []register.Semantics{register.Atomic, register.Regular} {
		agree, minority := e21Agreement(cfg.sweep(lt), model, live.Backend(), nil)
		term, work, viol := e21Consensus(cfg, cfg.sweep(lt), model, live.Backend(), nil)
		t.Violations += viol
		t.AddRow("live", model.String(), "goroutine",
			stats.NewProportion(agree.Successes, agree.Trials).String(),
			fmt.Sprintf("%.3f", minority.Mean()),
			fmt.Sprintf("%d/%d", term.Successes, term.Trials), workCell(work))
	}

	t.AddNote("Thm 7's δ ≥ %.4f is proved for atomic registers and location-oblivious adversaries; rows outside that regime measure degradation, not a bound violation", thm7Delta)
	t.AddNote("interposed blunting: the adaptive spoiler splits a mean minority share of %.3f off the majority under atomic but only %.3f under interposed, where pending write values are hidden and it must spoil blind",
		spoilerSplit[register.Atomic], spoilerSplit[register.Interposed])
	t.AddNote("interposed is sim-only — live has no adversary view to mask — so live cells cover atomic and regular")
	return t
}
