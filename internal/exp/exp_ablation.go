package exp

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
)

// E15Ablations isolates the paper's individual design choices: write-success
// detection (footnote 2), the doubling impatience schedule (vs constant and
// linear), the fast path (§4.1.1), and pool vs bit-vector quorums (§6.2).
func E15Ablations(cfg Config) *Table {
	t := &Table{
		ID:         "E15",
		Title:      "Ablations of the paper's design choices",
		PaperClaim: "footnote 2 (detection saves ≤2 ops); §5.2 (doubling impatience); §4.1.1 (fast path); §6.2 (quorum schemes)",
		Columns:    []string{"ablation", "variant", "mean individual", "mean total", "δ̂ / notes"},
	}
	trials := cfg.trials(250)
	n := 64

	// 1. Impatience growth schedule, conciliator alone under attack.
	for _, g := range []conciliator.Growth{conciliator.GrowthDoubling, conciliator.GrowthLinear, conciliator.GrowthConstant} {
		agree := 0
		var ind, tot []float64
		for i := 0; i < trials; i++ {
			ok, total, individual := conciliatorTrial(n, g, false, sched.NewFirstMoverAttack(), cfg.Seed+uint64(i))
			if ok {
				agree++
			}
			ind = append(ind, float64(individual))
			tot = append(tot, float64(total))
		}
		t.AddRow("impatience growth", g.String(),
			fmt.Sprintf("%.1f", stats.Summarize(ind).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(tot).Mean),
			fmt.Sprintf("δ̂=%s", stats.NewProportion(agree, trials).String()))
	}

	// 2. Write-success detection, conciliator alone under round-robin.
	for _, detect := range []bool{false, true} {
		var ind, tot []float64
		for i := 0; i < trials; i++ {
			_, total, individual := conciliatorTrial(n, conciliator.GrowthDoubling, detect, sched.NewRoundRobin(), cfg.Seed+uint64(i))
			ind = append(ind, float64(individual))
			tot = append(tot, float64(total))
		}
		t.AddRow("write detection", fmt.Sprintf("detect=%v", detect),
			fmt.Sprintf("%.1f", stats.Summarize(ind).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(tot).Mean),
			"footnote 2: ≤2 ops saved")
	}

	// 3. Fast path on agreeing inputs, full protocol.
	for _, fp := range []bool{true, false} {
		var ind, tot []float64
		for i := 0; i < trials/2; i++ {
			spec := defaultSpec(n, 2)
			spec.fastPath = fp
			file, proto := spec.build()
			run, err := harness.RunProtocol(proto, harness.ObjectConfig{
				N: n, File: file, Inputs: mixedInputs(n, 1, 0),
				Scheduler: sched.NewUniformRandom(), Seed: cfg.Seed + uint64(i),
			})
			if err != nil {
				panic(err)
			}
			if err := check.Consensus(mixedInputs(n, 1, 0), run.DecidedOutputs()); err != nil {
				panic(err)
			}
			ind = append(ind, float64(run.Result.MaxIndividualWork()))
			tot = append(tot, float64(run.Result.TotalWork))
		}
		t.AddRow("fast path (unanimous inputs)", fmt.Sprintf("fastpath=%v", fp),
			fmt.Sprintf("%.1f", stats.Summarize(ind).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(tot).Mean),
			"")
	}

	// 4. Probabilistic vs deterministic first-mover writes under the
	// adaptive spoiler (the §2.1 motivation for the model).
	for _, naive := range []bool{false, true} {
		name := "probabilistic (impatient)"
		agree := 0
		var tot []float64
		for i := 0; i < trials; i++ {
			file := register.NewFile()
			var obj core.Object
			if naive {
				name = "deterministic (naive)"
				obj = conciliator.NewNaiveFirstMover(file, 1)
			} else {
				obj = conciliator.NewImpatient(file, n, 1)
			}
			run, err := harness.RunObject(obj, harness.ObjectConfig{
				N: 8, File: file, Inputs: mixedInputs(8, 8, i),
				Scheduler: sched.NewAdaptiveSpoiler(), Seed: cfg.Seed + uint64(i),
			})
			if err != nil {
				panic(err)
			}
			if check.Unanimous(run.Outputs()) {
				agree++
			}
			tot = append(tot, float64(run.Result.TotalWork))
		}
		t.AddRow("write model (adaptive spoiler)", name,
			"-",
			fmt.Sprintf("%.0f", stats.Summarize(tot).Mean),
			fmt.Sprintf("δ̂=%s", stats.NewProportion(agree, trials).String()))
	}

	// 5. Quorum scheme, m-valued consensus.
	m := 256
	for _, bv := range []bool{false, true} {
		name := "pool"
		if bv {
			name = "bitvector"
		}
		var ind, tot []float64
		for i := 0; i < trials/2; i++ {
			spec := defaultSpec(n, m)
			spec.bitVector = bv
			run, _, err := consensusTrial(spec, sched.NewUniformRandom(), cfg.Seed+uint64(i), 0)
			if err != nil {
				panic(err)
			}
			ind = append(ind, float64(run.Result.MaxIndividualWork()))
			tot = append(tot, float64(run.Result.TotalWork))
		}
		t.AddRow(fmt.Sprintf("quorum scheme (m=%d)", m), name,
			fmt.Sprintf("%.1f", stats.Summarize(ind).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(tot).Mean),
			"")
	}
	return t
}
