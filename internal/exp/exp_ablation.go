package exp

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// E15Ablations isolates the paper's individual design choices: write-success
// detection (footnote 2), the doubling impatience schedule (vs constant and
// linear), the fast path (§4.1.1), and pool vs bit-vector quorums (§6.2).
func E15Ablations(cfg Config) *Table {
	t := &Table{
		ID:         "E15",
		Title:      "Ablations of the paper's design choices",
		PaperClaim: "footnote 2 (detection saves ≤2 ops); §5.2 (doubling impatience); §4.1.1 (fast path); §6.2 (quorum schemes)",
		Columns:    []string{"ablation", "variant", "mean individual", "mean total", "δ̂ / notes"},
	}
	trials := cfg.trials(250)
	n := 64

	// 1. Impatience growth schedule, conciliator alone under attack.
	for _, g := range []conciliator.Growth{conciliator.GrowthDoubling, conciliator.GrowthLinear, conciliator.GrowthConstant} {
		var agree stats.Tally
		var ind, tot stats.Acc
		conciliatorSweep(cfg.sweep(trials), n, g, false,
			func() sched.Scheduler { return sched.NewFirstMoverAttack() },
			func(ok bool, total, individual int) {
				agree.Add(ok)
				ind.AddInt(individual)
				tot.AddInt(total)
			})
		t.AddRow("impatience growth", g.String(),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%.0f", tot.Mean()),
			fmt.Sprintf("δ̂=%s", agree.Proportion().String()))
	}

	// 2. Write-success detection, conciliator alone under round-robin.
	for _, detect := range []bool{false, true} {
		var ind, tot stats.Acc
		conciliatorSweep(cfg.sweep(trials), n, conciliator.GrowthDoubling, detect,
			func() sched.Scheduler { return sched.NewRoundRobin() },
			func(_ bool, total, individual int) {
				ind.AddInt(individual)
				tot.AddInt(total)
			})
		t.AddRow("write detection", fmt.Sprintf("detect=%v", detect),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%.0f", tot.Mean()),
			"footnote 2: ≤2 ops saved")
	}

	// 3. Fast path on agreeing inputs, full protocol.
	for _, fp := range []bool{true, false} {
		var ind, tot stats.Acc
		spec := cfg.spec(n, 2)
		spec.fastPath = fp
		mustSweep(harness.SweepProtocol(cfg.sweep(trials/2),
			harness.ProtocolSweep{
				Build: func() (*core.Protocol, harness.ObjectConfig) {
					file, proto := spec.build()
					return proto, harness.ObjectConfig{
						N: n, File: file, Inputs: mixedInputs(n, 1, 0),
						Scheduler: sched.NewUniformRandom(),
						Registers: spec.registers,
					}
				},
			},
			func(_ harness.Trial, run *harness.ProtocolRun) {
				if err := check.Consensus(mixedInputs(n, 1, 0), run.DecidedOutputs()); err != nil {
					panic(err)
				}
				ind.AddInt(run.Result.MaxIndividualWork())
				tot.AddInt(run.Result.TotalWork)
			}))
		t.AddRow("fast path (unanimous inputs)", fmt.Sprintf("fastpath=%v", fp),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%.0f", tot.Mean()),
			"")
	}

	// 4. Probabilistic vs deterministic first-mover writes under the
	// adaptive spoiler (the §2.1 motivation for the model).
	for _, naive := range []bool{false, true} {
		name := "probabilistic (impatient)"
		if naive {
			name = "deterministic (naive)"
		}
		var agree stats.Tally
		var tot stats.Acc
		mustSweep(harness.SweepObject(cfg.sweep(trials),
			harness.ObjectSweep{
				Build: func() (core.Object, harness.ObjectConfig) {
					file := register.NewFile()
					var obj core.Object
					if naive {
						obj = conciliator.NewNaiveFirstMover(file, 1)
					} else {
						obj = conciliator.NewImpatient(file, n, 1)
					}
					return obj, harness.ObjectConfig{
						N: 8, File: file, Inputs: mixedInputs(8, 8, 0),
						Scheduler: sched.NewAdaptiveSpoiler(),
					}
				},
				Inputs: func(tr harness.Trial) []value.Value { return mixedInputs(8, 8, tr.Index) },
			},
			func(_ harness.Trial, run *harness.ObjectRun) {
				agree.Add(check.Unanimous(run.Outputs()))
				tot.AddInt(run.Result.TotalWork)
			}))
		t.AddRow("write model (adaptive spoiler)", name,
			"-",
			fmt.Sprintf("%.0f", tot.Mean()),
			fmt.Sprintf("δ̂=%s", agree.Proportion().String()))
	}

	// 5. Quorum scheme, m-valued consensus.
	m := 256
	for _, bv := range []bool{false, true} {
		name := "pool"
		if bv {
			name = "bitvector"
		}
		var ind, tot stats.Acc
		spec := cfg.spec(n, m)
		spec.bitVector = bv
		consensusSweep(cfg.sweep(trials/2), spec,
			func() sched.Scheduler { return sched.NewUniformRandom() }, 0,
			func(_ harness.Trial, run *harness.ProtocolRun) {
				ind.AddInt(run.Result.MaxIndividualWork())
				tot.AddInt(run.Result.TotalWork)
			})
		t.AddRow(fmt.Sprintf("quorum scheme (m=%d)", m), name,
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%.0f", tot.Mean()),
			"")
	}
	return t
}
