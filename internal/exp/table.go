package exp

import (
	"context"
	"fmt"
	"strings"

	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
)

// Table is a rendered experiment result: the rows cmd/modcon-bench prints
// and EXPERIMENTS.md records.
type Table struct {
	// ID is the experiment id ("E1").
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim quotes the quantitative claim being reproduced.
	PaperClaim string
	// Columns are the header labels.
	Columns []string
	// Rows hold the measurements, one slice per row.
	Rows [][]string
	// Notes carry fit results, verdicts, and caveats.
	Notes []string
	// Dists carry the full streaming histograms behind the table's
	// percentile columns, labeled per cell. They render as summary lines in
	// text/markdown output and as complete bucketed histograms in JSON, so
	// distribution-level claims (work tails, not just means) are inspectable
	// from the artifact.
	Dists []Dist `json:",omitempty"`
	// Violations counts safety violations the experiment observed. Any
	// nonzero value is a bug, never bad luck; cmd/modcon-bench exits
	// nonzero when the sum over tables is nonzero.
	Violations int
}

// Dist is one labeled distribution attached to a table ("total work n=128
// uniform-random" → its histogram).
type Dist struct {
	// Label names the measured quantity and cell.
	Label string
	// Hist is the streaming histogram (deterministic across worker counts).
	Hist *obs.Hist
}

// AddDist attaches a labeled histogram to the table; empty or nil
// histograms are skipped.
func (t *Table) AddDist(label string, h *obs.Hist) {
	if h == nil || h.N() == 0 {
		return
	}
	t.Dists = append(t.Dists, Dist{Label: label, Hist: h})
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row with %d cells for %d columns in %s", len(cells), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, d := range t.Dists {
		fmt.Fprintf(&b, "dist: %s: %s\n", d.Label, d.Hist)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown section.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "**Paper claim:** %s\n\n", t.PaperClaim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Dists) > 0 {
		b.WriteByte('\n')
		for _, d := range t.Dists {
			fmt.Fprintf(&b, "- dist `%s`: %s\n", d.Label, d.Hist)
		}
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}

// Config scales an experiment run.
type Config struct {
	// Trials is the per-cell trial count; 0 uses each experiment's default.
	Trials int
	// Seed is the root seed: trial i of every cell runs with
	// harness.TrialSeed(Seed, i), so independent runs can be compared.
	Seed uint64
	// Workers caps concurrent trials per cell; 0 uses GOMAXPROCS. Results
	// are bit-identical at any worker count.
	Workers int
	// Ctx, if non-nil, cancels in-flight sweeps between simulated steps
	// (cancellation surfaces as a panic from the experiment; see
	// cmd/modcon-bench for the recover pattern).
	Ctx context.Context
	// FailFast makes experiments that classify safety per trial (E20) stop
	// their sweep at the first violation instead of finishing the cell.
	FailFast bool
	// Registers selects the register consistency model every consensus
	// sweep runs under (zero value register.Atomic). E21 ignores it — that
	// experiment sweeps over the models itself, as does E23's saturation
	// grid — but the rest of the suite
	// honors it, which is how the CI determinism gate replays E6 under
	// regular semantics.
	Registers register.Semantics
	// Reporter, if non-nil, receives throttled progress snapshots from
	// every sweep an experiment runs (cmd/modcon-bench -progress wires a
	// stderr text sink here). Reporting never affects results.
	Reporter *obs.Reporter
	// Meter, if non-nil, is threaded into every execution so progress
	// snapshots carry a live step count that moves inside long trials.
	Meter *obs.Meter
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// sweep builds the trial-engine configuration for one experiment cell.
func (c Config) sweep(trials int) harness.Sweep {
	return harness.Sweep{
		Trials: trials, Workers: c.Workers, Seed: c.Seed, Context: c.Ctx,
		Reporter: c.Reporter, Meter: c.Meter,
	}
}

// Experiment is one reproducible experiment from DESIGN.md §3.
type Experiment struct {
	// ID is the experiment id ("E1").
	ID string
	// Title is the short description.
	Title string
	// Live marks experiments that execute on the live (goroutine) backend;
	// cmd/modcon-bench selects by backend (-backend sim runs the
	// deterministic set, -backend live this set). Live experiments are
	// reproducible in their safety verdicts but not their interleavings.
	Live bool
	// Run executes the experiment and returns its table.
	Run func(cfg Config) *Table
}

// All returns the registered experiments in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Conciliator agreement probability (Thm 7)", Run: E1ConciliatorAgreement},
		{ID: "E2", Title: "Conciliator total work ≤ 6n (Thm 7)", Run: E2ConciliatorTotalWork},
		{ID: "E3", Title: "Conciliator individual work ≤ 2 lg n + O(1) (Thm 7)", Run: E3ConciliatorIndividualWork},
		{ID: "E4", Title: "Ratifier space and work vs m (Thm 8, Thm 10)", Run: E4RatifierSpaceWork},
		{ID: "E5", Title: "Quorum optimality (Thm 9, Bollobás)", Run: E5QuorumOptimality},
		{ID: "E6", Title: "Binary consensus work scaling (headline, Thm 5)", Run: E6BinaryConsensus},
		{ID: "E7", Title: "m-valued consensus total work O(n log m)", Run: E7MValuedConsensus},
		{ID: "E8", Title: "Impatient vs constant-rate baseline individual work", Run: E8BaselineComparison},
		{ID: "E9", Title: "Fast path on agreeing inputs (§4.1.1)", Run: E9FastPath},
		{ID: "E10", Title: "Shared-coin conciliator (Thm 6)", Run: E10CoinConciliator},
		{ID: "E11", Title: "Ratifier-only protocol under noisy scheduling (§4.2)", Run: E11NoisyRatifierOnly},
		{ID: "E12", Title: "Ratifier-only protocol under priority scheduling (§4.2)", Run: E12PriorityRatifierOnly},
		{ID: "E13", Title: "Bounded construction and fallback probability (§4.1.2)", Run: E13BoundedConstruction},
		{ID: "E14", Title: "Termination tail vs step budget (Attiya–Censor tightness)", Run: E14TerminationTail},
		{ID: "E15", Title: "Ablations: detection, growth, fast path, quorums", Run: E15Ablations},
		{ID: "E16", Title: "k-set agreement extension", Run: E16SetAgreement},
		{ID: "E17", Title: "Multi-slot consensus sequences (extension)", Run: E17Sequences},
		{ID: "E18", Title: "Cross-backend validation: sim vs live equivalence and live safety", Live: true, Run: E18CrossBackend},
		{ID: "E19", Title: "Live-backend wall-clock consensus cost", Live: true, Run: E19LiveWallClock},
		{ID: "E20", Title: "Fault intensity vs termination and work (robust sweeps, both backends)", Live: true, Run: E20FaultIntensity},
		{ID: "E21", Title: "Register semantics: agreement, termination, and work per model (both backends)", Live: true, Run: E21RegisterSemantics},
		{ID: "E22", Title: "Adversary synthesis: searched schedulers vs the attack catalog", Run: E22AdversarySearch},
		{ID: "E23", Title: "Workload saturation: offered load vs achieved decisions/sec", Run: E23WorkloadSaturation},
	}
}

// ByBackend returns the experiments for one backend: the deterministic
// simulator set (live == false) or the live-backend set (live == true).
func ByBackend(live bool) []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.Live == live {
			out = append(out, e)
		}
	}
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
