package exp

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d experiments, want 23", len(all))
	}
	if sim, live := len(ByBackend(false)), len(ByBackend(true)); sim != 19 || live != 4 {
		t.Fatalf("backend split sim=%d live=%d, want 19/4", sim, live)
	}
	seen := make(map[string]bool)
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E6"); !ok {
		t.Fatal("ByID(E6) missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) found a ghost")
	}
}

// TestEveryExperimentRunsTiny executes each experiment at a minimal trial
// count and validates the table structure. Correctness of the *values* is
// asserted by the per-module tests; this guards the harness plumbing.
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all experiments")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(Config{Trials: 2, Seed: 7})
			if table.ID != e.ID {
				t.Fatalf("table id %q", table.ID)
			}
			if len(table.Columns) == 0 || len(table.Rows) == 0 {
				t.Fatalf("empty table: %+v", table)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Fatalf("ragged row %v", row)
				}
			}
			if table.PaperClaim == "" {
				t.Fatal("missing paper claim")
			}
			s := table.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, table.Columns[0]) {
				t.Fatalf("rendering broken:\n%s", s)
			}
			md := table.Markdown()
			if !strings.HasPrefix(md, "### "+e.ID) || !strings.Contains(md, "|") {
				t.Fatalf("markdown broken:\n%s", md)
			}
		})
	}
}

func TestE1MeetsPaperBoundAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	table := E1ConciliatorAgreement(Config{Trials: 120, Seed: 3})
	for _, row := range table.Rows {
		if row[len(row)-1] == "NO" {
			t.Errorf("row below paper bound: %v", row)
		}
	}
}

func TestE4AllPropertiesOK(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table := E4RatifierSpaceWork(Config{Trials: 5, Seed: 3})
	for _, row := range table.Rows {
		if row[len(row)-1] != "ok" {
			t.Errorf("ratifier property failure: %v", row)
		}
	}
}

func TestE5OptimalityExact(t *testing.T) {
	table := E5QuorumOptimality(Config{Trials: 1, Seed: 1})
	for _, row := range table.Rows {
		if row[1] != row[2] {
			t.Errorf("pool does not realize the Bollobás maximum: %v", row)
		}
		if !strings.HasPrefix(row[3], "1.000000") {
			t.Errorf("full pool Bollobás sum not 1: %v", row)
		}
	}
	for _, n := range table.Notes {
		if strings.Contains(n, "FAILED") {
			t.Errorf("verification note: %s", n)
		}
	}
}

func TestTablePanicsOnRaggedRow(t *testing.T) {
	table := &Table{ID: "X", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	table.AddRow("only-one")
}

// TestExperimentDeterministicAcrossWorkers renders the same experiment at
// different worker counts: the parallel trial engine merges per-trial
// results in trial order, so the tables must be byte-identical.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	ref := E1ConciliatorAgreement(Config{Trials: 6, Seed: 11, Workers: 1}).String()
	for _, w := range []int{4, 16} {
		if got := E1ConciliatorAgreement(Config{Trials: 6, Seed: 11, Workers: w}).String(); got != ref {
			t.Fatalf("workers=%d table differs:\n%s\n--- want ---\n%s", w, got, ref)
		}
	}
}

// TestExperimentCancellation checks that a cancelled context aborts an
// experiment (surfaced as the documented panic from mustSweep).
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected cancellation panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "cancel") {
			t.Fatalf("panic %q does not mention cancellation", msg)
		}
	}()
	E1ConciliatorAgreement(Config{Trials: 50, Seed: 1, Ctx: ctx})
}

func TestConfigTrialsDefault(t *testing.T) {
	if got := (Config{}).trials(50); got != 50 {
		t.Fatalf("default trials %d", got)
	}
	if got := (Config{Trials: 7}).trials(50); got != 7 {
		t.Fatalf("override trials %d", got)
	}
}

func TestMixedInputs(t *testing.T) {
	in := mixedInputs(4, 2, 1)
	want := []int64{1, 0, 1, 0}
	for i, v := range in {
		if int64(v) != want[i] {
			t.Fatalf("mixedInputs = %v", in)
		}
	}
}
