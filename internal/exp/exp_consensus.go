package exp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sim"
	"github.com/modular-consensus/modcon/internal/stats"
)

// E6BinaryConsensus measures the headline result: expected O(log n)
// individual and O(n) total work for binary consensus in the
// probabilistic-write model.
func E6BinaryConsensus(cfg Config) *Table {
	t := &Table{
		ID:         "E6",
		Title:      "Binary consensus expected work vs n",
		PaperClaim: "Abstract/Thm 5: O(log n) expected individual work and O(n) expected total work; first weak-adversary protocol with optimal total work",
		Columns:    []string{"n", "adversary", "mean individual", "ind p50/p90/p99", "mean total", "tot p99", "total/n"},
	}
	trials := cfg.trials(150)
	advs := adversaryPortfolio()
	var ns, indY, totY []float64
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256} {
		for _, adv := range advs {
			ind, tot := &obs.Hist{}, &obs.Hist{}
			consensusSweep(cfg.sweep(trials), cfg.spec(n, 2), adv.New, 0,
				func(tr harness.Trial, run *harness.ProtocolRun) {
					if err := check.Consensus(mixedInputs(n, 2, tr.Index), run.DecidedOutputs()); err != nil {
						panic(err)
					}
					ind.AddInt(run.Result.MaxIndividualWork())
					tot.AddInt(run.Result.TotalWork)
				})
			t.AddRow(fmt.Sprintf("%d", n), adv.Name,
				fmt.Sprintf("%.1f ± %.1f", ind.Mean(), ind.SE()),
				fmt.Sprintf("%d/%d/%d", ind.P50(), ind.P90(), ind.P99()),
				fmt.Sprintf("%.0f ± %.0f", tot.Mean(), tot.SE()),
				fmt.Sprintf("%d", tot.P99()),
				fmt.Sprintf("%.2f", tot.Mean()/float64(n)))
			if adv.Name == "first-mover-attack" {
				ns = append(ns, float64(n))
				indY = append(indY, ind.Mean())
				totY = append(totY, tot.Mean())
				t.AddDist(fmt.Sprintf("individual work n=%d first-mover-attack", n), ind)
				t.AddDist(fmt.Sprintf("total work n=%d first-mover-attack", n), tot)
			}
		}
	}
	t.AddNote("individual work under attack: %s", stats.BestShape(ns, indY, stats.ShapeLog, stats.ShapeLinear))
	t.AddNote("total work under attack: %s", stats.BestShape(ns, totY, stats.ShapeLog, stats.ShapeLinear, stats.ShapeNLogN))
	return t
}

// E7MValuedConsensus sweeps m at fixed n: total work should grow like
// n log m (the ratifier quorums dominate).
func E7MValuedConsensus(cfg Config) *Table {
	t := &Table{
		ID:         "E7",
		Title:      "m-valued consensus total work vs m (n fixed)",
		PaperClaim: "Abstract: consensus with O(log n) individual work and O(n log m) total work",
		Columns:    []string{"m", "n", "mean individual", "mean total", "tot p99", "total/(n·lg m)"},
	}
	trials := cfg.trials(120)
	n := 32
	var ms, totY []float64
	for _, m := range []int{2, 4, 16, 64, 256, 1024} {
		ind, tot := &obs.Hist{}, &obs.Hist{}
		consensusSweep(cfg.sweep(trials), cfg.spec(n, m),
			func() sched.Scheduler { return sched.NewFirstMoverAttack() }, 0,
			func(_ harness.Trial, run *harness.ProtocolRun) {
				ind.AddInt(run.Result.MaxIndividualWork())
				tot.AddInt(run.Result.TotalWork)
			})
		t.AddRow(fmt.Sprintf("%d", m), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%.0f", tot.Mean()),
			fmt.Sprintf("%d", tot.P99()),
			fmt.Sprintf("%.2f", tot.Mean()/(float64(n)*math.Log2(float64(m)))))
		t.AddDist(fmt.Sprintf("total work m=%d n=%d first-mover-attack", m, n), tot)
		ms = append(ms, float64(m))
		totY = append(totY, tot.Mean())
	}
	fit := stats.BestShape(ms, totY, stats.ShapeLog, stats.ShapeLinear)
	t.AddNote("total work vs m at fixed n: %s (log ⇒ O(n log m) overall)", fit)
	return t
}

// E9FastPath shows agreeing executions decide through R₋₁R₀ at O(1) cost.
func E9FastPath(cfg Config) *Table {
	t := &Table{
		ID:         "E9",
		Title:      "Fast path: unanimous inputs decide without conciliators",
		PaperClaim: "§4.1.1: the prefix R₋₁; R₀ lets agreeing executions decide immediately, avoiding conciliator overhead",
		Columns:    []string{"n", "mean individual", "max individual", "fast-path decisions", "conciliator ops"},
	}
	trials := cfg.trials(100)
	for _, n := range []int{4, 16, 64, 256} {
		maxInd := 0
		var ind stats.Acc
		fastDecisions, total := 0, 0
		spec := cfg.spec(n, 2)
		mustSweep(harness.SweepProtocol(cfg.sweep(trials),
			harness.ProtocolSweep{
				Build: func() (*core.Protocol, harness.ObjectConfig) {
					file, proto := spec.build()
					return proto, harness.ObjectConfig{
						N: n, File: file, Inputs: mixedInputs(n, 1, 0), // all zeros
						Scheduler: sched.NewUniformRandom(),
						Registers: spec.registers,
					}
				},
			},
			func(_ harness.Trial, run *harness.ProtocolRun) {
				ind.AddInt(run.Result.MaxIndividualWork())
				if w := run.Result.MaxIndividualWork(); w > maxInd {
					maxInd = w
				}
				for pid := 0; pid < n; pid++ {
					total++
					if st, _ := run.DecidedStage(pid); st == 0 {
						fastDecisions++
					}
				}
			}))
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ind.Mean()),
			fmt.Sprintf("%d", maxInd),
			fmt.Sprintf("%d/%d", fastDecisions, total),
			"0")
	}
	t.AddNote("individual work is constant in n (≤ 2 binary-ratifier traversals = 8 ops)")
	return t
}

// E13BoundedConstruction histograms the deciding stage and measures the
// probability of reaching the fallback for truncated chains.
func E13BoundedConstruction(cfg Config) *Table {
	t := &Table{
		ID:         "E13",
		Title:      "Bounded construction: deciding-stage distribution and fallback probability",
		PaperClaim: "§4.1.2/Thm 5: expected stages ≤ 1/δ; Pr[reach K] ≤ (1-δ)^k, so k = O(log n) suffices",
		Columns:    []string{"k (stages)", "adversary", "fallback rate (95% CI)", "predicted (deep-run tail)", "mean deciding stage"},
	}
	trials := cfg.trials(400)
	n := 16
	for _, adv := range adversaryPortfolio() {
		if adv.Name == "lockstep" || adv.Name == "eager-write-attack" {
			continue // keep the table focused
		}
		// Calibrate from deep (k=12) runs, where truncation is negligible:
		// an execution of the k-truncated chain reaches the fallback
		// exactly when the corresponding untruncated execution's maximum
		// deciding stage exceeds k, so the deep-run tail Pr[maxStage > k]
		// predicts the fallback rate directly.
		deepSpec := cfg.spec(n, 2)
		deepSpec.fastPath = false
		deepSpec.stages = 12
		deepSpec.fallbackK = true
		var deepMax []int
		consensusSweep(cfg.sweep(trials), deepSpec, adv.New, 0,
			func(_ harness.Trial, run *harness.ProtocolRun) {
				maxStage := 0
				for pid := 0; pid < n; pid++ {
					st, fb := run.DecidedStage(pid)
					if fb {
						st = 13
					}
					if st > maxStage {
						maxStage = st
					}
				}
				deepMax = append(deepMax, maxStage)
			})
		tailAbove := func(k int) float64 {
			cnt := 0
			for _, ms := range deepMax {
				if ms > k {
					cnt++
				}
			}
			return float64(cnt) / float64(len(deepMax))
		}
		for _, k := range []int{1, 2, 4, 8} {
			spec := cfg.spec(n, 2)
			spec.fastPath = false
			spec.stages = k
			spec.fallbackK = true
			var fell stats.Tally
			sumStage, decided := 0.0, 0
			// The truncated runs must be independent of the deep calibration
			// runs (the prediction is about fresh executions), so this sweep
			// derives its trial seeds from a shifted root.
			s := cfg.sweep(trials)
			s.Seed = cfg.Seed + 1
			consensusSweep(s, spec, adv.New, 0,
				func(_ harness.Trial, run *harness.ProtocolRun) {
					usedFallback := false
					for pid := 0; pid < n; pid++ {
						st, fb := run.DecidedStage(pid)
						if fb {
							usedFallback = true
						} else if st >= 1 {
							sumStage += float64(st)
							decided++
						}
					}
					fell.Add(usedFallback)
				})
			p := fell.Proportion()
			meanStage := 0.0
			if decided > 0 {
				meanStage = sumStage / float64(decided)
			}
			t.AddRow(fmt.Sprintf("%d", k), adv.Name, p.String(),
				fmt.Sprintf("%.4f", tailAbove(k)),
				fmt.Sprintf("%.2f", meanStage))
		}
	}
	t.AddNote("prediction = Pr[max deciding stage > k] measured on independent deep (k=12) runs; the tail decays geometrically in k (per-stage agreement is constant-probability)")
	return t
}

// E14TerminationTail measures Pr[not all terminated within a total-step
// budget] — the upper-bound side of the Attiya–Censor trade-off.
func E14TerminationTail(cfg Config) *Table {
	t := &Table{
		ID:         "E14",
		Title:      "Probability of non-termination vs total-step budget",
		PaperClaim: "Attiya–Censor: any protocol fails to finish in k(n-f) steps w.p. ≥ 1/c^k; our O(n)-work protocol matches the exponential decay, showing the bound is tight for this model",
		Columns:    []string{"n", "budget (×n ops)", "Pr[not terminated] (95% CI)"},
	}
	trials := cfg.trials(400)
	n := 16
	for _, mult := range []int{8, 12, 16, 20, 24, 32, 48} {
		var failed stats.Tally
		// Step-limit exhaustion is the event being measured, not a trial
		// failure, so the trial function absorbs sim.ErrStepLimit instead of
		// letting it abort the sweep.
		mustSweep(harness.RunTrials(cfg.sweep(trials),
			func(ctx context.Context, tr harness.Trial) (bool, error) {
				spec := cfg.spec(n, 2)
				file, proto := spec.build()
				_, err := harness.RunProtocol(proto, harness.ObjectConfig{
					N: n, File: file, Inputs: mixedInputs(n, 2, tr.Index),
					Scheduler: sched.NewFirstMoverAttack(), Seed: tr.Seed,
					MaxSteps: mult * n, Context: ctx,
					Registers: spec.registers,
				})
				switch {
				case err == nil:
					return false, nil
				case errors.Is(err, sim.ErrStepLimit):
					return true, nil
				default:
					return false, err
				}
			},
			func(_ harness.Trial, timedOut bool) { failed.Add(timedOut) }))
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", mult), failed.Proportion().String())
	}
	t.AddNote("decay is exponential in the budget multiplier (each Θ(n)-step stage succeeds with constant probability)")
	return t
}
