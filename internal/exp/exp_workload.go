package exp

// E23: workload saturation. Measure each cell's service-demand
// distribution once (demands are a property of protocol × adversary ×
// register model × seed, independent of how fast requests arrive), then
// sweep an offered-load ladder through the virtual-time service model
// (internal/workload) to map offered vs achieved decisions/sec and locate
// the saturation knee per curve. Like E21, the experiment sweeps the
// register models itself — the Attiya–Enea–Welch blunting prediction is
// that interposition shifts the knee under attack, so the models must sit
// side by side in one table. The whole experiment is a pure function of
// (seed, trials): one consensus sweep per cell plus integer-nanosecond
// queueing math, so the table is bit-identical at any worker count.

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/workload"
)

const (
	e23N       = 8
	e23M       = 2
	e23Servers = 4
)

// e23Ladder is the offered-load ladder, as fractions of each cell's
// measured service capacity (servers / mean demand). Anchoring the ladder
// to measured capacity rather than absolute rates keeps the knee inside
// the sweep for every cell and trial budget.
var e23Ladder = []float64{0.25, 0.50, 0.75, 0.90, 1.00, 1.25, 1.50}

// e23Adversaries is the scheduler axis of the saturation grid: the benign
// baseline plus the strongest catalog attack, so the knee shift under
// adversarial scheduling is visible in one table.
func e23Adversaries() []struct {
	Name string
	New  func() sched.Scheduler
} {
	return []struct {
		Name string
		New  func() sched.Scheduler
	}{
		{"round-robin", func() sched.Scheduler { return sched.NewRoundRobin() }},
		{"first-mover-attack", func() sched.Scheduler { return sched.NewFirstMoverAttack() }},
	}
}

// E23WorkloadSaturation sweeps offered load against achieved virtual
// throughput for binary consensus per register model × adversary,
// reporting latency percentiles per ladder point and the knee per curve.
func E23WorkloadSaturation(cfg Config) *Table {
	t := &Table{
		ID:    "E23",
		Title: "Workload saturation: offered load vs achieved decisions/sec",
		PaperClaim: "§2/§5: expected per-instance work is bounded under every admissible adversary, " +
			"so consensus served as independent jobs sustains offered load up to a capacity set by " +
			"that per-instance work — and degrades past it by queueing delay, not by work blow-up; " +
			"Attiya–Enea–Welch predict interposed registers blunt the adversary, shifting the knee",
		Columns: []string{"registers", "adversary", "load", "offered/s", "achieved/s", "lat p50 µs", "lat p99 µs"},
	}
	trials := cfg.trials(256)
	stepNs := int64(workload.DefaultStep)

	// kneeRate[model][adversary] is the curve's knee as an offered rate,
	// for the blunting comparison note below.
	kneeRate := map[register.Semantics]map[string]float64{}

	for _, model := range []register.Semantics{register.Atomic, register.Regular, register.Interposed} {
		kneeRate[model] = map[string]float64{}
		for _, adv := range e23Adversaries() {
			// One demand sweep per cell: the offered rate never changes
			// what a trial computes (open-loop admission re-times dispatch,
			// it never reaches the simulator), so every ladder point below
			// serves the same measured demands.
			spec := defaultSpec(e23N, e23M)
			spec.registers = model
			demands := make([]int64, trials)
			work := &obs.Hist{}
			consensusSweep(cfg.sweep(trials), spec, adv.New, 0,
				func(tr harness.Trial, run *harness.ProtocolRun) {
					if err := check.Consensus(mixedInputs(e23N, e23M, tr.Index), run.DecidedOutputs()); err != nil {
						panic(err)
					}
					demands[tr.Index] = int64(run.Result.TotalWork)
					work.AddInt(run.Result.TotalWork)
				})
			capacity := float64(e23Servers) * 1e9 / (work.Mean() * float64(stepNs))
			t.AddDist(fmt.Sprintf("service demand steps %s %s", model, adv.Name), work)

			var offered, achieved []float64
			for _, frac := range e23Ladder {
				ws := &workload.Spec{Kind: workload.Poisson, Rate: frac * capacity, Servers: e23Servers}
				arrivals, err := ws.Schedule(cfg.Seed, trials)
				mustSweep(err)
				served, err := ws.Serve(arrivals, demands)
				mustSweep(err)
				m := served.Metrics
				offered = append(offered, m.OfferedPerSec)
				achieved = append(achieved, m.AchievedPerSec)
				t.AddRow(model.String(), adv.Name, fmt.Sprintf("%.2f×cap", frac),
					fmt.Sprintf("%.0f", m.OfferedPerSec),
					fmt.Sprintf("%.0f", m.AchievedPerSec),
					fmt.Sprint(m.LatencyUs.P50()), fmt.Sprint(m.LatencyUs.P99()))
				if frac == 1.00 && adv.Name == "first-mover-attack" {
					t.AddDist(fmt.Sprintf("latency µs at 1.00×cap %s %s", model, adv.Name), m.LatencyUs)
				}
				if frac == 1.00 && model == register.Atomic && adv.Name == "first-mover-attack" {
					t.AddNote("reproduce this curve point: modcon-bench -workload '%s' -trials %d -seed %d (byte-identical at any -workers/-shards)",
						ws.String(), trials, cfg.Seed)
				}
			}

			knee := workload.Knee(offered, achieved, 0)
			if knee < 0 {
				t.AddNote("%s/%s: no knee located — even %.2f×cap ran below %.0f%% efficiency (the last job's tail dominates short runs; grow -trials)",
					model, adv.Name, e23Ladder[0], workload.DefaultKneeFraction*100)
			} else {
				kneeRate[model][adv.Name] = offered[knee]
				t.AddNote("%s/%s: knee at %.2f×cap (offered %.0f/s still served at ≥%.0f%% efficiency); est. capacity %.0f/s from mean demand %.0f steps",
					model, adv.Name, e23Ladder[knee], offered[knee], workload.DefaultKneeFraction*100, capacity, work.Mean())
			}
			if model == register.Atomic && adv.Name == "round-robin" {
				// Closed-loop ceiling reference: the same demands driven by
				// a think-free cohort of one client per server — the
				// throughput an open curve plateaus toward past its knee.
				closed := &workload.Spec{Kind: workload.Closed, Clients: e23Servers, Servers: e23Servers}
				ceiling, err := closed.Serve(nil, demands)
				mustSweep(err)
				t.AddNote("closed-loop ceiling for %s/%s (clients=%d, think=0): %.0f/s",
					model, adv.Name, e23Servers, ceiling.Metrics.AchievedPerSec)
			}
		}
	}

	// Blunting verdict: under the strongest attack, an interposed file hides
	// in-flight operations from the adversary, so per-instance work should
	// drop and the knee should move to a higher offered rate than atomic's.
	const attack = "first-mover-attack"
	if at, ok := kneeRate[register.Atomic][attack]; ok {
		if ip, ok := kneeRate[register.Interposed][attack]; ok {
			if ip > at {
				t.AddNote("blunting CONFIRMED under %s: interposed knee %.0f/s > atomic knee %.0f/s", attack, ip, at)
			} else {
				t.AddNote("blunting NOT CONFIRMED at this budget under %s: interposed knee %.0f/s ≤ atomic knee %.0f/s (grow -trials)", attack, ip, at)
			}
		}
	}
	t.AddNote("virtual-time model: demands measured closed-loop, served as independent FIFO jobs at %dns/step by %d servers; see EXPERIMENTS.md §E23 for the first-order caveat",
		stepNs, e23Servers)
	return t
}
