package exp

// Live-backend experiments: the same objects and protocols, executed on
// internal/live (free-running goroutines over sync/atomic registers)
// instead of the simulator. E18 is the cross-backend validation pass: it
// pins that the two backends implement the *same* semantics where they
// must agree (adversary-free executions are bit-equivalent) and that
// safety holds on live where they legitimately differ (the Go scheduler
// picks the interleaving). E19 reports wall-clock costs, which only the
// live backend can measure meaningfully.

import (
	"fmt"
	"time"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/live"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/stats"
	"github.com/modular-consensus/modcon/internal/value"
)

// crossBackendCatalog lists one builder per public-catalog object family.
// Each builder allocates a fresh object in a fresh file (objects are
// one-shot and files are mutated by sim runs).
func crossBackendCatalog() []struct {
	Name  string
	Build func() (*register.File, core.Object)
	Input value.Value
} {
	type entry = struct {
		Name  string
		Build func() (*register.File, core.Object)
		Input value.Value
	}
	mk := func(name string, input value.Value, build func(f *register.File) core.Object) entry {
		return entry{Name: name, Input: input, Build: func() (*register.File, core.Object) {
			f := register.NewFile()
			return f, build(f)
		}}
	}
	return []entry{
		mk("impatient-conciliator", 1, func(f *register.File) core.Object { return conciliator.NewImpatient(f, 1, 1) }),
		mk("constant-rate-conciliator", 1, func(f *register.File) core.Object { return conciliator.NewConstantRate(f, 1, 1) }),
		mk("binary-ratifier", 1, func(f *register.File) core.Object { return ratifier.NewBinary(f, 1) }),
		mk("pool-ratifier-m16", 7, func(f *register.File) core.Object { return ratifier.NewPool(f, 16, 1) }),
		mk("bitvector-ratifier-m16", 7, func(f *register.File) core.Object { return ratifier.NewBitVector(f, 16, 1) }),
		mk("collect-ratifier", 1, func(f *register.File) core.Object { return ratifier.NewCollect(f, 1, 1) }),
		mk("cil-consensus", 1, func(f *register.File) core.Object { return fallback.New(f, 1, 1) }),
	}
}

// E18CrossBackend is the cross-backend validation pass.
//
// Part 1 — single-process equivalence. With one process there is no
// interleaving for the backends to disagree on, and both derive the
// process's coin and probabilistic-write streams the same way
// (exec.ProcCoins/ProcProb), so sim and live must produce bit-identical
// decisions and operation counts for every catalog object. Any deviation
// means one backend's Env prices or sequences operations differently — a
// semantics bug, not noise.
//
// Part 2 — live safety. With n > 1 outputs may differ run to run, but
// agreement and validity are safety properties: they must hold under
// *every* interleaving, including whatever the Go scheduler produces.
// Each execution is checked with check.Consensus, and the work accounting
// is audited with check.WorkAccounting.
func E18CrossBackend(cfg Config) *Table {
	t := &Table{
		ID:         "E18",
		Title:      "Cross-backend validation: sim vs live",
		PaperClaim: "§2/§3: deciding objects are defined against abstract shared memory, so their semantics cannot depend on the execution model",
		Columns:    []string{"check", "cell", "runs", "result"},
	}
	trials := cfg.trials(25)

	// Part 1: single-process bit-equivalence, every catalog object.
	for _, c := range crossBackendCatalog() {
		mismatches := 0
		ops := -1
		opsVary := false
		for i := 0; i < trials; i++ {
			seed := harness.TrialSeed(cfg.Seed, i)
			run := func(backendCfg harness.ObjectConfig) *harness.ObjectRun {
				file, obj := c.Build()
				backendCfg.N, backendCfg.File, backendCfg.Inputs = 1, file, []value.Value{c.Input}
				backendCfg.Seed = seed
				backendCfg.Context = cfg.Ctx
				r, err := harness.RunObject(obj, backendCfg)
				if err != nil {
					panic(fmt.Sprintf("exp: E18 %s: %v", c.Name, err))
				}
				return r
			}
			simRun := run(harness.ObjectConfig{Scheduler: sched.NewRoundRobin()})
			liveRun := run(harness.ObjectConfig{Backend: live.Backend()})
			if simRun.Decisions[0] != liveRun.Decisions[0] ||
				simRun.Result.Work[0] != liveRun.Result.Work[0] ||
				simRun.Result.TotalWork != liveRun.Result.TotalWork {
				mismatches++
			}
			if ops == -1 {
				ops = simRun.Result.TotalWork
			} else if ops != simRun.Result.TotalWork {
				opsVary = true
			}
		}
		opsCell := fmt.Sprintf("%d ops", ops)
		if opsVary {
			opsCell += " (varies by seed)"
		}
		verdict := "identical decisions+work"
		if mismatches > 0 {
			verdict = fmt.Sprintf("MISMATCH in %d/%d runs", mismatches, trials)
		}
		t.AddRow("1-process equivalence", c.Name+", "+opsCell, fmt.Sprintf("%d seeds", trials), verdict)
		if mismatches > 0 {
			t.AddNote("E18 FAILED: %s diverges between backends — backend semantics bug", c.Name)
		}
	}

	// Part 2: consensus safety on live across process counts and domains.
	for _, n := range []int{2, 8, 32} {
		for _, m := range []int{2, 4} {
			violations := 0
			var tot stats.Acc
			for i := 0; i < trials; i++ {
				spec := cfg.spec(n, m)
				spec.fallbackK = true
				file, proto := spec.build()
				inputs := mixedInputs(n, m, i)
				run, err := harness.RunProtocol(proto, harness.ObjectConfig{
					N: n, File: file, Inputs: inputs,
					Backend:   live.Backend(),
					Seed:      harness.TrialSeed(cfg.Seed, i),
					Context:   cfg.Ctx,
					Registers: spec.registers,
				})
				if err != nil {
					panic(fmt.Sprintf("exp: E18 live consensus n=%d m=%d: %v", n, m, err))
				}
				if err := check.Consensus(inputs, run.DecidedOutputs()); err != nil {
					violations++
				}
				if err := check.WorkAccounting(run.Result.Work, run.Result.TotalWork); err != nil {
					violations++
				}
				tot.AddInt(run.Result.TotalWork)
			}
			verdict := "agreement+validity hold"
			if violations > 0 {
				verdict = fmt.Sprintf("%d SAFETY VIOLATIONS", violations)
				t.AddNote("E18 FAILED: live consensus n=%d m=%d violated safety", n, m)
			}
			t.AddRow("live consensus safety", fmt.Sprintf("n=%d m=%d, mean total %.0f ops", n, m, tot.Mean()),
				fmt.Sprintf("%d seeds", trials), verdict)
		}
	}
	t.AddNote("1-process runs must be bit-identical across backends (shared coin derivation); n>1 live runs are checked for safety, which no interleaving may break")
	return t
}

// E19LiveWallClock measures what only the live backend can: real elapsed
// time per consensus execution under genuine hardware concurrency. The
// numbers are machine-dependent (they are reported for shape, not pinned),
// unlike every sim-backed experiment; the operation counts alongside them
// remain exact.
func E19LiveWallClock(cfg Config) *Table {
	t := &Table{
		ID:         "E19",
		Title:      "Live-backend wall-clock binary consensus",
		PaperClaim: "(no paper claim — wall-clock sanity of the model-cost results; machine-dependent)",
		Columns:    []string{"n", "runs", "mean wall-clock", "mean total ops", "ops/n"},
	}
	trials := cfg.trials(30)
	for _, n := range []int{2, 8, 32} {
		var tot stats.Acc
		var elapsed time.Duration
		for i := 0; i < trials; i++ {
			spec := cfg.spec(n, 2)
			spec.fallbackK = true
			file, proto := spec.build()
			inputs := mixedInputs(n, 2, i)
			start := time.Now()
			run, err := harness.RunProtocol(proto, harness.ObjectConfig{
				N: n, File: file, Inputs: inputs,
				Backend:   live.Backend(),
				Seed:      harness.TrialSeed(cfg.Seed, i),
				Context:   cfg.Ctx,
				Registers: spec.registers,
			})
			elapsed += time.Since(start)
			if err != nil {
				panic(fmt.Sprintf("exp: E19 n=%d: %v", n, err))
			}
			if err := check.Consensus(inputs, run.DecidedOutputs()); err != nil {
				panic(fmt.Sprintf("exp: E19 n=%d: %v", n, err))
			}
			tot.AddInt(run.Result.TotalWork)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", trials),
			fmt.Sprint((elapsed / time.Duration(trials)).Round(time.Microsecond)),
			fmt.Sprintf("%.0f", tot.Mean()),
			fmt.Sprintf("%.1f", tot.Mean()/float64(n)))
	}
	t.AddNote("wall-clock is hardware- and load-dependent; op counts are exact (EXPERIMENTS.md records shapes only for this table)")
	return t
}
