// Package advsearch synthesizes worst-case adversaries: a budgeted
// black-box search over the parametric scheduler family (sched.Parametric)
// that evaluates candidates on the robust trial engine and reports the
// strongest adversary it found as a canonical config text any run can
// replay.
//
// The search treats the protocol as a black box. A candidate is one point
// in the parametric family — a base policy plus weights, phases, and
// condition→action rules, all drawn from the feature pools of one declared
// power class — and its fitness is measured by sweeping it over many
// seeded trials and scoring the objective (mean total work, or the safety
// violation rate). Three budget-bounded algorithms are provided: pure
// random sampling, a (1+λ) evolutionary loop, and a successive-halving
// bandit that spends few trials on many candidates and many trials on few.
//
// Graceful degradation is part of the contract, not an afterthought: every
// candidate runs under harness.SweepProtocolRobust with a per-trial
// deadline, panic containment, and bounded retries, so a candidate whose
// scheduler panics, stalls, or cannot even be constructed scores worst and
// is quarantined into the report instead of killing the search.
//
// Determinism: candidate generation and mutation draw from a single
// xrand stream derived from Options.Seed, evaluations happen sequentially
// on the calling goroutine (parallelism lives inside each sweep, whose
// aggregates are bit-identical at any worker count), and reports carry no
// wall-clock fields — so the same seed and budget reproduce the same
// winner config and the same report bytes at any Options.Workers. The one
// documented exception is shared with the harness: quarantine by deadline
// timeout depends on wall time, and only pathological candidates (which
// the real parametric family cannot express) ever reach it.
package advsearch

import (
	"errors"
	"fmt"
	"time"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// Objective selects what the search maximizes.
type Objective string

const (
	// MaximizeWork maximizes the mean total work per execution — the
	// paper's complexity measure, and the natural fitness for adversaries
	// attacking expected-work bounds.
	MaximizeWork Objective = "work"
	// MaximizeViolations maximizes the fraction of trials whose online
	// safety monitor observed an agreement or validity violation. Against a
	// correct protocol every candidate scores zero; a non-zero winner is a
	// found bug, reproducible from its config and the trial seeds.
	MaximizeViolations Objective = "violations"
)

// Algo selects the search algorithm.
type Algo string

const (
	// AlgoRandom evaluates independent random candidates until the budget
	// is spent.
	AlgoRandom Algo = "random"
	// AlgoEvolve runs a (1+λ) evolutionary loop: λ mutants per round, the
	// best strictly-improving child replaces the parent. A quarantined
	// parent restarts from a fresh random candidate.
	AlgoEvolve Algo = "evolve"
	// AlgoHalving runs a successive-halving bandit: a wide pool evaluated
	// at few trials per candidate, the top 1/η survivors re-evaluated at η
	// times the trials, until one candidate (or the budget) remains.
	AlgoHalving Algo = "halving"
)

// Target is the protocol cell the search attacks. It deliberately does not
// know about the experiment suite: callers (internal/exp, cmd/modcon-bench)
// adapt their cells to this shape.
type Target struct {
	// Name labels the target in reports (e.g. "binary-consensus/n=8").
	Name string
	// N is the process count.
	N int
	// Registers is the register model trials run under (zero = Atomic).
	Registers register.Semantics
	// MaxSteps bounds each execution (0 = a generous default); executions
	// the limit cuts down score at the cap under MaximizeWork.
	MaxSteps int
	// Build constructs a fresh protocol and its register file — called once
	// per pooled session, like harness.ProtocolSweep.Build.
	Build func() (*core.Protocol, *register.File)
	// Inputs optionally varies inputs per trial (nil keeps a fixed
	// all-zero assignment).
	Inputs func(t harness.Trial) []value.Value
}

// defaultMaxSteps bounds an execution when the target does not: generous
// enough that only a genuinely degenerate schedule hits it.
const defaultMaxSteps = 1 << 20

func (t Target) maxSteps() int {
	if t.MaxSteps > 0 {
		return t.MaxSteps
	}
	return defaultMaxSteps
}

// Options tunes a search. The zero value is not runnable: Power and Budget
// are required.
type Options struct {
	// Algo is the search algorithm (empty = AlgoEvolve).
	Algo Algo
	// Objective is the fitness (empty = MaximizeWork).
	Objective Objective
	// Power is the adversary class searched within; candidate features are
	// drawn only from this class's condition/action pools, and every
	// candidate declares exactly this power. Required.
	Power sched.Power
	// Budget is the total number of trials the search may spend, across
	// all candidate evaluations. Every evaluation charges TrialsPerEval
	// against it — including evaluations quarantined before running, so a
	// pathological candidate stream still terminates. Required.
	Budget int
	// TrialsPerEval is the sweep size of one candidate evaluation
	// (0 = 16). Halving uses it as the lowest rung.
	TrialsPerEval int
	// Seed derives both the candidate-generation stream and the per-trial
	// seeds (harness.TrialSeed), making the whole search reproducible.
	Seed uint64
	// Workers is the sweep parallelism per evaluation (0 = GOMAXPROCS).
	// It cannot affect results, only wall time.
	Workers int
	// Deadline is the per-trial watchdog (0 = 5s). Candidates with a
	// timed-out trial are quarantined.
	Deadline time.Duration
	// Lambda is AlgoEvolve's children per round (0 = 4).
	Lambda int
	// Eta is AlgoHalving's elimination factor (0 = 3).
	Eta int
	// NewScheduler builds a candidate's scheduler from its config text
	// (nil = sched.NewParametricFromString). The injection seam the
	// degradation tests use to plant panicking or stalling candidates.
	NewScheduler func(config string) (sched.Scheduler, error)
}

func (o Options) algo() Algo {
	if o.Algo == "" {
		return AlgoEvolve
	}
	return o.Algo
}

func (o Options) objective() Objective {
	if o.Objective == "" {
		return MaximizeWork
	}
	return o.Objective
}

func (o Options) trialsPerEval() int {
	if o.TrialsPerEval <= 0 {
		return 16
	}
	return o.TrialsPerEval
}

func (o Options) deadline() time.Duration {
	if o.Deadline <= 0 {
		return 5 * time.Second
	}
	return o.Deadline
}

func (o Options) lambda() int {
	if o.Lambda <= 0 {
		return 4
	}
	return o.Lambda
}

func (o Options) eta() int {
	if o.Eta <= 1 {
		return 3
	}
	return o.Eta
}

func (o Options) newScheduler(config string) (sched.Scheduler, error) {
	if o.NewScheduler != nil {
		return o.NewScheduler(config)
	}
	return sched.NewParametricFromString(config)
}

func (o Options) validate(t Target) error {
	if t.Build == nil {
		return errors.New("advsearch: target has no Build")
	}
	if t.N < 1 {
		return fmt.Errorf("advsearch: target needs n ≥ 1, got %d", t.N)
	}
	if o.Power < sched.Oblivious || o.Power > sched.Adaptive {
		return fmt.Errorf("advsearch: invalid power class %d", int(o.Power))
	}
	switch o.algo() {
	case AlgoRandom, AlgoEvolve, AlgoHalving:
	default:
		return fmt.Errorf("advsearch: unknown algorithm %q", o.Algo)
	}
	switch o.objective() {
	case MaximizeWork, MaximizeViolations:
	default:
		return fmt.Errorf("advsearch: unknown objective %q", o.Objective)
	}
	if o.Budget < o.trialsPerEval() {
		return fmt.Errorf("advsearch: budget %d below one evaluation (%d trials)",
			o.Budget, o.trialsPerEval())
	}
	return nil
}

// Eval is one candidate evaluation. Quarantined evaluations rank below
// every healthy one regardless of score.
type Eval struct {
	// Index is the evaluation's position in the search (0-based); ties in
	// score resolve to the earlier index.
	Index int `json:"index"`
	// Config is the candidate's canonical text (sched.ParamConfig.String),
	// or a caller-chosen label for baseline evaluations.
	Config string `json:"config"`
	// Trials counts classified trials (0 if quarantined before running).
	Trials int `json:"trials"`
	// Score is the objective value (0 for quarantined candidates).
	Score float64 `json:"score"`
	// Outcomes maps harness.TrialOutcome strings to counts.
	Outcomes map[string]int `json:"outcomes,omitempty"`
	// Work aggregates total work per completed execution (step-limited
	// executions count at the cap).
	Work *obs.Hist `json:"work,omitempty"`
	// Quarantined marks a degraded candidate: its factory failed, a trial
	// timed out, panicked, or exhausted retries, or nothing completed.
	Quarantined bool `json:"quarantined,omitempty"`
	// Reason explains the quarantine.
	Reason string `json:"reason,omitempty"`
}

// Report is a completed search. It contains no wall-clock fields: the same
// target, options, and seed reproduce it byte-for-byte at any worker count.
type Report struct {
	Target        string    `json:"target"`
	N             int       `json:"n"`
	Power         string    `json:"power"`
	Registers     string    `json:"registers"`
	Algo          Algo      `json:"algo"`
	Objective     Objective `json:"objective"`
	Seed          uint64    `json:"seed"`
	Budget        int       `json:"budget"`
	TrialsPerEval int       `json:"trialsPerEval"`
	// TrialsSpent is the budget consumed (requested trials, charged even
	// to evaluations quarantined before running).
	TrialsSpent int `json:"trialsSpent"`
	// Evaluations counts candidate evaluations (== len(Evals)).
	Evaluations int `json:"evaluations"`
	// Winner is the best healthy evaluation, nil if every candidate was
	// quarantined. Winner.Config replays under any worker count via
	// sched.NewParametricFromString (or modcon.WithSearchedScheduler).
	Winner *Eval `json:"winner,omitempty"`
	// Quarantined lists the degraded evaluations, in evaluation order.
	Quarantined []Eval `json:"quarantined,omitempty"`
	// Evals holds every evaluation, in evaluation order.
	Evals []Eval `json:"evals"`
}

// better ranks evaluations: healthy beats quarantined, then higher score,
// then the earlier index (callers only replace on strict improvement).
func better(a, b Eval) bool {
	if a.Quarantined != b.Quarantined {
		return !a.Quarantined
	}
	if a.Quarantined {
		return false
	}
	return a.Score > b.Score
}

// EvaluateScheduler measures one fixed scheduler on the target under the
// search's exact evaluation protocol — same sweep seeds, trial count,
// resilience, and scoring. The experiment drivers use it to put the attack
// catalog's fixed adversaries on equal footing with searched winners.
// label names the evaluation; factory builds a fresh scheduler per pooled
// session.
func EvaluateScheduler(target Target, opts Options, label string, factory func() (sched.Scheduler, error)) Eval {
	return evaluate(target, opts, 0, label, factory, opts.trialsPerEval())
}

// preflight builds one scheduler to vet the factory, containing panics.
func preflight(factory func() (sched.Scheduler, error)) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("factory panicked: %v", p)
		}
	}()
	s, err := factory()
	if err != nil {
		return err
	}
	if s == nil {
		return errors.New("factory returned a nil scheduler")
	}
	return nil
}

// evaluate sweeps one candidate over trials seeded executions and scores
// the objective, quarantining any degradation instead of propagating it.
func evaluate(target Target, opts Options, index int, config string,
	factory func() (sched.Scheduler, error), trials int) Eval {
	ev := Eval{Index: index, Config: config, Outcomes: map[string]int{}, Work: &obs.Hist{}}
	if err := preflight(factory); err != nil {
		ev.Quarantined = true
		ev.Reason = "bad candidate: " + err.Error()
		return ev
	}
	maxSteps := target.maxSteps()
	spec := harness.ProtocolSweep{
		Build: func() (*core.Protocol, harness.ObjectConfig) {
			proto, file := target.Build()
			s, err := factory()
			if err != nil {
				// The preflight vetted the factory once; a later failure is
				// contained per trial like any other session-build panic.
				panic(fmt.Sprintf("advsearch: candidate factory: %v", err))
			}
			return proto, harness.ObjectConfig{
				N: target.N, File: file, Scheduler: s,
				Inputs:    []value.Value{0},
				Registers: target.Registers,
				MaxSteps:  maxSteps,
			}
		},
		Inputs: target.Inputs,
	}
	report, err := harness.SweepProtocolRobust(
		harness.Sweep{Trials: trials, Workers: opts.Workers, Seed: opts.Seed},
		harness.Resilience{Deadline: opts.deadline(), Grace: 100 * time.Millisecond, Retries: 1},
		spec,
		func(t harness.Trial, run *harness.ProtocolRun, rep harness.TrialReport) {
			ev.Outcomes[string(rep.Outcome)]++
			switch rep.Outcome {
			case harness.OutcomeOK, harness.OutcomeViolated:
				if run != nil && run.Result != nil {
					ev.Work.AddInt(run.Result.TotalWork)
				}
			case harness.OutcomeCrashedShort:
				// A step-limited execution did at least maxSteps work; an
				// adversary that prevents any decision within the budget is
				// at least as costly as one that merely spends it, so it
				// counts at the cap rather than vanishing from the mean.
				w := maxSteps
				if run != nil && run.Result != nil && run.Result.TotalWork > 0 {
					w = run.Result.TotalWork
				}
				ev.Work.AddInt(w)
			}
		})
	if report != nil {
		ev.Trials = report.Trials
	}
	if err != nil {
		ev.Quarantined = true
		ev.Reason = "sweep aborted: " + err.Error()
		return ev
	}
	bad := report.Count(harness.OutcomeTimeout) +
		report.Count(harness.OutcomePanicked) +
		report.Count(harness.OutcomeFailed)
	if bad > 0 {
		ev.Quarantined = true
		ev.Reason = fmt.Sprintf("%d/%d trials degraded (%s)", bad, report.Trials, report)
		return ev
	}
	switch opts.objective() {
	case MaximizeViolations:
		ev.Score = float64(report.Violations()) / float64(report.Trials)
	default:
		if ev.Work.N() == 0 {
			ev.Quarantined = true
			ev.Reason = "no completed executions"
			return ev
		}
		ev.Score = ev.Work.Mean()
	}
	return ev
}
