package advsearch

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// testTarget is a small binary consensus cell (impatient conciliator +
// binary ratifier) with mixed inputs varying per trial.
func testTarget(n int) Target {
	return Target{
		Name:     "binary-consensus",
		N:        n,
		MaxSteps: 1 << 16,
		Build: func() (*core.Protocol, *register.File) {
			file := register.NewFile()
			proto, err := core.NewProtocol(core.Options{
				N:    n,
				File: file,
				NewRatifier: func(f *register.File, i int) core.Object {
					return ratifier.NewBinary(f, i)
				},
				NewConciliator: func(f *register.File, i int) core.Object {
					return conciliator.NewImpatient(f, n, i)
				},
				FastPath: true,
			})
			if err != nil {
				panic(err)
			}
			return proto, file
		},
		Inputs: func(t harness.Trial) []value.Value {
			in := make([]value.Value, n)
			for i := range in {
				in[i] = value.Value((i + t.Index) % 2)
			}
			return in
		},
	}
}

// TestGeneratorProducesValidConfigs: every random draw and every mutation,
// at every power class, yields a config that validates, declares exactly
// the searched class, and round-trips through the text codec.
func TestGeneratorProducesValidConfigs(t *testing.T) {
	for p := sched.Oblivious; p <= sched.Adaptive; p++ {
		g := newGenerator(xrand.New(7), p, 4)
		cfg := g.random()
		for i := 0; i < 300; i++ {
			if cfg.Power != p {
				t.Fatalf("%s draw %d: declared power %s", p, i, cfg.Power)
			}
			if _, err := sched.NewParametric(cfg); err != nil {
				t.Fatalf("%s draw %d: invalid config %q: %v", p, i, cfg.String(), err)
			}
			text := cfg.String()
			back, err := sched.ParseParametric(text)
			if err != nil {
				t.Fatalf("%s draw %d: re-parse %q: %v", p, i, text, err)
			}
			if back.String() != text {
				t.Fatalf("%s draw %d: round-trip %q != %q", p, i, back.String(), text)
			}
			if i%2 == 0 {
				cfg = g.mutate(cfg)
			} else {
				cfg = g.random()
			}
		}
	}
}

// TestMutateLeavesParentIntact: mutation must deep-copy; evolving from a
// parent repeatedly would otherwise corrupt the parent's rule slice.
func TestMutateLeavesParentIntact(t *testing.T) {
	g := newGenerator(xrand.New(3), sched.Adaptive, 4)
	parent := g.random()
	text := parent.String()
	for i := 0; i < 100; i++ {
		_ = g.mutate(parent)
	}
	if parent.String() != text {
		t.Fatalf("parent mutated in place: %q -> %q", text, parent.String())
	}
}

// TestSearchDeterministicAcrossWorkers: the report — winner config, every
// score, every outcome count — must be byte-identical at any worker count.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	target := testTarget(4)
	base := Options{
		Algo: AlgoEvolve, Power: sched.ValueOblivious,
		Budget: 48, TrialsPerEval: 8, Seed: 11,
	}
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		opts := base
		opts.Workers = workers
		rep, err := Search(target, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Winner == nil {
			t.Fatalf("workers=%d: no winner", workers)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Fatalf("reports differ across worker counts:\n%s\n%s", blobs[0], blobs[1])
	}
}

// TestSearchBudgetAndWinner: random search spends exactly
// ⌊budget/trials⌋ evaluations, never overdraws, and the winner is the
// best-scoring evaluation with a replayable config.
func TestSearchBudgetAndWinner(t *testing.T) {
	rep, err := Search(testTarget(4), Options{
		Algo: AlgoRandom, Power: sched.LocationOblivious,
		Budget: 40, TrialsPerEval: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrialsSpent != 40 || rep.Evaluations != 5 {
		t.Fatalf("spent %d trials over %d evals, want 40 over 5", rep.TrialsSpent, rep.Evaluations)
	}
	if rep.Winner == nil {
		t.Fatal("no winner")
	}
	if _, err := sched.NewParametricFromString(rep.Winner.Config); err != nil {
		t.Fatalf("winner config %q does not replay: %v", rep.Winner.Config, err)
	}
	for _, ev := range rep.Evals {
		if !ev.Quarantined && ev.Score > rep.Winner.Score {
			t.Fatalf("eval %d scores %v above winner's %v", ev.Index, ev.Score, rep.Winner.Score)
		}
	}
}

// TestSearchAlgos: each algorithm terminates within budget and produces a
// healthy winner on a benign target.
func TestSearchAlgos(t *testing.T) {
	for _, algo := range []Algo{AlgoRandom, AlgoEvolve, AlgoHalving} {
		rep, err := Search(testTarget(4), Options{
			Algo: algo, Power: sched.ValueOblivious,
			Budget: 64, TrialsPerEval: 4, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.TrialsSpent > rep.Budget {
			t.Fatalf("%s: overdrew budget (%d > %d)", algo, rep.TrialsSpent, rep.Budget)
		}
		if rep.Winner == nil || rep.Winner.Quarantined {
			t.Fatalf("%s: no healthy winner", algo)
		}
		if rep.Evaluations != len(rep.Evals) {
			t.Fatalf("%s: evaluation count mismatch", algo)
		}
	}
}

// panicSched panics on its first scheduling decision.
type panicSched struct{}

func (panicSched) Next(v *sched.View) int { panic("synthetic candidate panic") }
func (panicSched) Seed(src *xrand.Source) {}
func (panicSched) Name() string           { return "panic-sched" }
func (panicSched) MinPower() sched.Power  { return sched.Oblivious }

// stallSched never returns from Next — the livelocked candidate the
// watchdog must kill.
type stallSched struct{}

func (stallSched) Next(v *sched.View) int {
	select {}
}
func (stallSched) Seed(src *xrand.Source) {}
func (stallSched) Name() string           { return "stall-sched" }
func (stallSched) MinPower() sched.Power  { return sched.Oblivious }

// TestSearchQuarantinesDegradedCandidates: a search whose candidate stream
// includes a panicking scheduler, an unbuildable one, and a stalling one
// completes within budget with all three quarantined and a healthy winner
// from the remaining candidates.
func TestSearchQuarantinesDegradedCandidates(t *testing.T) {
	// The seam is called from worker goroutines too (one factory call per
	// pooled session), so the bookkeeping needs a lock.
	var mu sync.Mutex
	seen := map[string]int{}
	opts := Options{
		Algo: AlgoRandom, Power: sched.ValueOblivious,
		Budget: 12, TrialsPerEval: 2, Seed: 21,
		Deadline: 100 * time.Millisecond,
		NewScheduler: func(config string) (sched.Scheduler, error) {
			mu.Lock()
			defer mu.Unlock()
			if _, ok := seen[config]; !ok {
				seen[config] = len(seen)
			}
			switch seen[config] {
			case 0:
				return panicSched{}, nil
			case 1:
				return nil, errors.New("synthetic unbuildable candidate")
			case 2:
				return stallSched{}, nil
			default:
				return sched.NewParametricFromString(config)
			}
		},
	}
	rep, err := Search(testTarget(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) < 3 {
		t.Fatalf("quarantined %d candidates, want >= 3:\n%+v", len(rep.Quarantined), rep.Quarantined)
	}
	for _, q := range rep.Quarantined {
		if q.Reason == "" {
			t.Fatalf("quarantined eval %d has no reason", q.Index)
		}
	}
	if rep.Winner == nil || rep.Winner.Quarantined {
		t.Fatal("degraded candidates poisoned the winner")
	}
	if rep.TrialsSpent > rep.Budget {
		t.Fatalf("overdrew budget: %d > %d", rep.TrialsSpent, rep.Budget)
	}
}

// TestEvaluateSchedulerBaseline: fixed catalog adversaries evaluate on the
// same footing as searched candidates.
func TestEvaluateSchedulerBaseline(t *testing.T) {
	opts := Options{Power: sched.ValueOblivious, Budget: 16, TrialsPerEval: 16, Seed: 5}
	ev := EvaluateScheduler(testTarget(4), opts, "round-robin",
		func() (sched.Scheduler, error) { return sched.NewRoundRobin(), nil })
	if ev.Quarantined {
		t.Fatalf("baseline quarantined: %s", ev.Reason)
	}
	if ev.Config != "round-robin" || ev.Trials != 16 || ev.Score <= 0 {
		t.Fatalf("baseline eval off: %+v", ev)
	}
}

// TestSearchValidation: invalid inputs are errors, not quarantines.
func TestSearchValidation(t *testing.T) {
	target := testTarget(4)
	cases := []Options{
		{Power: sched.Power(99), Budget: 32},
		{Power: sched.Adaptive, Budget: 0},
		{Power: sched.Adaptive, Budget: 4, TrialsPerEval: 8},
		{Power: sched.Adaptive, Budget: 32, Algo: "annealing"},
		{Power: sched.Adaptive, Budget: 32, Objective: "latency"},
	}
	for i, opts := range cases {
		if _, err := Search(target, opts); err == nil {
			t.Errorf("case %d: no error for %+v", i, opts)
		}
	}
	if _, err := Search(Target{}, Options{Power: sched.Adaptive, Budget: 32}); err == nil ||
		!strings.Contains(err.Error(), "Build") {
		t.Errorf("target without Build: err = %v", err)
	}
}
