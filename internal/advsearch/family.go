package advsearch

import (
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// generator samples and mutates parametric adversary configs within one
// power class. Every config it produces validates (the feature pools come
// from sched.CondsFor/ActsFor at the class, and all numeric parameters stay
// inside the codec's caps) and declares exactly the class searched, so the
// runtime grants candidates no more visibility than the search promised.
//
// All randomness flows through one xrand stream owned by the single search
// goroutine — generation order, and therefore the whole search, is a pure
// function of the seed.
type generator struct {
	rng   *xrand.Source
	power sched.Power
	n     int
	conds []sched.Cond
	acts  []sched.Act
}

// Generation bounds: deliberately far inside the codec caps, keeping the
// search space compact and every candidate cheap to interpret.
const (
	genMaxRules  = 8
	genMaxWeight = 8
	genMaxStepK  = 1024
	genMaxPeriod = 16
)

func newGenerator(rng *xrand.Source, power sched.Power, n int) *generator {
	return &generator{
		rng:   rng,
		power: power,
		n:     n,
		conds: sched.CondsFor(power),
		acts:  sched.ActsFor(power),
	}
}

var genBases = []sched.BasePolicy{
	sched.BaseRoundRobin, sched.BaseLockstep, sched.BaseFrontrun,
	sched.BaseRandom, sched.BaseWeighted,
}

func (g *generator) randomBase() sched.BasePolicy {
	return genBases[g.rng.Intn(len(genBases))]
}

// randomWeights draws a short per-pid weight vector with at least one
// positive entry.
func (g *generator) randomWeights() []int {
	max := g.n
	if max > genMaxRules {
		max = genMaxRules
	}
	if max < 2 {
		max = 2
	}
	w := make([]int, 2+g.rng.Intn(max-1))
	for i := range w {
		w[i] = g.rng.Intn(genMaxWeight + 1)
	}
	w[g.rng.Intn(len(w))] = 1 + g.rng.Intn(genMaxWeight)
	return w
}

func (g *generator) randomPhase(cfg *sched.ParamConfig) {
	period := 2 + g.rng.Intn(genMaxPeriod-1) // [2, genMaxPeriod]
	cfg.PhasePeriod = period
	cfg.PhaseBurst = 1 + g.rng.Intn(period-1) // [1, period)
	focus := g.n
	if focus < 2 {
		focus = 2
	}
	cfg.PhaseFocus = 1 + g.rng.Intn(focus) // [1, n]
}

func (g *generator) randomRule() sched.ParamRule {
	r := sched.ParamRule{
		When: g.conds[g.rng.Intn(len(g.conds))],
		Do:   g.acts[g.rng.Intn(len(g.acts))],
	}
	if r.When == sched.CondStepGE || r.When == sched.CondStepLT {
		r.K = g.rng.Intn(genMaxStepK)
	}
	return r
}

// fixWeights restores the invariants weight mutations can break: a config
// using the weighted policy (as base or rule action) must carry a weight
// vector, and any vector present must have a positive entry.
func (g *generator) fixWeights(cfg *sched.ParamConfig) {
	uses := cfg.Base == sched.BaseWeighted
	for _, r := range cfg.Rules {
		if r.Do == sched.ActWeighted {
			uses = true
		}
	}
	if uses && len(cfg.Weights) == 0 {
		cfg.Weights = g.randomWeights()
		return
	}
	allZero := len(cfg.Weights) > 0
	for _, w := range cfg.Weights {
		if w > 0 {
			allZero = false
		}
	}
	if allZero {
		cfg.Weights[g.rng.Intn(len(cfg.Weights))] = 1 + g.rng.Intn(genMaxWeight)
	}
}

// random draws a fresh candidate.
func (g *generator) random() sched.ParamConfig {
	cfg := sched.ParamConfig{Power: g.power, Base: g.randomBase()}
	if cfg.Base == sched.BaseWeighted || g.rng.Intn(3) == 0 {
		cfg.Weights = g.randomWeights()
	}
	if g.rng.Intn(3) == 0 {
		g.randomPhase(&cfg)
	}
	for i, n := 0, g.rng.Intn(5); i < n; i++ {
		cfg.Rules = append(cfg.Rules, g.randomRule())
	}
	g.fixWeights(&cfg)
	return cfg
}

func cloneConfig(c sched.ParamConfig) sched.ParamConfig {
	c.Weights = append([]int(nil), c.Weights...)
	c.Rules = append([]sched.ParamRule(nil), c.Rules...)
	return c
}

// mutate applies one structural edit to a copy of cfg: a new base, a
// weight perturbation, a phase toggle, or a rule insert/delete/rewrite.
// Moves whose precondition fails (deleting from an empty rule list, …)
// fall through to the next draw; after a few misses the fallback is a rule
// insert or, at the cap, a fresh random candidate.
func (g *generator) mutate(cfg sched.ParamConfig) sched.ParamConfig {
	out := cloneConfig(cfg)
	for tries := 0; tries < 8; tries++ {
		switch g.rng.Intn(7) {
		case 0:
			out.Base = g.randomBase()
		case 1:
			if len(out.Weights) == 0 {
				out.Weights = g.randomWeights()
			} else {
				out.Weights[g.rng.Intn(len(out.Weights))] = g.rng.Intn(genMaxWeight + 1)
			}
		case 2:
			if out.PhasePeriod == 0 {
				g.randomPhase(&out)
			} else if g.rng.Bool() {
				out.PhasePeriod, out.PhaseBurst, out.PhaseFocus = 0, 0, 0
			} else {
				g.randomPhase(&out)
			}
		case 3:
			if len(out.Rules) >= genMaxRules {
				continue
			}
			at := g.rng.Intn(len(out.Rules) + 1)
			out.Rules = append(out.Rules, sched.ParamRule{})
			copy(out.Rules[at+1:], out.Rules[at:])
			out.Rules[at] = g.randomRule()
		case 4:
			if len(out.Rules) == 0 {
				continue
			}
			at := g.rng.Intn(len(out.Rules))
			out.Rules = append(out.Rules[:at], out.Rules[at+1:]...)
		case 5:
			if len(out.Rules) == 0 {
				continue
			}
			out.Rules[g.rng.Intn(len(out.Rules))] = g.randomRule()
		case 6:
			hasK := false
			for _, r := range out.Rules {
				if r.When == sched.CondStepGE || r.When == sched.CondStepLT {
					hasK = true
				}
			}
			if !hasK {
				continue
			}
			for i := range out.Rules {
				r := &out.Rules[i]
				if r.When == sched.CondStepGE || r.When == sched.CondStepLT {
					r.K = g.rng.Intn(genMaxStepK)
					break
				}
			}
		}
		g.fixWeights(&out)
		return out
	}
	if len(out.Rules) < genMaxRules {
		out.Rules = append(out.Rules, g.randomRule())
		g.fixWeights(&out)
		return out
	}
	return g.random()
}
