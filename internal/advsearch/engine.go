package advsearch

import (
	"sort"

	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// genStream separates the candidate-generation RNG stream from the trial
// seeds (both derive from Options.Seed; the trials use it raw).
const genStream = 0xad5eac4

// searcher is one in-flight search: the evaluation log, the budget ledger,
// and the candidate generator.
type searcher struct {
	target Target
	opts   Options
	gen    *generator
	evals  []Eval
	spent  int
}

// Search runs the configured algorithm until the trial budget cannot fund
// another evaluation and reports every candidate it scored. The only error
// cases are invalid inputs; degraded candidates are quarantined in the
// report instead.
func Search(target Target, opts Options) (*Report, error) {
	if err := opts.validate(target); err != nil {
		return nil, err
	}
	s := &searcher{
		target: target,
		opts:   opts,
		gen:    newGenerator(xrand.New(opts.Seed).Split(genStream), opts.Power, target.N),
	}
	var winner int
	switch opts.algo() {
	case AlgoRandom:
		winner = s.random()
	case AlgoEvolve:
		winner = s.evolve()
	default:
		winner = s.halving()
	}
	rep := &Report{
		Target:        target.Name,
		N:             target.N,
		Power:         opts.Power.String(),
		Registers:     target.Registers.String(),
		Algo:          opts.algo(),
		Objective:     opts.objective(),
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		TrialsPerEval: opts.trialsPerEval(),
		TrialsSpent:   s.spent,
		Evaluations:   len(s.evals),
		Evals:         s.evals,
	}
	for _, ev := range s.evals {
		if ev.Quarantined {
			rep.Quarantined = append(rep.Quarantined, ev)
		}
	}
	if winner >= 0 && !s.evals[winner].Quarantined {
		w := s.evals[winner]
		rep.Winner = &w
	}
	return rep, nil
}

// afford reports whether the budget funds another evaluation of t trials.
func (s *searcher) afford(t int) bool { return s.spent+t <= s.opts.Budget }

// evalCandidate scores one candidate and logs it. The evaluation charges
// its requested trials against the budget even when quarantined before
// running — otherwise a stream of unbuildable candidates would never
// terminate the search.
func (s *searcher) evalCandidate(cfg sched.ParamConfig, trials int) int {
	config := cfg.String()
	idx := len(s.evals)
	ev := evaluate(s.target, s.opts, idx, config,
		func() (sched.Scheduler, error) { return s.opts.newScheduler(config) }, trials)
	s.spent += trials
	s.evals = append(s.evals, ev)
	return idx
}

// bestOverall returns the index of the best evaluation (earliest on ties),
// or -1 if there are none.
func (s *searcher) bestOverall() int {
	best := -1
	for i := range s.evals {
		if best == -1 || better(s.evals[i], s.evals[best]) {
			best = i
		}
	}
	return best
}

// random: independent samples until the budget runs out.
func (s *searcher) random() int {
	t := s.opts.trialsPerEval()
	for s.afford(t) {
		s.evalCandidate(s.gen.random(), t)
	}
	return s.bestOverall()
}

// evolveStallRounds is how many consecutive improvement-free (1+λ) rounds
// the lineage tolerates before restarting from a fresh random parent.
// Mutation explores the neighborhood of the incumbent; when that basin is
// exhausted the remaining budget buys more from a jump than from further
// local polish.
const evolveStallRounds = 3

// evolve: (1+λ) with strict-improvement replacement and restart-on-
// stagnation. The winner is the best evaluation across every lineage, not
// the final parent. A quarantined parent (possible only for the very first
// draw of a lineage, or after an injection seam misbehaves) is replaced by
// fresh random candidates.
func (s *searcher) evolve() int {
	t := s.opts.trialsPerEval()
	if !s.afford(t) {
		return -1
	}
	parentCfg := s.gen.random()
	parent := s.evalCandidate(parentCfg, t)
	stalled := 0
	for s.afford(t) {
		if stalled >= evolveStallRounds {
			parentCfg = s.gen.random()
			parent = s.evalCandidate(parentCfg, t)
			stalled = 0
			continue
		}
		bestChild := -1
		var bestChildCfg sched.ParamConfig
		for j := 0; j < s.opts.lambda() && s.afford(t); j++ {
			var childCfg sched.ParamConfig
			if s.evals[parent].Quarantined {
				childCfg = s.gen.random()
			} else {
				childCfg = s.gen.mutate(parentCfg)
			}
			i := s.evalCandidate(childCfg, t)
			if bestChild == -1 || better(s.evals[i], s.evals[bestChild]) {
				bestChild, bestChildCfg = i, childCfg
			}
		}
		if bestChild != -1 && better(s.evals[bestChild], s.evals[parent]) {
			parent, parentCfg = bestChild, bestChildCfg
			stalled = 0
		} else {
			stalled++
		}
	}
	return s.bestOverall()
}

// halving: successive halving over a wide random pool. Rung 0 is sized to
// spend about half the budget at TrialsPerEval trials per candidate; each
// survivor rung multiplies the per-candidate trials by η and keeps the top
// ⌈1/η⌉ fraction, ranked by better (stable, so ties keep rung order).
func (s *searcher) halving() int {
	t := s.opts.trialsPerEval()
	eta := s.opts.eta()
	n0 := s.opts.Budget / (2 * t)
	if n0 < 2 {
		n0 = 2
	}
	if n0 > 64 {
		n0 = 64
	}
	pool := make([]sched.ParamConfig, n0)
	for i := range pool {
		pool[i] = s.gen.random()
	}
	var top []int // current pool's eval indices, best-first
	for len(pool) > 0 {
		afford := (s.opts.Budget - s.spent) / t
		if afford == 0 {
			break
		}
		if afford < len(pool) {
			pool = pool[:afford]
		}
		idxs := make([]int, len(pool))
		for i := range pool {
			idxs[i] = s.evalCandidate(pool[i], t)
		}
		order := make([]int, len(pool))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return better(s.evals[idxs[order[a]]], s.evals[idxs[order[b]]])
		})
		ranked := make([]sched.ParamConfig, len(pool))
		top = make([]int, len(pool))
		for i, o := range order {
			ranked[i] = pool[o]
			top[i] = idxs[o]
		}
		pool = ranked
		if len(pool) == 1 {
			break
		}
		keep := (len(pool) + eta - 1) / eta
		pool = pool[:keep]
		t *= eta
	}
	if len(top) > 0 && !s.evals[top[0]].Quarantined {
		return top[0]
	}
	return s.bestOverall()
}
