package workload

// The virtual-time service model and the saturation math on top of it.
//
// Latency and throughput here are *virtual*, not wall-clock: each trial's
// measured simulated step count, scaled by the spec's per-step duration,
// is the trial's service demand, and a FIFO multi-server queue serves the
// demands against the arrival schedule. Everything is integer-nanosecond
// arithmetic over deterministic inputs, so a saturation report is
// bit-identical at any worker or shard count — the same contract the trial
// engine keeps for aggregates, extended to time. The model is first-order
// by design (consensus instances are independently served jobs; real
// cross-instance memory contention is what the lane engine benchmarks
// measure), and EXPERIMENTS.md documents the caveat next to the curves.

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/obs"
)

// Metrics is the aggregate outcome of serving one workload in virtual
// time.
type Metrics struct {
	// Trials is the number of served operations.
	Trials int `json:"trials"`
	// Servers is the virtual server count the model ran with.
	Servers int `json:"servers"`
	// StepNs is the virtual duration of one simulated step, in ns.
	StepNs int64 `json:"stepNs"`
	// OfferedPerSec is the spec's nominal offered load (see
	// Spec.OfferedRate); 0 for closed workloads.
	OfferedPerSec float64 `json:"offeredPerSec"`
	// AchievedPerSec is the measured virtual throughput: trials divided by
	// the makespan. At low load it tracks OfferedPerSec; past saturation
	// it plateaus at the service capacity.
	AchievedPerSec float64 `json:"achievedPerSec"`
	// MakespanNs is the last completion time, in virtual ns.
	MakespanNs int64 `json:"makespanNs"`
	// LatencyUs is the per-operation latency distribution
	// (completion − arrival) in whole microseconds, an exact-merge
	// streaming histogram.
	LatencyUs *obs.Hist `json:"latencyUs"`
}

// Served is the full per-operation outcome of one service-model run.
type Served struct {
	// Arrivals holds each operation's arrival (closed: issue) time, ns.
	Arrivals []int64
	// Completions holds each operation's completion time, ns.
	Completions []int64
	// Metrics aggregates the run.
	Metrics *Metrics
}

// minHeap is a tiny int64 min-heap (server free times, client issue
// times); values are packed by the caller when a tie-break key is needed.
type minHeap []int64

func (h minHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (h minHeap) down(i int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// replaceMin overwrites the minimum with v and restores heap order.
func (h minHeap) replaceMin(v int64) {
	h[0] = v
	h.down(0)
}

// clientHeap orders a closed cohort's clients by (next issue time, id):
// the id tie-break makes the event order — and with it every assigned
// issue time — fully deterministic.
type clientHeap struct {
	t  []int64
	id []int32
}

// newClientHeap returns a heap of n clients all ready to issue at t=0.
// Ids 0..n-1 in slice order form a valid heap already.
func newClientHeap(n int) *clientHeap {
	h := &clientHeap{t: make([]int64, n), id: make([]int32, n)}
	for i := range h.id {
		h.id[i] = int32(i)
	}
	return h
}

func (h *clientHeap) less(i, j int) bool {
	return h.t[i] < h.t[j] || (h.t[i] == h.t[j] && h.id[i] < h.id[j])
}

func (h *clientHeap) swap(i, j int) {
	h.t[i], h.t[j] = h.t[j], h.t[i]
	h.id[i], h.id[j] = h.id[j], h.id[i]
}

// replaceMin re-times the minimum client to v and restores heap order.
func (h *clientHeap) replaceMin(v int64) {
	h.t[0] = v
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h.t) && h.less(l, m) {
			m = l
		}
		if r < len(h.t) && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// Serve runs the virtual-time service model: demands[i] is trial i's
// measured simulated step count, scaled to virtual time by the spec's
// per-step duration and served FIFO by the spec's virtual servers. For
// open specs arrivals must hold one non-decreasing arrival time per
// demand (from Schedule, or a recorded trace); for closed specs arrivals
// must be nil — issue times are assigned by the cohort model, each client
// keeping one operation outstanding and pausing Think between them. The
// result is a pure function of (spec, arrivals, demands).
func (s *Spec) Serve(arrivals, demands []int64) (*Served, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Open() {
		if len(arrivals) != len(demands) {
			return nil, fmt.Errorf("workload: %d arrivals for %d demands", len(arrivals), len(demands))
		}
	} else if arrivals != nil {
		return nil, fmt.Errorf("workload: closed specs assign their own issue times; arrivals must be nil")
	}
	stepNs := int64(s.step())
	for i, d := range demands {
		if d < 0 {
			return nil, fmt.Errorf("workload: demand %d is negative (%d steps)", i, d)
		}
	}

	n := len(demands)
	served := &Served{
		Arrivals:    make([]int64, n),
		Completions: make([]int64, n),
	}
	servers := make(minHeap, s.servers())

	if s.Open() {
		prev := int64(0)
		for i, at := range arrivals {
			if at < prev {
				return nil, fmt.Errorf("workload: arrivals not sorted at index %d", i)
			}
			prev = at
			start := at
			if free := servers[0]; free > start {
				start = free
			}
			done := start + demands[i]*stepNs
			servers.replaceMin(done)
			served.Arrivals[i] = at
			served.Completions[i] = done
		}
	} else {
		// Cohort model: clients issue in (nextIssue, clientID) order —
		// the id breaks ties so the event order is fully deterministic —
		// and each completed operation schedules the client's next issue
		// Think later.
		think := int64(s.Think)
		clients := newClientHeap(s.Clients)
		for i := 0; i < n; i++ {
			issue := clients.t[0]
			start := issue
			if free := servers[0]; free > start {
				start = free
			}
			done := start + demands[i]*stepNs
			servers.replaceMin(done)
			clients.replaceMin(done + think)
			served.Arrivals[i] = issue
			served.Completions[i] = done
		}
	}

	m := &Metrics{
		Trials:        n,
		Servers:       s.servers(),
		StepNs:        stepNs,
		OfferedPerSec: s.OfferedRate(),
		LatencyUs:     &obs.Hist{},
	}
	for i := 0; i < n; i++ {
		if c := served.Completions[i]; c > m.MakespanNs {
			m.MakespanNs = c
		}
		m.LatencyUs.Add((served.Completions[i] - served.Arrivals[i]) / 1000)
	}
	if m.MakespanNs > 0 {
		m.AchievedPerSec = float64(n) * 1e9 / float64(m.MakespanNs)
	}
	served.Metrics = m
	return served, nil
}

// DefaultKneeFraction is the efficiency threshold Knee uses when callers
// pass 0: a load point still served at ≥ 95% of its offered rate is
// considered below the knee.
const DefaultKneeFraction = 0.95

// Knee locates the saturation knee on an offered-load ladder: the index
// of the highest offered rate whose achieved throughput is at least
// frac × offered (frac = 0 means DefaultKneeFraction), or -1 when even
// the lowest point is saturated. The ladder must be sorted by offered
// rate; points are typically Metrics.OfferedPerSec/AchievedPerSec pairs
// from one Serve call per rate.
func Knee(offered, achieved []float64, frac float64) int {
	if frac <= 0 {
		frac = DefaultKneeFraction
	}
	knee := -1
	for i := range offered {
		if i < len(achieved) && offered[i] > 0 && achieved[i] >= frac*offered[i] {
			knee = i
		}
	}
	return knee
}
