package workload

// tracev1 — the versioned trace format recording an executed workload.
//
// A trace is the workload plane's portable artifact: the spec (canonical
// text), the root seed, the trial span, and one entry per trial with its
// arrival time and measured service demand. Every field is derivable from
// (spec, seed, trials) plus the deterministic executions themselves, which
// is what makes replay *verifiable*: re-running the trace recomputes each
// demand and any divergence — a changed binary, a different register
// model, a broken determinism contract — is a hard error, not a silently
// different report.
//
// The encoding is line-oriented text:
//
//	tracev1 spec=poisson:rate=500 seed=7 trials=64 lo=0 hi=64
//	0 0 381
//	1 1729384 402
//	...
//
// one "index arrivalNs steps" line per trial. Shard slices carry lo/hi
// sub-ranges of the same header; Merge demands an exact tiling of
// [0, trials) over identical headers, so sharded recordings concatenate
// into byte-for-byte the artifact an unsharded run writes.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TraceVersion is the format tag Encode writes and Decode requires.
const TraceVersion = "tracev1"

// maxTraceEntries caps how many entries Decode will read, so a corrupt or
// hostile header cannot make it allocate unboundedly.
const maxTraceEntries = 1 << 26

// Entry records one executed trial of a workload.
type Entry struct {
	// Index is the trial's global index in [0, Trace.Trials).
	Index int
	// ArrivalNs is the trial's arrival (closed: issue) time in virtual ns.
	ArrivalNs int64
	// Steps is the trial's measured service demand in simulated steps.
	Steps int64
}

// Trace is a recorded workload execution (or a shard's slice of one).
type Trace struct {
	// Spec is the workload spec in canonical text form.
	Spec string
	// Seed is the root seed the run derived trial seeds and arrivals from.
	Seed uint64
	// Trials is the full seed-space size the recording covers (all shards
	// of one run share it).
	Trials int
	// Lo and Hi bound this trace's contiguous entry span [Lo, Hi); a full
	// trace has Lo = 0, Hi = Trials.
	Lo, Hi int
	// Entries holds one record per trial, indices Lo..Hi-1 in order.
	Entries []Entry
}

// Complete reports whether the trace covers its full trial span.
func (t *Trace) Complete() bool { return t.Lo == 0 && t.Hi == t.Trials }

// ParseSpec parses the trace's embedded workload spec.
func (t *Trace) ParseSpec() (*Spec, error) {
	s, err := Parse(t.Spec)
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("workload: trace has an empty spec")
	}
	return s, nil
}

// validate checks the trace's internal consistency: span bounds, entry
// count, consecutive indices, sorted arrivals, non-negative demands, and
// a parseable spec (which must also survive a canonical round trip, so a
// trace never smuggles a non-canonical form into merged artifacts).
func (t *Trace) validate() error {
	spec, err := t.ParseSpec()
	if err != nil {
		return err
	}
	if spec.String() != t.Spec {
		return fmt.Errorf("workload: trace spec %q is not canonical (want %q)", t.Spec, spec.String())
	}
	if t.Trials < 0 || t.Lo < 0 || t.Hi < t.Lo || t.Hi > t.Trials {
		return fmt.Errorf("workload: trace span [%d,%d) of %d trials is invalid", t.Lo, t.Hi, t.Trials)
	}
	if len(t.Entries) != t.Hi-t.Lo {
		return fmt.Errorf("workload: trace has %d entries for span [%d,%d)", len(t.Entries), t.Lo, t.Hi)
	}
	prev := int64(-1)
	for k, e := range t.Entries {
		if e.Index != t.Lo+k {
			return fmt.Errorf("workload: trace entry %d has index %d, want %d", k, e.Index, t.Lo+k)
		}
		if e.ArrivalNs < 0 || e.ArrivalNs < prev {
			return fmt.Errorf("workload: trace arrivals not sorted at index %d", e.Index)
		}
		prev = e.ArrivalNs
		if e.Steps < 0 {
			return fmt.Errorf("workload: trace entry %d has negative demand", e.Index)
		}
	}
	return nil
}

// Record assembles a trace from one executed slice [lo, hi) of a run:
// arrivals[k] and demands[k] describe global trial lo+k. The trace is
// validated before it is returned.
func Record(spec *Spec, seed uint64, trials, lo, hi int, arrivals, demands []int64) (*Trace, error) {
	if spec == nil {
		return nil, fmt.Errorf("workload: nil spec")
	}
	if len(arrivals) != hi-lo || len(demands) != hi-lo {
		return nil, fmt.Errorf("workload: %d arrivals and %d demands for span [%d,%d)", len(arrivals), len(demands), lo, hi)
	}
	t := &Trace{Spec: spec.String(), Seed: seed, Trials: trials, Lo: lo, Hi: hi,
		Entries: make([]Entry, hi-lo)}
	for k := range t.Entries {
		t.Entries[k] = Entry{Index: lo + k, ArrivalNs: arrivals[k], Steps: demands[k]}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Encode writes the trace in the tracev1 text format. Two equal traces
// encode to identical bytes, which is what the CI record-vs-replay and
// shard-merge gates compare with cmp.
func (t *Trace) Encode(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	if strings.ContainsAny(t.Spec, " \t\n") {
		return fmt.Errorf("workload: spec %q contains whitespace and cannot be encoded", t.Spec)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s spec=%s seed=%d trials=%d lo=%d hi=%d\n",
		TraceVersion, t.Spec, t.Seed, t.Trials, t.Lo, t.Hi)
	for _, e := range t.Entries {
		fmt.Fprintf(bw, "%d %d %d\n", e.Index, e.ArrivalNs, e.Steps)
	}
	return bw.Flush()
}

// Decode reads one tracev1 trace and validates it.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) == 0 || fields[0] != TraceVersion {
		return nil, fmt.Errorf("workload: not a %s trace (header %q)", TraceVersion, strings.TrimSpace(header))
	}
	t := &Trace{Lo: -1, Hi: -1, Trials: -1}
	seen := map[string]bool{}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("workload: trace header field %q is not key=value", f)
		}
		if seen[key] {
			return nil, fmt.Errorf("workload: trace header repeats %q", key)
		}
		seen[key] = true
		switch key {
		case "spec":
			t.Spec = val
		case "seed":
			if t.Seed, err = strconv.ParseUint(val, 10, 64); err != nil {
				return nil, fmt.Errorf("workload: trace seed %q: %v", val, err)
			}
		case "trials":
			if t.Trials, err = strconv.Atoi(val); err != nil {
				return nil, fmt.Errorf("workload: trace trials %q: %v", val, err)
			}
		case "lo":
			if t.Lo, err = strconv.Atoi(val); err != nil {
				return nil, fmt.Errorf("workload: trace lo %q: %v", val, err)
			}
		case "hi":
			if t.Hi, err = strconv.Atoi(val); err != nil {
				return nil, fmt.Errorf("workload: trace hi %q: %v", val, err)
			}
		default:
			return nil, fmt.Errorf("workload: trace header has unknown field %q", key)
		}
	}
	for _, key := range []string{"spec", "seed", "trials", "lo", "hi"} {
		if !seen[key] {
			return nil, fmt.Errorf("workload: trace header missing %q", key)
		}
	}
	if t.Hi < t.Lo || t.Hi-t.Lo > maxTraceEntries {
		return nil, fmt.Errorf("workload: trace span [%d,%d) is invalid or too large", t.Lo, t.Hi)
	}
	t.Entries = make([]Entry, 0, t.Hi-t.Lo)
	for {
		line, err := br.ReadString('\n')
		if line == "" && err == io.EOF {
			break
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("workload: trace entries: %w", err)
		}
		fs := strings.Fields(line)
		if len(fs) != 3 {
			return nil, fmt.Errorf("workload: trace entry %q: want \"index arrivalNs steps\"", strings.TrimSpace(line))
		}
		var e Entry
		if e.Index, err = strconv.Atoi(fs[0]); err != nil {
			return nil, fmt.Errorf("workload: trace entry index %q: %v", fs[0], err)
		}
		if e.ArrivalNs, err = strconv.ParseInt(fs[1], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: trace entry arrival %q: %v", fs[1], err)
		}
		if e.Steps, err = strconv.ParseInt(fs[2], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: trace entry steps %q: %v", fs[2], err)
		}
		t.Entries = append(t.Entries, e)
		if len(t.Entries) > t.Hi-t.Lo {
			break // validate reports the count mismatch with a precise error
		}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Merge folds shard slices of one recording into the full trace. It
// demands identical headers (spec, seed, trials) and a complete,
// non-overlapping tiling of [0, trials); input order is irrelevant —
// slices are sorted by span, exactly like the shard-artifact merge in
// cmd/modcon-bench. The merged trace encodes byte-for-byte as the trace
// an unsharded recording writes.
func Merge(parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("workload: no traces to merge")
	}
	sorted := append([]*Trace(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	first := sorted[0]
	out := &Trace{Spec: first.Spec, Seed: first.Seed, Trials: first.Trials,
		Lo: 0, Hi: first.Trials, Entries: make([]Entry, 0, first.Trials)}
	at := 0
	for _, p := range sorted {
		if err := p.validate(); err != nil {
			return nil, err
		}
		if p.Spec != first.Spec || p.Seed != first.Seed || p.Trials != first.Trials {
			return nil, fmt.Errorf("workload: trace slice [%d,%d) is from a different run (spec/seed/trials mismatch)", p.Lo, p.Hi)
		}
		if p.Lo != at {
			return nil, fmt.Errorf("workload: trace slices do not tile: want a slice starting at %d, got [%d,%d)", at, p.Lo, p.Hi)
		}
		at = p.Hi
		out.Entries = append(out.Entries, p.Entries...)
	}
	if at != first.Trials {
		return nil, fmt.Errorf("workload: trace slices cover [0,%d) of %d trials", at, first.Trials)
	}
	if err := out.validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Demands returns the recorded per-trial service demands, in steps, for
// the trace's span.
func (t *Trace) Demands() []int64 {
	out := make([]int64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.Steps
	}
	return out
}

// Arrivals returns the recorded per-trial arrival times, in virtual ns,
// for the trace's span.
func (t *Trace) Arrivals() []int64 {
	out := make([]int64, len(t.Entries))
	for i, e := range t.Entries {
		out[i] = e.ArrivalNs
	}
	return out
}

// Serve re-runs the virtual-time service model over the recorded
// workload and returns its metrics — the saturation numbers an artifact
// consumer derives from the trace alone, with no re-execution. The trace
// must be complete (Lo = 0, Hi = Trials). Open-kind traces serve their
// recorded arrivals; closed-kind traces re-run the cohort model from the
// recorded demands and verify the reassigned issue times match the
// recording.
func (t *Trace) Serve() (*Served, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	if !t.Complete() {
		return nil, fmt.Errorf("workload: cannot serve partial trace [%d,%d) of %d trials (merge the slices first)", t.Lo, t.Hi, t.Trials)
	}
	spec, err := t.ParseSpec()
	if err != nil {
		return nil, err
	}
	var arrivals []int64
	if spec.Open() {
		arrivals = t.Arrivals()
	}
	served, err := spec.Serve(arrivals, t.Demands())
	if err != nil {
		return nil, err
	}
	if !spec.Open() {
		for i, e := range t.Entries {
			if served.Arrivals[i] != e.ArrivalNs {
				return nil, fmt.Errorf("workload: trace issue time diverged at trial %d: recorded %d, model assigns %d", e.Index, e.ArrivalNs, served.Arrivals[i])
			}
		}
	}
	return served, nil
}

// Verify checks a replay against the recording: demands[k] is the
// re-executed service demand of global trial lo+k for the trace's own
// span. Any divergence is reported with the first differing trial — the
// teeth of the bit-identical-replay contract.
func (t *Trace) Verify(demands []int64) error {
	if len(demands) != len(t.Entries) {
		return fmt.Errorf("workload: replay produced %d demands for %d recorded trials", len(demands), len(t.Entries))
	}
	for k, e := range t.Entries {
		if demands[k] != e.Steps {
			return fmt.Errorf("workload: replay diverged at trial %d: recorded %d steps, re-executed %d", e.Index, e.Steps, demands[k])
		}
	}
	return nil
}
