package workload

// Arrival-schedule generation. A schedule is a pure function of
// (spec, seed, n): one xrand stream, split off the root seed with this
// package's reserved stream index, is consumed sequentially, so every
// caller — one process, sixteen workers, four shard subprocesses — derives
// the identical byte sequence and therefore the identical arrival times.
// Shards slice the full schedule rather than generating their own.

import (
	"math"

	"github.com/modular-consensus/modcon/internal/xrand"
)

// arrivalStream is the reserved xrand split index for arrival generation.
// The repo partitions the seed's stream space by subsystem — faults use
// 2_000_000+pid, register semantics 3_000_000(+pid) — and the workload
// plane claims 4_000_000, so attaching a workload never perturbs any coin
// or scheduler stream.
const arrivalStream = 4_000_000

// Schedule returns the first n arrival times of the spec's arrival
// process, in nanoseconds from the start of the run, non-decreasing. The
// schedule is a pure function of (spec, seed, n): generating 10_000
// arrivals and slicing [lo, hi) yields exactly what any other caller
// computes for those indices, which is how sharded runs stay
// byte-identical. Closed specs return (nil, nil): their issue times are
// assigned by the service model from completions, not drawn up front.
// Invalid specs return an error.
func (s *Spec) Schedule(seed uint64, n int) ([]int64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Kind == Closed {
		return nil, nil
	}
	if n <= 0 {
		return []int64{}, nil
	}
	out := make([]int64, n)
	switch s.Kind {
	case Steady:
		// Deterministic spacing, consuming no randomness: arrival i at
		// i/Rate seconds, computed per-index (not accumulated) so slices
		// of long schedules carry no rounding drift.
		for i := range out {
			out[i] = int64(float64(i) * 1e9 / s.Rate)
		}
	case Poisson:
		rng := xrand.New(seed).Split(arrivalStream)
		var t int64
		for i := range out {
			t += expGap(rng, s.Rate)
			out[i] = t
		}
	case Burst:
		s.burstSchedule(xrand.New(seed).Split(arrivalStream), out)
	case Periods:
		s.periodsSchedule(xrand.New(seed).Split(arrivalStream), out)
	}
	return out, nil
}

// expGap draws one exponential inter-arrival gap at rate arrivals/sec,
// in nanoseconds. Float64 returns u in [0, 1), so 1-u is in (0, 1] and
// the log is finite; the gap is computed in two statements so no
// architecture can contract the arithmetic differently.
func expGap(rng *xrand.Source, rate float64) int64 {
	g := -math.Log(1-rng.Float64()) / rate
	return int64(g * 1e9)
}

// burstSchedule fills out with on/off-modulated Poisson arrivals. The
// process is Poisson at s.Rate inside each on phase and silent otherwise;
// when a drawn arrival lands past the current on phase's end, time jumps
// to the next on phase and the gap is redrawn — exact by memorylessness
// (the residual exponential restarts for free).
func (s *Spec) burstSchedule(rng *xrand.Source, out []int64) {
	cycle := int64(s.On) + int64(s.Off)
	onStart, onEnd := int64(0), int64(s.On)
	t := int64(0)
	for i := range out {
		for {
			cand := t + expGap(rng, s.Rate)
			if cand < onEnd {
				t = cand
				out[i] = t
				break
			}
			onStart += cycle
			onEnd = onStart + int64(s.On)
			t = onStart
		}
	}
}

// periodsSchedule fills out with cycling piecewise-constant-rate Poisson
// arrivals: period p runs at its rate for its span, then the next begins
// (wrapping). Zero-rate periods pass silently; boundary crossings redraw
// the gap at the new period's rate, exact by memorylessness.
func (s *Spec) periodsSchedule(rng *xrand.Source, out []int64) {
	p := 0
	segStart := int64(0)
	segEnd := int64(s.Periods[0].Span)
	t := int64(0)
	advance := func() {
		p = (p + 1) % len(s.Periods)
		segStart = segEnd
		segEnd = segStart + int64(s.Periods[p].Span)
		t = segStart
	}
	for i := range out {
		for {
			if s.Periods[p].Rate == 0 {
				advance()
				continue
			}
			cand := t + expGap(rng, s.Periods[p].Rate)
			if cand < segEnd {
				t = cand
				out[i] = t
				break
			}
			advance()
		}
	}
}
