package workload

import (
	"reflect"
	"testing"
)

// TestServeSingleServerFIFO hand-computes a tiny open-loop run: one
// server, 1µs steps, queueing pushing latency up as arrivals outpace
// service.
func TestServeSingleServerFIFO(t *testing.T) {
	s := mustParse(t, "poisson:rate=1000") // arrival process irrelevant here
	arrivals := []int64{0, 1000, 2000, 10_000}
	demands := []int64{3, 3, 3, 1} // 3µs, 3µs, 3µs, 1µs of service

	served, err := s.Serve(arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	// t=0: starts 0, done 3000. t=1000: queued to 3000, done 6000.
	// t=2000: queued to 6000, done 9000. t=10000: idle, done 11000.
	want := []int64{3000, 6000, 9000, 11_000}
	if !reflect.DeepEqual(served.Completions, want) {
		t.Fatalf("completions %v, want %v", served.Completions, want)
	}
	if served.Metrics.MakespanNs != 11_000 {
		t.Fatalf("makespan %d", served.Metrics.MakespanNs)
	}
	// Latencies µs: 3, 5, 7, 1.
	if got := served.Metrics.LatencyUs.Max(); got != 7 {
		t.Fatalf("max latency %dµs, want 7", got)
	}
	if got := served.Metrics.LatencyUs.Sum(); got != 3+5+7+1 {
		t.Fatalf("latency sum %dµs, want 16", got)
	}
}

// TestServeMultiServer: a second server removes the queueing entirely for
// the same input.
func TestServeMultiServer(t *testing.T) {
	s := mustParse(t, "poisson:rate=1000;serve:servers=2")
	arrivals := []int64{0, 1000, 2000}
	demands := []int64{3, 3, 3}
	served, err := s.Serve(arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Server A: 0→3000; server B: 1000→4000; A again: max(2000,3000)→6000.
	want := []int64{3000, 4000, 6000}
	if !reflect.DeepEqual(served.Completions, want) {
		t.Fatalf("completions %v, want %v", served.Completions, want)
	}
}

// TestServeClosedCohort hand-computes the cohort model: two clients, one
// server, think time between operations.
func TestServeClosedCohort(t *testing.T) {
	s := mustParse(t, "closed:clients=2,think=1µs")
	demands := []int64{2, 2, 2, 2} // 2µs service each
	served, err := s.Serve(nil, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Both clients issue at 0; client 0 wins the tie.
	// op0: c0 issues 0, starts 0, done 2000; next issue 3000.
	// op1: c1 issued 0, starts 2000 (server busy), done 4000; next 5000.
	// op2: c0 issues 3000, starts 4000, done 6000.
	// op3: c1 issues 5000, starts 6000, done 8000.
	wantIssue := []int64{0, 0, 3000, 5000}
	wantDone := []int64{2000, 4000, 6000, 8000}
	if !reflect.DeepEqual(served.Arrivals, wantIssue) {
		t.Fatalf("issue times %v, want %v", served.Arrivals, wantIssue)
	}
	if !reflect.DeepEqual(served.Completions, wantDone) {
		t.Fatalf("completions %v, want %v", served.Completions, wantDone)
	}
	if served.Metrics.OfferedPerSec != 0 {
		t.Fatalf("closed offered rate %v, want 0", served.Metrics.OfferedPerSec)
	}
}

// TestServeDeterminism: serving the same inputs twice gives identical
// structures, including the histogram state.
func TestServeDeterminism(t *testing.T) {
	s := mustParse(t, "burst:rate=200000,on=1ms,off=1ms;serve:servers=3")
	arrivals, err := s.Schedule(5, 400)
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]int64, 400)
	for i := range demands {
		demands[i] = int64(100 + i%57)
	}
	a, err := s.Serve(arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Serve(arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Serve is not deterministic")
	}
}

// TestServeRejects pins the input validation.
func TestServeRejects(t *testing.T) {
	open := mustParse(t, "poisson:rate=1")
	if _, err := open.Serve([]int64{0}, []int64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := open.Serve([]int64{5, 3}, []int64{1, 1}); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
	if _, err := open.Serve([]int64{0}, []int64{-1}); err == nil {
		t.Fatal("negative demand accepted")
	}
	closed := mustParse(t, "closed:clients=1,think=0s")
	if _, err := closed.Serve([]int64{0}, []int64{1}); err == nil {
		t.Fatal("closed spec accepted explicit arrivals")
	}
}

// TestServeSaturation: pushing offered load past capacity plateaus the
// achieved rate at the service capacity and blows up the latency tail —
// the shape the knee detector keys on.
func TestServeSaturation(t *testing.T) {
	demands := make([]int64, 2000)
	for i := range demands {
		demands[i] = 500 // 500µs service → capacity 2000/sec on one server
	}
	var offered, achieved []float64
	var p99 []int64
	for _, rate := range []float64{500, 1000, 1500, 4000, 8000} {
		s := &Spec{Kind: Poisson, Rate: rate}
		arrivals, err := s.Schedule(13, len(demands))
		if err != nil {
			t.Fatal(err)
		}
		served, err := s.Serve(arrivals, demands)
		if err != nil {
			t.Fatal(err)
		}
		offered = append(offered, served.Metrics.OfferedPerSec)
		achieved = append(achieved, served.Metrics.AchievedPerSec)
		p99 = append(p99, served.Metrics.LatencyUs.P99())
	}
	knee := Knee(offered, achieved, 0)
	// 500, 1000, 1500/sec are under the 2000/sec capacity; 4000+ saturate.
	if knee != 2 {
		t.Fatalf("knee at index %d (offered %v, achieved %v), want 2", knee, offered, achieved)
	}
	if p99[4] <= p99[0] {
		t.Fatalf("latency tail did not grow past saturation: p99 %v", p99)
	}
	if achieved[4] > 2100 {
		t.Fatalf("achieved %v/sec exceeds the 2000/sec capacity", achieved[4])
	}
}

// TestKneeEdgeCases: empty ladders and fully saturated ladders.
func TestKneeEdgeCases(t *testing.T) {
	if got := Knee(nil, nil, 0); got != -1 {
		t.Fatalf("empty ladder knee %d", got)
	}
	if got := Knee([]float64{100, 200}, []float64{10, 10}, 0.95); got != -1 {
		t.Fatalf("saturated ladder knee %d, want -1", got)
	}
	if got := Knee([]float64{100, 200}, []float64{100, 199}, 0.95); got != 1 {
		t.Fatalf("healthy ladder knee %d, want 1", got)
	}
}
