package workload

// Text and JSON codec for Spec, following the fault.Plan grammar pattern:
// ';'-joined segments of kind:key=value pairs, duplicate keys rejected,
// canonical String/Parse round trip pinned by FuzzParseSpec. The JSON form
// is the same canonical text embedded as a JSON string, so every transport
// carries one unambiguous representation.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// formatRate renders an arrival rate in the shortest form that parses back
// to the identical float64, so String/Parse round trips are exact.
func formatRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

// String renders the spec in the Parse grammar: the arrival segment,
// followed by a serve segment iff Servers or Step was set explicitly.
// Parse(s.String()) reproduces the spec exactly (the fuzz target pins the
// round trip). A nil spec renders as "".
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	switch s.Kind {
	case Poisson, Steady:
		fmt.Fprintf(&b, "%s:rate=%s", s.Kind, formatRate(s.Rate))
	case Burst:
		fmt.Fprintf(&b, "burst:rate=%s,on=%s,off=%s", formatRate(s.Rate), s.On, s.Off)
	case Periods:
		parts := make([]string, len(s.Periods))
		for i, p := range s.Periods {
			parts[i] = fmt.Sprintf("%sx%s", formatRate(p.Rate), p.Span)
		}
		fmt.Fprintf(&b, "periods:pattern=%s", strings.Join(parts, "/"))
	case Closed:
		fmt.Fprintf(&b, "closed:clients=%d,think=%s", s.Clients, s.Think)
	default:
		fmt.Fprintf(&b, "%s:", s.Kind)
	}
	if s.Servers != 0 || s.Step != 0 {
		b.WriteString(";serve:")
		sep := ""
		if s.Servers != 0 {
			fmt.Fprintf(&b, "servers=%d", s.Servers)
			sep = ","
		}
		if s.Step != 0 {
			fmt.Fprintf(&b, "%sstep=%s", sep, s.Step)
		}
	}
	return b.String()
}

// Parse reads a spec from its textual form:
//
//	segment[;segment]
//	segment  = kind ":" key=value[,key=value...]
//	kind     = poisson | burst | steady | periods | closed | serve
//
//	poisson:rate=500                    Poisson arrivals, 500/sec
//	burst:rate=800,on=50ms,off=150ms    on/off-modulated Poisson
//	steady:rate=250                     deterministic even spacing
//	periods:pattern=500x100ms/50x400ms  cycling piecewise-constant Poisson
//	closed:clients=16,think=2ms         closed cohort with think time
//	serve:servers=4,step=1µs            service-model knobs (optional)
//
// Exactly one arrival segment is required; the serve segment is optional
// and may appear at most once. Rates accept any strconv.ParseFloat form;
// durations any time.ParseDuration form. The empty string parses to a nil
// spec (no workload), mirroring fault.Parse.
func Parse(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var (
		spec     Spec
		haveKind bool
		haveSrv  bool
	)
	for _, seg := range strings.Split(text, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		kindStr, params, ok := strings.Cut(seg, ":")
		if !ok {
			return nil, fmt.Errorf("workload: segment %q: missing ':' (want kind:key=value,...)", seg)
		}
		kindStr = strings.TrimSpace(kindStr)
		if kindStr == "serve" {
			if haveSrv {
				return nil, fmt.Errorf("workload: duplicate serve segment")
			}
			haveSrv = true
			if err := spec.parseServe(seg, params); err != nil {
				return nil, err
			}
			continue
		}
		if haveKind {
			return nil, fmt.Errorf("workload: segment %q: spec already has a %s arrival segment", seg, spec.Kind)
		}
		haveKind = true
		switch kindStr {
		case "poisson":
			spec.Kind = Poisson
		case "burst":
			spec.Kind = Burst
		case "steady":
			spec.Kind = Steady
		case "periods":
			spec.Kind = Periods
		case "closed":
			spec.Kind = Closed
		default:
			return nil, fmt.Errorf("workload: segment %q: unknown kind %q", seg, kindStr)
		}
		if err := spec.parseArrival(seg, params); err != nil {
			return nil, err
		}
	}
	if !haveKind {
		return nil, fmt.Errorf("workload: spec %q has no arrival segment", text)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// splitParams walks one segment's key=value list, rejecting duplicates and
// malformed pairs, and hands each pair to set.
func splitParams(seg, params string, set func(key, val string) error) error {
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("workload: segment %q: parameter %q is not key=value", seg, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return fmt.Errorf("workload: segment %q: duplicate key %q", seg, key)
		}
		seen[key] = true
		if err := set(key, val); err != nil {
			return fmt.Errorf("workload: segment %q: %w", seg, err)
		}
	}
	return nil
}

// parseArrival applies one arrival segment's parameters to the spec.
func (s *Spec) parseArrival(seg, params string) error {
	return splitParams(seg, params, func(key, val string) error {
		switch {
		case key == "rate" && (s.Kind == Poisson || s.Kind == Burst || s.Kind == Steady):
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("rate=%q: %v", val, err)
			}
			s.Rate = r
		case key == "on" && s.Kind == Burst:
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("on=%q: %v", val, err)
			}
			s.On = d
		case key == "off" && s.Kind == Burst:
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("off=%q: %v", val, err)
			}
			s.Off = d
		case key == "pattern" && s.Kind == Periods:
			for _, item := range strings.Split(val, "/") {
				rateStr, spanStr, ok := strings.Cut(item, "x")
				if !ok {
					return fmt.Errorf("pattern item %q is not RATExSPAN", item)
				}
				r, err := strconv.ParseFloat(rateStr, 64)
				if err != nil {
					return fmt.Errorf("pattern item %q: %v", item, err)
				}
				d, err := time.ParseDuration(spanStr)
				if err != nil {
					return fmt.Errorf("pattern item %q: %v", item, err)
				}
				s.Periods = append(s.Periods, Period{Rate: r, Span: d})
			}
		case key == "clients" && s.Kind == Closed:
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("clients=%q: want an integer", val)
			}
			s.Clients = n
		case key == "think" && s.Kind == Closed:
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("think=%q: %v", val, err)
			}
			s.Think = d
		default:
			return fmt.Errorf("key %q not valid for %s", key, s.Kind)
		}
		return nil
	})
}

// parseServe applies the optional serve segment's parameters to the spec.
func (s *Spec) parseServe(seg, params string) error {
	return splitParams(seg, params, func(key, val string) error {
		switch key {
		case "servers":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("servers=%q: want an integer", val)
			}
			s.Servers = n
		case "step":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("step=%q: %v", val, err)
			}
			s.Step = d
		default:
			return fmt.Errorf("unknown key %q", key)
		}
		return nil
	})
}

// MarshalJSON encodes the spec as its canonical text form in a JSON
// string, so JSON artifacts and the text grammar carry one representation.
func (s *Spec) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a spec from its canonical-text JSON string.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var text string
	if err := json.Unmarshal(data, &text); err != nil {
		return err
	}
	p, err := Parse(text)
	if err != nil {
		return err
	}
	if p == nil {
		return fmt.Errorf("workload: empty spec in JSON")
	}
	*s = *p
	return nil
}
