package workload

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestParseRoundTrip pins the canonical text codec: every spec in the
// table parses, re-renders to the expected canonical form, and survives
// Parse∘String exactly.
func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"poisson:rate=500", "poisson:rate=500"},
		{"poisson:rate=500.0", "poisson:rate=500"},
		{" poisson : rate = 2.5 ", "poisson:rate=2.5"},
		{"steady:rate=250", "steady:rate=250"},
		{"burst:rate=800,on=50ms,off=150ms", "burst:rate=800,on=50ms,off=150ms"},
		{"burst:on=1s,off=2s,rate=1", "burst:rate=1,on=1s,off=2s"},
		{"periods:pattern=500x100ms/50x400ms", "periods:pattern=500x100ms/50x400ms"},
		{"periods:pattern=0x1s/10x1s", "periods:pattern=0x1s/10x1s"},
		{"closed:clients=16,think=2ms", "closed:clients=16,think=2ms"},
		{"closed:clients=1,think=0s", "closed:clients=1,think=0s"},
		{"poisson:rate=2000;serve:servers=4", "poisson:rate=2000;serve:servers=4"},
		{"serve:step=500ns;poisson:rate=1", "poisson:rate=1;serve:step=500ns"},
		{"closed:clients=8,think=1ms;serve:servers=2,step=2µs", "closed:clients=8,think=1ms;serve:servers=2,step=2µs"},
		{"poisson:rate=1e6", "poisson:rate=1e+06"},
	}
	for _, c := range cases {
		spec, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := spec.String(); got != c.canonical {
			t.Fatalf("Parse(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if again.String() != c.canonical {
			t.Fatalf("round trip not canonical: %q -> %q", c.canonical, again.String())
		}
	}
}

// TestParseRejects pins the validator and grammar errors.
func TestParseRejects(t *testing.T) {
	cases := []string{
		"poisson",                      // no params
		"poisson:rate=0",               // zero rate
		"poisson:rate=-1",              // negative rate
		"poisson:rate=NaN",             // non-finite
		"poisson:rate=2e9",             // over the cap
		"poisson:rate=1,rate=2",        // duplicate key
		"poisson:rate=1;steady:rate=2", // two arrival segments
		"poisson:rate=1;serve:servers=1;serve:servers=2", // duplicate serve
		"burst:rate=1,on=1s",                             // missing off
		"burst:rate=1,on=0s,off=1s",                      // zero phase
		"burst:rate=1,on=2h,off=1s",                      // span over cap
		"periods:pattern=",                               // empty pattern
		"periods:pattern=0x1s",                           // no positive rate
		"periods:pattern=1z1s",                           // malformed item
		"closed:clients=0,think=1ms",                     // no clients
		"closed:clients=2000000,think=0",                 // over the client cap
		"closed:think=1ms",                               // missing clients... accepted? no: clients=0 invalid
		"steady:rate=1,on=1s",                            // key from another kind
		"serve:servers=1",                                // serve without an arrival segment
		"poisson:rate=1;serve:servers=-1",
		"poisson:rate=1;serve:servers=5000",
		"poisson:rate=1;serve:step=2s",
		"poisson:rate=1;serve:lanes=2", // unknown serve key
		"warble:rate=1",                // unknown kind
		"poisson rate=1",               // missing colon
		"poisson:rate",                 // not key=value
	}
	for _, in := range cases {
		if spec, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) accepted invalid spec %+v", in, spec)
		}
	}
}

// TestParseEmpty pins the fault.Parse-style nil contract for "".
func TestParseEmpty(t *testing.T) {
	for _, in := range []string{"", "   ", ";;"} {
		spec, err := Parse(in)
		if in == ";;" {
			// all-empty segments still mean "no arrival segment": an error,
			// not a silent nil, because ";;" is not the documented empty form
			if err == nil {
				t.Fatalf("Parse(%q) = %v, want error", in, spec)
			}
			continue
		}
		if err != nil || spec != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", in, spec, err)
		}
	}
	var nilSpec *Spec
	if nilSpec.String() != "" {
		t.Fatalf("nil spec renders %q", nilSpec.String())
	}
}

// TestJSONRoundTrip pins the JSON transport: the canonical text embedded
// as a JSON string, identical after a marshal/unmarshal cycle.
func TestJSONRoundTrip(t *testing.T) {
	spec, err := Parse("burst:rate=800,on=50ms,off=150ms;serve:servers=4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"burst:rate=800,on=50ms,off=150ms;serve:servers=4"`; string(b) != want {
		t.Fatalf("MarshalJSON = %s, want %s", b, want)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != spec.String() {
		t.Fatalf("JSON round trip: %q -> %q", spec.String(), back.String())
	}
	var bad Spec
	if err := json.Unmarshal([]byte(`"poisson:rate=-3"`), &bad); err == nil {
		t.Fatal("UnmarshalJSON accepted an invalid spec")
	}
	if err := json.Unmarshal([]byte(`""`), &bad); err == nil {
		t.Fatal("UnmarshalJSON accepted an empty spec")
	}
}

// TestValidateLiterals covers validation paths a hand-built literal can
// reach that the grammar cannot express.
func TestValidateLiterals(t *testing.T) {
	good := &Spec{Kind: Closed, Clients: 4, Think: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid literal rejected: %v", err)
	}
	bad := []*Spec{
		nil,
		{},                              // zero value has no kind
		{Kind: Kind(99), Rate: 1},       // unknown kind
		{Kind: Poisson, Rate: 1, On: 1}, // cross-kind field
		{Kind: Poisson, Rate: 1, Step: -1},
		{Kind: Periods, Periods: make([]Period, MaxPeriods+1)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad literal %d accepted", i)
		}
	}
}

// TestOfferedRate pins the nominal-load arithmetic per kind.
func TestOfferedRate(t *testing.T) {
	cases := []struct {
		spec string
		want float64
	}{
		{"poisson:rate=500", 500},
		{"steady:rate=250", 250},
		{"burst:rate=800,on=50ms,off=150ms", 200}, // 25% duty cycle
		{"periods:pattern=500x100ms/50x400ms", (500*100 + 50*400) / 500.0},
		{"closed:clients=4,think=1ms", 0},
	}
	for _, c := range cases {
		spec, err := Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.OfferedRate(); got != c.want {
			t.Fatalf("%s: OfferedRate = %v, want %v", c.spec, got, c.want)
		}
	}
}

// TestSpecStringNoWhitespace guards the trace header's tokenization: no
// canonical spec may contain whitespace.
func TestSpecStringNoWhitespace(t *testing.T) {
	for _, in := range []string{
		"poisson:rate=12345.678",
		"burst:rate=1e-3,on=1h,off=59m59s",
		"periods:pattern=1x1ns/2x1h/0x30m",
		"closed:clients=1048576,think=1h",
	} {
		spec, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		if s := spec.String(); strings.ContainsAny(s, " \t\n") {
			t.Fatalf("canonical form %q contains whitespace", s)
		}
	}
}
