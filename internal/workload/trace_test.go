package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// recordOpen builds a small open-loop trace for the tests.
func recordOpen(t *testing.T, trials int) (*Spec, *Trace) {
	t.Helper()
	spec := mustParse(t, "poisson:rate=100000")
	arrivals, err := spec.Schedule(21, trials)
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]int64, trials)
	for i := range demands {
		demands[i] = int64(200 + i%31)
	}
	tr, err := Record(spec, 21, trials, 0, trials, arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	return spec, tr
}

// TestTraceEncodeDecodeRoundTrip: encode → decode reproduces the exact
// struct, and re-encoding reproduces the exact bytes.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	_, tr := recordOpen(t, 64)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	if !strings.HasPrefix(first, "tracev1 spec=poisson:rate=100000 seed=21 trials=64 lo=0 hi=64\n") {
		t.Fatalf("unexpected header: %q", strings.SplitN(first, "\n", 2)[0])
	}
	back, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Fatal("decode did not reproduce the trace")
	}
	var again bytes.Buffer
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("re-encode is not byte-identical")
	}
}

// TestTraceMergeMatchesUnsharded: slicing a recording into shard traces
// and merging them reproduces, byte for byte, the unsharded trace.
func TestTraceMergeMatchesUnsharded(t *testing.T) {
	spec, full := recordOpen(t, 100)
	arrivals, demands := full.Arrivals(), full.Demands()
	var parts []*Trace
	const shards = 4
	for i := 0; i < shards; i++ {
		lo, hi := i*100/shards, (i+1)*100/shards
		p, err := Record(spec, 21, 100, lo, hi, arrivals[lo:hi], demands[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	// Merge in scrambled order: order must not matter.
	merged, err := Merge(parts[2], parts[0], parts[3], parts[1])
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := full.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("merged trace differs from the unsharded recording")
	}
}

// TestTraceMergeRejects: gaps, overlaps, and mixed runs are refused.
func TestTraceMergeRejects(t *testing.T) {
	spec, full := recordOpen(t, 40)
	arr, dem := full.Arrivals(), full.Demands()
	slice := func(lo, hi int) *Trace {
		p, err := Record(spec, 21, 40, lo, hi, arr[lo:hi], dem[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Merge(slice(0, 20)); err == nil {
		t.Fatal("incomplete tiling accepted")
	}
	if _, err := Merge(slice(0, 20), slice(25, 40)); err == nil {
		t.Fatal("gapped tiling accepted")
	}
	if _, err := Merge(slice(0, 25), slice(20, 40)); err == nil {
		t.Fatal("overlapping tiling accepted")
	}
	other := slice(20, 40)
	other.Seed = 99
	if _, err := Merge(slice(0, 20), other); err == nil {
		t.Fatal("mixed-run merge accepted")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
}

// TestTraceVerify: matching demands pass, any divergence is pinpointed.
func TestTraceVerify(t *testing.T) {
	_, tr := recordOpen(t, 16)
	dem := tr.Demands()
	if err := tr.Verify(dem); err != nil {
		t.Fatalf("faithful replay rejected: %v", err)
	}
	dem[7]++
	err := tr.Verify(dem)
	if err == nil || !strings.Contains(err.Error(), "trial 7") {
		t.Fatalf("divergence at trial 7 reported as %v", err)
	}
	if err := tr.Verify(dem[:10]); err == nil {
		t.Fatal("short replay accepted")
	}
}

// TestTraceServe: a complete trace serves to the same metrics the spec
// computes directly; partial traces are refused.
func TestTraceServe(t *testing.T) {
	spec, tr := recordOpen(t, 80)
	fromTrace, err := tr.Serve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := spec.Serve(tr.Arrivals(), tr.Demands())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromTrace, direct) {
		t.Fatal("trace-served metrics differ from direct serve")
	}
	part, err := Record(spec, 21, 80, 0, 40, tr.Arrivals()[:40], tr.Demands()[:40])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := part.Serve(); err == nil {
		t.Fatal("partial trace served")
	}
}

// TestTraceServeClosed: a closed-kind trace re-runs the cohort model and
// cross-checks the recorded issue times.
func TestTraceServeClosed(t *testing.T) {
	spec := mustParse(t, "closed:clients=3,think=5µs")
	demands := []int64{9, 4, 7, 2, 8, 1}
	served, err := spec.Serve(nil, demands)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(spec, 4, len(demands), 0, len(demands), served.Arrivals, demands)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tr.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Metrics, served.Metrics) {
		t.Fatal("closed trace re-serve diverged")
	}
	// Corrupt a recorded issue time: Serve must detect the divergence
	// (shift the last entry so the arrival sequence stays sorted).
	tr.Entries[len(tr.Entries)-1].ArrivalNs++
	if _, err := tr.Serve(); err == nil {
		t.Fatal("corrupted issue time not detected")
	}
}

// TestDecodeRejects: malformed headers and bodies fail cleanly.
func TestDecodeRejects(t *testing.T) {
	cases := []string{
		"",
		"tracev2 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 0 1\n",
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0\n",                    // missing hi
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n",               // missing entry
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 0 1\n1 1 1\n", // extra entry
		"tracev1 spec=poisson:rate=1 seed=1 trials=2 lo=0 hi=2\n0 5 1\n1 3 1\n", // unsorted arrivals
		"tracev1 spec=poisson:rate=1 seed=1 trials=2 lo=0 hi=2\n0 0 1\n2 1 1\n", // index gap
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 0 -4\n",       // negative demand
		"tracev1 spec=poisson:rate=0 seed=1 trials=1 lo=0 hi=1\n0 0 1\n",        // invalid spec
		"tracev1 spec=poisson:rate=1.00 seed=1 trials=1 lo=0 hi=1\n0 0 1\n",     // non-canonical spec
		"tracev1 spec=poisson:rate=1 seed=1 seed=2 trials=1 lo=0 hi=1\n0 0 1\n", // duplicate field
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1 x=1\n0 0 1\n",    // unknown field
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 zero 1\n",     // bad entry
		"tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=2 hi=1\n",               // inverted span
	}
	for _, in := range cases {
		if tr, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("Decode accepted %q as %+v", in, tr)
		}
	}
}
