// Package workload is the open-loop workload plane: declarative arrival
// processes, client cohorts, a virtual-time service model, and a versioned
// trace format for recording and replaying executed workloads bit-identically.
//
// Everything the rest of the repo measures is *closed-loop*: the trial
// engine grinds executions as fast as the worker pool allows, so contention
// is whatever the scheduler produces, never an offered load anyone chose.
// This package adds the missing axis. A Spec describes how consensus
// requests arrive — a Poisson process, an on/off burst pattern, a cycling
// multi-period temporal profile, a steady deterministic drip, or a closed
// cohort of clients with think times — and the saturation driver sweeps
// offered load against achieved decisions/sec to locate the knee per
// protocol, adversary, and register model (experiment E23).
//
// Determinism is the same contract the trial engine keeps, extended to
// time: the arrival schedule is a pure function of (spec, seed, n),
// generated from a single xrand stream split off the root seed, so any
// worker or shard count sees byte-identical schedules. Latency and
// throughput are computed in *virtual* time — each trial's measured
// simulated step count, scaled by the spec's per-step duration, is served
// by a FIFO multi-server queue over the arrival schedule — so saturation
// reports are bit-identical at any parallelism and CI can gate them with
// cmp. Wall-clock pacing (harness.Sweep.Pace) only changes when trials
// run, never what they compute.
//
// The text grammar follows the fault.Plan pattern — segments of
// kind:key=value pairs joined by ';', canonical String/Parse round trip
// pinned by a fuzz target — and the JSON codec is the same canonical text
// embedded as a JSON string, so an artifact carries one unambiguous form:
//
//	poisson:rate=500                        500 arrivals/sec, exponential gaps
//	burst:rate=800,on=50ms,off=150ms        on/off-modulated Poisson
//	steady:rate=250                         evenly spaced, randomness-free
//	periods:pattern=500x100ms/50x400ms      cycling piecewise-constant Poisson
//	closed:clients=16,think=2ms             cohort, one outstanding op each
//	poisson:rate=2000;serve:servers=4       ...served by 4 virtual servers
package workload

import (
	"fmt"
	"math"
	"time"
)

// Kind enumerates the arrival-process families a Spec can describe.
type Kind int

const (
	// Poisson is the memoryless open-loop process: exponential
	// inter-arrival gaps at Spec.Rate arrivals per second.
	Poisson Kind = iota + 1
	// Burst is an on/off-modulated Poisson process: Spec.Rate arrivals/sec
	// during each On phase, silence during each Off phase, cycling.
	Burst
	// Steady is the deterministic open-loop baseline: arrivals exactly
	// 1/Rate seconds apart, consuming no randomness at all.
	Steady
	// Periods is a cycling piecewise-constant-rate Poisson process: each
	// period runs at its own rate for its span, then the next begins
	// (wrapping around). Memorylessness makes the per-period redraw exact.
	Periods
	// Closed is the closed-loop cohort: Clients clients each keep exactly
	// one operation outstanding, waiting Think after each completion
	// before issuing the next. Arrival times are assigned by the service
	// model from completions, not drawn up front.
	Closed
)

// String returns the kind's canonical grammar name.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Burst:
		return "burst"
	case Steady:
		return "steady"
	case Periods:
		return "periods"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Period is one segment of a Periods spec: Rate arrivals/sec for Span.
// A zero Rate is legal (a silent stretch); a cycle must contain at least
// one positive-rate period.
type Period struct {
	// Rate is the period's arrival rate in arrivals per second.
	Rate float64
	// Span is the period's duration.
	Span time.Duration
}

// Limits the validator enforces; all are sanity caps, not tuning knobs.
const (
	// MaxRate caps arrival rates (arrivals/sec).
	MaxRate = 1e9
	// MaxSpan caps phase and period durations and think times.
	MaxSpan = time.Hour
	// MaxPeriods caps the period count of a Periods spec.
	MaxPeriods = 64
	// MaxClients caps the cohort size of a Closed spec.
	MaxClients = 1 << 20
	// MaxServers caps the virtual server count of the service model.
	MaxServers = 4096
	// MaxStep caps the virtual duration of one simulated step.
	MaxStep = time.Second
)

// DefaultStep is the virtual duration of one simulated operation when the
// spec leaves Step at 0: 1µs, so a few-hundred-step consensus execution
// costs a few hundred microseconds of virtual service time.
const DefaultStep = time.Microsecond

// Spec is a validated, declarative workload description. Build one with
// Parse (the text grammar) or a struct literal followed by Validate; the
// zero value is not a valid spec. Specs are immutable once built — every
// method is read-only — and safe to share across goroutines.
type Spec struct {
	// Kind selects the arrival-process family and which fields apply.
	Kind Kind
	// Rate is the arrival rate in arrivals/sec (Poisson, Burst, Steady).
	Rate float64
	// On and Off are the phase durations of a Burst spec.
	On, Off time.Duration
	// Periods is the cycling rate profile of a Periods spec.
	Periods []Period
	// Clients is the cohort size of a Closed spec.
	Clients int
	// Think is a Closed spec's per-client pause between a completion and
	// the client's next operation; 0 is back-to-back.
	Think time.Duration
	// Servers is the virtual server count of the service model; 0 means 1.
	Servers int
	// Step is the virtual duration of one simulated step; 0 means
	// DefaultStep.
	Step time.Duration
}

// servers resolves the effective virtual server count.
func (s *Spec) servers() int {
	if s.Servers <= 0 {
		return 1
	}
	return s.Servers
}

// step resolves the effective virtual per-step duration.
func (s *Spec) step() time.Duration {
	if s.Step <= 0 {
		return DefaultStep
	}
	return s.Step
}

// rateOK checks one arrival rate against the validator's caps.
func rateOK(r float64, allowZero bool) error {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("workload: rate must be finite, got %v", r)
	}
	if r < 0 || (!allowZero && r == 0) {
		return fmt.Errorf("workload: rate must be positive, got %v", r)
	}
	if r > MaxRate {
		return fmt.Errorf("workload: rate %v exceeds the %v/sec sanity cap", r, MaxRate)
	}
	return nil
}

// spanOK checks one duration against the validator's caps.
func spanOK(name string, d time.Duration, allowZero bool) error {
	if d < 0 || (!allowZero && d == 0) {
		return fmt.Errorf("workload: %s=%v must be positive", name, d)
	}
	if d > MaxSpan {
		return fmt.Errorf("workload: %s=%v exceeds the %v sanity cap", name, d, MaxSpan)
	}
	return nil
}

// Validate checks the spec against its kind's requirements and the global
// sanity caps. Parse validates automatically; hand-built literals should
// call it before use — the generators and the service model assume a valid
// spec.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("workload: nil spec")
	}
	switch s.Kind {
	case Poisson, Steady:
		if err := rateOK(s.Rate, false); err != nil {
			return err
		}
		if s.On != 0 || s.Off != 0 || len(s.Periods) != 0 || s.Clients != 0 || s.Think != 0 {
			return fmt.Errorf("workload: %s spec carries fields of another kind", s.Kind)
		}
	case Burst:
		if err := rateOK(s.Rate, false); err != nil {
			return err
		}
		if err := spanOK("on", s.On, false); err != nil {
			return err
		}
		if err := spanOK("off", s.Off, false); err != nil {
			return err
		}
		if len(s.Periods) != 0 || s.Clients != 0 || s.Think != 0 {
			return fmt.Errorf("workload: burst spec carries fields of another kind")
		}
	case Periods:
		if len(s.Periods) == 0 {
			return fmt.Errorf("workload: periods spec needs at least one period")
		}
		if len(s.Periods) > MaxPeriods {
			return fmt.Errorf("workload: %d periods exceed the %d sanity cap", len(s.Periods), MaxPeriods)
		}
		positive := false
		for i, p := range s.Periods {
			if err := rateOK(p.Rate, true); err != nil {
				return fmt.Errorf("workload: period %d: %w", i, err)
			}
			if err := spanOK("span", p.Span, false); err != nil {
				return fmt.Errorf("workload: period %d: %w", i, err)
			}
			positive = positive || p.Rate > 0
		}
		if !positive {
			return fmt.Errorf("workload: periods spec needs at least one positive-rate period")
		}
		if s.Rate != 0 || s.On != 0 || s.Off != 0 || s.Clients != 0 || s.Think != 0 {
			return fmt.Errorf("workload: periods spec carries fields of another kind")
		}
	case Closed:
		if s.Clients < 1 || s.Clients > MaxClients {
			return fmt.Errorf("workload: clients=%d out of range [1, %d]", s.Clients, MaxClients)
		}
		if err := spanOK("think", s.Think, true); err != nil {
			return err
		}
		if s.Rate != 0 || s.On != 0 || s.Off != 0 || len(s.Periods) != 0 {
			return fmt.Errorf("workload: closed spec carries fields of another kind")
		}
	default:
		return fmt.Errorf("workload: unknown kind %d", int(s.Kind))
	}
	if s.Servers < 0 || s.Servers > MaxServers {
		return fmt.Errorf("workload: servers=%d out of range [0, %d]", s.Servers, MaxServers)
	}
	if s.Step < 0 || s.Step > MaxStep {
		return fmt.Errorf("workload: step=%v out of range (0, %v]", s.Step, MaxStep)
	}
	return nil
}

// Open reports whether the spec's arrivals are drawn up front (every kind
// but Closed, whose issue times come from completions inside the service
// model).
func (s *Spec) Open() bool { return s.Kind != Closed }

// OfferedRate returns the spec's nominal offered load in arrivals/sec:
// the rate itself for Poisson and Steady, the duty-cycle average for
// Burst, the span-weighted cycle average for Periods, and 0 for Closed
// (a closed system has no offered rate independent of service times).
func (s *Spec) OfferedRate() float64 {
	switch s.Kind {
	case Poisson, Steady:
		return s.Rate
	case Burst:
		return s.Rate * float64(s.On) / float64(s.On+s.Off)
	case Periods:
		var weighted, span float64
		for _, p := range s.Periods {
			weighted += p.Rate * float64(p.Span)
			span += float64(p.Span)
		}
		if span == 0 {
			return 0
		}
		return weighted / span
	default:
		return 0
	}
}
