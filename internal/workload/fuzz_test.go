package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSpec pins the parser contract under arbitrary input: Parse
// never panics, any accepted spec validates, and its canonical form is a
// fixed point of Parse∘String.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"poisson:rate=500",
		"steady:rate=1234.5",
		"burst:rate=800,on=50ms,off=150ms",
		"periods:pattern=500x100ms/0x1s/50x400ms",
		"closed:clients=16,think=2ms",
		"poisson:rate=2000;serve:servers=4,step=500ns",
		"serve:step=2µs;closed:clients=8,think=1ms",
		"poisson:rate=1e+06",
		"poisson:rate=0",
		"burst:rate=1,on=1s",
		"warble:rate=1",
		"poisson:rate=1,rate=2",
		";;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := Parse(in)
		if err != nil {
			return
		}
		if spec == nil {
			// Only the documented empty form maps to a nil spec.
			if strings.TrimSpace(in) != "" {
				t.Fatalf("Parse(%q) = nil, nil for non-empty input", in)
			}
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid spec: %v", in, err)
		}
		canon := spec.String()
		if strings.ContainsAny(canon, " \t\r\n") {
			t.Fatalf("canonical form %q contains whitespace", canon)
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, again.String())
		}
	})
}

// FuzzTraceDecode pins the trace codec under arbitrary input: Decode
// never panics, and any trace it accepts re-encodes to identical bytes.
func FuzzTraceDecode(f *testing.F) {
	f.Add("tracev1 spec=poisson:rate=500 seed=7 trials=2 lo=0 hi=2\n0 0 10\n1 1500 12\n")
	f.Add("tracev1 spec=closed:clients=2,think=1µs seed=1 trials=1 lo=0 hi=1\n0 0 3\n")
	f.Add("tracev1 spec=steady:rate=1000 seed=0 trials=3 lo=1 hi=3\n1 1000000 5\n2 2000000 5\n")
	f.Add("tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n")
	f.Add("tracev2 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 0 1\n")
	f.Add("tracev1 spec=poisson:rate=1 seed=1 trials=1 lo=0 hi=1\n0 0 -1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("decoded trace does not re-encode: %v", err)
		}
		back, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace does not decode: %v", err)
		}
		var again bytes.Buffer
		if err := back.Encode(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatal("encode is not a fixed point after decode")
		}
	})
}
