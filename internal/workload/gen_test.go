package workload

import (
	"reflect"
	"testing"
)

func mustParse(t *testing.T, s string) *Spec {
	t.Helper()
	spec, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestSchedulePrefixProperty pins the property sharding rests on: the
// schedule for n trials is a prefix of the schedule for any larger n, so
// a shard can generate the full schedule and slice its [lo, hi) without
// any cross-shard coordination.
func TestSchedulePrefixProperty(t *testing.T) {
	for _, spec := range []string{
		"poisson:rate=5000",
		"steady:rate=1234.5",
		"burst:rate=9000,on=3ms,off=7ms",
		"periods:pattern=4000x2ms/0x1ms/800x5ms",
	} {
		s := mustParse(t, spec)
		full, err := s.Schedule(42, 500)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		short, err := s.Schedule(42, 120)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(short, full[:120]) {
			t.Fatalf("%s: Schedule(seed, 120) is not a prefix of Schedule(seed, 500)", spec)
		}
		again, err := s.Schedule(42, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, full) {
			t.Fatalf("%s: schedule not deterministic across calls", spec)
		}
	}
}

// TestScheduleSeedSensitivity: distinct seeds give distinct Poisson
// schedules (while Steady ignores the seed entirely).
func TestScheduleSeedSensitivity(t *testing.T) {
	p := mustParse(t, "poisson:rate=1000")
	a, _ := p.Schedule(1, 64)
	b, _ := p.Schedule(2, 64)
	if reflect.DeepEqual(a, b) {
		t.Fatal("poisson schedules identical across seeds")
	}
	st := mustParse(t, "steady:rate=1000")
	sa, _ := st.Schedule(1, 64)
	sb, _ := st.Schedule(2, 64)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("steady schedule depends on the seed")
	}
	// 1000/sec = exactly 1ms spacing.
	for i, at := range sa {
		if at != int64(i)*1_000_000 {
			t.Fatalf("steady arrival %d at %dns, want %dns", i, at, int64(i)*1_000_000)
		}
	}
}

// TestScheduleSorted: every generator yields non-decreasing times.
func TestScheduleSorted(t *testing.T) {
	for _, spec := range []string{
		"poisson:rate=1e6",
		"burst:rate=1e6,on=100µs,off=900µs",
		"periods:pattern=1e6x1ms/1x1s",
	} {
		s := mustParse(t, spec)
		sched, err := s.Schedule(7, 2000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(sched); i++ {
			if sched[i] < sched[i-1] {
				t.Fatalf("%s: arrivals out of order at %d", spec, i)
			}
		}
	}
}

// TestBurstArrivalsInOnWindows: a burst schedule never places an arrival
// inside an off phase.
func TestBurstArrivalsInOnWindows(t *testing.T) {
	s := mustParse(t, "burst:rate=50000,on=2ms,off=8ms")
	sched, err := s.Schedule(9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cycle := int64(10_000_000) // 10ms
	on := int64(2_000_000)     // 2ms
	for i, at := range sched {
		if at%cycle >= on {
			t.Fatalf("arrival %d at %dns lands %dns into the cycle, past the %dns on window", i, at, at%cycle, on)
		}
	}
}

// TestPeriodsSilence: zero-rate periods admit no arrivals.
func TestPeriodsSilence(t *testing.T) {
	// Cycle: 1ms at 100k/sec, then 1ms of silence.
	s := mustParse(t, "periods:pattern=100000x1ms/0x1ms")
	sched, err := s.Schedule(11, 500)
	if err != nil {
		t.Fatal(err)
	}
	cycle := int64(2_000_000)
	active := int64(1_000_000)
	for i, at := range sched {
		if at%cycle >= active {
			t.Fatalf("arrival %d at %dns inside the silent period", i, at)
		}
	}
}

// TestScheduleClosedAndEdgeCases: closed specs have no precomputed
// schedule; invalid specs and degenerate n are handled.
func TestScheduleClosedAndEdgeCases(t *testing.T) {
	c := mustParse(t, "closed:clients=4,think=1ms")
	sched, err := c.Schedule(1, 100)
	if err != nil || sched != nil {
		t.Fatalf("closed Schedule = %v, %v; want nil, nil", sched, err)
	}
	p := mustParse(t, "poisson:rate=100")
	empty, err := p.Schedule(1, 0)
	if err != nil || len(empty) != 0 {
		t.Fatalf("Schedule(seed, 0) = %v, %v", empty, err)
	}
	var bad Spec
	if _, err := bad.Schedule(1, 10); err == nil {
		t.Fatal("invalid spec scheduled without error")
	}
}

// TestPoissonMeanGap sanity-checks the exponential sampler: the mean gap
// over many arrivals should be within a few percent of 1/rate.
func TestPoissonMeanGap(t *testing.T) {
	s := mustParse(t, "poisson:rate=1000") // mean gap 1ms
	const n = 50_000
	sched, err := s.Schedule(3, n)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(sched[n-1]) / float64(n-1)
	if mean < 950_000 || mean > 1_050_000 {
		t.Fatalf("mean gap %.0fns, want within 5%% of 1ms", mean)
	}
}
