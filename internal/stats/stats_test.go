package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
	if s.P50 != 3 {
		t.Fatalf("median %v", s.P50)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P99 != 7 {
		t.Fatalf("summary %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestQuantiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Fatalf("quantiles %v %v %v", s.P50, s.P90, s.P99)
	}
}

func TestSummaryBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
			// Clamp to avoid overflow in the sum — the harness only ever
			// summarizes op counts and probabilities.
			raw[i] = math.Mod(raw[i], 1e9)
		}
		s := Summarize(raw)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProportion(t *testing.T) {
	p := NewProportion(50, 100)
	if p.P != 0.5 {
		t.Fatalf("P = %v", p.P)
	}
	if p.Lo >= 0.5 || p.Hi <= 0.5 {
		t.Fatalf("interval [%v, %v] excludes point estimate", p.Lo, p.Hi)
	}
	// Wilson at p=0.5, n=100: approx [0.404, 0.596].
	if math.Abs(p.Lo-0.4038) > 0.01 || math.Abs(p.Hi-0.5962) > 0.01 {
		t.Fatalf("interval [%v, %v]", p.Lo, p.Hi)
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

func TestProportionEdges(t *testing.T) {
	zero := NewProportion(0, 10)
	if zero.P != 0 || zero.Lo != 0 || zero.Hi <= 0 {
		t.Fatalf("zero %+v", zero)
	}
	one := NewProportion(10, 10)
	if one.P != 1 || one.Hi != 1 || one.Lo >= 1 {
		t.Fatalf("one %+v", one)
	}
}

func TestProportionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProportion(0, 0)
}

func TestProportionCoverageNarrowsWithN(t *testing.T) {
	small := NewProportion(5, 10)
	large := NewProportion(500, 1000)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Fatal("interval did not narrow with more trials")
	}
}

func TestFitRecoversExactLaws(t *testing.T) {
	ns := []float64{4, 8, 16, 32, 64, 128}
	mk := func(f func(n float64) float64) []float64 {
		ys := make([]float64, len(ns))
		for i, n := range ns {
			ys[i] = f(n)
		}
		return ys
	}
	cases := []struct {
		shape Shape
		f     func(n float64) float64
		a, b  float64
	}{
		{ShapeLog, func(n float64) float64 { return 2*math.Log2(n) + 3 }, 2, 3},
		{ShapeLinear, func(n float64) float64 { return 6*n + 1 }, 6, 1},
		{ShapeNLogN, func(n float64) float64 { return 0.5*n*math.Log2(n) - 2 }, 0.5, -2},
	}
	for _, tt := range cases {
		fit := FitShape(tt.shape, ns, mk(tt.f))
		if math.Abs(fit.A-tt.a) > 1e-9 || math.Abs(fit.B-tt.b) > 1e-9 {
			t.Errorf("%v: got A=%v B=%v, want %v %v", tt.shape, fit.A, fit.B, tt.a, tt.b)
		}
		if fit.R2 < 0.999999 {
			t.Errorf("%v: R² = %v", tt.shape, fit.R2)
		}
	}
}

func TestFitConst(t *testing.T) {
	fit := FitShape(ShapeConst, []float64{2, 4, 8}, []float64{5, 5, 5})
	if fit.A != 0 || fit.B != 5 || fit.RMSE != 0 {
		t.Fatalf("fit %+v", fit)
	}
}

func TestBestShapeSelectsCorrectLaw(t *testing.T) {
	ns := []float64{4, 8, 16, 32, 64, 128, 256}
	logY := make([]float64, len(ns))
	linY := make([]float64, len(ns))
	for i, n := range ns {
		logY[i] = 2*math.Log2(n) + 1
		linY[i] = 3 * n
	}
	if got := BestShape(ns, logY); got.Shape != ShapeLog {
		t.Errorf("log data fitted as %v", got.Shape)
	}
	if got := BestShape(ns, linY); got.Shape != ShapeLinear {
		t.Errorf("linear data fitted as %v", got.Shape)
	}
	// Restricted candidate set.
	if got := BestShape(ns, linY, ShapeLinear, ShapeNLogN); got.Shape != ShapeLinear {
		t.Errorf("restricted fit chose %v", got.Shape)
	}
}

func TestFitPanicsOnTooFewPoints(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FitShape(ShapeLog, []float64{2}, []float64{1})
}

func TestShapeStrings(t *testing.T) {
	for s, want := range map[Shape]string{
		ShapeConst: "O(1)", ShapeLog: "O(log n)",
		ShapeLinear: "O(n)", ShapeNLogN: "O(n log n)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d: %q != %q", int(s), got, want)
		}
	}
	fit := FitShape(ShapeLog, []float64{2, 4}, []float64{1, 2})
	if fit.String() == "" {
		t.Fatal("empty fit string")
	}
}
