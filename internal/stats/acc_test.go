package stats

import "testing"

func TestAccMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d", a.N())
	}
	if got, want := a.Summary(), Summarize(xs); got != want {
		t.Fatalf("Summary mismatch: %+v != %+v", got, want)
	}
	if a.Mean() != Summarize(xs).Mean {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 9 {
		t.Fatalf("Max = %v", a.Max())
	}
}

func TestAccMergePreservesOrder(t *testing.T) {
	var a, b, whole Acc
	for i := 0; i < 5; i++ {
		a.AddInt(i)
		whole.AddInt(i)
	}
	for i := 5; i < 9; i++ {
		b.AddInt(i)
		whole.AddInt(i)
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	for i, x := range a.Values() {
		if x != whole.Values()[i] {
			t.Fatalf("merge reordered: %v", a.Values())
		}
	}
}

func TestAccEmpty(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Max() != 0 || a.N() != 0 {
		t.Fatal("empty Acc not zero-valued")
	}
}

func TestTally(t *testing.T) {
	var a, b Tally
	a.Add(true)
	a.Add(false)
	b.Add(true)
	a.Merge(b)
	if a.Successes != 2 || a.Trials != 3 {
		t.Fatalf("tally %+v", a)
	}
	if got, want := a.Proportion(), NewProportion(2, 3); got != want {
		t.Fatalf("proportion %+v != %+v", got, want)
	}
}
