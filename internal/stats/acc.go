package stats

// Accumulators for streaming per-trial metrics out of parallel sweeps.
//
// The trial engine (internal/harness) folds results through a single merge
// step in trial order, so feeding these accumulators from a merge callback
// is race-free and — because addition happens in a fixed sequence — yields
// bit-identical aggregates at any worker count.

// Acc accumulates a sample of float64 observations for Summary. The full
// sample is retained (the Summary quantiles need it); Add order determines
// the internal layout, so deterministic feeding gives deterministic output.
type Acc struct {
	xs []float64
}

// Add appends one observation.
func (a *Acc) Add(x float64) { a.xs = append(a.xs, x) }

// AddInt appends one integer observation.
func (a *Acc) AddInt(x int) { a.xs = append(a.xs, float64(x)) }

// N reports the number of observations.
func (a *Acc) N() int { return len(a.xs) }

// Merge appends all of b's observations, in b's order.
func (a *Acc) Merge(b *Acc) { a.xs = append(a.xs, b.xs...) }

// Values returns the accumulated sample (not a copy; callers fitting shapes
// may read it directly).
func (a *Acc) Values() []float64 { return a.xs }

// Mean returns the sample mean (0 for an empty accumulator, so partial
// sweeps can still be reported).
func (a *Acc) Mean() float64 {
	if len(a.xs) == 0 {
		return 0
	}
	return mean(a.xs)
}

// Max returns the sample maximum (0 for an empty accumulator).
func (a *Acc) Max() float64 {
	m := 0.0
	for i, x := range a.xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Summary summarizes the accumulated sample; like Summarize it panics on an
// empty accumulator.
func (a *Acc) Summary() Summary { return Summarize(a.xs) }

// Tally counts successes over trials for a binomial estimate.
type Tally struct {
	Successes, Trials int
}

// Add records one trial.
func (t *Tally) Add(ok bool) {
	t.Trials++
	if ok {
		t.Successes++
	}
}

// Merge folds another tally in.
func (t *Tally) Merge(o Tally) {
	t.Successes += o.Successes
	t.Trials += o.Trials
}

// Proportion returns the Wilson 95% interval of the tally; like
// NewProportion it panics when no trials were recorded.
func (t Tally) Proportion() Proportion { return NewProportion(t.Successes, t.Trials) }
