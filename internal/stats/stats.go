// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics, binomial confidence intervals for
// agreement probabilities, and least-squares fits against the growth shapes
// the paper's theorems predict (constant, log n, n, n log n).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and quantiles of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P50, P90, P99    float64
	StandardErrorOfM float64
}

// Summarize computes summary statistics of xs; it panics on empty input
// (an experiment with zero trials is a harness bug).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.StandardErrorOfM = s.Std / math.Sqrt(float64(s.N))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// SummarizeInts converts and summarizes integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// quantile returns the q-quantile of a sorted sample by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Proportion is a binomial estimate with a Wilson score interval.
type Proportion struct {
	Successes, Trials int
	// P is the point estimate successes/trials.
	P float64
	// Lo and Hi bound the 95% Wilson score interval.
	Lo, Hi float64
}

// NewProportion computes the Wilson 95% interval for successes/trials.
// It panics when trials <= 0.
func NewProportion(successes, trials int) Proportion {
	if trials <= 0 {
		panic("stats: Proportion with no trials")
	}
	const z = 1.959963984540054 // 97.5th percentile of N(0,1)
	p := float64(successes) / float64(trials)
	n := float64(trials)
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return Proportion{
		Successes: successes,
		Trials:    trials,
		P:         p,
		Lo:        math.Max(0, center-half),
		Hi:        math.Min(1, center+half),
	}
}

// String renders the estimate as "p [lo, hi]".
func (p Proportion) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", p.P, p.Lo, p.Hi)
}

// Shape is a candidate growth law for fitting y(n).
type Shape int

const (
	// ShapeConst fits y = a.
	ShapeConst Shape = iota + 1
	// ShapeLog fits y = a·lg n + b.
	ShapeLog
	// ShapeLinear fits y = a·n + b.
	ShapeLinear
	// ShapeNLogN fits y = a·n·lg n + b.
	ShapeNLogN
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeConst:
		return "O(1)"
	case ShapeLog:
		return "O(log n)"
	case ShapeLinear:
		return "O(n)"
	case ShapeNLogN:
		return "O(n log n)"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// basis maps n to the shape's regressor value.
func (s Shape) basis(n float64) float64 {
	switch s {
	case ShapeConst:
		return 0
	case ShapeLog:
		return math.Log2(n)
	case ShapeLinear:
		return n
	case ShapeNLogN:
		return n * math.Log2(n)
	default:
		panic(fmt.Sprintf("stats: unknown shape %d", int(s)))
	}
}

// Fit is a least-squares fit y ≈ A·basis(n) + B with quality R².
type Fit struct {
	Shape Shape
	A, B  float64
	// R2 is the coefficient of determination (1 = perfect fit).
	R2 float64
	// RMSE is the root-mean-square residual.
	RMSE float64
}

// String renders the fitted law.
func (f Fit) String() string {
	return fmt.Sprintf("%s: y = %.3f·x + %.3f (R²=%.3f)", f.Shape, f.A, f.B, f.R2)
}

// FitShape fits y against the given shape by ordinary least squares.
// It panics if fewer than 2 points are provided.
func FitShape(shape Shape, ns []float64, ys []float64) Fit {
	if len(ns) != len(ys) || len(ns) < 2 {
		panic(fmt.Sprintf("stats: FitShape needs ≥2 matched points, got %d/%d", len(ns), len(ys)))
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = shape.basis(n)
	}
	meanX, meanY := mean(xs), mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	f := Fit{Shape: shape}
	if shape == ShapeConst || sxx == 0 {
		f.A, f.B = 0, meanY
	} else {
		f.A = sxy / sxx
		f.B = meanY - f.A*meanX
	}
	var sse float64
	for i := range xs {
		r := ys[i] - (f.A*xs[i] + f.B)
		sse += r * r
	}
	if syy > 0 {
		f.R2 = 1 - sse/syy
	} else {
		f.R2 = 1
	}
	f.RMSE = math.Sqrt(sse / float64(len(xs)))
	return f
}

// BestShape fits every candidate shape and returns the one with the lowest
// RMSE — the harness uses it to report which growth law the measurements
// support.
func BestShape(ns, ys []float64, candidates ...Shape) Fit {
	if len(candidates) == 0 {
		candidates = []Shape{ShapeConst, ShapeLog, ShapeLinear, ShapeNLogN}
	}
	best := FitShape(candidates[0], ns, ys)
	for _, c := range candidates[1:] {
		if f := FitShape(c, ns, ys); f.RMSE < best.RMSE {
			best = f
		}
	}
	return best
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
