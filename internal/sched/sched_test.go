package sched

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// mkView builds a view with the given runnable pids, all with generic valid
// pending ops.
func mkView(n int, runnable ...int) *View {
	v := &View{Power: Oblivious, N: n, Pending: make([]Op, n)}
	for _, pid := range runnable {
		v.Pending[pid] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	}
	v.Runnable = append([]int(nil), runnable...)
	return v
}

func drive(t *testing.T, s Scheduler, v *View, steps int) []int {
	t.Helper()
	s.Seed(xrand.New(7))
	out := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		pid := s.Next(v)
		found := false
		for _, r := range v.Runnable {
			if r == pid {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s chose non-runnable pid %d", s.Name(), pid)
		}
		out = append(out, pid)
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin()
	v := mkView(3, 0, 1, 2)
	got := drive(t, s, v, 7)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsHalted(t *testing.T) {
	s := NewRoundRobin()
	v := mkView(4, 0, 2) // 1 and 3 halted
	got := drive(t, s, v, 4)
	want := []int{0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestFixedOrderFollowsPermutation(t *testing.T) {
	s := NewFixedOrder([]int{2, 0, 1})
	v := mkView(3, 0, 1, 2)
	got := drive(t, s, v, 6)
	want := []int{2, 0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestFixedOrderCopiesInput(t *testing.T) {
	perm := []int{0, 1}
	s := NewFixedOrder(perm)
	perm[0] = 99 // must not affect the scheduler
	v := mkView(2, 0, 1)
	if got := s.Next(v); got != 0 {
		t.Fatalf("Next = %d after caller mutated perm", got)
	}
}

func TestFixedOrderWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixedOrder([]int{0}).Next(mkView(2, 0, 1))
}

func TestUniformRandomCoversAll(t *testing.T) {
	s := NewUniformRandom()
	v := mkView(4, 0, 1, 2, 3)
	got := drive(t, s, v, 400)
	seen := make(map[int]int)
	for _, pid := range got {
		seen[pid]++
	}
	for pid := 0; pid < 4; pid++ {
		if seen[pid] < 50 {
			t.Fatalf("pid %d scheduled only %d/400 times", pid, seen[pid])
		}
	}
}

func TestUniformRandomRequiresSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without Seed")
		}
	}()
	NewUniformRandom().Next(mkView(1, 0))
}

func TestLaggardLockstep(t *testing.T) {
	s := NewLaggard()
	v := mkView(3, 0, 1, 2)
	got := drive(t, s, v, 9)
	// Every process must take k steps before any takes k+1.
	counts := make([]int, 3)
	for _, pid := range got {
		counts[pid]++
		for _, c := range counts {
			if counts[pid]-c > 1 {
				t.Fatalf("lockstep violated: counts %v after scheduling %d", counts, pid)
			}
		}
	}
}

func TestFrontrunnerSticksToOneProcess(t *testing.T) {
	s := NewFrontrunner()
	v := mkView(3, 0, 1, 2)
	got := drive(t, s, v, 10)
	for i, pid := range got {
		if pid != got[0] {
			t.Fatalf("frontrunner switched process at step %d: %v", i, got)
		}
	}
}

func TestPriorityHighestRunnableWins(t *testing.T) {
	s := NewPriority(nil)
	v := mkView(3, 1, 2)
	if pid := s.Next(v); pid != 1 {
		t.Fatalf("priority chose %d, want 1", pid)
	}
	// Custom ranks: pid 2 highest.
	s2 := NewPriority([]int{2, 1, 0})
	v2 := mkView(3, 0, 1, 2)
	if pid := s2.Next(v2); pid != 2 {
		t.Fatalf("ranked priority chose %d, want 2", pid)
	}
}

func TestNoisyZeroSigmaIsDeterministicLockstep(t *testing.T) {
	s := NewNoisy(0)
	v := mkView(2, 0, 1)
	got := drive(t, s, v, 6)
	want := []int{0, 1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestNoisyEventuallyBreaksLockstep(t *testing.T) {
	s := NewNoisy(0.5)
	v := mkView(2, 0, 1)
	got := drive(t, s, v, 200)
	// With jitter, some process must take two consecutive steps at least
	// once in 200 steps (probability of perfect alternation is negligible).
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			return
		}
	}
	t.Fatal("noisy scheduler produced perfect alternation over 200 steps")
}

func TestNoisyIntervalsBias(t *testing.T) {
	s := NewNoisy(0.01)
	s.Intervals = []float64{1, 10} // pid 0 is 10x faster
	v := mkView(2, 0, 1)
	got := drive(t, s, v, 110)
	c0 := 0
	for _, pid := range got {
		if pid == 0 {
			c0++
		}
	}
	if c0 < 90 {
		t.Fatalf("fast process took only %d/110 steps", c0)
	}
}

func TestNoisyNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoisy(-1)
}

func TestFirstMoverAttackPhases(t *testing.T) {
	s := NewFirstMoverAttack()
	s.Seed(xrand.New(1))
	n := 3
	v := &View{Power: LocationOblivious, N: n, Runnable: []int{0, 1, 2},
		Pending: make([]Op, n), Memory: []value.Value{value.None}}
	// p0 poised to probwrite, p1/p2 poised to read: attack must advance a
	// reader to grow the pending-write pool.
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 5, ProbNum: 1, ProbDen: 4}
	v.Pending[1] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	v.Pending[2] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	if pid := s.Next(v); pid != 1 {
		t.Fatalf("phase 1 chose %d, want reader 1", pid)
	}
	// All poised to probwrite: fire the fewest-attempts process.
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 6, ProbNum: 1, ProbDen: 4}
	v.Pending[2] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 7, ProbNum: 1, ProbDen: 4}
	first := s.Next(v)
	if first < 0 || first > 2 {
		t.Fatalf("phase 1 release chose %d", first)
	}
	// Memory written: must first lock a witness reader on the current value.
	v.Memory[0] = 5
	v.Pending[0] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	if pid := s.Next(v); pid != 0 {
		t.Fatalf("endgame chose %d, want witness reader 0", pid)
	}
	// Witness locked on value 5: must now fire a pending probwrite whose
	// value differs from 5 (pid 2, value 7), never the 5-valued one.
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 5, ProbNum: 1, ProbDen: 4}
	if pid := s.Next(v); pid == 0 || v.Pending[pid].Kind != OpProbWrite {
		t.Fatalf("endgame chose %d, want a conflicting probwrite", pid)
	}
	// Memory flipped to a conflicting value: readers first to bank the
	// disagreement.
	v.Memory[0] = 7
	v.Pending[1] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	if pid := s.Next(v); pid != 1 {
		t.Fatalf("post-flip chose %d, want reader 1", pid)
	}
}

func TestEndgameWithoutReaders(t *testing.T) {
	// If no reader is available to lock, the endgame keeps firing writes.
	s := NewFirstMoverAttack()
	n := 2
	v := &View{Power: LocationOblivious, N: n, Runnable: []int{0, 1},
		Pending: make([]Op, n), Memory: []value.Value{3}}
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 4, ProbNum: 1, ProbDen: 2}
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 5, ProbNum: 1, ProbDen: 2}
	if pid := s.Next(v); v.Pending[pid].Kind != OpProbWrite {
		t.Fatalf("chose %d, want a probwrite", pid)
	}
}

func TestEagerWriteAttackOpeningIsRoundRobin(t *testing.T) {
	s := NewEagerWriteAttack()
	n := 2
	v := &View{Power: LocationOblivious, N: n, Runnable: []int{0, 1},
		Pending: make([]Op, n), Memory: []value.Value{value.None}}
	v.Pending[0] = Op{Valid: true, Kind: OpRead}
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite, Val: 3}
	if pid := s.Next(v); pid != 0 {
		t.Fatalf("first pick %d, want 0", pid)
	}
	if pid := s.Next(v); pid != 1 {
		t.Fatalf("second pick %d, want 1", pid)
	}
}

func TestEagerWriteAttackEndgame(t *testing.T) {
	// Once memory is written, the shared endgame takes over: lock a witness
	// reader, then fire conflicting writes.
	s := NewEagerWriteAttack()
	n := 2
	v := &View{Power: LocationOblivious, N: n, Runnable: []int{0, 1},
		Pending: make([]Op, n), Memory: []value.Value{9}}
	v.Pending[0] = Op{Valid: true, Kind: OpRead}
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite, Val: 3}
	if pid := s.Next(v); pid != 0 {
		t.Fatalf("witness pick %d, want reader 0", pid)
	}
	v.Pending[0] = Op{}
	v.Runnable = []int{1}
	if pid := s.Next(v); pid != 1 {
		t.Fatalf("conflict pick %d, want writer 1", pid)
	}
}

func TestSplitVotePrefersEvens(t *testing.T) {
	s := NewSplitVote()
	v := mkView(4, 0, 1, 2, 3)
	if pid := s.Next(v); pid != 0 {
		t.Fatalf("chose %d, want 0", pid)
	}
	v2 := mkView(4, 1, 3)
	if pid := s.Next(v2); pid != 1 {
		t.Fatalf("chose %d among odds, want 1", pid)
	}
}

func TestAdaptiveSpoilerAlternatesVictimAndConflict(t *testing.T) {
	s := NewAdaptiveSpoiler()
	n := 3
	v := &View{Power: Adaptive, N: n, Runnable: []int{0, 1, 2},
		Pending: make([]Op, n), Memory: []value.Value{7}}
	v.Pending[0] = Op{Valid: true, Kind: OpRead, Reg: 0, Val: value.None}
	v.Pending[1] = Op{Valid: true, Kind: OpWrite, Reg: 0, Val: 7} // same value: no conflict
	v.Pending[2] = Op{Valid: true, Kind: OpWrite, Reg: 0, Val: 9} // conflict
	// First commit a victim reader to the current value...
	if pid := s.Next(v); pid != 0 {
		t.Fatalf("spoiler chose %d, want victim reader 0", pid)
	}
	// ...then fire the conflicting write (never the same-value one).
	v.Pending[0] = Op{}
	v.Runnable = []int{1, 2}
	if pid := s.Next(v); pid != 2 {
		t.Fatalf("spoiler chose %d, want conflicting writer 2", pid)
	}
}

func TestMinPowers(t *testing.T) {
	cases := []struct {
		s    Scheduler
		want Power
	}{
		{NewRoundRobin(), Oblivious},
		{NewFixedOrder([]int{0}), Oblivious},
		{NewUniformRandom(), Oblivious},
		{NewLaggard(), Oblivious},
		{NewFrontrunner(), Oblivious},
		{NewNoisy(0.1), Oblivious},
		{NewPriority(nil), Oblivious},
		{NewSplitVote(), ValueOblivious},
		{NewFirstMoverAttack(), LocationOblivious},
		{NewEagerWriteAttack(), LocationOblivious},
		{NewAdaptiveSpoiler(), Adaptive},
	}
	for _, tt := range cases {
		if got := tt.s.MinPower(); got != tt.want {
			t.Errorf("%s MinPower = %v, want %v", tt.s.Name(), got, tt.want)
		}
		if tt.s.Name() == "" {
			t.Errorf("%T has empty name", tt.s)
		}
	}
}

func TestPowerAndOpKindStrings(t *testing.T) {
	for p, want := range map[Power]string{
		Oblivious: "oblivious", ValueOblivious: "value-oblivious",
		LocationOblivious: "location-oblivious", Adaptive: "adaptive",
		Power(0): "power(0)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Power(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	for k, want := range map[OpKind]string{
		OpRead: "read", OpWrite: "write", OpProbWrite: "probwrite",
		OpCollect: "collect", OpKind(9): "op(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestViewHelpers(t *testing.T) {
	v := mkView(3, 0, 2)
	if !v.PendingOf(0).Valid || v.PendingOf(1).Valid {
		t.Fatal("PendingOf wrong")
	}
	if v.PendingOf(-1).Valid || v.PendingOf(99).Valid {
		t.Fatal("PendingOf out-of-range should be zero Op")
	}
	if v.AnyMemoryWritten() {
		t.Fatal("AnyMemoryWritten true with nil memory")
	}
	v.Memory = []value.Value{value.None, value.None}
	if v.AnyMemoryWritten() {
		t.Fatal("AnyMemoryWritten true with all-⊥ memory")
	}
	v.Memory[1] = 3
	if !v.AnyMemoryWritten() {
		t.Fatal("AnyMemoryWritten false with written cell")
	}
}
