package sched

import (
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// concTracker detects first-mover conciliator phases from what a
// location-oblivious adversary may observe. A conciliator round is
// recognizable by pending *probabilistic* writes; when the first one
// appears, the tracker snapshots memory, and the first register that
// subsequently changes is the conciliator's register — whatever its
// address, which this adversary class cannot see.
type concTracker struct {
	armed    bool
	baseline []value.Value
}

// observe returns the conciliator phase: phaseNeutral when no probabilistic
// writes are pending and nothing has landed, phasePool while attempts are
// pending but none has taken effect, phaseEndgame (with the winning value)
// once one has.
func (c *concTracker) observe(v *View) (phase int, cur value.Value) {
	anyProb := false
	for _, pid := range v.Runnable {
		if v.Pending[pid].Kind == OpProbWrite {
			anyProb = true
			break
		}
	}
	if !c.armed {
		if !anyProb {
			return phaseNeutral, value.None
		}
		c.armed = true
		c.baseline = append(c.baseline[:0], v.Memory...)
	}
	// Armed: look for the first cell that changed since arming.
	for i, m := range v.Memory {
		base := value.None
		if i < len(c.baseline) {
			base = c.baseline[i]
		}
		if m != base && !m.IsNone() {
			return phaseEndgame, m
		}
	}
	if !anyProb {
		// The round fizzled (every attempt missed and processes moved on,
		// or the protocol left the conciliator); re-arm for the next one.
		c.armed = false
		return phaseNeutral, value.None
	}
	return phasePool, value.None
}

// reset clears the tracker for a fresh execution, keeping the baseline
// buffer's capacity.
func (c *concTracker) reset() {
	c.armed = false
	c.baseline = c.baseline[:0]
}

const (
	phaseNeutral = iota + 1
	phasePool
	phaseEndgame
)

// firstMoverEndgame is the disagreement-forcing endgame shared by the
// attack strategies, played once a conciliator write has landed. The
// adversary (location-oblivious: it sees memory contents and pending write
// values, and remembers its own history) plays to split the return values:
//
//  1. Lock a witness: schedule one pending read, so some process returns
//     the current value A and can never change its mind.
//  2. While memory still holds A, fire pending probabilistic writes whose
//     value differs from A — each is a chance to flip the register.
//  3. The moment memory differs from the witness value, schedule pending
//     reads first (each locks in the disagreement), then release whatever
//     remains.
//
// This is exactly the adversary structure behind the Theorem 7 bound: the
// protocol survives only if no conflicting write lands after the first
// success.
type firstMoverEndgame struct {
	locked    bool
	lockedVal value.Value
	attempts  []int
}

// reset clears the endgame for a fresh execution, keeping the attempts
// array.
func (g *firstMoverEndgame) reset() {
	g.locked = false
	g.lockedVal = value.None
	for i := range g.attempts {
		g.attempts[i] = 0
	}
}

// play chooses the next pid given the current conciliator-register value.
func (g *firstMoverEndgame) play(v *View, cur value.Value) int {
	if !g.locked {
		if pid := pendingOfKind(v, OpRead); pid >= 0 {
			g.locked = true
			g.lockedVal = cur
			return pid
		}
		// No reader to lock yet; keep the write pressure up.
		if pid := g.fireWrite(v, value.None); pid >= 0 {
			return pid
		}
		return v.Runnable[0]
	}
	if cur != g.lockedVal {
		// Disagreement is on the table: bank it with readers first.
		if pid := pendingOfKind(v, OpRead); pid >= 0 {
			return pid
		}
		if pid := g.fireWrite(v, value.None); pid >= 0 {
			return pid
		}
		return v.Runnable[0]
	}
	// Memory still shows the witness value: try to flip it.
	if pid := g.fireWrite(v, cur); pid >= 0 {
		return pid
	}
	if pid := pendingOfKind(v, OpRead); pid >= 0 {
		return pid
	}
	return v.Runnable[0]
}

// fireWrite schedules the fewest-attempts pending probabilistic write whose
// value differs from avoid (value.None matches everything); -1 if none.
func (g *firstMoverEndgame) fireWrite(v *View, avoid value.Value) int {
	if g.attempts == nil {
		g.attempts = make([]int, v.N)
	}
	best := -1
	for _, pid := range v.Runnable {
		op := v.Pending[pid]
		if op.Kind != OpProbWrite {
			continue
		}
		if !avoid.IsNone() && op.Val == avoid {
			continue
		}
		if best == -1 || g.attempts[pid] < g.attempts[best] {
			best = pid
		}
	}
	if best >= 0 {
		g.attempts[best]++
	}
	return best
}

// firstWrittenValue returns the value of the lowest-indexed non-⊥ register.
// The first-mover conciliator exposes a single register, so this is "the"
// register's content during the attack window.
func firstWrittenValue(memory []value.Value) (value.Value, bool) {
	for _, m := range memory {
		if !m.IsNone() {
			return m, true
		}
	}
	return value.None, false
}

// pendingOfKind returns the first runnable pid whose pending op has the
// given kind, or -1.
func pendingOfKind(v *View, kind OpKind) int {
	for _, pid := range v.Runnable {
		if v.Pending[pid].Kind == kind {
			return pid
		}
	}
	return -1
}

// FirstMoverAttack is a location-oblivious strategy tuned against
// first-mover conciliators (Chor–Israeli–Li-style protocols and the paper's
// ImpatientFirstMoverConciliator, §5.2). It reconstructs the adversary used
// in the proof of Theorem 7:
//
//   - Opening (no register written): hold back probabilistic writes until
//     *every* runnable process has one pending, so the pool of in-flight
//     attempts is as large as possible; then release attempts
//     cheapest-first (fewest prior attempts, i.e. smallest current write
//     probability), spending as little of the Σpᵢ budget as possible
//     before a success lands.
//   - Endgame (after the first success): lock in a witness reader, then
//     fire the conflicting pending writes (see firstMoverEndgame).
//
// Everything it consults is legal for a location-oblivious adversary:
// pending operation *types and values*, register *contents*, and its own
// memory of how many attempts each process has made.
type FirstMoverAttack struct {
	tracker  concTracker
	endgame  firstMoverEndgame
	attempts []int
	next     int
}

// NewFirstMoverAttack returns the attack scheduler.
func NewFirstMoverAttack() *FirstMoverAttack { return &FirstMoverAttack{} }

// Next implements Scheduler.
func (s *FirstMoverAttack) Next(v *View) int {
	phase, cur := s.tracker.observe(v)
	switch phase {
	case phaseEndgame:
		return s.endgame.play(v, cur)
	case phaseNeutral:
		// Outside conciliator rounds (e.g. inside ratifiers): neutral
		// round-robin, and reset the endgame for the next round.
		s.endgame = firstMoverEndgame{}
		return s.roundRobin(v)
	}
	// Pool building: advance processes that are *not* yet poised to write,
	// so the pending-write pool grows.
	for _, pid := range v.Runnable {
		if v.Pending[pid].Kind != OpProbWrite {
			return pid
		}
	}
	// All runnable processes have a pending probabilistic write: release
	// the cheapest attempt.
	if s.attempts == nil {
		s.attempts = make([]int, v.N)
	}
	best := -1
	for _, pid := range v.Runnable {
		if best == -1 || s.attempts[pid] < s.attempts[best] {
			best = pid
		}
	}
	s.attempts[best]++
	return best
}

// roundRobin cycles through runnable processes.
func (s *FirstMoverAttack) roundRobin(v *View) int {
	for i := 0; i < v.N; i++ {
		pid := (s.next + i) % v.N
		if v.Pending[pid].Valid {
			s.next = (pid + 1) % v.N
			return pid
		}
	}
	return v.Runnable[0]
}

// Seed implements Scheduler (deterministic strategy; resets the attack
// state accumulated over the previous execution).
func (s *FirstMoverAttack) Seed(*xrand.Source) {
	s.tracker.reset()
	s.endgame.reset()
	for i := range s.attempts {
		s.attempts[i] = 0
	}
	s.next = 0
}

// Name implements Scheduler.
func (s *FirstMoverAttack) Name() string { return "first-mover-attack" }

// MinPower implements Scheduler.
func (s *FirstMoverAttack) MinPower() Power { return LocationOblivious }

// EagerWriteAttack is a simpler location-oblivious attack: it releases
// pending probabilistic writes as soon as they appear (spending the Σpᵢ
// budget faster, which keeps more processes mid-loop when the first success
// lands), then plays the same witness-and-flip endgame.
type EagerWriteAttack struct {
	tracker concTracker
	endgame firstMoverEndgame
	next    int
}

// NewEagerWriteAttack returns the attack scheduler.
func NewEagerWriteAttack() *EagerWriteAttack { return &EagerWriteAttack{} }

// Next implements Scheduler.
func (s *EagerWriteAttack) Next(v *View) int {
	phase, cur := s.tracker.observe(v)
	if phase == phaseEndgame {
		return s.endgame.play(v, cur)
	}
	if phase == phaseNeutral {
		s.endgame = firstMoverEndgame{}
	}
	// Opening and pool phase: plain round-robin — writes fire as soon as
	// their turn comes, keeping every process one step from a fresh attempt
	// when the first success lands.
	for i := 0; i < v.N; i++ {
		pid := (s.next + i) % v.N
		if v.Pending[pid].Valid {
			s.next = (pid + 1) % v.N
			return pid
		}
	}
	return v.Runnable[0]
}

// Seed implements Scheduler (deterministic strategy; resets the attack
// state accumulated over the previous execution).
func (s *EagerWriteAttack) Seed(*xrand.Source) {
	s.tracker.reset()
	s.endgame.reset()
	s.next = 0
}

// Name implements Scheduler.
func (s *EagerWriteAttack) Name() string { return "eager-write-attack" }

// MinPower implements Scheduler.
func (s *EagerWriteAttack) MinPower() Power { return LocationOblivious }

// StaleReadAttack is a value-oblivious strategy that exploits *regular*
// register semantics (Hadzilacos–Hu–Toueg): whenever a read and a write are
// simultaneously pending on the same register, it fires the write first and
// then releases the read, so the read overlaps the write and may resolve to
// the stale pre-write value. Against atomic registers the same schedule is
// harmless — the read simply returns the new value — which is exactly the
// separation the regular-register tests and E21 measure. Everything it
// consults (pending operation kinds and locations, its own memory of which
// registers it poisoned) is legal for a value-oblivious adversary.
type StaleReadAttack struct {
	// stale marks registers written over while a read was pending on them:
	// any still-pending read on such a register carries a stale invocation
	// snapshot worth cashing in.
	stale map[register.Reg]bool
	next  int
}

// NewStaleReadAttack returns the attack scheduler.
func NewStaleReadAttack() *StaleReadAttack { return &StaleReadAttack{} }

// Next implements Scheduler.
func (s *StaleReadAttack) Next(v *View) int {
	if s.stale == nil {
		s.stale = make(map[register.Reg]bool)
	}
	// A pending read on a register we already poisoned: release it now,
	// while its snapshot is still stale.
	for _, pid := range v.Runnable {
		op := v.Pending[pid]
		if op.Kind == OpRead && op.Reg >= 0 && s.stale[op.Reg] {
			delete(s.stale, op.Reg)
			return pid
		}
	}
	// A write poised over a register some other process is mid-read on:
	// land it, creating the overlap a regular register lets us exploit.
	for _, pid := range v.Runnable {
		op := v.Pending[pid]
		if (op.Kind != OpWrite && op.Kind != OpProbWrite) || op.Reg < 0 {
			continue
		}
		for _, rd := range v.Runnable {
			if rd == pid {
				continue
			}
			rop := v.Pending[rd]
			if rop.Kind == OpRead && rop.Reg == op.Reg {
				s.stale[op.Reg] = true
				return pid
			}
		}
	}
	// No overlap to engineer: neutral round-robin keeps the run moving.
	for i := 0; i < v.N; i++ {
		pid := (s.next + i) % v.N
		if v.Pending[pid].Valid {
			s.next = (pid + 1) % v.N
			return pid
		}
	}
	return v.Runnable[0]
}

// Seed implements Scheduler (deterministic strategy; resets the poisoned-
// register memory accumulated over the previous execution).
func (s *StaleReadAttack) Seed(*xrand.Source) {
	clear(s.stale)
	s.next = 0
}

// Name implements Scheduler.
func (s *StaleReadAttack) Name() string { return "stale-read-attack" }

// MinPower implements Scheduler.
func (s *StaleReadAttack) MinPower() Power { return ValueOblivious }

// SplitVote is a value-oblivious strategy that tries to defeat agreement
// detection by running the processes in two isolated waves: first every even
// pid to completion of as many steps as possible, then the odds. Against a
// correct ratifier it can at worst slow things down (coherence is
// deterministic); it exists to stress-test coherence under maximally skewed
// interleavings.
type SplitVote struct{}

// NewSplitVote returns the scheduler.
func NewSplitVote() *SplitVote { return &SplitVote{} }

// Next implements Scheduler.
func (s *SplitVote) Next(v *View) int {
	for _, pid := range v.Runnable {
		if pid%2 == 0 {
			return pid
		}
	}
	return v.Runnable[0]
}

// Seed implements Scheduler (deterministic strategy).
func (s *SplitVote) Seed(*xrand.Source) {}

// Name implements Scheduler.
func (s *SplitVote) Name() string { return "split-vote" }

// MinPower implements Scheduler.
func (s *SplitVote) MinPower() Power { return ValueOblivious }

// AdaptiveSpoiler is a strong-adversary strategy used to demonstrate *why*
// the paper's conciliators need the probabilistic-write assumption: once a
// register holds a value it alternates between committing a victim (letting
// one pending read observe the current value) and firing a pending write
// that conflicts with it. Against deterministic first-mover protocols every
// victim observes a different value and agreement probability collapses;
// against probabilistic writes the "conflicting write" step is just a coin
// the adversary cannot load, and the Theorem 7 bound survives.
type AdaptiveSpoiler struct {
	wantWrite bool
}

// NewAdaptiveSpoiler returns the scheduler.
func NewAdaptiveSpoiler() *AdaptiveSpoiler { return &AdaptiveSpoiler{} }

// Next implements Scheduler.
func (s *AdaptiveSpoiler) Next(v *View) int {
	cur, written := firstWrittenValue(v.Memory)
	if !written {
		// Arm the attack: advance readers so writes queue up, then let the
		// first write land.
		if pid := pendingOfKind(v, OpRead); pid >= 0 {
			return pid
		}
		for _, pid := range v.Runnable {
			op := v.Pending[pid]
			if op.Kind == OpWrite || op.Kind == OpProbWrite {
				return pid
			}
		}
		return v.Runnable[0]
	}
	conflicting := -1
	for _, pid := range v.Runnable {
		op := v.Pending[pid]
		if (op.Kind == OpWrite || op.Kind == OpProbWrite) && !op.Val.IsNone() && op.Val != cur {
			conflicting = pid
			break
		}
	}
	if s.wantWrite {
		if conflicting >= 0 {
			s.wantWrite = false
			return conflicting
		}
		if pid := pendingOfKind(v, OpRead); pid >= 0 {
			return pid
		}
		return v.Runnable[0]
	}
	// Commit a victim to the current value before spoiling it.
	if pid := pendingOfKind(v, OpRead); pid >= 0 {
		s.wantWrite = true
		return pid
	}
	if conflicting >= 0 {
		return conflicting
	}
	return v.Runnable[0]
}

// Seed implements Scheduler (deterministic strategy; resets the
// commit/spoil alternation).
func (s *AdaptiveSpoiler) Seed(*xrand.Source) { s.wantWrite = false }

// Name implements Scheduler.
func (s *AdaptiveSpoiler) Name() string { return "adaptive-spoiler" }

// MinPower implements Scheduler.
func (s *AdaptiveSpoiler) MinPower() Power { return Adaptive }
