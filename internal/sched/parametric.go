package sched

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/modular-consensus/modcon/internal/xrand"
)

// This file defines the parameterized adversary family behind
// internal/advsearch: a single scheduler shape whose knobs (base policy,
// per-pid weights, stall/burst phases, and condition→action rules) span the
// hand-written attack catalog, plus a canonical text codec so any point in
// the family is a named, reproducible config.
//
// Grammar (mirrors fault.Plan): a config is ";"-separated specs, each
// "kind:key=value,key=value". The first spec must be kind "adv" (the family
// head); every following spec is a "rule":
//
//	adv:power=<class>,base=<policy>[,w=W0:W1:...][,phase=P/B/F]
//	rule:when=<cond>[:K],do=<act>
//
// Rules are consulted in order on every scheduling decision: the first rule
// whose condition holds and whose action yields a runnable pid wins;
// otherwise the base policy decides over the phase-restricted candidate set.
// ParseParametric and ParamConfig.String round-trip: String emits the
// canonical spelling, and parsing the canonical spelling reproduces the
// config exactly (FuzzParseParametric pins this).

// BasePolicy is the fallback scheduling policy of a Parametric adversary,
// used when no rule fires. All base policies are implementable by an
// oblivious adversary.
type BasePolicy int

const (
	// BaseRoundRobin cycles through the candidate pids.
	BaseRoundRobin BasePolicy = iota + 1
	// BaseLockstep picks the candidate scheduled fewest times so far,
	// keeping processes maximally synchronized (the Laggard shape).
	BaseLockstep
	// BaseFrontrun picks the candidate scheduled most times so far, driving
	// one process far ahead of the rest.
	BaseFrontrun
	// BaseRandom picks a candidate uniformly from the adversary's private
	// randomness stream.
	BaseRandom
	// BaseWeighted picks the candidate with the largest weight (ties to the
	// lowest pid); weights index per pid modulo the weight vector length.
	BaseWeighted
)

// String names the base policy in the config grammar.
func (b BasePolicy) String() string {
	switch b {
	case BaseRoundRobin:
		return "rr"
	case BaseLockstep:
		return "lockstep"
	case BaseFrontrun:
		return "frontrun"
	case BaseRandom:
		return "random"
	case BaseWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("base(%d)", int(b))
	}
}

func parseBasePolicy(s string) (BasePolicy, error) {
	for b := BaseRoundRobin; b <= BaseWeighted; b++ {
		if b.String() == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown base policy %q", s)
}

// Cond is a rule trigger condition over the adversary's view.
type Cond int

const (
	// CondAlways holds on every step.
	CondAlways Cond = iota + 1
	// CondStepGE holds once the execution's work count reaches K.
	CondStepGE
	// CondStepLT holds while the execution's work count is below K.
	CondStepLT
	// CondProbPending holds when any runnable process has a pending
	// probabilistic write (needs operation-type visibility).
	CondProbPending
	// CondAllProb holds when every runnable process has a pending
	// probabilistic write — the pool is full (needs type visibility).
	CondAllProb
	// CondInFlight holds when any pending write is in its invoke/take-effect
	// window under non-atomic register semantics (needs type visibility;
	// never holds under register.Atomic).
	CondInFlight
	// CondMemWritten holds once any visible register holds a non-⊥ value
	// (needs memory visibility).
	CondMemWritten
	// CondConflict holds when some pending write's value differs from the
	// first written register's content (needs memory and value visibility).
	CondConflict
)

// String names the condition in the config grammar (without the :K argument
// of the step conditions).
func (c Cond) String() string {
	switch c {
	case CondAlways:
		return "always"
	case CondStepGE:
		return "step-ge"
	case CondStepLT:
		return "step-lt"
	case CondProbPending:
		return "prob-pending"
	case CondAllProb:
		return "all-prob"
	case CondInFlight:
		return "in-flight"
	case CondMemWritten:
		return "mem-written"
	case CondConflict:
		return "conflict"
	default:
		return fmt.Sprintf("cond(%d)", int(c))
	}
}

func parseCond(s string) (Cond, error) {
	for c := CondAlways; c <= CondConflict; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown rule condition %q", s)
}

// condPower returns the weakest class that may evaluate the condition.
func condPower(c Cond) Power {
	switch c {
	case CondAlways, CondStepGE, CondStepLT:
		return Oblivious
	case CondProbPending, CondAllProb, CondInFlight:
		return ValueOblivious
	default:
		return LocationOblivious
	}
}

// Act is a rule action: a targeted choice among the candidate pids. An
// action that matches no candidate yields nothing and the next rule (or the
// base policy) decides.
type Act int

const (
	// ActLowest picks the lowest candidate pid.
	ActLowest Act = iota + 1
	// ActWeighted picks the largest-weight candidate (ties to lowest pid).
	ActWeighted
	// ActHoldProb picks a candidate whose pending operation is NOT a
	// probabilistic write — holding attempts back to grow the in-flight pool
	// (the FirstMoverAttack opening).
	ActHoldProb
	// ActFireProb releases the first pending probabilistic write.
	ActFireProb
	// ActFireCheapestProb releases the pending probabilistic write this
	// adversary has released fewest times — the cheapest share of the Σpᵢ
	// budget.
	ActFireCheapestProb
	// ActFireRead schedules the first pending read (locks in a witness).
	ActFireRead
	// ActFireWrite schedules the first pending deterministic write.
	ActFireWrite
	// ActFireConflict schedules a pending write whose value conflicts with
	// the first written register's content (the disagreement-forcing move).
	ActFireConflict
)

// String names the action in the config grammar.
func (a Act) String() string {
	switch a {
	case ActLowest:
		return "lowest"
	case ActWeighted:
		return "weighted"
	case ActHoldProb:
		return "hold-prob"
	case ActFireProb:
		return "fire-prob"
	case ActFireCheapestProb:
		return "fire-cheapest-prob"
	case ActFireRead:
		return "fire-read"
	case ActFireWrite:
		return "fire-write"
	case ActFireConflict:
		return "fire-conflict"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

func parseAct(s string) (Act, error) {
	for a := ActLowest; a <= ActFireConflict; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown rule action %q", s)
}

// actPower returns the weakest class that may perform the action.
func actPower(a Act) Power {
	switch a {
	case ActLowest, ActWeighted:
		return Oblivious
	case ActFireConflict:
		return LocationOblivious
	default:
		return ValueOblivious
	}
}

// CondsFor returns the conditions an adversary of class p may evaluate, in
// declaration order — the condition pool the adversary search draws from
// when generating candidates within a power class.
func CondsFor(p Power) []Cond {
	var out []Cond
	for c := CondAlways; c <= CondConflict; c++ {
		if condPower(c) <= p {
			out = append(out, c)
		}
	}
	return out
}

// ActsFor returns the actions an adversary of class p may perform, in
// declaration order (the search's action pool; see CondsFor).
func ActsFor(p Power) []Act {
	var out []Act
	for a := ActLowest; a <= ActFireConflict; a++ {
		if actPower(a) <= p {
			out = append(out, a)
		}
	}
	return out
}

// ParamRule is one condition→action rule of a Parametric adversary.
type ParamRule struct {
	// When is the trigger condition.
	When Cond
	// K parameterizes the step conditions (CondStepGE, CondStepLT); it must
	// be zero for every other condition.
	K int
	// Do is the action taken when the condition holds.
	Do Act
}

// Validation caps. They bound configs to sizes the search can enumerate and
// the codec can round-trip without pathological blowup.
const (
	maxParamRules   = 16
	maxParamWeights = 64
	maxParamWeight  = 1 << 20
	maxParamStepK   = 1 << 30
	maxParamPhase   = 1 << 16
)

// ParamConfig is one point in the parametric adversary family. The zero
// value is not valid; build configs via ParseParametric or fill the fields
// and call NewParametric (which validates).
type ParamConfig struct {
	// Power is the declared adversary class; the runtime builds views at
	// exactly this power. It must be at least RequiredPower (a config may
	// declare a stronger class than its features need, which is how the
	// search fixes the class axis). Zero means "derive RequiredPower".
	Power Power
	// Base is the fallback policy when no rule fires.
	Base BasePolicy
	// Weights are per-pid priorities for BaseWeighted/ActWeighted; pid i has
	// weight Weights[i%len(Weights)]. Required when a weighted policy or
	// action is used; at least one weight must be positive.
	Weights []int
	// PhasePeriod, when nonzero, enables stall/burst phases: scheduling
	// decision d belongs to the burst when d%PhasePeriod < PhaseBurst, and
	// candidates are then restricted to pids below PhaseFocus (outside the
	// burst, to pids at or above it). An empty restriction falls back to all
	// runnable pids, so the adversary stays fair enough to be admissible.
	PhasePeriod int
	// PhaseBurst is the burst length, in [1, PhasePeriod-1].
	PhaseBurst int
	// PhaseFocus is the pid split point of the phase restriction.
	PhaseFocus int
	// Rules are consulted in order on every decision.
	Rules []ParamRule
}

// RequiredPower returns the weakest adversary class under which every
// feature of the config is implementable.
func (c *ParamConfig) RequiredPower() Power {
	p := Oblivious
	for _, r := range c.Rules {
		if q := condPower(r.When); q > p {
			p = q
		}
		if q := actPower(r.Do); q > p {
			p = q
		}
	}
	return p
}

// Validate checks the config against the family's caps and consistency
// rules; NewParametric and ParseParametric call it for you.
func (c *ParamConfig) Validate() error {
	if c.Power < Oblivious || c.Power > Adaptive {
		return fmt.Errorf("sched: parametric power %d out of range", int(c.Power))
	}
	if req := c.RequiredPower(); c.Power < req {
		return fmt.Errorf("sched: parametric config needs %s power but declares %s", req, c.Power)
	}
	if c.Base < BaseRoundRobin || c.Base > BaseWeighted {
		return fmt.Errorf("sched: parametric base policy %d out of range", int(c.Base))
	}
	if len(c.Weights) > maxParamWeights {
		return fmt.Errorf("sched: parametric weight vector has %d entries (max %d)", len(c.Weights), maxParamWeights)
	}
	positive := false
	for i, w := range c.Weights {
		if w < 0 || w > maxParamWeight {
			return fmt.Errorf("sched: parametric weight %d at index %d out of range [0, %d]", w, i, maxParamWeight)
		}
		if w > 0 {
			positive = true
		}
	}
	if len(c.Weights) > 0 && !positive {
		return fmt.Errorf("sched: parametric weight vector is all zero")
	}
	usesWeights := c.Base == BaseWeighted
	for _, r := range c.Rules {
		if r.Do == ActWeighted {
			usesWeights = true
		}
	}
	if usesWeights && len(c.Weights) == 0 {
		return fmt.Errorf("sched: weighted policy without a weight vector")
	}
	if c.PhasePeriod == 0 {
		if c.PhaseBurst != 0 || c.PhaseFocus != 0 {
			return fmt.Errorf("sched: parametric phase burst/focus set without a period")
		}
	} else {
		if c.PhasePeriod < 2 || c.PhasePeriod > maxParamPhase {
			return fmt.Errorf("sched: parametric phase period %d out of range [2, %d]", c.PhasePeriod, maxParamPhase)
		}
		if c.PhaseBurst < 1 || c.PhaseBurst >= c.PhasePeriod {
			return fmt.Errorf("sched: parametric phase burst %d out of range [1, period)", c.PhaseBurst)
		}
		if c.PhaseFocus < 1 || c.PhaseFocus > maxParamPhase {
			return fmt.Errorf("sched: parametric phase focus %d out of range [1, %d]", c.PhaseFocus, maxParamPhase)
		}
	}
	if len(c.Rules) > maxParamRules {
		return fmt.Errorf("sched: parametric config has %d rules (max %d)", len(c.Rules), maxParamRules)
	}
	for i, r := range c.Rules {
		if r.When < CondAlways || r.When > CondConflict {
			return fmt.Errorf("sched: rule %d condition %d out of range", i, int(r.When))
		}
		if r.Do < ActLowest || r.Do > ActFireConflict {
			return fmt.Errorf("sched: rule %d action %d out of range", i, int(r.Do))
		}
		stepCond := r.When == CondStepGE || r.When == CondStepLT
		if stepCond {
			if r.K < 0 || r.K > maxParamStepK {
				return fmt.Errorf("sched: rule %d step threshold %d out of range [0, %d]", i, r.K, maxParamStepK)
			}
		} else if r.K != 0 {
			return fmt.Errorf("sched: rule %d condition %s takes no threshold", i, r.When)
		}
	}
	return nil
}

// String renders the canonical config text. ParseParametric(c.String())
// reproduces c exactly for any valid config.
func (c *ParamConfig) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adv:power=%s,base=%s", c.Power, c.Base)
	if len(c.Weights) > 0 {
		b.WriteString(",w=")
		for i, w := range c.Weights {
			if i > 0 {
				b.WriteByte(':')
			}
			b.WriteString(strconv.Itoa(w))
		}
	}
	if c.PhasePeriod > 0 {
		fmt.Fprintf(&b, ",phase=%d/%d/%d", c.PhasePeriod, c.PhaseBurst, c.PhaseFocus)
	}
	for _, r := range c.Rules {
		b.WriteString(";rule:when=")
		b.WriteString(r.When.String())
		if r.When == CondStepGE || r.When == CondStepLT {
			fmt.Fprintf(&b, ":%d", r.K)
		}
		fmt.Fprintf(&b, ",do=%s", r.Do)
	}
	return b.String()
}

// ParseParametric parses a parametric adversary config from its text form.
// The grammar is documented at the top of this file; whitespace around
// specs, keys, and values is ignored. Omitting power derives the weakest
// class the features need; declaring a weaker class than required is an
// error.
func ParseParametric(s string) (ParamConfig, error) {
	var cfg ParamConfig
	if strings.TrimSpace(s) == "" {
		return cfg, fmt.Errorf("sched: empty parametric config")
	}
	specs := strings.Split(s, ";")
	for i, spec := range specs {
		kind, params, err := parseParamSpec(spec)
		if err != nil {
			return ParamConfig{}, err
		}
		switch kind {
		case "adv":
			if i != 0 {
				return ParamConfig{}, fmt.Errorf("sched: adv spec must come first in parametric config")
			}
			if err := cfg.parseHead(params); err != nil {
				return ParamConfig{}, err
			}
		case "rule":
			if i == 0 {
				return ParamConfig{}, fmt.Errorf("sched: parametric config must start with an adv spec")
			}
			r, err := parseParamRule(params)
			if err != nil {
				return ParamConfig{}, err
			}
			cfg.Rules = append(cfg.Rules, r)
		default:
			return ParamConfig{}, fmt.Errorf("sched: unknown spec kind %q in parametric config", kind)
		}
	}
	if cfg.Power == 0 {
		cfg.Power = cfg.RequiredPower()
	}
	if err := cfg.Validate(); err != nil {
		return ParamConfig{}, err
	}
	return cfg, nil
}

// parseParamSpec splits one "kind:key=value,..." spec into its kind and a
// duplicate-checked parameter map.
func parseParamSpec(spec string) (string, map[string]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return "", nil, fmt.Errorf("sched: empty spec in parametric config")
	}
	kind, rest, _ := strings.Cut(spec, ":")
	kind = strings.TrimSpace(kind)
	params := make(map[string]string)
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return kind, params, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" {
			return "", nil, fmt.Errorf("sched: malformed parameter %q in %q", kv, spec)
		}
		if _, dup := params[key]; dup {
			return "", nil, fmt.Errorf("sched: duplicate parameter %q in %q", key, spec)
		}
		params[key] = val
	}
	return kind, params, nil
}

// parseHead fills the adv-spec fields of the config.
func (c *ParamConfig) parseHead(params map[string]string) error {
	for key, val := range params {
		switch key {
		case "power":
			p, err := parsePowerName(val)
			if err != nil {
				return err
			}
			c.Power = p
		case "base":
			b, err := parseBasePolicy(val)
			if err != nil {
				return err
			}
			c.Base = b
		case "w":
			for _, field := range strings.Split(val, ":") {
				w, err := strconv.Atoi(strings.TrimSpace(field))
				if err != nil {
					return fmt.Errorf("sched: bad weight %q: %v", field, err)
				}
				c.Weights = append(c.Weights, w)
			}
		case "phase":
			parts := strings.Split(val, "/")
			if len(parts) != 3 {
				return fmt.Errorf("sched: phase %q is not period/burst/focus", val)
			}
			var err error
			if c.PhasePeriod, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
				return fmt.Errorf("sched: bad phase period %q: %v", parts[0], err)
			}
			if c.PhaseBurst, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
				return fmt.Errorf("sched: bad phase burst %q: %v", parts[1], err)
			}
			if c.PhaseFocus, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil {
				return fmt.Errorf("sched: bad phase focus %q: %v", parts[2], err)
			}
		default:
			return fmt.Errorf("sched: unknown adv parameter %q", key)
		}
	}
	if c.Base == 0 {
		return fmt.Errorf("sched: adv spec missing required parameter base")
	}
	return nil
}

// parseParamRule parses one rule spec's parameters.
func parseParamRule(params map[string]string) (ParamRule, error) {
	var r ParamRule
	for key, val := range params {
		switch key {
		case "when":
			name, karg, hasK := strings.Cut(val, ":")
			cond, err := parseCond(strings.TrimSpace(name))
			if err != nil {
				return ParamRule{}, err
			}
			r.When = cond
			stepCond := cond == CondStepGE || cond == CondStepLT
			if stepCond != hasK {
				return ParamRule{}, fmt.Errorf("sched: condition %q %s a :K threshold", val, map[bool]string{true: "requires", false: "does not take"}[stepCond])
			}
			if hasK {
				k, err := strconv.Atoi(strings.TrimSpace(karg))
				if err != nil {
					return ParamRule{}, fmt.Errorf("sched: bad step threshold %q: %v", karg, err)
				}
				r.K = k
			}
		case "do":
			act, err := parseAct(val)
			if err != nil {
				return ParamRule{}, err
			}
			r.Do = act
		default:
			return ParamRule{}, fmt.Errorf("sched: unknown rule parameter %q", key)
		}
	}
	if r.When == 0 || r.Do == 0 {
		return ParamRule{}, fmt.Errorf("sched: rule spec requires both when and do")
	}
	return r, nil
}

// ParsePower parses a power-class name as spelled by Power.String
// ("oblivious", "value-oblivious", "location-oblivious", "adaptive") — the
// form CLI flags and config texts use.
func ParsePower(s string) (Power, error) { return parsePowerName(s) }

// parsePowerName parses a power-class name as spelled by Power.String.
func parsePowerName(s string) (Power, error) {
	for p := Oblivious; p <= Adaptive; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown power class %q", s)
}

// Parametric is the configurable adversary defined by a ParamConfig. It is
// stateful like every strategy here (per-pid schedule counts, release
// counts, a phase clock) and resets all of it in Seed, so a pooled engine
// can reuse one instance across trials.
type Parametric struct {
	cfg ParamConfig
	src *xrand.Source

	chosen    int    // scheduling decisions made this execution (phase clock)
	next      int    // round-robin cursor
	stepCount []int  // per-pid times scheduled
	attempts  []int  // per-pid probabilistic-write releases (fire-cheapest-prob)
	cand      []int  // scratch: phase-restricted candidate set
	member    []bool // scratch: candidate membership for the rr scan
}

// NewParametric validates the config and builds the adversary. A zero Power
// is normalized to the config's RequiredPower. The config is copied, so the
// caller may reuse or mutate its slices afterwards.
func NewParametric(cfg ParamConfig) (*Parametric, error) {
	if cfg.Power == 0 {
		cfg.Power = cfg.RequiredPower()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.Weights = append([]int(nil), cfg.Weights...)
	cfg.Rules = append([]ParamRule(nil), cfg.Rules...)
	return &Parametric{cfg: cfg}, nil
}

// NewParametricFromString parses a config text and builds the adversary.
func NewParametricFromString(config string) (*Parametric, error) {
	cfg, err := ParseParametric(config)
	if err != nil {
		return nil, err
	}
	return NewParametric(cfg)
}

// Config returns a copy of the adversary's validated configuration.
func (p *Parametric) Config() ParamConfig {
	cfg := p.cfg
	cfg.Weights = append([]int(nil), cfg.Weights...)
	cfg.Rules = append([]ParamRule(nil), cfg.Rules...)
	return cfg
}

// Seed implements Scheduler.
func (p *Parametric) Seed(src *xrand.Source) {
	p.src = src
	p.chosen = 0
	p.next = 0
	for i := range p.stepCount {
		p.stepCount[i] = 0
	}
	for i := range p.attempts {
		p.attempts[i] = 0
	}
}

// Name implements Scheduler. The name embeds the canonical config text, so
// any report that prints scheduler names identifies the exact adversary.
func (p *Parametric) Name() string { return "parametric:" + p.cfg.String() }

// MinPower implements Scheduler: the declared class of the config.
func (p *Parametric) MinPower() Power { return p.cfg.Power }

// Next implements Scheduler.
func (p *Parametric) Next(v *View) int {
	if len(p.stepCount) < v.N {
		p.stepCount = make([]int, v.N)
		p.attempts = make([]int, v.N)
		p.member = make([]bool, v.N)
	}
	cand := p.candidates(v)
	pid := -1
	for i := range p.cfg.Rules {
		r := &p.cfg.Rules[i]
		if !p.condHolds(r.When, r.K, v) {
			continue
		}
		if q := p.act(r.Do, v, cand); q >= 0 {
			pid = q
			break
		}
	}
	if pid < 0 {
		pid = p.base(v, cand)
	}
	p.chosen++
	p.stepCount[pid]++
	return pid
}

// candidates returns the phase-restricted candidate set (a subset of
// v.Runnable, in ascending order), falling back to all runnable pids when
// the restriction would be empty.
func (p *Parametric) candidates(v *View) []int {
	if p.cfg.PhasePeriod == 0 {
		return v.Runnable
	}
	focusLow := p.chosen%p.cfg.PhasePeriod < p.cfg.PhaseBurst
	p.cand = p.cand[:0]
	for _, pid := range v.Runnable {
		if (pid < p.cfg.PhaseFocus) == focusLow {
			p.cand = append(p.cand, pid)
		}
	}
	if len(p.cand) == 0 {
		return v.Runnable
	}
	return p.cand
}

// condHolds evaluates a rule condition against the view.
func (p *Parametric) condHolds(c Cond, k int, v *View) bool {
	switch c {
	case CondAlways:
		return true
	case CondStepGE:
		return v.Step >= k
	case CondStepLT:
		return v.Step < k
	case CondProbPending:
		for _, pid := range v.Runnable {
			if v.Pending[pid].Kind == OpProbWrite {
				return true
			}
		}
		return false
	case CondAllProb:
		for _, pid := range v.Runnable {
			if v.Pending[pid].Kind != OpProbWrite {
				return false
			}
		}
		return len(v.Runnable) > 0
	case CondInFlight:
		for _, pid := range v.Runnable {
			if v.Pending[pid].InFlight {
				return true
			}
		}
		return false
	case CondMemWritten:
		return v.AnyMemoryWritten()
	case CondConflict:
		return p.conflictPid(v, v.Runnable) >= 0
	default:
		return false
	}
}

// act performs a rule action over the candidate set; -1 when no candidate
// matches.
func (p *Parametric) act(a Act, v *View, cand []int) int {
	switch a {
	case ActLowest:
		return cand[0]
	case ActWeighted:
		return p.weightiest(cand)
	case ActHoldProb:
		for _, pid := range cand {
			op := v.Pending[pid]
			if op.Valid && op.Kind != OpProbWrite {
				return pid
			}
		}
		return -1
	case ActFireProb:
		for _, pid := range cand {
			if v.Pending[pid].Kind == OpProbWrite {
				return pid
			}
		}
		return -1
	case ActFireCheapestProb:
		best := -1
		for _, pid := range cand {
			if v.Pending[pid].Kind != OpProbWrite {
				continue
			}
			if best == -1 || p.attempts[pid] < p.attempts[best] {
				best = pid
			}
		}
		if best >= 0 {
			p.attempts[best]++
		}
		return best
	case ActFireRead:
		for _, pid := range cand {
			if v.Pending[pid].Kind == OpRead {
				return pid
			}
		}
		return -1
	case ActFireWrite:
		for _, pid := range cand {
			if v.Pending[pid].Kind == OpWrite {
				return pid
			}
		}
		return -1
	case ActFireConflict:
		return p.conflictPid(v, cand)
	default:
		return -1
	}
}

// conflictPid returns the first pid in set whose pending write value
// conflicts with the first written register's content; -1 if none.
func (p *Parametric) conflictPid(v *View, set []int) int {
	cur, ok := firstWrittenValue(v.Memory)
	if !ok {
		return -1
	}
	for _, pid := range set {
		op := v.Pending[pid]
		if op.Kind != OpWrite && op.Kind != OpProbWrite {
			continue
		}
		if !op.Val.IsNone() && op.Val != cur {
			return pid
		}
	}
	return -1
}

// base applies the fallback policy over the candidate set.
func (p *Parametric) base(v *View, cand []int) int {
	switch p.cfg.Base {
	case BaseRoundRobin:
		for _, pid := range cand {
			p.member[pid] = true
		}
		pick := cand[0]
		for i := 0; i < v.N; i++ {
			pid := (p.next + i) % v.N
			if pid < len(p.member) && p.member[pid] {
				pick = pid
				break
			}
		}
		for _, pid := range cand {
			p.member[pid] = false
		}
		p.next = (pick + 1) % v.N
		return pick
	case BaseLockstep:
		best := cand[0]
		for _, pid := range cand[1:] {
			if p.stepCount[pid] < p.stepCount[best] {
				best = pid
			}
		}
		return best
	case BaseFrontrun:
		best := cand[0]
		for _, pid := range cand[1:] {
			if p.stepCount[pid] > p.stepCount[best] {
				best = pid
			}
		}
		return best
	case BaseRandom:
		return cand[p.src.Intn(len(cand))]
	case BaseWeighted:
		return p.weightiest(cand)
	default:
		return cand[0]
	}
}

// weightiest returns the largest-weight pid of the set (ties to the lowest
// pid, which comes first in the ascending candidate order).
func (p *Parametric) weightiest(set []int) int {
	best := set[0]
	for _, pid := range set[1:] {
		if p.weight(pid) > p.weight(best) {
			best = pid
		}
	}
	return best
}

// weight returns pid's priority weight (zero without a weight vector).
func (p *Parametric) weight(pid int) int {
	if len(p.cfg.Weights) == 0 {
		return 0
	}
	return p.cfg.Weights[pid%len(p.cfg.Weights)]
}
