// Package sched defines the adversary scheduler of the asynchronous
// shared-memory model and a portfolio of concrete adversary strategies.
//
// The model (§2 of the paper): every process that has not halted has exactly
// one pending operation; an execution is constructed by repeatedly applying
// pending operations, and the choice of which pending operation occurs next
// is made by an adversary — a function from (its view of) the partial
// execution to a process id.
//
// Adversary strength (§2.1) is modeled by Power, which controls which fields
// of the View the runtime populates:
//
//   - Oblivious: sees only the execution length and which processes are
//     still runnable.
//   - ValueOblivious: additionally sees pending operation types and
//     locations, but neither register contents nor pending write values.
//   - LocationOblivious: sees register contents and pending write values,
//     but not pending operation locations. Probabilistic writes are safe
//     against this adversary: their coins are resolved only at execution
//     time, so no scheduler can condition on the outcome.
//   - Adaptive: sees everything that exists before the step (it still cannot
//     predict coins that have not been flipped).
//
// Schedulers are deliberately stateful: an adversary is allowed to remember
// everything it has observed.
package sched

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// Power is the information class of an adversary (§2.1).
type Power int

const (
	// Oblivious adversaries see nothing but time and liveness.
	Oblivious Power = iota + 1
	// ValueOblivious adversaries see operation types and locations.
	ValueOblivious
	// LocationOblivious adversaries see contents and pending values but not
	// locations; this is the class that admits probabilistic writes.
	LocationOblivious
	// Adaptive adversaries (the strong adversary) see everything.
	Adaptive
)

// String names the power class.
func (p Power) String() string {
	switch p {
	case Oblivious:
		return "oblivious"
	case ValueOblivious:
		return "value-oblivious"
	case LocationOblivious:
		return "location-oblivious"
	case Adaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("power(%d)", int(p))
	}
}

// OpKind is the type of a pending operation, as visible to adversaries that
// may distinguish operation types.
type OpKind int

const (
	// OpRead is a register read.
	OpRead OpKind = iota + 1
	// OpWrite is a deterministic register write.
	OpWrite
	// OpProbWrite is a probabilistic write (takes effect with some
	// probability resolved at execution time).
	OpProbWrite
	// OpCollect is a cheap-collect of a register array.
	OpCollect
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpProbWrite:
		return "probwrite"
	case OpCollect:
		return "collect"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op describes one pending operation, restricted to the adversary's power:
// fields the adversary may not observe are zeroed by the runtime.
type Op struct {
	// Valid is false for processes with no pending operation (halted or
	// crashed processes).
	Valid bool
	// Kind is the operation type (all powers above Oblivious).
	Kind OpKind
	// Reg is the target register; -1 when hidden (LocationOblivious) or for
	// Oblivious views.
	Reg register.Reg
	// Val is the pending write value; value.None when hidden
	// (Oblivious, ValueOblivious) or for reads.
	Val value.Value
	// ProbNum/ProbDen expose the attempt probability of a probabilistic
	// write (LocationOblivious and Adaptive; the probability is part of the
	// pending value/type, not its location).
	ProbNum, ProbDen uint64
	// InFlight marks a pending write (OpWrite/OpProbWrite) that has been
	// invoked but not yet taken effect — the window a regular register lets
	// an overlapping read exploit. Populated for ValueOblivious and
	// stronger views when the execution runs under non-atomic register
	// semantics; always false under register.Atomic, where the window is
	// unobservable by definition.
	InFlight bool
}

// View is what the adversary sees when choosing the next step.
//
// Buffer-reuse contract (copy-on-escape): the View pointer and its Runnable,
// Pending, and Memory slices are owned by the runtime and reused on every
// step — the step path is allocation-free by design. A Scheduler may read
// them freely during Next, but must not mutate them and must not retain any
// of them past Next's return; a strategy that wants history (e.g. a memory
// baseline to detect the first landed write) must copy what it needs into
// its own state, as concTracker does with append(dst[:0], v.Memory...).
type View struct {
	// Power is the information class this view was built for.
	Power Power
	// Semantics is the register consistency model of the execution. Under
	// register.Interposed the runtime additionally blunts strong views:
	// pending operation values and probabilities are hidden (the
	// linearizable implementation layer conceals in-flight contents from
	// the adversary, per Attiya–Enea–Welch), leaving only completed state
	// in Memory.
	Semantics register.Semantics
	// Step counts work-charged operations executed so far.
	Step int
	// N is the number of processes.
	N int
	// Runnable lists the pids with a pending operation, ascending.
	Runnable []int
	// Pending is indexed by pid; entries are power-restricted.
	Pending []Op
	// Memory is the register file contents (LocationOblivious, Adaptive);
	// nil otherwise.
	Memory []value.Value
}

// PendingOf returns the (restricted) pending op of pid.
func (v *View) PendingOf(pid int) Op {
	if pid < 0 || pid >= len(v.Pending) {
		return Op{}
	}
	return v.Pending[pid]
}

// AnyMemoryWritten reports whether any visible register holds a non-⊥ value.
// Helper for first-mover attack strategies watching for the first successful
// write; requires Memory visibility.
func (v *View) AnyMemoryWritten() bool {
	for _, m := range v.Memory {
		if !m.IsNone() {
			return true
		}
	}
	return false
}

// Scheduler chooses the next process to step. Implementations must return a
// pid drawn from view.Runnable; the runtime panics otherwise, because a
// scheduling bug would silently corrupt every measurement built on top.
type Scheduler interface {
	// Next picks the pid whose pending operation executes next.
	Next(view *View) int
	// Seed hands the scheduler its private randomness stream for this
	// execution and resets all per-execution mutable state. The runtime
	// calls it exactly once before the first Next of every execution — a
	// pooled engine reuses one Scheduler across many trials, so any history
	// a strategy accumulates (positions, step counters, attack phase) must
	// be cleared here, not in a constructor. Deterministic schedulers
	// ignore the source but still reset.
	Seed(src *xrand.Source)
	// Name identifies the strategy in reports.
	Name() string
	// MinPower returns the weakest adversary class under which this
	// strategy is implementable. The runtime builds views at exactly this
	// power, so a strategy can never accidentally exploit information its
	// class forbids.
	MinPower() Power
}
