package sched

import (
	"reflect"
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

func TestParametricRoundTrip(t *testing.T) {
	canonical := []string{
		"adv:power=oblivious,base=rr",
		"adv:power=oblivious,base=lockstep",
		"adv:power=oblivious,base=frontrun",
		"adv:power=oblivious,base=random",
		"adv:power=oblivious,base=weighted,w=2:1",
		"adv:power=oblivious,base=rr,phase=8/2/4",
		"adv:power=value-oblivious,base=lockstep;rule:when=prob-pending,do=hold-prob",
		"adv:power=location-oblivious,base=weighted,w=3:0:1,phase=8/2/4;rule:when=mem-written,do=fire-conflict;rule:when=step-ge:100,do=lowest",
		"adv:power=adaptive,base=rr,w=4:1;rule:when=conflict,do=fire-read;rule:when=step-lt:64,do=fire-prob;rule:when=all-prob,do=fire-cheapest-prob;rule:when=in-flight,do=fire-write;rule:when=always,do=weighted",
	}
	for _, want := range canonical {
		cfg, err := ParseParametric(want)
		if err != nil {
			t.Fatalf("Parse(%q): %v", want, err)
		}
		if got := cfg.String(); got != want {
			t.Errorf("String round-trip:\n in  %q\n out %q", want, got)
		}
	}
	// Non-canonical spellings normalize: whitespace is trimmed and an
	// omitted power derives the weakest class the features need.
	for in, want := range map[string]string{
		" adv : power=oblivious , base=rr ":               "adv:power=oblivious,base=rr",
		"adv:base=weighted,w=2:1":                         "adv:power=oblivious,base=weighted,w=2:1",
		"adv:base=rr; rule: when=hold, do=x;":             "", // parse error, checked below
		"adv:base=rr;rule:when=prob-pending,do=hold-prob": "adv:power=value-oblivious,base=rr;rule:when=prob-pending,do=hold-prob",
		"adv:base=rr;rule:when=mem-written,do=lowest":     "adv:power=location-oblivious,base=rr;rule:when=mem-written,do=lowest",
	} {
		if want == "" {
			if _, err := ParseParametric(in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", in)
			}
			continue
		}
		cfg, err := ParseParametric(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := cfg.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParametricParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"rule:when=always,do=lowest",               // must start with adv
		"adv:base=rr;adv:base=rr",                  // adv only first
		"bogus:base=rr",                            // unknown kind
		"adv:power=bogus,base=rr",                  // unknown power
		"adv:base=bogus",                           // unknown base
		"adv:power=oblivious",                      // base required
		"adv:base=rr,base=rr",                      // duplicate key
		"adv:base=rr,junk=1",                       // unknown adv param
		"adv:base=weighted",                        // weighted without weights
		"adv:base=rr,w=0:0",                        // all-zero weights
		"adv:base=rr,w=a:b",                        // non-integer weight
		"adv:base=rr,w=-1:2",                       // negative weight
		"adv:base=rr,phase=1/0/0",                  // period < 2
		"adv:base=rr,phase=4/0/1",                  // burst < 1
		"adv:base=rr,phase=4/4/1",                  // burst >= period
		"adv:base=rr,phase=4/2/0",                  // focus < 1
		"adv:base=rr,phase=4/2",                    // not period/burst/focus
		"adv:base=rr;",                             // empty trailing spec
		"adv:base=rr;rule:do=lowest",               // missing when
		"adv:base=rr;rule:when=always",             // missing do
		"adv:base=rr;rule:when=bogus,do=lowest",    // unknown cond
		"adv:base=rr;rule:when=always,do=bogus",    // unknown act
		"adv:base=rr;rule:when=always:5,do=lowest", // always takes no K
		"adv:base=rr;rule:when=step-ge,do=lowest",  // step-ge requires K
		"adv:base=rr;rule:when=step-ge:x,do=lowest",
		"adv:base=rr;rule:when=always,do=lowest,do=lowest", // duplicate key
		"adv:power=oblivious,base=rr;rule:when=conflict,do=lowest", // declared < required
		"adv:power=value-oblivious,base=rr;rule:when=mem-written,do=lowest",
	}
	for _, in := range bad {
		if _, err := ParseParametric(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
	// Too many rules.
	var b strings.Builder
	b.WriteString("adv:base=rr")
	for i := 0; i <= maxParamRules; i++ {
		b.WriteString(";rule:when=always,do=lowest")
	}
	if _, err := ParseParametric(b.String()); err == nil {
		t.Error("over-cap rule count accepted")
	}
}

func TestParametricRequiredPower(t *testing.T) {
	cases := map[string]Power{
		"adv:base=rr":             Oblivious,
		"adv:base=weighted,w=1:2": Oblivious,
		"adv:base=rr;rule:when=step-ge:5,do=weighted,w=1:2": 0, // invalid: w on rule spec
		"adv:base=rr;rule:when=always,do=hold-prob":         ValueOblivious,
		"adv:base=rr;rule:when=in-flight,do=lowest":         ValueOblivious,
		"adv:base=rr;rule:when=always,do=fire-conflict":     LocationOblivious,
		"adv:base=rr;rule:when=conflict,do=fire-read":       LocationOblivious,
	}
	for in, want := range cases {
		cfg, err := ParseParametric(in)
		if want == 0 {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if cfg.Power != want {
			t.Errorf("Parse(%q) derived power %s, want %s", in, cfg.Power, want)
		}
	}
	// A stronger-than-needed declared class is allowed and preserved.
	cfg, err := ParseParametric("adv:power=adaptive,base=rr")
	if err != nil || cfg.Power != Adaptive {
		t.Fatalf("declared adaptive: cfg=%+v err=%v", cfg, err)
	}
}

func TestParametricBaseBehaviors(t *testing.T) {
	mk := func(config string) *Parametric {
		t.Helper()
		p, err := NewParametricFromString(config)
		if err != nil {
			t.Fatalf("NewParametricFromString(%q): %v", config, err)
		}
		return p
	}
	v := mkView(3, 0, 1, 2)

	got := drive(t, mk("adv:base=rr"), v, 7)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rr sequence %v, want %v", got, want)
	}

	// Lockstep: every process takes k steps before any takes k+1.
	got = drive(t, mk("adv:base=lockstep"), v, 9)
	counts := make([]int, 3)
	for _, pid := range got {
		counts[pid]++
		for _, c := range counts {
			if counts[pid]-c > 1 {
				t.Fatalf("lockstep violated: counts %v after %v", counts, got)
			}
		}
	}

	// Frontrun: sticks to one process.
	got = drive(t, mk("adv:base=frontrun"), v, 6)
	for _, pid := range got {
		if pid != got[0] {
			t.Fatalf("frontrun switched process: %v", got)
		}
	}

	// Weighted: largest weight wins, ties to lowest pid; weights index mod
	// the vector length.
	got = drive(t, mk("adv:base=weighted,w=1:5"), v, 3)
	if got[0] != 1 {
		t.Errorf("weighted chose %d, want pid 1 (weight 5)", got[0])
	}
	got = drive(t, mk("adv:base=weighted,w=2"), v, 3)
	if got[0] != 0 {
		t.Errorf("uniform weights chose %d, want lowest pid 0", got[0])
	}

	// Random: covers everyone, stays within runnable (drive checks).
	got = drive(t, mk("adv:base=random"), v, 300)
	seen := make(map[int]int)
	for _, pid := range got {
		seen[pid]++
	}
	for pid := 0; pid < 3; pid++ {
		if seen[pid] < 40 {
			t.Errorf("random scheduled pid %d only %d/300 times", pid, seen[pid])
		}
	}
}

func TestParametricPhaseRestriction(t *testing.T) {
	// period 4, burst 2, focus 2: decisions 0,1 of each period go to pids
	// <2, decisions 2,3 to pids >=2.
	p, err := NewParametricFromString("adv:base=rr,phase=4/2/2")
	if err != nil {
		t.Fatal(err)
	}
	v := mkView(4, 0, 1, 2, 3)
	got := drive(t, p, v, 8)
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("phased rr sequence %v, want %v", got, want)
	}
	// Empty restriction falls back to all runnable: focus above every pid
	// means the off-burst half would be empty.
	p2, err := NewParametricFromString("adv:base=rr,phase=2/1/64")
	if err != nil {
		t.Fatal(err)
	}
	drive(t, p2, v, 8) // drive fails the test if a non-runnable pid escapes
}

func TestParametricRulesFirstMoverShape(t *testing.T) {
	// A config spelling the FirstMoverAttack strategy inside the family:
	// lock a witness read once memory is written, fire conflicting writes,
	// hold the probabilistic-write pool, release cheapest-first.
	p, err := NewParametricFromString("adv:base=rr" +
		";rule:when=mem-written,do=fire-read" +
		";rule:when=mem-written,do=fire-conflict" +
		";rule:when=prob-pending,do=hold-prob" +
		";rule:when=always,do=fire-cheapest-prob")
	if err != nil {
		t.Fatal(err)
	}
	if p.MinPower() != LocationOblivious {
		t.Fatalf("MinPower = %s, want location-oblivious", p.MinPower())
	}
	p.Seed(xrand.New(1))
	n := 3
	v := &View{Power: LocationOblivious, N: n, Runnable: []int{0, 1, 2},
		Pending: make([]Op, n), Memory: []value.Value{value.None}}
	// Pool phase: hold back the probwrite, advance a reader.
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 5, ProbNum: 1, ProbDen: 4}
	v.Pending[1] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	v.Pending[2] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	if pid := p.Next(v); pid != 1 {
		t.Fatalf("pool phase chose %d, want reader 1", pid)
	}
	// Full pool: release the fewest-attempts probwrite.
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 6, ProbNum: 1, ProbDen: 4}
	v.Pending[2] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 7, ProbNum: 1, ProbDen: 4}
	if pid := p.Next(v); v.Pending[pid].Kind != OpProbWrite {
		t.Fatalf("full pool chose %d, want a probwrite", pid)
	}
	// Memory written: witness reader first.
	v.Memory[0] = 5
	v.Pending[0] = Op{Valid: true, Kind: OpRead, Reg: -1, Val: value.None}
	if pid := p.Next(v); pid != 0 {
		t.Fatalf("endgame chose %d, want witness reader 0", pid)
	}
	// No reader left: fire a conflicting write (value != 5), never the
	// 5-valued attempt.
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite, Reg: -1, Val: 5, ProbNum: 1, ProbDen: 4}
	if pid := p.Next(v); pid == 0 || v.Pending[pid].Val == 5 {
		t.Fatalf("endgame chose %d, want a conflicting probwrite", pid)
	}
}

func TestParametricSeedResetsState(t *testing.T) {
	p, err := NewParametricFromString("adv:base=rr;rule:when=all-prob,do=fire-cheapest-prob")
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	v := &View{Power: ValueOblivious, N: n, Runnable: []int{0, 1}, Pending: make([]Op, n)}
	v.Pending[0] = Op{Valid: true, Kind: OpProbWrite}
	v.Pending[1] = Op{Valid: true, Kind: OpProbWrite}
	run := func() []int {
		p.Seed(xrand.New(9))
		out := make([]int, 0, 4)
		for i := 0; i < 4; i++ {
			out = append(out, p.Next(v))
		}
		return out
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("executions diverge after re-Seed: %v vs %v", first, second)
	}
}

func TestParametricNameAndConfig(t *testing.T) {
	const config = "adv:power=value-oblivious,base=lockstep;rule:when=prob-pending,do=hold-prob"
	p, err := NewParametricFromString(config)
	if err != nil {
		t.Fatal(err)
	}
	if want := "parametric:" + config; p.Name() != want {
		t.Errorf("Name = %q, want %q", p.Name(), want)
	}
	cfg := p.Config()
	cfg.Rules[0].Do = ActFireProb // must not alias the scheduler's copy
	if p.cfg.Rules[0].Do != ActHoldProb {
		t.Error("Config() aliases internal rule slice")
	}
	// NewParametric copies the caller's slices too.
	in := ParamConfig{Base: BaseWeighted, Weights: []int{1, 2}}
	q, err := NewParametric(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Weights[0] = 99
	if q.weight(0) != 1 {
		t.Error("NewParametric aliases caller weight slice")
	}
}

func FuzzParseParametric(f *testing.F) {
	f.Add("adv:power=oblivious,base=rr")
	f.Add("adv:base=weighted,w=3:0:1,phase=8/2/4;rule:when=mem-written,do=fire-conflict")
	f.Add("adv:base=rr;rule:when=step-ge:100,do=lowest;rule:when=all-prob,do=fire-cheapest-prob")
	f.Add("adv:power=adaptive,base=random;rule:when=in-flight,do=fire-write")
	f.Add("adv:base=lockstep;rule:when=prob-pending,do=hold-prob")
	f.Add("rule:when=always,do=lowest")
	f.Add("adv:base=rr,w=-1")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseParametric(s)
		if err != nil {
			return // invalid inputs just need a clean rejection
		}
		canon := cfg.String()
		cfg2, err := ParseParametric(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(cfg, cfg2) {
			t.Fatalf("round-trip changed config:\n in  %#v\n out %#v", cfg, cfg2)
		}
		if canon2 := cfg2.String(); canon2 != canon {
			t.Fatalf("canonical form not stable: %q then %q", canon, canon2)
		}
	})
}
