package sched

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/xrand"
)

// Noisy implements the noisy scheduling model of Aspnes, "Fast deterministic
// consensus in a noisy environment" (§4.2 of the paper): the adversary fixes
// the intended timing of every process's steps in advance, but each step
// time is perturbed by random error that accumulates over time. Eventually
// the cumulative drift pushes some process ahead of all others, which is
// what makes the ratifier-only protocol R terminate.
//
// Process i's k-th operation fires at time
//
//	t(i,k) = t(i,k-1) + interval(i) + sigma*|N(0,1)|-ish jitter
//
// and the scheduler always executes the runnable process with the smallest
// next-fire time. With sigma = 0 and equal intervals this degenerates into a
// deterministic lockstep (pid-order tie-breaking), under which R would never
// terminate — tests use that as a negative control.
type Noisy struct {
	// Sigma is the standard deviation of the per-step Gaussian jitter.
	Sigma float64
	// Intervals optionally sets per-process base step intervals; nil means
	// every process intends one step per time unit.
	Intervals []float64

	src  *xrand.Source
	next []float64
}

// NewNoisy returns a noisy scheduler with jitter sigma.
func NewNoisy(sigma float64) *Noisy {
	if sigma < 0 {
		panic(fmt.Sprintf("sched: negative sigma %v", sigma))
	}
	return &Noisy{Sigma: sigma}
}

// Next implements Scheduler.
func (s *Noisy) Next(v *View) int {
	if len(s.next) == 0 {
		if s.src == nil {
			panic("sched: Noisy used before Seed")
		}
		if cap(s.next) < v.N {
			s.next = make([]float64, v.N)
		} else {
			s.next = s.next[:v.N]
		}
		for i := range s.next {
			s.next[i] = s.interval(i) + s.jitter()
		}
	}
	best := -1
	for _, pid := range v.Runnable {
		if best == -1 || s.next[pid] < s.next[best] {
			best = pid
		}
	}
	s.next[best] += s.interval(best) + s.jitter()
	return best
}

func (s *Noisy) interval(pid int) float64 {
	if s.Intervals == nil {
		return 1
	}
	return s.Intervals[pid]
}

// jitter draws the per-step timing error. The drift must keep times
// monotone, so the error is clamped to keep each inter-step gap positive.
func (s *Noisy) jitter() float64 {
	if s.Sigma == 0 {
		return 0
	}
	e := s.Sigma * s.src.NormFloat64()
	if e < -0.99 {
		e = -0.99
	}
	return e
}

// Seed implements Scheduler. Beyond installing the stream it discards the
// fire-time table (keeping its backing array), so the next execution redraws
// its initial jitter from the fresh stream.
func (s *Noisy) Seed(src *xrand.Source) {
	s.src = src
	s.next = s.next[:0]
}

// Name implements Scheduler.
func (s *Noisy) Name() string { return fmt.Sprintf("noisy(σ=%g)", s.Sigma) }

// MinPower implements Scheduler. The noisy scheduler fixes timings without
// looking at the execution, so it is oblivious.
func (s *Noisy) MinPower() Power { return Oblivious }

// Priority implements the priority-based scheduling restriction of
// Ramamurthy, Moir, and Anderson (§4.2 of the paper): each process has a
// fixed unique priority and every step is taken by the highest-priority
// process with a pending operation.
type Priority struct {
	// Ranks maps pid -> priority rank (0 = highest). Nil means pid order.
	Ranks []int
}

// NewPriority returns a priority scheduler; ranks may be nil for pid order
// (pid 0 is highest priority).
func NewPriority(ranks []int) *Priority {
	var cp []int
	if ranks != nil {
		cp = make([]int, len(ranks))
		copy(cp, ranks)
	}
	return &Priority{Ranks: cp}
}

// Next implements Scheduler.
func (s *Priority) Next(v *View) int {
	best := -1
	for _, pid := range v.Runnable {
		if best == -1 || s.rank(pid) < s.rank(best) {
			best = pid
		}
	}
	return best
}

func (s *Priority) rank(pid int) int {
	if s.Ranks == nil {
		return pid
	}
	return s.Ranks[pid]
}

// Seed implements Scheduler (deterministic strategy).
func (s *Priority) Seed(*xrand.Source) {}

// Name implements Scheduler.
func (s *Priority) Name() string { return "priority" }

// MinPower implements Scheduler.
func (s *Priority) MinPower() Power { return Oblivious }
