package sched

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/xrand"
)

// RoundRobin schedules runnable processes in cyclic pid order. It is the
// canonical oblivious adversary ("schedules processes in a fixed order").
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Next implements Scheduler.
func (s *RoundRobin) Next(v *View) int {
	for i := 0; i < v.N; i++ {
		pid := (s.next + i) % v.N
		if v.Pending[pid].Valid {
			s.next = (pid + 1) % v.N
			return pid
		}
	}
	panic("sched: RoundRobin.Next with no runnable process")
}

// Seed implements Scheduler (no randomness used; resets the cursor).
func (s *RoundRobin) Seed(*xrand.Source) { s.next = 0 }

// Name implements Scheduler.
func (s *RoundRobin) Name() string { return "round-robin" }

// MinPower implements Scheduler.
func (s *RoundRobin) MinPower() Power { return Oblivious }

// FixedOrder repeats a fixed permutation of the processes, skipping halted
// ones: the adversary commits to the entire schedule in advance.
type FixedOrder struct {
	perm []int
	pos  int
}

// NewFixedOrder returns a scheduler cycling through perm. perm must be a
// permutation of [0, n); this is validated on first use against the view.
func NewFixedOrder(perm []int) *FixedOrder {
	cp := make([]int, len(perm))
	copy(cp, perm)
	return &FixedOrder{perm: cp}
}

// Next implements Scheduler.
func (s *FixedOrder) Next(v *View) int {
	if len(s.perm) != v.N {
		panic(fmt.Sprintf("sched: FixedOrder permutation length %d != n=%d", len(s.perm), v.N))
	}
	for i := 0; i < len(s.perm); i++ {
		pid := s.perm[s.pos]
		s.pos = (s.pos + 1) % len(s.perm)
		if pid < 0 || pid >= v.N {
			panic(fmt.Sprintf("sched: FixedOrder entry %d out of range", pid))
		}
		if v.Pending[pid].Valid {
			return pid
		}
	}
	panic("sched: FixedOrder.Next with no runnable process")
}

// Seed implements Scheduler (no randomness used; resets the position).
func (s *FixedOrder) Seed(*xrand.Source) { s.pos = 0 }

// Name implements Scheduler.
func (s *FixedOrder) Name() string { return "fixed-order" }

// MinPower implements Scheduler.
func (s *FixedOrder) MinPower() Power { return Oblivious }

// UniformRandom schedules a uniformly random runnable process at every step.
// Oblivious in the paper's sense: its choices do not depend on the execution
// beyond liveness.
type UniformRandom struct {
	src *xrand.Source
}

// NewUniformRandom returns a uniform random scheduler.
func NewUniformRandom() *UniformRandom { return &UniformRandom{} }

// Next implements Scheduler.
func (s *UniformRandom) Next(v *View) int {
	if s.src == nil {
		panic("sched: UniformRandom used before Seed")
	}
	return v.Runnable[s.src.Intn(len(v.Runnable))]
}

// Seed implements Scheduler.
func (s *UniformRandom) Seed(src *xrand.Source) { s.src = src }

// Name implements Scheduler.
func (s *UniformRandom) Name() string { return "uniform-random" }

// MinPower implements Scheduler.
func (s *UniformRandom) MinPower() Power { return Oblivious }

// Laggard always runs the process that has taken the fewest steps so far,
// keeping the whole system in lockstep. Lockstep is the hardest symmetric
// schedule for first-mover protocols (everybody attempts together), yet it
// needs no knowledge of the execution content, only of its own past choices,
// so it is oblivious.
type Laggard struct {
	steps []int
}

// NewLaggard returns a lockstep scheduler.
func NewLaggard() *Laggard { return &Laggard{} }

// Next implements Scheduler.
func (s *Laggard) Next(v *View) int {
	if s.steps == nil {
		s.steps = make([]int, v.N)
	}
	best := -1
	for _, pid := range v.Runnable {
		if best == -1 || s.steps[pid] < s.steps[best] {
			best = pid
		}
	}
	s.steps[best]++
	return best
}

// Seed implements Scheduler (no randomness used; resets the step counters,
// keeping their backing array for pooled reuse).
func (s *Laggard) Seed(*xrand.Source) {
	for i := range s.steps {
		s.steps[i] = 0
	}
}

// Name implements Scheduler.
func (s *Laggard) Name() string { return "laggard-lockstep" }

// MinPower implements Scheduler.
func (s *Laggard) MinPower() Power { return Oblivious }

// Frontrunner always runs the runnable process that has taken the most
// steps, letting one process race arbitrarily far ahead — the schedule that
// exercises fast paths and solo executions.
type Frontrunner struct {
	steps []int
}

// NewFrontrunner returns a frontrunner scheduler.
func NewFrontrunner() *Frontrunner { return &Frontrunner{} }

// Next implements Scheduler.
func (s *Frontrunner) Next(v *View) int {
	if s.steps == nil {
		s.steps = make([]int, v.N)
	}
	best := -1
	for _, pid := range v.Runnable {
		if best == -1 || s.steps[pid] > s.steps[best] {
			best = pid
		}
	}
	s.steps[best]++
	return best
}

// Seed implements Scheduler (no randomness used; resets the step counters,
// keeping their backing array for pooled reuse).
func (s *Frontrunner) Seed(*xrand.Source) {
	for i := range s.steps {
		s.steps[i] = 0
	}
}

// Name implements Scheduler.
func (s *Frontrunner) Name() string { return "frontrunner" }

// MinPower implements Scheduler.
func (s *Frontrunner) MinPower() Power { return Oblivious }
