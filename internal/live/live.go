// Package live runs the same deciding objects on real hardware concurrency:
// registers are backed by sync/atomic, processes are free-running
// goroutines, and the "adversary" is the Go scheduler. It implements the
// backend-neutral exec.Backend contract as a first-class peer of the
// simulator (internal/sim): per-process operation accounting into the
// shared exec.Result, fault injection (crashes, stalls, delay jitter, lost
// coins — internal/fault), context cancellation, and an
// optional total-operation budget all behave as on sim — only the
// interleaving is uncontrolled, which is the point. Wall-clock numbers come
// from here; the simulated backend remains the ground truth for the paper's
// model-cost measures, which this backend also tracks exactly (the Env
// contract prices operations identically on both).
//
// This is the only backend in which processes are goroutines: the simulated
// backend runs processes as same-thread coroutines for speed and trace
// determinism. The split is intentional — here the Go scheduler *is* the
// adversary, so real concurrency is the point, and the Env contract (one
// pending shared-memory op per process, coins free) is identical in both
// backends.
//
// Determinism: per-process coin and probabilistic-write streams are derived
// from the seed with the same exec.ProcCoins/ProcProb derivation the
// simulator uses, so they are reproducible per (seed, pid) — and for
// adversary-free (single-process) executions the whole run is
// bit-equivalent to sim: same coins, same probabilistic-write outcomes,
// same decision, same op count. The cross-backend equivalence tests pin
// this. With n > 1 the interleaving, and hence outputs, may differ run to
// run; only safety properties (agreement, validity) are schedule-
// independent.
package live

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/obs"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// Memory is an atomic-register file mirroring a register.File layout,
// including initial values (protocols initialize announcement registers to
// 0 at construction time).
type Memory struct {
	cells []paddedCell
}

// cacheLine is the assumed cache-line size; 64 bytes covers every platform
// this module targets (x86-64, arm64).
const cacheLine = 64

// paddedCell keeps each register on its own cache line so benchmark
// contention reflects algorithmic sharing, not false sharing. The pad is
// computed from unsafe.Sizeof at compile time, so a representation change
// of value.AtomicValue resizes it automatically instead of quietly
// re-introducing false sharing (pinned by TestPaddedCellFillsCacheLine).
type paddedCell struct {
	v value.AtomicValue
	_ [(cacheLine - unsafe.Sizeof(value.AtomicValue{})%cacheLine) % cacheLine]byte
}

// NewMemory builds atomic memory with the same size and initial contents as
// file.
func NewMemory(file *register.File) *Memory {
	m := &Memory{cells: make([]paddedCell, file.Len())}
	for i := range m.cells {
		m.cells[i].v.Store(file.Load(register.Reg(i)))
	}
	return m
}

// Load atomically reads register r.
func (m *Memory) Load(r register.Reg) value.Value { return m.cells[r].v.Load() }

// Store atomically writes register r.
func (m *Memory) Store(r register.Reg, v value.Value) { m.cells[r].v.Store(v) }

// procStop is the sentinel panic that unwinds a process goroutine when the
// runtime stops it mid-program: a planned crash or stall (fault plan),
// context cancellation, or the shared operation budget running out. The
// goroutine wrapper swallows it and records the fate; any other panic
// propagates out of Run with its original value. A stalled goroutine blocks
// on the context first and unwinds only once cancellation fires — that is
// the injection point for livelock, and why stall faults require a Context.
type procStop struct {
	crashed   bool
	stalled   bool
	cancelled bool
	limited   bool
}

// Env implements core.Env over atomic memory for one goroutine-process.
type Env struct {
	mem   *Memory
	pid   int
	n     int
	cheap bool
	// coins serves local coin flips and prob the probabilistic-write
	// coins — two streams, split exactly as the simulator splits them, so
	// single-process executions are bit-equivalent across backends.
	coins *xrand.Source
	prob  *xrand.Source
	ops   int
	// crashAt / stallAt are the own-operation counts at which this process
	// crashes / stalls (fault.Never if unplanned); stepCrashAt is the 1-based
	// global-operation threshold compiled from crash-on-round faults,
	// checked against totalOps when that counter exists.
	crashAt     int
	stallAt     int
	stepCrashAt int
	// inj serves per-op delay and lost-coin draws; nil-safe and free when
	// no fault plan is active.
	inj *fault.Injector
	// totalOps is the shared global operation counter, allocated only when
	// the plan contains crash-on-round faults.
	totalOps *atomic.Int64
	// meter, if non-nil, receives a live count of executed operations for
	// progress reporting; nil costs one branch per operation (same
	// zero-overhead contract as the sim backend).
	meter *obs.Meter
	// regular enables regular-register reads: each read samples its target
	// twice around a scheduling yield, and when the samples differ — a
	// write really did overlap the read — a coin from sem picks the old or
	// the new value. sem is this process's private semantics stream
	// (exec.ProcSemCoins), nil under atomic semantics.
	regular bool
	sem     *xrand.Source
	// ctxDone, if non-nil, is polled at every operation boundary.
	ctxDone <-chan struct{}
	// budget, if non-nil, is the shared remaining-operation counter
	// backing Config.MaxSteps.
	budget *atomic.Int64
	// collectBuf backs Collect results; reused per the copy-on-escape
	// contract on core.Env.Collect.
	collectBuf []value.Value
}

var _ core.Env = (*Env)(nil)

// account charges one operation and applies the runtime's stop conditions.
// It runs after the operation took effect, mirroring sim: a crashed
// process's final operation lands in memory, but the process never observes
// the result and performs no further operations.
func (e *Env) account() {
	e.ops++
	if e.meter != nil {
		e.meter.AddSteps(1)
	}
	var gop int64
	if e.totalOps != nil {
		// The Add result is the 1-based global index of the operation that
		// just landed — the exact quantity crash-on-round thresholds are
		// compiled against (on sim the step counter plays this role).
		gop = e.totalOps.Add(1)
	}
	if e.budget != nil && e.budget.Add(-1) < 0 {
		panic(procStop{limited: true})
	}
	if e.ops >= e.crashAt {
		panic(procStop{crashed: true})
	}
	if e.totalOps != nil && gop >= int64(e.stepCrashAt) {
		panic(procStop{crashed: true})
	}
	if e.ops >= e.stallAt {
		e.stallForever()
	}
	if d := e.inj.OpDelay(e.pid); d > 0 {
		time.Sleep(d)
	}
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			panic(procStop{cancelled: true})
		default:
		}
	}
}

// stallForever is the live injection point for stall faults: the goroutine
// holds its state and performs no further operations until the context is
// cancelled, then unwinds as stalled. This is the livelock the harness
// watchdog exists to catch.
func (e *Env) stallForever() {
	if e.ctxDone != nil {
		<-e.ctxDone
	}
	panic(procStop{stalled: true})
}

// PID implements core.Env.
func (e *Env) PID() int { return e.pid }

// N implements core.Env.
func (e *Env) N() int { return e.n }

// readYield widens the overlap window of a regular-register read between
// its two samples. It is a variable so the regular-semantics tests can
// interpose a deterministic concurrent write where production code yields
// to the Go scheduler.
var readYield = runtime.Gosched

// Read implements core.Env. Under atomic semantics it is a single atomic
// load. Under regular semantics (Hadzilacos–Hu–Toueg) the read is realized
// as two samples around a scheduling yield: the first plays the rôle of the
// value at the read's invocation, the second the value at its response, and
// when a concurrent write makes them differ the process's semantics coin
// decides which one the read returns — old or new, exactly the freedom a
// regular register grants. Either way the read costs one operation.
func (e *Env) Read(r register.Reg) value.Value {
	v := e.mem.Load(r)
	if e.regular {
		readYield()
		if v2 := e.mem.Load(r); v2 != v && !e.sem.Bool() {
			v = v2
		}
	}
	e.account()
	return v
}

// Write implements core.Env.
func (e *Env) Write(r register.Reg, v value.Value) {
	e.mem.Store(r, v)
	e.account()
}

// ProbWrite implements core.Env: the coin is local, the store atomic. (The
// hardware scheduler cannot condition on the coin any more than the model's
// location-oblivious adversary can.)
func (e *Env) ProbWrite(r register.Reg, v value.Value, num, den uint64) bool {
	ok := e.prob.Bernoulli(num, den)
	if e.inj.LoseCoin(e.pid) {
		// Lost in flight: the process's own coin stream is consumed exactly
		// as in a fault-free run, but the write is suppressed and reported
		// failed (same draw order as sim, so n=1 runs stay bit-equivalent
		// across backends under the same plan).
		ok = false
	}
	if ok {
		e.mem.Store(r, v)
	}
	e.account()
	return ok
}

// Collect implements core.Env: a read sweep costing one operation under the
// cheap model and one per register otherwise. As on sim, the non-cheap
// sweep is not atomic — each read is its own operation boundary, so crashes
// and cancellation can land mid-sweep. Copy-on-escape: the returned slice
// is reused by this Env's next Collect.
func (e *Env) Collect(arr register.Array) []value.Value {
	e.collectBuf = e.collectBuf[:0]
	if e.cheap {
		for i := 0; i < arr.Len; i++ {
			e.collectBuf = append(e.collectBuf, e.mem.Load(arr.At(i)))
		}
		e.account()
		return e.collectBuf
	}
	for i := 0; i < arr.Len; i++ {
		e.collectBuf = append(e.collectBuf, e.Read(arr.At(i)))
	}
	return e.collectBuf
}

// CheapCollect implements core.Env.
func (e *Env) CheapCollect() bool { return e.cheap }

// CoinUint64 implements core.Env.
func (e *Env) CoinUint64() uint64 { return e.coins.Uint64() }

// CoinBool implements core.Env.
func (e *Env) CoinBool() bool { return e.coins.Bool() }

// CoinIntn implements core.Env.
func (e *Env) CoinIntn(n int) int { return e.coins.Intn(n) }

// MarkInvoke implements core.Env (no tracing on the live backend).
func (e *Env) MarkInvoke(string, value.Value) {}

// MarkReturn implements core.Env (no tracing on the live backend).
func (e *Env) MarkReturn(string, value.Decision) {}

// Ops returns the operations this process has performed.
func (e *Env) Ops() int { return e.ops }

// backend implements exec.Backend over atomic memory and goroutines.
type backend struct{}

// Backend returns the live runtime as an exec.Backend.
func Backend() exec.Backend { return backend{} }

// Name implements exec.Backend.
func (backend) Name() string { return "live" }

// Capabilities implements exec.Backend: no adversary control (the hardware
// scheduler decides the interleaving), no tracing (there is no global step
// sequence to order events by), no deterministic replay for n > 1 — but
// wall-clock timings are real.
func (backend) Capabilities() exec.Capabilities {
	return exec.Capabilities{
		WallClock: true,
		// Regular registers are realizable over real sync/atomic memory
		// (two-sample reads, see Env.Read); interposed semantics is not —
		// its whole content is blunting an explicit adversary's view of
		// in-flight operations, and this backend has no adversary to blunt.
		Semantics: register.SetOf(register.Atomic, register.Regular),
	}
}

// NewSession implements exec.Backend via the one-shot fallback: the live
// backend mirrors cfg.File into fresh atomic memory on every Run and keeps
// no cross-run state, so there is nothing to reuse — each session Run pays
// full construction, and Capabilities deliberately omits Reusable.
func (b backend) NewSession(cfg exec.Config, programs ...exec.Program) (exec.Session, error) {
	return exec.NewOneShotSession(b, cfg, programs...)
}

// Run implements exec.Backend: it executes one free-running goroutine per
// process over atomic memory mirroring cfg.File and blocks until every
// process halts, crashes, is cancelled, or exhausts the operation budget.
func (backend) Run(cfg exec.Config, programs ...exec.Program) (*exec.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheduler != nil {
		return nil, fmt.Errorf("live: scheduler %q rejected: the live backend has no adversary control (the hardware scheduler decides the interleaving)", cfg.Scheduler.Name())
	}
	if cfg.Trace != nil {
		return nil, fmt.Errorf("live: tracing rejected: the live backend has no global step sequence to record")
	}
	switch cfg.Registers {
	case register.Atomic, register.Regular:
	case register.Interposed:
		return nil, fmt.Errorf("live: interposed registers rejected: the interposition blunts an explicit adversary's view of in-flight operations, and the live backend has no adversary to blunt")
	default:
		return nil, fmt.Errorf("live: unknown register semantics %v", cfg.Registers)
	}
	cfg.File.SetSemantics(cfg.Registers)
	progs, err := exec.Programs(cfg.N, programs)
	if err != nil {
		return nil, err
	}

	mem := NewMemory(cfg.File)
	res := exec.NewResult(cfg.N)

	var budget *atomic.Int64
	if cfg.MaxSteps > 0 {
		budget = new(atomic.Int64)
		budget.Store(int64(cfg.MaxSteps))
	}
	var ctxDone <-chan struct{}
	if cfg.Context != nil {
		ctxDone = cfg.Context.Done()
	}

	inj, err := fault.Compile(cfg.Faults, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var totalOps *atomic.Int64
	if inj.HasCrashStep() {
		totalOps = new(atomic.Int64)
	}
	if inj.HasStall() {
		res.Stalled = make([]bool, cfg.N)
	}

	root := xrand.New(cfg.Seed)
	regular := cfg.Registers == register.Regular
	envs := make([]*Env, cfg.N)
	for pid := 0; pid < cfg.N; pid++ {
		envs[pid] = &Env{
			mem: mem, pid: pid, n: cfg.N, cheap: cfg.CheapCollect,
			coins: exec.ProcCoins(root, pid), prob: exec.ProcProb(root, pid),
			crashAt: inj.CrashAt(pid), stallAt: inj.StallAt(pid),
			stepCrashAt: inj.CrashStep(pid), inj: inj, totalOps: totalOps,
			meter: cfg.Meter, ctxDone: ctxDone, budget: budget,
			regular: regular,
		}
		if regular {
			// Derived only when needed, so atomic executions draw exactly
			// the streams they always did (Split never advances root).
			envs[pid].sem = exec.ProcSemCoins(root, pid)
		}
	}

	var (
		wg        sync.WaitGroup
		limited   atomic.Bool
		cancelled atomic.Bool
		// firstPanic captures a program panic so Run can re-panic it on
		// the caller's goroutine (matching sim's propagation contract)
		// instead of crashing the process from a worker.
		panicMu    sync.Mutex
		firstPanic any
	)
	for pid := 0; pid < cfg.N; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if stop, ok := r.(procStop); ok {
					switch {
					case stop.crashed:
						res.Crashed[pid] = true
					case stop.stalled:
						// The stalled goroutine only unwound because the
						// context fired, so the run as a whole reports
						// cancellation.
						res.Stalled[pid] = true
						if ctxDone != nil {
							cancelled.Store(true)
						}
					case stop.limited:
						limited.Store(true)
					case stop.cancelled:
						cancelled.Store(true)
					}
					return
				}
				panicMu.Lock()
				if firstPanic == nil {
					firstPanic = r
				}
				panicMu.Unlock()
			}()
			e := envs[pid]
			// Threshold 0 fires before the first operation: the process
			// crashes or stalls having done nothing at all.
			if e.crashAt <= 0 {
				panic(procStop{crashed: true})
			}
			if e.stallAt <= 0 {
				e.stallForever()
			}
			out := progs[pid](e)
			res.Outputs[pid] = out
			res.Halted[pid] = true
		}(pid)
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}

	for pid, e := range envs {
		res.Work[pid] = e.ops
		res.TotalWork += e.ops
	}
	res.Steps = res.TotalWork

	switch {
	case limited.Load():
		return res, fmt.Errorf("%w (limit %d, backend %q)", exec.ErrStepLimit, cfg.MaxSteps, "live")
	case cancelled.Load():
		return res, fmt.Errorf("%w after %d operations: %w", exec.ErrCancelled, res.TotalWork, context.Cause(cfg.Context))
	}
	return res, nil
}

// Run executes programs under cfg on the live backend; it is shorthand for
// Backend().Run(cfg, programs...).
func Run(cfg exec.Config, programs ...exec.Program) (*exec.Result, error) {
	return backend{}.Run(cfg, programs...)
}
