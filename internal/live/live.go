// Package live runs the same deciding objects on real hardware concurrency:
// registers are backed by sync/atomic, processes are free-running
// goroutines, and the "adversary" is the Go scheduler. This backend exists
// for testing.B benchmarks that measure wall-clock behavior rather than the
// model's operation counts — the simulated backend (internal/sim) remains
// the ground truth for the paper's cost measures, which this backend also
// tracks (operation counts are exact; only the interleaving is
// uncontrolled).
//
// This is now the only backend in which processes are goroutines: the
// simulated backend runs processes as same-thread coroutines for speed and
// trace determinism. The split is intentional — here the Go scheduler *is*
// the adversary, so real concurrency is the point, and the Env contract
// (one pending shared-memory op per process, coins free) is identical in
// both backends.
package live

import (
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
	"github.com/modular-consensus/modcon/internal/xrand"
)

// Memory is an atomic-register file mirroring a register.File layout,
// including initial values (protocols initialize announcement registers to
// 0 at construction time).
type Memory struct {
	cells []paddedCell
}

// paddedCell keeps each register on its own cache line so benchmark
// contention reflects algorithmic sharing, not false sharing.
type paddedCell struct {
	v value.AtomicValue
	_ [56]byte
}

// NewMemory builds atomic memory with the same size and initial contents as
// file.
func NewMemory(file *register.File) *Memory {
	m := &Memory{cells: make([]paddedCell, file.Len())}
	for i := range m.cells {
		m.cells[i].v.Store(file.Load(register.Reg(i)))
	}
	return m
}

// Load atomically reads register r.
func (m *Memory) Load(r register.Reg) value.Value { return m.cells[r].v.Load() }

// Store atomically writes register r.
func (m *Memory) Store(r register.Reg, v value.Value) { m.cells[r].v.Store(v) }

// Env implements core.Env over atomic memory for one goroutine-process.
type Env struct {
	mem   *Memory
	pid   int
	n     int
	cheap bool
	src   *xrand.Source
	ops   int
}

var _ core.Env = (*Env)(nil)

// PID implements core.Env.
func (e *Env) PID() int { return e.pid }

// N implements core.Env.
func (e *Env) N() int { return e.n }

// Read implements core.Env.
func (e *Env) Read(r register.Reg) value.Value {
	e.ops++
	return e.mem.Load(r)
}

// Write implements core.Env.
func (e *Env) Write(r register.Reg, v value.Value) {
	e.ops++
	e.mem.Store(r, v)
}

// ProbWrite implements core.Env: the coin is local, the store atomic. (The
// hardware scheduler cannot condition on the coin any more than the model's
// location-oblivious adversary can.)
func (e *Env) ProbWrite(r register.Reg, v value.Value, num, den uint64) bool {
	e.ops++
	if !e.src.Bernoulli(num, den) {
		return false
	}
	e.mem.Store(r, v)
	return true
}

// Collect implements core.Env: a read sweep (one op under the cheap model).
func (e *Env) Collect(arr register.Array) []value.Value {
	out := make([]value.Value, arr.Len)
	for i := range out {
		out[i] = e.mem.Load(arr.At(i))
	}
	if e.cheap {
		e.ops++
	} else {
		e.ops += arr.Len
	}
	return out
}

// CheapCollect implements core.Env.
func (e *Env) CheapCollect() bool { return e.cheap }

// CoinUint64 implements core.Env.
func (e *Env) CoinUint64() uint64 { return e.src.Uint64() }

// CoinBool implements core.Env.
func (e *Env) CoinBool() bool { return e.src.Bool() }

// CoinIntn implements core.Env.
func (e *Env) CoinIntn(n int) int { return e.src.Intn(n) }

// MarkInvoke implements core.Env (no tracing in live mode).
func (e *Env) MarkInvoke(string, value.Value) {}

// MarkReturn implements core.Env (no tracing in live mode).
func (e *Env) MarkReturn(string, value.Decision) {}

// Ops returns the operations this process has performed.
func (e *Env) Ops() int { return e.ops }

// Result reports a live execution.
type Result struct {
	// Outputs holds per-process return values.
	Outputs []value.Value
	// Work is the per-process operation count.
	Work []int
	// TotalWork sums Work.
	TotalWork int
}

// Run executes prog for n free-running goroutine-processes over atomic
// memory mirroring file, and blocks until all return.
func Run(n int, file *register.File, seed uint64, cheapCollect bool, prog func(e *Env) value.Value) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("live: n=%d must be positive", n)
	}
	mem := NewMemory(file)
	res := &Result{
		Outputs: make([]value.Value, n),
		Work:    make([]int, n),
	}
	root := xrand.New(seed)
	envs := make([]*Env, n)
	for pid := 0; pid < n; pid++ {
		envs[pid] = &Env{mem: mem, pid: pid, n: n, cheap: cheapCollect, src: root.Split(uint64(pid + 1))}
	}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			res.Outputs[pid] = prog(envs[pid])
		}(pid)
	}
	wg.Wait()
	for pid, e := range envs {
		res.Work[pid] = e.Ops()
		res.TotalWork += e.Ops()
	}
	return res, nil
}
