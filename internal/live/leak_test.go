package live

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// waitNoLeak polls until the goroutine count returns to the baseline
// (other tests' stragglers may still be winding down, so poll, don't
// snapshot).
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoGoroutineLeakOnCancellation: cancelling a run — including one whose
// processes are stalled in the livelock injection point — must unwind every
// process goroutine.
func TestNoGoroutineLeakOnCancellation(t *testing.T) {
	base := runtime.NumGoroutine()

	// Busy processes cancelled mid-loop.
	file := register.NewFile()
	r := file.Alloc1("x")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Run(exec.Config{N: 4, File: file, Seed: 1, Context: ctx}, func(e core.Env) value.Value {
		for i := 0; ; i++ {
			e.Write(r, value.Value(i))
		}
	})
	if !errors.Is(err, exec.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	waitNoLeak(t, base)

	// Stalled processes: they block inside stallForever until the context
	// fires, then must unwind as stalled rather than linger.
	file2 := register.NewFile()
	r2 := file2.Alloc1("y")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	res, err := Run(exec.Config{
		N: 4, File: file2, Seed: 1, Context: ctx2,
		Faults: fault.New(fault.Stall(fault.AllProcs, 2)),
	}, func(e core.Env) value.Value {
		for i := 0; ; i++ {
			e.Write(r2, value.Value(i))
		}
	})
	if !errors.Is(err, exec.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled run err = %v, want ErrCancelled wrapping DeadlineExceeded", err)
	}
	for pid, s := range res.Stalled {
		if !s {
			t.Fatalf("pid %d not recorded stalled", pid)
		}
	}
	waitNoLeak(t, base)
}

// TestNoGoroutineLeakOnPanic: a program panic propagates out of Run on the
// caller's goroutine — after every other process goroutine has already been
// joined, so the panic leaves nothing behind.
func TestNoGoroutineLeakOnPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	file := register.NewFile()
	r := file.Alloc1("x")

	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("program panic did not propagate out of Run")
			}
			if s, ok := p.(string); !ok || s != "mid-trial bug" {
				t.Fatalf("recovered %v, want the original panic value", p)
			}
		}()
		Run(exec.Config{N: 4, File: file, Seed: 1}, func(e core.Env) value.Value {
			for i := 0; i < 5; i++ {
				e.Write(r, value.Value(i))
			}
			if e.PID() == 2 {
				panic("mid-trial bug")
			}
			return 0
		})
	}()
	waitNoLeak(t, base)
}
