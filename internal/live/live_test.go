package live

import (
	"context"
	"errors"
	"testing"
	"unsafe"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestPaddedCellFillsCacheLine(t *testing.T) {
	// The false-sharing guard must hold for whatever size value.AtomicValue
	// has: cells round up to a whole number of cache lines.
	if s := unsafe.Sizeof(paddedCell{}); s%cacheLine != 0 {
		t.Fatalf("paddedCell is %d bytes, not a multiple of the %d-byte cache line", s, cacheLine)
	}
	if s, c := unsafe.Sizeof(paddedCell{}), unsafe.Sizeof(value.AtomicValue{}); s < c {
		t.Fatalf("paddedCell (%d bytes) smaller than its cell (%d bytes)", s, c)
	}
}

func TestMemoryMirrorsFile(t *testing.T) {
	file := register.NewFile()
	a := file.Alloc1("a")
	b := file.Alloc1("b")
	file.Init(b, 0)
	file.Store(a, 9)
	mem := NewMemory(file)
	if got := mem.Load(a); got != 9 {
		t.Fatalf("a = %s", got)
	}
	if got := mem.Load(b); got != 0 {
		t.Fatalf("b = %s", got)
	}
	mem.Store(a, 4)
	if got := mem.Load(a); got != 4 {
		t.Fatalf("a after store = %s", got)
	}
	if file.Load(a) != 9 {
		t.Fatal("live store leaked into the simulated file")
	}
}

func TestRunValidation(t *testing.T) {
	file := register.NewFile()
	noop := func(e core.Env) value.Value { return 0 }
	if _, err := Run(exec.Config{N: 0, File: file}, noop); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Run(exec.Config{N: 1}, noop); err == nil {
		t.Fatal("nil file accepted")
	}
	if _, err := Run(exec.Config{N: 2, File: file}, noop, noop, noop); err == nil {
		t.Fatal("3 programs for 2 processes accepted")
	}
	if _, err := Run(exec.Config{N: 1, File: file, Scheduler: sched.NewRoundRobin()}, noop); err == nil {
		t.Fatal("scheduler accepted by the live backend")
	}
}

func TestBackendCapabilities(t *testing.T) {
	be := Backend()
	if be.Name() != "live" {
		t.Fatalf("Name = %q", be.Name())
	}
	caps := be.Capabilities()
	if caps.Adversary || caps.Tracing || caps.Deterministic {
		t.Fatalf("live claims sim-only capabilities: %+v", caps)
	}
	if !caps.WallClock {
		t.Fatal("live does not claim wall-clock realism")
	}
}

func TestRunBasics(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{N: 4, File: file, Seed: 1}, func(e core.Env) value.Value {
		e.Write(r, value.Value(e.PID()))
		return e.Read(r) // some pid's value
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, out := range res.Outputs {
		if out < 0 || out > 3 {
			t.Fatalf("pid %d read %s", pid, out)
		}
		if !res.Halted[pid] || res.Crashed[pid] {
			t.Fatalf("pid %d fate: halted=%v crashed=%v", pid, res.Halted[pid], res.Crashed[pid])
		}
	}
	if res.TotalWork != 8 || res.Steps != 8 {
		t.Fatalf("TotalWork = %d, Steps = %d, want 8", res.TotalWork, res.Steps)
	}
	for _, w := range res.Work {
		if w != 2 {
			t.Fatalf("Work = %v", res.Work)
		}
	}
}

func TestCoinDeterminismPerSeedPerPid(t *testing.T) {
	file := register.NewFile()
	run := func() []value.Value {
		res, err := Run(exec.Config{N: 3, File: file, Seed: 42}, func(e core.Env) value.Value {
			return value.Value(e.CoinIntn(1 << 20))
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("coin streams not reproducible per (seed, pid)")
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatal("all pids share one coin stream")
	}
}

func TestCollectCostModes(t *testing.T) {
	file := register.NewFile()
	arr := file.Alloc(5, "arr")
	res, err := Run(exec.Config{N: 1, File: file, Seed: 1, CheapCollect: true}, func(e core.Env) value.Value {
		e.Collect(arr)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != 1 {
		t.Fatalf("cheap collect cost %d", res.TotalWork)
	}
	res, err = Run(exec.Config{N: 1, File: file, Seed: 1}, func(e core.Env) value.Value {
		e.Collect(arr)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != 5 {
		t.Fatalf("linear collect cost %d", res.TotalWork)
	}
}

func TestCrashAfterInjection(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{
		N: 2, File: file, Seed: 1,
		Faults: fault.New(fault.Crash(0, 3)),
	}, func(e core.Env) value.Value {
		for i := 0; i < 10; i++ {
			e.Write(r, value.Value(i))
		}
		return 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Halted[0] {
		t.Fatalf("pid 0 fate: crashed=%v halted=%v", res.Crashed[0], res.Halted[0])
	}
	if !res.Outputs[0].IsNone() {
		t.Fatalf("crashed pid output = %s, want ⊥", res.Outputs[0])
	}
	if res.Work[0] != 3 {
		t.Fatalf("crashed pid did %d ops, want exactly 3 (last op takes effect)", res.Work[0])
	}
	if !res.Halted[1] || res.Work[1] != 10 {
		t.Fatalf("pid 1 fate: halted=%v work=%d", res.Halted[1], res.Work[1])
	}
}

func TestContextCancellation(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	ctx, cancel := context.WithCancel(context.Background())
	res, err := Run(exec.Config{
		N: 2, File: file, Seed: 1, Context: ctx,
	}, func(e core.Env) value.Value {
		for i := 0; ; i++ {
			if i == 50 && e.PID() == 0 {
				cancel()
			}
			e.Write(r, value.Value(i))
		}
	})
	if !errors.Is(err, exec.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	for pid := range res.Halted {
		if res.Halted[pid] || res.Crashed[pid] {
			t.Fatalf("pid %d fate after cancel: halted=%v crashed=%v", pid, res.Halted[pid], res.Crashed[pid])
		}
	}
}

func TestStepBudget(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{
		N: 2, File: file, Seed: 1, MaxSteps: 100,
	}, func(e core.Env) value.Value {
		for i := 0; ; i++ {
			e.Write(r, value.Value(i))
		}
	})
	if !errors.Is(err, exec.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	// The budget stops the run within one in-flight operation per process.
	if res.TotalWork > 100+2 {
		t.Fatalf("TotalWork = %d, budget 100 overrun by more than n", res.TotalWork)
	}
}

// buildConsensus assembles the paper's binary protocol against a file.
func buildConsensus(n int) (*register.File, *core.Protocol, error) {
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N:    n,
		File: file,
		NewRatifier: func(f *register.File, i int) core.Object {
			return ratifier.NewBinary(f, i)
		},
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, n, i)
		},
		FastPath: true,
		Fallback: fallback.New(file, n, 0),
		Stages:   64,
	})
	return file, proto, err
}

func TestLiveBinaryConsensus(t *testing.T) {
	// The full protocol under real goroutine concurrency: agreement and
	// validity must hold on every run (safety is schedule-independent).
	for _, n := range []int{2, 4, 8} {
		for seed := uint64(0); seed < 20; seed++ {
			file, proto, err := buildConsensus(n)
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]value.Value, n)
			for i := range inputs {
				inputs[i] = value.Value(i % 2)
			}
			res, err := Run(exec.Config{N: n, File: file, Seed: seed}, func(e core.Env) value.Value {
				out, ok := proto.Run(e, inputs[e.PID()])
				if !ok {
					t.Errorf("pid %d fell off the chain", e.PID())
				}
				return out
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if err := check.WorkAccounting(res.Work, res.TotalWork); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestLiveConsensusRace(t *testing.T) {
	// Run with -race in CI: exercises concurrent atomic access patterns.
	file, proto, err := buildConsensus(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []value.Value{0, 1, 1, 0}
	res, err := Run(exec.Config{N: 4, File: file, Seed: 7}, func(e core.Env) value.Value {
		out, _ := proto.Run(e, inputs[e.PID()])
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
		t.Fatal(err)
	}
}
