package live

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/conciliator"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/fallback"
	"github.com/modular-consensus/modcon/internal/ratifier"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestMemoryMirrorsFile(t *testing.T) {
	file := register.NewFile()
	a := file.Alloc1("a")
	b := file.Alloc1("b")
	file.Init(b, 0)
	file.Store(a, 9)
	mem := NewMemory(file)
	if got := mem.Load(a); got != 9 {
		t.Fatalf("a = %s", got)
	}
	if got := mem.Load(b); got != 0 {
		t.Fatalf("b = %s", got)
	}
	mem.Store(a, 4)
	if got := mem.Load(a); got != 4 {
		t.Fatalf("a after store = %s", got)
	}
	if file.Load(a) != 9 {
		t.Fatal("live store leaked into the simulated file")
	}
}

func TestRunValidation(t *testing.T) {
	file := register.NewFile()
	if _, err := Run(0, file, 1, false, func(e *Env) value.Value { return 0 }); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestRunBasics(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(4, file, 1, false, func(e *Env) value.Value {
		e.Write(r, value.Value(e.PID()))
		return e.Read(r) // some pid's value
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, out := range res.Outputs {
		if out < 0 || out > 3 {
			t.Fatalf("pid %d read %s", pid, out)
		}
	}
	if res.TotalWork != 8 {
		t.Fatalf("TotalWork = %d, want 8", res.TotalWork)
	}
	for _, w := range res.Work {
		if w != 2 {
			t.Fatalf("Work = %v", res.Work)
		}
	}
}

func TestCoinDeterminismPerSeedPerPid(t *testing.T) {
	file := register.NewFile()
	run := func() []value.Value {
		res, err := Run(3, file, 42, false, func(e *Env) value.Value {
			return value.Value(e.CoinIntn(1 << 20))
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("coin streams not reproducible per (seed, pid)")
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatal("all pids share one coin stream")
	}
}

func TestCollectCostModes(t *testing.T) {
	file := register.NewFile()
	arr := file.Alloc(5, "arr")
	res, err := Run(1, file, 1, true, func(e *Env) value.Value {
		e.Collect(arr)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != 1 {
		t.Fatalf("cheap collect cost %d", res.TotalWork)
	}
	res, err = Run(1, file, 1, false, func(e *Env) value.Value {
		e.Collect(arr)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWork != 5 {
		t.Fatalf("linear collect cost %d", res.TotalWork)
	}
}

// buildConsensus assembles the paper's binary protocol against a file.
func buildConsensus(n int) (*register.File, *core.Protocol, error) {
	file := register.NewFile()
	proto, err := core.NewProtocol(core.Options{
		N:    n,
		File: file,
		NewRatifier: func(f *register.File, i int) core.Object {
			return ratifier.NewBinary(f, i)
		},
		NewConciliator: func(f *register.File, i int) core.Object {
			return conciliator.NewImpatient(f, n, i)
		},
		FastPath: true,
		Fallback: fallback.New(file, n, 0),
		Stages:   64,
	})
	return file, proto, err
}

func TestLiveBinaryConsensus(t *testing.T) {
	// The full protocol under real goroutine concurrency: agreement and
	// validity must hold on every run (safety is schedule-independent).
	for _, n := range []int{2, 4, 8} {
		for seed := uint64(0); seed < 20; seed++ {
			file, proto, err := buildConsensus(n)
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]value.Value, n)
			for i := range inputs {
				inputs[i] = value.Value(i % 2)
			}
			res, err := Run(n, file, seed, false, func(e *Env) value.Value {
				out, ok := proto.Run(e, inputs[e.PID()])
				if !ok {
					t.Errorf("pid %d fell off the chain", e.PID())
				}
				return out
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.Consensus(inputs, res.Outputs); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestLiveConsensusRace(t *testing.T) {
	// Run with -race in CI: exercises concurrent atomic access patterns.
	file, proto, err := buildConsensus(4)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []value.Value{0, 1, 1, 0}
	res, err := Run(4, file, 7, false, func(e *Env) value.Value {
		out, _ := proto.Run(e, inputs[e.PID()])
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Consensus(inputs, res.Outputs); err != nil {
		t.Fatal(err)
	}
}
