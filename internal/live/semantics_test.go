package live

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// TestLiveRegularStaleRead is the live-backend separation witness: a write
// that lands inside a read's invocation/response window (interposed
// deterministically through the readYield hook) may be resolved to the old
// value under Regular — atomic registers return whatever one linearized
// load observes and never consult a coin. The resolution is a pure function
// of the per-process semantics stream, so a given seed always resolves the
// same way.
func TestLiveRegularStaleRead(t *testing.T) {
	run := func(model register.Semantics, seed uint64) value.Value {
		file := register.NewFile()
		r := file.Alloc1("x")
		file.Init(r, 5)
		prog := func(ce core.Env) value.Value {
			e := ce.(*Env)
			old := readYield
			readYield = func() { e.mem.Store(r, 9) }
			defer func() { readYield = old }()
			return e.Read(r)
		}
		res, err := Run(exec.Config{N: 1, File: file, Seed: seed, Registers: model}, prog)
		if err != nil {
			t.Fatalf("%v seed %d: %v", model, seed, err)
		}
		return res.Outputs[0]
	}

	sawOld, sawNew := false, false
	for seed := uint64(0); seed < 64; seed++ {
		// Atomic never calls the yield hook: one linearized load, no coin.
		if got := run(register.Atomic, seed); got != 5 {
			t.Fatalf("atomic single-sample read = %s, want 5 (seed %d)", got, seed)
		}
		switch got := run(register.Regular, seed); got {
		case 5:
			sawOld = true
		case 9:
			sawNew = true
		default:
			t.Fatalf("regular overlapping read = %s, want 5 or 9 (seed %d)", got, seed)
		}
		// Same seed, same stream, same resolution: bit-reproducible coins.
		first := run(register.Regular, seed)
		if second := run(register.Regular, seed); second != first {
			t.Fatalf("seed %d resolved to %s then %s — the semantics stream is not deterministic", seed, first, second)
		}
	}
	if !sawOld {
		t.Error("no seed in [0,64) resolved the overlapping read to the old value")
	}
	if !sawNew {
		t.Error("no seed in [0,64) resolved the overlapping read to the new value")
	}
}

// TestLiveRejectsInterposed: the blunting layer is meaningless without an
// adversary to blunt; asking for it on live is a config error, not a no-op.
func TestLiveRejectsInterposed(t *testing.T) {
	file := register.NewFile()
	file.Alloc1("x")
	noop := func(e core.Env) value.Value { return 0 }
	_, err := Run(exec.Config{N: 1, File: file, Registers: register.Interposed}, noop)
	if err == nil {
		t.Fatal("live accepted interposed registers")
	}
	if !strings.Contains(err.Error(), "interposed") {
		t.Errorf("rejection %q does not name the model", err)
	}
}

// TestLiveCapabilitiesSemantics pins the declared capability set: atomic
// and regular, not interposed.
func TestLiveCapabilitiesSemantics(t *testing.T) {
	caps := Backend().Capabilities()
	if !caps.Semantics.Has(register.Atomic) || !caps.Semantics.Has(register.Regular) {
		t.Errorf("live semantics set %b is missing atomic or regular", caps.Semantics)
	}
	if caps.Semantics.Has(register.Interposed) {
		t.Errorf("live semantics set %b claims interposed", caps.Semantics)
	}
}

// TestLiveRegularConsensus runs the full protocol chain over genuinely
// concurrent regular-register reads (the CI semantics smoke runs this under
// -race): safety must hold on every run — consensus algorithms built on
// collect loops tolerate regular registers because every decision re-reads
// until the memory is quiescent.
func TestLiveRegularConsensus(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		file, proto, err := buildConsensus(4)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []value.Value{0, 1, 1, 0}
		res, err := Run(exec.Config{N: 4, File: file, Seed: seed, Registers: register.Regular}, func(e core.Env) value.Value {
			out, ok := proto.Run(e, inputs[e.PID()])
			if !ok {
				t.Errorf("pid %d fell off the chain", e.PID())
			}
			return out
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
