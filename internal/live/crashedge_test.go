package live

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/exec"
	"github.com/modular-consensus/modcon/internal/fault"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// TestCrashAtOpZero: threshold 0 crashes the process before its first
// operation — it does nothing at all.
func TestCrashAtOpZero(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{
		N: 2, File: file, Seed: 1,
		Faults: fault.New(fault.Crash(0, 0)),
	}, func(e core.Env) value.Value {
		e.Write(r, 7)
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Halted[0] || res.Work[0] != 0 {
		t.Fatalf("pid 0: crashed=%v halted=%v work=%d, want crashed with zero ops",
			res.Crashed[0], res.Halted[0], res.Work[0])
	}
	if !res.Outputs[0].IsNone() {
		t.Fatalf("pid 0 output = %s, want ⊥", res.Outputs[0])
	}
	if !res.Halted[1] || res.Work[1] != 1 {
		t.Fatalf("pid 1: halted=%v work=%d", res.Halted[1], res.Work[1])
	}
}

// TestCrashAllProcesses: every process crashing is a completed (errorless)
// execution with no survivors — the run must terminate, not hang.
func TestCrashAllProcesses(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{
		N: 4, File: file, Seed: 1,
		Faults: fault.New(fault.Crash(fault.AllProcs, 2)),
	}, func(e core.Env) value.Value {
		for i := 0; i < 100; i++ {
			e.Write(r, value.Value(i))
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if !res.Crashed[pid] || res.Halted[pid] || res.Work[pid] != 2 {
			t.Fatalf("pid %d: crashed=%v halted=%v work=%d, want crashed at 2 ops",
				pid, res.Crashed[pid], res.Halted[pid], res.Work[pid])
		}
	}
	if res.TotalWork != 8 {
		t.Fatalf("TotalWork = %d, want 8", res.TotalWork)
	}
}

// TestCrashSingleProcess: n=1 with its only process crashing must terminate
// cleanly (nothing else can make progress or decide).
func TestCrashSingleProcess(t *testing.T) {
	file := register.NewFile()
	r := file.Alloc1("x")
	res, err := Run(exec.Config{
		N: 1, File: file, Seed: 1,
		Faults: fault.New(fault.Crash(0, 3)),
	}, func(e core.Env) value.Value {
		for i := 0; i < 10; i++ {
			e.Write(r, value.Value(i))
		}
		return 9
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Halted[0] || res.Work[0] != 3 {
		t.Fatalf("crashed=%v halted=%v work=%d", res.Crashed[0], res.Halted[0], res.Work[0])
	}
	if !res.Outputs[0].IsNone() {
		t.Fatalf("output = %s, want ⊥", res.Outputs[0])
	}
}

// TestCrashDuringFinalDecideWrite pins the paper's crash semantics at the
// worst possible moment: a process crashes on the very operation that
// announces its decision. The write must take effect (last op lands), the
// crashed process must never observe it (no halt, output ⊥) — and a peer
// must be able to read the announced value.
func TestCrashDuringFinalDecideWrite(t *testing.T) {
	file := register.NewFile()
	decide := file.Alloc1("decide")
	const announced = 7
	// pid 0 performs exactly 3 ops; the 3rd is its decide write, where the
	// crash lands. pid 1 spins until the announcement is visible.
	res, err := Run(exec.Config{
		N: 2, File: file, Seed: 1,
		Faults: fault.New(fault.Crash(0, 3)),
	}, func(e core.Env) value.Value {
		if e.PID() == 0 {
			e.Read(decide)
			e.Read(decide)
			e.Write(decide, announced) // 3rd op: crash fires here
			return 1                   // never reached
		}
		for {
			if v := e.Read(decide); v == announced {
				return v
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] || res.Halted[0] || res.Work[0] != 3 {
		t.Fatalf("pid 0: crashed=%v halted=%v work=%d, want crash on its 3rd op",
			res.Crashed[0], res.Halted[0], res.Work[0])
	}
	if !res.Outputs[0].IsNone() {
		t.Fatalf("crashed pid observed its own decide: output %s", res.Outputs[0])
	}
	if !res.Halted[1] || res.Outputs[1] != announced {
		t.Fatalf("pid 1: halted=%v output=%s, want to read the announced %d",
			res.Halted[1], res.Outputs[1], announced)
	}
}

// TestLiveConsensusUnderCrashFaults: the full protocol with a minority of
// planned crashes still satisfies agreement and validity among survivors.
func TestLiveConsensusUnderCrashFaults(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		n := 4
		file, proto, err := buildConsensus(n)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []value.Value{0, 1, 1, 0}
		res, err := Run(exec.Config{
			N: n, File: file, Seed: seed,
			Faults: fault.New(fault.Crash(0, 4)),
		}, func(e core.Env) value.Value {
			out, _ := proto.Run(e, inputs[e.PID()])
			return out
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Consensus(inputs, res.HaltedOutputs()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
