package check

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

func vals(xs ...int64) []value.Value {
	out := make([]value.Value, len(xs))
	for i, x := range xs {
		out[i] = value.Value(x)
	}
	return out
}

func TestAgreement(t *testing.T) {
	if err := Agreement(vals(3, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := Agreement(nil); err != nil {
		t.Fatal("empty outputs must pass")
	}
	if err := Agreement(vals(3, 4)); err == nil {
		t.Fatal("expected agreement violation")
	}
}

func TestValidity(t *testing.T) {
	if err := Validity(vals(1, 2, 3), vals(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := Validity(vals(1, 2), vals(5)); err == nil {
		t.Fatal("expected validity violation")
	}
	if err := Validity(vals(1), nil); err != nil {
		t.Fatal("empty outputs must pass")
	}
}

func TestConsensus(t *testing.T) {
	if err := Consensus(vals(0, 1), vals(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := Consensus(vals(0, 1), vals(0, 1)); err == nil {
		t.Fatal("expected failure (disagreement)")
	}
	if err := Consensus(vals(0, 1), vals(2, 2)); err == nil {
		t.Fatal("expected failure (invalid)")
	}
}

func mkTrace(events ...trace.Event) *trace.Log {
	l := trace.New()
	for _, e := range events {
		l.Append(e)
	}
	return l
}

func inv(pid int, label string, v value.Value) trace.Event {
	return trace.Event{Step: -1, PID: pid, Kind: trace.Invoke, Label: label, Val: v}
}

func ret(pid int, label string, d bool, v value.Value) trace.Event {
	return trace.Event{Step: -1, PID: pid, Kind: trace.Return, Label: label, Decided: d, Val: v}
}

func TestObjectsValidityViolation(t *testing.T) {
	log := mkTrace(
		inv(0, "R1", 3), ret(0, "R1", false, 4),
	)
	err := Objects(log, "")
	if err == nil || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectsCoherenceViolation(t *testing.T) {
	log := mkTrace(
		inv(0, "X", 1), inv(1, "X", 2),
		ret(0, "X", true, 1), ret(1, "X", false, 2),
	)
	err := Objects(log, "")
	if err == nil || !strings.Contains(err.Error(), "coherence") {
		t.Fatalf("err = %v", err)
	}
}

func TestObjectsTwoDecisionsViolation(t *testing.T) {
	log := mkTrace(
		inv(0, "X", 1), inv(1, "X", 2),
		ret(0, "X", true, 1), ret(1, "X", true, 2),
	)
	if err := Objects(log, ""); err == nil {
		t.Fatal("expected coherence violation")
	}
}

func TestObjectsAcceptanceViolation(t *testing.T) {
	log := mkTrace(
		inv(0, "R2", 5), inv(1, "R2", 5),
		ret(0, "R2", true, 5), ret(1, "R2", false, 5),
	)
	err := Objects(log, "R")
	if err == nil || !strings.Contains(err.Error(), "acceptance") {
		t.Fatalf("err = %v", err)
	}
	// Without the ratifier prefix, acceptance is not required.
	if err := Objects(log, ""); err != nil {
		t.Fatalf("non-ratifier check failed: %v", err)
	}
}

func TestObjectsAcceptanceNotAppliedToConciliators(t *testing.T) {
	// A conciliator ("C1") with unanimous inputs returning (0, v) is fine.
	log := mkTrace(
		inv(0, "C1", 5), inv(1, "C1", 5),
		ret(0, "C1", false, 5), ret(1, "C1", false, 5),
	)
	if err := Objects(log, "R"); err != nil {
		t.Fatal(err)
	}
}

func TestObjectsHealthyComposition(t *testing.T) {
	log := mkTrace(
		inv(0, "C1", 1), ret(0, "C1", false, 2), inv(1, "C1", 2), ret(1, "C1", false, 2),
		inv(0, "R1", 2), ret(0, "R1", true, 2), inv(1, "R1", 2), ret(1, "R1", true, 2),
	)
	if err := Objects(log, "R"); err != nil {
		t.Fatal(err)
	}
}

func TestObjectsMixedInputRatifierNoDecisionOK(t *testing.T) {
	log := mkTrace(
		inv(0, "R-1", 0), inv(1, "R-1", 1),
		ret(0, "R-1", false, 0), ret(1, "R-1", false, 0),
	)
	if err := Objects(log, "R"); err != nil {
		t.Fatal(err)
	}
}

func TestIsRatifierLabelMatching(t *testing.T) {
	cases := map[string]bool{
		"R1": true, "R-1": true, "R12": true,
		"RC1": false, "R": false, "C1": false, "Rx": false, "R-": false,
	}
	for label, want := range cases {
		if got := isRatifier(label, "R"); got != want {
			t.Errorf("isRatifier(%q) = %v, want %v", label, got, want)
		}
	}
	if !isRatifier("RC3", "RC") {
		t.Error("isRatifier(RC3, RC) = false")
	}
}

func TestIndividualWorkBound(t *testing.T) {
	if err := IndividualWorkBound([]int{1, 2, 3}, 3); err != nil {
		t.Fatal(err)
	}
	if err := IndividualWorkBound([]int{1, 5}, 4); err == nil {
		t.Fatal("expected bound violation")
	}
}

func TestUnanimous(t *testing.T) {
	if Unanimous(nil) {
		t.Fatal("empty is not unanimous")
	}
	if !Unanimous(vals(2, 2, 2)) {
		t.Fatal("all-2 is unanimous")
	}
	if Unanimous(vals(2, 3)) {
		t.Fatal("2,3 is not unanimous")
	}
}

func TestWorkAccounting(t *testing.T) {
	if err := WorkAccounting([]int{3, 0, 4}, 7); err != nil {
		t.Fatal(err)
	}
	if err := WorkAccounting(nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := WorkAccounting([]int{3, 4}, 8); err == nil {
		t.Fatal("expected sum mismatch")
	}
	if err := WorkAccounting([]int{-1, 2}, 1); err == nil {
		t.Fatal("expected negative-work error")
	}
}
