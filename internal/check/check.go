// Package check verifies executions against the paper's correctness
// properties (§3): agreement, validity, coherence, acceptance, and
// probabilistic agreement (as an empirical estimate), plus work bounds.
//
// Result-level checks look only at inputs and outputs; trace-level checks
// reconstruct per-object invocations from Invoke/Return events and verify
// the weak-consensus conditions object by object — including for the
// intermediate objects of a composition, which result-level checks cannot
// see.
package check

import (
	"fmt"
	"sync"

	"github.com/modular-consensus/modcon/internal/trace"
	"github.com/modular-consensus/modcon/internal/value"
)

// Monitor checks agreement and validity online, as decisions land, instead
// of post-hoc over a finished result: a violation is flagged the moment the
// offending decision is observed, even if the execution then livelocks,
// crashes, or is cancelled before a post-hoc check could run. It is safe
// for concurrent use — on the live backend decisions land from
// free-running goroutines.
type Monitor struct {
	mu      sync.Mutex
	inputs  map[value.Value]bool
	ins     []value.Value
	decided bool
	first   value.Value
	pid     int
	err     error
}

// NewMonitor builds a monitor for an execution with the given per-process
// inputs (the validity reference set).
func NewMonitor(inputs []value.Value) *Monitor {
	m := &Monitor{inputs: make(map[value.Value]bool, len(inputs)), ins: inputs}
	for _, v := range inputs {
		m.inputs[v] = true
	}
	return m
}

// Observe records pid's decision v and checks it against the inputs
// (validity) and every previously observed decision (agreement). The first
// violation is retained and returned by Err; Observe returns it too so
// callers may react immediately.
func (m *Monitor) Observe(pid int, v value.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil && !m.inputs[v] {
		m.err = fmt.Errorf("check: validity violated online: process %d decided %s, nobody's input %v", pid, v, m.ins)
	}
	if m.err == nil && m.decided && v != m.first {
		m.err = fmt.Errorf("check: agreement violated online: process %d decided %s but process %d decided %s", pid, v, m.pid, m.first)
	}
	if !m.decided {
		m.decided, m.first, m.pid = true, v, pid
	}
	return m.err
}

// Err returns the first violation the monitor observed, nil if none.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Agreement verifies that all outputs are equal. Crashed or non-terminated
// processes should be excluded by the caller (pass Result.HaltedOutputs()).
func Agreement(outputs []value.Value) error {
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			return fmt.Errorf("check: agreement violated: output[%d]=%s but output[0]=%s", i, outputs[i], outputs[0])
		}
	}
	return nil
}

// Validity verifies that every output equals some process's input.
func Validity(inputs, outputs []value.Value) error {
	in := make(map[value.Value]bool, len(inputs))
	for _, v := range inputs {
		in[v] = true
	}
	for i, v := range outputs {
		if !in[v] {
			return fmt.Errorf("check: validity violated: output[%d]=%s is nobody's input %v", i, v, inputs)
		}
	}
	return nil
}

// Consensus verifies agreement and validity together for the halted
// processes of an execution.
func Consensus(inputs, haltedOutputs []value.Value) error {
	if err := Agreement(haltedOutputs); err != nil {
		return err
	}
	return Validity(inputs, haltedOutputs)
}

// objectRecord collects one object's observed interface from a trace.
type objectRecord struct {
	inputs  []value.Value
	outputs []value.Decision
}

// gather reconstructs per-object records from Invoke/Return events.
func gather(log *trace.Log) map[string]*objectRecord {
	objs := make(map[string]*objectRecord)
	get := func(label string) *objectRecord {
		r := objs[label]
		if r == nil {
			r = &objectRecord{}
			objs[label] = r
		}
		return r
	}
	for _, e := range log.Events() {
		switch e.Kind {
		case trace.Invoke:
			get(e.Label).inputs = append(get(e.Label).inputs, e.Val)
		case trace.Return:
			get(e.Label).outputs = append(get(e.Label).outputs, value.Decision{Decided: e.Decided, V: e.Val})
		}
	}
	return objs
}

// Objects verifies, for every labeled object appearing in the trace, the
// three weak-consensus properties plus acceptance:
//
//   - validity: every output value is one of the object's input values;
//   - coherence: if any process output (1, v), every output is (·, v);
//   - acceptance: if all inputs equal v, every completed output is (1, v).
//
// Acceptance is only meaningful for objects the caller knows to be
// ratifiers; pass their label prefix (e.g. "R") as ratifierPrefix, or ""
// to skip acceptance.
func Objects(log *trace.Log, ratifierPrefix string) error {
	for label, rec := range gather(log) {
		if len(rec.inputs) == 0 && len(rec.outputs) == 0 {
			continue
		}
		in := make(map[value.Value]bool, len(rec.inputs))
		allEqual := true
		for _, v := range rec.inputs {
			in[v] = true
			if v != rec.inputs[0] {
				allEqual = false
			}
		}
		var decidedVal value.Value
		decided := false
		for _, d := range rec.outputs {
			if !in[d.V] {
				return fmt.Errorf("check: object %s: output %s is not among its inputs (validity)", label, d)
			}
			if d.Decided {
				if decided && d.V != decidedVal {
					return fmt.Errorf("check: object %s: two decisions %s and %s (coherence)", label, decidedVal, d.V)
				}
				decided, decidedVal = true, d.V
			}
		}
		if decided {
			for _, d := range rec.outputs {
				if d.V != decidedVal {
					return fmt.Errorf("check: object %s: decision %s but output %s (coherence)", label, decidedVal, d)
				}
			}
		}
		if ratifierPrefix != "" && isRatifier(label, ratifierPrefix) && allEqual && len(rec.inputs) > 0 {
			for _, d := range rec.outputs {
				if !d.Decided || d.V != rec.inputs[0] {
					return fmt.Errorf("check: ratifier %s: all inputs %s but output %s (acceptance)", label, rec.inputs[0], d)
				}
			}
		}
	}
	return nil
}

// isRatifier matches labels like "R3", "R-1" for prefix "R", without
// matching e.g. "RC0" collect ratifiers when the prefix is "R".
func isRatifier(label, prefix string) bool {
	if len(label) <= len(prefix) || label[:len(prefix)] != prefix {
		return false
	}
	rest := label[len(prefix):]
	if rest[0] == '-' {
		rest = rest[1:]
	}
	if rest == "" {
		return false
	}
	for _, ch := range rest {
		if ch < '0' || ch > '9' {
			return false
		}
	}
	return true
}

// IndividualWorkBound verifies that no process exceeded the given operation
// budget.
func IndividualWorkBound(work []int, bound int) error {
	for pid, w := range work {
		if w > bound {
			return fmt.Errorf("check: process %d performed %d operations, bound %d", pid, w, bound)
		}
	}
	return nil
}

// WorkAccounting verifies the bookkeeping invariants every backend's
// Result must satisfy: per-process work is non-negative and sums exactly
// to total work. A backend that drops or double-counts operations (say,
// around a crash or cancellation boundary) fails here before any
// cost-measure comparison would.
func WorkAccounting(work []int, total int) error {
	sum := 0
	for pid, w := range work {
		if w < 0 {
			return fmt.Errorf("check: process %d has negative work %d", pid, w)
		}
		sum += w
	}
	if sum != total {
		return fmt.Errorf("check: per-process work sums to %d but total work is %d", sum, total)
	}
	return nil
}

// Unanimous reports whether all values in xs are equal (and xs is
// non-empty); it is the event whose probability a conciliator's δ bounds.
func Unanimous(xs []value.Value) bool {
	if len(xs) == 0 {
		return false
	}
	for _, v := range xs {
		if v != xs[0] {
			return false
		}
	}
	return true
}
