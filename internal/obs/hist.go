// Package obs is the observability plane: streaming histograms, progress
// reporting, run manifests, and step meters.
//
// Everything in this package is built around two hard contracts:
//
//   - Determinism. Histograms hold only integer counts and integer sums, so
//     accumulation and Merge are exact — the same multiset of observations
//     produces bit-identical aggregates no matter how it was sharded across
//     workers, as long as observations are folded through the harness's
//     in-order reorder buffer (which fixes the fold order).
//
//   - Zero overhead when off. The hooks the backends consult (Meter) are
//     nil-safe pointers: a disabled plane costs one predictable nil check per
//     step and zero allocations. internal/sim pins this with an allocation
//     test next to TestStepLoopZeroAllocs.
//
// obs sits below every other layer of the repository: it imports only the
// standard library, so exec, sim, live, harness, exp, and the public modcon
// package can all thread it through without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// denseSize is the width of the exact-count region of a Hist. Observations in
// [0, denseSize) each get their own unit bucket, so quantiles over typical
// per-trial step and work counts (hundreds to a few thousand) are exact.
// Observations >= denseSize fall into log2 buckets.
const denseSize = 4096

// Hist is a fixed-bucket streaming histogram of non-negative integer
// observations (step counts, per-process work, decisions per trial).
//
// Values in [0, 4096) are counted exactly in unit buckets; larger values land
// in log2 buckets [2^(k-1), 2^k). Min, max, count, sum, and sum of squares
// are tracked exactly as integers, so Mean and Std are exact up to one final
// float conversion and Merge is order-independent: merging per-worker
// histograms yields bit-identical results at any worker count.
//
// The zero value is an empty histogram ready for use. Hist is not safe for
// concurrent use; the harness feeds it from the single-goroutine reorder
// buffer.
type Hist struct {
	n     int64
	sum   int64
	sumSq int64
	min   int64
	max   int64
	dense []int64       // lazily allocated unit buckets for [0, denseSize)
	log2  map[int]int64 // log2 buckets for values >= denseSize, keyed by bits.Len64(v)
}

// Add records one observation. Negative values are clamped to zero (the
// quantities observed — steps, ops, decisions — are non-negative by
// construction; clamping keeps a buggy caller from corrupting bucket math).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sumSq += v * v
	if v < denseSize {
		if h.dense == nil {
			h.dense = make([]int64, denseSize)
		}
		h.dense[v]++
		return
	}
	if h.log2 == nil {
		h.log2 = make(map[int]int64)
	}
	h.log2[bits.Len64(uint64(v))]++
}

// AddInt records one int observation.
func (h *Hist) AddInt(v int) { h.Add(int64(v)) }

// Merge folds other into h. Because all state is integer counts and sums,
// Merge is exact and commutative: any partition of the same observations into
// per-worker histograms merges to bit-identical totals.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	h.sumSq += other.sumSq
	if other.dense != nil {
		if h.dense == nil {
			h.dense = make([]int64, denseSize)
		}
		for v, c := range other.dense {
			h.dense[v] += c
		}
	}
	for k, c := range other.log2 {
		if h.log2 == nil {
			h.log2 = make(map[int]int64)
		}
		h.log2[k] += c
	}
}

// N returns the number of observations.
func (h *Hist) N() int64 { return h.n }

// Sum returns the exact integer sum of all observations.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 if empty).
func (h *Hist) Min() int64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact mean (integer sum over integer count, converted to
// float once). Returns 0 for an empty histogram.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Std returns the sample standard deviation (n-1 denominator), computed from
// the exact integer sum and sum of squares. Returns 0 for n < 2.
func (h *Hist) Std() float64 {
	if h.n < 2 {
		return 0
	}
	nf := float64(h.n)
	mean := float64(h.sum) / nf
	variance := (float64(h.sumSq) - nf*mean*mean) / (nf - 1)
	if variance < 0 { // guard float cancellation
		variance = 0
	}
	return math.Sqrt(variance)
}

// SE returns the standard error of the mean (Std/sqrt(n)). Returns 0 for
// n < 2.
func (h *Hist) SE() float64 {
	if h.n < 2 {
		return 0
	}
	return h.Std() / math.Sqrt(float64(h.n))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank: the value
// whose cumulative count first reaches ceil(q*n). Within the exact region
// ([0, 4096)) the result is the exact order statistic; in the log2 region it
// is the midpoint of the matching bucket. Returns 0 for an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for v, c := range h.dense {
		cum += c
		if cum >= rank {
			return int64(v)
		}
	}
	// Walk log2 buckets in increasing value order: key k covers
	// [2^(k-1), 2^k - 1].
	for k := bits.Len64(denseSize); k <= 64; k++ {
		c, ok := h.log2[k]
		if !ok {
			continue
		}
		cum += c
		if cum >= rank {
			lo := int64(1) << (k - 1)
			hi := lo<<1 - 1
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			return lo + (hi-lo)/2
		}
	}
	return h.max
}

// P50 returns the median observation.
func (h *Hist) P50() int64 { return h.Quantile(0.50) }

// P90 returns the 90th-percentile observation.
func (h *Hist) P90() int64 { return h.Quantile(0.90) }

// P99 returns the 99th-percentile observation.
func (h *Hist) P99() int64 { return h.Quantile(0.99) }

// Bucket is one non-empty histogram bucket: Count observations with values in
// [Lo, Hi] inclusive.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in increasing value order: unit
// buckets from the exact region followed by log2 buckets.
func (h *Hist) Buckets() []Bucket {
	var bs []Bucket
	for v, c := range h.dense {
		if c > 0 {
			bs = append(bs, Bucket{Lo: int64(v), Hi: int64(v), Count: c})
		}
	}
	for k := bits.Len64(denseSize); k <= 64; k++ {
		if c := h.log2[k]; c > 0 {
			lo := int64(1) << (k - 1)
			bs = append(bs, Bucket{Lo: lo, Hi: lo<<1 - 1, Count: c})
		}
	}
	return bs
}

// String renders the summary line used in tables and notes, e.g.
// "n=400 mean=63.1 min=12 p50=62 p90=79 p99=96 max=141".
func (h *Hist) String() string {
	if h.n == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d",
		h.n, h.Mean(), h.min, h.P50(), h.P90(), h.P99(), h.max)
	return b.String()
}

// histJSON is the stable JSON shape of a Hist: summary statistics plus the
// non-empty buckets, so artifacts are self-describing without the Go type.
type histJSON struct {
	N       int64    `json:"n"`
	Mean    float64  `json:"mean"`
	Sum     int64    `json:"sum"`
	SumSq   int64    `json:"sumSq"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P90     int64    `json:"p90"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON emits the summary statistics (including the exact integer sum
// and sum of squares) and the non-empty buckets. The encoding is
// deterministic: buckets are ordered by value.
func (h *Hist) MarshalJSON() ([]byte, error) {
	return json.Marshal(histJSON{
		N: h.n, Mean: h.Mean(), Sum: h.sum, SumSq: h.sumSq,
		Min: h.min, Max: h.max,
		P50: h.P50(), P90: h.P90(), P99: h.P99(),
		Buckets: h.Buckets(),
	})
}

// UnmarshalJSON restores the state emitted by MarshalJSON. Sum, sum of
// squares, min, max, and unit-bucket counts survive exactly; only the
// positions of observations inside a log2 bucket are lost (which is all the
// bucket ever knew).
func (h *Hist) UnmarshalJSON(data []byte) error {
	var raw histJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*h = Hist{n: raw.N, sum: raw.Sum, sumSq: raw.SumSq, min: raw.Min, max: raw.Max}
	for _, b := range raw.Buckets {
		if b.Lo == b.Hi && b.Lo < denseSize {
			if h.dense == nil {
				h.dense = make([]int64, denseSize)
			}
			h.dense[b.Lo] += b.Count
		} else {
			if h.log2 == nil {
				h.log2 = make(map[int]int64)
			}
			h.log2[bits.Len64(uint64(b.Lo))] += b.Count
		}
	}
	return nil
}
