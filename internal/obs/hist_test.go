package obs

import (
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// TestHistExactSmallValues pins that every statistic is exact when all
// observations fall in the unit-bucket region.
func TestHistExactSmallValues(t *testing.T) {
	var h Hist
	vals := []int64{12, 60, 60, 62, 79, 96, 141, 3, 3, 50}
	for _, v := range vals {
		h.Add(v)
	}
	if h.N() != int64(len(vals)) {
		t.Fatalf("N = %d, want %d", h.N(), len(vals))
	}
	if h.Min() != 3 || h.Max() != 141 {
		t.Fatalf("min/max = %d/%d, want 3/141", h.Min(), h.Max())
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Nearest rank: q-quantile is sorted[ceil(q*n)-1].
	if got, want := h.P50(), sorted[4]; got != want {
		t.Errorf("P50 = %d, want %d", got, want)
	}
	if got, want := h.P90(), sorted[8]; got != want {
		t.Errorf("P90 = %d, want %d", got, want)
	}
	if got, want := h.P99(), sorted[9]; got != want {
		t.Errorf("P99 = %d, want %d", got, want)
	}
	if got := h.Quantile(0); got != 3 {
		t.Errorf("Quantile(0) = %d, want 3", got)
	}
	if got := h.Quantile(1); got != 141 {
		t.Errorf("Quantile(1) = %d, want 141", got)
	}
}

// TestHistLog2Region pins bucket placement and quantile resolution for large
// values: within the matching log2 bucket, clamped by observed min/max.
func TestHistLog2Region(t *testing.T) {
	var h Hist
	h.Add(5000)  // bucket [4096, 8191]
	h.Add(6000)  // same bucket
	h.Add(70000) // bucket [65536, 131071]
	if h.Max() != 70000 || h.Min() != 5000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	p50 := h.P50()
	if p50 < 4096 || p50 > 8191 {
		t.Errorf("P50 = %d, want within [4096, 8191]", p50)
	}
	if got := h.Quantile(1); got != 70000 {
		t.Errorf("Quantile(1) = %d, want 70000", got)
	}
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("Buckets = %v, want 2 buckets", bs)
	}
	if bs[0].Lo != 4096 || bs[0].Hi != 8191 || bs[0].Count != 2 {
		t.Errorf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Lo != 65536 || bs[1].Count != 1 {
		t.Errorf("bucket 1 = %+v", bs[1])
	}
}

// TestHistMergeShardingInvariant pins the determinism contract: partitioning
// one observation stream into any number of shard histograms and merging
// yields a histogram deep-equal to single-stream accumulation.
func TestHistMergeShardingInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	vals := make([]int64, 5000)
	for i := range vals {
		if rng.IntN(10) == 0 {
			vals[i] = int64(rng.IntN(1 << 20)) // some in the log2 region
		} else {
			vals[i] = int64(rng.IntN(denseSize))
		}
	}
	var whole Hist
	for _, v := range vals {
		whole.Add(v)
	}
	for _, shards := range []int{1, 4, 16} {
		parts := make([]Hist, shards)
		for i, v := range vals {
			parts[i%shards].Add(v)
		}
		var merged Hist
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if !reflect.DeepEqual(&whole, &merged) {
			t.Errorf("shards=%d: merged histogram differs from single-stream", shards)
		}
	}
}

// TestHistNegativeClamped pins that negative observations clamp to zero.
func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Min() != 0 || h.Max() != 0 || h.N() != 1 {
		t.Fatalf("clamp failed: %s", h.String())
	}
}

// TestHistEmpty pins zero-value behaviour.
func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.P99() != 0 || h.Std() != 0 || h.String() != "n=0" {
		t.Fatalf("empty hist: %s", h.String())
	}
	var other Hist
	h.Merge(&other)
	h.Merge(nil)
	if h.N() != 0 {
		t.Fatalf("merging empties changed N")
	}
}

// TestHistStd checks Std/SE against a direct two-pass computation.
func TestHistStd(t *testing.T) {
	var h Hist
	vals := []int64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		h.Add(v)
	}
	// Known: mean 5, population variance 4, sample variance 32/7.
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	wantStd := 2.1380899352993947 // sqrt(32/7)
	if diff := h.Std() - wantStd; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Std = %v, want %v", h.Std(), wantStd)
	}
}

// TestHistJSONRoundTrip pins the JSON shape and that summary statistics
// survive a round trip.
func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int64{1, 2, 2, 3, 5000} {
		h.Add(v)
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.Min() != h.Min() || back.Max() != h.Max() {
		t.Fatalf("round trip lost summary: %s vs %s", back.String(), h.String())
	}
	if back.P50() != h.P50() || back.P90() != h.P90() {
		t.Fatalf("round trip lost quantiles: %s vs %s", back.String(), h.String())
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-marshal differs:\n%s\n%s", b, b2)
	}
}
