package obs

import (
	"os"
	"runtime"
	"runtime/debug"
)

// Manifest is the self-describing header stamped into every JSON artifact
// (BENCH_*.json, modcon-bench -json output). It records everything needed to
// reproduce the run from the artifact alone: the seed, a full echo of the
// effective configuration, the fault plan in its text grammar, the backend,
// and the toolchain/host facts that affect timing (go version, GOMAXPROCS,
// git revision).
//
// A Manifest deliberately carries no wall-clock timestamp: two runs with the
// same flags must produce byte-identical artifacts, which is how the
// determinism tests compare worker counts.
type Manifest struct {
	// Tool names the producing command, e.g. "modcon-bench".
	Tool string `json:"tool"`
	// Seed is the root seed all per-trial seeds derive from.
	Seed uint64 `json:"seed"`
	// Config echoes every effective flag/option as text, keyed by name.
	Config map[string]string `json:"config,omitempty"`
	// FaultPlan is the fault plan in the internal/fault text grammar
	// ("crash:pid=0,after=5;losecoin:p=1/4"), empty when no faults.
	FaultPlan string `json:"faultPlan,omitempty"`
	// Backend names the execution backend ("sim", "live", or "" when the
	// artifact spans both).
	Backend string `json:"backend,omitempty"`
	// Registers names the register consistency model the run's consensus
	// sweeps used ("atomic", "regular", "interposed"), empty for tools that
	// predate the semantics layer or artifacts that span models.
	Registers string `json:"registers,omitempty"`
	// Workload is the open-loop workload spec in its canonical grammar
	// ("poisson:rate=2000;serve:servers=4"), empty for closed-loop runs
	// (modcon-bench without -workload/-trace-in).
	Workload string `json:"workload,omitempty"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"goVersion"`
	// GOMAXPROCS is the worker-parallelism ceiling at process launch. Runs
	// that re-pin GOMAXPROCS per cell (modcon-bench -bench-scaling) record
	// the per-cell value in each cell, not here: a manifest built mid-run
	// would otherwise capture whichever pin happened to be active.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GitRevision is the VCS revision the binary was built from, with a
	// "+dirty" suffix for modified trees. Builds without a VCS stamp (go
	// test binaries, `go run` from an exported tree, CI checkouts without
	// .git metadata visible to the go tool) fall back to the
	// MODCON_GIT_REVISION environment variable, and only then to "unknown".
	GitRevision string `json:"gitRevision"`
}

// launchGOMAXPROCS is GOMAXPROCS captured at package init — i.e. the
// process's launch value — so manifests built after a caller temporarily
// re-pins GOMAXPROCS (the scaling benchmark pins it per cell) still record
// the setting the process started with.
var launchGOMAXPROCS = runtime.GOMAXPROCS(0)

// NewManifest returns a Manifest for tool with the toolchain and host fields
// (GoVersion, GOMAXPROCS, GitRevision) filled in. Callers set Seed, Config,
// FaultPlan, and Backend.
func NewManifest(tool string) Manifest {
	return Manifest{
		Tool:        tool,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  launchGOMAXPROCS,
		GitRevision: gitRevision(),
	}
}

// gitRevision extracts the vcs.revision (and vcs.modified) build settings
// stamped by the go tool. When the build carries no stamp it falls back to
// the MODCON_GIT_REVISION environment variable — the injection point for CI
// and scripts that know the revision even though the binary does not — and
// reports "unknown" only when both sources are empty.
func gitRevision() string {
	if rev := stampedRevision(); rev != "" {
		return rev
	}
	if rev := os.Getenv("MODCON_GIT_REVISION"); rev != "" {
		return rev
	}
	return "unknown"
}

// stampedRevision returns the go tool's VCS stamp, or "" without one.
func stampedRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}
