package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// captureSink records every snapshot it receives.
type captureSink struct{ snaps []Snapshot }

func (s *captureSink) Emit(p Snapshot) { s.snaps = append(s.snaps, p) }

// TestReporterThrottles pins the interval contract: a long interval drops
// intermediate observations but never the first or the final one.
func TestReporterThrottles(t *testing.T) {
	sink := &captureSink{}
	r := NewReporter(sink, time.Hour)
	for i := 1; i <= 9; i++ {
		r.Observe(i, 10, 0, int64(i*100), time.Duration(i)*time.Second, false)
	}
	r.Observe(10, 10, 0, 1000, 10*time.Second, true)
	if len(sink.snaps) != 2 {
		t.Fatalf("got %d emissions, want 2 (first + final): %+v", len(sink.snaps), sink.snaps)
	}
	if sink.snaps[0].Done != 1 || sink.snaps[0].Final {
		t.Errorf("first emission = %+v", sink.snaps[0])
	}
	last := sink.snaps[1]
	if !last.Final || last.Done != 10 || last.Steps != 1000 {
		t.Errorf("final emission = %+v", last)
	}
	if last.Rate != 1.0 {
		t.Errorf("Rate = %v, want 1.0 trials/sec", last.Rate)
	}
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
}

// TestReporterZeroIntervalEmitsAll pins that a non-positive interval
// forwards every observation.
func TestReporterZeroIntervalEmitsAll(t *testing.T) {
	sink := &captureSink{}
	r := NewReporter(sink, 0)
	for i := 1; i <= 5; i++ {
		r.Observe(i, 5, 0, 0, time.Second, i == 5)
	}
	if len(sink.snaps) != 5 {
		t.Fatalf("got %d emissions, want 5", len(sink.snaps))
	}
}

// TestReporterETA checks the remaining-time estimate.
func TestReporterETA(t *testing.T) {
	sink := &captureSink{}
	r := NewReporter(sink, 0)
	r.Observe(25, 100, 0, 0, 5*time.Second, false) // 5 trials/sec, 75 left
	if got, want := sink.snaps[0].ETA, 15*time.Second; got != want {
		t.Errorf("ETA = %v, want %v", got, want)
	}
}

// TestNilReporterAndSink pins nil-safety: a nil Reporter no-ops and a nil
// sink discards.
func TestNilReporterAndSink(t *testing.T) {
	var r *Reporter
	r.Observe(1, 2, 0, 0, time.Second, true) // must not panic
	r2 := NewReporter(nil, 0)
	r2.Observe(1, 2, 0, 0, time.Second, true) // must not panic
}

// TestTextSink checks the human-readable line format.
func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	Text(&buf).Emit(Snapshot{Done: 620, Total: 1000, Violations: 2, Rate: 41.3, ETA: 9 * time.Second})
	line := buf.String()
	for _, want := range []string{"620/1000", "62.0%", "41.3/s", "eta 9s", "violations 2"} {
		if !strings.Contains(line, want) {
			t.Errorf("text line %q missing %q", line, want)
		}
	}
	buf.Reset()
	Text(&buf).Emit(Snapshot{Done: 10, Total: 10, Final: true})
	if !strings.Contains(buf.String(), "done") {
		t.Errorf("final line %q missing done marker", buf.String())
	}
}

// TestJSONLinesSink checks one-object-per-line output that round-trips.
func TestJSONLinesSink(t *testing.T) {
	var buf bytes.Buffer
	s := JSONLines(&buf)
	s.Emit(Snapshot{Done: 1, Total: 4})
	s.Emit(Snapshot{Done: 4, Total: 4, Final: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(lines[1]), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Done != 4 || !snap.Final {
		t.Errorf("decoded snapshot = %+v", snap)
	}
}

// TestDiscardSink just exercises the silent sink.
func TestDiscardSink(t *testing.T) {
	Discard().Emit(Snapshot{Done: 1})
}
