package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNewManifestFillsToolchain pins that the toolchain fields are populated
// and the JSON shape carries every promised key.
func TestNewManifestFillsToolchain(t *testing.T) {
	m := NewManifest("modcon-bench")
	if m.Tool != "modcon-bench" {
		t.Errorf("Tool = %q", m.Tool)
	}
	if !strings.HasPrefix(m.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go*", m.GoVersion)
	}
	if m.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d", m.GOMAXPROCS)
	}
	if m.GitRevision == "" {
		t.Errorf("GitRevision empty; want revision or \"unknown\"")
	}
	m.Seed = 42
	m.Backend = "sim"
	m.FaultPlan = "crash:pid=0,after=5"
	m.Config = map[string]string{"trials": "100"}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tool"`, `"seed"`, `"config"`, `"faultPlan"`, `"backend"`, `"goVersion"`, `"gomaxprocs"`, `"gitRevision"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("manifest JSON missing %s: %s", key, b)
		}
	}
}

// TestGitRevisionEnvFallback pins the injection seam: test binaries carry
// no VCS stamp, so MODCON_GIT_REVISION must win over "unknown" — exactly
// the path CI uses to attribute BENCH artifacts to a commit.
func TestGitRevisionEnvFallback(t *testing.T) {
	if stampedRevision() != "" {
		t.Skip("binary carries a VCS stamp; the env fallback is unreachable")
	}
	t.Setenv("MODCON_GIT_REVISION", "abc123def")
	if m := NewManifest("t"); m.GitRevision != "abc123def" {
		t.Errorf("GitRevision = %q, want env fallback abc123def", m.GitRevision)
	}
	t.Setenv("MODCON_GIT_REVISION", "")
	if m := NewManifest("t"); m.GitRevision != "unknown" {
		t.Errorf("GitRevision = %q, want unknown without stamp or env", m.GitRevision)
	}
}

// TestMeter pins the nil-safety and counting contracts of the step meter.
func TestMeter(t *testing.T) {
	var nilMeter *Meter
	nilMeter.AddSteps(5) // must not panic
	if nilMeter.Steps() != 0 {
		t.Fatal("nil meter counted")
	}
	nilMeter.Reset()

	m := &Meter{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddSteps(1)
			}
		}()
	}
	wg.Wait()
	if got := m.Steps(); got != 8000 {
		t.Fatalf("Steps = %d, want 8000", got)
	}
	m.Reset()
	if m.Steps() != 0 {
		t.Fatalf("Reset failed")
	}
}
