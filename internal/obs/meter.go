package obs

import "sync/atomic"

// Meter is the live step counter the backends update while an execution is
// in flight, giving progress sinks visibility inside long trials (merged
// trial counts only move when a trial finishes; the meter moves every step).
//
// The contract with the backends is strict: a nil *Meter must cost exactly
// one predictable branch per step and zero allocations — that is the
// "zero overhead when off" guarantee pinned by the sim allocation tests.
// When non-nil, each step costs one atomic add.
//
// A single Meter may be shared across all trials of a sweep and across
// worker goroutines; all methods are safe for concurrent use.
type Meter struct {
	steps atomic.Int64
}

// AddSteps records n executed steps/ops. Safe on a nil receiver (no-op), so
// backends can call it unconditionally outside their hot path.
func (m *Meter) AddSteps(n int64) {
	if m == nil {
		return
	}
	m.steps.Add(n)
}

// Steps returns the total steps recorded so far.
func (m *Meter) Steps() int64 {
	if m == nil {
		return 0
	}
	return m.steps.Load()
}

// Reset zeroes the counter (between sweeps that reuse one Meter).
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.steps.Store(0)
}
