package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Snapshot is one progress observation of a running sweep, emitted to a Sink
// by a Reporter. Rate and ETA are derived from Done/Total/Elapsed at emission
// time.
type Snapshot struct {
	// Done is the number of trials merged so far.
	Done int `json:"done"`
	// Total is the number of trials the sweep will run.
	Total int `json:"total"`
	// Violations counts safety violations classified so far (resilient
	// engine only; always 0 under the plain engine).
	Violations int `json:"violations"`
	// Steps is the total step/op count folded from merged trials.
	Steps int64 `json:"steps"`
	// Elapsed is the wall-clock time since the sweep started.
	Elapsed time.Duration `json:"elapsedNs"`
	// Rate is the merge throughput in trials per second.
	Rate float64 `json:"trialsPerSec"`
	// ETA estimates the remaining wall-clock time from Rate; zero when the
	// rate is not yet measurable.
	ETA time.Duration `json:"etaNs"`
	// Final marks the last snapshot of a sweep (Done == Total, or the sweep
	// stopped early).
	Final bool `json:"final"`
}

// Sink consumes progress snapshots. Implementations must be safe for use
// from a single reporting goroutine; they are never called concurrently by a
// Reporter.
type Sink interface {
	Emit(Snapshot)
}

// textSink renders one human-readable line per snapshot.
type textSink struct{ w io.Writer }

// Text returns a Sink that writes one human-readable progress line per
// snapshot, e.g.
//
//	trials 620/1000 (62.0%)  41.3/s  eta 9s  violations 0
func Text(w io.Writer) Sink { return textSink{w: w} }

func (s textSink) Emit(p Snapshot) {
	pct := 0.0
	if p.Total > 0 {
		pct = 100 * float64(p.Done) / float64(p.Total)
	}
	eta := "-"
	if p.ETA > 0 {
		eta = p.ETA.Round(time.Second).String()
	}
	tag := ""
	if p.Final {
		tag = "  done"
	}
	fmt.Fprintf(s.w, "trials %d/%d (%.1f%%)  %.1f/s  eta %s  violations %d%s\n",
		p.Done, p.Total, pct, p.Rate, eta, p.Violations, tag)
}

// jsonSink emits one JSON object per line per snapshot.
type jsonSink struct{ w io.Writer }

// JSONLines returns a Sink that writes each snapshot as a single JSON object
// on its own line (JSON Lines), suitable for machine consumption.
func JSONLines(w io.Writer) Sink { return jsonSink{w: w} }

func (s jsonSink) Emit(p Snapshot) {
	b, err := json.Marshal(p)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.w.Write(b)
}

// discardSink drops every snapshot.
type discardSink struct{}

// Discard returns a Sink that drops every snapshot — the silent option for
// callers that want reporter plumbing without output.
func Discard() Sink { return discardSink{} }

func (discardSink) Emit(Snapshot) {}

// Reporter throttles progress observations to a Sink: at most one emission
// per Interval, plus always the final observation. A Reporter derives Rate
// and ETA from the observation stream, so callers only feed it raw counts.
//
// Reporter is safe for concurrent use; the harness calls Observe from its
// single merge goroutine, but public callers may share one across sweeps.
type Reporter struct {
	mu       sync.Mutex
	sink     Sink
	interval time.Duration
	last     time.Time
	emitted  bool
}

// NewReporter returns a Reporter that forwards at most one snapshot per
// interval to sink, plus the final snapshot of every sweep. A non-positive
// interval emits every observation. A nil sink discards everything.
func NewReporter(sink Sink, interval time.Duration) *Reporter {
	if sink == nil {
		sink = Discard()
	}
	return &Reporter{sink: sink, interval: interval}
}

// Observe feeds one progress observation. It is throttled: forwarded to the
// sink only if the interval has elapsed since the last emission, or if final
// is set (a final observation is never dropped).
func (r *Reporter) Observe(done, total, violations int, steps int64, elapsed time.Duration, final bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if !final && r.emitted && r.interval > 0 && now.Sub(r.last) < r.interval {
		return
	}
	r.last = now
	r.emitted = true

	snap := Snapshot{
		Done: done, Total: total, Violations: violations,
		Steps: steps, Elapsed: elapsed, Final: final,
	}
	if sec := elapsed.Seconds(); sec > 0 && done > 0 {
		snap.Rate = float64(done) / sec
		if remaining := total - done; remaining > 0 {
			snap.ETA = time.Duration(float64(remaining) / snap.Rate * float64(time.Second))
		}
	}
	r.sink.Emit(snap)
}
