package register

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/value"
)

// Semantics selects the consistency model a register file provides to the
// processes reading and writing it. The paper's model (§2) assumes Atomic;
// the two weaker/stronger variants come from the retrieved follow-up work:
// regular registers from Hadzilacos–Hu–Toueg (Randomized Consensus with
// Regular Registers) and interposed linearizable implementations from
// Attiya–Enea–Welch (Blunting an Adversary Against Randomized Concurrent
// Programs with Linearizable Implementations).
//
// The zero value is Atomic, so every pre-existing configuration keeps its
// exact behavior without spelling anything out.
type Semantics int

const (
	// Atomic registers return the last value written; reads and writes are
	// totally ordered by the schedule. This is the paper's base model and
	// the default everywhere.
	Atomic Semantics = iota
	// Regular registers allow a read that overlaps a write to return either
	// the old or the new value. The runtime resolves each overlapping read
	// deterministically from the schedule plus a dedicated RNG stream, so
	// trials stay reproducible bit for bit.
	Regular
	// Interposed registers are atomic registers reached through a
	// linearizable implementation layer. Following Attiya–Enea–Welch, the
	// interposition blunts a strong adversary: it can no longer observe the
	// contents of operations that are in flight inside the implementation,
	// only completed state. Reads return the same values Atomic would.
	Interposed
)

// String names the model as used in flags, manifests, and trace strings.
func (s Semantics) String() string {
	switch s {
	case Atomic:
		return "atomic"
	case Regular:
		return "regular"
	case Interposed:
		return "interposed"
	default:
		return fmt.Sprintf("semantics(%d)", int(s))
	}
}

// ParseSemantics maps a flag/manifest string back to its model.
func ParseSemantics(s string) (Semantics, error) {
	switch s {
	case "", "atomic":
		return Atomic, nil
	case "regular":
		return Regular, nil
	case "interposed":
		return Interposed, nil
	default:
		return Atomic, fmt.Errorf("register: unknown semantics %q (atomic, regular, or interposed)", s)
	}
}

// SemanticsSet is a bitmask of supported register models, reported by each
// execution backend in its capabilities.
type SemanticsSet uint8

// SetOf builds a SemanticsSet from the given models.
func SetOf(models ...Semantics) SemanticsSet {
	var set SemanticsSet
	for _, m := range models {
		set |= 1 << uint(m)
	}
	return set
}

// Has reports whether the set contains the model.
func (s SemanticsSet) Has(m Semantics) bool {
	return s&(1<<uint(m)) != 0
}

// Allocator is the layout-time face of a register file: the subset of File
// that objects use at construction to claim registers and set initial
// values. Objects take an Allocator instead of a *File so they are
// indifferent to which semantics the file will run under — the model is an
// execution-time property, chosen per run, not baked into the object.
type Allocator interface {
	// Alloc allocates n fresh registers initialized to ⊥.
	Alloc(n int, name string) Array
	// Alloc1 allocates a single register.
	Alloc1(name string) Reg
	// Init sets the initial value of a register before any execution.
	Init(r Reg, v value.Value)
}

// A File is an Allocator under every semantics model.
var _ Allocator = (*File)(nil)
