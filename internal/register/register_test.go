package register

import (
	"testing"
	"testing/quick"

	"github.com/modular-consensus/modcon/internal/value"
)

func TestAllocInitializesToNone(t *testing.T) {
	f := NewFile()
	a := f.Alloc(4, "q")
	if f.Len() != 4 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i := 0; i < a.Len; i++ {
		if !f.Load(a.At(i)).IsNone() {
			t.Fatalf("register %d not ⊥ after alloc", i)
		}
	}
}

func TestStoreLoad(t *testing.T) {
	f := NewFile()
	r := f.Alloc1("x")
	f.Store(r, 42)
	if got := f.Load(r); got != 42 {
		t.Fatalf("Load = %s", got)
	}
	f.Store(r, 7)
	if got := f.Load(r); got != 7 {
		t.Fatalf("Load after overwrite = %s", got)
	}
}

func TestInit(t *testing.T) {
	f := NewFile()
	r := f.Alloc1("b")
	f.Init(r, 0)
	if got := f.Load(r); got != 0 {
		t.Fatalf("Load after Init = %s", got)
	}
}

func TestReadReturnsLastWrite(t *testing.T) {
	// Register semantics property: a read returns the most recent store.
	f := NewFile()
	a := f.Alloc(8, "m")
	last := make(map[Reg]value.Value)
	check := func(ops []uint16) bool {
		for _, op := range ops {
			r := a.At(int(op) % a.Len)
			if op&1 == 0 {
				v := value.Value(op >> 1)
				f.Store(r, v)
				last[r] = v
			} else {
				want, ok := last[r]
				if !ok {
					want = value.None
				}
				if f.Load(r) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	f := NewFile()
	a := f.Alloc(3, "s")
	f.Store(a.At(0), 1)
	f.Store(a.At(2), 3)
	snap := f.Snapshot(a)
	if len(snap) != 3 || snap[0] != 1 || !snap[1].IsNone() || snap[2] != 3 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Snapshot must be a copy.
	snap[0] = 99
	if f.Load(a.At(0)) != 1 {
		t.Fatal("Snapshot aliases file memory")
	}
}

func TestContentsIsCopy(t *testing.T) {
	f := NewFile()
	r := f.Alloc1("c")
	f.Store(r, 5)
	c := f.Contents()
	c[0] = 6
	if f.Load(r) != 5 {
		t.Fatal("Contents aliases file memory")
	}
}

func TestReset(t *testing.T) {
	f := NewFile()
	a := f.Alloc(2, "z")
	f.Store(a.At(0), 1)
	f.Store(a.At(1), 2)
	f.Reset()
	for i := 0; i < 2; i++ {
		if !f.Load(a.At(i)).IsNone() {
			t.Fatalf("register %d not ⊥ after Reset", i)
		}
	}
}

func TestNames(t *testing.T) {
	f := NewFile()
	r := f.Alloc1("proposal")
	a := f.Alloc(2, "w")
	if got := f.Name(r); got != "proposal" {
		t.Fatalf("Name = %q", got)
	}
	if got := f.Name(a.At(1)); got != "w[1]" {
		t.Fatalf("Name = %q", got)
	}
}

func TestArrayAtBounds(t *testing.T) {
	a := Array{Base: 2, Len: 3}
	if a.At(0) != 2 || a.At(2) != 4 {
		t.Fatalf("At mapping wrong: %d %d", a.At(0), a.At(2))
	}
	for _, i := range []int{-1, 3} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			a.At(i)
		}(i)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	f := NewFile()
	f.Alloc(1, "a")
	for name, fn := range map[string]func(){
		"load":     func() { f.Load(5) },
		"store":    func() { f.Store(-1, 0) },
		"negalloc": func() { f.Alloc(-1, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAllocationsAreContiguousAndFresh(t *testing.T) {
	f := NewFile()
	a := f.Alloc(3, "a")
	b := f.Alloc(2, "b")
	if a.Base != 0 || b.Base != 3 {
		t.Fatalf("bases: %d %d", a.Base, b.Base)
	}
	f.Store(a.At(2), 9)
	if !f.Load(b.At(0)).IsNone() {
		t.Fatal("blocks overlap")
	}
}
