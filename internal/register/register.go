// Package register implements the shared memory of the model: a growable
// file of atomic multi-writer multi-reader registers.
//
// In the paper's model (§2) memory is a set of atomic registers; the value
// returned by each read equals the last value written. The simulated runtime
// executes at most one operation at a time, so the File here needs no
// internal locking — atomicity is provided by the scheduler. (The live
// backend in internal/live provides a sync/atomic-based register file for
// free-running goroutines.)
//
// Registers are allocated through an Allocator, which the consensus
// constructions use to lay out the (conceptually unbounded) sequence of
// conciliator and ratifier objects deterministically: every process computes
// the same addresses without communication.
package register

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/value"
)

// Reg is a register handle: an index into a File.
type Reg int

// Array is a contiguous block of registers, used for write/read quorums and
// for the collect operation.
type Array struct {
	Base Reg
	Len  int
}

// At returns the i-th register of the array.
func (a Array) At(i int) Reg {
	if i < 0 || i >= a.Len {
		panic(fmt.Sprintf("register: array index %d out of [0,%d)", i, a.Len))
	}
	return a.Base + Reg(i)
}

// File is a growable register file. All registers are initialized to ⊥
// unless overridden with Init.
type File struct {
	cells []value.Value
	// spans records one entry per Alloc call; per-cell debug names are
	// derived lazily on Name lookup, so allocating a large file never pays
	// O(cells) string formatting up front (names only matter for traces and
	// error messages, which are off the hot path by construction).
	spans []nameSpan
	// semantics is the consistency model this file runs under. It is set by
	// the execution backend from the run configuration (SetSemantics); the
	// zero value Atomic matches the paper's base model. Name and the error
	// strings report it for non-atomic files so traces and failures
	// self-describe which model produced them.
	semantics Semantics
}

// nameSpan labels the contiguous block of registers from one Alloc call.
type nameSpan struct {
	base int
	n    int
	name string
}

// NewFile returns an empty register file.
func NewFile() *File {
	return &File{}
}

// Alloc allocates n fresh registers initialized to ⊥ and returns the block.
// name is a debug label for traces; it is stored once per block and expanded
// to "name[i]" lazily on the first Name lookup of a cell.
func (f *File) Alloc(n int, name string) Array {
	if n < 0 {
		panic("register: Alloc with negative count")
	}
	base := Reg(len(f.cells))
	for i := 0; i < n; i++ {
		f.cells = append(f.cells, value.None)
	}
	if n > 0 {
		f.spans = append(f.spans, nameSpan{base: int(base), n: n, name: name})
	}
	return Array{Base: base, Len: n}
}

// Alloc1 allocates a single register and returns its handle.
func (f *File) Alloc1(name string) Reg {
	return f.Alloc(1, name).Base
}

// Init sets the initial (current) value of a register. Protocols whose
// registers start at a non-⊥ value (e.g. binary announcement registers
// starting at 0) call this at construction time, before any execution.
func (f *File) Init(r Reg, v value.Value) {
	f.cells[f.check(r)] = v
}

// Load returns the current value of r.
func (f *File) Load(r Reg) value.Value {
	return f.cells[f.check(r)]
}

// Store sets the current value of r.
func (f *File) Store(r Reg, v value.Value) {
	f.cells[f.check(r)] = v
}

// Snapshot copies the contents of an array (used for Collect).
func (f *File) Snapshot(a Array) []value.Value {
	out := make([]value.Value, a.Len)
	copy(out, f.cells[a.Base:a.Base+Reg(a.Len)])
	return out
}

// SnapshotAppend appends the contents of an array to dst and returns the
// extended slice. The allocation-free form of Snapshot: the simulator calls
// it with a reused buffer on every cheap-collect step.
func (f *File) SnapshotAppend(dst []value.Value, a Array) []value.Value {
	if a.Len > 0 {
		f.check(a.Base)
		f.check(a.Base + Reg(a.Len) - 1)
	}
	return append(dst, f.cells[a.Base:a.Base+Reg(a.Len)]...)
}

// Len returns the number of allocated registers.
func (f *File) Len() int { return len(f.cells) }

// Name returns the debug name of r ("label" for single-register blocks,
// "label[i]" within larger blocks), or "r<i>" if unnamed. The string is
// formatted on demand — allocation names are stored per block, not per cell.
func (f *File) Name(r Reg) string {
	i := f.check(r)
	// Binary search the spans (sorted by base, non-overlapping) for i.
	lo, hi := 0, len(f.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.spans[mid].base+f.spans[mid].n <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var name string
	if lo < len(f.spans) && f.spans[lo].base <= i && f.spans[lo].name != "" {
		s := f.spans[lo]
		if s.n == 1 {
			name = s.name
		} else {
			name = fmt.Sprintf("%s[%d]", s.name, i-s.base)
		}
	} else {
		name = fmt.Sprintf("r%d", i)
	}
	// Atomic names stay exactly as they always were (golden traces depend on
	// them); weaker/stronger models tag every lookup so a trace line or error
	// can never be misread as atomic behavior.
	if f.semantics != Atomic {
		name += "@" + f.semantics.String()
	}
	return name
}

// SetSemantics records the consistency model this file runs under. Execution
// backends call it when lowering a run configuration; it has no effect on
// the stored values, only on how reads are resolved by the backend and how
// names and errors describe the file.
func (f *File) SetSemantics(s Semantics) { f.semantics = s }

// Semantics returns the consistency model recorded by SetSemantics
// (Atomic unless overridden).
func (f *File) Semantics() Semantics { return f.semantics }

// Contents returns a copy of the whole memory. Used where a fresh, caller-
// owned image is wanted (tests, archival); the simulator's hot path uses
// AppendContents with a reused buffer instead.
func (f *File) Contents() []value.Value {
	out := make([]value.Value, len(f.cells))
	copy(out, f.cells)
	return out
}

// AppendContents appends the whole memory to dst and returns the extended
// slice. The allocation-free form of Contents, used to rebuild adversary
// views for location-oblivious and adaptive adversaries every step.
func (f *File) AppendContents(dst []value.Value) []value.Value {
	return append(dst, f.cells...)
}

// Reset restores every register to ⊥. Inits must be re-applied by the owner;
// engines that reuse a file across executions snapshot the post-Init image
// with Contents and put it back with Restore instead.
func (f *File) Reset() {
	for i := range f.cells {
		f.cells[i] = value.None
	}
}

// Restore overwrites the file's contents with a previously captured image
// (see Contents), without allocating. It returns an error if the file has
// grown since the image was taken — a protocol that allocates registers
// mid-execution cannot be pooled, and silently restoring a prefix would
// corrupt the next run.
func (f *File) Restore(img []value.Value) error {
	if len(img) != len(f.cells) {
		return fmt.Errorf("register: restore image has %d cells, %s file has %d (the file grew after the image was taken)", len(img), f.semantics, len(f.cells))
	}
	copy(f.cells, img)
	return nil
}

func (f *File) check(r Reg) int {
	if r < 0 || int(r) >= len(f.cells) {
		panic(fmt.Sprintf("register: access to unallocated register %d (%s file, size %d)", r, f.semantics, len(f.cells)))
	}
	return int(r)
}
