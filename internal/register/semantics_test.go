package register

import (
	"strings"
	"testing"

	"github.com/modular-consensus/modcon/internal/value"
)

func TestSemanticsStringAndParse(t *testing.T) {
	cases := []struct {
		model Semantics
		str   string
	}{
		{Atomic, "atomic"},
		{Regular, "regular"},
		{Interposed, "interposed"},
	}
	for _, c := range cases {
		if got := c.model.String(); got != c.str {
			t.Errorf("%d.String() = %q, want %q", int(c.model), got, c.str)
		}
		parsed, err := ParseSemantics(c.str)
		if err != nil || parsed != c.model {
			t.Errorf("ParseSemantics(%q) = %v, %v; want %v, nil", c.str, parsed, err, c.model)
		}
	}
	if parsed, err := ParseSemantics(""); err != nil || parsed != Atomic {
		t.Errorf("ParseSemantics(\"\") = %v, %v; want Atomic, nil", parsed, err)
	}
	if _, err := ParseSemantics("linearizabull"); err == nil {
		t.Error("ParseSemantics of garbage did not error")
	}
}

func TestSemanticsSet(t *testing.T) {
	set := SetOf(Atomic, Interposed)
	if !set.Has(Atomic) || !set.Has(Interposed) {
		t.Errorf("set %b missing a member it was built from", set)
	}
	if set.Has(Regular) {
		t.Errorf("set %b contains Regular, which was not added", set)
	}
	var zero SemanticsSet
	if zero.Has(Atomic) {
		t.Error("zero set claims to contain Atomic")
	}
}

func TestFileSemanticsDefaultAndSet(t *testing.T) {
	f := NewFile()
	if f.Semantics() != Atomic {
		t.Fatalf("fresh file semantics = %v, want Atomic", f.Semantics())
	}
	f.SetSemantics(Regular)
	if f.Semantics() != Regular {
		t.Fatalf("after SetSemantics(Regular): %v", f.Semantics())
	}
}

// Non-atomic files tag every Name lookup with their model, so a trace line
// or error string can never be misread as atomic behavior; atomic names are
// byte-identical to what they always were (golden traces depend on that).
func TestNameCarriesSemanticsTag(t *testing.T) {
	f := NewFile()
	r := f.Alloc1("C0.r")
	a := f.Alloc(2, "coin0.tally")
	f.Alloc(1, "") // unnamed

	if got := f.Name(r); got != "C0.r" {
		t.Errorf("atomic Name = %q, want bare %q", got, "C0.r")
	}
	f.SetSemantics(Regular)
	if got := f.Name(r); got != "C0.r@regular" {
		t.Errorf("regular Name = %q, want %q", got, "C0.r@regular")
	}
	if got := f.Name(a.At(1)); got != "coin0.tally[1]@regular" {
		t.Errorf("regular array Name = %q, want %q", got, "coin0.tally[1]@regular")
	}
	if got := f.Name(3); got != "r3@regular" {
		t.Errorf("regular unnamed Name = %q, want %q", got, "r3@regular")
	}
	f.SetSemantics(Interposed)
	if got := f.Name(r); got != "C0.r@interposed" {
		t.Errorf("interposed Name = %q, want %q", got, "C0.r@interposed")
	}
	f.SetSemantics(Atomic)
	if got := f.Name(r); got != "C0.r" {
		t.Errorf("Name after returning to Atomic = %q, want bare %q", got, "C0.r")
	}
}

// Pins the pooled-session contract around Contents/Restore when the file
// grows between image capture and restore: the stale image must be rejected
// (silently restoring a prefix would corrupt the next trial), a fresh image
// must round-trip exactly, and Name lookups must stay correct across the
// growth — the lazy span search must not be confused by post-capture Allocs.
func TestNamesAndRestoreRoundTripAfterGrowth(t *testing.T) {
	f := NewFile()
	first := f.Alloc(3, "stage0")
	f.Init(first.At(0), 7)
	img := f.Contents()

	// Grow the file after the image was taken.
	extra := f.Alloc(2, "stage1")
	f.Init(extra.At(1), 9)

	err := f.Restore(img)
	if err == nil {
		t.Fatal("Restore of a pre-growth image succeeded; want error")
	}
	if !strings.Contains(err.Error(), "3 cells") || !strings.Contains(err.Error(), "5") {
		t.Errorf("growth error %q does not mention both sizes", err)
	}

	// A fresh image round-trips exactly, growth included.
	img2 := f.Contents()
	f.Store(first.At(0), 42)
	f.Store(extra.At(1), 43)
	if err := f.Restore(img2); err != nil {
		t.Fatalf("Restore of current image: %v", err)
	}
	if got := f.Load(first.At(0)); got != 7 {
		t.Errorf("restored stage0[0] = %s, want 7", got)
	}
	if got := f.Load(extra.At(1)); got != 9 {
		t.Errorf("restored stage1[1] = %s, want 9", got)
	}
	if got := f.Load(extra.At(0)); got != value.None {
		t.Errorf("restored stage1[0] = %s, want ⊥", got)
	}

	// Name lookups remain correct for spans allocated both before and after
	// the image dance.
	for i := 0; i < 3; i++ {
		want := "stage0[" + string(rune('0'+i)) + "]"
		if got := f.Name(first.At(i)); got != want {
			t.Errorf("Name(stage0[%d]) = %q, want %q", i, got, want)
		}
	}
	if got := f.Name(extra.At(0)); got != "stage1[0]" {
		t.Errorf("Name(stage1[0]) = %q", got)
	}

	// The semantics tag composes with the growth error string.
	f.SetSemantics(Interposed)
	if err := f.Restore(img); err == nil || !strings.Contains(err.Error(), "interposed") {
		t.Errorf("non-atomic growth error %v does not name the model", err)
	}
}
