package conciliator

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sharedcoin"
	"github.com/modular-consensus/modcon/internal/value"
)

// FromCoin is Procedure CoinConciliator (§5.1, Theorem 6): a 2-valued
// conciliator built from any weak shared coin, with validity enforced by two
// binary registers.
//
//	shared data: binary registers r₀ and r₁, initially 0; weak shared coin
//
//	r_v ← 1
//	if r_{¬v} = 1 then return (0, SharedCoin())
//	else return (0, v)
//
// If some process skips the coin and returns v, it wrote r_v before reading
// 0 from r_{¬v}; every process with input ¬v therefore sees r_v = 1 and runs
// the coin, so with probability ≥ δ (the coin's agreement probability on
// side v) all outputs equal v.
type FromCoin struct {
	r0, r1 register.Reg
	coin   sharedcoin.Coin
	label  string
}

var _ core.Object = (*FromCoin)(nil)

// NewFromCoin allocates the conciliator's two binary registers and wires in
// the shared coin. mem is any register allocator — a *register.File under
// any consistency model.
func NewFromCoin(mem register.Allocator, coin sharedcoin.Coin, index int) *FromCoin {
	label := fmt.Sprintf("CC%d", index)
	c := &FromCoin{
		r0:    mem.Alloc1(label + ".r0"),
		r1:    mem.Alloc1(label + ".r1"),
		coin:  coin,
		label: label,
	}
	mem.Init(c.r0, 0)
	mem.Init(c.r1, 0)
	return c
}

// Invoke implements core.Object. Inputs must be 0 or 1.
func (c *FromCoin) Invoke(e core.Env, v value.Value) value.Decision {
	mine, other := c.r0, c.r1
	if v == 1 {
		mine, other = c.r1, c.r0
	} else if v != 0 {
		panic(fmt.Sprintf("conciliator: FromCoin input %s is not binary", v))
	}
	e.Write(mine, 1)
	if e.Read(other) == 1 {
		return value.Continue(c.coin.Flip(e))
	}
	return value.Continue(v)
}

// Label implements core.Object.
func (c *FromCoin) Label() string { return c.label }
