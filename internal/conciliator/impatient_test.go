package conciliator

import (
	"fmt"
	"math"
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

// runOnce builds a fresh Impatient conciliator and executes it.
func runOnce(t *testing.T, n int, inputs []value.Value, s sched.Scheduler, seed uint64, mod func(*Impatient)) *harness.ObjectRun {
	t.Helper()
	file := register.NewFile()
	c := NewImpatient(file, n, 1)
	if mod != nil {
		mod(c)
	}
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: n, File: file, Inputs: inputs, Scheduler: s, Seed: seed,
	})
	if err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	return run
}

func distinctInputs(n int) []value.Value {
	in := make([]value.Value, n)
	for i := range in {
		in[i] = value.Value(i)
	}
	return in
}

func TestValidityAndNeverDecides(t *testing.T) {
	// A conciliator must output somebody's input and must always return
	// decision bit 0 (coherence is vacuous).
	schedulers := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRoundRobin() },
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewFirstMoverAttack() },
		func() sched.Scheduler { return sched.NewEagerWriteAttack() },
		func() sched.Scheduler { return sched.NewLaggard() },
	}
	for _, mk := range schedulers {
		for _, n := range []int{1, 2, 3, 8, 17} {
			for seed := uint64(0); seed < 20; seed++ {
				run := runOnce(t, n, distinctInputs(n), mk(), seed, nil)
				if err := check.Validity(distinctInputs(n), run.Outputs()); err != nil {
					t.Fatal(err)
				}
				for pid, d := range run.Decisions {
					if d.Decided {
						t.Fatalf("conciliator decided at pid %d", pid)
					}
				}
			}
		}
	}
}

func TestAllSameInputAgree(t *testing.T) {
	// Validity pins the output when all inputs are equal.
	for seed := uint64(0); seed < 50; seed++ {
		run := runOnce(t, 5, []value.Value{7}, sched.NewUniformRandom(), seed, nil)
		for _, v := range run.Outputs() {
			if v != 7 {
				t.Fatalf("output %s with unanimous input 7", v)
			}
		}
	}
}

func TestIndividualWorkBound(t *testing.T) {
	// Theorem 7: at most 2 lg n + O(1) operations per process, on *every*
	// execution, for every adversary.
	for _, n := range []int{1, 2, 3, 4, 7, 16, 33, 128, 1000} {
		file := register.NewFile()
		c := NewImpatient(file, n, 1)
		bound := c.MaxIndividualWork()
		paper := 2*int(math.Ceil(math.Log2(float64(n)))) + 5
		if n == 1 {
			paper = 5
		}
		if bound > paper {
			t.Fatalf("n=%d: MaxIndividualWork=%d exceeds 2⌈lg n⌉+5=%d", n, bound, paper)
		}
		for seed := uint64(0); seed < 10; seed++ {
			for _, s := range []sched.Scheduler{sched.NewRoundRobin(), sched.NewFirstMoverAttack(), sched.NewFrontrunner()} {
				run := runOnce(t, n, distinctInputs(n), s, seed, nil)
				if err := check.IndividualWorkBound(run.Result.Work, bound); err != nil {
					t.Fatalf("n=%d seed=%d %s: %v", n, seed, s.Name(), err)
				}
			}
		}
	}
}

func TestExpectedTotalWorkLinear(t *testing.T) {
	// Theorem 7: expected total work ≤ 6n, even under the attack scheduler.
	for _, n := range []int{4, 16, 64} {
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewRoundRobin() },
			func() sched.Scheduler { return sched.NewFirstMoverAttack() },
		} {
			const trials = 150
			total := 0
			var name string
			for seed := uint64(0); seed < trials; seed++ {
				s := mk()
				name = s.Name()
				run := runOnce(t, n, distinctInputs(n), s, seed, nil)
				total += run.Result.TotalWork
			}
			mean := float64(total) / trials
			if mean > 6*float64(n)+10 {
				t.Errorf("n=%d %s: mean total work %.1f exceeds 6n=%d", n, name, mean, 6*n)
			}
		}
	}
}

func TestAgreementProbabilityAboveDelta(t *testing.T) {
	// Theorem 7: agreement probability ≥ (1-e^{-1/4})/4 ≈ 0.0553 for any
	// location-oblivious adversary. Empirically even the tuned attack
	// leaves substantially more than δ; assert the bound itself with head
	// room for sampling error.
	const trials = 600
	for _, n := range []int{2, 8, 32} {
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewFirstMoverAttack() },
			func() sched.Scheduler { return sched.NewEagerWriteAttack() },
			func() sched.Scheduler { return sched.NewRoundRobin() },
			func() sched.Scheduler { return sched.NewLaggard() },
		} {
			agree := 0
			var name string
			for seed := uint64(0); seed < trials; seed++ {
				s := mk()
				name = s.Name()
				run := runOnce(t, n, distinctInputs(n), s, seed, nil)
				if check.Unanimous(run.Outputs()) {
					agree++
				}
			}
			delta := float64(agree) / trials
			if delta < 0.0553 {
				t.Errorf("n=%d %s: empirical δ = %.4f below paper bound 0.0553", n, name, delta)
			}
		}
	}
}

func TestDetectSuccessSavesWork(t *testing.T) {
	// Footnote 2: returning immediately after a detected successful write
	// saves up to 2 operations; it must never produce invalid outputs.
	n := 16
	saved := false
	for seed := uint64(0); seed < 100; seed++ {
		plain := runOnce(t, n, distinctInputs(n), sched.NewRoundRobin(), seed, nil)
		detect := runOnce(t, n, distinctInputs(n), sched.NewRoundRobin(), seed,
			func(c *Impatient) { c.DetectSuccess = true })
		if err := check.Validity(distinctInputs(n), detect.Outputs()); err != nil {
			t.Fatal(err)
		}
		if detect.Result.TotalWork < plain.Result.TotalWork {
			saved = true
		}
		if detect.Result.TotalWork > plain.Result.TotalWork {
			t.Fatalf("seed %d: detection increased work %d -> %d", seed,
				plain.Result.TotalWork, detect.Result.TotalWork)
		}
	}
	if !saved {
		t.Error("write detection never saved any work in 100 runs")
	}
}

func TestConstantRateSoloIsLinear(t *testing.T) {
	// The CIL/Cheung baseline running solo needs Θ(n) expected operations;
	// the impatient conciliator needs Θ(log n). This is the paper's core
	// individual-work separation.
	n := 64
	const trials = 60
	sumConst, sumImp := 0, 0
	for seed := uint64(0); seed < trials; seed++ {
		fileC := register.NewFile()
		cc := NewConstantRate(fileC, n, 1)
		runC, err := harness.RunObject(cc, harness.ObjectConfig{
			N: 1, File: fileC, Inputs: []value.Value{3}, Scheduler: sched.NewRoundRobin(), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sumConst += runC.Result.TotalWork

		fileI := register.NewFile()
		ci := NewImpatient(fileI, n, 1) // n=64 probabilities, one participant
		runI2, err := harness.RunObject(ci, harness.ObjectConfig{
			N: 1, File: fileI, Inputs: []value.Value{3}, Scheduler: sched.NewRoundRobin(), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sumImp += runI2.Result.TotalWork
	}
	meanConst := float64(sumConst) / trials
	meanImp := float64(sumImp) / trials
	if meanConst < float64(n)/2 {
		t.Errorf("constant-rate solo mean work %.1f, expected ≈ 2n = %d", meanConst, 2*n)
	}
	if meanImp > 4*math.Log2(float64(n)) {
		t.Errorf("impatient solo mean work %.1f, expected ≈ 2 lg n = %.1f", meanImp, 2*math.Log2(float64(n)))
	}
	if meanConst < 3*meanImp {
		t.Errorf("separation too small: constant %.1f vs impatient %.1f", meanConst, meanImp)
	}
}

func TestGrowthSchedules(t *testing.T) {
	// All growth schedules remain valid conciliators; their solo work
	// ordering is log n < √n-ish < n.
	n := 256
	means := make(map[Growth]float64)
	for _, g := range []Growth{GrowthDoubling, GrowthLinear, GrowthConstant} {
		sum := 0
		const trials = 40
		for seed := uint64(0); seed < trials; seed++ {
			file := register.NewFile()
			c := NewImpatient(file, n, 1)
			c.Growth = g
			run, err := harness.RunObject(c, harness.ObjectConfig{
				N: 1, File: file, Inputs: []value.Value{1}, Scheduler: sched.NewRoundRobin(), Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := run.Outputs()[0]; got != 1 {
				t.Fatalf("growth %v: output %s", g, got)
			}
			sum += run.Result.TotalWork
		}
		means[g] = float64(sum) / trials
	}
	if !(means[GrowthDoubling] < means[GrowthLinear] && means[GrowthLinear] < means[GrowthConstant]) {
		t.Errorf("solo work ordering violated: doubling=%.1f linear=%.1f constant=%.1f",
			means[GrowthDoubling], means[GrowthLinear], means[GrowthConstant])
	}
}

func TestProbNumSchedule(t *testing.T) {
	file := register.NewFile()
	c := NewImpatient(file, 16, 1)
	wantDoubling := []uint64{1, 2, 4, 8, 16, 16, 16}
	for k, want := range wantDoubling {
		if got := c.probNum(k); got != want {
			t.Errorf("doubling probNum(%d) = %d, want %d", k, got, want)
		}
	}
	c.Growth = GrowthLinear
	wantLinear := []uint64{1, 2, 3, 4}
	for k, want := range wantLinear {
		if got := c.probNum(k); got != want {
			t.Errorf("linear probNum(%d) = %d, want %d", k, got, want)
		}
	}
	if got := c.probNum(100); got != 16 {
		t.Errorf("linear probNum(100) = %d, want capped 16", got)
	}
	c.Growth = GrowthConstant
	for _, k := range []int{0, 5, 1000} {
		if got := c.probNum(k); got != 1 {
			t.Errorf("constant probNum(%d) = %d, want 1", k, got)
		}
	}
	// Large k must not overflow.
	c.Growth = GrowthDoubling
	if got := c.probNum(64); got != 16 {
		t.Errorf("doubling probNum(64) = %d, want 16", got)
	}
}

func TestMaxIndividualWorkBaseline(t *testing.T) {
	file := register.NewFile()
	c := NewConstantRate(file, 8, 1)
	if got := c.MaxIndividualWork(); got != -1 {
		t.Errorf("constant-rate MaxIndividualWork = %d, want -1 (unbounded)", got)
	}
	c2 := NewConstantRate(file, 1, 2)
	if got := c2.MaxIndividualWork(); got <= 0 {
		t.Errorf("n=1 constant-rate MaxIndividualWork = %d, want positive", got)
	}
}

func TestRejectsNoneInput(t *testing.T) {
	file := register.NewFile()
	c := NewImpatient(file, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ⊥ input")
		}
	}()
	_, _ = harness.RunObject(c, harness.ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{value.None}, Scheduler: sched.NewRoundRobin(),
	})
}

func TestLabels(t *testing.T) {
	file := register.NewFile()
	for i, want := range map[int]string{1: "C1", 7: "C7"} {
		if got := NewImpatient(file, 2, i).Label(); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
	for _, g := range []Growth{GrowthDoubling, GrowthConstant, GrowthLinear, Growth(9)} {
		if g.String() == "" {
			t.Errorf("Growth(%d) has empty string", g)
		}
	}
	if fmt.Sprint(Growth(9)) != "growth(9)" {
		t.Errorf("unknown growth prints %q", fmt.Sprint(Growth(9)))
	}
}
