package conciliator

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/sharedcoin"
	"github.com/modular-consensus/modcon/internal/value"
)

func runCoinConciliator(t *testing.T, n int, inputs []value.Value, seed uint64, voting bool) *harness.ObjectRun {
	t.Helper()
	file := register.NewFile()
	var coin sharedcoin.Coin
	if voting {
		coin = sharedcoin.NewVoting(file, n, 1)
	} else {
		coin = sharedcoin.NewLocal(1)
	}
	c := NewFromCoin(file, coin, 1)
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: n, File: file, Inputs: inputs, Scheduler: sched.NewUniformRandom(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestFromCoinValidity(t *testing.T) {
	// Theorem 6: validity — if all inputs are v, nobody runs the coin and
	// everybody returns v.
	for _, v := range []value.Value{0, 1} {
		for seed := uint64(0); seed < 30; seed++ {
			run := runCoinConciliator(t, 4, []value.Value{v}, seed, false)
			for _, got := range run.Outputs() {
				if got != v {
					t.Fatalf("unanimous input %s produced %s", v, got)
				}
			}
		}
	}
}

func TestFromCoinOutputsAreBinaryAndUndecided(t *testing.T) {
	inputs := []value.Value{0, 1, 0, 1}
	for seed := uint64(0); seed < 50; seed++ {
		run := runCoinConciliator(t, 4, inputs, seed, false)
		for pid, d := range run.Decisions {
			if d.Decided {
				t.Fatalf("conciliator decided at pid %d", pid)
			}
			if d.V != 0 && d.V != 1 {
				t.Fatalf("pid %d output %s", pid, d.V)
			}
		}
	}
}

func TestFromCoinAgreementWithVotingCoin(t *testing.T) {
	// With a genuine weak shared coin the conciliator agrees with constant
	// probability on mixed inputs.
	const trials = 200
	n := 4
	agree := 0
	inputs := []value.Value{0, 1, 0, 1}
	for seed := uint64(0); seed < trials; seed++ {
		run := runCoinConciliator(t, n, inputs, seed, true)
		if check.Unanimous(run.Outputs()) {
			agree++
		}
	}
	if agree < trials/10 {
		t.Errorf("agreement %d/%d below constant probability", agree, trials)
	}
}

func TestFromCoinWorkOverhead(t *testing.T) {
	// The wrapper adds exactly 2 register operations per process on top of
	// the coin (1 write + 1 read); processes skipping the coin do exactly 2.
	file := register.NewFile()
	c := NewFromCoin(file, sharedcoin.NewLocal(1), 1)
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: 1, File: file, Inputs: []value.Value{0}, Scheduler: sched.NewRoundRobin(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.TotalWork != 2 {
		t.Fatalf("solo work %d, want 2 (write r_v + read r_{¬v})", run.Result.TotalWork)
	}
}

func TestFromCoinFirstMoverSkipsCoin(t *testing.T) {
	// If p0 runs alone first with input 0, it returns 0 without the coin;
	// any later process with input 1 must then run the coin (it sees
	// r_0 = 1). Use the frontrunner scheduler for the solo prefix.
	file := register.NewFile()
	c := NewFromCoin(file, sharedcoin.NewLocal(1), 1)
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewFrontrunner(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Decisions[0].V != 0 {
		t.Fatalf("first mover output %s, want its own input 0", run.Decisions[0].V)
	}
}

func TestFromCoinRejectsNonBinary(t *testing.T) {
	file := register.NewFile()
	c := NewFromCoin(file, sharedcoin.NewLocal(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on input 2")
		}
	}()
	_, _ = harness.RunObject(c, harness.ObjectConfig{
		N: 1, File: file, Inputs: []value.Value{2}, Scheduler: sched.NewRoundRobin(),
	})
}

func TestFromCoinLabel(t *testing.T) {
	file := register.NewFile()
	if got := NewFromCoin(file, sharedcoin.NewLocal(1), 4).Label(); got != "CC4" {
		t.Errorf("label = %q", got)
	}
}

func TestFromCoinWithWeightedCoin(t *testing.T) {
	// The weighted voting coin plugs into the Theorem 6 conciliator like
	// any weak shared coin.
	n := 4
	inputs := []value.Value{0, 1, 0, 1}
	for seed := uint64(0); seed < 20; seed++ {
		file := register.NewFile()
		coin := sharedcoin.NewWeighted(file, n, 1)
		c := NewFromCoin(file, coin, 1)
		run, err := harness.RunObject(c, harness.ObjectConfig{
			N: n, File: file, Inputs: inputs, Scheduler: sched.NewUniformRandom(), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := check.Validity(inputs, run.Outputs()); err != nil {
			t.Fatal(err)
		}
	}
}
