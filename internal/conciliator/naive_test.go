package conciliator

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

func runNaive(t *testing.T, n int, inputs []value.Value, s sched.Scheduler, seed uint64) *harness.ObjectRun {
	t.Helper()
	file := register.NewFile()
	c := NewNaiveFirstMover(file, 1)
	run, err := harness.RunObject(c, harness.ObjectConfig{
		N: n, File: file, Inputs: inputs, Scheduler: s, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestNaiveIsWeakConsensusObject(t *testing.T) {
	// Validity and never-decides hold under any adversary.
	for seed := uint64(0); seed < 30; seed++ {
		run := runNaive(t, 4, []value.Value{0, 1, 2, 3}, sched.NewUniformRandom(), seed)
		if err := check.Validity([]value.Value{0, 1, 2, 3}, run.Outputs()); err != nil {
			t.Fatal(err)
		}
		for _, d := range run.Decisions {
			if d.Decided {
				t.Fatal("naive conciliator decided")
			}
		}
	}
}

func TestNaiveWorksUnderFrontrunner(t *testing.T) {
	// A solo prefix makes the first mover win outright.
	run := runNaive(t, 3, []value.Value{5, 6, 7}, sched.NewFrontrunner(), 1)
	if !check.Unanimous(run.Outputs()) {
		t.Fatalf("outputs %v", run.Outputs())
	}
}

func TestNaiveDiesAgainstAdaptiveAdversary(t *testing.T) {
	// The adaptive spoiler sees pending deterministic write values and
	// forces disagreement essentially always — this is exactly why the
	// probabilistic-write model exists (§2.1). Constant δ is impossible.
	const trials = 200
	agree := 0
	for seed := uint64(0); seed < trials; seed++ {
		run := runNaive(t, 4, []value.Value{0, 1, 2, 3}, sched.NewAdaptiveSpoiler(), seed)
		if check.Unanimous(run.Outputs()) {
			agree++
		}
	}
	if agree > trials/20 {
		t.Fatalf("naive first-mover agreed %d/%d times against the adaptive adversary; expected near-total failure", agree, trials)
	}
}

func TestImpatientSurvivesAdaptiveSpoiler(t *testing.T) {
	// By contrast, the probabilistic-write conciliator retains constant
	// agreement probability even against the spoiler: it cannot veto coins.
	const trials = 200
	agree := 0
	for seed := uint64(0); seed < trials; seed++ {
		run := runOnce(t, 4, []value.Value{0, 1, 2, 3}, sched.NewAdaptiveSpoiler(), seed, nil)
		if check.Unanimous(run.Outputs()) {
			agree++
		}
	}
	if agree < trials/18 { // the paper's δ ≈ 0.0553
		t.Fatalf("impatient conciliator agreed only %d/%d times against the spoiler", agree, trials)
	}
}
