package conciliator

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// NaiveFirstMover is the deterministic-write strawman that motivates the
// probabilistic-write assumption (§2.1): each process reads the register
// and, if it is empty, writes its value outright. Against *oblivious*
// schedules it often works, but an adaptive (or even location-oblivious
// with deterministic writes visible) adversary sees the pending write
// values and can always order one conflicting write after a reader has
// committed to the previous value — driving the agreement probability to
// zero. It exists as a negative control for experiments and tests; it is
// still a valid weak consensus object (validity, termination, coherence),
// just not a conciliator.
type NaiveFirstMover struct {
	r     register.Reg
	label string
}

var _ core.Object = (*NaiveFirstMover)(nil)

// NewNaiveFirstMover allocates the strawman's single register. mem is any
// register allocator — a *register.File under any consistency model.
func NewNaiveFirstMover(mem register.Allocator, index int) *NaiveFirstMover {
	label := fmt.Sprintf("NC%d", index)
	return &NaiveFirstMover{r: mem.Alloc1(label + ".r"), label: label}
}

// Invoke implements core.Object.
func (c *NaiveFirstMover) Invoke(e core.Env, v value.Value) value.Decision {
	if v.IsNone() {
		panic("conciliator: ⊥ is not a legal input")
	}
	if u := e.Read(c.r); !u.IsNone() {
		return value.Continue(u)
	}
	e.Write(c.r, v)
	return value.Continue(e.Read(c.r))
}

// Label implements core.Object.
func (c *NaiveFirstMover) Label() string { return c.label }
