// Package conciliator implements the paper's conciliator objects (§5):
// weak consensus objects that produce agreement with constant probability δ
// under any allowed adversary, always returning decision bit 0 (coherence
// holds vacuously).
//
// Three constructions are provided:
//
//   - Impatient: the paper's new ImpatientFirstMoverConciliator for the
//     probabilistic-write model (Theorem 7) — one multi-writer register,
//     O(log n) individual work, O(n) expected total work, δ ≥ (1-e^{-1/4})/4,
//     for arbitrarily many values.
//   - The constant-rate variant (growth GrowthConstant) — the
//     Chor–Israeli–Li / Cheung baseline with Θ(1/n) write probability and
//     Θ(n) individual work, which the paper improves on.
//   - FromCoin: the classic weak-shared-coin construction (§5.1, Theorem 6),
//     2-valued, with validity enforced by two extra registers.
package conciliator

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// Growth selects how a process's write probability evolves with its attempt
// count k. The paper's algorithm doubles (processes "become impatient");
// the alternatives exist as baselines and ablations.
type Growth int

const (
	// GrowthDoubling writes with probability min(1, 2^k/n) — the paper's
	// ImpatientFirstMoverConciliator (§5.2).
	GrowthDoubling Growth = iota + 1
	// GrowthConstant writes with probability 1/n forever — the classic
	// Chor–Israeli–Li [20] / Cheung [19] first-mover scheme. Θ(n)
	// individual work.
	GrowthConstant
	// GrowthLinear writes with probability min(1, (k+1)/n) — an ablation
	// between the two: O(√(n)) attempts... in fact Θ(√n) individual work,
	// since Σ(k+1)/n reaches 1 after ~√(2n) attempts.
	GrowthLinear
)

// String names the growth schedule.
func (g Growth) String() string {
	switch g {
	case GrowthDoubling:
		return "doubling"
	case GrowthConstant:
		return "constant"
	case GrowthLinear:
		return "linear"
	default:
		return fmt.Sprintf("growth(%d)", int(g))
	}
}

// Impatient is a first-mover conciliator over a single multi-writer
// register: processes loop reading the register and, while it is empty,
// attempt probabilistic writes of their own value with growing probability;
// whoever's write lands first "wins" unless a straggler's pending write
// overwrites it. Implements Procedure ImpatientFirstMoverConciliator of the
// paper when Growth is GrowthDoubling.
type Impatient struct {
	r     register.Reg
	n     int
	label string

	// Growth is the impatience schedule (default GrowthDoubling).
	Growth Growth
	// DetectSuccess, when true, lets a process return immediately after a
	// probabilistic write it observes to have succeeded, saving 2
	// operations (footnote 2 of the paper). The paper's cost analysis
	// assumes this is off.
	DetectSuccess bool
}

var _ core.Object = (*Impatient)(nil)

// NewImpatient allocates the conciliator's single register in mem — any
// register allocator, i.e. a *register.File under any consistency model —
// for a system of n processes. index names the instance (Cᵢ).
func NewImpatient(mem register.Allocator, n, index int) *Impatient {
	if n <= 0 {
		panic(fmt.Sprintf("conciliator: n=%d must be positive", n))
	}
	label := fmt.Sprintf("C%d", index)
	return &Impatient{
		r:      mem.Alloc1(label + ".r"),
		n:      n,
		label:  label,
		Growth: GrowthDoubling,
	}
}

// Invoke implements core.Object.
//
//	k ← 0
//	while r = ⊥ do
//	    write v to r with probability 2^k/n
//	    k ← k+1
//	end
//	return (0, r)
//
// The loop's read doubles as the final read of r, so each iteration costs
// exactly 2 operations and the individual work is 2 lg n + O(1) for the
// doubling schedule (Theorem 7).
func (c *Impatient) Invoke(e core.Env, v value.Value) value.Decision {
	if v.IsNone() {
		panic("conciliator: ⊥ is not a legal input")
	}
	for k := 0; ; k++ {
		u := e.Read(c.r)
		if !u.IsNone() {
			return value.Continue(u)
		}
		num := c.probNum(k)
		if e.ProbWrite(c.r, v, num, uint64(c.n)) && c.DetectSuccess {
			return value.Continue(v)
		}
	}
}

// probNum returns the numerator of the k-th attempt probability (the
// denominator is always n), capped so num/den never exceeds 1.
func (c *Impatient) probNum(k int) uint64 {
	n := uint64(c.n)
	switch c.Growth {
	case GrowthConstant:
		return 1
	case GrowthLinear:
		num := uint64(k) + 1
		if num > n {
			return n
		}
		return num
	case GrowthDoubling, 0:
		if k >= 63 {
			return n
		}
		num := uint64(1) << uint(k)
		if num > n {
			return n
		}
		return num
	default:
		panic(fmt.Sprintf("conciliator: unknown growth %v", c.Growth))
	}
}

// Register returns the conciliator's register (tests and attacks watch it).
func (c *Impatient) Register() register.Reg { return c.r }

// MaxIndividualWork bounds the operations any single process can perform:
// the attempt probability reaches 1 after kMax attempts, the next read must
// observe a non-⊥ value, and each attempt costs 2 operations plus the final
// read. The constant-rate baseline has no deterministic bound (only an
// expected Θ(n) one), reported as -1.
func (c *Impatient) MaxIndividualWork() int {
	if c.Growth == GrowthConstant && c.n > 1 {
		return -1
	}
	k := 0
	for c.probNum(k) < uint64(c.n) {
		k++
	}
	// Attempts 0..k all may execute (2 ops each), then one more read.
	return 2*(k+1) + 1
}

// Label implements core.Object.
func (c *Impatient) Label() string { return c.label }

// NewConstantRate returns the Chor–Israeli–Li / Cheung baseline: identical
// to Impatient but with a fixed 1/n write probability.
func NewConstantRate(mem register.Allocator, n, index int) *Impatient {
	c := NewImpatient(mem, n, index)
	c.Growth = GrowthConstant
	return c
}
