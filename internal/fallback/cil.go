// Package fallback provides the bounded-space consensus object K used to
// truncate the paper's unbounded construction (§4.1.2).
//
// The paper invokes "any bounded-space construction" for K. We implement the
// canonical bounded-space consensus for the probabilistic-write model: a
// Chor–Israeli–Li-style round race. It uses n single-writer registers
// (bounded space in the register-counting sense standard in this
// literature; register *values* grow with the round number) and terminates
// with probability 1 against any location-oblivious adversary with
// polynomial expected work — entered with probability ≤ (1-δ)^k, its cost
// vanishes from the protocol's expectation (Theorem 5).
package fallback

import (
	"fmt"

	"github.com/modular-consensus/modcon/internal/core"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/value"
)

// CIL is the round-race consensus object. Each process maintains a (round,
// preference) pair, published in its own register. A process repeatedly
// collects all registers; if someone is strictly ahead it adopts the
// leader's pair; if no *conflicting* preference is within one round of its
// own it decides; otherwise it is a contested front-runner and attempts —
// by probabilistic write, so the adversary cannot veto the lucky — to
// advance one round.
//
// Decisions additionally require round ≥ 2. This guards against processes
// that arrive *after* the decider's collect: an arrival always enters at
// round 1, so a decider at round ≥ 2 is strictly ahead of it and the
// arrival's first collect adopts the decided value. For conflicters already
// in the race the ordering argument applies: a decision of v at round r
// happens only after the decider's register shows (r, v), so a conflicting
// process trying to advance to round r-1 or beyond must first complete a
// collect that either predates the decider's reads (contradicting the
// absence of near conflicts the decider observed) or sees the decider's
// register and adopts v. An uncontested front-runner at round 1 advances
// deterministically (a probabilistic write that always succeeds is a legal
// special case), so solo executions decide after one extra collect.
//
// Liveness comes from preference merging: tied conflicting front-runners
// advance by independent coin flips, and whenever exactly one lands, the
// others adopt the winner's preference at their next collect. Unanimous
// preferences decide after at most one deterministic advance.
type CIL struct {
	regs  register.Array // regs.At(pid) holds PackPair(round, pref)
	n     int
	label string

	// AdvanceNum/AdvanceDen is the probabilistic-write probability for a
	// contested front-runner's advance attempt; default 1/(2n).
	AdvanceNum, AdvanceDen uint64
}

var _ core.Object = (*CIL)(nil)

// New allocates the race's n single-writer registers.
func New(file *register.File, n, index int) *CIL {
	if n <= 0 {
		panic(fmt.Sprintf("fallback: n=%d must be positive", n))
	}
	label := fmt.Sprintf("K%d", index)
	return &CIL{
		regs:       file.Alloc(n, label+".race"),
		n:          n,
		label:      label,
		AdvanceNum: 1,
		AdvanceDen: 2 * uint64(n),
	}
}

// Invoke implements core.Object. It always returns a decision (decision bit
// 1): CIL is a full consensus object.
func (c *CIL) Invoke(e core.Env, v value.Value) value.Decision {
	if v.IsNone() || v < 0 || v > value.MaxPairValue {
		panic(fmt.Sprintf("fallback: input %s out of encodable range", v))
	}
	if c.AdvanceNum >= c.AdvanceDen && c.n > 1 {
		// Probability-1 advances are deterministic: tied front-runners then
		// climb in lockstep forever, and no deterministic protocol can
		// break that symmetry (FLP). The coin is the termination argument.
		panic(fmt.Sprintf("fallback: advance probability %d/%d must be < 1", c.AdvanceNum, c.AdvanceDen))
	}
	pid := e.PID()
	mine := c.regs.At(pid)
	round, pref := 1, v
	e.Write(mine, value.PackPair(round, pref))
	for {
		// Collect every register (own included: a successful advance probe
		// is learned here, so no write-success detection is needed).
		// Registers still at ⊥ count as round 0 and cannot conflict.
		maxRound, maxPref := 0, value.None
		ownRound, ownPref := 0, value.None
		conflictNear := false
		for q := 0; q < c.n; q++ {
			raw := e.Read(c.regs.At(q))
			if raw.IsNone() {
				continue
			}
			qr, qp := value.UnpackPair(raw)
			if qr > maxRound {
				maxRound, maxPref = qr, qp
			}
			if q == pid {
				ownRound, ownPref = qr, qp
			} else if qp != pref && qr >= round-1 {
				conflictNear = true
			}
		}
		switch {
		case maxRound > round:
			// Catch up to the maximum round. If our own register is at the
			// maximum (an earlier probe landed), keep OUR pair — even when
			// another register shares the round with a different
			// preference. Never overwrite a round with a different
			// preference: a same-round retraction publishes a transient
			// pair that a concurrently collecting process may adopt and
			// later resurface after the original has vanished, defeating
			// the deciders' conflict checks. With this rule every
			// register's round strictly increases and a round's preference
			// is immutable per register, so any read that happens after a
			// write returns at least that write's round — the property all
			// the stale-collect safety arguments lean on. (Same-round
			// conflicts stay contested and are settled by further probes;
			// skipping the self-write also avoids the redundant op that
			// would let followers match the leader's pace and livelock
			// lockstep schedules.)
			if ownRound == maxRound {
				round, pref = ownRound, ownPref
			} else {
				round, pref = maxRound, maxPref
				e.Write(mine, value.PackPair(round, pref))
			}
		case !conflictNear && round >= 2:
			// Every conflicting preference is at least two rounds behind
			// (or none exists), and we are past the arrival round: safe to
			// decide.
			return value.Decide(pref)
		case !conflictNear:
			// Uncontested front-runner still at the arrival round:
			// deterministic advance to gain the guard distance over
			// processes that have not announced themselves yet.
			round = 2
			e.Write(mine, value.PackPair(round, pref))
		default:
			// Contested front-runner: probabilistic advance.
			e.ProbWrite(mine, value.PackPair(round+1, pref), c.AdvanceNum, c.AdvanceDen)
		}
	}
}

// Registers returns the number of registers the object uses.
func (c *CIL) Registers() int { return c.regs.Len }

// Label implements core.Object.
func (c *CIL) Label() string { return c.label }
