package fallback

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

func runCIL(t *testing.T, n int, inputs []value.Value, s sched.Scheduler, seed uint64, crash map[int]int) *harness.ObjectRun {
	t.Helper()
	file := register.NewFile()
	k := New(file, n, 0)
	run, err := harness.RunObject(k, harness.ObjectConfig{
		N: n, File: file, Inputs: inputs, Scheduler: s, Seed: seed,
		CrashAfter: crash, MaxSteps: 2_000_000,
	})
	if err != nil {
		t.Fatalf("n=%d seed=%d %s: %v", n, seed, s.Name(), err)
	}
	return run
}

func TestCILIsConsensus(t *testing.T) {
	// Agreement + validity + termination + always decides, across
	// adversaries, process counts and input patterns.
	advs := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRoundRobin() },
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewLaggard() },
		func() sched.Scheduler { return sched.NewFrontrunner() },
		func() sched.Scheduler { return sched.NewFirstMoverAttack() },
	}
	for _, n := range []int{1, 2, 3, 6} {
		for _, mk := range advs {
			for seed := uint64(0); seed < 8; seed++ {
				inputs := make([]value.Value, n)
				for i := range inputs {
					inputs[i] = value.Value(i % 3)
				}
				run := runCIL(t, n, inputs, mk(), seed, nil)
				if err := check.Consensus(inputs, run.Outputs()); err != nil {
					t.Fatal(err)
				}
				for pid, d := range run.Decisions {
					if !d.Decided {
						t.Fatalf("pid %d did not decide: %s", pid, d)
					}
				}
			}
		}
	}
}

func TestCILSoloDecidesImmediately(t *testing.T) {
	run := runCIL(t, 1, []value.Value{5}, sched.NewRoundRobin(), 1, nil)
	if d := run.Decisions[0]; !d.Decided || d.V != 5 {
		t.Fatalf("solo returned %s", d)
	}
	// Write (1,v), collect (1 read), guard advance to (2,v), collect = 4 ops.
	if run.Result.TotalWork != 4 {
		t.Fatalf("solo work %d, want 4", run.Result.TotalWork)
	}
}

func TestCILWaitFreeUnderCrashes(t *testing.T) {
	// n-1 processes crash early; the survivor must still decide (validity:
	// with any surviving value).
	n := 4
	for seed := uint64(0); seed < 10; seed++ {
		inputs := []value.Value{0, 1, 2, 3}
		crash := map[int]int{0: 3, 1: 5, 2: 2}
		run := runCIL(t, n, inputs, sched.NewUniformRandom(), seed, crash)
		if !run.Decisions[3].Decided {
			t.Fatalf("seed %d: survivor did not decide", seed)
		}
		if err := check.Validity(inputs, run.Outputs()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCILAgreementWithLateCrash(t *testing.T) {
	// A process that crashes after deciding must not break agreement for
	// the rest: run pid 0 to completion first, then crash pid 1 mid-flight.
	n := 3
	for seed := uint64(0); seed < 10; seed++ {
		inputs := []value.Value{7, 8, 9}
		run := runCIL(t, n, inputs, sched.NewFrontrunner(), seed, map[int]int{1: 8})
		if err := check.Agreement(run.Outputs()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCILUnanimousInputs(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		run := runCIL(t, 5, []value.Value{4}, sched.NewUniformRandom(), seed, nil)
		for _, v := range run.Outputs() {
			if v != 4 {
				t.Fatalf("unanimous 4 produced %s", v)
			}
		}
	}
}

func TestCILBoundedSpace(t *testing.T) {
	file := register.NewFile()
	k := New(file, 7, 0)
	if got := k.Registers(); got != 7 {
		t.Fatalf("Registers = %d, want n=7", got)
	}
	if file.Len() != 7 {
		t.Fatalf("file has %d registers", file.Len())
	}
}

func TestCILRejectsBadInputs(t *testing.T) {
	for _, v := range []value.Value{value.None, -3, value.MaxPairValue + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("input %s did not panic", v)
				}
			}()
			file := register.NewFile()
			k := New(file, 1, 0)
			_, _ = harness.RunObject(k, harness.ObjectConfig{
				N: 1, File: file, Inputs: []value.Value{v}, Scheduler: sched.NewRoundRobin(),
			})
		}()
	}
}

func TestCILExpectedWorkReasonable(t *testing.T) {
	// The race should finish in polynomial work; empirically a handful of
	// rounds. Guard against regressions with a loose mean bound.
	n := 4
	const trials = 30
	total := 0
	for seed := uint64(0); seed < trials; seed++ {
		inputs := []value.Value{0, 1, 0, 1}
		run := runCIL(t, n, inputs, sched.NewUniformRandom(), seed, nil)
		total += run.Result.TotalWork
	}
	mean := float64(total) / trials
	if mean > 40*float64(n*n*n) {
		t.Errorf("mean work %.0f looks super-polynomial for n=%d", mean, n)
	}
}

func TestCILLabel(t *testing.T) {
	file := register.NewFile()
	if got := New(file, 2, 3).Label(); got != "K3" {
		t.Errorf("label %q", got)
	}
}

func TestCILAgreementStress(t *testing.T) {
	// Hammer the subtle safety argument: many seeds, adversaries, input
	// patterns, and crash patterns; every completed pair of outputs must
	// agree and be valid.
	if testing.Short() {
		t.Skip("stress test")
	}
	advs := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRoundRobin() },
		func() sched.Scheduler { return sched.NewUniformRandom() },
		func() sched.Scheduler { return sched.NewLaggard() },
		func() sched.Scheduler { return sched.NewFrontrunner() },
		func() sched.Scheduler { return sched.NewFirstMoverAttack() },
		func() sched.Scheduler { return sched.NewNoisy(0.3) },
	}
	for _, n := range []int{2, 3, 5} {
		for ai, mk := range advs {
			for seed := uint64(0); seed < 40; seed++ {
				inputs := make([]value.Value, n)
				for i := range inputs {
					inputs[i] = value.Value((i*7 + int(seed)) % (n + 1))
				}
				var crash map[int]int
				switch seed % 4 {
				case 1:
					crash = map[int]int{int(seed) % n: 1 + int(seed)%9}
				case 2:
					crash = map[int]int{0: 2, n - 1: 6}
				}
				run := runCIL(t, n, inputs, mk(), seed, crash)
				if err := check.Validity(inputs, run.Outputs()); err != nil {
					t.Fatalf("n=%d adv=%d seed=%d crash=%v: %v", n, ai, seed, crash, err)
				}
				if err := check.Agreement(run.Outputs()); err != nil {
					t.Fatalf("n=%d adv=%d seed=%d crash=%v: %v", n, ai, seed, crash, err)
				}
			}
		}
	}
}

func TestCILRejectsDeterministicAdvance(t *testing.T) {
	// Probability-1 advances forfeit the termination argument (FLP-style
	// lockstep livelock); the object refuses to run that configuration.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for advance probability 1")
		}
	}()
	file := register.NewFile()
	k := New(file, 2, 0)
	k.AdvanceNum, k.AdvanceDen = 4, 4
	_, _ = harness.RunObject(k, harness.ObjectConfig{
		N: 2, File: file, Inputs: []value.Value{0, 1}, Scheduler: sched.NewRoundRobin(),
	})
}
