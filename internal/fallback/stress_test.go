package fallback

import (
	"testing"

	"github.com/modular-consensus/modcon/internal/check"
	"github.com/modular-consensus/modcon/internal/harness"
	"github.com/modular-consensus/modcon/internal/register"
	"github.com/modular-consensus/modcon/internal/sched"
	"github.com/modular-consensus/modcon/internal/value"
)

func TestCILHighProbeRateStress(t *testing.T) {
	// High advance probability makes simultaneous probe landings (two
	// front-runners advancing in the same round) common, the precondition
	// for the silent-adopt hazard.
	bad := 0
	for seed := uint64(0); seed < 3000; seed++ {
		for _, mk := range []func() sched.Scheduler{
			func() sched.Scheduler { return sched.NewUniformRandom() },
			func() sched.Scheduler { return sched.NewRoundRobin() },
			func() sched.Scheduler { return sched.NewLaggard() },
		} {
			file := register.NewFile()
			k := New(file, 3, 0)
			k.AdvanceNum, k.AdvanceDen = 1, 2
			inputs := []value.Value{0, 1, 2}
			run, err := harness.RunObject(k, harness.ObjectConfig{
				N: 3, File: file, Inputs: inputs, Scheduler: mk(), Seed: seed,
				MaxSteps: 500_000,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := check.Agreement(run.Outputs()); err != nil {
				bad++
				if bad <= 3 {
					t.Logf("seed %d: %v", seed, err)
				}
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d agreement violations", bad)
	}
}

func TestCILDeepStress(t *testing.T) {
	// Sweep sizes and advance probabilities: high rates make simultaneous
	// probe landings (and hence transient same-round conflicts) common.
	// This is the configuration that exposed both the silent-adopt and the
	// same-round-retraction safety bugs during development.
	if testing.Short() {
		t.Skip("stress test")
	}
	for _, n := range []int{2, 3, 4, 6} {
		for _, num := range []uint64{1, 2, 3} {
			for seed := uint64(0); seed < 1500; seed++ {
				file := register.NewFile()
				k := New(file, n, 0)
				k.AdvanceNum, k.AdvanceDen = num, 4
				inputs := make([]value.Value, n)
				for i := range inputs {
					inputs[i] = value.Value(i % (n/2 + 1))
				}
				run, err := harness.RunObject(k, harness.ObjectConfig{
					N: n, File: file, Inputs: inputs,
					Scheduler: sched.NewUniformRandom(), Seed: seed, MaxSteps: 1_000_000,
				})
				if err != nil {
					t.Fatalf("n=%d num=%d seed=%d: %v", n, num, seed, err)
				}
				if err := check.Consensus(inputs, run.Outputs()); err != nil {
					t.Fatalf("n=%d num=%d seed=%d: %v", n, num, seed, err)
				}
			}
		}
	}
}
