package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d vs %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("reseed did not restart stream at %d", i)
		}
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	s := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed 0 produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	c1again := parent.Split(0)
	for i := 0; i < 100; i++ {
		v1, v2 := c1.Uint64(), c2.Uint64()
		if v1 == v2 {
			t.Fatalf("children 0 and 1 collided at %d", i)
		}
		if got := c1again.Uint64(); got != v1 {
			t.Fatalf("Split is not deterministic at %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(3)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check: 10 buckets, 100k draws.
	s := New(2024)
	const buckets, draws = 10, 100000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliExactCases(t *testing.T) {
	s := New(4)
	for i := 0; i < 100; i++ {
		if !s.Bernoulli(1, 1) {
			t.Fatal("Bernoulli(1,1) returned false")
		}
		if !s.Bernoulli(5, 3) {
			t.Fatal("Bernoulli(5,3) (num>den) returned false")
		}
		if s.Bernoulli(0, 10) {
			t.Fatal("Bernoulli(0,10) returned true")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	tests := []struct {
		num, den uint64
	}{
		{1, 2}, {1, 4}, {3, 4}, {1, 64}, {7, 100}, {1, 3},
	}
	for _, tt := range tests {
		s := New(tt.num*1000 + tt.den)
		const n = 200000
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(tt.num, tt.den) {
				hits++
			}
		}
		p := float64(tt.num) / float64(tt.den)
		got := float64(hits) / n
		tol := 4 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Errorf("Bernoulli(%d,%d): rate %v, want %v ± %v", tt.num, tt.den, got, p, tol)
		}
	}
}

func TestBernoulliPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bernoulli(1,0) did not panic")
		}
	}()
	New(1).Bernoulli(1, 0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(6)
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		s.Reseed(seed)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(8)
	const n, draws = 5, 50000
	var count [n]int
	for i := 0; i < draws; i++ {
		count[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d count %d, want ~%f", i, c, want)
		}
	}
}

func TestShuffleMatchesPermContract(t *testing.T) {
	s := New(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(14)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(15)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(1, 4)
	}
	// Mean of failures-before-success with p=1/4 is (1-p)/p = 3.
	if mean := float64(sum) / n; math.Abs(mean-3) > 0.1 {
		t.Errorf("geometric mean %v, want ~3", mean)
	}
}

func TestGeometricPanicsOnZeroNum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0,1) did not panic")
		}
	}()
	New(1).Geometric(0, 1)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkBernoulli(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Bernoulli(3, 7)
	}
}
